#!/usr/bin/env bash
# Golden wire-transcript smoke for the degradation ladder.
#
# Drives a real streamsched_server (unix socket, background re-heal
# disabled, fixed seed) through the full degraded-provenance story with
# the CLI client, captures every client response byte, restarts the
# server from its shutdown snapshot mid-transcript, and byte-compares the
# whole transcript against tests/golden/wire_transcript.txt:
#
#   1. SUBMIT d1 (count:eps=2)      -> src=cold
#   2. SUBMIT d1 again              -> src=hit
#   3. SUBMIT d2 (count:eps=0)      -> src=cold
#   4. EVENT fail 0,1,2             -> three processors down
#   5. HEALTH                       -> degraded=1 advertised
#   6. SUBMIT d1 --degraded-ok      -> src=degraded, eps_have < eps_want
#   7. SUBMIT d1 (no opt-in)        -> ERR DEGRADED refusal
#   8. SHUTDOWN                     -> snapshot written
#   9. restart from the snapshot
#  10. SUBMIT d2                    -> src=warm (restored, full guarantee)
#  11. SUBMIT d1 --degraded-ok      -> src=degraded, same fp + deficit as
#                                      step 6: the restart never laundered
#                                      the degraded placement
#  12. SHUTDOWN
#
# The transcript pins cold/hit/warm/degraded provenance, the DEGRADED
# refusal, the deficit fields, and (via the fp= fields) the bit-identity
# of schedules across snapshot round trips. Usage:
#
#   scripts/wire_transcript_smoke.sh [--bin build] [--out wire_transcript_out]
#       [--golden tests/golden/wire_transcript.txt] [--update]
#
# --update rewrites the golden file instead of comparing (for intentional
# protocol changes; the diff then shows up in review).
set -euo pipefail

bin="build"
out="wire_transcript_out"
golden="tests/golden/wire_transcript.txt"
update=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --bin) bin="$2"; shift 2 ;;
    --out) out="$2"; shift 2 ;;
    --golden) golden="$2"; shift 2 ;;
    --update) update=1; shift ;;
    *) echo "unknown flag: $1" >&2; exit 2 ;;
  esac
done

server="$bin/streamsched_server"
client="$bin/streamsched_client"
[[ -x "$server" && -x "$client" ]] || {
  echo "missing $server or $client (pass --bin)" >&2
  exit 2
}

mkdir -p "$out"
sock="$out/transcript.sock"
snap="$out/transcript.cache"
transcript="$out/wire_transcript.txt"
rm -f "$out"/transcript.cache* "$sock" "$transcript"

# Fixed-seed 5-processor cluster: failing 0,1,2 leaves 2 alive, which is
# beyond an eps=2 repair — the rebuild path degrades d1 while d2 (eps=0)
# rebuilds back to its full (empty) guarantee.
server_flags=(--unix="$sock" --snapshot="$snap" --procs=5 --seed=42 \
              --reheal=0 --log-level=warn)

start_server() {
  "$server" "${server_flags[@]}" >"$out/server.log" 2>&1 &
  server_pid=$!
  for _ in $(seq 1 100); do
    [[ -S "$sock" ]] && return 0
    sleep 0.1
  done
  echo "server did not come up; log:" >&2
  cat "$out/server.log" >&2
  return 1
}

# Runs one client action, capturing stdout+stderr into the transcript.
# ERR responses exit 1 by design; the transcript records them instead of
# aborting the script.
say() {
  echo "# $*" >>"$transcript"
  "$client" --server="unix:$sock" --retries=0 "$@" >>"$transcript" 2>&1 || true
}

d1=(--submit --random-dag=14:61 --model=count:eps=2)
d2=(--submit --random-dag=10:3 --model=count:eps=0)

start_server
say "${d1[@]}" --tag=d1-cold
say "${d1[@]}" --tag=d1-hit
say "${d2[@]}" --tag=d2-cold
say --event=fail:0
say --event=fail:1
say --event=fail:2
say --health
say "${d1[@]}" --degraded-ok --tag=d1-brownout
say "${d1[@]}" --tag=d1-refused
say --shutdown
wait "$server_pid"

start_server
say "${d2[@]}" --tag=d2-warm
say "${d1[@]}" --degraded-ok --tag=d1-warm
say --shutdown
wait "$server_pid"

if [[ "$update" -eq 1 ]]; then
  cp "$transcript" "$golden"
  echo "updated $golden"
  exit 0
fi

if ! cmp "$golden" "$transcript"; then
  echo "wire transcript diverged from $golden:" >&2
  diff -u "$golden" "$transcript" >&2 || true
  exit 1
fi
echo "wire transcript matches $golden"
