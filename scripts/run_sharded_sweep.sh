#!/usr/bin/env bash
# Sharded sweep driver + equivalence check.
#
# Runs one figure bench N times with --shard i/N (each process measures a
# disjoint slice of the instance grid and dumps raw records), merges the
# shard records with bench_sweep_merge, and byte-compares every CSV the
# merged rendering produced against an unsharded reference run of the same
# bench — the "sharded == unsharded, bit for bit" contract of
# src/exp/shard.hpp, checked end to end through real processes instead of
# in-process tables (tests/test_shard.cpp covers the latter).
#
# Usage:
#   scripts/run_sharded_sweep.sh --bench build/bench_fig3_eps1 \
#       --merge build/bench_sweep_merge [--shards 3] [--stem fig3] \
#       [--out sharded_sweep_out] [-- --graphs 3 --seed 42 ...]
#
# Everything after `--` is forwarded verbatim to every bench invocation
# (sharded and unsharded alike). --stem must match the bench's internal
# CSV stem (fig3 for bench_fig3_eps1, fig4 for bench_fig4_eps3). Exits
# non-zero when any shard run, the merge, or any byte comparison fails.
set -euo pipefail

bench=""
merge=""
shards=3
stem="fig3"
out="sharded_sweep_out"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --bench) bench="$2"; shift 2 ;;
    --merge) merge="$2"; shift 2 ;;
    --shards) shards="$2"; shift 2 ;;
    --stem) stem="$2"; shift 2 ;;
    --out) out="$2"; shift 2 ;;
    --) shift; break ;;
    *) echo "unknown flag: $1 (bench flags go after --)" >&2; exit 2 ;;
  esac
done
extra=("$@")

if [[ -z "$bench" || -z "$merge" ]]; then
  echo "usage: $0 --bench BENCH --merge MERGE [--shards N] [--stem STEM] [--out DIR] [-- BENCH_FLAGS...]" >&2
  exit 2
fi
if ! [[ "$shards" =~ ^[0-9]+$ ]] || [[ "$shards" -lt 1 ]]; then
  echo "--shards must be a positive integer, got '$shards'" >&2
  exit 2
fi

rm -rf "$out"
mkdir -p "$out"

echo "== reference: unsharded $bench"
"$bench" "${extra[@]}" --csv "$out/ref_" > "$out/ref.log"

inputs=""
for ((i = 0; i < shards; ++i)); do
  echo "== shard $i/$shards"
  "$bench" "${extra[@]}" --shard "$i/$shards" --csv "$out/shard_" > "$out/shard_$i.log"
  records="$out/shard_${stem}_records_${i}_of_${shards}.csv"
  if [[ ! -f "$records" ]]; then
    echo "FAIL: shard $i wrote no records file at $records" >&2
    exit 1
  fi
  inputs="${inputs:+$inputs,}$records"
done

echo "== merge $shards shards"
"$merge" --inputs="$inputs" --csv "$out/merged_" --stem "$stem" > "$out/merge.log"

# Byte-compare every CSV of the reference run against the merged rendering.
compared=0
status=0
for ref in "$out/ref_${stem}"_*.csv; do
  name="${ref#"$out/ref_"}"
  merged="$out/merged_$name"
  if [[ ! -f "$merged" ]]; then
    echo "FAIL: merge produced no $merged" >&2
    status=1
    continue
  fi
  if cmp -s "$ref" "$merged"; then
    echo "ok: $name byte-identical"
  else
    echo "FAIL: $name differs between unsharded and merged runs" >&2
    cmp "$ref" "$merged" >&2 || true
    status=1
  fi
  compared=$((compared + 1))
done
if [[ "$compared" -eq 0 ]]; then
  echo "FAIL: reference run produced no ${stem}_*.csv files to compare" >&2
  status=1
fi

if [[ "$status" -eq 0 ]]; then
  echo "PASS: $compared CSVs byte-identical across $shards shards"
fi
exit "$status"
