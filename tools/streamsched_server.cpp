// The placement service server binary: a PlacementDaemon behind the wire
// protocol (docs/PROTOCOL.md), serving unix-domain and/or TCP clients.
//
//   streamsched_server --unix=/tmp/streamsched.sock
//   streamsched_server --tcp-port=7070 --procs=16 --snapshot=cache.snap
//
// The cluster itself is generated from --procs/--p-lo/--p-hi/--seed
// (deterministic: the same flags produce the same platform, and therefore
// the same platform fingerprint — which is what lets a warm-start
// snapshot from a previous run of the same configuration load). SIGINT /
// SIGTERM drain like a wire SHUTDOWN: in-flight admissions finish, the
// snapshot is saved, the process exits 0.
//
// Diagnostics go through the bounded async logger (util/async_log.hpp):
// the poll loop and admission workers never block on stderr; overflow
// drops messages and says how many on exit.
#include <csignal>
#include <iostream>
#include <string>

#include "service/server.hpp"
#include "platform/generators.hpp"
#include "util/async_log.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace {

streamsched::net::Server* g_server = nullptr;

// Async-signal-safe: an atomic store plus one pipe write.
void handle_signal(int) {
  if (g_server != nullptr) g_server->shutdown();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace streamsched;

  Cli cli(argc, argv);
  net::ServerConfig config;
  config.unix_path = cli.get_string("unix", "", "STREAMSCHED_UNIX");
  config.tcp_host = cli.get_string("tcp-host", "127.0.0.1", "");
  const std::int64_t tcp_port = cli.get_int("tcp-port", -1, "STREAMSCHED_TCP_PORT");
  config.snapshot_path = cli.get_string("snapshot", "", "STREAMSCHED_SNAPSHOT");
  config.snapshot_interval_ms = static_cast<std::uint32_t>(
      cli.get_int("snapshot-interval-ms", 0, "STREAMSCHED_SNAPSHOT_INTERVAL"));
  config.snapshot_keep =
      static_cast<std::size_t>(cli.get_int("snapshot-keep", 4, ""));
  config.read_deadline_ms =
      static_cast<std::uint32_t>(cli.get_int("read-deadline-ms", 0, ""));
  config.max_line_bytes = static_cast<std::size_t>(
      cli.get_int("max-line-bytes", static_cast<std::int64_t>(config.max_line_bytes), ""));
  config.busy_retry_hint_ms = static_cast<std::uint32_t>(
      cli.get_int("busy-retry-hint-ms", static_cast<std::int64_t>(config.busy_retry_hint_ms),
                  ""));
  config.fault_spec = cli.get_string("faults", "", "STREAMSCHED_FAULTS");
  const auto procs = static_cast<std::size_t>(cli.get_int("procs", 16, "STREAMSCHED_PROCS"));
  const double p_lo = cli.get_double("p-lo", 0.02, "");
  const double p_hi = cli.get_double("p-hi", 0.08, "");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42, "STREAMSCHED_SEED"));
  config.daemon.cache_capacity =
      static_cast<std::size_t>(cli.get_int("cache", 256, "STREAMSCHED_CACHE"));
  // --reheal=0 disables the background re-heal task: degraded placements
  // then only improve on recovery events or explicit re-admission, which
  // is what deterministic transcripts and the churn bench rely on.
  config.daemon.auto_reheal = cli.get_bool("reheal", true, "");
  auto& interactive = config.lanes[static_cast<std::size_t>(net::QosClass::kInteractive)];
  auto& batch = config.lanes[static_cast<std::size_t>(net::QosClass::kBatch)];
  interactive.workers =
      static_cast<std::size_t>(cli.get_int("interactive-workers", 2, ""));
  interactive.bound = static_cast<std::size_t>(cli.get_int("interactive-bound", 64, ""));
  batch.workers = static_cast<std::size_t>(cli.get_int("batch-workers", 1, ""));
  batch.bound = static_cast<std::size_t>(cli.get_int("batch-bound", 16, ""));
  const std::string level = cli.get_string("log-level", "info", "STREAMSCHED_LOG");
  cli.finish();

  if (config.unix_path.empty() && tcp_port < 0) {
    std::cerr << "nothing to listen on: pass --unix=PATH and/or --tcp-port=PORT "
                 "(0 = ephemeral)\n";
    return 2;
  }
  if (tcp_port >= 0) {
    config.tcp = true;
    config.tcp_port = static_cast<std::uint16_t>(tcp_port);
  }
  if (level == "debug") {
    set_log_level(LogLevel::kDebug);
  } else if (level == "info") {
    set_log_level(LogLevel::kInfo);
  } else if (level == "warn") {
    set_log_level(LogLevel::kWarn);
  } else if (level == "error") {
    set_log_level(LogLevel::kError);
  } else {
    std::cerr << "unknown --log-level=" << level << " (debug|info|warn|error)\n";
    return 2;
  }

  AsyncLogger logger;
  install_async_logger(&logger);

  Rng rng(seed);
  Platform platform = make_reliability_heterogeneous(rng, procs, p_lo, p_hi);

  int status = 0;
  try {
    net::Server server(std::move(platform), config);
    g_server = &server;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    if (config.tcp) {
      // The one line scripts scrape for the ephemeral port.
      std::cout << "listening tcp port " << server.tcp_port() << std::endl;
    }
    if (!config.unix_path.empty()) {
      std::cout << "listening unix " << config.unix_path << std::endl;
    }
    server.run();
    g_server = nullptr;
  } catch (const std::exception& e) {
    log_error() << "server failed: " << e.what();
    status = 1;
  }

  install_async_logger(nullptr);
  logger.flush();
  if (logger.dropped() > 0) {
    std::cerr << "async log overflow: " << logger.dropped() << " messages dropped\n";
  }
  return status;
}
