// Command-line client of the placement service (docs/PROTOCOL.md).
//
//   streamsched_client --server=unix:/tmp/streamsched.sock --stats
//   streamsched_client --server=tcp:127.0.0.1:7070 --submit
//       --random-dag=24:7 --algo=rltf --model=count:eps=1
//   streamsched_client --server=unix:... --event=fail:3
//   streamsched_client --server=unix:... --health
//   streamsched_client --server=unix:... --shutdown
//
// Exactly one action flag per invocation. SUBMIT takes either an explicit
// --dag=<DagWire> or --random-dag=<tasks>:<seed> (the same layered
// generator the benches use, so smoke tests need no DAG files). The
// response's key=value fields are printed one per line; `ERR` responses
// print the code + message on stderr and exit 1.
//
// Requests ride the resilient client (net/resilient_client.hpp):
// `--retries=<n>` bounds the retry budget and `--deadline-ms=<ms>` the
// per-request wall-clock budget (0 = unbounded). Transport failures and
// `ERR BUSY` sheds are retried with exponential backoff, honoring the
// server's `retry_ms=` hint; `--retries=0` restores fail-fast behavior.
#include <cstdint>
#include <iostream>
#include <string>

#include "graph/generators.hpp"
#include "net/resilient_client.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

using namespace streamsched;

/// `fail:3` / `recover:3` → EventFrame.
net::EventFrame parse_event_arg(const std::string& arg) {
  const std::size_t colon = arg.find(':');
  if (colon == std::string::npos) {
    throw std::invalid_argument("--event wants fail:<proc> or recover:<proc>");
  }
  const std::string kind = arg.substr(0, colon);
  net::EventFrame event;
  if (kind == "fail") {
    event.failure = true;
  } else if (kind == "recover") {
    event.failure = false;
  } else {
    throw std::invalid_argument("--event kind must be fail or recover, got " + kind);
  }
  event.proc = static_cast<ProcId>(std::stoul(arg.substr(colon + 1)));
  return event;
}

int print_response(const net::Response& resp) {
  if (!resp.ok) {
    std::cerr << "ERR " << net::wire_code_name(resp.code) << ": " << resp.message << '\n';
    return 1;
  }
  for (const auto& [key, value] : resp.fields) std::cout << key << '=' << value << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::string server = cli.get_string("server", "", "STREAMSCHED_SERVER");
  const bool do_stats = cli.get_bool("stats", false, "");
  const bool do_health = cli.get_bool("health", false, "");
  const bool do_shutdown = cli.get_bool("shutdown", false, "");
  const std::string event_arg = cli.get_string("event", "", "");
  const bool do_submit = cli.get_bool("submit", false, "");
  const std::string dag_wire = cli.get_string("dag", "", "");
  const std::string random_dag = cli.get_string("random-dag", "", "");
  net::SubmitFrame frame;
  frame.variant_spec = cli.get_string("algo", "rltf", "STREAMSCHED_ALGO");
  const std::string model_spec = cli.get_string("model", "count:eps=1", "");
  const std::string qos = cli.get_string("qos", "interactive", "");
  frame.period = cli.get_double("period", 0.0, "");
  frame.headroom = cli.get_double("headroom", 2.0, "");
  frame.comm_share = cli.get_double("comm-share", 1.0, "");
  frame.tag = cli.get_string("tag", "", "");
  // Brownout opt-in: accept a degraded placement (src=degraded with an
  // explicit eps_have/eps_want deficit) instead of an ERR DEGRADED refusal.
  frame.degraded_ok = cli.get_bool("degraded-ok", false, "");
  net::RetryPolicy policy;
  policy.max_retries = static_cast<std::uint32_t>(
      cli.get_int("retries", static_cast<std::int64_t>(policy.max_retries), ""));
  policy.deadline_ms = static_cast<std::uint32_t>(
      cli.get_int("deadline-ms", static_cast<std::int64_t>(policy.deadline_ms), ""));
  cli.finish();

  const int actions = static_cast<int>(do_stats) + static_cast<int>(do_health) +
                      static_cast<int>(do_shutdown) + static_cast<int>(!event_arg.empty()) +
                      static_cast<int>(do_submit);
  if (server.empty() || actions != 1) {
    std::cerr << "usage: " << argv[0]
              << " --server=unix:<path>|tcp:<host>:<port> "
                 "[--retries=<n>] [--deadline-ms=<ms>] "
                 "(--stats | --health | --shutdown | --event=fail:<p>|recover:<p> | "
                 "--submit [--degraded-ok] --dag=<wire>|--random-dag=<tasks>:<seed>)\n";
    return 2;
  }

  try {
    net::ResilientClient client(server, policy);
    if (do_stats) return print_response(client.stats());
    if (do_health) return print_response(client.health());
    if (do_shutdown) return print_response(client.shutdown());
    if (!event_arg.empty()) return print_response(client.event(parse_event_arg(event_arg)));

    frame.model = FaultModel::parse(model_spec);
    frame.qos = net::parse_qos_class(qos);
    if (!dag_wire.empty()) {
      frame.dag = net::parse_dag_wire(dag_wire);
    } else if (!random_dag.empty()) {
      const std::size_t colon = random_dag.find(':');
      if (colon == std::string::npos) {
        throw std::invalid_argument("--random-dag wants <tasks>:<seed>");
      }
      const auto tasks = static_cast<std::size_t>(std::stoul(random_dag.substr(0, colon)));
      Rng rng(std::stoull(random_dag.substr(colon + 1)));
      frame.dag = make_random_layered(rng, tasks, 4, 0.4, WeightRanges{});
    } else {
      std::cerr << "--submit wants --dag=<wire> or --random-dag=<tasks>:<seed>\n";
      return 2;
    }
    return print_response(client.submit(frame));
  } catch (const std::exception& e) {
    std::cerr << "client failed: " << e.what() << '\n';
    return 1;
  }
}
