// Walk-through of the paper's §4.3 worked example (Figure 2): the 7-task
// graph G scheduled by LTF and R-LTF with ε = 1 on 8 and 10 homogeneous
// processors. Prints the DOT form of G, both mappings, and the resulting
// stage structure — mirroring the discussion in the paper.
//
//   ./examples/paper_example
#include <iostream>

#include "core/streamsched.hpp"

using namespace streamsched;

namespace {

void show(const std::string& title, const ScheduleResult& result) {
  std::cout << "--- " << title << " ---\n";
  if (!result.ok()) {
    std::cout << "  " << result.error << "\n\n";
    return;
  }
  const Schedule& s = *result.schedule;
  const Dag& dag = s.dag();
  for (std::uint32_t stage = 1; stage <= num_stages(s); ++stage) {
    std::cout << "  stage " << stage << ":";
    for (TaskId t = 0; t < dag.num_tasks(); ++t) {
      for (CopyId c = 0; c < s.copies(); ++c) {
        if (s.placed({t, c}).stage == stage) {
          std::cout << ' ' << dag.name(t) << '#' << c << "@P" << s.placed({t, c}).proc;
        }
      }
    }
    std::cout << '\n';
  }
  std::cout << "  stages S = " << num_stages(s) << ", latency L = (2S-1)*period = "
            << latency_upper_bound(s) << ", processors used: " << num_procs_used(s)
            << ", supply channels: " << num_total_comms(s) << '\n';
  SimOptions o;
  o.num_items = 30;
  o.warmup_items = 10;
  const SimResult sim = simulate(s, o);
  std::cout << "  simulated: latency " << sim.mean_latency << ", period "
            << sim.achieved_period << "\n\n";
}

}  // namespace

int main() {
  const Dag dag = make_paper_figure2();
  std::cout << "The workflow graph G of Figure 2(a):\n" << to_dot(dag, "G") << '\n';

  std::cout << "Task priorities tl + bl (the order H(alpha) pops ready tasks):\n";
  const Platform p8 = make_homogeneous(8, 1.0);
  const auto prio = priorities(dag, p8);
  for (TaskId t = 0; t < dag.num_tasks(); ++t) {
    std::cout << "  " << dag.name(t) << ": " << prio[t] << '\n';
  }
  std::cout << '\n';

  SchedulerOptions options;
  options.eps = 1;
  const Scheduler& ltf = find_scheduler("ltf");
  const Scheduler& rltf = find_scheduler("rltf");

  // The paper states T = 0.05 (period 20) but its own R-LTF mapping loads
  // one processor with 22 units; the example is self-consistent at 22.
  options.period = 20.0;
  show("LTF, m = 8, period 20 (paper: fails)", ltf.schedule(dag, p8, options));
  show("R-LTF, m = 8, period 20 (paper's own mapping violates this period)",
       rltf.schedule(dag, p8, options));

  options.period = 22.0;
  show("LTF, m = 8, period 22", ltf.schedule(dag, p8, options));
  show("R-LTF, m = 8, period 22 (paper: 3 stages)", rltf.schedule(dag, p8, options));

  const Platform p10 = make_homogeneous(10, 1.0);
  options.period = 20.0;
  show("LTF, m = 10, period 20 (paper: 4 stages, L = 140)",
       ltf.schedule(dag, p10, options));
  show("R-LTF, m = 10, period 20", rltf.schedule(dag, p10, options));
  return 0;
}
