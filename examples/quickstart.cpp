// Quickstart: build a workflow, schedule it with any registered algorithm
// variant (default R-LTF) under a throughput and a reliability constraint,
// inspect the mapping, and simulate the pipelined execution with and
// without a crash.
//
//   ./examples/quickstart                        # R-LTF
//   ./examples/quickstart --algo=ltf             # any registry name
//   ./examples/quickstart --algo='rltf[rule1=off]'  # bind declared tunables
//   ./examples/quickstart --algo=help            # list schedulers + spaces
#include <iostream>

#include "core/streamsched.hpp"
#include "util/cli.hpp"

using namespace streamsched;

int main(int argc, char** argv) {
  AlgoSelection selection;
  try {
    Cli cli(argc, argv);
    selection = schedulers_from_cli(cli, "rltf");
    cli.finish();
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << "\n(use --algo=help to list the registered schedulers "
              << "and their parameter spaces)\n";
    return 1;
  }
  if (selection.help_requested()) return 0;  // the listing was printed
  const AlgoVariant& algo = selection.variants.front();

  // 1. The application: a small audio-processing workflow.
  //    capture -> [fft, gain] -> mix -> encode
  Dag dag;
  const TaskId capture = dag.add_task("capture", 4.0);
  const TaskId fft = dag.add_task("fft", 12.0);
  const TaskId gain = dag.add_task("gain", 6.0);
  const TaskId mix = dag.add_task("mix", 5.0);
  const TaskId encode = dag.add_task("encode", 10.0);
  dag.add_edge(capture, fft, 8.0);
  dag.add_edge(capture, gain, 8.0);
  dag.add_edge(fft, mix, 4.0);
  dag.add_edge(gain, mix, 4.0);
  dag.add_edge(mix, encode, 6.0);

  // 2. The platform: six processors, mildly heterogeneous links.
  Rng rng(7);
  const Platform platform = make_heterogeneous(rng, 6, 1.0, 2.0, 0.2, 0.5);

  // 3. Constraints: sustain one item every 15 time units and survive any
  //    single processor failure.
  SchedulerOptions options;
  options.eps = 1;
  options.period = 15.0;
  options.repair = true;  // enforce the eps-failure guarantee

  std::cout << "scheduling with " << algo.label() << " (" << algo.name() << ")\n\n";
  const ScheduleResult result = algo.schedule(dag, platform, options);
  if (!result.ok()) {
    std::cerr << "scheduling failed: " << result.error << '\n';
    return 1;
  }
  const Schedule& schedule = *result.schedule;

  std::cout << "=== mapping ===\n";
  for (TaskId t = 0; t < dag.num_tasks(); ++t) {
    for (CopyId c = 0; c < schedule.copies(); ++c) {
      const PlacedReplica& p = schedule.placed({t, c});
      std::cout << dag.name(t) << "#" << c << " -> P" << p.proc << " (stage " << p.stage
                << ")\n";
    }
  }
  std::cout << "stages: " << num_stages(schedule)
            << ", latency bound (2S-1)*period: " << latency_upper_bound(schedule)
            << ", supply channels: " << num_total_comms(schedule)
            << " (remote: " << num_remote_comms(schedule) << ")\n";

  const auto report = validate_schedule(schedule, {.check_timing = false});
  std::cout << "validation: " << report.summary() << '\n';
  const CopyId guarantee = schedule.copies() > 0 ? schedule.copies() - 1 : 0;
  std::cout << "survives any " << guarantee << " failure(s): "
            << (check_fault_tolerance(schedule, guarantee).valid ? "yes" : "NO") << "\n\n";

  // 4. Simulate the pipelined execution.
  SimOptions sim_options;
  sim_options.num_items = 30;
  sim_options.warmup_items = 10;
  const SimResult healthy = simulate(schedule, sim_options);
  std::cout << "=== simulation (no failures) ===\n"
            << "mean latency: " << healthy.mean_latency
            << ", achieved period: " << healthy.achieved_period << '\n';

  sim_options.failed = {schedule.placed({mix, 0}).proc};  // kill a busy processor
  const SimResult degraded = simulate(schedule, sim_options);
  std::cout << "=== simulation (P" << sim_options.failed[0] << " crashed) ===\n"
            << "complete: " << (degraded.complete ? "yes" : "NO")
            << ", mean latency: " << degraded.mean_latency << '\n';
  return 0;
}
