// Figure 1 tutorial: the three ways to run a streaming workflow
// (task parallelism, data parallelism, pipelined execution), computed with
// the library's own machinery on the paper's 4-task example.
//
//   ./examples/parallelism_modes
#include <iostream>

#include "core/streamsched.hpp"

using namespace streamsched;

int main() {
  const Dag dag = make_paper_figure1();
  const Platform platform = make_paper_figure1_platform();

  std::cout << "Workflow (Figure 1(a)): 4 tasks of work 15, edges of volume 2.\n"
            << "Platform: P1..P4 with speeds {1.5, 1, 1.5, 1}, unit bandwidth.\n\n";

  // --- (i) task parallelism: minimize the makespan of one data item. ----
  {
    SchedulerOptions options;  // no period constraint, no replication
    const auto r = find_scheduler("heft").schedule(dag, platform, options);
    SimOptions o;
    o.discipline = SimDiscipline::kSelfTimed;
    o.num_items = 1;
    o.warmup_items = 0;
    o.period = 1e9;
    const SimResult sim = simulate(*r.schedule, o);
    std::cout << "(i) task parallelism (HEFT makespan schedule)\n"
              << "    latency " << sim.mean_latency << " (paper's hand schedule: 39);"
              << " streaming throughput 1/" << sim.mean_latency
              << " (the graph repeats back to back)\n\n";
  }

  // --- (ii) data parallelism: whole graph per processor, round robin. ---
  {
    // One 'virtual task' carrying the whole graph, replicated on all four
    // processors; consecutive items round-robin across them.
    const double total = dag.total_work();
    double aggregate = 0.0;
    for (ProcId u = 0; u < platform.num_procs(); ++u) {
      aggregate += platform.speed(u) / total;
    }
    std::cout << "(ii) data parallelism (whole graph per processor, round robin)\n"
              << "    aggregate throughput " << aggregate << " = 1/" << 1.0 / aggregate
              << " (paper counts the two fast replicas: 2/40 = 1/20);\n"
              << "    requires item-independence the streaming model does not assume.\n\n";
  }

  // --- (iii) pipelined execution: the model this library optimizes. -----
  {
    SchedulerOptions options;
    options.period = 30.0;  // the paper's scenario: throughput 1/30
    const auto r = find_scheduler("rltf").schedule(dag, platform, options);
    if (r.ok()) {
      SimOptions o;
      o.num_items = 25;
      o.warmup_items = 8;
      const SimResult sim = simulate(*r.schedule, o);
      std::cout << "(iii) pipelined execution (R-LTF at period 30)\n"
                << "    stages S = " << num_stages(*r.schedule) << ", latency bound "
                << latency_upper_bound(*r.schedule) << " (paper: S = 2, L = 90)\n"
                << "    simulated latency " << sim.mean_latency << ", achieved period "
                << sim.achieved_period << '\n';
    }
  }
  return 0;
}
