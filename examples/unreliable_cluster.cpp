// Heterogeneous-reliability walkthrough: schedule a streaming pipeline on
// a reliable-core / unreliable-edge cluster under the probabilistic fault
// model, repair it to a target schedule reliability, and stress it with
// crash sets sampled from the per-processor failure probabilities.
//
//   ./unreliable_cluster            # defaults: 4+4 cluster, R = 0.999
#include <iostream>

#include "core/streamsched.hpp"

int main() {
  using namespace streamsched;

  // Four sturdy core processors (p = 0.001, fast links) and four flaky
  // edge processors (p = 0.05, slow links).
  const Platform platform = make_edge_core(/*core=*/4, /*edge=*/4, /*p_core=*/0.001,
                                           /*p_edge=*/0.05, /*core_delay=*/0.5,
                                           /*edge_delay=*/1.0);
  const Dag dag = make_paper_figure2();

  const double target = 0.999;
  const FaultModel model = FaultModel::probabilistic(target);
  std::cout << "fault model " << model.to_string() << " -> derived eps = "
            << model.derive_eps(platform, dag.num_tasks()) << " (replicas = "
            << model.derive_eps(platform, dag.num_tasks()) + 1 << ")\n";

  SchedulerOptions options;
  options.fault_model = model;
  options.period = 40.0;
  options.repair = true;  // repair_to_reliability runs on the result
  const ScheduleResult r = rltf_schedule(dag, platform, options);
  if (!r.ok()) {
    std::cout << "scheduling failed: " << r.error << '\n';
    return 1;
  }
  const Schedule& schedule = *r.schedule;
  std::cout << "stages: " << num_stages(schedule)
            << "  latency bound: " << latency_upper_bound(schedule)
            << "  repair channels added: " << r.repair.added_comms
            << (r.repair.success ? "" : "  (repair could not reach the target!)") << '\n';

  const ReliabilityEstimate estimate = schedule_reliability(schedule);
  std::cout << "schedule reliability: " << estimate.reliability
            << (estimate.exact ? " (exact within tolerance)" : " (Monte Carlo)")
            << " over " << estimate.sets_checked << " failure sets, target " << target
            << '\n';

  // Crash trials drawn from the model: each processor fails independently
  // with its own probability. Starvation is possible with probability up
  // to 1 - R per trial — the pass/fail criterion is the certified
  // reliability, not sampling luck.
  Rng rng(2026);
  std::size_t starved = 0;
  const std::size_t trials = 20;
  for (std::size_t i = 0; i < trials; ++i) {
    const SimResult sim = simulate_with_sampled_failures(schedule, model, 0, rng);
    if (!sim.complete) ++starved;
  }
  std::cout << "sampled crash trials: " << trials << ", starved: " << starved << '\n';

  // The same pipeline under the paper's scalar model, for comparison.
  SchedulerOptions scalar;
  scalar.eps = 1;
  scalar.period = 40.0;
  scalar.repair = true;
  const ScheduleResult c = rltf_schedule(dag, platform, scalar);
  if (c.ok()) {
    std::cout << "count:eps=1 reference reliability: "
              << schedule_reliability(*c.schedule).reliability << '\n';
  }
  return (r.repair.success && estimate.reliability >= target) ? 0 : 1;
}
