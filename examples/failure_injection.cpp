// Failure injection demo: schedule a workflow for ε = 2, verify the
// guarantee exhaustively, then crash processors one, two at a time and
// watch the pipeline degrade gracefully — including a peek at the
// execution trace of the degraded run.
//
//   ./examples/failure_injection
#include <iostream>

#include "core/streamsched.hpp"

using namespace streamsched;

int main() {
  Rng rng(99);
  WorkloadParams params;
  params.v_min = 30;
  params.v_max = 40;
  params.num_procs = 12;
  const Instance inst = make_instance(params, 1.0, /*eps=*/2, rng);

  SchedulerOptions options;
  options.eps = 2;
  options.period = inst.period;
  options.repair = true;

  const ScheduleResult result = find_scheduler("rltf").schedule(inst.dag, inst.platform, options);
  if (!result.ok()) {
    std::cerr << "scheduling failed: " << result.error << '\n';
    return 1;
  }
  const Schedule& schedule = *result.schedule;
  std::cout << "Workflow: " << inst.num_tasks << " tasks / " << inst.num_edges
            << " edges on " << inst.platform.num_procs() << " processors, period "
            << inst.period << "\n"
            << "Replication: " << schedule.copies() << " copies per task, "
            << num_total_comms(schedule) << " supply channels ("
            << num_repair_comms(schedule) << " added by repair)\n";

  const auto ft = check_fault_tolerance(schedule, 2);
  std::cout << "Exhaustive 2-failure check over " << ft.sets_checked
            << " failure sets: " << (ft.valid ? "all survivable" : "NOT SURVIVABLE")
            << "\n\n";

  SimOptions o;
  o.num_items = 30;
  o.warmup_items = 10;
  const SimResult healthy = simulate(schedule, o);
  std::cout << "baseline latency (no failures): " << healthy.mean_latency << "\n\n";

  std::cout << "single crashes:\n";
  for (ProcId u = 0; u < 4; ++u) {
    SimOptions crash = o;
    crash.failed = {u};
    const SimResult r = simulate(schedule, crash);
    std::cout << "  P" << u << " down: latency " << r.mean_latency << " ("
              << (r.complete ? "complete" : "STARVED") << ")\n";
  }

  std::cout << "\ndouble crashes:\n";
  for (const auto& pair : std::vector<std::vector<ProcId>>{{0, 1}, {2, 5}, {3, 7}}) {
    SimOptions crash = o;
    crash.failed = pair;
    const SimResult r = simulate(schedule, crash);
    std::cout << "  P" << pair[0] << "+P" << pair[1] << " down: latency " << r.mean_latency
              << " (" << (r.complete ? "complete" : "STARVED") << ")\n";
  }

  // A short trace of the degraded execution.
  SimOptions traced = o;
  traced.failed = {0, 1};
  traced.num_items = 2;
  traced.warmup_items = 0;
  traced.collect_trace = true;
  const SimResult r = simulate(schedule, traced);
  std::cout << "\nfirst events of the degraded run (P0, P1 down):\n"
            << format_trace(r.trace, schedule, 15);
  return 0;
}
