// A realistic streaming scenario from the paper's motivation: a video
// analytics pipeline (decode, split into tiles, per-tile detection,
// tracking, annotation, encode) running on a heterogeneous cluster with a
// frame-rate requirement and single-failure tolerance.
//
// Compares every replication-capable registered scheduler on the same
// instance, then stress-tests the chosen schedule against every possible
// single-processor failure.
//
//   ./examples/video_pipeline
#include <iostream>

#include "core/streamsched.hpp"

using namespace streamsched;

namespace {

Dag make_video_pipeline(std::size_t tiles) {
  Dag dag;
  const TaskId decode = dag.add_task("decode", 30.0);
  const TaskId split = dag.add_task("split", 6.0);
  dag.add_edge(decode, split, 40.0);
  std::vector<TaskId> trackers;
  for (std::size_t i = 0; i < tiles; ++i) {
    const TaskId detect = dag.add_task("detect" + std::to_string(i), 22.0);
    const TaskId track = dag.add_task("track" + std::to_string(i), 9.0);
    dag.add_edge(split, detect, 12.0);
    dag.add_edge(detect, track, 5.0);
    trackers.push_back(track);
  }
  const TaskId fuse = dag.add_task("fuse", 8.0);
  for (TaskId t : trackers) dag.add_edge(t, fuse, 4.0);
  const TaskId annotate = dag.add_task("annotate", 12.0);
  dag.add_edge(fuse, annotate, 10.0);
  const TaskId encode = dag.add_task("encode", 26.0);
  dag.add_edge(annotate, encode, 30.0);
  return dag;
}

void evaluate(const std::string& name, const ScheduleResult& result, double period) {
  std::cout << "--- " << name << " ---\n";
  if (!result.ok()) {
    std::cout << "  failed: " << result.error << "\n\n";
    return;
  }
  const Schedule& s = *result.schedule;
  SimOptions o;
  o.num_items = 40;
  o.warmup_items = 15;
  const SimResult sim = simulate(s, o);
  std::cout << "  stages: " << num_stages(s) << ", latency bound: " << latency_upper_bound(s)
            << ", simulated latency: " << sim.mean_latency
            << " (frame period " << period << ")\n"
            << "  processors used: " << num_procs_used(s)
            << ", remote transfers per frame: " << num_remote_comms(s) << '\n';

  // Exhaustive single-failure stress test.
  std::size_t survived = 0;
  double worst_latency = 0.0;
  for (ProcId u = 0; u < s.platform().num_procs(); ++u) {
    SimOptions crash = o;
    crash.failed = {u};
    const SimResult r = simulate(s, crash);
    if (r.complete) {
      ++survived;
      worst_latency = std::max(worst_latency, r.mean_latency);
    }
  }
  std::cout << "  single-failure stress: " << survived << '/' << s.platform().num_procs()
            << " crash scenarios survived, worst degraded latency: " << worst_latency
            << "\n\n";
}

}  // namespace

int main() {
  const Dag dag = make_video_pipeline(/*tiles=*/4);

  // A 12-node cluster: 4 fast GPUs-ish nodes (speed 2), 8 standard nodes.
  std::vector<double> speeds{2.0, 2.0, 2.0, 2.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
  Rng rng(2026);
  Matrix<double> delays(speeds.size(), speeds.size(), 0.0);
  for (std::size_t a = 0; a < speeds.size(); ++a) {
    for (std::size_t b = a + 1; b < speeds.size(); ++b) {
      const double d = rng.uniform(0.1, 0.3);
      delays(a, b) = d;
      delays(b, a) = d;
    }
  }
  const Platform platform(speeds, delays);

  std::cout << "Video pipeline: " << dag.num_tasks() << " tasks, " << dag.num_edges()
            << " edges, width " << graph_width(dag) << ", granularity "
            << granularity(dag, platform) << "\n\n";

  // Frame-rate requirement: a frame every 40 time units; survive 1 failure.
  SchedulerOptions options;
  options.eps = 1;
  options.period = 40.0;
  options.repair = true;

  const auto algos = resolve_schedulers({"rltf", "ltf", "stage_pack"});
  for (const Scheduler* algo : algos) {
    evaluate(algo->label, algo->schedule(dag, platform, options), options.period);
  }

  // How fast could we go? The throughput frontier per algorithm.
  SchedulerOptions base;
  base.eps = 1;
  for (const Scheduler* algo : algos) {
    const auto fn = [algo](const Dag& d, const Platform& p, const SchedulerOptions& o) {
      return algo->schedule(d, p, o);
    };
    const auto frontier = find_min_period(dag, platform, base, fn, 1e-3);
    if (frontier.found) {
      std::cout << algo->label << " minimal sustainable frame period: " << frontier.period
                << " (stages at the frontier: " << num_stages(*frontier.schedule) << ")\n";
    }
  }
  return 0;
}
