// Bounded asynchronous log sink: a fixed-size ring drained by one
// consumer thread, so hot paths (the server's admit loop, the daemon's
// event repair) pay an enqueue — never a write(2). The ring is bounded
// and *lossy by design*: when producers outrun the consumer the message
// is dropped and counted instead of blocking the producer or growing a
// queue without bound (the same discipline the admission queues apply to
// requests). The drop counter is part of the server's STATS response, so
// lost diagnostics are visible, not silent.
//
// Install one instance as the global sink (`install_async_logger`) and
// every log_debug()/log_info()/... call in the process routes through it;
// uninstall restores synchronous stderr. The destructor drains what the
// ring still holds, then joins the consumer.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/log.hpp"

namespace streamsched {

class AsyncLogger {
 public:
  /// `capacity` = ring slots (messages); `out` defaults to stderr.
  explicit AsyncLogger(std::size_t capacity = 1024);
  ~AsyncLogger();

  AsyncLogger(const AsyncLogger&) = delete;
  AsyncLogger& operator=(const AsyncLogger&) = delete;

  /// Queues one preformatted message. Returns false — and counts a drop —
  /// when the ring is full. Never blocks on I/O (the consumer thread does
  /// the writing).
  bool enqueue(LogLevel level, std::string message);

  /// Blocks until every message enqueued before the call is written.
  void flush();

  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::uint64_t written() const;
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    LogLevel level = LogLevel::kInfo;
    std::string message;
  };

  void consume();

  std::vector<Slot> slots_;
  mutable std::mutex mutex_;
  std::condition_variable consumer_cv_;
  std::condition_variable flush_cv_;
  std::size_t head_ = 0;  ///< next slot to pop
  std::size_t count_ = 0; ///< queued messages
  std::uint64_t dropped_ = 0;
  std::uint64_t written_ = 0;
  bool writing_ = false;  ///< consumer holds a popped message outside the lock
  bool stop_ = false;
  std::thread consumer_;
};

/// Installs `logger` as the process-wide log sink (nullptr uninstalls).
/// log_message() then enqueues instead of writing synchronously; messages
/// that do not fit are dropped and counted, never block. The logger must
/// outlive its installation — uninstall before destroying it.
void install_async_logger(AsyncLogger* logger);
[[nodiscard]] AsyncLogger* async_logger();

}  // namespace streamsched
