// Lightweight contract-checking helpers used across streamsched.
//
// SS_REQUIRE is for precondition violations on the public API surface
// (throws std::invalid_argument, always on). SS_CHECK is for internal
// invariants (throws std::logic_error, always on: the library is
// heuristic-heavy and silent state corruption is far more expensive than
// the branch).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace streamsched::detail {

[[noreturn]] inline void throw_require(const char* expr, const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_check(const char* expr, const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << "invariant failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace streamsched::detail

#define SS_REQUIRE(expr, msg)                                                \
  do {                                                                       \
    if (!(expr)) ::streamsched::detail::throw_require(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#define SS_CHECK(expr, msg)                                                  \
  do {                                                                       \
    if (!(expr)) ::streamsched::detail::throw_check(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
