#include "util/async_log.hpp"

#include <atomic>
#include <utility>

namespace streamsched {

namespace {
std::atomic<AsyncLogger*> g_async_logger{nullptr};
}  // namespace

AsyncLogger::AsyncLogger(std::size_t capacity) : slots_(capacity == 0 ? 1 : capacity) {
  consumer_ = std::thread([this] { consume(); });
}

AsyncLogger::~AsyncLogger() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  consumer_cv_.notify_all();
  consumer_.join();
}

bool AsyncLogger::enqueue(LogLevel level, std::string message) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (count_ == slots_.size()) {
      ++dropped_;
      return false;
    }
    Slot& slot = slots_[(head_ + count_) % slots_.size()];
    slot.level = level;
    slot.message = std::move(message);
    ++count_;
  }
  consumer_cv_.notify_one();
  return true;
}

void AsyncLogger::flush() {
  std::unique_lock<std::mutex> lock(mutex_);
  flush_cv_.wait(lock, [this] { return count_ == 0 && !writing_; });
}

std::uint64_t AsyncLogger::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::uint64_t AsyncLogger::written() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return written_;
}

void AsyncLogger::consume() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    consumer_cv_.wait(lock, [this] { return count_ > 0 || stop_; });
    if (count_ == 0 && stop_) return;
    // Pop one message, write it outside the lock (the whole point), then
    // retake the lock for the next round.
    Slot slot = std::move(slots_[head_]);
    head_ = (head_ + 1) % slots_.size();
    --count_;
    writing_ = true;
    lock.unlock();
    write_log_line(slot.level, slot.message);
    lock.lock();
    writing_ = false;
    ++written_;
    if (count_ == 0) flush_cv_.notify_all();
  }
}

void install_async_logger(AsyncLogger* logger) {
  g_async_logger.store(logger, std::memory_order_release);
}

AsyncLogger* async_logger() { return g_async_logger.load(std::memory_order_acquire); }

}  // namespace streamsched
