#include "util/thread_pool.hpp"

#include <exception>
#include <memory>

#include "util/assert.hpp"

namespace streamsched {

namespace {

// Depth of parallel_for drains the current thread is inside of. A nested
// parallel_for (from a body, or from a pool worker already consumed by one)
// runs inline: re-entering the shared queue while every worker may be
// blocked waiting on its own enqueued drains can deadlock.
thread_local std::size_t tl_drain_depth = 0;

struct DrainDepthGuard {
  DrainDepthGuard() { ++tl_drain_depth; }
  ~DrainDepthGuard() { --tl_drain_depth; }
};

// Shared state of one parallel_for call. Heap-owned (shared_ptr) by every
// enqueued drain job AND the waiting caller: a job may be popped from the
// queue after the caller already finished every index itself and returned —
// it must then find a self-contained context (next >= n), not dangling
// stack references.
struct ParallelContext {
  std::size_t n = 0;
  std::function<void(std::size_t)> body;
  std::atomic<std::size_t> next{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t done = 0;  // bodies completed (guarded by done_mutex)
  std::mutex error_mutex;
  std::exception_ptr error;
};

// Consumes indices until the counter is exhausted; counts completions in
// one batched update so the caller can wait for `done == n` regardless of
// whether the enqueued jobs ever ran (the caller drains too, so all
// indices complete even if the queue stays congested).
void drain(const std::shared_ptr<ParallelContext>& ctx) {
  DrainDepthGuard depth;
  std::size_t completed = 0;
  for (;;) {
    const std::size_t i = ctx->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= ctx->n) break;
    try {
      ctx->body(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(ctx->error_mutex);
      if (!ctx->error) ctx->error = std::current_exception();
    }
    ++completed;
  }
  if (completed > 0) {
    std::lock_guard<std::mutex> lock(ctx->done_mutex);
    ctx->done += completed;
    if (ctx->done == ctx->n) ctx->done_cv.notify_all();
  }
}

}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::post(std::function<void()> task) {
  SS_REQUIRE(static_cast<bool>(task), "posted task must be callable");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
  parallel_for(n, 0, body);
}

void ThreadPool::parallel_for(std::size_t n, std::size_t max_workers,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (tl_drain_depth > 0 || n == 1 || max_workers == 1) {
    // Nested (or degenerate) call: run inline. Consumers write results to
    // fixed slots, so the serialization is observationally identical.
    DrainDepthGuard depth;
    std::exception_ptr error;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        body(i);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }

  auto ctx = std::make_shared<ParallelContext>();
  ctx->n = n;
  ctx->body = body;  // jobs may outlive this call; they need their own copy

  // One drain job per worker within the cap; the calling thread drains too
  // (and alone suffices for completion when the queue is congested).
  std::size_t jobs = std::min(n, threads_.size());
  if (max_workers > 0) jobs = std::min(jobs, max_workers - 1);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t j = 0; j < jobs; ++j) {
      tasks_.emplace([ctx] { drain(ctx); });
    }
  }
  cv_.notify_all();

  drain(ctx);

  std::unique_lock<std::mutex> lock(ctx->done_mutex);
  ctx->done_cv.wait(lock, [&] { return ctx->done == ctx->n; });

  std::lock_guard<std::mutex> error_lock(ctx->error_mutex);
  if (ctx->error) std::rethrow_exception(ctx->error);
}

ThreadPool& global_thread_pool() {
  static ThreadPool pool;  // one thread per hardware core, built on first use
  return pool;
}

void parallel_for_indices(std::size_t n, std::size_t workers,
                          const std::function<void(std::size_t)>& body) {
  if (workers == 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  global_thread_pool().parallel_for(n, workers, body);
}

}  // namespace streamsched
