#include "util/thread_pool.hpp"

#include <exception>

#include "util/assert.hpp"

namespace streamsched {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
  if (n == 0) return;

  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  auto pending = std::make_shared<std::atomic<std::size_t>>(0);
  auto first_error = std::make_shared<std::mutex>();
  auto error = std::make_shared<std::exception_ptr>();

  auto drain = [next, n, &body, error, first_error] {
    for (;;) {
      const std::size_t i = next->fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(*first_error);
        if (!*error) *error = std::current_exception();
      }
    }
  };

  // Enqueue one drain task per worker; the calling thread drains too.
  const std::size_t jobs = std::min(n, threads_.size());
  std::mutex done_mutex;
  std::condition_variable done_cv;
  pending->store(jobs);
  for (std::size_t j = 0; j < jobs; ++j) {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.emplace([drain, pending, &done_mutex, &done_cv] {
      drain();
      // Notify while holding the lock: the waiter owns done_cv/done_mutex on
      // its stack and may destroy them as soon as it observes pending == 0.
      std::lock_guard<std::mutex> lock2(done_mutex);
      pending->fetch_sub(1);
      done_cv.notify_one();
    });
  }
  cv_.notify_all();

  drain();

  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return pending->load() == 0; });

  if (*error) std::rethrow_exception(*error);
}

void parallel_for_indices(std::size_t n, std::size_t workers,
                          const std::function<void(std::size_t)>& body) {
  if (workers == 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  ThreadPool pool(workers);
  pool.parallel_for(n, body);
}

}  // namespace streamsched
