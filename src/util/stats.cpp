#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace streamsched {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return n_ == 0 ? 0.0 : min_; }

double RunningStats::max() const { return n_ == 0 ? 0.0 : max_; }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  mean_ += delta * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double mean_of(const std::vector<double>& xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double stddev_of(const std::vector<double>& xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.stddev();
}

double quantile_of(std::vector<double> xs, double q) {
  SS_REQUIRE(!xs.empty(), "quantile of empty sample");
  SS_REQUIRE(q >= 0.0 && q <= 1.0, "quantile order out of range");
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

}  // namespace streamsched
