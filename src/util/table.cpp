#include "util/table.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace streamsched {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  SS_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  SS_REQUIRE(cells.size() == headers_.size(), "row width does not match header count");
  rows_.push_back(std::move(cells));
}

void Table::add_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (double c : cells) formatted.push_back(fmt(c, precision));
  add_row(std::move(formatted));
}

std::string Table::fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::to_ascii() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c)
      os << ' ' << std::setw(static_cast<int>(width[c])) << std::right << row[c] << " |";
    os << '\n';
  };
  auto emit_rule = [&] {
    os << '+';
    for (std::size_t c = 0; c < width.size(); ++c) os << std::string(width[c] + 2, '-') << '+';
    os << '\n';
  };

  emit_rule();
  emit_row(headers_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return os.str();
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open '" + path + "' for writing");
  f << to_csv();
  if (!f) throw std::runtime_error("failed while writing '" + path + "'");
}

std::ostream& operator<<(std::ostream& os, const Table& t) { return os << t.to_ascii(); }

}  // namespace streamsched
