// Deterministic pseudo-random number generation.
//
// All stochastic components in streamsched (graph generators, platform
// generators, tie-breaking, failure sampling, experiment sweeps) draw from
// this engine so that every result in the repository is reproducible from a
// single 64-bit seed. The engine is xoshiro256** seeded via SplitMix64;
// child streams derived with `fork` are statistically independent, which
// keeps threaded sweeps reproducible regardless of thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace streamsched {

/// SplitMix64 step; used for seeding and for deriving child seeds.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// Deterministic xoshiro256** engine with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Raw 64 random bits (UniformRandomBitGenerator interface).
  std::uint64_t operator()();

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Child engine whose stream is independent of this one and of other
  /// children derived with different tags.
  [[nodiscard]] Rng fork(std::uint64_t tag);

  /// k distinct values drawn uniformly from {0, ..., n-1}, ascending order.
  /// Requires k <= n.
  [[nodiscard]] std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n,
                                                                      std::uint32_t k);

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    SS_REQUIRE(!v.empty(), "pick from empty vector");
    return v[static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(v.size()) - 1))];
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace streamsched
