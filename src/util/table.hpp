// Aligned ASCII table / CSV emitter for benchmark and figure binaries.
//
// The figure-regeneration benches print the same rows/series the paper
// reports; Table gives them a consistent, diff-friendly format and an
// optional CSV dump (for re-plotting with external tools).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace streamsched {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  void add_row(const std::vector<double>& cells, int precision = 2);

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t num_cols() const { return headers_.size(); }

  /// Renders an aligned, pipe-separated ASCII table.
  [[nodiscard]] std::string to_ascii() const;

  /// Renders RFC-4180-style CSV (quotes cells containing , " or newline).
  [[nodiscard]] std::string to_csv() const;

  /// Writes CSV to `path`; throws std::runtime_error on I/O failure.
  void write_csv(const std::string& path) const;

  /// Formats a double with fixed precision (shared helper).
  [[nodiscard]] static std::string fmt(double value, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const Table& t);

}  // namespace streamsched
