// Tiny command-line flag parser for the bench and example binaries.
//
// Accepts `--name=value`, `--name value` and bare `--flag` (boolean true).
// Unknown flags are an error so typos in experiment sweeps fail loudly.
// Also honours environment variables as defaults (flag wins over env).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace streamsched {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// Registers a flag so it is considered known. Returns current value.
  [[nodiscard]] std::string get_string(const std::string& name, const std::string& fallback,
                                       const std::string& env = "");
  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t fallback,
                                     const std::string& env = "");
  [[nodiscard]] double get_double(const std::string& name, double fallback,
                                  const std::string& env = "");
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback,
                              const std::string& env = "");
  /// Comma-separated list flag (`--name=a,b,c`); empty items are dropped.
  /// `fallback` is itself a comma-separated list.
  [[nodiscard]] std::vector<std::string> get_list(const std::string& name,
                                                  const std::string& fallback,
                                                  const std::string& env = "");

  /// Throws std::invalid_argument listing any flag never registered.
  void finish() const;

  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  [[nodiscard]] const std::string* lookup(const std::string& name, const std::string& env);

  std::string program_;
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> consumed_;
  mutable std::vector<std::string> env_cache_;
};

}  // namespace streamsched
