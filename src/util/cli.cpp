#include "util/cli.hpp"

#include <cstdlib>
#include <stdexcept>

#include "util/assert.hpp"

namespace streamsched {

Cli::Cli(int argc, const char* const* argv) {
  SS_REQUIRE(argc >= 1, "argv must contain the program name");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
  for (const auto& [name, value] : values_) {
    (void)value;
    consumed_[name] = false;
  }
}

const std::string* Cli::lookup(const std::string& name, const std::string& env) {
  if (auto it = values_.find(name); it != values_.end()) {
    consumed_[name] = true;
    return &it->second;
  }
  if (!env.empty()) {
    if (const char* v = std::getenv(env.c_str()); v != nullptr) {
      env_cache_.emplace_back(v);
      return &env_cache_.back();
    }
  }
  return nullptr;
}

std::string Cli::get_string(const std::string& name, const std::string& fallback,
                            const std::string& env) {
  const std::string* v = lookup(name, env);
  return v ? *v : fallback;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t fallback,
                          const std::string& env) {
  const std::string* v = lookup(name, env);
  if (!v) return fallback;
  try {
    return std::stoll(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects an integer, got '" + *v + "'");
  }
}

double Cli::get_double(const std::string& name, double fallback, const std::string& env) {
  const std::string* v = lookup(name, env);
  if (!v) return fallback;
  try {
    return std::stod(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" + *v + "'");
  }
}

bool Cli::get_bool(const std::string& name, bool fallback, const std::string& env) {
  const std::string* v = lookup(name, env);
  if (!v) return fallback;
  if (*v == "true" || *v == "1" || *v == "yes" || *v == "on") return true;
  if (*v == "false" || *v == "0" || *v == "no" || *v == "off") return false;
  throw std::invalid_argument("flag --" + name + " expects a boolean, got '" + *v + "'");
}

std::vector<std::string> Cli::get_list(const std::string& name, const std::string& fallback,
                                       const std::string& env) {
  const std::string* v = lookup(name, env);
  const std::string& csv = v ? *v : fallback;
  std::vector<std::string> items;
  std::string::size_type begin = 0;
  while (begin <= csv.size()) {
    const auto comma = csv.find(',', begin);
    const auto end = comma == std::string::npos ? csv.size() : comma;
    if (end > begin) items.push_back(csv.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return items;
}

void Cli::finish() const {
  std::string unknown;
  for (const auto& [name, used] : consumed_) {
    if (!used) unknown += (unknown.empty() ? "--" : ", --") + name;
  }
  if (!unknown.empty()) {
    throw std::invalid_argument("unknown flag(s): " + unknown);
  }
}

}  // namespace streamsched
