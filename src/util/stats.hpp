// Small descriptive-statistics helpers used by the experiment harness and
// the benchmark/figure binaries.
#pragma once

#include <cstddef>
#include <vector>

namespace streamsched {

/// Streaming accumulator (Welford) for mean / variance / extrema.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Arithmetic mean; 0 for an empty vector.
[[nodiscard]] double mean_of(const std::vector<double>& xs);

/// Sample standard deviation; 0 for fewer than two samples.
[[nodiscard]] double stddev_of(const std::vector<double>& xs);

/// q-quantile (0 <= q <= 1) by linear interpolation on the sorted sample.
/// Requires a non-empty vector.
[[nodiscard]] double quantile_of(std::vector<double> xs, double q);

}  // namespace streamsched
