// Shared strong-ish identifier types for tasks, processors and edges.
#pragma once

#include <cstdint>
#include <limits>

namespace streamsched {

using TaskId = std::uint32_t;
using ProcId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr TaskId kInvalidTask = std::numeric_limits<TaskId>::max();
inline constexpr ProcId kInvalidProc = std::numeric_limits<ProcId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

/// Replica index within a task's active-replication group (0 .. ε).
using CopyId = std::uint32_t;

/// Identifies one replica of one task.
struct ReplicaRef {
  TaskId task = kInvalidTask;
  CopyId copy = 0;

  friend bool operator==(const ReplicaRef&, const ReplicaRef&) = default;
  friend auto operator<=>(const ReplicaRef&, const ReplicaRef&) = default;
};

}  // namespace streamsched
