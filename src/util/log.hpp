// Minimal leveled logging. Schedulers and the simulator are silent by
// default; examples and benches raise the level for progress reporting.
#pragma once

#include <sstream>
#include <string>

namespace streamsched {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level actually emitted (default: kWarn).
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emits `message` to stderr when `level` >= the global level.
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

[[nodiscard]] inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
[[nodiscard]] inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
[[nodiscard]] inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
[[nodiscard]] inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace streamsched
