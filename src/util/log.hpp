// Minimal leveled logging. Schedulers and the simulator are silent by
// default; examples and benches raise the level for progress reporting.
// Long-running services install an AsyncLogger (util/async_log.hpp) so
// emitting never blocks on I/O; without one, messages go synchronously to
// stderr.
#pragma once

#include <sstream>
#include <string>

namespace streamsched {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level actually emitted (default: kWarn).
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// True when `level` passes the global filter.
[[nodiscard]] inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(log_level());
}

/// Emits `message` when `level` passes the filter: enqueued on the
/// installed AsyncLogger (dropped-and-counted when its ring is full),
/// synchronously to stderr otherwise.
void log_message(LogLevel level, const std::string& message);

/// The synchronous stderr writer (level prefix + newline, one mutex).
/// AsyncLogger's consumer thread calls this; everything else goes through
/// log_message.
void write_log_line(LogLevel level, const std::string& message);

namespace detail {
/// Streams into a buffer and emits on destruction — but only when the
/// level passes the filter at construction time; disabled lines skip the
/// formatting entirely, so log_debug() in a hot path costs one level load.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level), enabled_(log_enabled(level)) {}
  ~LogLine() {
    if (enabled_) log_message(level_, os_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (enabled_) os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream os_;
};
}  // namespace detail

[[nodiscard]] inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
[[nodiscard]] inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
[[nodiscard]] inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
[[nodiscard]] inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace streamsched
