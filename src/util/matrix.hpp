// Dense row-major matrix with bounds-checked access. Used for link delay
// matrices, mapping matrices, and transitive-closure bitmaps.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "util/assert.hpp"

namespace streamsched {

template <typename T>
class Matrix {
 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  T& operator()(std::size_t r, std::size_t c) {
    SS_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }

  const T& operator()(std::size_t r, std::size_t c) const {
    SS_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  [[nodiscard]] const std::vector<T>& data() const { return data_; }

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

}  // namespace streamsched
