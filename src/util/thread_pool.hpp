// Fixed-size worker pool used to parallelize experiment sweeps across
// random graph instances.
//
// Work items are indexed, and `parallel_for` partitions [0, n) dynamically
// (atomic counter) so stragglers balance out. Results are written into
// pre-sized slots, which keeps sweep output deterministic and independent
// of the number of workers — a requirement for reproducible figures.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace streamsched {

class ThreadPool {
 public:
  /// Creates `workers` threads; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return threads_.size(); }

  /// Runs body(i) for each i in [0, n), distributing indices dynamically
  /// over the pool (the calling thread participates). Exceptions thrown by
  /// any body are captured; the first one is rethrown after all indices
  /// complete or are abandoned.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  bool stop_ = false;
};

/// Convenience: one-shot parallel_for on a transient pool when no pool is
/// available. `workers == 1` executes inline (useful for debugging).
void parallel_for_indices(std::size_t n, std::size_t workers,
                          const std::function<void(std::size_t)>& body);

}  // namespace streamsched
