// Fixed-size worker pool used to parallelize experiment sweeps across
// random graph instances, the survival-kernel fan-outs, and the placement
// daemon's request queue.
//
// Work items are indexed, and `parallel_for` partitions [0, n) dynamically
// (atomic counter) so stragglers balance out. Results are written into
// pre-sized slots, which keeps sweep output deterministic and independent
// of the number of workers — a requirement for reproducible figures.
//
// One process-wide pool (`global_thread_pool`, lazily built at first use)
// is shared by every parallel layer — exact reliability enumeration,
// Monte-Carlo estimation, the sweep, and the placement daemon — instead of
// spinning a transient pool per call. Sharing is safe for determinism
// because every consumer assigns work to fixed slots; it is safe for
// liveness because a `parallel_for` issued from inside another
// `parallel_for` body (or any pool worker already draining one) runs its
// indices inline on the calling thread instead of re-entering the shared
// queue, which could otherwise deadlock with every worker waiting on tasks
// stuck behind its peers.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace streamsched {

class ThreadPool {
 public:
  /// Creates `workers` threads; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return threads_.size(); }

  /// Runs body(i) for each i in [0, n), distributing indices dynamically
  /// over the pool (the calling thread participates). Exceptions thrown by
  /// any body are captured; the first one is rethrown after all indices
  /// complete. Nested calls (from a body already draining a parallel_for
  /// on any pool) run inline on the calling thread.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Same, with total parallelism (drain jobs + the calling thread) capped
  /// at `max_workers`; 0 means uncapped. Lets callers honor a user-supplied
  /// thread budget on the shared pool without resizing it.
  void parallel_for(std::size_t n, std::size_t max_workers,
                    const std::function<void(std::size_t)>& body);

  /// Enqueues one fire-and-forget task (the placement daemon's request
  /// queue). The task runs on some pool worker; ordering between posted
  /// tasks follows the queue, but tasks posted while a parallel_for is in
  /// flight interleave with its drain jobs.
  void post(std::function<void()> task);

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  bool stop_ = false;
};

/// The process-wide shared pool, built on first use with one thread per
/// hardware core. Every layer that fans indexed work out (sweep, exact
/// enumeration, MC estimation, the placement daemon) shares it, so a
/// process never stacks transient pools.
[[nodiscard]] ThreadPool& global_thread_pool();

/// Convenience: parallel_for over the shared global pool, capped at
/// `workers` total threads (0 = uncapped, i.e. hardware concurrency).
/// `workers == 1` executes inline (useful for debugging); results are
/// identical for every worker count for any caller that writes results
/// into fixed per-index slots.
void parallel_for_indices(std::size_t n, std::size_t workers,
                          const std::function<void(std::size_t)>& body);

}  // namespace streamsched
