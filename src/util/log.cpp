#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

#include "util/async_log.hpp"

namespace streamsched {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void write_log_line(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << "[streamsched " << level_name(level) << "] " << message << '\n';
}

void log_message(LogLevel level, const std::string& message) {
  if (!log_enabled(level)) return;
  if (AsyncLogger* sink = async_logger()) {
    // Full ring: drop (counted by the sink) rather than block the caller.
    (void)sink->enqueue(level, message);
    return;
  }
  write_log_line(level, message);
}

}  // namespace streamsched
