#include "util/fault_inject.hpp"

#include <cstdlib>
#include <stdexcept>

#include "util/rng.hpp"

namespace streamsched {

namespace {

thread_local FaultPlan* t_fault_plan = nullptr;

double parse_probability(const std::string& value, const std::string& key) {
  char* end = nullptr;
  const double p = std::strtod(value.c_str(), &end);
  if (value.empty() || end != value.c_str() + value.size() || p < 0.0 || p > 1.0) {
    throw std::invalid_argument("fault spec " + key + " wants a probability in [0,1], got '" +
                                value + "'");
  }
  return p;
}

std::uint64_t parse_u64_value(const std::string& value, const std::string& key) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (value.empty() || end != value.c_str() + value.size()) {
    throw std::invalid_argument("fault spec " + key + " wants an integer, got '" + value + "'");
  }
  return static_cast<std::uint64_t>(v);
}

}  // namespace

const char* fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kConnect: return "connect";
    case FaultSite::kRead: return "read";
    case FaultSite::kWrite: return "write";
  }
  return "?";
}

FaultSpec FaultSpec::parse(const std::string& text) {
  FaultSpec spec;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(',', start);
    if (end == std::string::npos) end = text.size();
    const std::string item = text.substr(start, end - start);
    start = end + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("fault spec wants key=value items, got '" + item + "'");
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "seed") {
      spec.seed = parse_u64_value(value, key);
    } else if (key == "short_io") {
      spec.short_io = parse_probability(value, key);
    } else if (key == "eintr") {
      spec.eintr = parse_probability(value, key);
    } else if (key == "reset") {
      spec.reset = parse_probability(value, key);
    } else if (key == "refuse") {
      spec.refuse = parse_probability(value, key);
    } else if (key == "max") {
      spec.max_faults = parse_u64_value(value, key);
    } else if (key == "delay") {
      const std::size_t colon = value.find(':');
      spec.delay = parse_probability(value.substr(0, colon), key);
      if (colon != std::string::npos) {
        spec.delay_us =
            static_cast<std::uint32_t>(parse_u64_value(value.substr(colon + 1), "delay_us"));
      }
    } else {
      throw std::invalid_argument("fault spec has unknown key '" + key + "'");
    }
  }
  return spec;
}

std::string FaultSpec::to_string() const {
  std::string out = "seed=" + std::to_string(seed);
  const auto add = [&out](const char* key, double p) {
    if (p > 0.0) out += std::string(",") + key + "=" + std::to_string(p);
  };
  add("short_io", short_io);
  add("eintr", eintr);
  add("reset", reset);
  if (delay > 0.0) {
    out += ",delay=" + std::to_string(delay) + ":" + std::to_string(delay_us);
  }
  add("refuse", refuse);
  if (max_faults > 0) out += ",max=" + std::to_string(max_faults);
  return out;
}

FaultPlan::FaultPlan(FaultSpec spec) : spec_(spec) {}

FaultAction FaultPlan::next(FaultSite site) {
  const std::uint64_t seq =
      seq_[static_cast<std::size_t>(site)].fetch_add(1, std::memory_order_relaxed);
  decisions_.fetch_add(1, std::memory_order_relaxed);

  // Pure function of (seed, site, seq): two SplitMix64 steps whiten the
  // combination so adjacent sequence numbers decorrelate.
  std::uint64_t state =
      spec_.seed ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(site) + 1)) ^
      (seq * 0xbf58476d1ce4e5b9ULL);
  (void)splitmix64(state);
  const std::uint64_t draw = splitmix64(state);
  const double u = static_cast<double>(draw >> 11) * 0x1.0p-53;

  // Walk the cumulative probability ladder of the kinds that apply here.
  FaultAction action;
  double cum = 0.0;
  const bool io_site = site != FaultSite::kConnect;
  const auto hit = [&](double p) {
    if (p <= 0.0) return false;
    cum += p;
    return u < cum;
  };
  if (!io_site && hit(spec_.refuse)) {
    action.kind = FaultAction::Kind::kRefuse;
  } else if (io_site && hit(spec_.reset)) {
    action.kind = FaultAction::Kind::kReset;
  } else if (io_site && hit(spec_.short_io)) {
    action.kind = FaultAction::Kind::kShortIo;
  } else if (hit(spec_.eintr)) {
    action.kind = FaultAction::Kind::kEintr;
  } else if (hit(spec_.delay)) {
    action.kind = FaultAction::Kind::kDelay;
    action.delay_us = spec_.delay_us;
  }
  if (action.kind == FaultAction::Kind::kNone) return action;

  // The budget caps *injected* faults, not decisions: the stream of draws
  // stays identical, later hits are simply suppressed.
  if (spec_.max_faults > 0) {
    if (injected_.fetch_add(1, std::memory_order_relaxed) >= spec_.max_faults) {
      return FaultAction{};
    }
  } else {
    injected_.fetch_add(1, std::memory_order_relaxed);
  }
  fired_[static_cast<std::size_t>(action.kind) - 1].fetch_add(1, std::memory_order_relaxed);
  return action;
}

FaultCounters FaultPlan::counters() const {
  FaultCounters c;
  c.decisions = decisions_.load(std::memory_order_relaxed);
  c.short_ios = fired_[static_cast<std::size_t>(FaultAction::Kind::kShortIo) - 1].load(
      std::memory_order_relaxed);
  c.eintrs = fired_[static_cast<std::size_t>(FaultAction::Kind::kEintr) - 1].load(
      std::memory_order_relaxed);
  c.resets = fired_[static_cast<std::size_t>(FaultAction::Kind::kReset) - 1].load(
      std::memory_order_relaxed);
  c.delays = fired_[static_cast<std::size_t>(FaultAction::Kind::kDelay) - 1].load(
      std::memory_order_relaxed);
  c.refusals = fired_[static_cast<std::size_t>(FaultAction::Kind::kRefuse) - 1].load(
      std::memory_order_relaxed);
  return c;
}

void install_fault_plan(FaultPlan* plan) { t_fault_plan = plan; }

FaultPlan* fault_plan() { return t_fault_plan; }

}  // namespace streamsched
