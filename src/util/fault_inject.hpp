// Deterministic fault injection for the service tier's I/O paths.
//
// A FaultPlan is a seeded decision stream: every hardened I/O call site
// (net/socket.hpp's recv_some/send_some/connect helpers) asks the plan
// whether to inject a fault — a short read/write, a spurious EINTR, a
// connection reset, a fixed delay, or a refused connect — before touching
// the real socket. Decisions are a pure function of (seed, site, per-site
// sequence number), so a single-threaded caller replays the exact same
// fault sequence from the same seed: chaos tests are bit-reproducible,
// and a failure found at seed S reproduces with seed S forever.
//
// Plans are installed per *thread* (install_fault_plan), not per process:
// the decision sequence of a site stays deterministic because only one
// thread consumes it, and a chaos test can torture the client thread
// while the server's poll thread runs clean (or vice versa — the server
// installs its own plan on the poll thread when ServerConfig::fault_spec
// is set). When no plan is installed the hot-path check is one
// thread-local pointer load and a branch — nothing else.
//
// Faults are *simulated* at the wrapper layer (errno is set and -1
// returned without touching the socket) rather than provoked on the real
// network, which is what makes them schedulable and exactly countable.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace streamsched {

/// Injection points. Each site has its own deterministic decision stream.
enum class FaultSite : std::uint8_t { kConnect = 0, kRead = 1, kWrite = 2 };
inline constexpr std::size_t kNumFaultSites = 3;

[[nodiscard]] const char* fault_site_name(FaultSite site);

/// One decision: what to inject before the next real syscall.
struct FaultAction {
  enum class Kind : std::uint8_t {
    kNone,     ///< proceed normally
    kShortIo,  ///< clamp the read/write length to one byte
    kEintr,    ///< behave as if the syscall returned EINTR once
    kReset,    ///< fail with ECONNRESET without touching the socket
    kDelay,    ///< sleep delay_us, then proceed
    kRefuse,   ///< fail a connect with ECONNREFUSED (kConnect only)
  };
  Kind kind = Kind::kNone;
  std::uint32_t delay_us = 0;  ///< kDelay only
};

/// Parsed fault-plan specification. Probabilities are per decision; sites
/// ignore kinds that cannot apply to them (refuse is connect-only,
/// short-IO is read/write-only). The text grammar is comma-separated
/// key=value, all keys optional:
///
///   seed=42,short_io=0.25,eintr=0.2,reset=0.05,delay=0.1:200,refuse=0.1,max=64
///
/// `delay` takes `<probability>:<microseconds>`; `max` bounds the total
/// number of injected faults (0 = unlimited) so targeted scenarios like
/// "exactly one reset, then a clean network" are expressible.
struct FaultSpec {
  std::uint64_t seed = 1;
  double short_io = 0.0;
  double eintr = 0.0;
  double reset = 0.0;
  double delay = 0.0;
  double refuse = 0.0;
  std::uint32_t delay_us = 200;
  std::uint64_t max_faults = 0;  ///< 0 = unlimited

  /// Parses the grammar above; throws std::invalid_argument on unknown
  /// keys, malformed values, or probabilities outside [0, 1].
  [[nodiscard]] static FaultSpec parse(const std::string& text);
  [[nodiscard]] std::string to_string() const;
};

/// Exact injection accounting (what actually fired, per kind).
struct FaultCounters {
  std::uint64_t decisions = 0;  ///< next() calls across all sites
  std::uint64_t short_ios = 0;
  std::uint64_t eintrs = 0;
  std::uint64_t resets = 0;
  std::uint64_t delays = 0;
  std::uint64_t refusals = 0;

  [[nodiscard]] std::uint64_t injected() const {
    return short_ios + eintrs + resets + delays + refusals;
  }
};

/// The seeded decision stream. Thread-safe: per-site sequence numbers are
/// atomic, and each decision is a pure function of (seed, site, seq) — no
/// shared RNG state — so concurrent sites never perturb each other's
/// streams.
class FaultPlan {
 public:
  explicit FaultPlan(FaultSpec spec);

  /// Draws the next decision for `site`. Deterministic per (seed, site,
  /// call index); returns kNone forever once max_faults is exhausted.
  [[nodiscard]] FaultAction next(FaultSite site);

  [[nodiscard]] const FaultSpec& spec() const { return spec_; }
  [[nodiscard]] FaultCounters counters() const;

 private:
  FaultSpec spec_;
  std::array<std::atomic<std::uint64_t>, kNumFaultSites> seq_{};
  std::atomic<std::uint64_t> injected_{0};
  std::atomic<std::uint64_t> decisions_{0};
  std::array<std::atomic<std::uint64_t>, 5> fired_{};  ///< by Kind, kShortIo..kRefuse
};

/// Installs `plan` for the calling thread (nullptr uninstalls). The plan
/// is borrowed, not owned — it must outlive the installation. A plan may
/// be installed on several threads at once; see the class doc for what
/// that does to determinism.
void install_fault_plan(FaultPlan* plan);

/// The calling thread's installed plan, or nullptr. One thread-local
/// load — the entire disabled-path overhead.
[[nodiscard]] FaultPlan* fault_plan();

/// RAII install/uninstall for tests.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(FaultPlan& plan) { install_fault_plan(&plan); }
  ~ScopedFaultPlan() { install_fault_plan(nullptr); }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

}  // namespace streamsched
