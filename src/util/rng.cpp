#include "util/rng.hpp"

#include <algorithm>
#include <cmath>

namespace streamsched {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // xoshiro state must not be all-zero; SplitMix64 seeding guarantees a
  // well-mixed non-degenerate state for any seed, including 0.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  SS_REQUIRE(lo <= hi, "uniform range inverted");
  return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  SS_REQUIRE(lo <= hi, "uniform_int range inverted");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full 64-bit range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = (~0ULL) - ((~0ULL) % span + 1) % span;
  std::uint64_t draw = (*this)();
  while (draw > limit) draw = (*this)();
  return lo + static_cast<std::int64_t>(draw % span);
}

bool Rng::bernoulli(double p) {
  SS_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli probability out of range");
  return uniform01() < p;
}

Rng Rng::fork(std::uint64_t tag) {
  // Mix the current stream with the tag via SplitMix64 so forks with
  // distinct tags decorrelate even when requested repeatedly.
  std::uint64_t mix = (*this)() ^ (0x632be59bd9b4e019ULL * (tag + 1));
  return Rng(splitmix64(mix));
}

std::vector<std::uint32_t> Rng::sample_without_replacement(std::uint32_t n, std::uint32_t k) {
  SS_REQUIRE(k <= n, "cannot sample more elements than the population");
  // Floyd's algorithm: O(k) expected draws, output sorted afterwards.
  std::vector<std::uint32_t> out;
  out.reserve(k);
  for (std::uint32_t j = n - k; j < n; ++j) {
    const auto t = static_cast<std::uint32_t>(uniform_int(0, j));
    bool present = false;
    for (auto x : out) {
      if (x == t) {
        present = true;
        break;
      }
    }
    out.push_back(present ? j : t);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace streamsched
