#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>

namespace streamsched::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), what);
}

sockaddr_un unix_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw std::invalid_argument("unix socket path empty or too long: '" + path + "'");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in tcp_address(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::invalid_argument("not an IPv4 address: '" + host +
                                "' (the front end resolves no hostnames)");
  }
  return addr;
}

}  // namespace

void Fd::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Fd listen_unix(const std::string& path) {
  const sockaddr_un addr = unix_address(path);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket(AF_UNIX)");
  ::unlink(path.c_str());  // stale socket file from a previous run
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw_errno("bind(" + path + ")");
  }
  if (::listen(fd.get(), 128) != 0) throw_errno("listen(" + path + ")");
  return fd;
}

Fd listen_tcp(const std::string& host, std::uint16_t port, std::uint16_t* bound_port) {
  sockaddr_in addr = tcp_address(host, port);
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket(AF_INET)");
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0) {
    throw_errno("setsockopt(SO_REUSEADDR)");
  }
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw_errno("bind(" + host + ":" + std::to_string(port) + ")");
  }
  if (::listen(fd.get(), 128) != 0) throw_errno("listen(tcp)");
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&actual), &len) != 0) {
      throw_errno("getsockname");
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return fd;
}

Fd connect_unix(const std::string& path) {
  const sockaddr_un addr = unix_address(path);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket(AF_UNIX)");
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw_errno("connect(" + path + ")");
  }
  return fd;
}

Fd connect_tcp(const std::string& host, std::uint16_t port) {
  const sockaddr_in addr = tcp_address(host, port);
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket(AF_INET)");
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw_errno("connect(" + host + ":" + std::to_string(port) + ")");
  }
  return fd;
}

void set_nonblocking(int fd, bool nonblocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  const int next = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, next) != 0) throw_errno("fcntl(F_SETFL)");
}

}  // namespace streamsched::net
