#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>

#include "util/fault_inject.hpp"

namespace streamsched::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), what);
}

sockaddr_un unix_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw std::invalid_argument("unix socket path empty or too long: '" + path + "'");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in tcp_address(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::invalid_argument("not an IPv4 address: '" + host +
                                "' (the front end resolves no hostnames)");
  }
  return addr;
}

void sleep_us(std::uint32_t us) {
  timespec ts{static_cast<time_t>(us / 1000000), static_cast<long>(us % 1000000) * 1000};
  while (::nanosleep(&ts, &ts) != 0 && errno == EINTR) {
  }
}

/// Injected EINTRs are bounded so a probability-1 spec cannot spin a call
/// site forever; real EINTRs stay unbounded (they are always progress).
constexpr int kMaxInjectedEintrs = 16;

/// Consults the calling thread's FaultPlan before an I/O step. Returns
/// false with errno set when the step must fail (reset/refuse); otherwise
/// applies delays, simulated EINTRs, and short-IO length clamping.
bool apply_fault(FaultSite site, std::size_t* len) {
  FaultPlan* plan = fault_plan();
  if (plan == nullptr) return true;
  for (int injected_eintrs = 0; injected_eintrs < kMaxInjectedEintrs; ++injected_eintrs) {
    const FaultAction action = plan->next(site);
    switch (action.kind) {
      case FaultAction::Kind::kNone:
        return true;
      case FaultAction::Kind::kEintr:
        continue;  // "the syscall returned EINTR" — the retry loop is here
      case FaultAction::Kind::kDelay:
        sleep_us(action.delay_us);
        return true;
      case FaultAction::Kind::kShortIo:
        if (len != nullptr && *len > 1) *len = 1;
        return true;
      case FaultAction::Kind::kReset:
        errno = ECONNRESET;
        return false;
      case FaultAction::Kind::kRefuse:
        errno = ECONNREFUSED;
        return false;
    }
  }
  return true;
}

/// Blocking connect with correct EINTR semantics: an interrupted connect
/// keeps completing in the background, so re-calling connect is wrong
/// (EALREADY) — wait for writability and read SO_ERROR instead.
void connect_checked(int fd, const sockaddr* addr, socklen_t addr_len,
                     const std::string& what) {
  if (!apply_fault(FaultSite::kConnect, nullptr)) throw_errno(what);
  if (::connect(fd, addr, addr_len) == 0) return;
  if (errno != EINTR) throw_errno(what);
  for (;;) {
    pollfd pfd{fd, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw_errno(what + " (poll)");
    }
    break;
  }
  int err = 0;
  socklen_t err_len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0) {
    throw_errno(what + " (SO_ERROR)");
  }
  if (err != 0) {
    errno = err;
    throw_errno(what);
  }
}

}  // namespace

void Fd::close() {
  if (fd_ >= 0) {
    // Linux never leaves the fd open after EINTR; retrying close would
    // race a concurrent reuse of the descriptor number.
    ::close(fd_);
    fd_ = -1;
  }
}

Fd listen_unix(const std::string& path) {
  const sockaddr_un addr = unix_address(path);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket(AF_UNIX)");
  ::unlink(path.c_str());  // stale socket file from a previous run
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw_errno("bind(" + path + ")");
  }
  if (::listen(fd.get(), 128) != 0) throw_errno("listen(" + path + ")");
  return fd;
}

Fd listen_tcp(const std::string& host, std::uint16_t port, std::uint16_t* bound_port) {
  sockaddr_in addr = tcp_address(host, port);
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket(AF_INET)");
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0) {
    throw_errno("setsockopt(SO_REUSEADDR)");
  }
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw_errno("bind(" + host + ":" + std::to_string(port) + ")");
  }
  if (::listen(fd.get(), 128) != 0) throw_errno("listen(tcp)");
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&actual), &len) != 0) {
      throw_errno("getsockname");
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return fd;
}

Fd connect_unix(const std::string& path) {
  const sockaddr_un addr = unix_address(path);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket(AF_UNIX)");
  connect_checked(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr),
                  "connect(" + path + ")");
  return fd;
}

Fd connect_tcp(const std::string& host, std::uint16_t port) {
  const sockaddr_in addr = tcp_address(host, port);
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket(AF_INET)");
  connect_checked(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr),
                  "connect(" + host + ":" + std::to_string(port) + ")");
  return fd;
}

void set_nonblocking(int fd, bool nonblocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  const int next = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, next) != 0) throw_errno("fcntl(F_SETFL)");
}

ssize_t recv_some(int fd, void* buf, std::size_t len) {
  std::size_t step = len;
  if (!apply_fault(FaultSite::kRead, &step)) return -1;
  for (;;) {
    const ssize_t n = ::recv(fd, buf, step, 0);
    if (n >= 0 || errno != EINTR) return n;
  }
}

ssize_t send_some(int fd, const void* buf, std::size_t len) {
  std::size_t step = len;
  if (!apply_fault(FaultSite::kWrite, &step)) return -1;
  for (;;) {
    const ssize_t n = ::send(fd, buf, step, MSG_NOSIGNAL);
    if (n >= 0 || errno != EINTR) return n;
  }
}

void send_all(int fd, const void* buf, std::size_t len) {
  const char* data = static_cast<const char*>(buf);
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = send_some(fd, data + sent, len - sent);
    if (n < 0) throw_errno("send");
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace streamsched::net
