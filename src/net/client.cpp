#include "net/client.hpp"

#include <sys/socket.h>

#include <cerrno>
#include <stdexcept>
#include <system_error>

namespace streamsched::net {

Client Client::connect_unix_path(const std::string& path) {
  return Client(connect_unix(path));
}

Client Client::connect_tcp_host(const std::string& host, std::uint16_t port) {
  return Client(connect_tcp(host, port));
}

Client Client::connect(const std::string& target) {
  if (target.rfind("unix:", 0) == 0) return connect_unix_path(target.substr(5));
  if (target.rfind("tcp:", 0) == 0) {
    const std::string rest = target.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos) {
      throw std::invalid_argument("tcp target needs 'tcp:<host>:<port>', got '" + target +
                                  "'");
    }
    const int port = std::stoi(rest.substr(colon + 1));
    if (port <= 0 || port > 65535) {
      throw std::invalid_argument("tcp port out of range in '" + target + "'");
    }
    return connect_tcp_host(rest.substr(0, colon), static_cast<std::uint16_t>(port));
  }
  throw std::invalid_argument("target must be 'unix:<path>' or 'tcp:<host>:<port>', got '" +
                              target + "'");
}

Response Client::roundtrip(const std::string& request_line) {
  send_line(request_line);
  return read_response();
}

void Client::send_line(const std::string& request_line) {
  std::string out = request_line;
  out += '\n';
  send_all(fd_.get(), out.data(), out.size());
}

Response Client::read_response() {
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return parse_response(line);
    }
    char chunk[4096];
    const ssize_t n = recv_some(fd_.get(), chunk, sizeof(chunk));
    if (n < 0) throw std::system_error(errno, std::generic_category(), "recv");
    if (n == 0) throw std::runtime_error("server closed the connection mid-response");
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace streamsched::net
