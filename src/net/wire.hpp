// Wire protocol of the placement service front end (docs/PROTOCOL.md).
//
// The protocol is line-delimited text: every frame is one '\n'-terminated
// line of space-separated tokens — a verb followed by key=value fields.
// Values never contain spaces (DAGs, variants and fault models all have
// space-free canonical spellings), so framing needs no escaping and any
// line tool can speak it. Request verbs:
//
//   SUBMIT qos=interactive algo=rltf[chunk=4] model=count:eps=1 dag=<wire>
//   EVENT  kind=fail proc=3
//   STATS
//   HEALTH
//   SHUTDOWN
//
// Responses are `OK key=value ...` or `ERR <CODE> <message>`; see
// WireCode for the error codes. A client-chosen `tag=` field on SUBMIT /
// EVENT is echoed verbatim in the response, which is what lets clients
// pipeline: SUBMIT responses may be reordered by QoS-class scheduling.
// `ERR BUSY` responses carry a `retry_ms=` backpressure hint — the
// server's estimate of when the shed lane will have drained — which the
// resilient client (net/resilient_client.hpp) honors before re-submitting.
//
// DagWire is the space-free text serialization of a task graph
// (`n2;w1,2;e0-1:2.5`): task count, per-task works, edge src-dst:volume
// triples. Task names are not carried — no scheduler reads them and the
// semantic fingerprint (core/fingerprint.hpp) excludes them, so a DAG
// round-trips to an identically-fingerprinted graph. ScheduleWire extends
// the same idea to placements (replica table + comm records) and
// round-trips bit-identically, which is what makes the warm-start cache
// snapshot (service/persistence.hpp) able to serve restored placements
// indistinguishable from the originals. Doubles are formatted with 17
// significant digits — exact double→text→double round-trip.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/variant.hpp"
#include "graph/dag.hpp"
#include "schedule/fault_model.hpp"
#include "schedule/schedule.hpp"
#include "util/types.hpp"

namespace streamsched::net {

// ------------------------------------------------------------------ basics --

/// Formats with round-trip precision: parse_wire_double(wire_double(x))
/// recovers x's exact bit pattern (finite values; inf/nan spell "inf",
/// "-inf", "nan").
[[nodiscard]] std::string wire_double(double value);

/// Strict parse of a full token. Throws WireError (kBadRequest) on
/// anything trailing or empty.
[[nodiscard]] double parse_wire_double(const std::string& token);

/// Error codes carried by `ERR` responses.
enum class WireCode {
  kOk,
  kBadRequest,    ///< unparseable frame, unknown field, malformed value
  kBusy,          ///< QoS class queue full — request shed, retry later
  kInfeasible,    ///< admission ran and no feasible placement exists
  kDegraded,      ///< only a below-guarantee placement exists and the
                  ///< request did not opt in with degraded_ok=1
  kShuttingDown,  ///< server is draining; no new admissions
  kInternal,      ///< unexpected server-side failure
};

[[nodiscard]] const char* wire_code_name(WireCode code);
/// kOk for "OK"; throws WireError on an unknown name.
[[nodiscard]] WireCode parse_wire_code(const std::string& name);

/// Thrown by every parse_* function on malformed input; the server turns
/// it into an `ERR <code> <what>` response.
class WireError : public std::runtime_error {
 public:
  WireError(WireCode code, const std::string& message)
      : std::runtime_error(message), code_(code) {}
  [[nodiscard]] WireCode code() const { return code_; }

 private:
  WireCode code_;
};

// ----------------------------------------------------------------- DagWire --

/// `n<tasks>;w<w0>,<w1>,...;e<src>-<dst>:<volume>,...` (edge list may be
/// empty). Works and volumes carry full round-trip precision.
[[nodiscard]] std::string format_dag_wire(const Dag& dag);

/// Parses DagWire. Edges are re-added in serialized order, so edge ids —
/// and therefore the DAG fingerprint — are preserved. Throws WireError.
[[nodiscard]] Dag parse_dag_wire(const std::string& wire);

// ------------------------------------------------------------ ScheduleWire --

/// `eps<e>;p<period>;r<task>:<copy>:<proc>:<start>:<finish>:<stage>,...;
/// c<edge>:<stask>:<scopy>:<dtask>:<dcopy>:<start>:<finish>:<repair>,...`
/// Only placed replicas are listed; comm records keep their insertion
/// order (comm indices round-trip).
[[nodiscard]] std::string format_schedule_wire(const Schedule& schedule);

/// Rebuilds the schedule against `dag`/`platform` (which must outlive it,
/// as with every Schedule). Bit-identical round trip: every place() and
/// add_comm() replays the serialized values exactly. Throws WireError.
[[nodiscard]] Schedule parse_schedule_wire(const std::string& wire, const Dag& dag,
                                           const Platform& platform);

// ------------------------------------------------------------- QoS classes --

/// Admission classes of the server's bounded in-flight queues: interactive
/// requests ride a separate lane (own workers, own bound) so saturating
/// the batch class sheds batch traffic while interactive admissions keep
/// succeeding.
enum class QosClass { kInteractive, kBatch };
inline constexpr std::size_t kNumQosClasses = 2;

[[nodiscard]] const char* qos_class_name(QosClass qos);
[[nodiscard]] QosClass parse_qos_class(const std::string& name);  ///< throws WireError

// ---------------------------------------------------------------- requests --

enum class Verb { kSubmit, kEvent, kStats, kHealth, kShutdown };

struct SubmitFrame {
  QosClass qos = QosClass::kInteractive;
  std::string tag;  ///< echoed in the response; empty = none
  std::string variant_spec = "rltf";
  FaultModel model = FaultModel::count(1);
  double period = 0.0;  ///< <= 0: calibrate from the workload
  double headroom = 2.0;
  double comm_share = 1.0;
  /// Brownout opt-in: serve a degraded placement (src=degraded, explicit
  /// eps_have/eps_want deficit) instead of an `ERR DEGRADED` refusal.
  bool degraded_ok = false;
  Dag dag;
};

struct EventFrame {
  bool failure = true;  ///< false = recovery
  ProcId proc = 0;
  std::string tag;
};

struct Request {
  Verb verb = Verb::kStats;
  SubmitFrame submit;  ///< kSubmit only
  EventFrame event;    ///< kEvent only
};

/// Parses one request line (without the trailing '\n'). The variant spec
/// is validated against the registry, the model against the fault-model
/// grammar, the DAG against DagWire. Unknown verbs and fields throw
/// WireError (kBadRequest) so client typos fail loudly.
[[nodiscard]] Request parse_request(const std::string& line);

/// Client-side formatters (no trailing '\n').
[[nodiscard]] std::string format_submit(const SubmitFrame& frame);
[[nodiscard]] std::string format_event(const EventFrame& frame);
[[nodiscard]] std::string format_stats();
[[nodiscard]] std::string format_health();
[[nodiscard]] std::string format_shutdown();

// --------------------------------------------------------------- responses --

/// A parsed response line. `ok` responses carry ordered key=value fields;
/// errors carry the code and the free-text message (which may contain
/// spaces — it is the rest of the line). An `ERR` line's leading `tag=`
/// and `retry_ms=` tokens are lifted into `fields` before the message.
struct Response {
  bool ok = false;
  WireCode code = WireCode::kInternal;
  std::string message;
  std::vector<std::pair<std::string, std::string>> fields;

  /// Value of `key`, or empty when absent.
  [[nodiscard]] const std::string& field(const std::string& key) const;
  [[nodiscard]] bool has_field(const std::string& key) const;
  /// Parsed numeric accessors; throw WireError when absent/malformed.
  [[nodiscard]] double field_double(const std::string& key) const;
  [[nodiscard]] std::uint64_t field_u64(const std::string& key) const;
};

/// Builder for `OK` lines: ordered key=value fields, values must be
/// space-free (asserted).
class OkBuilder {
 public:
  OkBuilder& add(const std::string& key, const std::string& value);
  OkBuilder& add(const std::string& key, const char* value);
  OkBuilder& add(const std::string& key, double value);
  OkBuilder& add(const std::string& key, std::uint64_t value);
  [[nodiscard]] std::string str() const;

 private:
  std::string line_ = "OK";
};

/// `retry_ms` > 0 adds a `retry_ms=<n>` backpressure hint after the tag
/// (used by `ERR BUSY`; see docs/PROTOCOL.md).
[[nodiscard]] std::string format_error(WireCode code, const std::string& message,
                                       const std::string& tag = "",
                                       std::uint64_t retry_ms = 0);

/// Parses one response line. Throws WireError (kBadRequest) on anything
/// that is neither `OK ...` nor `ERR <CODE> ...`.
[[nodiscard]] Response parse_response(const std::string& line);

}  // namespace streamsched::net
