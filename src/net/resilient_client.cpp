#include "net/resilient_client.hpp"

#include <time.h>

#include <chrono>
#include <system_error>
#include <utility>

#include "util/rng.hpp"

namespace streamsched::net {

namespace {

using Clock = std::chrono::steady_clock;

/// nanosleep that survives real EINTR (signals must not shorten a
/// deterministic backoff schedule).
void sleep_ms(std::uint64_t ms) {
  timespec req{};
  req.tv_sec = static_cast<time_t>(ms / 1000);
  req.tv_nsec = static_cast<long>((ms % 1000) * 1000000L);
  while (::nanosleep(&req, &req) != 0 && errno == EINTR) {
  }
}

}  // namespace

ResilientClient::ResilientClient(std::string target, RetryPolicy policy)
    : target_(std::move(target)),
      policy_(policy),
      jitter_state_(policy.jitter_seed ^ 0x9e3779b97f4a7c15ULL) {}

std::unique_ptr<Client> ResilientClient::acquire() {
  if (!pool_.empty()) {
    std::unique_ptr<Client> client = std::move(pool_.back());
    pool_.pop_back();
    return client;
  }
  return std::make_unique<Client>(Client::connect(target_));
}

void ResilientClient::release(std::unique_ptr<Client> client) {
  if (pool_.size() < policy_.pool_size) pool_.push_back(std::move(client));
}

std::uint64_t ResilientClient::backoff_ms(std::uint32_t attempt, std::uint64_t hint_ms) {
  // Exponential term: base * 2^attempt, capped (shift guarded so a huge
  // retry budget cannot overflow).
  std::uint64_t base = policy_.backoff_base_ms;
  if (attempt < 32) {
    base <<= attempt;
  } else {
    base = policy_.backoff_cap_ms;
  }
  if (base > policy_.backoff_cap_ms) base = policy_.backoff_cap_ms;
  if (hint_ms > 0) {
    // The server's drain estimate replaces the blind exponential term
    // but stays under the cap — a confused server must not park us.
    base = hint_ms < policy_.backoff_cap_ms ? hint_ms : policy_.backoff_cap_ms;
  }
  // Deterministic jitter in [0, base/2]: spreads concurrent clients
  // (different seeds) without ever *shortening* the server's hint.
  const std::uint64_t draw = splitmix64(jitter_state_);
  const std::uint64_t jitter = base >= 2 ? draw % (base / 2 + 1) : 0;
  return base + jitter;
}

Response ResilientClient::roundtrip(const std::string& request_line) {
  const bool bounded = policy_.deadline_ms > 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(policy_.deadline_ms);

  const auto remaining_ms = [&]() -> std::int64_t {
    if (!bounded) return -1;  // unbounded
    return std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now())
        .count();
  };

  const auto backoff_or_throw = [&](std::uint32_t attempt, std::uint64_t hint_ms) {
    std::uint64_t wait = backoff_ms(attempt, hint_ms);
    if (bounded) {
      const std::int64_t left = remaining_ms();
      if (left <= 0) {
        throw DeadlineExceeded("deadline exceeded after " + std::to_string(attempt + 1) +
                               " attempt(s): " + request_line.substr(0, 64));
      }
      if (wait > static_cast<std::uint64_t>(left)) wait = static_cast<std::uint64_t>(left);
    }
    stats_.backoff_ms_total += wait;
    sleep_ms(wait);
  };

  std::string last_error = "no attempt made";
  for (std::uint32_t attempt = 0; attempt <= policy_.max_retries; ++attempt) {
    if (attempt > 0) ++stats_.retries;
    if (bounded && remaining_ms() <= 0) {
      throw DeadlineExceeded("deadline exceeded after " + std::to_string(attempt) +
                             " attempt(s): " + request_line.substr(0, 64));
    }
    std::unique_ptr<Client> client;
    try {
      client = acquire();
      ++stats_.attempts;
      Response response = client->roundtrip(request_line);
      if (!response.ok && response.code == WireCode::kBusy) {
        // The connection is healthy — the server shed us. Pool it and
        // wait out the (hinted) drain interval.
        release(std::move(client));
        ++stats_.busy_backoffs;
        std::uint64_t hint = 0;
        if (response.has_field("retry_ms")) {
          hint = response.field_u64("retry_ms");
          ++stats_.hinted_backoffs;
        }
        last_error = "server busy: " + response.message;
        backoff_or_throw(attempt, hint);
        continue;
      }
      // Definitive: OK, or an error a retry cannot fix (BAD_REQUEST,
      // INFEASIBLE, SHUTTING_DOWN, INTERNAL).
      release(std::move(client));
      return response;
    } catch (const DeadlineExceeded&) {
      throw;  // raised by the BUSY backoff above — not a transport error
    } catch (const WireError&) {
      // The server spoke garbage — the stream may be torn mid-line, so
      // the connection cannot be reused. Reconnect and retry; SUBMIT
      // idempotency makes the re-send safe even if the request landed.
      ++stats_.reconnects;
      last_error = "malformed response (connection discarded)";
    } catch (const std::system_error& e) {
      // Refused/reset/transport error, on connect or mid-stream.
      ++stats_.reconnects;
      last_error = e.what();
    } catch (const std::runtime_error& e) {
      // Client::read_response EOF: the ambiguous-drop case — the request
      // may or may not have been admitted. Safe to re-send (idempotent).
      ++stats_.reconnects;
      last_error = e.what();
    }
    // client (if any) destructs here: failed connections never rejoin
    // the pool.
    client.reset();
    if (attempt < policy_.max_retries) backoff_or_throw(attempt, 0);
  }
  throw RetriesExhausted("gave up after " + std::to_string(policy_.max_retries + 1) +
                         " attempt(s); last error: " + last_error);
}

}  // namespace streamsched::net
