// Thin POSIX socket wrappers for the placement service front end: an fd
// RAII handle plus unix-domain and TCP listen/connect helpers. Everything
// throws std::system_error with the failing call's errno — callers (the
// server loop, the client library) translate or die loudly; nothing here
// retries silently. Linux-only (the CI and bench environments), like the
// poll(2) loop in service/server.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace streamsched::net {

/// Move-only owning file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { close(); }

  Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  /// Releases ownership without closing.
  [[nodiscard]] int release() { return std::exchange(fd_, -1); }
  void close();

 private:
  int fd_ = -1;
};

/// Binds and listens on a unix-domain socket, unlinking any stale socket
/// file at `path` first. The path must fit sockaddr_un (~107 bytes).
[[nodiscard]] Fd listen_unix(const std::string& path);

/// Binds and listens on TCP `host:port`. Port 0 picks an ephemeral port;
/// the port actually bound is written to `bound_port` when non-null.
/// SO_REUSEADDR is set so restarts don't trip over TIME_WAIT.
[[nodiscard]] Fd listen_tcp(const std::string& host, std::uint16_t port,
                            std::uint16_t* bound_port = nullptr);

[[nodiscard]] Fd connect_unix(const std::string& path);
[[nodiscard]] Fd connect_tcp(const std::string& host, std::uint16_t port);

/// O_NONBLOCK on/off.
void set_nonblocking(int fd, bool nonblocking);

}  // namespace streamsched::net
