// Thin POSIX socket wrappers for the placement service front end: an fd
// RAII handle, unix-domain and TCP listen/connect helpers, and the
// hardened I/O primitives every byte of the service tier moves through —
// recv_some/send_some/send_all retry EINTR, never raise SIGPIPE
// (MSG_NOSIGNAL), and carry the deterministic fault-injection points
// (util/fault_inject.hpp): short reads/writes, spurious EINTR,
// connection resets, fixed delays and refused connects are all injected
// here, below the protocol layer, so chaos tests exercise the real retry
// loops. Everything that fails hard throws std::system_error with the
// failing call's errno — callers (the server loop, the client library)
// translate or die loudly; nothing here retries silently beyond EINTR.
// Linux-only (the CI and bench environments), like the poll(2) loop in
// service/server.cpp.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <utility>

namespace streamsched::net {

/// Move-only owning file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { close(); }

  Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  /// Releases ownership without closing.
  [[nodiscard]] int release() { return std::exchange(fd_, -1); }
  void close();

 private:
  int fd_ = -1;
};

/// Binds and listens on a unix-domain socket, unlinking any stale socket
/// file at `path` first. The path must fit sockaddr_un (~107 bytes).
[[nodiscard]] Fd listen_unix(const std::string& path);

/// Binds and listens on TCP `host:port`. Port 0 picks an ephemeral port;
/// the port actually bound is written to `bound_port` when non-null.
/// SO_REUSEADDR is set so restarts don't trip over TIME_WAIT.
[[nodiscard]] Fd listen_tcp(const std::string& host, std::uint16_t port,
                            std::uint16_t* bound_port = nullptr);

/// Connect helpers: retry EINTR correctly (an interrupted connect
/// completes asynchronously — they wait for writability and check
/// SO_ERROR instead of re-calling connect) and honor injected
/// refusals/delays from the calling thread's FaultPlan.
[[nodiscard]] Fd connect_unix(const std::string& path);
[[nodiscard]] Fd connect_tcp(const std::string& host, std::uint16_t port);

/// O_NONBLOCK on/off.
void set_nonblocking(int fd, bool nonblocking);

// ------------------------------------------------------------ hardened I/O --
//
// All three primitives retry EINTR internally (real or injected) and are
// the only places the service tier calls recv/send. Return conventions
// match the raw syscalls otherwise: callers still see EAGAIN/EWOULDBLOCK
// on non-blocking sockets, 0 on EOF, and hard errors via errno —
// including injected ECONNRESET, which is indistinguishable from a real
// peer reset by design.

/// One recv step: >0 bytes read, 0 on EOF, -1 with errno on
/// EAGAIN/EWOULDBLOCK or a hard error. Never returns -1/EINTR.
[[nodiscard]] ssize_t recv_some(int fd, void* buf, std::size_t len);

/// One send step with MSG_NOSIGNAL (a dead peer yields EPIPE, never
/// SIGPIPE): >0 bytes written (possibly short), -1 with errno on
/// EAGAIN/EWOULDBLOCK or a hard error. Never returns -1/EINTR.
[[nodiscard]] ssize_t send_some(int fd, const void* buf, std::size_t len);

/// Blocking write of the whole buffer (loops over partial writes).
/// Throws std::system_error on any hard error.
void send_all(int fd, const void* buf, std::size_t len);

}  // namespace streamsched::net
