// Blocking client of the placement service wire protocol (net/wire.hpp):
// one connection, line-in/line-out. `roundtrip` covers the common
// request/response case; `send_line` + `read_response` expose pipelining
// (responses to pipelined SUBMITs may be reordered by QoS-class
// scheduling — match them by the echoed tag= field). The
// `streamsched_client` CLI and bench_server are both built on this.
#pragma once

#include <cstdint>
#include <string>

#include "net/socket.hpp"
#include "net/wire.hpp"

namespace streamsched::net {

class Client {
 public:
  [[nodiscard]] static Client connect_unix_path(const std::string& path);
  [[nodiscard]] static Client connect_tcp_host(const std::string& host, std::uint16_t port);
  /// `unix:<path>` or `tcp:<host>:<port>`.
  [[nodiscard]] static Client connect(const std::string& target);
  /// Wraps an already-connected socket (tests, socketpair fakes).
  [[nodiscard]] static Client adopt(Fd fd) { return Client(std::move(fd)); }

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Sends one request line and blocks for one response line.
  Response roundtrip(const std::string& request_line);

  Response submit(const SubmitFrame& frame) { return roundtrip(format_submit(frame)); }
  Response event(const EventFrame& frame) { return roundtrip(format_event(frame)); }
  Response stats() { return roundtrip(format_stats()); }
  Response health() { return roundtrip(format_health()); }
  Response shutdown() { return roundtrip(format_shutdown()); }

  /// Pipelining: queue a request without waiting.
  void send_line(const std::string& request_line);
  /// Blocks for the next response line. Throws std::runtime_error when the
  /// server closes the connection mid-read.
  Response read_response();

  [[nodiscard]] int fd() const { return fd_.get(); }

 private:
  explicit Client(Fd fd) : fd_(std::move(fd)) {}

  Fd fd_;
  std::string buffer_;  ///< bytes received past the last parsed line
};

}  // namespace streamsched::net
