// Retrying wrapper over net/client.hpp for unreliable networks.
//
// A plain Client maps any transport hiccup — refused connect, reset,
// EOF mid-response, `ERR BUSY` shed — straight to the caller. The
// ResilientClient turns those into a bounded retry loop with three
// mechanisms layered on top of one lazily-built connection pool:
//
//   deadline    every request carries a wall-clock budget
//               (policy.deadline_ms); backoff sleeps are clipped to it
//               and DeadlineExceeded is thrown the moment it runs out.
//
//   backoff     transport failures and BUSY sheds are retried after an
//               exponential backoff (base * 2^attempt, capped) plus a
//               *deterministic* jitter drawn from policy.jitter_seed —
//               two clients with different seeds desynchronize their
//               retry storms, and a test replaying one seed sees the
//               exact same sleep schedule. When an `ERR BUSY` response
//               carries the server's `retry_ms=` hint, the hint replaces
//               the exponential term (the server knows its lane drain
//               rate better than the client's guess).
//
//   reconnect   a connection that EOFs, resets, or returns garbage is
//               discarded, and the next attempt dials fresh. Idle good
//               connections are pooled (up to policy.pool_size) and
//               reused.
//
// Retrying a SUBMIT after an *ambiguous* drop (request sent, connection
// died before the response) is safe by protocol design: admission is
// idempotent by DAG/variant/model/epoch fingerprint, so a re-submit of
// work the server already admitted is a cache hit, never a second cold
// schedule (pinned by ResilientClient tests). Non-transport errors —
// BAD_REQUEST, INFEASIBLE, SHUTTING_DOWN, INTERNAL — are returned to the
// caller immediately: resending a malformed or infeasible request cannot
// help.
//
// Not thread-safe: one ResilientClient per thread, like Client.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/client.hpp"
#include "net/wire.hpp"

namespace streamsched::net {

struct RetryPolicy {
  std::uint32_t max_retries = 5;      ///< retries after the first attempt
  std::uint32_t deadline_ms = 10000;  ///< per-request budget; 0 = none
  std::uint32_t backoff_base_ms = 10;
  std::uint32_t backoff_cap_ms = 2000;
  std::uint64_t jitter_seed = 1;  ///< deterministic jitter stream
  std::size_t pool_size = 2;      ///< idle connections kept for reuse
};

/// The per-request deadline expired (possibly mid-backoff).
class DeadlineExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// max_retries exhausted without a definitive response.
class RetriesExhausted : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Monotonic counters since construction (exact under a deterministic
/// fault plan — chaos tests assert on them).
struct ResilientStats {
  std::uint64_t attempts = 0;          ///< request transmissions tried
  std::uint64_t retries = 0;           ///< attempts beyond each first
  std::uint64_t reconnects = 0;        ///< connections discarded + redialed
  std::uint64_t busy_backoffs = 0;     ///< ERR BUSY sheds waited out
  std::uint64_t hinted_backoffs = 0;   ///< of those, server retry_ms= honored
  std::uint64_t backoff_ms_total = 0;  ///< total time slept
};

class ResilientClient {
 public:
  /// Remembers `target` (`unix:<path>` or `tcp:<host>:<port>`); dials
  /// lazily on the first request, so constructing against a server that
  /// is still starting up is fine.
  ResilientClient(std::string target, RetryPolicy policy = {});

  /// Sends the request with deadline/backoff/reconnect handling; returns
  /// the first definitive response (OK or a non-retriable ERR). Throws
  /// DeadlineExceeded / RetriesExhausted, or the last transport error
  /// when no retry budget remains to absorb it.
  Response roundtrip(const std::string& request_line);

  Response submit(const SubmitFrame& frame) { return roundtrip(format_submit(frame)); }
  Response event(const EventFrame& frame) { return roundtrip(format_event(frame)); }
  Response stats() { return roundtrip(format_stats()); }
  Response health() { return roundtrip(format_health()); }
  Response shutdown() { return roundtrip(format_shutdown()); }

  [[nodiscard]] const RetryPolicy& policy() const { return policy_; }
  [[nodiscard]] const ResilientStats& resilient_stats() const { return stats_; }

 private:
  /// Pops a pooled connection or dials a fresh one (may throw
  /// std::system_error — the caller's retry loop absorbs it).
  std::unique_ptr<Client> acquire();
  void release(std::unique_ptr<Client> client);

  /// Backoff for `attempt` (0-based): exponential + deterministic
  /// jitter, or the server's hint when `hint_ms` > 0.
  [[nodiscard]] std::uint64_t backoff_ms(std::uint32_t attempt, std::uint64_t hint_ms);

  std::string target_;
  RetryPolicy policy_;
  ResilientStats stats_;
  std::uint64_t jitter_state_;
  std::vector<std::unique_ptr<Client>> pool_;
};

}  // namespace streamsched::net
