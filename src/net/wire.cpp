#include "net/wire.hpp"

#include <cstdio>
#include <cstdlib>
#include <limits>

#include "util/assert.hpp"

namespace streamsched::net {

namespace {

[[noreturn]] void bad(const std::string& message) {
  throw WireError(WireCode::kBadRequest, message);
}

/// Splits on a single character; keeps empty items (the caller decides).
std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::uint64_t parse_u64(const std::string& token, const std::string& what) {
  if (token.empty()) bad("empty " + what);
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
  if (errno != 0 || end != token.c_str() + token.size() || token[0] == '-') {
    bad("malformed " + what + " '" + token + "'");
  }
  return static_cast<std::uint64_t>(v);
}

double parse_double(const std::string& token, const std::string& what) {
  if (token.empty()) bad("empty " + what);
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) bad("malformed " + what + " '" + token + "'");
  return v;
}

}  // namespace

std::string wire_double(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

double parse_wire_double(const std::string& token) { return parse_double(token, "number"); }

const char* wire_code_name(WireCode code) {
  switch (code) {
    case WireCode::kOk: return "OK";
    case WireCode::kBadRequest: return "BAD_REQUEST";
    case WireCode::kBusy: return "BUSY";
    case WireCode::kInfeasible: return "INFEASIBLE";
    case WireCode::kDegraded: return "DEGRADED";
    case WireCode::kShuttingDown: return "SHUTTING_DOWN";
    case WireCode::kInternal: return "INTERNAL";
  }
  return "?";
}

WireCode parse_wire_code(const std::string& name) {
  for (WireCode code : {WireCode::kOk, WireCode::kBadRequest, WireCode::kBusy,
                        WireCode::kInfeasible, WireCode::kDegraded, WireCode::kShuttingDown,
                        WireCode::kInternal}) {
    if (name == wire_code_name(code)) return code;
  }
  bad("unknown wire code '" + name + "'");
}

// ----------------------------------------------------------------- DagWire --

std::string format_dag_wire(const Dag& dag) {
  std::string out = "n" + std::to_string(dag.num_tasks()) + ";w";
  for (TaskId t = 0; t < dag.num_tasks(); ++t) {
    if (t > 0) out += ',';
    out += wire_double(dag.work(t));
  }
  out += ";e";
  for (EdgeId e = 0; e < dag.num_edges(); ++e) {
    const Dag::Edge& edge = dag.edge(e);
    if (e > 0) out += ',';
    out += std::to_string(edge.src) + "-" + std::to_string(edge.dst) + ":" +
           wire_double(edge.volume);
  }
  return out;
}

Dag parse_dag_wire(const std::string& wire) {
  const std::vector<std::string> sections = split(wire, ';');
  if (sections.size() != 3 || sections[0].empty() || sections[0][0] != 'n' ||
      sections[1].empty() || sections[1][0] != 'w' || sections[2].empty() ||
      sections[2][0] != 'e') {
    bad("DagWire needs 'n<tasks>;w...;e...' sections, got '" + wire + "'");
  }
  const std::uint64_t tasks = parse_u64(sections[0].substr(1), "DagWire task count");
  Dag dag;
  const std::string works = sections[1].substr(1);
  std::uint64_t listed = 0;
  if (!works.empty()) {
    for (const std::string& w : split(works, ',')) {
      dag.add_task(parse_double(w, "DagWire work"));
      ++listed;
    }
  }
  if (listed != tasks) {
    bad("DagWire lists " + std::to_string(listed) + " works for n" + std::to_string(tasks));
  }
  const std::string edges = sections[2].substr(1);
  if (!edges.empty()) {
    for (const std::string& item : split(edges, ',')) {
      const std::size_t dash = item.find('-');
      const std::size_t colon = item.find(':', dash == std::string::npos ? 0 : dash + 1);
      if (dash == std::string::npos || colon == std::string::npos) {
        bad("DagWire edge needs '<src>-<dst>:<volume>', got '" + item + "'");
      }
      const std::uint64_t src = parse_u64(item.substr(0, dash), "DagWire edge src");
      const std::uint64_t dst = parse_u64(item.substr(dash + 1, colon - dash - 1),
                                          "DagWire edge dst");
      if (src >= tasks || dst >= tasks) bad("DagWire edge endpoint out of range: " + item);
      const double volume = parse_double(item.substr(colon + 1), "DagWire edge volume");
      try {
        dag.add_edge(static_cast<TaskId>(src), static_cast<TaskId>(dst), volume);
      } catch (const std::exception& e) {
        bad(std::string("DagWire edge rejected: ") + e.what());
      }
    }
  }
  return dag;
}

// ------------------------------------------------------------ ScheduleWire --

std::string format_schedule_wire(const Schedule& schedule) {
  std::string out = "eps" + std::to_string(schedule.eps()) + ";p" +
                    wire_double(schedule.period()) + ";r";
  bool first = true;
  for (TaskId t = 0; t < schedule.dag().num_tasks(); ++t) {
    for (CopyId c = 0; c < schedule.copies(); ++c) {
      const ReplicaRef r{t, c};
      if (!schedule.is_placed(r)) continue;
      const PlacedReplica& p = schedule.placed(r);
      if (!first) out += ',';
      first = false;
      out += std::to_string(t) + ":" + std::to_string(c) + ":" + std::to_string(p.proc) +
             ":" + wire_double(p.start) + ":" + wire_double(p.finish) + ":" +
             std::to_string(p.stage);
    }
  }
  out += ";c";
  for (std::size_t i = 0; i < schedule.comms().size(); ++i) {
    const CommRecord& comm = schedule.comms()[i];
    if (i > 0) out += ',';
    out += std::to_string(comm.edge) + ":" + std::to_string(comm.src.task) + ":" +
           std::to_string(comm.src.copy) + ":" + std::to_string(comm.dst.task) + ":" +
           std::to_string(comm.dst.copy) + ":" + wire_double(comm.start) + ":" +
           wire_double(comm.finish) + ":" + (comm.repair ? "1" : "0");
  }
  return out;
}

Schedule parse_schedule_wire(const std::string& wire, const Dag& dag,
                             const Platform& platform) {
  const std::vector<std::string> sections = split(wire, ';');
  if (sections.size() != 4 || sections[0].rfind("eps", 0) != 0 || sections[1].empty() ||
      sections[1][0] != 'p' || sections[2].empty() || sections[2][0] != 'r' ||
      sections[3].empty() || sections[3][0] != 'c') {
    bad("ScheduleWire needs 'eps<e>;p<period>;r...;c...' sections");
  }
  const std::uint64_t eps = parse_u64(sections[0].substr(3), "ScheduleWire eps");
  const double period = parse_double(sections[1].substr(1), "ScheduleWire period");
  // Validate the header before constructing: the Schedule constructor
  // enforces the same bounds with SS_REQUIRE, but untrusted wire input
  // must surface as WireError, not as an assertion escape. The eps bound
  // also rejects values a CopyId cast would silently wrap.
  if (eps >= platform.num_procs()) {
    bad("ScheduleWire eps" + std::to_string(eps) + " needs more than " +
        std::to_string(platform.num_procs()) + " processors");
  }
  if (!(period > 0.0)) bad("ScheduleWire period must be positive");
  Schedule schedule(dag, platform, static_cast<CopyId>(eps), period);
  const std::string replicas = sections[2].substr(1);
  if (!replicas.empty()) {
    for (const std::string& item : split(replicas, ',')) {
      const std::vector<std::string> f = split(item, ':');
      if (f.size() != 6) bad("ScheduleWire replica needs 6 fields, got '" + item + "'");
      const std::uint64_t task = parse_u64(f[0], "replica task");
      const std::uint64_t copy = parse_u64(f[1], "replica copy");
      const std::uint64_t proc = parse_u64(f[2], "replica proc");
      if (task >= dag.num_tasks() || copy > eps || proc >= platform.num_procs()) {
        bad("ScheduleWire replica out of range: '" + item + "'");
      }
      try {
        schedule.place(ReplicaRef{static_cast<TaskId>(task), static_cast<CopyId>(copy)},
                       static_cast<ProcId>(proc), parse_double(f[3], "replica start"),
                       parse_double(f[4], "replica finish"),
                       static_cast<std::uint32_t>(parse_u64(f[5], "replica stage")));
      } catch (const std::exception& e) {
        // Duplicate replica, finish < start, zero stage, ...: the
        // schedule's own invariants, reported as a parse rejection.
        bad(std::string("ScheduleWire replica rejected: ") + e.what());
      }
    }
  }
  const std::string comms = sections[3].substr(1);
  if (!comms.empty()) {
    for (const std::string& item : split(comms, ',')) {
      const std::vector<std::string> f = split(item, ':');
      if (f.size() != 8) bad("ScheduleWire comm needs 8 fields, got '" + item + "'");
      CommRecord comm;
      const std::uint64_t edge = parse_u64(f[0], "comm edge");
      if (edge >= dag.num_edges()) bad("ScheduleWire comm edge out of range: '" + item + "'");
      comm.edge = static_cast<EdgeId>(edge);
      comm.src = ReplicaRef{static_cast<TaskId>(parse_u64(f[1], "comm src task")),
                            static_cast<CopyId>(parse_u64(f[2], "comm src copy"))};
      comm.dst = ReplicaRef{static_cast<TaskId>(parse_u64(f[3], "comm dst task")),
                            static_cast<CopyId>(parse_u64(f[4], "comm dst copy"))};
      comm.start = parse_double(f[5], "comm start");
      comm.finish = parse_double(f[6], "comm finish");
      if (f[7] != "0" && f[7] != "1") bad("ScheduleWire comm repair flag must be 0/1");
      comm.repair = f[7] == "1";
      try {
        schedule.add_comm(comm);
      } catch (const std::exception& e) {
        bad(std::string("ScheduleWire comm rejected: ") + e.what());
      }
    }
  }
  return schedule;
}

// ------------------------------------------------------------- QoS classes --

const char* qos_class_name(QosClass qos) {
  return qos == QosClass::kInteractive ? "interactive" : "batch";
}

QosClass parse_qos_class(const std::string& name) {
  if (name == "interactive") return QosClass::kInteractive;
  if (name == "batch") return QosClass::kBatch;
  bad("unknown QoS class '" + name + "' (expected interactive|batch)");
}

// ---------------------------------------------------------------- requests --

namespace {

/// key=value tokens after the verb; keys must be unique and known.
std::vector<std::pair<std::string, std::string>> parse_fields(
    const std::vector<std::string>& tokens, std::size_t first) {
  std::vector<std::pair<std::string, std::string>> fields;
  for (std::size_t i = first; i < tokens.size(); ++i) {
    if (tokens[i].empty()) continue;  // tolerate doubled spaces
    const std::size_t eq = tokens[i].find('=');
    if (eq == std::string::npos || eq == 0) bad("expected key=value, got '" + tokens[i] + "'");
    fields.emplace_back(tokens[i].substr(0, eq), tokens[i].substr(eq + 1));
  }
  return fields;
}

}  // namespace

Request parse_request(const std::string& line) {
  const std::vector<std::string> tokens = split(line, ' ');
  if (tokens.empty() || tokens[0].empty()) bad("empty request");
  Request request;
  const std::string& verb = tokens[0];
  if (verb == "STATS" || verb == "HEALTH" || verb == "SHUTDOWN") {
    if (tokens.size() > 1) bad(verb + " takes no fields");
    request.verb = verb == "STATS"    ? Verb::kStats
                   : verb == "HEALTH" ? Verb::kHealth
                                      : Verb::kShutdown;
    return request;
  }
  const auto fields = parse_fields(tokens, 1);
  if (verb == "SUBMIT") {
    request.verb = Verb::kSubmit;
    SubmitFrame& f = request.submit;
    bool have_dag = false;
    for (const auto& [key, value] : fields) {
      if (key == "qos") {
        f.qos = parse_qos_class(value);
      } else if (key == "tag") {
        f.tag = value;
      } else if (key == "algo") {
        try {
          (void)AlgoVariant::parse(value);  // validate against the registry
        } catch (const std::exception& e) {
          bad(std::string("bad algo: ") + e.what());
        }
        f.variant_spec = value;
      } else if (key == "model") {
        try {
          f.model = FaultModel::parse(value);
        } catch (const std::exception& e) {
          bad(std::string("bad model: ") + e.what());
        }
      } else if (key == "period") {
        f.period = parse_double(value, "period");
      } else if (key == "headroom") {
        f.headroom = parse_double(value, "headroom");
      } else if (key == "comm_share") {
        f.comm_share = parse_double(value, "comm_share");
      } else if (key == "degraded_ok") {
        if (value == "1") {
          f.degraded_ok = true;
        } else if (value == "0") {
          f.degraded_ok = false;
        } else {
          bad("degraded_ok must be 0|1, got '" + value + "'");
        }
      } else if (key == "dag") {
        f.dag = parse_dag_wire(value);
        have_dag = true;
      } else {
        bad("unknown SUBMIT field '" + key + "'");
      }
    }
    if (!have_dag) bad("SUBMIT needs a dag= field");
    return request;
  }
  if (verb == "EVENT") {
    request.verb = Verb::kEvent;
    EventFrame& f = request.event;
    bool have_kind = false;
    bool have_proc = false;
    for (const auto& [key, value] : fields) {
      if (key == "kind") {
        if (value == "fail") {
          f.failure = true;
        } else if (value == "recover") {
          f.failure = false;
        } else {
          bad("EVENT kind must be fail|recover, got '" + value + "'");
        }
        have_kind = true;
      } else if (key == "proc") {
        f.proc = static_cast<ProcId>(parse_u64(value, "EVENT proc"));
        have_proc = true;
      } else if (key == "tag") {
        f.tag = value;
      } else {
        bad("unknown EVENT field '" + key + "'");
      }
    }
    if (!have_kind || !have_proc) bad("EVENT needs kind= and proc=");
    return request;
  }
  bad("unknown verb '" + verb + "'");
}

std::string format_submit(const SubmitFrame& frame) {
  std::string out = "SUBMIT";
  if (!frame.tag.empty()) out += " tag=" + frame.tag;
  out += std::string(" qos=") + qos_class_name(frame.qos);
  out += " algo=" + frame.variant_spec;
  out += " model=" + frame.model.to_string();
  if (frame.period > 0.0) out += " period=" + wire_double(frame.period);
  if (frame.headroom != SubmitFrame{}.headroom) {
    out += " headroom=" + wire_double(frame.headroom);
  }
  if (frame.comm_share != SubmitFrame{}.comm_share) {
    out += " comm_share=" + wire_double(frame.comm_share);
  }
  if (frame.degraded_ok) out += " degraded_ok=1";
  out += " dag=" + format_dag_wire(frame.dag);
  return out;
}

std::string format_event(const EventFrame& frame) {
  std::string out = "EVENT";
  if (!frame.tag.empty()) out += " tag=" + frame.tag;
  out += std::string(" kind=") + (frame.failure ? "fail" : "recover");
  out += " proc=" + std::to_string(frame.proc);
  return out;
}

std::string format_stats() { return "STATS"; }

std::string format_health() { return "HEALTH"; }

std::string format_shutdown() { return "SHUTDOWN"; }

// --------------------------------------------------------------- responses --

const std::string& Response::field(const std::string& key) const {
  static const std::string kEmpty;
  for (const auto& [k, v] : fields) {
    if (k == key) return v;
  }
  return kEmpty;
}

bool Response::has_field(const std::string& key) const {
  for (const auto& [k, v] : fields) {
    (void)v;
    if (k == key) return true;
  }
  return false;
}

double Response::field_double(const std::string& key) const {
  if (!has_field(key)) bad("response lacks field '" + key + "'");
  return parse_double(field(key), "response field " + key);
}

std::uint64_t Response::field_u64(const std::string& key) const {
  if (!has_field(key)) bad("response lacks field '" + key + "'");
  return parse_u64(field(key), "response field " + key);
}

OkBuilder& OkBuilder::add(const std::string& key, const std::string& value) {
  SS_REQUIRE(value.find(' ') == std::string::npos, "wire field values must be space-free");
  line_ += " " + key + "=" + value;
  return *this;
}

OkBuilder& OkBuilder::add(const std::string& key, const char* value) {
  return add(key, std::string(value));
}

OkBuilder& OkBuilder::add(const std::string& key, double value) {
  return add(key, wire_double(value));
}

OkBuilder& OkBuilder::add(const std::string& key, std::uint64_t value) {
  return add(key, std::to_string(value));
}

std::string OkBuilder::str() const { return line_; }

std::string format_error(WireCode code, const std::string& message, const std::string& tag,
                         std::uint64_t retry_ms) {
  std::string out = std::string("ERR ") + wire_code_name(code);
  if (!tag.empty()) out += " tag=" + tag;
  if (retry_ms > 0) out += " retry_ms=" + std::to_string(retry_ms);
  if (!message.empty()) out += " " + message;
  return out;
}

Response parse_response(const std::string& line) {
  const std::vector<std::string> tokens = split(line, ' ');
  if (tokens.empty() || tokens[0].empty()) bad("empty response");
  Response resp;
  if (tokens[0] == "OK") {
    resp.ok = true;
    resp.code = WireCode::kOk;
    for (const auto& [key, value] : parse_fields(tokens, 1)) {
      resp.fields.emplace_back(key, value);
    }
    return resp;
  }
  if (tokens[0] == "ERR") {
    if (tokens.size() < 2) bad("ERR response lacks a code");
    resp.ok = false;
    resp.code = parse_wire_code(tokens[1]);
    std::size_t first_message = 2;
    if (tokens.size() > first_message && tokens[first_message].rfind("tag=", 0) == 0) {
      resp.fields.emplace_back("tag", tokens[first_message].substr(4));
      ++first_message;
    }
    if (tokens.size() > first_message && tokens[first_message].rfind("retry_ms=", 0) == 0) {
      resp.fields.emplace_back("retry_ms", tokens[first_message].substr(9));
      ++first_message;
    }
    for (std::size_t i = first_message; i < tokens.size(); ++i) {
      if (i > first_message) resp.message += ' ';
      resp.message += tokens[i];
    }
    return resp;
  }
  bad("response must start with OK or ERR, got '" + tokens[0] + "'");
}

}  // namespace streamsched::net
