// Compiled simulation program for the discrete-event engine.
//
// The paper's "with c crashes" series re-runs the simulator once per crash
// trial, and after the survival-oracle precheck (schedule/survival.hpp)
// removed the killed trials, the event engine itself became the dominant
// cost of every sweep point: `simulate()` re-derives the complete static
// replica/transfer structure from the `Schedule` — topological order,
// per-replica predecessor lists, delivery wiring, readiness counters — on
// every invocation, and seeds one heap event per (replica, item) stage
// window up front, so the event heap carries the whole static gate
// schedule for the entire run.
//
// `SimProgram` compiles a `Schedule` once into flat arrays:
//   - replica instances in topological order (processor, execution time,
//     stage, entry flag, deterministic queue priority),
//   - per-replica delivery descriptors with pre-resolved consumer slots
//     and destination processors (grouped per source, comm order),
//   - per-discipline static event tables — the synchronous stage-window
//     gates presorted by firing time (release times for the self-timed
//     discipline are implicit), consumed by a cursor instead of the heap,
//   - per-replica readiness requirements (first item vs steady state).
//
// A `SimState` arena holds every per-trial buffer (event heap, per-
// processor ready queues, port/link clocks, readiness counters, latency
// accumulators); `run()` resets it in place, so repeated trials on one
// program are allocation-free apart from the returned SimResult.
//
// Equivalence contract: `run()` is BIT-IDENTICAL to the legacy engine
// (`simulate_legacy` in sim/engine.hpp) for both disciplines, fail-silent
// `failed` sets and timed `failures_at` events — same event-processing
// order (the static cursor merges with the heap under the legacy
// (time, kind, seq) tie-breaking; static and dynamic event kinds are
// disjoint, so dropping the gates from the heap cannot reorder anything),
// hence the same floating-point accumulation order for every metric and
// the same trace. Pinned by tests/test_sim_program.cpp; the golden sweep
// smoke test stays byte-identical with `simulate()` routed through here.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "schedule/schedule.hpp"
#include "sim/engine.hpp"

namespace streamsched {

namespace sim_detail {

// The legacy engine orders events by (time, kind, seq) with kinds
// kExecFinish(0) < kRelease(1) < kGate(2) < kArrival(3), so a finish
// drains before same-timestamp gates/arrivals (it frees its processor; a
// readiness event processed first would observe a stale busy_until and
// double-book it). seq is the per-run creation index, unique per event, so
// the order is a strict TOTAL order — which is what licenses replacing the
// legacy single heap: with a total order every conforming priority
// structure yields the identical pop sequence, so the event-processing
// order (and with it every floating-point accumulation) cannot depend on
// the queue implementation. The compiled engine keeps one queue PER KIND —
// the presorted gate/release cursor, a tiny exec-finish heap (a processor
// has at most one outstanding execution, so it holds <= m entries), and
// the arrival heap —
// and resolves same-time ties by the fixed kind priority when merging;
// within a queue the kind is constant, so the seq alone is the tie-break.
struct Event {
  double time;
  std::uint64_t seq;      // creation order (shared counter across queues)
  std::uint64_t payload;  // packed instance (arrival: slot in the top bits)

  [[nodiscard]] bool before(const Event& other) const {
    if (time != other.time) return time < other.time;
    return seq < other.seq;
  }
};

/// Allocation-free 4-ary min-heap (clear() keeps capacity). The shallower
/// tree and packed keys make push/pop measurably cheaper than the legacy
/// std::priority_queue of 32-byte events — the hot path of every trial.
template <typename T, typename Less>
class ReusableHeap {
 public:
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  void clear() { heap_.clear(); }
  [[nodiscard]] const T& top() const { return heap_.front(); }

  void push(T value) {
    std::size_t i = heap_.size();
    heap_.push_back(value);
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!Less{}(heap_[i], heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void pop() {
    heap_.front() = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = (i << 2) + 1;
      if (first >= n) break;
      const std::size_t last = first + 4 < n ? first + 4 : n;
      std::size_t best = first;
      for (std::size_t c = first + 1; c < last; ++c) {
        if (Less{}(heap_[c], heap_[best])) best = c;
      }
      if (!Less{}(heap_[best], heap_[i])) break;
      std::swap(heap_[i], heap_[best]);
      i = best;
    }
  }

 private:
  std::vector<T> heap_;
};

struct EventBefore {
  bool operator()(const Event& a, const Event& b) const { return a.before(b); }
};
struct KeyLess {
  bool operator()(std::uint64_t a, std::uint64_t b) const { return a < b; }
};

using EventHeap = ReusableHeap<Event, EventBefore>;
// Ready-queue entries pack the legacy RunKey (item, topo_index, rid) into
// one integer — same lexicographic order, one compare. Field widths are
// asserted at compile time (item < 2^24, topo/rid < 2^20); (rid, item)
// pairs are unique in a queue, so this order is total as well.
using RunQueue = ReusableHeap<std::uint64_t, KeyLess>;

}  // namespace sim_detail

/// Reusable per-trial arena of one SimProgram. `run()` sizes the buffers on
/// first use and reuses them allocation-free afterwards; a state may be
/// shared across programs (buffers re-size when dimensions change). Not
/// thread-safe — give each worker its own state.
/// Readiness state of one replica instance, packed so a satisfy (bit test
/// + counter decrement) touches a single cache line.
struct InstState {
  std::uint64_t slot_satisfied = 0;  // bitmask over predecessor slots
  std::uint32_t remaining = 0;       // unmet requirements
  std::uint32_t pad = 0;
};

struct SimState {
  std::vector<std::uint8_t> proc_failed;   // [proc] fail-silent from t=0
  std::vector<double> fail_time;           // [proc] timed fail-stop
  std::vector<std::uint8_t> alive;         // [rid]
  std::vector<InstState> inst;             // [item * replicas + rid]
  /// Earliest pending arrival per consumer (slot, item) — the coalescing
  /// filter: a transfer landing at or after it can only move the makespan
  /// (its arrival would no-op), so it folds into `makespan_fold` instead
  /// of paying a heap round trip. +inf = nothing pending.
  std::vector<double> pending_arrival;     // [item * slots + slot instance]
  std::vector<double> exit_done;           // [item * exits + slot]
  std::vector<double> proc_busy_until, send_free, recv_free, link_free;
  std::vector<double> proc_busy, send_busy, recv_busy;  // busy accumulators
  std::vector<double> item_latencies, completions;      // latency accumulators
  sim_detail::EventHeap arrivals;
  sim_detail::EventHeap exec_finishes;     // <= one entry per processor
  std::vector<sim_detail::RunQueue> run_queues;
};

/// A schedule compiled for repeated simulation. Immutable after
/// construction; `run()` is const and thread-safe when every thread brings
/// its own SimState.
class SimProgram {
 public:
  /// Compiles `schedule` under the static part of `options` (discipline,
  /// item counts, period). The failure fields of `options` are ignored
  /// here — they are per-trial inputs of `run()`.
  SimProgram(const Schedule& schedule, const SimOptions& options);

  [[nodiscard]] const Schedule& schedule() const { return *schedule_; }
  /// The compiled static options (failure fields cleared).
  [[nodiscard]] const SimOptions& options() const { return opt_; }
  [[nodiscard]] double period() const { return period_; }

  /// One trial under `options`, whose static fields (discipline, item
  /// counts, resolved period) must match the compiled ones; the failure
  /// fields and `collect_trace` are free per trial. Bit-identical to
  /// `simulate_legacy(schedule, options)`.
  [[nodiscard]] SimResult run(const SimOptions& options, SimState& state) const;

  /// Failure-free trial under the compiled options.
  [[nodiscard]] SimResult run(SimState& state) const { return run(opt_, state); }

 private:
  struct Delivery {
    std::uint32_t dst_rid;
    std::uint32_t dst_slot;
    double duration;
    ProcId dst_proc;
    std::uint32_t dst_slot_inst;  // slot_base_[dst_rid] + dst_slot
  };

  // One synchronous stage-window gate; the table is presorted by firing
  // time with the legacy seeding order (rid, item) as tie-break, so a
  // cursor walk reproduces the legacy heap's pop order exactly.
  struct StaticGate {
    double time;
    std::uint32_t rid;
    std::uint32_t item;
  };

  void prepare(const SimOptions& options, SimState& state) const;

  [[nodiscard]] bool synchronous() const {
    return opt_.discipline == SimDiscipline::kSynchronousPipeline;
  }
  /// Instance payload: (item << 20) | rid — fits the 44 low bits, no
  /// division to unpack (widths guarded at compile time).
  [[nodiscard]] static std::uint64_t payload_of(std::uint32_t rid, std::size_t item) {
    return (static_cast<std::uint64_t>(item) << 20) | rid;
  }
  /// Index into the per-instance arrays, ITEM-major: one pipeline window's
  /// readiness state is contiguous (the event loop works one window at a
  /// time, so the hot rows stay in L1).
  [[nodiscard]] std::size_t index_of(std::uint32_t rid, std::size_t item) const {
    return item * num_replicas_ + rid;
  }
  [[nodiscard]] ReplicaRef ref_of(std::uint32_t rid) const {
    return ReplicaRef{rid / copies_, rid % copies_};
  }

  const Schedule* schedule_;
  SimOptions opt_;  // static fields only (failed / failures_at cleared)
  double period_ = 0.0;
  std::size_t num_procs_ = 0;
  std::uint32_t num_replicas_ = 0;
  CopyId copies_ = 0;

  // Per-replica static structure, indexed rid = task * copies + copy.
  std::vector<ProcId> proc_;
  std::vector<double> exec_time_;
  std::vector<std::uint32_t> stage_;
  std::vector<std::uint32_t> topo_index_;
  std::vector<std::uint8_t> is_entry_;
  std::vector<std::uint32_t> need_first_;   // readiness count, item 0
  std::vector<std::uint32_t> need_steady_;  // readiness count, items >= 1

  // Deliveries grouped per source replica, original comm order within.
  std::vector<std::uint32_t> delivery_offset_;  // [rid] -> range, size R+1
  std::vector<Delivery> deliveries_;
  // Consumer (replica, predecessor-slot) instances, flattened: replica
  // rid's slots occupy [slot_base_[rid], slot_base_[rid] + preds(rid)).
  std::vector<std::uint32_t> slot_base_;  // size R+1; back() = total slots


  std::vector<TaskId> exit_tasks_;
  std::vector<TaskId> exit_slot_of_task_;

  std::vector<StaticGate> gates_;  // synchronous discipline only
};

}  // namespace streamsched
