// Optional execution trace of the simulator, for debugging schedules and
// rendering text Gantt charts in the examples.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace streamsched {

class Schedule;

enum class TraceKind : std::uint8_t { kExec, kTransfer };

struct TraceRecord {
  TraceKind kind;
  double start = 0.0;
  double finish = 0.0;
  ReplicaRef replica;        ///< executing replica / transfer source replica
  ReplicaRef dst_replica;    ///< transfer destination (kExec: unused)
  ProcId proc = kInvalidProc;       ///< executing proc / transfer source proc
  ProcId dst_proc = kInvalidProc;   ///< transfer destination proc
  std::size_t item = 0;
};

struct SimTrace {
  std::vector<TraceRecord> records;

  [[nodiscard]] bool empty() const { return records.empty(); }
};

/// Human-readable listing of a trace, ordered by start time.
[[nodiscard]] std::string format_trace(const SimTrace& trace, const Schedule& schedule,
                                       std::size_t max_records = 200);

}  // namespace streamsched
