#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "schedule/survival.hpp"
#include "sim/program.hpp"
#include "util/assert.hpp"

namespace streamsched {

namespace {

// kExecFinish must drain before same-timestamp gates/arrivals: a finish
// frees its processor, and a readiness event processed first would observe
// a stale busy_until and double-book it.
enum class EventKind : std::uint8_t { kExecFinish = 0, kRelease = 1, kGate = 2, kArrival = 3 };

struct Event {
  double time;
  EventKind kind;
  std::uint64_t seq;       // creation order: deterministic tie-break
  std::uint64_t payload;   // instance id (arrival/finish) or item (release)

  // Min-heap ordering: earliest time first; ties by kind then seq.
  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    if (kind != other.kind) return kind > other.kind;
    return seq > other.seq;
  }
};

// Static description of one replica.
struct ReplicaInfo {
  ProcId proc = kInvalidProc;
  bool alive = true;
  double exec_time = 0.0;
  bool is_entry = false;
  std::uint32_t stage = 1;
  std::uint32_t topo_index = 0;  // priority for deterministic queue pops
  // Supplier slot index by predecessor: slot of comm.src.task for this
  // replica's readiness bookkeeping.
  std::vector<TaskId> pred_tasks;          // slot -> predecessor task id
  // Outgoing deliveries: (consumer replica id, slot in consumer, duration,
  // consumer proc).
  struct Delivery {
    std::uint32_t dst_rid;
    std::uint32_t dst_slot;
    double duration;
    ProcId dst_proc;
  };
  std::vector<Delivery> deliveries;
};

class Engine {
 public:
  Engine(const Schedule& schedule, const SimOptions& opt)
      : s_(schedule), opt_(opt), copies_(schedule.copies()) {
    SS_REQUIRE(schedule.complete(), "cannot simulate an incomplete schedule");
    SS_REQUIRE(opt.num_items > 0, "need at least one data item");
    SS_REQUIRE(opt.warmup_items < opt.num_items, "warmup must leave items to measure");
    period_ = opt.period > 0.0 ? opt.period : schedule.period();
    SS_REQUIRE(std::isfinite(period_) && period_ > 0.0,
               "simulation needs a finite positive period");
    build_static_info();
  }

  SimResult run() {
    seed_releases();
    const std::size_t m = s_.platform().num_procs();
    proc_busy_until_.assign(m, 0.0);
    send_free_.assign(m, 0.0);
    recv_free_.assign(m, 0.0);
    link_free_.assign(m * m, 0.0);
    result_.proc_busy.assign(m, 0.0);
    result_.send_busy.assign(m, 0.0);
    result_.recv_busy.assign(m, 0.0);
    run_queues_.assign(m, {});

    while (!events_.empty()) {
      const Event ev = events_.top();
      events_.pop();
      now_ = ev.time;
      result_.makespan = std::max(result_.makespan, now_);
      switch (ev.kind) {
        case EventKind::kRelease: handle_release(ev.payload); break;
        case EventKind::kGate: handle_gate(ev.payload); break;
        case EventKind::kArrival: handle_arrival(ev.payload); break;
        case EventKind::kExecFinish: handle_exec_finish(ev.payload); break;
      }
    }
    finalize();
    return std::move(result_);
  }

 private:
  // ---- static structure -------------------------------------------------

  [[nodiscard]] std::uint32_t rid_of(ReplicaRef r) const {
    return static_cast<std::uint32_t>(r.task) * copies_ + r.copy;
  }
  [[nodiscard]] ReplicaRef ref_of(std::uint32_t rid) const {
    return ReplicaRef{rid / copies_, rid % copies_};
  }
  [[nodiscard]] std::uint64_t instance_of(std::uint32_t rid, std::size_t item) const {
    return static_cast<std::uint64_t>(rid) * opt_.num_items + item;
  }

  void build_static_info() {
    const Dag& dag = s_.dag();
    const std::size_t m = s_.platform().num_procs();
    std::vector<bool> failed(m, false);
    for (ProcId p : opt_.failed) {
      SS_REQUIRE(p < m, "failed processor id out of range");
      failed[p] = true;
    }
    fail_time_.assign(m, std::numeric_limits<double>::infinity());
    for (const SimOptions::TimedFailure& f : opt_.failures_at) {
      SS_REQUIRE(f.proc < m, "failed processor id out of range");
      SS_REQUIRE(f.time >= 0.0, "failure time must be non-negative");
      fail_time_[f.proc] = std::min(fail_time_[f.proc], f.time);
      if (f.time <= 0.0) failed[f.proc] = true;
    }

    const auto topo = dag.topological_order();
    std::vector<std::uint32_t> topo_index(dag.num_tasks());
    for (std::uint32_t i = 0; i < topo.size(); ++i) topo_index[topo[i]] = i;

    replicas_.resize(dag.num_tasks() * copies_);
    for (TaskId t = 0; t < dag.num_tasks(); ++t) {
      const auto preds = dag.predecessors(t);
      for (CopyId c = 0; c < copies_; ++c) {
        const ReplicaRef r{t, c};
        ReplicaInfo& info = replicas_[rid_of(r)];
        info.proc = s_.placed(r).proc;
        info.alive = !failed[info.proc];
        info.exec_time = s_.platform().exec_time(dag.work(t), info.proc);
        info.is_entry = preds.empty();
        info.stage = s_.placed(r).stage;
        info.topo_index = topo_index[t];
        info.pred_tasks = preds;
      }
    }

    // Wire deliveries from the recorded communications.
    for (const CommRecord& comm : s_.comms()) {
      const std::uint32_t src = rid_of(comm.src);
      const std::uint32_t dst = rid_of(comm.dst);
      if (!replicas_[src].alive || !replicas_[dst].alive) continue;
      const auto& preds = replicas_[dst].pred_tasks;
      std::uint32_t slot = 0;
      while (slot < preds.size() && preds[slot] != comm.src.task) ++slot;
      SS_CHECK(slot < preds.size(), "comm source is not a predecessor of its destination");
      const double duration = s_.platform().comm_time(
          s_.dag().edge(comm.edge).volume, replicas_[src].proc, replicas_[dst].proc);
      replicas_[src].deliveries.push_back(
          {dst, slot, duration, replicas_[dst].proc});
    }

    // Per-instance dynamic state.
    const std::size_t n_inst = replicas_.size() * opt_.num_items;
    remaining_.assign(n_inst, 0);
    slot_satisfied_.assign(n_inst, 0);  // bitmask over pred slots (<= 64 preds)
    for (std::uint32_t rid = 0; rid < replicas_.size(); ++rid) {
      const ReplicaInfo& info = replicas_[rid];
      SS_REQUIRE(info.pred_tasks.size() <= 64, "more than 64 predecessors unsupported");
      for (std::size_t item = 0; item < opt_.num_items; ++item) {
        std::uint32_t need = static_cast<std::uint32_t>(info.pred_tasks.size());
        if (item > 0) ++need;  // FIFO: previous instance must finish
        // Synchronous pipeline: every instance waits for its stage window;
        // self-timed: only entry replicas are gated, by the item release.
        if (synchronous() || info.is_entry) ++need;
        remaining_[instance_of(rid, item)] = need;
      }
    }

    exit_tasks_ = dag.exits();
    exit_done_.assign(opt_.num_items * exit_tasks_.size(),
                      std::numeric_limits<double>::infinity());
    exit_slot_of_task_.assign(dag.num_tasks(), kInvalidTask);
    for (std::uint32_t i = 0; i < exit_tasks_.size(); ++i) {
      exit_slot_of_task_[exit_tasks_[i]] = i;
    }
  }

  [[nodiscard]] bool synchronous() const {
    return opt_.discipline == SimDiscipline::kSynchronousPipeline;
  }

  /// Start of the compute window of stage `stage`, item `item`.
  [[nodiscard]] double compute_gate(std::uint32_t stage, std::size_t item) const {
    return (static_cast<double>(item) + 2.0 * (stage - 1)) * period_;
  }

  /// Start of the transfer window following stage `stage`, item `item`.
  [[nodiscard]] double transfer_gate(std::uint32_t stage, std::size_t item) const {
    return (static_cast<double>(item) + 2.0 * stage - 1.0) * period_;
  }

  void seed_releases() {
    if (synchronous()) {
      for (std::uint32_t rid = 0; rid < replicas_.size(); ++rid) {
        const ReplicaInfo& info = replicas_[rid];
        if (!info.alive) continue;
        for (std::size_t item = 0; item < opt_.num_items; ++item) {
          push_event(compute_gate(info.stage, item), EventKind::kGate,
                     instance_of(rid, item));
        }
      }
      return;
    }
    for (std::size_t item = 0; item < opt_.num_items; ++item) {
      push_event(static_cast<double>(item) * period_, EventKind::kRelease, item);
    }
  }

  // ---- event plumbing ---------------------------------------------------

  void push_event(double time, EventKind kind, std::uint64_t payload) {
    events_.push(Event{time, kind, next_seq_++, payload});
  }

  void decrement(std::uint32_t rid, std::size_t item) {
    const std::uint64_t inst = instance_of(rid, item);
    SS_CHECK(remaining_[inst] > 0, "readiness counter underflow");
    if (--remaining_[inst] == 0) make_ready(rid, item);
  }

  void satisfy_slot(std::uint32_t rid, std::size_t item, std::uint32_t slot) {
    const std::uint64_t inst = instance_of(rid, item);
    const std::uint64_t bit = 1ULL << slot;
    if (slot_satisfied_[inst] & bit) return;  // later replica of the same pred: ignore
    slot_satisfied_[inst] |= bit;
    decrement(rid, item);
  }

  // ---- processor compute handling ----------------------------------------

  struct RunKey {
    std::size_t item;
    std::uint32_t topo_index;
    std::uint32_t rid;

    bool operator>(const RunKey& other) const {
      if (item != other.item) return item > other.item;
      if (topo_index != other.topo_index) return topo_index > other.topo_index;
      return rid > other.rid;
    }
  };
  using RunQueue = std::priority_queue<RunKey, std::vector<RunKey>, std::greater<RunKey>>;

  // Readiness only ever enqueues; try_dispatch is the single place that
  // starts executions. This keeps single occupancy even when an exec-finish
  // handler makes colocated consumers ready before releasing its processor.
  void make_ready(std::uint32_t rid, std::size_t item) {
    const ReplicaInfo& info = replicas_[rid];
    SS_CHECK(info.alive, "dead replica became ready");
    run_queues_[info.proc].push(RunKey{item, info.topo_index, rid});
    try_dispatch(info.proc);
  }

  void try_dispatch(ProcId proc) {
    RunQueue& queue = run_queues_[proc];
    if (queue.empty() || now_ < proc_busy_until_[proc]) return;
    const RunKey next = queue.top();
    queue.pop();
    start_exec(next.rid, next.item);
  }

  void start_exec(std::uint32_t rid, std::size_t item) {
    const ReplicaInfo& info = replicas_[rid];
    SS_CHECK(now_ >= proc_busy_until_[info.proc] - 1e-12,
             "processor double-booked: event ordering violated");
    const double finish = now_ + info.exec_time;
    proc_busy_until_[info.proc] = finish;
    result_.proc_busy[info.proc] += info.exec_time;
    if (opt_.collect_trace) {
      TraceRecord rec;
      rec.kind = TraceKind::kExec;
      rec.start = now_;
      rec.finish = finish;
      rec.replica = ref_of(rid);
      rec.proc = info.proc;
      rec.item = item;
      result_.trace.records.push_back(rec);
    }
    push_event(finish, EventKind::kExecFinish, instance_of(rid, item));
  }

  // ---- event handlers ----------------------------------------------------

  void handle_gate(std::uint64_t inst) {
    const auto rid = static_cast<std::uint32_t>(inst / opt_.num_items);
    const std::size_t item = inst % opt_.num_items;
    decrement(rid, item);
  }

  void handle_release(std::uint64_t item) {
    for (std::uint32_t rid = 0; rid < replicas_.size(); ++rid) {
      const ReplicaInfo& info = replicas_[rid];
      if (info.is_entry && info.alive) decrement(rid, item);
    }
  }

  void handle_arrival(std::uint64_t payload) {
    // payload encodes (consumer instance, slot): slot in the top bits.
    const std::uint64_t inst = payload & ((1ULL << 48) - 1);
    const auto slot = static_cast<std::uint32_t>(payload >> 48);
    const auto rid = static_cast<std::uint32_t>(inst / opt_.num_items);
    const std::size_t item = inst % opt_.num_items;
    satisfy_slot(rid, item, slot);
  }

  void handle_exec_finish(std::uint64_t inst) {
    const auto rid = static_cast<std::uint32_t>(inst / opt_.num_items);
    const std::size_t item = inst % opt_.num_items;
    const ReplicaInfo& info = replicas_[rid];
    const ReplicaRef r = ref_of(rid);

    // Fail-stop at a timed crash: work finishing after the failure is
    // lost — no result, no deliveries, no FIFO token, and the processor
    // never dispatches again.
    if (now_ > fail_time_[info.proc]) return;

    // Record exit completions (earliest replica wins).
    if (exit_slot_of_task_[r.task] != kInvalidTask) {
      double& slot = exit_done_[item * exit_tasks_.size() + exit_slot_of_task_[r.task]];
      slot = std::min(slot, now_);
    }

    // FIFO token for the next item of this replica.
    if (item + 1 < opt_.num_items) decrement(rid, item + 1);

    // Deliveries to consumers.
    for (const ReplicaInfo::Delivery& d : info.deliveries) {
      if (d.duration <= 0.0) {
        satisfy_slot(d.dst_rid, item, d.dst_slot);
        continue;
      }
      const ProcId from = info.proc;
      const ProcId to = d.dst_proc;
      // Synchronous pipeline: transfers are gated into their window and
      // serialized per directional link l_{from,to} — the one-port rule is
      // enforced as the per-period port budgets C^I/C^O <= Δ, exactly as
      // in the paper's model, so data always lands within its window and
      // the (2S-1)Δ bound holds. Self-timed: true dynamic rendezvous of
      // the send and receive ports.
      double start;
      if (synchronous()) {
        double& link = link_free_[from * s_.platform().num_procs() + to];
        start = std::max({transfer_gate(info.stage, item), now_, link});
        link = start + d.duration;
      } else {
        start = std::max({now_, send_free_[from], recv_free_[to]});
        send_free_[from] = start + d.duration;
        recv_free_[to] = start + d.duration;
      }
      const double finish = start + d.duration;
      result_.send_busy[from] += d.duration;
      result_.recv_busy[to] += d.duration;
      if (opt_.collect_trace) {
        TraceRecord rec;
        rec.kind = TraceKind::kTransfer;
        rec.start = start;
        rec.finish = finish;
        rec.replica = r;
        rec.dst_replica = ref_of(d.dst_rid);
        rec.proc = from;
        rec.dst_proc = to;
        rec.item = item;
        result_.trace.records.push_back(rec);
      }
      const std::uint64_t inst_dst = instance_of(d.dst_rid, item);
      SS_CHECK(inst_dst < (1ULL << 48), "instance id overflows arrival payload");
      push_event(finish, EventKind::kArrival,
                 inst_dst | (static_cast<std::uint64_t>(d.dst_slot) << 48));
    }

    // Release the processor to the next queued instance, if any.
    try_dispatch(info.proc);
  }

  // ---- wrap-up -----------------------------------------------------------

  void finalize() {
    std::vector<double> completions;
    completions.reserve(opt_.num_items - opt_.warmup_items);
    for (std::size_t item = opt_.warmup_items; item < opt_.num_items; ++item) {
      double completion = 0.0;
      bool starved = false;
      for (std::uint32_t i = 0; i < exit_tasks_.size(); ++i) {
        const double done = exit_done_[item * exit_tasks_.size() + i];
        if (!std::isfinite(done)) {
          starved = true;
          break;
        }
        completion = std::max(completion, done);
      }
      if (starved) {
        ++result_.starved_items;
        result_.complete = false;
        continue;
      }
      const double release = static_cast<double>(item) * period_;
      result_.item_latencies.push_back(completion - release);
      completions.push_back(completion);
    }

    if (!result_.item_latencies.empty()) {
      double sum = 0.0;
      result_.min_latency = std::numeric_limits<double>::infinity();
      for (double latency : result_.item_latencies) {
        sum += latency;
        result_.max_latency = std::max(result_.max_latency, latency);
        result_.min_latency = std::min(result_.min_latency, latency);
      }
      result_.mean_latency = sum / static_cast<double>(result_.item_latencies.size());
    } else {
      result_.min_latency = 0.0;
    }

    if (completions.size() >= 2) {
      std::sort(completions.begin(), completions.end());
      result_.achieved_period = (completions.back() - completions.front()) /
                                static_cast<double>(completions.size() - 1);
      for (std::size_t i = 1; i < completions.size(); ++i) {
        result_.max_completion_gap =
            std::max(result_.max_completion_gap, completions[i] - completions[i - 1]);
      }
    }
  }

  const Schedule& s_;
  const SimOptions& opt_;
  CopyId copies_;
  double period_ = 0.0;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;

  std::vector<ReplicaInfo> replicas_;
  std::vector<std::uint32_t> remaining_;
  std::vector<std::uint64_t> slot_satisfied_;

  std::vector<TaskId> exit_tasks_;
  std::vector<double> exit_done_;
  std::vector<TaskId> exit_slot_of_task_;

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
  std::vector<double> fail_time_;
  std::vector<double> proc_busy_until_;
  std::vector<double> send_free_;
  std::vector<double> recv_free_;
  std::vector<double> link_free_;  // m*m, synchronous discipline only
  std::vector<RunQueue> run_queues_;

  SimResult result_;
};

// Summary of a trial whose sampled crash set kills the schedule: some task
// keeps no computable replica, so every measured item starves on that
// task's downstream exits — the outcome is known without running the event
// simulation. Busy vectors are sized like the engine's (all zero), so
// per-processor reads stay in bounds.
SimResult killed_trial_result(std::size_t num_procs, const SimOptions& options) {
  SimResult result;
  result.complete = false;
  result.starved_items = options.num_items - options.warmup_items;
  result.min_latency = 0.0;
  result.proc_busy.assign(num_procs, 0.0);
  result.send_busy.assign(num_procs, 0.0);
  result.recv_busy.assign(num_procs, 0.0);
  return result;
}

}  // namespace

SimResult simulate(const Schedule& schedule, const SimOptions& options) {
  const SimProgram program(schedule, options);
  SimState state;
  return program.run(options, state);
}

SimResult simulate_legacy(const Schedule& schedule, const SimOptions& options) {
  Engine engine(schedule, options);
  return engine.run();
}

SimResult simulate_with_sampled_failures(const Schedule& schedule, const FaultModel& model,
                                         std::uint32_t count_crashes, Rng& rng,
                                         SimOptions options, const SurvivalOracle* precheck) {
  options.failed = model.sample_failures(schedule.platform(), count_crashes, rng);
  if (precheck != nullptr) {
    // Per-worker buffers: this entry point runs in tight per-trial loops
    // and from parallel sweep workers, so the failure set and oracle
    // scratch live per thread instead of being reallocated per call.
    thread_local ProcSet failed;
    thread_local std::vector<std::uint64_t> scratch;
    const std::size_t m = schedule.platform().num_procs();
    if (failed.size() != m) failed.resize(m);
    failed.assign(options.failed);
    if (!precheck->survives(failed, scratch)) {
      return killed_trial_result(m, options);
    }
  }
  return simulate(schedule, options);
}

std::vector<SimResult> simulate_crash_trials(const SimProgram& program, const FaultModel& model,
                                             std::uint32_t count_crashes, std::size_t trials,
                                             Rng& rng, const SurvivalOracle* precheck) {
  const Schedule& schedule = program.schedule();
  const std::size_t m = schedule.platform().num_procs();

  // Draw every crash set up front: sampling is the only rng consumer of
  // the per-trial loop, so the draws (and therefore the results) are
  // bit-identical to interleaved draw-then-simulate.
  std::vector<std::vector<ProcId>> crash_sets(trials);
  for (auto& set : crash_sets) {
    set = model.sample_failures(schedule.platform(), count_crashes, rng);
  }

  // Resolve every precheck up front through the bit-sliced oracle pass —
  // 64 sampled sets per topological walk instead of one per trial. Each
  // lane boolean equals the per-set check's, so the per-trial outcomes
  // (and the result order) are unchanged.
  std::vector<unsigned char> killed;
  if (precheck != nullptr && trials > 0) {
    const std::size_t words = (m + 63) / 64;
    std::vector<std::uint64_t> rows(trials * words, 0);
    for (std::size_t trial = 0; trial < trials; ++trial) {
      std::uint64_t* row = rows.data() + trial * words;
      for (ProcId u : crash_sets[trial]) row[u >> 6] |= 1ULL << (u & 63);
    }
    killed.assign(trials, 0);
    BatchScratch scratch;
    for (std::size_t begin = 0; begin < trials; begin += 64) {
      const std::size_t count = std::min<std::size_t>(64, trials - begin);
      const std::uint64_t survived =
          precheck->survives_batch(rows.data() + begin * words, count, scratch);
      for (std::size_t lane = 0; lane < count; ++lane) {
        killed[begin + lane] = ((survived >> lane) & 1) != 0 ? 0 : 1;
      }
    }
  }

  std::vector<SimResult> results;
  results.reserve(trials);
  SimState state;
  SimOptions options = program.options();
  for (std::size_t trial = 0; trial < trials; ++trial) {
    options.failed = std::move(crash_sets[trial]);
    if (precheck != nullptr && killed[trial] != 0) {
      results.push_back(killed_trial_result(m, options));
      continue;
    }
    results.push_back(program.run(options, state));
  }
  return results;
}

}  // namespace streamsched
