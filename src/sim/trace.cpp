#include "sim/trace.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "schedule/schedule.hpp"

namespace streamsched {

std::string format_trace(const SimTrace& trace, const Schedule& schedule,
                         std::size_t max_records) {
  std::vector<const TraceRecord*> ordered;
  ordered.reserve(trace.records.size());
  for (const auto& rec : trace.records) ordered.push_back(&rec);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const TraceRecord* a, const TraceRecord* b) { return a->start < b->start; });

  std::ostringstream os;
  os << std::fixed << std::setprecision(2);
  std::size_t shown = 0;
  for (const TraceRecord* rec : ordered) {
    if (shown++ >= max_records) {
      os << "... (" << (ordered.size() - max_records) << " more records)\n";
      break;
    }
    const auto& dag = schedule.dag();
    os << '[' << std::setw(9) << rec->start << ", " << std::setw(9) << rec->finish << "] ";
    if (rec->kind == TraceKind::kExec) {
      os << "P" << rec->proc << "  exec " << dag.name(rec->replica.task) << '#'
         << rec->replica.copy << " item " << rec->item << '\n';
    } else {
      os << "P" << rec->proc << "->P" << rec->dst_proc << " xfer "
         << dag.name(rec->replica.task) << '#' << rec->replica.copy << " -> "
         << dag.name(rec->dst_replica.task) << '#' << rec->dst_replica.copy << " item "
         << rec->item << '\n';
    }
  }
  return os.str();
}

}  // namespace streamsched
