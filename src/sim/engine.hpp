// Discrete-event simulator of pipelined streaming execution.
//
// Executes a replicated schedule in the self-timed periodic regime: data
// item k enters the system at time k·Δ; every alive replica executes every
// item exactly once (active replication), in FIFO item order; each
// processor computes serially and owns one send port and one receive port
// (bi-directional one-port model with full computation/communication
// overlap). A replica instance becomes ready when, for each predecessor
// task, data from at least one recorded supplier replica has arrived
// (ANY-of semantics — all replicas of a task produce identical results).
//
// Failure model: processors listed in SimOptions::failed are fail-silent
// from time 0 — their replicas never execute and transfers from or to them
// are never issued (senders skip dead destinations; this frees their send
// port, matching the fail-silent intuition that transport to a dead peer
// aborts immediately). Items whose exit results cannot all be produced are
// reported as starved — on a schedule that satisfies the ε-failure
// guarantee this never happens for |failed| <= ε.
//
// Port policy: transfers reserve the source send port and the destination
// receive port together, FCFS in data-ready order. This is the same greedy
// reservation rule the schedule builders use.
//
// The paper's "with c crash" latency series (Figs. 3(b), 4(b)) and the
// "with 0 crash" series are produced by this engine. Two implementations
// share these semantics bit-for-bit: the compiled `SimProgram`
// (sim/program.hpp), which `simulate()` routes through, and the original
// per-call engine preserved as `simulate_legacy` — the measured baseline
// of bench_sim_engine and the reference of the parity suite.
#pragma once

#include <vector>

#include "schedule/fault_model.hpp"
#include "schedule/schedule.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"

namespace streamsched {

/// Execution discipline of the pipelined run.
///
/// kSynchronousPipeline is the paper's model: stage s of item k computes
/// inside the period window starting at (k + 2(s-1))·Δ and its outgoing
/// transfers inside the window starting at (k + 2s - 1)·Δ. Because every
/// window carries exactly one instance of every replica (and of every
/// transfer) hosted on a processor/port, per-window loads equal Σ/C^I/C^O
/// <= Δ and the latency bound L = (2S-1)·Δ holds by construction; the
/// windows are *soft* (work that spills, e.g. due to port-pairing
/// fragmentation or crashes rerouting data, simply runs late).
///
/// kSelfTimed drops the windows: every instance starts as soon as its
/// inputs, its processor and the ports allow. This is the greedier, more
/// opportunistic execution; its latency is usually lower at light load but
/// it is NOT bounded by (2S-1)·Δ (FCFS priority inversion).
enum class SimDiscipline { kSynchronousPipeline, kSelfTimed };

struct SimOptions {
  SimDiscipline discipline = SimDiscipline::kSynchronousPipeline;
  /// Total data items pushed through the pipeline.
  std::size_t num_items = 40;
  /// Leading items excluded from the latency/period statistics (pipeline
  /// fill). Must be < num_items.
  std::size_t warmup_items = 10;
  /// Release period Δ; 0 means "use schedule.period()" (which must then be
  /// finite).
  double period = 0.0;
  /// Fail-silent processors (down for the whole run).
  std::vector<ProcId> failed;
  /// Fail-stop events at a given simulation time: the processor computes
  /// nothing that would *finish* after its failure time and sends nothing
  /// from then on (work in flight at the crash is lost).
  struct TimedFailure {
    ProcId proc = kInvalidProc;
    double time = 0.0;
  };
  std::vector<TimedFailure> failures_at;
  /// Record an execution trace (costs memory; off by default).
  bool collect_trace = false;
};

struct SimResult {
  /// True when every measured item produced results for every exit task.
  bool complete = true;
  std::size_t starved_items = 0;

  /// Per measured item: completion − release. Empty if nothing measured.
  std::vector<double> item_latencies;
  double mean_latency = 0.0;
  double max_latency = 0.0;
  double min_latency = 0.0;

  /// Average spacing of consecutive item completions over the measured
  /// window; must approach Δ on a feasible schedule.
  double achieved_period = 0.0;
  double max_completion_gap = 0.0;

  double makespan = 0.0;

  /// Absolute busy times per processor (compute, send port, recv port).
  std::vector<double> proc_busy;
  std::vector<double> send_busy;
  std::vector<double> recv_busy;

  SimTrace trace;
};

/// Simulates `schedule` and returns steady-state metrics. The schedule
/// must be complete (every replica placed). Routed through the compiled
/// engine (sim/program.hpp): compile once, run once — bit-identical to
/// `simulate_legacy`. Callers running many trials on one schedule should
/// compile a `SimProgram` themselves (or use `simulate_crash_trials`) so
/// the compilation is paid once, not per trial.
[[nodiscard]] SimResult simulate(const Schedule& schedule, const SimOptions& options = {});

/// The pre-compilation engine, kept verbatim as the measured baseline for
/// bench_sim_engine and the parity suite (tests/test_sim_program.cpp): it
/// re-derives the full static replica/transfer structure from the schedule
/// on every call.
[[nodiscard]] SimResult simulate_legacy(const Schedule& schedule,
                                        const SimOptions& options = {});

class SurvivalOracle;
class SimProgram;

/// One crash trial under a fault model: draws a fail-silent crash set from
/// the model (count: a uniform `count_crashes`-subset — the paper's "with
/// c crashes" series; probabilistic: per-processor Bernoulli failures from
/// the platform's failure probabilities) and simulates under it.
/// `options.failed` is overwritten with the sampled set.
///
/// `precheck` (optional, compiled from the same schedule) short-circuits
/// trials whose sampled set kills the schedule: a task without a
/// computable replica starves every downstream exit for every item, so the
/// run's outcome — complete = false, every measured item starved, no
/// latencies — is known without paying for the event simulation. Only the
/// completeness/starvation/latency summary fields are meaningful in the
/// short-circuited result (busy times and makespan stay zero).
[[nodiscard]] SimResult simulate_with_sampled_failures(const Schedule& schedule,
                                                       const FaultModel& model,
                                                       std::uint32_t count_crashes, Rng& rng,
                                                       SimOptions options = {},
                                                       const SurvivalOracle* precheck = nullptr);

/// Batched crash trials on a compiled program: draws all `trials` crash
/// sets up front from `rng` (the same sequential draws the per-trial
/// `simulate_with_sampled_failures` loop makes — the simulations never
/// consume the stream), short-circuits trials whose sampled set kills the
/// schedule via the optional `precheck` oracle, and replays the compiled
/// program once per surviving trial on a single reused SimState arena. One
/// sweep point thus pays schedule compilation once instead of
/// `crash_trials` times. Results are per trial, in draw order, and
/// bit-identical to the per-trial loop (including the short-circuited
/// starved summaries).
[[nodiscard]] std::vector<SimResult> simulate_crash_trials(
    const SimProgram& program, const FaultModel& model, std::uint32_t count_crashes,
    std::size_t trials, Rng& rng, const SurvivalOracle* precheck = nullptr);

}  // namespace streamsched
