#include "sim/program.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace streamsched {

using sim_detail::Event;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Packed ready-queue key: (item, topo_index, rid) lexicographic.
constexpr std::uint64_t run_key(std::size_t item, std::uint32_t topo_index,
                                std::uint32_t rid) {
  return (static_cast<std::uint64_t>(item) << 40) |
         (static_cast<std::uint64_t>(topo_index) << 20) | rid;
}

}  // namespace

SimProgram::SimProgram(const Schedule& schedule, const SimOptions& options)
    : schedule_(&schedule), opt_(options), copies_(schedule.copies()) {
  SS_REQUIRE(schedule.complete(), "cannot simulate an incomplete schedule");
  SS_REQUIRE(options.num_items > 0, "need at least one data item");
  SS_REQUIRE(options.warmup_items < options.num_items, "warmup must leave items to measure");
  period_ = options.period > 0.0 ? options.period : schedule.period();
  SS_REQUIRE(std::isfinite(period_) && period_ > 0.0,
             "simulation needs a finite positive period");
  opt_.failed.clear();
  opt_.failures_at.clear();
  opt_.collect_trace = false;

  const Dag& dag = schedule.dag();
  num_procs_ = schedule.platform().num_procs();
  num_replicas_ = static_cast<std::uint32_t>(dag.num_tasks() * copies_);
  // Packed ready-queue keys carry (item:24, topo:20, rid:20) bits.
  SS_REQUIRE(num_replicas_ < (1u << 20), "more than 2^20 replicas unsupported");
  SS_REQUIRE(opt_.num_items < (1u << 24), "more than 2^24 items unsupported");

  const auto topo = dag.topological_order();
  std::vector<std::uint32_t> topo_index(dag.num_tasks());
  for (std::uint32_t i = 0; i < topo.size(); ++i) topo_index[topo[i]] = i;

  proc_.resize(num_replicas_);
  exec_time_.resize(num_replicas_);
  stage_.resize(num_replicas_);
  topo_index_.resize(num_replicas_);
  is_entry_.resize(num_replicas_);
  need_first_.resize(num_replicas_);
  need_steady_.resize(num_replicas_);

  // Predecessor slot maps per task: the delivery wiring resolves each
  // comm's source task to its slot in the consumer's predecessor list.
  std::vector<std::vector<TaskId>> preds_of(dag.num_tasks());
  slot_base_.assign(num_replicas_ + 1, 0);
  for (TaskId t = 0; t < dag.num_tasks(); ++t) {
    preds_of[t] = dag.predecessors(t);
    SS_REQUIRE(preds_of[t].size() <= 64, "more than 64 predecessors unsupported");
    for (CopyId c = 0; c < copies_; ++c) {
      slot_base_[t * copies_ + c + 1] = static_cast<std::uint32_t>(preds_of[t].size());
    }
    for (CopyId c = 0; c < copies_; ++c) {
      const ReplicaRef r{t, c};
      const std::uint32_t rid = t * copies_ + c;
      proc_[rid] = schedule.placed(r).proc;
      exec_time_[rid] = schedule.platform().exec_time(dag.work(t), proc_[rid]);
      stage_[rid] = schedule.placed(r).stage;
      topo_index_[rid] = topo_index[t];
      is_entry_[rid] = preds_of[t].empty() ? 1 : 0;
      // Readiness: every predecessor slot, plus the FIFO token of the
      // previous item (steady state), plus the discipline gate — every
      // instance in the synchronous pipeline, entry releases self-timed.
      std::uint32_t need = static_cast<std::uint32_t>(preds_of[t].size());
      if (synchronous() || is_entry_[rid] != 0) ++need;
      need_first_[rid] = need;
      need_steady_[rid] = need + 1;
    }
  }
  for (std::uint32_t rid = 0; rid < num_replicas_; ++rid) {
    slot_base_[rid + 1] += slot_base_[rid];
  }

  // Deliveries: counting sort of the comm records by source replica keeps
  // each source's deliveries in original comm order, matching the legacy
  // engine's per-replica push_back wiring. All pairs are compiled — dead
  // endpoints are skipped per trial at run time.
  delivery_offset_.assign(num_replicas_ + 1, 0);
  for (const CommRecord& comm : schedule.comms()) {
    ++delivery_offset_[comm.src.task * copies_ + comm.src.copy + 1];
  }
  for (std::uint32_t rid = 0; rid < num_replicas_; ++rid) {
    delivery_offset_[rid + 1] += delivery_offset_[rid];
  }
  deliveries_.resize(schedule.comms().size());
  std::vector<std::uint32_t> fill(delivery_offset_.begin(), delivery_offset_.end() - 1);
  for (const CommRecord& comm : schedule.comms()) {
    const std::uint32_t src = comm.src.task * copies_ + comm.src.copy;
    const std::uint32_t dst = comm.dst.task * copies_ + comm.dst.copy;
    const auto& preds = preds_of[comm.dst.task];
    std::uint32_t slot = 0;
    while (slot < preds.size() && preds[slot] != comm.src.task) ++slot;
    SS_CHECK(slot < preds.size(), "comm source is not a predecessor of its destination");
    Delivery& d = deliveries_[fill[src]++];
    d.dst_rid = dst;
    d.dst_slot = slot;
    d.duration = schedule.platform().comm_time(dag.edge(comm.edge).volume, proc_[src],
                                               proc_[dst]);
    d.dst_proc = proc_[dst];
    d.dst_slot_inst = slot_base_[dst] + slot;
  }

  exit_tasks_ = dag.exits();
  exit_slot_of_task_.assign(dag.num_tasks(), kInvalidTask);
  for (std::uint32_t i = 0; i < exit_tasks_.size(); ++i) {
    exit_slot_of_task_[exit_tasks_[i]] = i;
  }

  if (synchronous()) {
    // Stage-window gates in legacy seeding order (rid, item), stable-sorted
    // by firing time. Equal times come only from equal integer window keys
    // (item + 2(stage-1)), computed with the legacy formula, so the sorted
    // cursor walk pops gates exactly as the legacy heap did: time first,
    // seeding order on ties.
    gates_.reserve(static_cast<std::size_t>(num_replicas_) * opt_.num_items);
    for (std::uint32_t rid = 0; rid < num_replicas_; ++rid) {
      for (std::size_t item = 0; item < opt_.num_items; ++item) {
        const double time =
            (static_cast<double>(item) + 2.0 * (stage_[rid] - 1)) * period_;
        gates_.push_back(StaticGate{time, rid, static_cast<std::uint32_t>(item)});
      }
    }
    std::stable_sort(gates_.begin(), gates_.end(),
                     [](const StaticGate& a, const StaticGate& b) { return a.time < b.time; });
  }
}

void SimProgram::prepare(const SimOptions& options, SimState& state) const {
  const std::size_t m = num_procs_;
  state.proc_failed.assign(m, 0);
  for (ProcId p : options.failed) {
    SS_REQUIRE(p < m, "failed processor id out of range");
    state.proc_failed[p] = 1;
  }
  state.fail_time.assign(m, kInf);
  for (const SimOptions::TimedFailure& f : options.failures_at) {
    SS_REQUIRE(f.proc < m, "failed processor id out of range");
    SS_REQUIRE(f.time >= 0.0, "failure time must be non-negative");
    state.fail_time[f.proc] = std::min(state.fail_time[f.proc], f.time);
    if (f.time <= 0.0) state.proc_failed[f.proc] = 1;
  }

  state.alive.resize(num_replicas_);
  for (std::uint32_t rid = 0; rid < num_replicas_; ++rid) {
    state.alive[rid] = state.proc_failed[proc_[rid]] == 0 ? 1 : 0;
  }

  const std::size_t n_inst = static_cast<std::size_t>(num_replicas_) * opt_.num_items;
  state.inst.resize(n_inst);
  for (std::uint32_t rid = 0; rid < num_replicas_; ++rid) {
    state.inst[rid] = InstState{0, need_first_[rid], 0};
  }
  for (std::size_t item = 1; item < opt_.num_items; ++item) {
    InstState* row = state.inst.data() + item * num_replicas_;
    for (std::uint32_t rid = 0; rid < num_replicas_; ++rid) {
      row[rid] = InstState{0, need_steady_[rid], 0};
    }
  }
  state.pending_arrival.assign(static_cast<std::size_t>(slot_base_.back()) * opt_.num_items,
                               kInf);
  state.exit_done.assign(opt_.num_items * exit_tasks_.size(), kInf);

  state.proc_busy_until.assign(m, 0.0);
  state.send_free.assign(m, 0.0);
  state.recv_free.assign(m, 0.0);
  state.link_free.assign(m * m, 0.0);
  state.proc_busy.assign(m, 0.0);
  state.send_busy.assign(m, 0.0);
  state.recv_busy.assign(m, 0.0);
  state.item_latencies.clear();
  state.completions.clear();

  state.arrivals.clear();
  state.exec_finishes.clear();
  state.run_queues.resize(m);
  for (auto& queue : state.run_queues) queue.clear();
}

SimResult SimProgram::run(const SimOptions& options, SimState& state) const {
  SS_REQUIRE(options.discipline == opt_.discipline &&
                 options.num_items == opt_.num_items &&
                 options.warmup_items == opt_.warmup_items,
             "per-trial options must keep the compiled discipline and item counts");
  const double period = options.period > 0.0 ? options.period : schedule_->period();
  SS_REQUIRE(period == period_, "per-trial options must keep the compiled period");
  prepare(options, state);

  SimResult result;
  double now = 0.0;
  // Running maximum of the event times the coalescing filter absorbed
  // (arrivals that could only no-op); folded into the makespan at the end.
  double makespan_fold = 0.0;
  std::uint64_t next_seq = 0;
  std::size_t cursor = 0;  // gates_ (synchronous) / release item (self-timed)
  const std::size_t num_static = synchronous() ? gates_.size() : opt_.num_items;
  const std::uint32_t num_slots = slot_base_.back();
  // Cached queue-head times (+inf = empty), refreshed at every mutation —
  // the merge loop then reads two locals instead of chasing heap storage.
  double t_exec = kInf;
  double t_arrival = kInf;

  const auto start_exec = [&](ProcId proc, std::uint32_t rid, std::size_t item) {
    SS_CHECK(now >= state.proc_busy_until[proc] - 1e-12,
             "processor double-booked: event ordering violated");
    const double finish = now + exec_time_[rid];
    state.proc_busy_until[proc] = finish;
    state.proc_busy[proc] += exec_time_[rid];
    if (options.collect_trace) {
      TraceRecord rec;
      rec.kind = TraceKind::kExec;
      rec.start = now;
      rec.finish = finish;
      rec.replica = ref_of(rid);
      rec.proc = proc;
      rec.item = item;
      result.trace.records.push_back(rec);
    }
    state.exec_finishes.push(Event{finish, next_seq++, payload_of(rid, item)});
    t_exec = std::min(t_exec, finish);
  };

  const auto try_dispatch = [&](ProcId proc) {
    auto& queue = state.run_queues[proc];
    if (queue.empty() || now < state.proc_busy_until[proc]) return;
    const std::uint64_t next = queue.top();
    queue.pop();
    start_exec(proc, static_cast<std::uint32_t>(next & 0xFFFFF),
               static_cast<std::size_t>(next >> 40));
  };

  const auto make_ready = [&](std::uint32_t rid, std::size_t item) {
    SS_CHECK(state.alive[rid] != 0, "dead replica became ready");
    const ProcId proc = proc_[rid];
    auto& queue = state.run_queues[proc];
    // Empty queue + idle processor: pushing the key and immediately
    // popping it is an identity — start directly.
    if (queue.empty() && now >= state.proc_busy_until[proc]) {
      start_exec(proc, rid, item);
      return;
    }
    queue.push(run_key(item, topo_index_[rid], rid));
    try_dispatch(proc);
  };

  const auto decrement = [&](std::uint32_t rid, std::size_t item) {
    InstState& inst = state.inst[index_of(rid, item)];
    SS_CHECK(inst.remaining > 0, "readiness counter underflow");
    if (--inst.remaining == 0) make_ready(rid, item);
  };

  const auto satisfy_slot = [&](std::uint32_t rid, std::size_t item, std::uint32_t slot) {
    InstState& inst = state.inst[index_of(rid, item)];
    const std::uint64_t bit = 1ULL << slot;
    if (inst.slot_satisfied & bit) return;  // later replica of same pred
    inst.slot_satisfied |= bit;
    SS_CHECK(inst.remaining > 0, "readiness counter underflow");
    if (--inst.remaining == 0) make_ready(rid, item);
  };

  const auto handle_exec_finish = [&](std::uint64_t payload) {
    const auto rid = static_cast<std::uint32_t>(payload & 0xFFFFF);
    const std::size_t item = static_cast<std::size_t>(payload >> 20);
    const ProcId here = proc_[rid];

    // Fail-stop at a timed crash: work finishing after the failure is
    // lost — no result, no deliveries, no FIFO token, and the processor
    // never dispatches again.
    if (now > state.fail_time[here]) return;

    const ReplicaRef r = ref_of(rid);
    if (exit_slot_of_task_[r.task] != kInvalidTask) {
      double& slot = state.exit_done[item * exit_tasks_.size() + exit_slot_of_task_[r.task]];
      slot = std::min(slot, now);
    }

    if (item + 1 < opt_.num_items) decrement(rid, item + 1);

    const std::uint32_t d_begin = delivery_offset_[rid];
    const std::uint32_t d_end = delivery_offset_[rid + 1];
    for (std::uint32_t di = d_begin; di < d_end; ++di) {
      const Delivery& d = deliveries_[di];
      // Senders skip dead destinations (the legacy engine never wired
      // them), freeing the ports the transfer would have reserved.
      if (state.alive[d.dst_rid] == 0) continue;
      if (d.duration <= 0.0) {
        satisfy_slot(d.dst_rid, item, d.dst_slot);
        continue;
      }
      double start;
      if (synchronous()) {
        double& link = state.link_free[here * num_procs_ + d.dst_proc];
        const double gate =
            (static_cast<double>(item) + 2.0 * stage_[rid] - 1.0) * period_;
        start = std::max({gate, now, link});
        link = start + d.duration;
      } else {
        start = std::max({now, state.send_free[here], state.recv_free[d.dst_proc]});
        state.send_free[here] = start + d.duration;
        state.recv_free[d.dst_proc] = start + d.duration;
      }
      const double finish = start + d.duration;
      state.send_busy[here] += d.duration;
      state.recv_busy[d.dst_proc] += d.duration;
      if (options.collect_trace) {
        TraceRecord rec;
        rec.kind = TraceKind::kTransfer;
        rec.start = start;
        rec.finish = finish;
        rec.replica = r;
        rec.dst_replica = ref_of(d.dst_rid);
        rec.proc = here;
        rec.dst_proc = d.dst_proc;
        rec.item = item;
        result.trace.records.push_back(rec);
      }
      // Early-arrival shortcut (synchronous discipline): the consumer's
      // own compute gate is a readiness requirement of every instance and
      // pops BEFORE a same-time arrival (kind 2 < 3). An arrival landing
      // strictly before that gate therefore cannot be the readiness
      // trigger — its pop would only set the slot bit and decrement the
      // counter (commutative effects) and advance the clock, which the
      // order-free max fold reproduces exactly. Apply it immediately and
      // skip the heap round trip. (finish < gate also implies the gate has
      // not fired yet: finish > now.)
      if (synchronous() &&
          finish < (static_cast<double>(item) + 2.0 * (stage_[d.dst_rid] - 1)) * period_) {
        makespan_fold = std::max(makespan_fold, finish);
        satisfy_slot(d.dst_rid, item, d.dst_slot);
        continue;
      }
      // Coalescing filter: the arrival event only matters if it can be the
      // FIRST to satisfy its (consumer, slot, item) — ANY-of semantics
      // make every later one a no-op whose only observable effect is the
      // clock it would have advanced, which the order-free max fold
      // reproduces exactly. The stale heap entry a decrease leaves behind
      // pops as the same no-op the legacy engine processed.
      const std::size_t pend = item * num_slots + d.dst_slot_inst;
      if ((state.inst[index_of(d.dst_rid, item)].slot_satisfied >> d.dst_slot) & 1) {
        makespan_fold = std::max(makespan_fold, finish);
      } else if (finish < state.pending_arrival[pend]) {
        state.pending_arrival[pend] = finish;
        // (item:24, rid:20) fills 44 bits — the slot always fits above.
        state.arrivals.push(Event{finish, next_seq++,
                                  payload_of(d.dst_rid, item) |
                                      (static_cast<std::uint64_t>(d.dst_slot) << 48)});
        t_arrival = std::min(t_arrival, finish);
      } else {
        makespan_fold = std::max(makespan_fold, finish);
      }
    }

    try_dispatch(here);
  };

  // Merge the three per-kind queues under the legacy (time, kind, seq)
  // rule: on equal times, exec finishes (kind 0) beat gates/releases
  // (kind 2/1), which beat arrivals (kind 3); within a queue the kind is
  // constant and entries already order by (time, seq).
  for (;;) {
    const double t_static =
        cursor < num_static
            ? (synchronous() ? gates_[cursor].time : static_cast<double>(cursor) * period_)
            : kInf;

    if (t_exec <= t_static && t_exec <= t_arrival) {
      if (t_exec == kInf) break;  // every queue drained
      const Event ev = state.exec_finishes.top();
      state.exec_finishes.pop();
      t_exec = state.exec_finishes.empty() ? kInf : state.exec_finishes.top().time;
      now = ev.time;
      handle_exec_finish(ev.payload);
    } else if (t_static <= t_arrival) {
      if (synchronous()) {
        // Burst: consecutive gates that stay ahead of both dynamic queues
        // (ties: a gate beats an arrival, an exec finish beats a gate).
        // Gate handling may start executions — t_exec is re-read per gate.
        do {
          const StaticGate& gate = gates_[cursor++];
          // Gates of dead replicas were never seeded by the legacy
          // engine: skip without touching the clock.
          if (state.alive[gate.rid] != 0) {
            now = gate.time;
            decrement(gate.rid, gate.item);
          }
        } while (cursor < num_static && gates_[cursor].time < t_exec &&
                 gates_[cursor].time <= t_arrival);
      } else {
        const std::size_t item = cursor++;
        now = static_cast<double>(item) * period_;
        for (std::uint32_t rid = 0; rid < num_replicas_; ++rid) {
          if (is_entry_[rid] != 0 && state.alive[rid] != 0) decrement(rid, item);
        }
      }
    } else {  // arrival: (consumer instance, slot), slot in the top bits
      const Event ev = state.arrivals.top();
      state.arrivals.pop();
      t_arrival = state.arrivals.empty() ? kInf : state.arrivals.top().time;
      now = ev.time;
      const std::uint64_t inst = ev.payload & ((1ULL << 48) - 1);
      const auto slot = static_cast<std::uint32_t>(ev.payload >> 48);
      satisfy_slot(static_cast<std::uint32_t>(inst & 0xFFFFF), inst >> 20, slot);
    }
  }
  // Events pop in nondecreasing time order, so the final clock plus the
  // coalesced no-op arrivals IS the legacy per-event running maximum.
  result.makespan = std::max(now, makespan_fold);

  // Finalize — identical arithmetic and ordering to the legacy engine.
  state.completions.reserve(opt_.num_items - opt_.warmup_items);
  for (std::size_t item = opt_.warmup_items; item < opt_.num_items; ++item) {
    double completion = 0.0;
    bool starved = false;
    for (std::uint32_t i = 0; i < exit_tasks_.size(); ++i) {
      const double done = state.exit_done[item * exit_tasks_.size() + i];
      if (!std::isfinite(done)) {
        starved = true;
        break;
      }
      completion = std::max(completion, done);
    }
    if (starved) {
      ++result.starved_items;
      result.complete = false;
      continue;
    }
    const double release = static_cast<double>(item) * period_;
    state.item_latencies.push_back(completion - release);
    state.completions.push_back(completion);
  }
  result.item_latencies = state.item_latencies;

  if (!result.item_latencies.empty()) {
    double sum = 0.0;
    result.min_latency = kInf;
    for (double latency : result.item_latencies) {
      sum += latency;
      result.max_latency = std::max(result.max_latency, latency);
      result.min_latency = std::min(result.min_latency, latency);
    }
    result.mean_latency = sum / static_cast<double>(result.item_latencies.size());
  } else {
    result.min_latency = 0.0;
  }

  if (state.completions.size() >= 2) {
    std::sort(state.completions.begin(), state.completions.end());
    result.achieved_period = (state.completions.back() - state.completions.front()) /
                             static_cast<double>(state.completions.size() - 1);
    for (std::size_t i = 1; i < state.completions.size(); ++i) {
      result.max_completion_gap = std::max(result.max_completion_gap,
                                           state.completions[i] - state.completions[i - 1]);
    }
  }

  result.proc_busy = state.proc_busy;
  result.send_busy = state.send_busy;
  result.recv_busy = state.recv_busy;
  return result;
}

}  // namespace streamsched
