#include "service/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <climits>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <mutex>
#include <system_error>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/fingerprint.hpp"
#include "net/socket.hpp"
#include "schedule/metrics.hpp"
#include "service/persistence.hpp"
#include "util/assert.hpp"
#include "util/async_log.hpp"
#include "util/fault_inject.hpp"
#include "util/log.hpp"

namespace streamsched::net {

namespace {

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return std::string(buf);
}

}  // namespace

struct Server::Impl {
  struct Connection {
    Fd fd;
    std::string in;   ///< bytes read, not yet split into lines
    std::string out;  ///< response bytes not yet written
    /// Start of the currently-pending partial frame (valid when
    /// has_partial); drives the read-deadline sweep.
    std::chrono::steady_clock::time_point frame_start{};
    bool has_partial = false;
    /// Set after a fatal protocol error (oversized line): the pending
    /// error response flushes, then the connection is closed and no
    /// further input is read.
    bool close_after_flush = false;
  };

  struct Job {
    std::uint64_t conn_id = 0;
    SubmitFrame frame;
  };

  struct Lane {
    QosLaneConfig config;
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Job> queue;
    std::size_t in_flight = 0;  ///< queued + running (bounded by config.bound)
    bool stop = false;
    LaneStats stats;
    std::vector<std::thread> workers;
  };

  Server* server = nullptr;
  ServerConfig config;

  Fd unix_listener;
  Fd tcp_listener;
  Fd wake_read;
  Fd wake_write;

  std::unordered_map<std::uint64_t, Connection> conns;
  std::uint64_t next_conn_id = 1;

  std::array<Lane, kNumQosClasses> lanes;

  std::mutex completion_mutex;
  std::deque<std::pair<std::uint64_t, std::string>> completions;

  std::atomic<bool> draining{false};
  bool workers_stopped = false;

  /// Poll-thread fault plan (ServerConfig::fault_spec); null = none.
  std::unique_ptr<FaultPlan> fault_plan_obj;
  /// Periodic snapshot timer state (poll thread only).
  std::chrono::steady_clock::time_point next_snapshot{};
  std::uint64_t last_snapshot_mark = 0;

  Lane& lane(QosClass qos) { return lanes[static_cast<std::size_t>(qos)]; }

  void wake() {
    const char byte = 'w';
    for (;;) {
      const ssize_t n = ::write(wake_write.get(), &byte, 1);
      if (n >= 0 || errno != EINTR) return;  // a full pipe already wakes
    }
  }

  void start_workers() {
    for (std::size_t qi = 0; qi < kNumQosClasses; ++qi) {
      Lane& ln = lanes[qi];
      for (std::size_t w = 0; w < ln.config.workers; ++w) {
        ln.workers.emplace_back([this, &ln] { worker_main(ln); });
      }
    }
  }

  void stop_workers() {
    if (workers_stopped) return;
    workers_stopped = true;
    for (Lane& ln : lanes) {
      {
        const std::lock_guard<std::mutex> lock(ln.mutex);
        ln.stop = true;
      }
      ln.cv.notify_all();
    }
    for (Lane& ln : lanes) {
      for (std::thread& t : ln.workers) t.join();
      ln.workers.clear();
    }
  }

  void worker_main(Lane& ln) {
    for (;;) {
      Job job;
      {
        std::unique_lock<std::mutex> lock(ln.mutex);
        ln.cv.wait(lock, [&ln] { return ln.stop || !ln.queue.empty(); });
        if (ln.queue.empty()) return;  // stop requested and nothing queued
        job = std::move(ln.queue.front());
        ln.queue.pop_front();
      }
      std::string line = serve_submit(job.frame);
      {
        const std::lock_guard<std::mutex> lock(completion_mutex);
        completions.emplace_back(job.conn_id, std::move(line));
      }
      {
        const std::lock_guard<std::mutex> lock(ln.mutex);
        --ln.in_flight;
        ++ln.stats.completed;
      }
      wake();
    }
  }

  /// Runs one admission and formats the response line (worker threads).
  std::string serve_submit(SubmitFrame& frame) {
    try {
      PlacementRequest request;
      request.dag = std::move(frame.dag);
      request.variant = AlgoVariant::parse(frame.variant_spec);
      request.model = frame.model;
      request.period = frame.period;
      request.headroom = frame.headroom;
      request.comm_share = frame.comm_share;
      request.degraded_ok = frame.degraded_ok;
      const PlacementResponse resp = server->daemon_->admit(std::move(request));
      if (!resp.ok) {
        if (resp.degraded_refused) {
          return format_error(WireCode::kDegraded,
                              resp.error.empty() ? "placement degraded" : resp.error,
                              frame.tag);
        }
        return format_error(WireCode::kInfeasible,
                            resp.error.empty() ? "no feasible placement" : resp.error,
                            frame.tag);
      }
      const CachedPlacement& p = *resp.placement;
      // Degraded provenance overrides cold/hit/warm: a caller that opted
      // into brownout serving must see the weaker contract first.
      const char* src = p.degraded ? "degraded"
                        : !resp.cache_hit
                            ? "cold"
                            : (p.from_snapshot ? "warm" : "hit");
      OkBuilder ok;
      if (!frame.tag.empty()) ok.add("tag", frame.tag);
      ok.add("src", src)
          .add("epoch", resp.epoch)
          .add("fp", hex16(schedule_fingerprint(p.schedule)))
          .add("eps", static_cast<std::uint64_t>(p.schedule.eps()))
          .add("stages", static_cast<std::uint64_t>(num_stages(p.schedule)))
          .add("period", p.schedule.period())
          .add("latency", latency_upper_bound(p.schedule))
          .add("rel", p.reliability)
          .add("factor", p.period_factor)
          .add("repair_comms",
               static_cast<std::uint64_t>(p.repair.added_comms + p.event_repair_comms));
      if (p.degraded) {
        ok.add("degraded", std::uint64_t{1})
            .add("eps_have", static_cast<std::uint64_t>(p.eps_have))
            .add("eps_want", static_cast<std::uint64_t>(p.eps_want));
      }
      return ok.str();
    } catch (const std::exception& e) {
      return format_error(WireCode::kInternal, e.what(), frame.tag);
    }
  }

  /// Handles one request line on the poll thread; appends any synchronous
  /// response to `conn.out` (SUBMITs that are accepted respond later via
  /// the completion queue).
  void process_line(std::uint64_t conn_id, Connection& conn, const std::string& line) {
    if (line.empty()) return;  // blank lines are keep-alive no-ops
    Request request;
    try {
      request = parse_request(line);
    } catch (const WireError& e) {
      conn.out += format_error(e.code(), e.what());
      conn.out += '\n';
      return;
    }
    switch (request.verb) {
      case Verb::kSubmit:
        enqueue_submit(conn_id, conn, std::move(request.submit));
        return;
      case Verb::kEvent:
        serve_event(conn, request.event);
        return;
      case Verb::kStats:
        serve_stats(conn);
        return;
      case Verb::kHealth:
        serve_health(conn);
        return;
      case Verb::kShutdown:
        conn.out += OkBuilder().add("shutdown", "draining").str();
        conn.out += '\n';
        draining.store(true);
        return;
    }
  }

  void enqueue_submit(std::uint64_t conn_id, Connection& conn, SubmitFrame frame) {
    if (draining.load()) {
      conn.out += format_error(WireCode::kShuttingDown, "server is draining", frame.tag);
      conn.out += '\n';
      return;
    }
    Lane& ln = lane(frame.qos);
    {
      const std::lock_guard<std::mutex> lock(ln.mutex);
      if (ln.in_flight >= ln.config.bound) {
        ++ln.stats.shed;
        // Shed on the poll thread: BUSY costs one queue-bound check, no
        // scheduling work — cheapest exactly when the lane is saturated.
        // The retry_ms hint scales with queue depth: roughly one
        // busy_retry_hint_ms per full worker-load of queued admissions,
        // capped so a deep backlog never tells clients to sleep forever.
        const std::size_t workers = ln.config.workers > 0 ? ln.config.workers : 1;
        std::uint64_t hint = std::uint64_t{config.busy_retry_hint_ms} *
                             ((ln.in_flight + workers - 1) / workers);
        if (hint < config.busy_retry_hint_ms) hint = config.busy_retry_hint_ms;
        if (hint > 2000) hint = 2000;
        conn.out += format_error(WireCode::kBusy,
                                 std::string(qos_class_name(frame.qos)) + " lane is full",
                                 frame.tag, hint);
        conn.out += '\n';
        return;
      }
      ++ln.in_flight;
      ++ln.stats.accepted;
      ln.queue.push_back(Job{conn_id, std::move(frame)});
    }
    ln.cv.notify_one();
  }

  void serve_event(Connection& conn, const EventFrame& event) {
    if (event.proc >= server->daemon_->platform().num_procs()) {
      conn.out += format_error(WireCode::kBadRequest, "event proc out of range", event.tag);
      conn.out += '\n';
      return;
    }
    ClusterEvent cluster;
    cluster.kind = event.failure ? ClusterEvent::Kind::kFailure : ClusterEvent::Kind::kRecovery;
    cluster.proc = event.proc;
    // Published through the bus, so in-process subscribers (tests, logs)
    // observe wire events exactly like direct publishes; the daemon's
    // repair walk runs synchronously before the response is written.
    server->bus_.publish(cluster);
    OkBuilder ok;
    if (!event.tag.empty()) ok.add("tag", event.tag);
    ok.add("kind", event.failure ? "fail" : "recover")
        .add("proc", static_cast<std::uint64_t>(event.proc))
        .add("epoch", server->daemon_->epoch());
    conn.out += ok.str();
    conn.out += '\n';
  }

  void serve_stats(Connection& conn) {
    const DaemonStats ds = server->daemon_->stats();
    const ScheduleCache::Stats cs = server->daemon_->cache_stats();
    OkBuilder ok;
    ok.add("epoch", server->daemon_->epoch())
        .add("failed", static_cast<std::uint64_t>(server->daemon_->failed_procs()))
        .add("cache_size", static_cast<std::uint64_t>(server->daemon_->cache_size()))
        .add("admissions", ds.admissions)
        .add("cold", ds.cold_schedules)
        .add("hits", cs.hits)
        .add("misses", cs.misses)
        .add("evictions", cs.evictions)
        .add("events", ds.events)
        .add("recovery_events", ds.recovery_events)
        .add("event_repairs", ds.event_repairs)
        .add("repair_failures", ds.repair_failures)
        .add("verifications", ds.verifications)
        .add("verify_failures", ds.verify_failures)
        .add("restored", ds.restored)
        .add("degraded", ds.degraded)
        .add("rebuilds", ds.rebuilds)
        .add("reheals", ds.reheals);
    for (std::size_t qi = 0; qi < kNumQosClasses; ++qi) {
      const std::string name = qos_class_name(static_cast<QosClass>(qi));
      LaneStats ls;
      {
        const std::lock_guard<std::mutex> lock(lanes[qi].mutex);
        ls = lanes[qi].stats;
      }
      ok.add(name + "_accepted", ls.accepted)
          .add(name + "_shed", ls.shed)
          .add(name + "_completed", ls.completed);
    }
    if (AsyncLogger* sink = async_logger()) ok.add("log_dropped", sink->dropped());
    conn.out += ok.str();
    conn.out += '\n';
  }

  /// Liveness probe: cheap field copies plus the bounded degraded-entry
  /// walk (<= cache capacity pointer reads) so monitors can poll it hard.
  /// `degraded=` is the router/backpressure signal: a cluster serving
  /// below guarantee advertises it here before any SUBMIT is refused.
  void serve_health(Connection& conn) {
    OkBuilder ok;
    ok.add("status", draining.load() ? "draining" : "serving")
        .add("epoch", server->daemon_->epoch())
        .add("failed", static_cast<std::uint64_t>(server->daemon_->failed_procs()))
        .add("cache_size", static_cast<std::uint64_t>(server->daemon_->cache_size()))
        .add("degraded", static_cast<std::uint64_t>(server->daemon_->degraded_count()));
    for (std::size_t qi = 0; qi < kNumQosClasses; ++qi) {
      const std::string name = qos_class_name(static_cast<QosClass>(qi));
      std::size_t in_flight;
      {
        const std::lock_guard<std::mutex> lock(lanes[qi].mutex);
        in_flight = lanes[qi].in_flight;
      }
      ok.add(name + "_inflight", static_cast<std::uint64_t>(in_flight))
          .add(name + "_bound", static_cast<std::uint64_t>(lanes[qi].config.bound));
    }
    conn.out += ok.str();
    conn.out += '\n';
  }

  void accept_from(Fd& listener) {
    for (;;) {
      const int fd = ::accept(listener.get(), nullptr, nullptr);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
        log_warn() << "accept failed: " << std::generic_category().message(errno);
        return;
      }
      set_nonblocking(fd, true);
      conns.emplace(next_conn_id++, Connection{Fd(fd), {}, {}});
    }
  }

  /// Answers an oversized request line: BAD_REQUEST, then close once the
  /// response flushes. The buffered input is dropped — a peer that blew
  /// the line bound gets no further parsing.
  void reject_oversized(Connection& conn) {
    conn.out += format_error(WireCode::kBadRequest,
                             "request line exceeds max_line_bytes=" +
                                 std::to_string(config.max_line_bytes));
    conn.out += '\n';
    conn.in.clear();
    conn.has_partial = false;
    conn.close_after_flush = true;
  }

  /// Reads everything available; false when the peer closed or errored.
  /// EINTR is absorbed by recv_some; injected resets surface as errors
  /// exactly like real ones. Complete frames that arrived in the same
  /// wakeup as the peer's FIN are still processed (a fire-and-forget
  /// EVENT followed by close must apply) — only their responses are
  /// undeliverable and get dropped.
  bool read_from(std::uint64_t conn_id, Connection& conn) {
    char buf[4096];
    bool open = true;
    for (;;) {
      const ssize_t n = recv_some(conn.fd.get(), buf, sizeof buf);
      if (n > 0) {
        conn.in.append(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) {
        open = false;  // EOF: drain buffered frames below, then close
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;  // transport error: buffered bytes are suspect
    }
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = conn.in.find('\n', start);
      if (nl == std::string::npos) break;
      if (nl - start > config.max_line_bytes) {
        reject_oversized(conn);
        return open;
      }
      process_line(conn_id, conn, conn.in.substr(start, nl - start));
      start = nl + 1;
    }
    conn.in.erase(0, start);
    if (conn.in.size() > config.max_line_bytes) {
      // An unterminated line already past the bound can never become a
      // valid frame — reject now instead of buffering a slowloris feed.
      reject_oversized(conn);
      return open;
    }
    if (conn.in.empty()) {
      conn.has_partial = false;
    } else if (!conn.has_partial) {
      conn.has_partial = true;
      conn.frame_start = std::chrono::steady_clock::now();
    }
    return open;
  }

  /// Flushes as much of conn.out as the socket accepts; false on error.
  bool write_to(Connection& conn) {
    while (!conn.out.empty()) {
      const ssize_t n = send_some(conn.fd.get(), conn.out.data(), conn.out.size());
      if (n > 0) {
        conn.out.erase(0, static_cast<std::size_t>(n));
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;
    }
    return true;
  }

  void drain_completions() {
    std::deque<std::pair<std::uint64_t, std::string>> done;
    {
      const std::lock_guard<std::mutex> lock(completion_mutex);
      done.swap(completions);
    }
    for (auto& [conn_id, line] : done) {
      const auto it = conns.find(conn_id);
      if (it == conns.end()) continue;  // client went away; drop the response
      it->second.out += line;
      it->second.out += '\n';
    }
  }

  [[nodiscard]] bool fully_drained() {
    if (!draining.load()) return false;
    for (Lane& ln : lanes) {
      const std::lock_guard<std::mutex> lock(ln.mutex);
      if (ln.in_flight != 0) return false;
    }
    {
      const std::lock_guard<std::mutex> lock(completion_mutex);
      if (!completions.empty()) return false;
    }
    for (const auto& [id, conn] : conns) {
      (void)id;
      if (!conn.out.empty()) return false;
    }
    return true;
  }

  /// Periodic snapshot timer active?
  [[nodiscard]] bool snapshots_enabled() const {
    return !config.snapshot_path.empty() && config.snapshot_interval_ms > 0;
  }

  /// A monotonic counter of cache-changing daemon activity; unchanged
  /// mark = nothing new to persist.
  [[nodiscard]] std::uint64_t snapshot_mark() const {
    const DaemonStats ds = server->daemon_->stats();
    return ds.cold_schedules + ds.event_repairs + ds.restored + ds.events;
  }

  /// Writes a rotated generation when the timer is due and the cache
  /// changed since the last save. Poll thread only.
  void maybe_snapshot() {
    if (!snapshots_enabled()) return;
    const auto now = std::chrono::steady_clock::now();
    if (now < next_snapshot) return;
    next_snapshot = now + std::chrono::milliseconds(config.snapshot_interval_ms);
    const std::uint64_t mark = snapshot_mark();
    if (mark == last_snapshot_mark) return;
    try {
      (void)save_cache_generation(*server->daemon_, config.snapshot_path,
                                  config.snapshot_keep);
      last_snapshot_mark = mark;
    } catch (const SnapshotError& e) {
      log_error() << "periodic snapshot failed: " << e.what();
    }
  }

  /// Closes connections stuck mid-frame past read_deadline_ms (the error
  /// response is best-effort — a stalled peer may never read it).
  void sweep_read_deadlines(std::vector<std::uint64_t>& dead) {
    if (config.read_deadline_ms == 0) return;
    const auto now = std::chrono::steady_clock::now();
    const auto limit = std::chrono::milliseconds(config.read_deadline_ms);
    for (auto& [id, conn] : conns) {
      if (!conn.has_partial || now - conn.frame_start < limit) continue;
      conn.out += format_error(WireCode::kBadRequest,
                               "read deadline exceeded mid-frame (stalled client)");
      conn.out += '\n';
      (void)write_to(conn);
      dead.push_back(id);
    }
  }

  /// Milliseconds until the nearest timer (snapshot cadence, earliest
  /// partial-frame deadline), or -1 when no timer is armed.
  [[nodiscard]] int poll_timeout_ms() const {
    std::int64_t timeout = -1;
    const auto now = std::chrono::steady_clock::now();
    const auto consider = [&](std::chrono::steady_clock::time_point due) {
      auto ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(due - now).count();
      if (ms < 0) ms = 0;
      if (timeout < 0 || ms < timeout) timeout = ms;
    };
    if (snapshots_enabled()) consider(next_snapshot);
    if (config.read_deadline_ms > 0) {
      const auto limit = std::chrono::milliseconds(config.read_deadline_ms);
      for (const auto& [id, conn] : conns) {
        (void)id;
        if (conn.has_partial) consider(conn.frame_start + limit);
      }
    }
    if (timeout < 0) return -1;
    return timeout > INT_MAX ? INT_MAX : static_cast<int>(timeout);
  }

  void run_loop() {
    if (snapshots_enabled()) {
      next_snapshot = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(config.snapshot_interval_ms);
      last_snapshot_mark = snapshot_mark();
    }
    std::vector<pollfd> pfds;
    std::vector<std::uint64_t> pfd_conn;  // conn id per pollfd (0 = not a conn)
    for (;;) {
      drain_completions();
      if (fully_drained()) return;

      pfds.clear();
      pfd_conn.clear();
      const auto add = [&](int fd, short events, std::uint64_t conn_id) {
        pfds.push_back(pollfd{fd, events, 0});
        pfd_conn.push_back(conn_id);
      };
      add(wake_read.get(), POLLIN, 0);
      if (unix_listener.valid() && !draining.load()) add(unix_listener.get(), POLLIN, 0);
      if (tcp_listener.valid() && !draining.load()) add(tcp_listener.get(), POLLIN, 0);
      for (const auto& [id, conn] : conns) {
        // A connection condemned by a protocol error only flushes; its
        // input is never read again.
        const short events = conn.close_after_flush
                                 ? POLLOUT
                                 : static_cast<short>(
                                       POLLIN | (conn.out.empty() ? 0 : POLLOUT));
        add(conn.fd.get(), events, id);
      }

      const int ready = ::poll(pfds.data(), pfds.size(), poll_timeout_ms());
      if (ready < 0) {
        if (errno == EINTR) continue;
        log_error() << "poll failed: " << std::generic_category().message(errno);
        return;
      }

      std::vector<std::uint64_t> dead;
      for (std::size_t i = 0; i < pfds.size(); ++i) {
        const short revents = pfds[i].revents;
        if (revents == 0) continue;
        const int fd = pfds[i].fd;
        if (fd == wake_read.get()) {
          char buf[256];
          while (::read(wake_read.get(), buf, sizeof buf) > 0) {
          }
          continue;
        }
        if (unix_listener.valid() && fd == unix_listener.get()) {
          accept_from(unix_listener);
          continue;
        }
        if (tcp_listener.valid() && fd == tcp_listener.get()) {
          accept_from(tcp_listener);
          continue;
        }
        const std::uint64_t conn_id = pfd_conn[i];
        const auto it = conns.find(conn_id);
        if (it == conns.end()) continue;
        Connection& conn = it->second;
        bool alive = (revents & (POLLERR | POLLNVAL)) == 0;
        if (alive && (revents & POLLIN) != 0) alive = read_from(conn_id, conn);
        // POLLHUP with readable data still drains above; close once the
        // read side is exhausted.
        if (alive && (revents & POLLHUP) != 0 && (revents & POLLIN) == 0) alive = false;
        if (alive && !conn.out.empty()) alive = write_to(conn);
        if (alive && conn.close_after_flush && conn.out.empty()) alive = false;
        if (!alive) dead.push_back(conn_id);
      }
      sweep_read_deadlines(dead);
      for (const std::uint64_t id : dead) conns.erase(id);
      maybe_snapshot();
    }
  }
};

Server::Server(Platform platform, ServerConfig config)
    : daemon_(std::make_unique<PlacementDaemon>(std::move(platform), config.daemon, &bus_)),
      impl_(std::make_unique<Impl>()) {
  impl_->server = this;
  impl_->config = std::move(config);
  for (std::size_t qi = 0; qi < kNumQosClasses; ++qi) {
    SS_REQUIRE(impl_->config.lanes[qi].workers > 0, "QoS lane needs at least one worker");
    SS_REQUIRE(impl_->config.lanes[qi].bound > 0, "QoS lane needs a bound >= 1");
    impl_->lanes[qi].config = impl_->config.lanes[qi];
  }

  if (!impl_->config.fault_spec.empty()) {
    impl_->fault_plan_obj =
        std::make_unique<FaultPlan>(FaultSpec::parse(impl_->config.fault_spec));
  }

  if (!impl_->config.snapshot_path.empty()) {
    // Walk generations newest→oldest to the first intact one; rejected
    // generations (corrupt, truncated, foreign platform) are logged
    // loudly inside, and the server starts cold rather than trusting
    // them. This is the kill -9 recovery path.
    const GenerationLoadResult loaded =
        load_newest_cache_generation(*daemon_, impl_->config.snapshot_path);
    if (loaded.rejected > 0) {
      log_error() << "warm-start: " << loaded.rejected << " snapshot generation(s) rejected"
                  << (loaded.loaded ? "; fell back to " + loaded.path
                                    : "; starting cold");
    }
  }

  if (!impl_->config.unix_path.empty()) {
    impl_->unix_listener = listen_unix(impl_->config.unix_path);
    set_nonblocking(impl_->unix_listener.get(), true);
  }
  if (impl_->config.tcp) {
    impl_->tcp_listener =
        listen_tcp(impl_->config.tcp_host, impl_->config.tcp_port, &tcp_port_);
    set_nonblocking(impl_->tcp_listener.get(), true);
  }

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    throw std::system_error(errno, std::generic_category(), "pipe");
  }
  impl_->wake_read = Fd(pipe_fds[0]);
  impl_->wake_write = Fd(pipe_fds[1]);
  set_nonblocking(impl_->wake_read.get(), true);
  set_nonblocking(impl_->wake_write.get(), true);

  impl_->start_workers();
  log_info() << "server up: unix="
             << (impl_->config.unix_path.empty() ? "-" : impl_->config.unix_path)
             << " tcp=" << (impl_->config.tcp ? std::to_string(tcp_port_) : std::string("-"))
             << " cache=" << daemon_->cache_size();
}

Server::~Server() {
  impl_->stop_workers();
  if (!impl_->config.unix_path.empty()) ::unlink(impl_->config.unix_path.c_str());
}

void Server::run() {
  if (impl_->fault_plan_obj) install_fault_plan(impl_->fault_plan_obj.get());
  impl_->run_loop();
  if (impl_->fault_plan_obj) install_fault_plan(nullptr);
  impl_->stop_workers();
  impl_->conns.clear();
  impl_->unix_listener.close();
  impl_->tcp_listener.close();
  if (!impl_->config.snapshot_path.empty()) {
    try {
      (void)save_cache_generation(*daemon_, impl_->config.snapshot_path,
                                  impl_->config.snapshot_keep);
    } catch (const SnapshotError& e) {
      log_error() << "warm-start snapshot save failed: " << e.what();
    }
  }
  log_info() << "server down: admissions=" << daemon_->stats().admissions
             << " cache=" << daemon_->cache_size();
}

void Server::shutdown() {
  impl_->draining.store(true);
  impl_->wake();
}

LaneStats Server::lane_stats(QosClass qos) const {
  Impl::Lane& ln = impl_->lane(qos);
  const std::lock_guard<std::mutex> lock(ln.mutex);
  return ln.stats;
}

}  // namespace streamsched::net
