#include "service/churn.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace streamsched {

std::vector<ProcId> ChurnTrace::failed_after(std::size_t upto) const {
  std::vector<ProcId> failed;
  for (std::size_t i = 0; i < upto && i < steps.size(); ++i) {
    for (const ClusterEvent& event : steps[i]) {
      if (event.kind == ClusterEvent::Kind::kFailure) {
        failed.push_back(event.proc);
      } else {
        failed.erase(std::remove(failed.begin(), failed.end(), event.proc), failed.end());
      }
    }
  }
  std::sort(failed.begin(), failed.end());
  return failed;
}

ChurnTrace generate_churn_trace(const FaultModel& model, const Platform& platform,
                                std::uint64_t seed, const ChurnTraceConfig& config) {
  SS_REQUIRE(model.is_churn(), "generate_churn_trace requires a churn fault model");
  SS_REQUIRE(config.steps > 0, "churn trace needs at least one step");
  SS_REQUIRE(config.quiet_tail < config.steps, "quiet tail must leave room for churn");
  const std::size_t m = platform.num_procs();
  SS_REQUIRE(config.min_alive >= 1 && config.min_alive <= m,
             "min_alive must lie in [1, num_procs]");

  Rng rng(seed);
  ChurnTrace trace;
  trace.steps.resize(config.steps);
  std::vector<bool> down(m, false);
  std::size_t alive = m;

  for (std::uint64_t step = 0; step < config.steps; ++step) {
    std::vector<ClusterEvent>& events = trace.steps[step];
    const bool quiet = step + config.quiet_tail >= config.steps;
    const bool last = step + 1 == config.steps;
    // Failures first, processors in ascending order. The Bernoulli draw
    // happens even when the outcome is suppressed (quiet tail / alive
    // floor) so the random stream consumed per step is position-stable.
    for (ProcId u = 0; u < m; ++u) {
      if (down[u]) continue;
      const bool fails = rng.bernoulli(model.failure_prob_at(platform, u, step));
      if (fails && !quiet && alive > config.min_alive) {
        down[u] = true;
        --alive;
        events.push_back({ClusterEvent::Kind::kFailure, u});
      }
    }
    // Then recoveries; the final step force-recovers everything so the
    // trace always ends with a fully healed cluster.
    for (ProcId u = 0; u < m; ++u) {
      if (!down[u]) continue;
      const bool recovers = rng.bernoulli(model.churn_recover());
      if (recovers || last) {
        down[u] = false;
        ++alive;
        events.push_back({ClusterEvent::Kind::kRecovery, u});
      }
    }
  }
  return trace;
}

}  // namespace streamsched
