// Warm-start persistence of the placement daemon's schedule cache.
//
// On shutdown the server saves every cached placement to a text snapshot;
// on startup it loads the snapshot back, re-verifies every entry through
// the batch survival kernel, and republishes the survivors — so a
// restarted daemon serves the same placements bit-identically (asserted
// via schedule_fingerprint) without ever hitting the cold scheduling path.
//
// Snapshot format (line-delimited text, like the wire protocol):
//
//   #streamsched-cache v1
//   platform <hex16 platform fingerprint>
//   entry variant=<spec> model=<spec> factor=<f> rel=<r> repair_comms=<n> event_comms=<n>
//   dag <DagWire>
//   sched <ScheduleWire>
//   ...                                     (entry/dag/sched repeated)
//   checksum <hex16 FNV-1a over all preceding bytes>
//
// Entries are written LRU→MRU, so re-inserting them in file order
// reproduces the cache's recency ordering.
//
// Trust model: the snapshot is a cache, never an oracle. Load rejects the
// whole file loudly (SnapshotError) when the header, platform
// fingerprint, or checksum doesn't match — a snapshot taken against a
// different cluster, or a truncated/corrupted file, must not seed the
// cache. Entries that parse but fail re-verification — the count model's
// exhaustive ε-failure check, or the probabilistic model's recomputed
// reliability falling below the entry's claim — are dropped individually
// (logged, counted in `verify_failed`), because one bad entry should not
// cost the warm start of the rest.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace streamsched {

class PlacementDaemon;

/// Thrown when a snapshot cannot be saved, or when load rejects the file
/// wholesale (unreadable, bad header/version, platform-fingerprint
/// mismatch, checksum mismatch, malformed entry framing).
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct SnapshotSaveStats {
  std::size_t entries = 0;  ///< placements written
  std::uint64_t bytes = 0;  ///< snapshot size on disk
};

struct SnapshotLoadStats {
  std::size_t entries = 0;        ///< entries parsed from the file
  std::size_t restored = 0;       ///< verified and republished into the cache
  std::size_t verify_failed = 0;  ///< dropped: batch-kernel re-check failed
  std::size_t stale = 0;          ///< dropped: daemon's live failure set kills them
};

/// Writes the daemon's cached placements to `path` (atomic enough for the
/// single-writer server: written to `path` directly, checksum last, so a
/// torn write fails the checksum on load). Throws SnapshotError on I/O
/// failure.
SnapshotSaveStats save_cache_snapshot(const PlacementDaemon& daemon, const std::string& path);

/// Loads `path` into the daemon's cache. Every entry is re-verified from
/// scratch — schedule rebuilt from the wire text, fresh survival oracle,
/// count models re-checked exhaustively over all ε-failure sets,
/// probabilistic models' reliability recomputed and compared against the
/// entry's claim — before PlacementDaemon::restore republishes it. Throws
/// SnapshotError when the file as a whole is unusable (see class doc);
/// individually bad entries are dropped and counted instead.
SnapshotLoadStats load_cache_snapshot(PlacementDaemon& daemon, const std::string& path);

}  // namespace streamsched
