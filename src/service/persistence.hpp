// Warm-start persistence of the placement daemon's schedule cache.
//
// On shutdown the server saves every cached placement to a text snapshot;
// on startup it loads the snapshot back, re-verifies every entry through
// the batch survival kernel, and republishes the survivors — so a
// restarted daemon serves the same placements bit-identically (asserted
// via schedule_fingerprint) without ever hitting the cold scheduling path.
//
// Snapshot format (line-delimited text, like the wire protocol):
//
//   #streamsched-cache v2
//   platform <hex16 platform fingerprint>
//   entry variant=<spec> model=<spec> factor=<f> rel=<r> repair_comms=<n> event_comms=<n>
//         degraded=<0|1> eps_have=<n> eps_want=<n>        (one line)
//   dag <DagWire>
//   sched <ScheduleWire>
//   ...                                     (entry/dag/sched repeated)
//   checksum <hex16 FNV-1a over all preceding bytes>
//
// Entries are written LRU→MRU, so re-inserting them in file order
// reproduces the cache's recency ordering.
//
// Degradation survives restarts: v2 entries carry the degraded flag and
// the eps_have/eps_want deficit verbatim, and load re-proves a degraded
// entry's claim exhaustively at eps_have (sound per the achieved_tolerance
// certificate in schedule/survival.hpp) instead of the model's full
// guarantee — a warm restart can therefore never launder a degraded
// placement into a full-guarantee one. An entry whose degraded flag
// contradicts its deficit (degraded=1 with eps_have == eps_want, or
// degraded=0 with a deficit) rejects the whole file: that is format skew
// or tampering, not bit rot. v1 snapshots still load; their entries
// default to non-degraded with eps_have == eps_want.
//
// Trust model: the snapshot is a cache, never an oracle. Load rejects the
// whole file loudly (SnapshotError) when the header, platform
// fingerprint, or checksum doesn't match — a snapshot taken against a
// different cluster, or a truncated/corrupted file, must not seed the
// cache. Entries that parse but fail re-verification — the count model's
// exhaustive ε-failure check, or the probabilistic model's recomputed
// reliability falling below the entry's claim — are dropped individually
// (logged, counted in `verify_failed`), because one bad entry should not
// cost the warm start of the rest.
//
// Crash safety: snapshots are written atomically (`<path>.tmp`, fsync,
// rename, fsync of the directory), so a crash mid-write leaves at worst
// a stale `.tmp` beside the previous intact file — never a torn file
// under the live name. Long-running servers write rotated *generations*
// (`<base>.g<seq>`, monotonically increasing seq, oldest pruned beyond a
// keep bound) on a timer from the poll loop; load walks generations
// newest→oldest past corrupt/truncated files to the first intact one.
// `kill -9` at any instant therefore loses at most one snapshot interval
// of cache warmth and never the ability to warm-start.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace streamsched {

class PlacementDaemon;

/// Thrown when a snapshot cannot be saved, or when load rejects the file
/// wholesale (unreadable, bad header/version, platform-fingerprint
/// mismatch, checksum mismatch, malformed entry framing).
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct SnapshotSaveStats {
  std::size_t entries = 0;  ///< placements written
  std::uint64_t bytes = 0;  ///< snapshot size on disk
};

struct SnapshotLoadStats {
  std::size_t entries = 0;        ///< entries parsed from the file
  std::size_t restored = 0;       ///< verified and republished into the cache
  std::size_t verify_failed = 0;  ///< dropped: batch-kernel re-check failed
  std::size_t stale = 0;          ///< dropped: daemon's live failure set kills them
};

/// Writes the daemon's cached placements to `path` atomically: the bytes
/// go to `<path>.tmp`, are fsync'ed, and replace `path` via rename (the
/// containing directory is fsync'ed too) — a crash mid-save never leaves
/// a torn file under `path`. Throws SnapshotError on I/O failure.
SnapshotSaveStats save_cache_snapshot(const PlacementDaemon& daemon, const std::string& path);

/// Loads `path` into the daemon's cache. Every entry is re-verified from
/// scratch — schedule rebuilt from the wire text, fresh survival oracle,
/// count models re-checked exhaustively over all ε-failure sets,
/// probabilistic models' reliability recomputed and compared against the
/// entry's claim — before PlacementDaemon::restore republishes it. Throws
/// SnapshotError when the file as a whole is unusable (see class doc);
/// individually bad entries are dropped and counted instead.
SnapshotLoadStats load_cache_snapshot(PlacementDaemon& daemon, const std::string& path);

/// load_cache_snapshot on in-memory bytes (`label` names the source in
/// diagnostics). The file variant reads and delegates here; the fuzz
/// harness (tests/fuzz/fuzz_snapshot.cpp) calls it directly.
SnapshotLoadStats load_cache_snapshot_text(PlacementDaemon& daemon, const std::string& content,
                                           const std::string& label);

// ------------------------------------------------------------- generations --

/// One rotated snapshot file `<base>.g<seq>`.
struct SnapshotGeneration {
  std::uint64_t seq = 0;
  std::string path;
};

/// Existing generations of `base`, newest (highest seq) first. A bare
/// legacy `base` file (pre-rotation format) is listed last as seq 0.
[[nodiscard]] std::vector<SnapshotGeneration> list_snapshot_generations(
    const std::string& base);

/// Atomically writes the next generation `<base>.g<newest+1>` and prunes
/// the oldest generations beyond `keep` (keep >= 1). Returns the stats of
/// the written file. Throws SnapshotError on I/O failure; pruning
/// failures are logged, never thrown — a leftover old generation is
/// harmless.
SnapshotSaveStats save_cache_generation(const PlacementDaemon& daemon, const std::string& base,
                                        std::size_t keep = 4);

struct GenerationLoadResult {
  bool loaded = false;        ///< some generation loaded intact
  std::string path;           ///< the generation that loaded
  std::size_t rejected = 0;   ///< corrupt/foreign generations skipped on the way
  SnapshotLoadStats stats;    ///< of the loaded generation
};

/// Walks the generations of `base` newest→oldest, loading the first one
/// that is intact (whole-file rejections — corrupt, truncated, foreign
/// platform — are logged and skipped; that is the crash-recovery path).
/// Returns loaded=false when no generation exists or none is intact;
/// never throws SnapshotError.
GenerationLoadResult load_newest_cache_generation(PlacementDaemon& daemon,
                                                  const std::string& base);

}  // namespace streamsched
