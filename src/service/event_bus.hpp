// Failure/recovery event bus of the placement service.
//
// Monitoring publishes ClusterEvents (processor u failed / recovered);
// subscribers — the placement daemon, loggers, tests — receive them
// synchronously on the publisher's thread, in subscription order, one
// event at a time (publishes are serialized by the bus mutex, so handlers
// observe a total event order and never run concurrently with
// themselves). Synchronous delivery is deliberate: the daemon's handler
// must finish repairing/invalidating its cache before the publisher's
// next admission can observe the new epoch, which is exactly the
// "repair-on-event, serve-from-cache" contract bench_service measures.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "schedule/schedule.hpp"

namespace streamsched {

struct ClusterEvent {
  enum class Kind { kFailure, kRecovery };
  Kind kind = Kind::kFailure;
  ProcId proc = 0;
};

class EventBus {
 public:
  using Handler = std::function<void(const ClusterEvent&)>;
  using SubscriptionId = std::uint64_t;

  /// Registers `handler` for all subsequent events; returns the id to
  /// unsubscribe with.
  SubscriptionId subscribe(Handler handler);

  /// Removes a subscription; false when the id is unknown (already
  /// removed).
  bool unsubscribe(SubscriptionId id);

  /// Delivers `event` to every subscriber, synchronously and serialized:
  /// concurrent publishers queue on the bus mutex. Handlers must not call
  /// back into the bus (classic re-entrancy deadlock).
  void publish(const ClusterEvent& event);

  [[nodiscard]] std::uint64_t events_published() const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::pair<SubscriptionId, Handler>> handlers_;
  SubscriptionId next_id_ = 1;
  std::uint64_t published_ = 0;
};

}  // namespace streamsched
