// The placement daemon: scheduler-as-a-service over one cluster.
//
// A PlacementDaemon owns the platform (the cluster it places onto), an LRU
// schedule cache (service/schedule_cache.hpp) and a platform *epoch* — a
// counter bumped on every failure/recovery event. The serving contract:
//
//   admit()    Fingerprint the request, look up (dag, variant, model,
//              epoch). A hit is allocation-free and returns the shared
//              placement. A miss runs the cold path — calibrate the
//              period if the request didn't fix one, schedule with the
//              period-escalation ladder and model repair, compile the
//              survival oracle, reconcile with the live failure set —
//              then publishes the placement into the cache.
//
//   submit()   admit() as a fire-and-forget job on the shared global
//              thread pool (util/thread_pool.hpp): the daemon's request
//              queue. Returns a future.
//
//   on_event() The event-bus handler (subscribe the daemon, or call it
//              directly). Bumps the epoch, updates the live failure set,
//              and walks the cache: placements that survive the new
//              failure set are re-keyed to the new epoch copy-free;
//              placements that don't are *incrementally repaired* — a
//              copy's schedule gets supply channels via
//              repair_for_failure_set, which patches the warm
//              SurvivalOracle through add_comm instead of recompiling —
//              and the repaired copy replaces the entry. Repaired copies
//              are re-verified against the live failure set on a freshly
//              compiled oracle through the bit-sliced batch kernel when
//              `verify_repairs` is set.
//
// Degradation ladder (placements are never dropped while servable):
// after every failure the batch survival kernel re-certifies each entry's
// best residual tolerance (`achieved_tolerance`); an entry that can no
// longer meet its admitted ε keeps serving tagged `degraded` with the
// explicit deficit (eps_have < eps_want). When incremental repair cannot
// even restore computability, the daemon *rebuilds* the placement on the
// alive sub-platform (capped ε, remapped onto the full cluster) rather
// than dropping it; only a failed rebuild drops (repair_failures). A
// background re-heal pass on the global thread pool — epoch-drift-safe
// like the cold path — reschedules degraded entries and atomically
// promotes them back to full-guarantee serving; recovery events both
// re-certify in place (a recovered processor may restore the guarantee
// outright) and trigger re-heal scans for entries that rebuilt with fewer
// replicas.
//
// Published placements are immutable: event repair copies, repairs the
// copy, then swaps the shared_ptr, so response holders can keep reading
// their (stale-epoch) placement without synchronization.
//
// Thread safety: every public member is safe to call concurrently; the
// daemon serializes cache/epoch access on one mutex and runs cold
// scheduling outside it (re-reconciling when the epoch moved meanwhile).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>

#include "schedule/fault_tolerance.hpp"
#include "service/event_bus.hpp"
#include "service/request.hpp"
#include "service/schedule_cache.hpp"

namespace streamsched {

struct DaemonConfig {
  std::size_t cache_capacity = 256;
  /// Re-verify every event-repaired placement against the live failure
  /// set on a freshly compiled oracle (batch survival kernel) before
  /// republishing it. Catches any divergence between the patched warm
  /// oracle and the schedule it claims to describe.
  bool verify_repairs = true;
  /// Schedule background re-heal passes (global thread pool) whenever an
  /// event or admission leaves degraded entries behind. Disable for
  /// single-threaded determinism (benches/tests drive reheal_now()).
  bool auto_reheal = true;
};

struct DaemonStats {
  std::uint64_t admissions = 0;       ///< admit() calls (hits + misses)
  std::uint64_t cold_schedules = 0;   ///< misses that scheduled cold
  std::uint64_t events = 0;           ///< failure/recovery events handled
  std::uint64_t recovery_events = 0;  ///< the recovery subset of `events`
  std::uint64_t event_repairs = 0;    ///< cached placements repaired in place
  std::uint64_t repair_failures = 0;  ///< placements dropped as beyond repair
  std::uint64_t verifications = 0;    ///< fresh-oracle batch re-checks run
  std::uint64_t verify_failures = 0;  ///< re-checks that failed (must stay 0)
  std::uint64_t restored = 0;         ///< warm-start entries restored into the cache
  std::uint64_t degraded = 0;         ///< gauge: cache entries currently degraded
  std::uint64_t rebuilds = 0;         ///< degraded rebuilds on the alive sub-platform
  std::uint64_t reheals = 0;          ///< degraded entries promoted to full guarantee
};

class PlacementDaemon {
 public:
  /// Takes ownership of the platform. When `bus` is given, subscribes
  /// on_event() to it (and unsubscribes in the destructor); the bus must
  /// outlive the daemon.
  explicit PlacementDaemon(Platform platform, DaemonConfig config = {},
                           EventBus* bus = nullptr);
  ~PlacementDaemon();

  PlacementDaemon(const PlacementDaemon&) = delete;
  PlacementDaemon& operator=(const PlacementDaemon&) = delete;

  /// Serves one request synchronously: cache hit or cold schedule.
  [[nodiscard]] PlacementResponse admit(PlacementRequest request);

  /// Queues the request on the shared global thread pool. The destructor
  /// drains queued requests before returning.
  [[nodiscard]] std::future<PlacementResponse> submit(PlacementRequest request);

  /// Failure/recovery notification (also the bus subscription target).
  /// Bumps the epoch; failures repair / degrade / rebuild affected cached
  /// placements (see the degradation ladder above). Recoveries re-key
  /// full-guarantee entries copy-free (survival is monotone in the failure
  /// set: whatever survived the larger set survives the smaller one) and
  /// re-certify degraded ones — plus schedule a re-heal scan for any that
  /// stay degraded.
  void on_event(const ClusterEvent& event);

  /// Runs one full re-heal pass synchronously: while degraded entries
  /// remain (and the epoch holds still long enough), reschedule each and
  /// atomically publish any strict improvement; promotions to full
  /// guarantee count in stats().reheals. The deterministic driver for
  /// benches/tests; the background path (auto_reheal) runs the same pass
  /// on the global thread pool.
  void reheal_now();

  /// Blocks until every queued submit()/background re-heal job finished.
  void drain();

  /// Number of cached entries currently serving degraded (also the
  /// stats().degraded gauge and HEALTH's backpressure signal).
  [[nodiscard]] std::size_t degraded_count() const;

  /// Cached placements in LRU→MRU order, without touching recency or hit
  /// stats — the warm-start snapshot walk (service/persistence.hpp saves
  /// these on shutdown).
  [[nodiscard]] std::vector<std::shared_ptr<const CachedPlacement>> snapshot_entries() const;

  /// Re-publishes one restored placement (warm start): keys it from the
  /// placement's own dag/variant/model under the current epoch and inserts
  /// it at MRU. Returns false — without inserting — when the placement
  /// does not survive the daemon's live failure set. The caller
  /// (persistence load) is responsible for verification; the daemon only
  /// re-checks liveness. Restored entries count in stats().restored and
  /// serve as cache hits with `from_snapshot` provenance.
  bool restore(const std::shared_ptr<CachedPlacement>& placement);

  [[nodiscard]] const Platform& platform() const { return *platform_; }
  /// Shared ownership of the platform — restored placements reference it.
  [[nodiscard]] std::shared_ptr<const Platform> platform_ptr() const { return platform_; }
  [[nodiscard]] std::uint64_t epoch() const;
  /// Number of processors currently failed.
  [[nodiscard]] std::size_t failed_procs() const;
  [[nodiscard]] std::size_t cache_size() const;
  [[nodiscard]] ScheduleCache::Stats cache_stats() const;
  [[nodiscard]] DaemonStats stats() const;

 private:
  std::shared_ptr<const Platform> platform_;
  DaemonConfig config_;
  EventBus* bus_ = nullptr;
  EventBus::SubscriptionId subscription_ = 0;

  /// Reschedules `stale`'s DAG on the alive sub-platform (ε capped at
  /// what the alive processors can carry), remaps the result onto the
  /// full cluster, and returns it tolerance-certified through the batch
  /// kernel — or nullptr when even the capped reschedule fails. Reads
  /// only immutable daemon state (platform_), so it runs with or without
  /// mutex_ held; the caller owns the scratch.
  std::shared_ptr<CachedPlacement> rebuild_degraded(const CachedPlacement& stale,
                                                    const ProcSet& failed,
                                                    BatchScratch& scratch) const;

  /// Posts a background re-heal pass unless one is already queued
  /// (mutex_ held).
  void schedule_reheal_scan();

  /// One re-heal pass body (see reheal_now()).
  void reheal_pass();

  /// Degraded-entry count with mutex_ held.
  [[nodiscard]] std::size_t degraded_count_locked() const;

  mutable std::mutex mutex_;
  ScheduleCache cache_;
  std::uint64_t epoch_ = 0;
  ProcSet failed_;
  std::vector<std::uint64_t> survive_scratch_;
  BatchScratch batch_scratch_;
  bool reheal_scheduled_ = false;
  DaemonStats stats_;

  std::mutex pending_mutex_;
  std::condition_variable pending_cv_;
  std::size_t pending_ = 0;
};

}  // namespace streamsched
