#include "service/daemon.hpp"

#include <utility>

#include "core/fingerprint.hpp"
#include "exp/sweep.hpp"
#include "exp/workload.hpp"
#include "schedule/survival.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace streamsched {

namespace {

/// Recomputes the degradation flags from the batch survival kernel:
/// eps_have = best residual tolerance under `failed`, degraded while it
/// trails the admitted eps_want.
void certify(CachedPlacement& placement, const ProcSet& failed, BatchScratch& scratch) {
  placement.eps_have = achieved_tolerance(placement.oracle, failed, placement.eps_want, scratch);
  placement.degraded = placement.eps_have < placement.eps_want;
}

std::string degraded_error(const CachedPlacement& placement) {
  return "placement degraded: eps_have=" + std::to_string(placement.eps_have) +
         " eps_want=" + std::to_string(placement.eps_want) +
         " (opt in with degraded_ok, or retry after re-heal)";
}

}  // namespace

PlacementDaemon::PlacementDaemon(Platform platform, DaemonConfig config, EventBus* bus)
    : platform_(std::make_shared<const Platform>(std::move(platform))),
      config_(config),
      bus_(bus),
      cache_(config.cache_capacity),
      failed_(platform_->num_procs()) {
  if (bus_ != nullptr) {
    subscription_ = bus_->subscribe([this](const ClusterEvent& event) { on_event(event); });
  }
}

PlacementDaemon::~PlacementDaemon() {
  // Drain queued submits and re-heal passes first: they may still touch
  // the cache.
  drain();
  if (bus_ != nullptr) bus_->unsubscribe(subscription_);
}

void PlacementDaemon::drain() {
  std::unique_lock<std::mutex> lock(pending_mutex_);
  pending_cv_.wait(lock, [this] { return pending_ == 0; });
}

PlacementResponse PlacementDaemon::admit(PlacementRequest request) {
  PlacementResponse resp;
  CacheKey key{dag_fingerprint(request.dag), variant_fingerprint(request.variant),
               fault_model_fingerprint(request.model), 0};

  std::uint64_t snapshot_epoch = 0;
  ProcSet failed;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.admissions;
    key.epoch = epoch_;
    if (auto hit = cache_.find(key)) {
      resp.cache_hit = true;
      resp.epoch = epoch_;
      resp.placement = std::move(hit);
      if (resp.placement->degraded && !request.degraded_ok) {
        // Brownout refusal: the caller learns the deficit and may retry
        // with degraded_ok instead of being shed.
        resp.degraded_refused = true;
        resp.error = degraded_error(*resp.placement);
      } else {
        resp.ok = true;
      }
      return resp;
    }
    snapshot_epoch = epoch_;
    failed = failed_;
  }

  // Cold path, outside the lock: other admissions and events proceed.
  const auto dag = std::make_shared<const Dag>(std::move(request.dag));
  SchedulerOptions options;
  options.fault_model = request.model;
  options.repair = true;
  double period = request.period;
  if (period <= 0.0) {
    const CopyId eps = request.model.derive_eps(*platform_, dag->num_tasks());
    period = calibrate_period(*dag, *platform_, eps, request.headroom, request.comm_share);
  }
  options.period = period;
  auto [result, factor] =
      schedule_with_period_escalation(request.variant, *dag, *platform_, period, options);
  if (!result.ok()) {
    resp.epoch = snapshot_epoch;
    resp.error = result.error.empty() ? "scheduling failed" : result.error;
    return resp;
  }

  auto placement =
      std::make_shared<CachedPlacement>(dag, platform_, std::move(*result.schedule));
  placement->model = request.model;
  placement->variant = request.variant.name();
  placement->period_factor = factor;
  placement->repair = result.repair;
  placement->reliability = result.repair.reliability;
  if (request.model.is_probabilistic() && placement->reliability < 0.0) {
    // Repair was not needed, so the model repair never estimated; compute
    // the achieved reliability once here — responses report it forever.
    placement->reliability = schedule_reliability(placement->schedule).reliability;
  }
  placement->eps_want = placement->schedule.eps();
  placement->eps_have = placement->eps_want;
  log_info() << "cold admission: variant=" << placement->variant
             << " model=" << request.model.to_string() << " period=" << period
             << " factor=" << factor << " repair_comms=" << result.repair.added_comms;

  // Reconcile with the live failure set, retrying when an event moves the
  // epoch between the repair and the publish. A live set beyond
  // incremental repair no longer refuses: the degradation ladder rebuilds
  // on the alive sub-platform and serves with an explicit deficit.
  BatchScratch scratch;
  std::uint64_t rebuilds = 0;
  for (;;) {
    if (failed.count() > 0) {
      const RepairStats live = repair_for_failure_set(placement->schedule, placement->oracle,
                                                      failed);
      if (live.success) {
        placement->event_repair_comms += live.added_comms;
        if (placement->degraded) certify(*placement, failed, scratch);
      } else {
        auto rebuilt = rebuild_degraded(*placement, failed, scratch);
        if (rebuilt == nullptr) {
          resp.epoch = snapshot_epoch;
          resp.error = "live failure set beyond repair for this request";
          return resp;
        }
        placement = std::move(rebuilt);
        ++rebuilds;
      }
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    if (epoch_ == snapshot_epoch) {
      placement->epoch = epoch_;
      key.epoch = epoch_;
      std::shared_ptr<const CachedPlacement> published = std::move(placement);
      cache_.insert(key, published);
      ++stats_.cold_schedules;
      stats_.rebuilds += rebuilds;
      resp.epoch = epoch_;
      resp.placement = published;
      if (published->degraded) {
        if (config_.auto_reheal) schedule_reheal_scan();
        if (!request.degraded_ok) {
          resp.degraded_refused = true;
          resp.error = degraded_error(*published);
          return resp;
        }
      }
      resp.ok = true;
      return resp;
    }
    snapshot_epoch = epoch_;
    failed = failed_;
  }
}

std::future<PlacementResponse> PlacementDaemon::submit(PlacementRequest request) {
  auto task = std::make_shared<std::packaged_task<PlacementResponse()>>(
      [this, req = std::move(request)]() mutable { return admit(std::move(req)); });
  std::future<PlacementResponse> future = task->get_future();
  {
    const std::lock_guard<std::mutex> lock(pending_mutex_);
    ++pending_;
  }
  global_thread_pool().post([this, task] {
    (*task)();
    const std::lock_guard<std::mutex> lock(pending_mutex_);
    if (--pending_ == 0) pending_cv_.notify_all();
  });
  return future;
}

std::vector<std::shared_ptr<const CachedPlacement>> PlacementDaemon::snapshot_entries()
    const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::shared_ptr<const CachedPlacement>> entries;
  for (auto& [key, placement] : cache_.entries_lru()) {
    (void)key;
    entries.push_back(std::move(placement));
  }
  return entries;
}

bool PlacementDaemon::restore(const std::shared_ptr<CachedPlacement>& placement) {
  SS_REQUIRE(placement != nullptr, "cannot restore a null placement");
  const CacheKey base{dag_fingerprint(*placement->dag),
                      Fnv64().str(placement->variant).value(),
                      fault_model_fingerprint(placement->model), 0};
  const std::lock_guard<std::mutex> lock(mutex_);
  if (failed_.count() > 0 && !placement->oracle.survives(failed_, survive_scratch_)) {
    return false;
  }
  placement->epoch = epoch_;
  placement->from_snapshot = true;
  CacheKey key = base;
  key.epoch = epoch_;
  cache_.insert(key, placement);
  ++stats_.restored;
  return true;
}

void PlacementDaemon::on_event(const ClusterEvent& event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  SS_REQUIRE(event.proc < platform_->num_procs(), "event names an unknown processor");
  ++epoch_;
  ++stats_.events;
  if (event.kind == ClusterEvent::Kind::kRecovery) {
    ++stats_.recovery_events;
    failed_.reset(event.proc);
    // Survival is monotone in the failure set: every cached placement
    // survived the pre-recovery set, so it survives the smaller one —
    // full-guarantee entries re-key copy-free. Degraded entries
    // re-certify against the shrunken set (the recovered processor may
    // raise their residual tolerance) and, when still short of the
    // guarantee, get a re-heal scan.
    cache_.update_all(epoch_, [this](const std::shared_ptr<const CachedPlacement>& p)
                                  -> std::shared_ptr<const CachedPlacement> {
      if (!p->degraded) return p;
      auto copy = std::make_shared<CachedPlacement>(*p);
      certify(*copy, failed_, batch_scratch_);
      copy->epoch = epoch_;
      if (!copy->degraded) ++stats_.reheals;
      return copy;
    });
    if (config_.auto_reheal && degraded_count_locked() > 0) schedule_reheal_scan();
    return;
  }
  failed_.set(event.proc);
  const std::uint64_t repairs_before = stats_.event_repairs;
  const std::uint64_t rebuilds_before = stats_.rebuilds;
  const std::uint64_t drops_before = stats_.repair_failures;
  cache_.update_all(epoch_, [this](const std::shared_ptr<const CachedPlacement>& p)
                                -> std::shared_ptr<const CachedPlacement> {
    if (p->oracle.survives(failed_, survive_scratch_)) {
      if (!p->degraded) return p;  // copy-free re-key
      // Degraded entries track their residual tolerance exactly; the new
      // failure may have shrunk it.
      auto copy = std::make_shared<CachedPlacement>(*p);
      certify(*copy, failed_, batch_scratch_);
      copy->epoch = epoch_;
      return copy;
    }
    // Copy-on-repair: patch a copy's schedule + warm oracle, publish the
    // copy. Holders of the old placement keep a consistent (stale) view.
    auto patched = std::make_shared<CachedPlacement>(*p);
    const RepairStats live =
        repair_for_failure_set(patched->schedule, patched->oracle, failed_);
    if (live.success) {
      patched->event_repair_comms += live.added_comms;
      patched->epoch = epoch_;
      bool verified = true;
      if (config_.verify_repairs) {
        // Independent check: a fresh oracle compiled from the repaired
        // schedule must agree, through the bit-sliced batch kernel, that
        // the live failure set is survivable.
        ++stats_.verifications;
        const SurvivalOracle fresh(patched->schedule);
        BatchScratch scratch;
        if ((fresh.survives_batch(failed_.words(), 1, scratch) & 1ULL) == 0) {
          ++stats_.verify_failures;
          verified = false;
        }
      }
      if (verified) {
        if (patched->degraded) certify(*patched, failed_, batch_scratch_);
        ++stats_.event_repairs;
        return patched;
      }
    }
    // Degradation ladder: beyond incremental repair no longer drops —
    // rebuild on the alive sub-platform (capped ε) and keep serving with
    // the batch-kernel-certified deficit. Only a failed rebuild drops.
    auto rebuilt = rebuild_degraded(*p, failed_, batch_scratch_);
    if (rebuilt == nullptr) {
      ++stats_.repair_failures;
      return nullptr;
    }
    ++stats_.rebuilds;
    rebuilt->epoch = epoch_;
    return rebuilt;
  });
  if (config_.auto_reheal && degraded_count_locked() > 0) schedule_reheal_scan();
  log_info() << "failure event: proc=" << event.proc << " epoch=" << epoch_
             << " repaired=" << (stats_.event_repairs - repairs_before)
             << " rebuilt=" << (stats_.rebuilds - rebuilds_before)
             << " dropped=" << (stats_.repair_failures - drops_before)
             << " degraded=" << degraded_count_locked() << " cached=" << cache_.size();
}

std::shared_ptr<CachedPlacement> PlacementDaemon::rebuild_degraded(const CachedPlacement& stale,
                                                                   const ProcSet& failed,
                                                                   BatchScratch& scratch) const {
  const std::size_t m = platform_->num_procs();
  std::vector<ProcId> alive;
  alive.reserve(m);
  for (ProcId u = 0; u < m; ++u) {
    if (!failed.test(u)) alive.push_back(u);
  }
  if (alive.empty()) return nullptr;
  const CopyId want = stale.eps_want;
  const CopyId cap = std::min<CopyId>(want, static_cast<CopyId>(alive.size() - 1));

  // Alive sub-platform preserving per-processor speeds and pairwise link
  // delays, so replica/comm times computed on it stay valid verbatim after
  // remapping the processor ids back onto the full cluster.
  std::vector<double> speeds(alive.size());
  Matrix<double> delays(alive.size(), alive.size(), 0.0);
  for (std::size_t i = 0; i < alive.size(); ++i) {
    speeds[i] = platform_->speed(alive[i]);
    for (std::size_t j = 0; j < alive.size(); ++j) {
      delays(i, j) = platform_->unit_delay(alive[i], alive[j]);
    }
  }
  Platform sub(std::move(speeds), std::move(delays));
  if (platform_->has_failure_probs()) {
    for (std::size_t i = 0; i < alive.size(); ++i) {
      sub.set_failure_prob(static_cast<ProcId>(i), platform_->failure_prob(alive[i]));
    }
  }

  SchedulerOptions options;
  options.eps = cap;  // the count guarantee the alive processors can carry
  options.repair = true;
  options.period = stale.schedule.period();
  auto [result, factor] = schedule_with_period_escalation(
      AlgoVariant(stale.variant), *stale.dag, sub, stale.schedule.period(), options);
  if (!result.ok()) return nullptr;

  Schedule remapped(*stale.dag, *platform_, cap, result.schedule->period());
  for (TaskId t = 0; t < stale.dag->num_tasks(); ++t) {
    for (CopyId c = 0; c <= cap; ++c) {
      const ReplicaRef r{t, c};
      if (!result.schedule->is_placed(r)) continue;
      const PlacedReplica& placed = result.schedule->placed(r);
      remapped.place(r, alive[placed.proc], placed.start, placed.finish, placed.stage);
    }
  }
  for (const CommRecord& comm : result.schedule->comms()) remapped.add_comm(comm);

  auto fresh = std::make_shared<CachedPlacement>(stale.dag, stale.platform, std::move(remapped));
  fresh->model = stale.model;
  fresh->variant = stale.variant;
  fresh->period_factor = factor;
  fresh->repair = result.repair;
  fresh->reliability = -1.0;
  if (fresh->model.is_probabilistic()) {
    fresh->reliability = schedule_reliability(fresh->schedule).reliability;
  }
  fresh->epoch = stale.epoch;  // callers publish under the epoch they hold
  fresh->eps_want = want;
  certify(*fresh, failed, scratch);
  return fresh;
}

void PlacementDaemon::schedule_reheal_scan() {
  if (reheal_scheduled_) return;
  reheal_scheduled_ = true;
  {
    const std::lock_guard<std::mutex> lock(pending_mutex_);
    ++pending_;
  }
  global_thread_pool().post([this] {
    reheal_pass();
    const std::lock_guard<std::mutex> lock(pending_mutex_);
    if (--pending_ == 0) pending_cv_.notify_all();
  });
}

void PlacementDaemon::reheal_now() { reheal_pass(); }

void PlacementDaemon::reheal_pass() {
  // Snapshot the degraded keys once; each entry gets one reschedule
  // attempt per pass (events that degrade more entries schedule another
  // pass). The epoch component of a captured key goes stale the moment an
  // event lands, so re-lookups match on the stable fingerprints only.
  std::vector<CacheKey> targets;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    reheal_scheduled_ = false;
    for (const auto& [key, p] : cache_.entries_lru()) {
      if (p->degraded) targets.push_back(key);
    }
  }
  BatchScratch scratch;
  for (const CacheKey& target : targets) {
    for (;;) {
      std::shared_ptr<const CachedPlacement> stale;
      std::uint64_t snapshot_epoch = 0;
      ProcSet failed;
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        for (const auto& [key, p] : cache_.entries_lru()) {
          if (key.dag == target.dag && key.variant == target.variant &&
              key.model == target.model) {
            stale = p;
            break;
          }
        }
        if (stale == nullptr || !stale->degraded) break;  // evicted or healed meanwhile
        snapshot_epoch = epoch_;
        failed = failed_;
      }
      // Reschedule outside the lock — admissions and events proceed; the
      // publish below re-checks the epoch like the cold path does.
      auto rebuilt = rebuild_degraded(*stale, failed, scratch);
      const std::lock_guard<std::mutex> lock(mutex_);
      if (epoch_ != snapshot_epoch) continue;  // cluster moved: retry with fresh state
      if (rebuilt == nullptr) break;           // cannot improve under the current set
      bool current = false;
      for (const auto& [key, p] : cache_.entries_lru()) {
        if (p == stale) {
          current = true;
          break;
        }
      }
      if (!current) break;  // replaced at the same epoch (another pass): leave it
      // Publish only strict improvements; promotions to the full
      // guarantee are what `reheals` counts.
      if (rebuilt->degraded && rebuilt->eps_have <= stale->eps_have) break;
      rebuilt->epoch = epoch_;
      CacheKey key = target;
      key.epoch = epoch_;
      if (!rebuilt->degraded) ++stats_.reheals;
      log_info() << "re-heal: eps_have " << stale->eps_have << " -> " << rebuilt->eps_have
                 << "/" << rebuilt->eps_want << (rebuilt->degraded ? " (still degraded)" : "")
                 << " epoch=" << epoch_;
      cache_.insert(key, std::shared_ptr<const CachedPlacement>(std::move(rebuilt)));
      break;
    }
  }
}

std::size_t PlacementDaemon::degraded_count_locked() const {
  std::size_t n = 0;
  for (const auto& [key, p] : cache_.entries_lru()) {
    (void)key;
    if (p->degraded) ++n;
  }
  return n;
}

std::size_t PlacementDaemon::degraded_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return degraded_count_locked();
}

std::uint64_t PlacementDaemon::epoch() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return epoch_;
}

std::size_t PlacementDaemon::failed_procs() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return failed_.count();
}

std::size_t PlacementDaemon::cache_size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return cache_.size();
}

ScheduleCache::Stats PlacementDaemon::cache_stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return cache_.stats();
}

DaemonStats PlacementDaemon::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  DaemonStats out = stats_;
  out.degraded = degraded_count_locked();  // gauge, not a counter
  return out;
}

}  // namespace streamsched
