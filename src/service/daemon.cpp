#include "service/daemon.hpp"

#include <utility>

#include "core/fingerprint.hpp"
#include "exp/sweep.hpp"
#include "exp/workload.hpp"
#include "schedule/survival.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace streamsched {

PlacementDaemon::PlacementDaemon(Platform platform, DaemonConfig config, EventBus* bus)
    : platform_(std::make_shared<const Platform>(std::move(platform))),
      config_(config),
      bus_(bus),
      cache_(config.cache_capacity),
      failed_(platform_->num_procs()) {
  if (bus_ != nullptr) {
    subscription_ = bus_->subscribe([this](const ClusterEvent& event) { on_event(event); });
  }
}

PlacementDaemon::~PlacementDaemon() {
  // Drain queued submits first: their admits may still touch the cache.
  {
    std::unique_lock<std::mutex> lock(pending_mutex_);
    pending_cv_.wait(lock, [this] { return pending_ == 0; });
  }
  if (bus_ != nullptr) bus_->unsubscribe(subscription_);
}

PlacementResponse PlacementDaemon::admit(PlacementRequest request) {
  PlacementResponse resp;
  CacheKey key{dag_fingerprint(request.dag), variant_fingerprint(request.variant),
               fault_model_fingerprint(request.model), 0};

  std::uint64_t snapshot_epoch = 0;
  ProcSet failed;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.admissions;
    key.epoch = epoch_;
    if (auto hit = cache_.find(key)) {
      resp.ok = true;
      resp.cache_hit = true;
      resp.epoch = epoch_;
      resp.placement = std::move(hit);
      return resp;
    }
    snapshot_epoch = epoch_;
    failed = failed_;
  }

  // Cold path, outside the lock: other admissions and events proceed.
  const auto dag = std::make_shared<const Dag>(std::move(request.dag));
  SchedulerOptions options;
  options.fault_model = request.model;
  options.repair = true;
  double period = request.period;
  if (period <= 0.0) {
    const CopyId eps = request.model.derive_eps(*platform_, dag->num_tasks());
    period = calibrate_period(*dag, *platform_, eps, request.headroom, request.comm_share);
  }
  options.period = period;
  auto [result, factor] =
      schedule_with_period_escalation(request.variant, *dag, *platform_, period, options);
  if (!result.ok()) {
    resp.epoch = snapshot_epoch;
    resp.error = result.error.empty() ? "scheduling failed" : result.error;
    return resp;
  }

  auto placement =
      std::make_shared<CachedPlacement>(dag, platform_, std::move(*result.schedule));
  placement->model = request.model;
  placement->variant = request.variant.name();
  placement->period_factor = factor;
  placement->repair = result.repair;
  placement->reliability = result.repair.reliability;
  if (request.model.is_probabilistic() && placement->reliability < 0.0) {
    // Repair was not needed, so the model repair never estimated; compute
    // the achieved reliability once here — responses report it forever.
    placement->reliability = schedule_reliability(placement->schedule).reliability;
  }
  log_info() << "cold admission: variant=" << placement->variant
             << " model=" << request.model.to_string() << " period=" << period
             << " factor=" << factor << " repair_comms=" << result.repair.added_comms;

  // Reconcile with the live failure set, retrying when an event moves the
  // epoch between the repair and the publish.
  for (;;) {
    if (failed.count() > 0) {
      const RepairStats live = repair_for_failure_set(placement->schedule, placement->oracle,
                                                      failed);
      if (!live.success) {
        resp.epoch = snapshot_epoch;
        resp.error = "live failure set beyond repair for this request";
        return resp;
      }
      placement->event_repair_comms += live.added_comms;
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    if (epoch_ == snapshot_epoch) {
      placement->epoch = epoch_;
      key.epoch = epoch_;
      std::shared_ptr<const CachedPlacement> published = std::move(placement);
      cache_.insert(key, published);
      ++stats_.cold_schedules;
      resp.ok = true;
      resp.epoch = epoch_;
      resp.placement = std::move(published);
      return resp;
    }
    snapshot_epoch = epoch_;
    failed = failed_;
  }
}

std::future<PlacementResponse> PlacementDaemon::submit(PlacementRequest request) {
  auto task = std::make_shared<std::packaged_task<PlacementResponse()>>(
      [this, req = std::move(request)]() mutable { return admit(std::move(req)); });
  std::future<PlacementResponse> future = task->get_future();
  {
    const std::lock_guard<std::mutex> lock(pending_mutex_);
    ++pending_;
  }
  global_thread_pool().post([this, task] {
    (*task)();
    const std::lock_guard<std::mutex> lock(pending_mutex_);
    if (--pending_ == 0) pending_cv_.notify_all();
  });
  return future;
}

std::vector<std::shared_ptr<const CachedPlacement>> PlacementDaemon::snapshot_entries()
    const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::shared_ptr<const CachedPlacement>> entries;
  for (auto& [key, placement] : cache_.entries_lru()) {
    (void)key;
    entries.push_back(std::move(placement));
  }
  return entries;
}

bool PlacementDaemon::restore(const std::shared_ptr<CachedPlacement>& placement) {
  SS_REQUIRE(placement != nullptr, "cannot restore a null placement");
  const CacheKey base{dag_fingerprint(*placement->dag),
                      Fnv64().str(placement->variant).value(),
                      fault_model_fingerprint(placement->model), 0};
  const std::lock_guard<std::mutex> lock(mutex_);
  if (failed_.count() > 0 && !placement->oracle.survives(failed_, survive_scratch_)) {
    return false;
  }
  placement->epoch = epoch_;
  placement->from_snapshot = true;
  CacheKey key = base;
  key.epoch = epoch_;
  cache_.insert(key, placement);
  ++stats_.restored;
  return true;
}

void PlacementDaemon::on_event(const ClusterEvent& event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  SS_REQUIRE(event.proc < platform_->num_procs(), "event names an unknown processor");
  ++epoch_;
  ++stats_.events;
  if (event.kind == ClusterEvent::Kind::kRecovery) {
    failed_.reset(event.proc);
    // Survival is monotone in the failure set: every cached placement
    // survived the pre-recovery set, so it survives the smaller one.
    // Re-key copy-free.
    cache_.update_all(epoch_, [](const std::shared_ptr<const CachedPlacement>& p) {
      return p;
    });
    return;
  }
  failed_.set(event.proc);
  const std::uint64_t repairs_before = stats_.event_repairs;
  const std::uint64_t drops_before = stats_.repair_failures;
  cache_.update_all(epoch_, [this](const std::shared_ptr<const CachedPlacement>& p)
                                -> std::shared_ptr<const CachedPlacement> {
    if (p->oracle.survives(failed_, survive_scratch_)) return p;  // copy-free re-key
    // Copy-on-repair: patch a copy's schedule + warm oracle, publish the
    // copy. Holders of the old placement keep a consistent (stale) view.
    auto patched = std::make_shared<CachedPlacement>(*p);
    const RepairStats live =
        repair_for_failure_set(patched->schedule, patched->oracle, failed_);
    if (!live.success) {
      ++stats_.repair_failures;
      return nullptr;  // beyond repair: drop, next admission goes cold
    }
    patched->event_repair_comms += live.added_comms;
    patched->epoch = epoch_;
    ++stats_.event_repairs;
    if (config_.verify_repairs) {
      // Independent check: a fresh oracle compiled from the repaired
      // schedule must agree, through the bit-sliced batch kernel, that the
      // live failure set is survivable.
      ++stats_.verifications;
      const SurvivalOracle fresh(patched->schedule);
      BatchScratch scratch;
      if ((fresh.survives_batch(failed_.words(), 1, scratch) & 1ULL) == 0) {
        ++stats_.verify_failures;
        return nullptr;
      }
    }
    return patched;
  });
  log_info() << "failure event: proc=" << event.proc << " epoch=" << epoch_
             << " repaired=" << (stats_.event_repairs - repairs_before)
             << " dropped=" << (stats_.repair_failures - drops_before)
             << " cached=" << cache_.size();
}

std::uint64_t PlacementDaemon::epoch() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return epoch_;
}

std::size_t PlacementDaemon::failed_procs() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return failed_.count();
}

std::size_t PlacementDaemon::cache_size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return cache_.size();
}

ScheduleCache::Stats PlacementDaemon::cache_stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return cache_.stats();
}

DaemonStats PlacementDaemon::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace streamsched
