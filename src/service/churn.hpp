// Deterministic churn-trace generation for the placement service.
//
// A ChurnTrace turns a churn FaultModel (time-varying per-processor
// failure rates + first-class recovery, see schedule/fault_model.hpp)
// into a concrete, replayable sequence of ClusterEvents: step by step,
// alive processors fail with `failure_prob_at(platform, u, step)` and
// failed processors recover with `churn_recover()`. Everything is drawn
// from one seeded Rng in a fixed order (processors ascending, failures
// before recoveries within a step), so the same (model, platform, seed,
// config) always yields the same trace — the determinism bench_churn and
// the golden churn tests rely on.
//
// Two liveness guards shape the trace toward the serving layer's needs:
//   - `min_alive` suppresses failures that would drop the alive count
//     below the floor (the daemon can always degrade instead of going
//     dark, but a fully dead cluster is not an interesting trace), and
//   - the final `quiet_tail` steps draw no new failures, and the very
//     last step force-recovers every still-failed processor, so "all
//     degraded entries re-heal by trace end" is always achievable.
#pragma once

#include <cstdint>
#include <vector>

#include "schedule/fault_model.hpp"
#include "service/event_bus.hpp"

namespace streamsched {

struct ChurnTraceConfig {
  /// Number of epochs to simulate (including the quiet tail).
  std::uint64_t steps = 64;
  /// Never let failures reduce the alive processor count below this.
  std::size_t min_alive = 2;
  /// Trailing steps that only recover (no fresh failures); must be < steps.
  std::uint64_t quiet_tail = 8;
};

/// One generated trace: `steps[i]` holds the events of epoch i, in the
/// order they must be published.
struct ChurnTrace {
  std::vector<std::vector<ClusterEvent>> steps;

  /// Processors failed after replaying steps [0, upto); the full trace
  /// always ends with every processor alive (forced final recovery).
  [[nodiscard]] std::vector<ProcId> failed_after(std::size_t upto) const;
};

/// Generates the deterministic failure/recovery trace for `model` (must be
/// a churn model) on `platform` from `seed`.
[[nodiscard]] ChurnTrace generate_churn_trace(const FaultModel& model, const Platform& platform,
                                              std::uint64_t seed, const ChurnTraceConfig& config);

}  // namespace streamsched
