#include "service/schedule_cache.hpp"

#include "util/assert.hpp"

namespace streamsched {

ScheduleCache::ScheduleCache(std::size_t capacity) : capacity_(capacity) {
  SS_REQUIRE(capacity > 0, "schedule cache needs capacity >= 1");
  nodes_.reserve(capacity);
  index_.reserve(capacity * 2);
}

void ScheduleCache::unlink(std::size_t i) {
  Node& n = nodes_[i];
  if (n.prev != kNil) {
    nodes_[n.prev].next = n.next;
  } else {
    head_ = n.next;
  }
  if (n.next != kNil) {
    nodes_[n.next].prev = n.prev;
  } else {
    tail_ = n.prev;
  }
  n.prev = n.next = kNil;
}

void ScheduleCache::link_front(std::size_t i) {
  Node& n = nodes_[i];
  n.prev = kNil;
  n.next = head_;
  if (head_ != kNil) nodes_[head_].prev = i;
  head_ = i;
  if (tail_ == kNil) tail_ = i;
}

void ScheduleCache::free_node(std::size_t i) {
  nodes_[i].placement.reset();
  nodes_[i].next = free_;
  free_ = i;
}

std::shared_ptr<const CachedPlacement> ScheduleCache::find(const CacheKey& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  const std::size_t i = it->second;
  if (i != head_) {
    unlink(i);
    link_front(i);
  }
  return nodes_[i].placement;
}

void ScheduleCache::insert(const CacheKey& key,
                           std::shared_ptr<const CachedPlacement> placement) {
  SS_REQUIRE(placement != nullptr, "cannot cache a null placement");
  if (const auto it = index_.find(key); it != index_.end()) {
    const std::size_t i = it->second;
    nodes_[i].placement = std::move(placement);
    if (i != head_) {
      unlink(i);
      link_front(i);
    }
    return;
  }
  if (index_.size() >= capacity_) {
    // Evict the LRU tail to make room.
    const std::size_t victim = tail_;
    index_.erase(nodes_[victim].key);
    unlink(victim);
    free_node(victim);
    ++stats_.evictions;
  }
  std::size_t i;
  if (free_ != kNil) {
    i = free_;
    free_ = nodes_[i].next;
    nodes_[i].next = kNil;
  } else {
    i = nodes_.size();
    nodes_.emplace_back();
  }
  nodes_[i].key = key;
  nodes_[i].placement = std::move(placement);
  link_front(i);
  index_.emplace(key, i);
  ++stats_.insertions;
}

bool ScheduleCache::erase(const CacheKey& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  const std::size_t i = it->second;
  index_.erase(it);
  unlink(i);
  free_node(i);
  return true;
}

void ScheduleCache::update_all(
    std::uint64_t new_epoch,
    const std::function<std::shared_ptr<const CachedPlacement>(
        const std::shared_ptr<const CachedPlacement>&)>& update) {
  index_.clear();
  std::size_t i = head_;
  while (i != kNil) {
    const std::size_t next = nodes_[i].next;
    std::shared_ptr<const CachedPlacement> kept = update(nodes_[i].placement);
    bool keep = kept != nullptr;
    if (keep) {
      nodes_[i].placement = std::move(kept);
      nodes_[i].key.epoch = new_epoch;
      // Duplicate keys cannot arise in the daemon (every entry is re-keyed
      // to the shared current epoch on each event), but if two entries ever
      // collapse onto one key, keep the more recent (already indexed) one.
      keep = index_.emplace(nodes_[i].key, i).second;
    }
    if (!keep) {
      unlink(i);
      free_node(i);
      ++stats_.evictions;
    }
    i = next;
  }
}

void ScheduleCache::clear() {
  index_.clear();
  std::size_t i = head_;
  while (i != kNil) {
    const std::size_t next = nodes_[i].next;
    nodes_[i].prev = nodes_[i].next = kNil;
    free_node(i);
    i = next;
  }
  head_ = tail_ = kNil;
}

std::vector<std::pair<CacheKey, std::shared_ptr<const CachedPlacement>>>
ScheduleCache::entries_lru() const {
  std::vector<std::pair<CacheKey, std::shared_ptr<const CachedPlacement>>> entries;
  entries.reserve(index_.size());
  for (std::size_t i = tail_; i != kNil; i = nodes_[i].prev) {
    entries.emplace_back(nodes_[i].key, nodes_[i].placement);
  }
  return entries;
}

std::vector<CacheKey> ScheduleCache::keys_mru() const {
  std::vector<CacheKey> keys;
  keys.reserve(index_.size());
  for (std::size_t i = head_; i != kNil; i = nodes_[i].next) keys.push_back(nodes_[i].key);
  return keys;
}

}  // namespace streamsched
