// LRU cache of admitted placements, the hot path of the placement daemon.
//
// Keys are the four fingerprints that determine a placement: DAG
// structure, algorithm variant, fault model, and the daemon's platform
// epoch (a counter bumped on every failure/recovery event, so stale
// placements can never be served for the current cluster state — the
// daemon *re-keys* surviving entries to the new epoch after repairing
// them, see PlacementDaemon::on_event).
//
// The cache is a fixed slab: a vector of nodes carrying an intrusive
// MRU→LRU list plus a hash index over it. A hit is allocation-free — one
// hash lookup, four pointer-sized link updates to bump the node to MRU,
// and a shared_ptr refcount increment — which is what lets the daemon
// serve cached admissions at memcpy-like rates (bench_service measures
// the ratio against cold scheduling). Misses beyond capacity evict the
// LRU tail; evicted placements stay alive for response holders via shared
// ownership.
//
// Not internally synchronized: the daemon guards it with its own mutex
// (the cache is one of several fields updated atomically per event).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "service/request.hpp"

namespace streamsched {

/// What determines an admitted placement. `epoch` is the daemon's platform
/// epoch; the other three are stable content fingerprints
/// (core/fingerprint.hpp). The platform itself needs no component: a
/// daemon serves exactly one platform, and epoch covers its failure state.
struct CacheKey {
  std::uint64_t dag = 0;
  std::uint64_t variant = 0;
  std::uint64_t model = 0;
  std::uint64_t epoch = 0;

  friend bool operator==(const CacheKey&, const CacheKey&) = default;
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const noexcept {
    // splitmix64-style finalization over the combined words; the map
    // compares full keys on collision, so this only needs to spread.
    std::uint64_t h = k.dag;
    const auto mix = [&h](std::uint64_t v) {
      h += 0x9e3779b97f4a7c15ULL + v;
      h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
      h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
      h ^= h >> 31;
    };
    mix(k.variant);
    mix(k.model);
    mix(k.epoch);
    return static_cast<std::size_t>(h);
  }
};

class ScheduleCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };

  explicit ScheduleCache(std::size_t capacity);

  /// The cached placement for `key` (bumped to MRU), or nullptr. Counts a
  /// hit or a miss. Allocation-free.
  [[nodiscard]] std::shared_ptr<const CachedPlacement> find(const CacheKey& key);

  /// Inserts (or replaces) the placement for `key` at MRU, evicting the
  /// LRU tail beyond capacity.
  void insert(const CacheKey& key, std::shared_ptr<const CachedPlacement> placement);

  /// Removes `key`; false when absent.
  bool erase(const CacheKey& key);

  /// Epoch transition: walks every entry MRU→LRU, calls `update` on it,
  /// and re-keys the survivors to `new_epoch`. `update` returns the
  /// placement to keep (the same pointer — copy-free — or a repaired copy)
  /// or nullptr to drop the entry (beyond repair). Recency order is
  /// preserved.
  void update_all(std::uint64_t new_epoch,
                  const std::function<std::shared_ptr<const CachedPlacement>(
                      const std::shared_ptr<const CachedPlacement>&)>& update);

  void clear();

  [[nodiscard]] std::size_t size() const { return index_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Keys in MRU→LRU order (tests and introspection).
  [[nodiscard]] std::vector<CacheKey> keys_mru() const;

  /// Entries in LRU→MRU order, without touching recency or stats — the
  /// warm-start snapshot walk (service/persistence.hpp). Re-inserting the
  /// returned entries in order reproduces the recency ordering.
  [[nodiscard]] std::vector<std::pair<CacheKey, std::shared_ptr<const CachedPlacement>>>
  entries_lru() const;

 private:
  static constexpr std::size_t kNil = static_cast<std::size_t>(-1);

  struct Node {
    CacheKey key;
    std::shared_ptr<const CachedPlacement> placement;
    std::size_t prev = kNil;
    std::size_t next = kNil;
  };

  void unlink(std::size_t i);
  void link_front(std::size_t i);
  void free_node(std::size_t i);

  std::size_t capacity_;
  std::vector<Node> nodes_;
  std::size_t head_ = kNil;  ///< MRU
  std::size_t tail_ = kNil;  ///< LRU
  std::size_t free_ = kNil;  ///< free-slot chain through Node::next
  std::unordered_map<CacheKey, std::size_t, CacheKeyHash> index_;
  Stats stats_;
};

}  // namespace streamsched
