// Request/response structs of the placement daemon (service/daemon.hpp).
//
// A PlacementRequest is one DAG + QoS ask against the daemon's shared
// cluster: which algorithm variant to place with, which fault model to
// guarantee, and the throughput constraint (or 0 to calibrate one from the
// workload, the experiment pipeline's convention). The daemon answers with
// a shared, immutable CachedPlacement: the schedule, its compiled survival
// oracle (kept warm so live failure events repair incrementally instead of
// rescheduling), and the admission/repair provenance. Responses stay valid
// for the lifetime of the placement they point to — entries the daemon
// evicts or repairs stay alive for holders of the shared_ptr; the daemon
// itself publishes repaired *copies*, never mutates a published placement.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/variant.hpp"
#include "graph/dag.hpp"
#include "platform/platform.hpp"
#include "schedule/fault_model.hpp"
#include "schedule/fault_tolerance.hpp"
#include "schedule/schedule.hpp"
#include "schedule/survival.hpp"

namespace streamsched {

struct PlacementRequest {
  /// The streaming application to place (owned by the request; admitted
  /// placements keep it alive via shared ownership).
  Dag dag;
  /// Scheduling algorithm variant (registry name + bound parameters).
  AlgoVariant variant{"rltf"};
  /// Reliability constraint the placement must guarantee.
  FaultModel model = FaultModel::count(1);
  /// Δ = 1/T. <= 0 means "calibrate from the workload" with the knobs
  /// below (exp/workload.hpp's documented substitution).
  double period = 0.0;
  double headroom = 2.0;
  double comm_share = 1.0;
  /// Brownout opt-in: accept a degraded placement (one currently serving
  /// below its admitted ε/R guarantee, see CachedPlacement::degraded)
  /// instead of being refused while the cluster churns.
  bool degraded_ok = false;
};

/// One admitted placement, immutable once published by the daemon. The
/// oracle is compiled from (and patched alongside) the schedule, so event
/// repair and feasibility queries never recompile.
struct CachedPlacement {
  CachedPlacement(std::shared_ptr<const Dag> dag_in,
                  std::shared_ptr<const Platform> platform_in, Schedule schedule_in)
      : dag(std::move(dag_in)),
        platform(std::move(platform_in)),
        schedule(std::move(schedule_in)),
        oracle(schedule) {}

  std::shared_ptr<const Dag> dag;
  std::shared_ptr<const Platform> platform;
  Schedule schedule;
  SurvivalOracle oracle;

  FaultModel model = FaultModel::count(0);
  std::string variant;         ///< canonical variant spec
  double period_factor = 1.0;  ///< escalation rung the admission needed
  RepairStats repair;          ///< admission-time model repair
  /// Achieved schedule reliability under the platform's failure
  /// probabilities (probabilistic admissions; −1 when not estimated —
  /// count-model admissions are guaranteed by the exhaustive ε check).
  double reliability = -1.0;
  /// True when this placement was restored from a warm-start cache
  /// snapshot (service/persistence.hpp) rather than scheduled by this
  /// daemon process; wire responses report such hits as `src=warm`.
  bool from_snapshot = false;
  /// Supply channels wired by live failure-event repairs (on top of
  /// `repair.added_comms`).
  std::uint32_t event_repair_comms = 0;
  /// Platform epoch this placement is current for (survives the daemon's
  /// live failure set as of that epoch).
  std::uint64_t epoch = 0;
  /// Replication tolerance the admission promised (the schedule's built ε
  /// on the cold path). The degradation ladder never lowers this — it is
  /// what re-heal promotes back to.
  CopyId eps_want = 0;
  /// Best residual tolerance the batch survival kernel certifies under
  /// the live failure set (achieved_tolerance). Equal to eps_want on a
  /// healthy cluster; the explicit deficit when degraded.
  CopyId eps_have = 0;
  /// True while eps_have < eps_want: the placement keeps serving, tagged
  /// with its reliability deficit, until background re-heal promotes a
  /// full-guarantee replacement.
  bool degraded = false;
};

struct PlacementResponse {
  bool ok = false;
  bool cache_hit = false;
  /// Daemon epoch the response was served at.
  std::uint64_t epoch = 0;
  /// True when the only placement on offer is degraded and the request did
  /// not opt in with `degraded_ok` — `placement` still points at the
  /// refused entry so the caller can report the deficit.
  bool degraded_refused = false;
  std::string error;
  std::shared_ptr<const CachedPlacement> placement;
};

}  // namespace streamsched
