// Network front end of the placement daemon (the wire side of
// scheduler-as-a-service; protocol in net/wire.hpp and docs/PROTOCOL.md).
//
// One Server owns an EventBus + PlacementDaemon and serves the
// line-delimited protocol over unix-domain and/or TCP listeners from a
// single poll(2) loop. Frames are dispatched by cost:
//
//   EVENT / STATS / SHUTDOWN   answered synchronously on the poll thread
//                              (an event is a cache repair walk — fast and
//                              latency-critical; stats are a field copy).
//
//   SUBMIT                     routed to the request's QoS class lane: a
//                              bounded in-flight queue drained by the
//                              lane's own worker threads. When a lane's
//                              in-flight count (queued + running) is at
//                              its bound, the request is shed immediately
//                              with `ERR BUSY` — written from the poll
//                              thread, so shedding stays cheap precisely
//                              when the server is saturated. Interactive
//                              and batch lanes are fully independent:
//                              saturating batch never delays interactive
//                              admissions (bench_server's shed phase
//                              measures both properties).
//
// Workers push finished responses onto a completion queue and wake the
// poll loop through a self-pipe; the poll thread owns all connection
// state, so no socket is ever written from two threads. Because lanes run
// concurrently, responses on one connection may be reordered relative to
// submission order — clients match them by their `tag=` echo.
//
// Warm start: when `config.snapshot_path` is set, the constructor loads
// the newest intact snapshot generation (verified entry by entry, see
// service/persistence.hpp; corrupt/truncated generations are skipped
// newest→oldest) and a clean shutdown saves a fresh generation back.
// With `snapshot_interval_ms` set, the poll loop also writes a rotated
// generation periodically (atomically — tmp + fsync + rename), skipped
// when the cache hasn't changed, so `kill -9` loses at most one interval
// of cache warmth. Restored entries serve with `src=warm` provenance; a
// corrupted or foreign-platform snapshot is logged loudly and skipped
// (the server starts cold rather than trusting it).
//
// Robustness knobs: `max_line_bytes` bounds a single request line (a
// peer dribbling an endless unterminated line is answered BAD_REQUEST
// and disconnected — anti-slowloris), `read_deadline_ms` bounds how long
// a connection may sit on a *partial* frame (idle connections between
// complete frames are fine), and `ERR BUSY` sheds carry a `retry_ms=`
// hint derived from lane depth so well-behaved clients back off for
// roughly one drain interval instead of hammering. `fault_spec`
// (util/fault_inject.hpp grammar) installs a deterministic fault plan on
// the poll thread for chaos testing.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "net/wire.hpp"
#include "platform/platform.hpp"
#include "service/daemon.hpp"
#include "service/event_bus.hpp"

namespace streamsched::net {

struct QosLaneConfig {
  std::size_t workers = 1;  ///< dedicated admission threads of this class
  /// Maximum in-flight SUBMITs (queued + running). Beyond it requests are
  /// shed with `ERR BUSY` instead of queueing without bound.
  std::size_t bound = 16;
};

struct ServerConfig {
  /// Unix-domain listener path; empty = no unix listener.
  std::string unix_path;
  /// TCP listener (enabled when `tcp` is true); port 0 binds an ephemeral
  /// port, readable via Server::tcp_port().
  bool tcp = false;
  std::string tcp_host = "127.0.0.1";
  std::uint16_t tcp_port = 0;
  /// Per-QoS-class admission lanes, indexed by QosClass.
  std::array<QosLaneConfig, kNumQosClasses> lanes{};
  /// Warm-start snapshot base path: rotated generations `<base>.g<seq>`
  /// are written next to it; the newest intact one is loaded (and
  /// verified) on construction, and a clean shutdown saves a new
  /// generation. Empty = no persistence.
  std::string snapshot_path;
  /// Periodic snapshot cadence from the poll loop (0 = only on clean
  /// shutdown). Saves are skipped when the cache hasn't changed.
  std::uint32_t snapshot_interval_ms = 0;
  /// Snapshot generations kept on disk; older ones are pruned.
  std::size_t snapshot_keep = 4;
  /// Hard bound on one request line; longer frames get `ERR BAD_REQUEST`
  /// and the connection is closed once the response flushes.
  std::size_t max_line_bytes = 1 << 20;
  /// Closes connections that hold a *partial* frame longer than this
  /// (0 = never). Idle connections between complete frames are exempt.
  std::uint32_t read_deadline_ms = 0;
  /// Base of the `ERR BUSY` retry_ms hint, scaled by lane queue depth.
  std::uint32_t busy_retry_hint_ms = 25;
  /// Deterministic fault-injection spec (util/fault_inject.hpp grammar)
  /// installed on the poll thread during run(). Empty = no injection.
  std::string fault_spec;
  DaemonConfig daemon;
};

/// Per-lane admission counters (monotonic since construction).
struct LaneStats {
  std::uint64_t accepted = 0;   ///< SUBMITs queued to the lane
  std::uint64_t shed = 0;       ///< SUBMITs answered `ERR BUSY`
  std::uint64_t completed = 0;  ///< responses produced by lane workers
};

class Server {
 public:
  /// Binds the configured listeners and loads the warm-start snapshot (if
  /// any) — so tcp_port() and the daemon's cache are ready before run().
  /// Throws std::system_error when a listener cannot bind.
  Server(Platform platform, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Serves until a SHUTDOWN frame (or shutdown() from another thread),
  /// then drains in-flight admissions, flushes responses, and saves the
  /// warm-start snapshot. Call at most once.
  void run();

  /// Requests shutdown from another thread (same path as a SHUTDOWN
  /// frame). Safe to call before or during run(); idempotent.
  void shutdown();

  /// Port actually bound by the TCP listener (after an ephemeral bind).
  [[nodiscard]] std::uint16_t tcp_port() const { return tcp_port_; }

  [[nodiscard]] const PlacementDaemon& daemon() const { return *daemon_; }
  /// The failure/recovery bus; in-process monitors may publish directly —
  /// wire EVENT frames and direct publishes share the same path.
  [[nodiscard]] EventBus& bus() { return bus_; }
  [[nodiscard]] LaneStats lane_stats(QosClass qos) const;

 private:
  struct Impl;
  EventBus bus_;
  std::unique_ptr<PlacementDaemon> daemon_;
  std::uint16_t tcp_port_ = 0;
  std::unique_ptr<Impl> impl_;
};

}  // namespace streamsched::net
