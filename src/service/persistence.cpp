#include "service/persistence.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "core/fingerprint.hpp"
#include "net/wire.hpp"
#include "schedule/fault_tolerance.hpp"
#include "schedule/survival.hpp"
#include "service/daemon.hpp"
#include "util/log.hpp"

namespace streamsched {

namespace {

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return std::string(buf);
}

bool parse_hex16(const std::string& token, std::uint64_t& out) {
  if (token.size() != 16) return false;
  out = 0;
  for (char ch : token) {
    int digit;
    if (ch >= '0' && ch <= '9') {
      digit = ch - '0';
    } else if (ch >= 'a' && ch <= 'f') {
      digit = ch - 'a' + 10;
    } else {
      return false;
    }
    out = (out << 4) | static_cast<std::uint64_t>(digit);
  }
  return true;
}

std::uint32_t parse_u32_field(const std::string& value, const std::string& key) {
  std::size_t pos = 0;
  unsigned long parsed = 0;
  try {
    parsed = std::stoul(value, &pos);
  } catch (const std::exception&) {
    throw SnapshotError("snapshot entry field " + key + " is not a number: " + value);
  }
  if (pos != value.size() || parsed > 0xffffffffUL) {
    throw SnapshotError("snapshot entry field " + key + " is not a u32: " + value);
  }
  return static_cast<std::uint32_t>(parsed);
}

// v2 appends degraded=/eps_have=/eps_want= to entry lines so a warm
// restart never launders a degraded placement into a full-guarantee one.
// v1 snapshots still load: their entries default to non-degraded with
// eps_have == eps_want == the schedule's replication degree.
constexpr char kMagic[] = "#streamsched-cache v2";
constexpr char kMagicV1[] = "#streamsched-cache v1";

/// One parsed (not yet verified) snapshot entry.
struct SnapshotEntry {
  std::string variant;
  FaultModel model = FaultModel::count(0);
  double factor = 1.0;
  double reliability = -1.0;
  std::uint32_t repair_comms = 0;
  std::uint32_t event_comms = 0;
  bool degraded = false;
  bool have_deficit = false;  ///< v2 entry carrying eps_have/eps_want
  std::uint32_t eps_have = 0;
  std::uint32_t eps_want = 0;
  std::string dag_wire;
  std::string sched_wire;
};

SnapshotEntry parse_entry_line(const std::string& line) {
  SnapshotEntry entry;
  bool have_variant = false;
  bool have_model = false;
  std::istringstream tokens(line);
  std::string token;
  tokens >> token;  // consume "entry"
  while (tokens >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      throw SnapshotError("snapshot entry token without '=': " + token);
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "variant") {
      entry.variant = value;
      have_variant = true;
    } else if (key == "model") {
      try {
        entry.model = FaultModel::parse(value);
      } catch (const std::exception& e) {
        throw SnapshotError(std::string("snapshot entry model: ") + e.what());
      }
      have_model = true;
    } else if (key == "factor") {
      entry.factor = net::parse_wire_double(value);
    } else if (key == "rel") {
      entry.reliability = net::parse_wire_double(value);
    } else if (key == "repair_comms") {
      entry.repair_comms = parse_u32_field(value, key);
    } else if (key == "event_comms") {
      entry.event_comms = parse_u32_field(value, key);
    } else if (key == "degraded") {
      if (value != "0" && value != "1") {
        throw SnapshotError("snapshot entry field degraded must be 0 or 1: " + value);
      }
      entry.degraded = value == "1";
    } else if (key == "eps_have") {
      entry.eps_have = parse_u32_field(value, key);
      entry.have_deficit = true;
    } else if (key == "eps_want") {
      entry.eps_want = parse_u32_field(value, key);
      entry.have_deficit = true;
    } else {
      throw SnapshotError("snapshot entry has unknown field: " + key);
    }
  }
  if (!have_variant || !have_model) {
    throw SnapshotError("snapshot entry missing variant= or model=");
  }
  return entry;
}

/// Rebuilds and re-verifies one entry against the daemon's platform.
/// Returns nullptr (after logging) when verification fails.
std::shared_ptr<CachedPlacement> verify_entry(const SnapshotEntry& entry,
                                              const PlacementDaemon& daemon) {
  auto dag = std::make_shared<const Dag>(net::parse_dag_wire(entry.dag_wire));
  Schedule schedule = net::parse_schedule_wire(entry.sched_wire, *dag, daemon.platform());

  // v1 entries carry no deficit fields: they predate degradation, so they
  // claim the full guarantee their schedule was built for.
  const std::uint32_t eps_want =
      entry.have_deficit ? entry.eps_want : static_cast<std::uint32_t>(schedule.eps());
  const std::uint32_t eps_have =
      entry.have_deficit ? entry.eps_have : static_cast<std::uint32_t>(schedule.eps());
  // The flag and the deficit must agree — a snapshot claiming degraded=0
  // with eps_have < eps_want (or vice versa) is internally inconsistent,
  // which means format skew or tampering, not bit rot: reject the file.
  if (entry.degraded != (eps_have < eps_want)) {
    throw SnapshotError("snapshot entry degraded flag contradicts its deficit: degraded=" +
                        std::string(entry.degraded ? "1" : "0") +
                        " eps_have=" + std::to_string(eps_have) +
                        " eps_want=" + std::to_string(eps_want));
  }

  // Re-check the entry's reliability claim from scratch — a fresh oracle
  // compiled from the rebuilt schedule, driven through the batch kernel.
  // A degraded entry claims tolerance eps_have on the full platform (the
  // achieved_tolerance certificate in schedule/survival.hpp is what makes
  // that a plain count-tolerance claim), so it is re-proved exhaustively
  // at eps_have instead of the model's full guarantee.
  if (entry.degraded) {
    const FtCheckResult check = check_fault_tolerance(schedule, eps_have);
    if (!check.valid) {
      log_warn() << "snapshot entry dropped: variant=" << entry.variant
                 << " model=" << entry.model.to_string() << " claims degraded eps_have="
                 << eps_have << " but fails the exhaustive check";
      return nullptr;
    }
  } else if (entry.model.is_count()) {
    const FtCheckResult check = check_fault_tolerance(schedule, entry.model.eps());
    if (!check.valid) {
      log_warn() << "snapshot entry dropped: variant=" << entry.variant
                 << " model=" << entry.model.to_string()
                 << " fails the exhaustive eps-failure check";
      return nullptr;
    }
  } else {
    const ReliabilityEstimate estimate = schedule_reliability(schedule);
    // The estimator is deterministic (fixed seed), so the recomputed value
    // must reproduce the claim; the epsilon only absorbs reduction-order
    // noise if the snapshot crossed toolchains.
    if (estimate.reliability < entry.reliability - 1e-9) {
      log_warn() << "snapshot entry dropped: variant=" << entry.variant
                 << " model=" << entry.model.to_string() << " claims rel=" << entry.reliability
                 << " but recomputes to " << estimate.reliability;
      return nullptr;
    }
  }

  auto placement = std::make_shared<CachedPlacement>(std::move(dag), daemon.platform_ptr(),
                                                     std::move(schedule));
  placement->model = entry.model;
  placement->variant = entry.variant;
  placement->period_factor = entry.factor;
  placement->reliability = entry.reliability;
  placement->repair.success = true;
  placement->repair.added_comms = entry.repair_comms;
  placement->repair.reliability = entry.reliability;
  placement->event_repair_comms = entry.event_comms;
  placement->degraded = entry.degraded;
  placement->eps_have = eps_have;
  placement->eps_want = eps_want;
  return placement;
}

/// Directory part of `path` ("." when none) — for fsync after rename.
std::string dir_of(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// Writes `body` to `path` atomically: `<path>.tmp` + fsync + rename +
/// directory fsync. Throws SnapshotError on any failure (the tmp file is
/// unlinked best-effort on the way out).
void write_file_atomic(const std::string& path, const std::string& body) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw SnapshotError("cannot open cache snapshot for writing: " + tmp + " (" +
                        std::strerror(errno) + ")");
  }
  std::size_t off = 0;
  while (off < body.size()) {
    const ssize_t n = ::write(fd, body.data() + off, body.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      throw SnapshotError("cache snapshot write failed: " + tmp + " (" + std::strerror(err) +
                          ")");
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    throw SnapshotError("cache snapshot fsync failed: " + tmp + " (" + std::strerror(err) +
                        ")");
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    throw SnapshotError("cache snapshot rename failed: " + path + " (" + std::strerror(err) +
                        ")");
  }
  // Persist the rename itself; failure here is not a torn file, so log only.
  const int dfd = ::open(dir_of(path).c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    if (::fsync(dfd) != 0) {
      log_warn() << "cache snapshot directory fsync failed: " << dir_of(path) << " ("
                 << std::strerror(errno) << ")";
    }
    ::close(dfd);
  }
}

}  // namespace

SnapshotSaveStats save_cache_snapshot(const PlacementDaemon& daemon, const std::string& path) {
  std::string body(kMagic);
  body += '\n';
  body += "platform " + hex16(platform_fingerprint(daemon.platform())) + '\n';

  SnapshotSaveStats stats;
  for (const auto& placement : daemon.snapshot_entries()) {
    body += "entry variant=" + placement->variant + " model=" + placement->model.to_string() +
            " factor=" + net::wire_double(placement->period_factor) +
            " rel=" + net::wire_double(placement->reliability) +
            " repair_comms=" + std::to_string(placement->repair.added_comms) +
            " event_comms=" + std::to_string(placement->event_repair_comms) +
            " degraded=" + (placement->degraded ? "1" : "0") +
            " eps_have=" + std::to_string(placement->eps_have) +
            " eps_want=" + std::to_string(placement->eps_want) + '\n';
    body += "dag " + net::format_dag_wire(*placement->dag) + '\n';
    body += "sched " + net::format_schedule_wire(placement->schedule) + '\n';
    ++stats.entries;
  }
  body += "checksum " + hex16(Fnv64().str(body).value()) + '\n';

  write_file_atomic(path, body);
  stats.bytes = body.size();
  log_info() << "cache snapshot saved: " << path << " entries=" << stats.entries
             << " bytes=" << stats.bytes;
  return stats;
}

SnapshotLoadStats load_cache_snapshot(PlacementDaemon& daemon, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SnapshotError("cannot open cache snapshot: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return load_cache_snapshot_text(daemon, buffer.str(), path);
}

SnapshotLoadStats load_cache_snapshot_text(PlacementDaemon& daemon, const std::string& content,
                                           const std::string& path) {

  // Split into lines, tracking the byte offset of each, so the checksum
  // can be recomputed over exactly the bytes preceding its own line.
  std::vector<std::pair<std::size_t, std::string>> lines;  // (offset, text)
  std::size_t start = 0;
  while (start < content.size()) {
    std::size_t end = content.find('\n', start);
    if (end == std::string::npos) {
      throw SnapshotError("cache snapshot is truncated (missing final newline): " + path);
    }
    lines.emplace_back(start, content.substr(start, end - start));
    start = end + 1;
  }

  if (lines.size() < 3 || (lines[0].second != kMagic && lines[0].second != kMagicV1)) {
    throw SnapshotError("not a streamsched cache snapshot (bad header): " + path);
  }

  const auto& [checksum_offset, checksum_line] = lines.back();
  std::uint64_t claimed = 0;
  if (checksum_line.rfind("checksum ", 0) != 0 ||
      !parse_hex16(checksum_line.substr(9), claimed)) {
    throw SnapshotError("cache snapshot has no valid checksum line: " + path);
  }
  const std::uint64_t actual = Fnv64().str(content.substr(0, checksum_offset)).value();
  if (actual != claimed) {
    throw SnapshotError("cache snapshot checksum mismatch (corrupted or torn write): " + path);
  }

  std::uint64_t snapshot_platform = 0;
  if (lines[1].second.rfind("platform ", 0) != 0 ||
      !parse_hex16(lines[1].second.substr(9), snapshot_platform)) {
    throw SnapshotError("cache snapshot has no valid platform line: " + path);
  }
  const std::uint64_t live_platform = platform_fingerprint(daemon.platform());
  if (snapshot_platform != live_platform) {
    throw SnapshotError("cache snapshot was taken against a different platform (snapshot " +
                        hex16(snapshot_platform) + ", daemon " + hex16(live_platform) +
                        "): " + path);
  }

  SnapshotLoadStats stats;
  std::size_t i = 2;
  const std::size_t last = lines.size() - 1;  // checksum line
  while (i < last) {
    if (lines[i].second.rfind("entry ", 0) != 0) {
      throw SnapshotError("cache snapshot expected an entry line, got: " + lines[i].second);
    }
    if (i + 2 >= last || lines[i + 1].second.rfind("dag ", 0) != 0 ||
        lines[i + 2].second.rfind("sched ", 0) != 0) {
      throw SnapshotError("cache snapshot entry is missing its dag/sched lines");
    }
    SnapshotEntry entry = parse_entry_line(lines[i].second);
    entry.dag_wire = lines[i + 1].second.substr(4);
    entry.sched_wire = lines[i + 2].second.substr(6);
    i += 3;
    ++stats.entries;

    std::shared_ptr<CachedPlacement> placement;
    try {
      placement = verify_entry(entry, daemon);
    } catch (const net::WireError& e) {
      // Framing is intact (checksum passed) but the payload doesn't parse:
      // a format-version skew, not bit rot. Reject the file, not the entry.
      throw SnapshotError(std::string("cache snapshot entry does not parse: ") + e.what());
    }
    if (placement == nullptr) {
      ++stats.verify_failed;
      continue;
    }
    if (daemon.restore(placement)) {
      ++stats.restored;
    } else {
      ++stats.stale;
      log_warn() << "snapshot entry dropped: variant=" << entry.variant
                 << " model=" << entry.model.to_string()
                 << " does not survive the daemon's live failure set";
    }
  }

  log_info() << "cache snapshot loaded: " << path << " entries=" << stats.entries
             << " restored=" << stats.restored << " verify_failed=" << stats.verify_failed
             << " stale=" << stats.stale;
  return stats;
}

std::vector<SnapshotGeneration> list_snapshot_generations(const std::string& base) {
  std::vector<SnapshotGeneration> generations;
  const std::string dir = dir_of(base);
  const std::string stem =
      (base.rfind('/') == std::string::npos) ? base : base.substr(base.rfind('/') + 1);
  const std::string prefix = stem + ".g";

  if (DIR* dp = ::opendir(dir.c_str())) {
    while (const dirent* ent = ::readdir(dp)) {
      const std::string name = ent->d_name;
      if (name.rfind(prefix, 0) != 0 || name.size() == prefix.size()) continue;
      std::uint64_t seq = 0;
      bool numeric = true;
      for (std::size_t i = prefix.size(); i < name.size(); ++i) {
        if (name[i] < '0' || name[i] > '9') {
          numeric = false;
          break;
        }
        seq = seq * 10 + static_cast<std::uint64_t>(name[i] - '0');
      }
      if (!numeric) continue;  // e.g. a stale <base>.g<seq>.tmp from a crash
      // Rebuild the path from the caller's base so relative bases stay
      // relative ("cache.snap.g3", not "./cache.snap.g3").
      generations.push_back({seq, base + name.substr(stem.size())});
    }
    ::closedir(dp);
  }
  std::sort(generations.begin(), generations.end(),
            [](const SnapshotGeneration& a, const SnapshotGeneration& b) {
              return a.seq > b.seq;
            });

  // A bare legacy file under the base name loads last, as generation 0.
  struct stat st{};
  if (::stat(base.c_str(), &st) == 0 && S_ISREG(st.st_mode)) {
    generations.push_back({0, base});
  }
  return generations;
}

SnapshotSaveStats save_cache_generation(const PlacementDaemon& daemon, const std::string& base,
                                        std::size_t keep) {
  if (keep == 0) keep = 1;
  const std::vector<SnapshotGeneration> existing = list_snapshot_generations(base);
  std::uint64_t newest = 0;
  for (const auto& gen : existing) newest = std::max(newest, gen.seq);

  const std::uint64_t seq = newest + 1;
  const SnapshotSaveStats stats =
      save_cache_snapshot(daemon, base + ".g" + std::to_string(seq));

  // Prune beyond `keep`, oldest first, counting the one just written. The
  // legacy bare file (seq 0, no ".g" suffix) is pruned like any other once
  // enough rotated generations exist.
  std::size_t kept = 1;
  for (const auto& gen : existing) {
    if (kept < keep) {
      ++kept;
      continue;
    }
    if (::unlink(gen.path.c_str()) != 0 && errno != ENOENT) {
      log_warn() << "cache snapshot prune failed: " << gen.path << " ("
                 << std::strerror(errno) << ")";
    }
  }
  return stats;
}

GenerationLoadResult load_newest_cache_generation(PlacementDaemon& daemon,
                                                  const std::string& base) {
  GenerationLoadResult result;
  for (const SnapshotGeneration& gen : list_snapshot_generations(base)) {
    try {
      result.stats = load_cache_snapshot(daemon, gen.path);
      result.loaded = true;
      result.path = gen.path;
      return result;
    } catch (const SnapshotError& e) {
      ++result.rejected;
      log_warn() << "cache snapshot generation rejected (falling back): " << e.what();
    }
  }
  return result;
}

}  // namespace streamsched
