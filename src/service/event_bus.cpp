#include "service/event_bus.hpp"

namespace streamsched {

EventBus::SubscriptionId EventBus::subscribe(Handler handler) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const SubscriptionId id = next_id_++;
  handlers_.emplace_back(id, std::move(handler));
  return id;
}

bool EventBus::unsubscribe(SubscriptionId id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = handlers_.begin(); it != handlers_.end(); ++it) {
    if (it->first == id) {
      handlers_.erase(it);
      return true;
    }
  }
  return false;
}

void EventBus::publish(const ClusterEvent& event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++published_;
  for (const auto& [id, handler] : handlers_) handler(event);
}

std::uint64_t EventBus::events_published() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return published_;
}

}  // namespace streamsched
