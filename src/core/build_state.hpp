// Shared greedy construction machinery for the list schedulers.
//
// BuildState owns the schedule under construction plus the virtual
// timeline cursors (per-processor compute availability and one-port
// send/receive availability). Schedulers ask it to *evaluate* a candidate
// placement — which simulates the induced communications under greedy
// FCFS port reservation and checks the throughput condition (1) of the
// paper — and then *commit* the best candidate.
//
// Condition (1), for task t placed on P_u with period Δ:
//   Σ_u + E(t)/s_u <= Δ   (compute load)
//   C^I_u + Σ incoming    <= Δ   (receive port load)
//   C^O_h + outgoing_h    <= Δ   for every supplier processor h != u
// The lock-set part of condition (1) is enforced by the callers, who own
// the per-task locked processor sets.
#pragma once

#include <vector>

#include "core/options.hpp"
#include "graph/dag.hpp"
#include "platform/platform.hpp"
#include "schedule/schedule.hpp"

namespace streamsched {

class BuildState {
 public:
  BuildState(const Dag& dag, const Platform& platform, CopyId eps, double period);

  /// One planned supplier communication.
  struct SupplierUse {
    ReplicaRef src;
    EdgeId edge = kInvalidEdge;
    double comm_start = 0.0;
    double arrival = 0.0;  ///< src.finish for colocated suppliers
    bool remote = false;
  };

  /// A fully planned placement of one replica on one processor.
  struct Candidate {
    bool valid = false;  ///< loads satisfy condition (1)
    ProcId proc = kInvalidProc;
    double start = 0.0;
    double finish = 0.0;
    std::uint32_t stage = 1;
    std::vector<SupplierUse> suppliers;
  };

  /// Plans placing a fresh replica of `task` on `u`, supplied by
  /// `suppliers[i]` (a non-empty set of placed replicas of the i-th
  /// predecessor, in dag.predecessors(task) order). ANY-of semantics: the
  /// replica may start at the earliest arrival per predecessor; every
  /// listed communication is reserved on the ports and counted against the
  /// period budget.
  [[nodiscard]] Candidate evaluate(TaskId task, ProcId u,
                                   const std::vector<std::vector<ReplicaRef>>& suppliers) const;

  /// Applies a valid candidate: places (task, copy), records the supplier
  /// communications and advances the timeline cursors and load counters.
  void commit(TaskId task, CopyId copy, const Candidate& candidate);

  [[nodiscard]] bool hosts_copy_of(TaskId task, ProcId u) const;

  [[nodiscard]] const Schedule& schedule() const { return schedule_; }
  [[nodiscard]] Schedule take() && { return std::move(schedule_); }

  [[nodiscard]] const Dag& dag() const { return *dag_; }
  [[nodiscard]] const Platform& platform() const { return *platform_; }
  [[nodiscard]] double period() const { return schedule_.period(); }
  [[nodiscard]] std::size_t num_procs() const { return platform_->num_procs(); }

  /// Arrival-time estimate used to sort supplier replicas (the paper sorts
  /// B(t_i) by communication finish times on the links): source finish plus
  /// raw transfer time, ignoring port queueing.
  [[nodiscard]] double arrival_estimate(ReplicaRef src, EdgeId edge, ProcId dst) const;

 private:
  const Dag* dag_;
  const Platform* platform_;
  Schedule schedule_;
  std::vector<double> proc_free_;
  std::vector<double> send_free_;
  std::vector<double> recv_free_;
};

}  // namespace streamsched
