// Algorithm variants: "registry algorithm + bound parameter set", the unit
// the whole experiment layer consumes.
//
// A variant names a registered scheduler and binds values for some of its
// declared tunables (core/param_space.hpp). The textual grammar is
//
//   rltf                       the plain algorithm (defaults)
//   rltf[chunk=4,rule1=off]    algorithm with bound parameters
//
// and round-trips: `AlgoVariant::parse(v.name()) == v`. Series keys and
// display labels in sweeps/figures derive from the variant, so
// `--algo='rltf[chunk=4,rule1=off],ltf'` produces distinctly-labeled
// series end to end without any bench-local option poking.
#pragma once

#include <string>
#include <vector>

#include "core/param_space.hpp"
#include "core/registry.hpp"

namespace streamsched {

class AlgoVariant {
 public:
  AlgoVariant() = default;

  /// The plain algorithm — no parameters bound.
  /*implicit*/ AlgoVariant(const Scheduler& algo) : algo_(&algo) {}

  /// Algorithm with a parameter set. Every bound name must be declared in
  /// `algo.space` — a set built against another algorithm's space throws
  /// std::invalid_argument here (its values would otherwise be silently
  /// ignored by the algorithm while still decorating the series label).
  AlgoVariant(const Scheduler& algo, ParamSet params);

  /// Implicit spec parsing so algorithm lists read naturally:
  /// `config.algos = {"ltf", "rltf[chunk=4]"}`. Throws like `parse`.
  /*implicit*/ AlgoVariant(const std::string& spec);
  /*implicit*/ AlgoVariant(const char* spec);

  /// Parses `name` or `name[param=value,...]` against the registry and the
  /// algorithm's declared space. Throws std::invalid_argument on unknown
  /// algorithms, unknown parameters, syntax errors and out-of-range
  /// values, each diagnostic naming the offending spec.
  [[nodiscard]] static AlgoVariant parse(const std::string& spec);

  /// The underlying registry entry. Throws std::logic_error on a
  /// default-constructed (empty) variant.
  [[nodiscard]] const Scheduler& algo() const;

  [[nodiscard]] const ParamSet& params() const { return params_; }
  [[nodiscard]] bool valid() const { return algo_ != nullptr; }

  /// Canonical spec / series key: `rltf[chunk=4,rule1=off]`, or the bare
  /// registry name when no parameters are bound (so unparameterized
  /// variants key series exactly like the pre-variant pipeline).
  [[nodiscard]] std::string name() const;

  /// Display label: `R-LTF[chunk=4,rule1=off]`, or the bare label.
  [[nodiscard]] std::string label() const;

  /// The caller's options with the algorithm's default tweaks applied,
  /// then the bound parameters — one validated step replacing scattered
  /// field pokes (parameters win over tweaks).
  [[nodiscard]] SchedulerOptions adjusted(SchedulerOptions options) const;

  /// Runs the algorithm with the adjusted options.
  [[nodiscard]] ScheduleResult schedule(const Dag& dag, const Platform& platform,
                                        const SchedulerOptions& options) const;

  /// Same algorithm, same bound (name, value) pairs.
  friend bool operator==(const AlgoVariant& a, const AlgoVariant& b) {
    return a.algo_ == b.algo_ && a.params_ == b.params_;
  }

 private:
  const Scheduler* algo_ = nullptr;  ///< registry entries are never removed
  ParamSet params_;
};

/// Splits a comma-separated variant list on top-level commas only —
/// commas inside `[...]` belong to the spec: `"rltf[chunk=4,rule1=off],ltf"`
/// yields two items. Empty items are dropped. Throws std::invalid_argument
/// on unbalanced brackets.
[[nodiscard]] std::vector<std::string> split_variant_specs(const std::string& csv);

/// Parses a comma-separated variant list (`split_variant_specs` +
/// `AlgoVariant::parse`; `all` expands to every registered algorithm).
[[nodiscard]] std::vector<AlgoVariant> parse_variants(const std::string& csv);

/// Same on an already-split spec list.
[[nodiscard]] std::vector<AlgoVariant> parse_variants(const std::vector<std::string>& specs);

/// What `--algo` selected. `help` is the explicit help-requested signal:
/// when set, the registry listing (with each algorithm's declared
/// parameter space) has been printed and `variants` is empty — the caller
/// should exit successfully instead of running.
struct AlgoSelection {
  std::vector<AlgoVariant> variants;
  bool help = false;

  [[nodiscard]] bool help_requested() const { return help; }
};

class Cli;

/// Registers and reads a `--algo=<spec>[,<spec>...]` flag (default:
/// `fallback_csv`, env STREAMSCHED_ALGO) and resolves it against the
/// registry. Specs may bind declared parameters (`rltf[chunk=4,rule1=off]`);
/// `--algo=all` selects every registered algorithm; `--algo=help` prints
/// the registry listing with each algorithm's parameter space and returns
/// `help = true`. Unknown algorithms/parameters and invalid values throw
/// std::invalid_argument.
[[nodiscard]] AlgoSelection schedulers_from_cli(Cli& cli, const std::string& fallback_csv);

}  // namespace streamsched
