#include "core/registry.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/heft.hpp"
#include "core/ltf.hpp"
#include "core/rltf.hpp"
#include "core/stage_pack.hpp"

namespace streamsched {

SchedulerRegistry::SchedulerRegistry() {
  add({"fault_free", "FaultFree",
       "R-LTF without replication (eps forced to 0): the paper's safe-system reference",
       [](const Dag& dag, const Platform& platform, const SchedulerOptions& options) {
         return fault_free_schedule(dag, platform, options.period);
       },
       [](SchedulerOptions& options) {
         options.eps = 0;
         options.fault_model.reset();
         options.repair = false;
       },
       ParamSpace{}});
  add({"ltf", "LTF",
       "top-down iso-level list scheduling with one-to-one replication (Algorithm 4.1)",
       ltf_schedule, {}, ltf_param_space()});
  add({"rltf", "R-LTF",
       "bottom-up LTF with stage-preserving merges and chained suppliers (paper §4.2)",
       rltf_schedule, {}, rltf_param_space()});
  add({"heft", "HEFT",
       "upward-rank EFT list scheduling, naive all-to-all replication (baseline [9])",
       heft_schedule, {}, heft_param_space()});
  add({"stage_pack", "StagePack",
       "topological stage packing with disjoint lane replication (survey baselines)",
       stage_pack_schedule, {}, stage_pack_param_space()});
}

SchedulerRegistry& SchedulerRegistry::instance() {
  static SchedulerRegistry registry;
  return registry;
}

void SchedulerRegistry::add(Scheduler scheduler) {
  if (scheduler.name.empty()) {
    throw std::invalid_argument("scheduler registration needs a non-empty name");
  }
  if (!scheduler.fn) {
    throw std::invalid_argument("scheduler '" + scheduler.name + "' has no function");
  }
  if (find(scheduler.name) != nullptr) {
    throw std::invalid_argument("scheduler '" + scheduler.name + "' is already registered");
  }
  entries_.push_back(std::move(scheduler));
}

const Scheduler* SchedulerRegistry::find(const std::string& name) const noexcept {
  for (const Scheduler& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

const Scheduler& SchedulerRegistry::at(const std::string& name) const {
  if (const Scheduler* entry = find(name)) return *entry;
  std::ostringstream os;
  os << "unknown scheduler '" << name << "'; registered:";
  for (const Scheduler& entry : entries_) os << ' ' << entry.name;
  throw std::invalid_argument(os.str());
}

std::vector<std::string> SchedulerRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Scheduler& entry : entries_) out.push_back(entry.name);
  return out;
}

const Scheduler& find_scheduler(const std::string& name) {
  return SchedulerRegistry::instance().at(name);
}

const Scheduler* try_find_scheduler(const std::string& name) {
  return SchedulerRegistry::instance().find(name);
}

std::vector<const Scheduler*> resolve_schedulers(const std::vector<std::string>& names) {
  std::vector<const Scheduler*> out;
  out.reserve(names.size());
  for (const std::string& name : names) out.push_back(&find_scheduler(name));
  return out;
}

std::string registry_listing() {
  std::ostringstream os;
  os << "registered schedulers (select with --algo=<name>[<param>=<value>,...]):\n";
  for (const Scheduler& entry : SchedulerRegistry::instance().all()) {
    os << "  " << entry.name;
    for (std::size_t pad = entry.name.size(); pad < 12; ++pad) os << ' ';
    os << "[" << entry.label << "] " << entry.summary << '\n';
    os << entry.space.describe("      ");
  }
  return os.str();
}

}  // namespace streamsched
