// Bicriteria search extensions (paper §6, "symmetric problems").
//
// The paper's algorithms take the period as an input; these helpers invert
// the problem: find the minimal feasible period for a given ε (binary
// search over Δ, exploiting that feasibility is monotone in Δ), and find
// the maximal supported failure count for a given period and latency
// budget (linear scan over ε, which is small).
#pragma once

#include <optional>

#include "core/registry.hpp"

namespace streamsched {

struct MinPeriodResult {
  bool found = false;
  double period = 0.0;
  std::optional<Schedule> schedule;
  std::uint32_t evaluations = 0;  ///< scheduler invocations spent
};

/// Analytic period lower bound: every task must fit on the fastest
/// processor and the replicated total work must fit the platform.
[[nodiscard]] double period_lower_bound(const Dag& dag, const Platform& platform, CopyId eps);

/// Fault-model-aware overload: the replication degree comes from the
/// options' effective fault model (count: eps; probabilistic: derived from
/// the platform's failure probabilities).
[[nodiscard]] double period_lower_bound(const Dag& dag, const Platform& platform,
                                        const SchedulerOptions& options);

/// Binary search for the smallest period at which `scheduler` succeeds,
/// to relative tolerance `rel_tol`. `base` supplies the fault model / ε
/// and the remaining options; its period field is ignored. The bracket is
/// seeded from period_lower_bound() and tightened by the exponential
/// probe, so periods already known infeasible are never re-evaluated.
[[nodiscard]] MinPeriodResult find_min_period(const Dag& dag, const Platform& platform,
                                              const SchedulerOptions& base,
                                              const SchedulerFn& scheduler,
                                              double rel_tol = 1e-3);

/// Convenience: minimal feasible period under an explicit fault model
/// (e.g. FaultModel::probabilistic(R) for a reliability target).
[[nodiscard]] MinPeriodResult find_min_period(const Dag& dag, const Platform& platform,
                                              const FaultModel& model,
                                              const SchedulerOptions& base,
                                              const SchedulerFn& scheduler,
                                              double rel_tol = 1e-3);

struct MaxFailuresResult {
  bool found = false;   ///< at least ε = 0 feasible
  CopyId eps = 0;       ///< largest feasible ε
  std::optional<Schedule> schedule;
};

/// Largest ε (up to m−1) for which `scheduler` succeeds at the given
/// period with latency bound (2S−1)Δ <= latency_cap (use infinity for no
/// latency requirement).
[[nodiscard]] MaxFailuresResult find_max_failures(const Dag& dag, const Platform& platform,
                                                  double period, double latency_cap,
                                                  const SchedulerOptions& base,
                                                  const SchedulerFn& scheduler);

struct MaxReliabilityResult {
  bool found = false;  ///< at least one replication degree was feasible
  CopyId eps = 0;      ///< replication degree of the best schedule
  double reliability = 0.0;  ///< its estimated schedule reliability
  std::optional<Schedule> schedule;
};

/// Maximal schedule reliability achievable at the given period and latency
/// budget on a platform with per-processor failure probabilities: scans
/// replication degrees ε = 0 .. m−1 (repair enabled), estimates each
/// schedule's reliability and keeps the most reliable one whose latency
/// bound fits `latency_cap`.
[[nodiscard]] MaxReliabilityResult find_max_reliability(
    const Dag& dag, const Platform& platform, double period, double latency_cap,
    const SchedulerOptions& base, const SchedulerFn& scheduler,
    const ReliabilityOptions& reliability_options = {});

}  // namespace streamsched
