// Bicriteria search extensions (paper §6, "symmetric problems").
//
// The paper's algorithms take the period as an input; these helpers invert
// the problem: find the minimal feasible period for a given ε (binary
// search over Δ, exploiting that feasibility is monotone in Δ), and find
// the maximal supported failure count for a given period and latency
// budget (linear scan over ε, which is small).
#pragma once

#include <optional>

#include "core/registry.hpp"

namespace streamsched {

struct MinPeriodResult {
  bool found = false;
  double period = 0.0;
  std::optional<Schedule> schedule;
  std::uint32_t evaluations = 0;  ///< scheduler invocations spent
};

/// Analytic period lower bound: every task must fit on the fastest
/// processor and the replicated total work must fit the platform.
[[nodiscard]] double period_lower_bound(const Dag& dag, const Platform& platform, CopyId eps);

/// Binary search for the smallest period at which `scheduler` succeeds,
/// to relative tolerance `rel_tol`. `base` supplies ε and the remaining
/// options; its period field is ignored.
[[nodiscard]] MinPeriodResult find_min_period(const Dag& dag, const Platform& platform,
                                              const SchedulerOptions& base,
                                              const SchedulerFn& scheduler,
                                              double rel_tol = 1e-3);

struct MaxFailuresResult {
  bool found = false;   ///< at least ε = 0 feasible
  CopyId eps = 0;       ///< largest feasible ε
  std::optional<Schedule> schedule;
};

/// Largest ε (up to m−1) for which `scheduler` succeeds at the given
/// period with latency bound (2S−1)Δ <= latency_cap (use infinity for no
/// latency requirement).
[[nodiscard]] MaxFailuresResult find_max_failures(const Dag& dag, const Platform& platform,
                                                  double period, double latency_cap,
                                                  const SchedulerOptions& base,
                                                  const SchedulerFn& scheduler);

}  // namespace streamsched
