#include "core/heft.hpp"

#include <algorithm>
#include <numeric>

#include "core/build_state.hpp"
#include "graph/levels.hpp"
#include "schedule/metrics.hpp"
#include "util/assert.hpp"

namespace streamsched {

ScheduleResult heft_schedule(const Dag& dag, const Platform& platform,
                             const SchedulerOptions& raw_options) {
  SS_REQUIRE(dag.num_tasks() > 0, "cannot schedule an empty graph");
  const SchedulerOptions options = raw_options.resolved(platform, dag.num_tasks());
  SS_REQUIRE(options.eps < platform.num_procs(),
             "eps must be smaller than the processor count");

  const CopyId copies = options.eps + 1;
  BuildState state(dag, platform, options.eps, options.period);

  // Upward rank = bottom level with averaged costs; schedule in
  // non-increasing rank order (which is a topological order).
  const auto rank = bottom_levels(dag, platform);
  std::vector<TaskId> order(dag.num_tasks());
  std::iota(order.begin(), order.end(), TaskId{0});
  std::stable_sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
    if (rank[a] != rank[b]) return rank[a] > rank[b];
    return a < b;
  });

  for (TaskId t : order) {
    const auto preds = dag.predecessors(t);
    std::vector<std::vector<ReplicaRef>> suppliers(preds.size());
    for (std::size_t i = 0; i < preds.size(); ++i) {
      for (CopyId c = 0; c < copies; ++c) suppliers[i].push_back({preds[i], c});
    }
    for (CopyId n = 0; n < copies; ++n) {
      BuildState::Candidate best;
      for (ProcId u = 0; u < platform.num_procs(); ++u) {
        if (state.hosts_copy_of(t, u)) continue;
        const BuildState::Candidate cand = state.evaluate(t, u, suppliers);
        if (!cand.valid) continue;
        if (!best.valid || cand.finish < best.finish) best = cand;
      }
      if (!best.valid) {
        return ScheduleResult::failure("HEFT: no processor can host task '" + dag.name(t) +
                                       "' within period " + std::to_string(options.period));
      }
      state.commit(t, n, best);
    }
  }

  Schedule schedule = std::move(state).take();
  recompute_stages(schedule);

  ScheduleResult result;
  if (options.repair) {
    result.repair = repair_for_model(schedule, options.model());
  }
  result.schedule.emplace(std::move(schedule));
  return result;
}

ParamSpace heft_param_space() { return scheduler_base_params(); }

}  // namespace streamsched
