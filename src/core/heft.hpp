// HEFT baseline (Topcuoglu et al. [9]) adapted to the one-port model.
//
// Classic list scheduling by descending upward rank (bottom level) with
// earliest-finish-time processor selection — no replication and, by
// default, no throughput constraint. Included as the reference
// makespan-oriented scheduler: it shows what happens to the period and the
// pipelined latency when a scheduler optimizes the critical path only
// (the paper's motivation for stage-aware mapping). When a finite period
// is supplied in the options, processors violating condition (1) are
// skipped, turning it into a throughput-feasible list scheduler.
//
// Differences from the original HEFT: no insertion-based backfilling (the
// one-port builder appends greedily, like the other schedulers here), and
// eps > 0 simply replicates the EFT choice onto the next-best processors
// with all-to-all supplier wiring (naive active replication) — useful as
// an ablation against the one-to-one scheme.
#pragma once

#include "core/options.hpp"
#include "core/param_space.hpp"
#include "graph/dag.hpp"
#include "platform/platform.hpp"

namespace streamsched {

[[nodiscard]] ScheduleResult heft_schedule(const Dag& dag, const Platform& platform,
                                           const SchedulerOptions& options);

/// HEFT's declared tunables: the shared base parameters only (replication
/// is the naive all-to-all scheme; there is no chunk/one-to-one knob).
[[nodiscard]] ParamSpace heft_param_space();

}  // namespace streamsched
