// Typed parameter spaces: every scheduler tunable is *declared* — name,
// kind, default, range/choices, doc string — instead of living as an
// ad-hoc field each experiment pokes by hand.
//
// A `ParamSpace` is the declaration (owned by a registry `Scheduler`
// entry); a `ParamSet` binds concrete values, validated against the space
// at bind time, and applies them to `SchedulerOptions` in one step. The
// textual grammar is `name=value` pairs joined by commas — the inside of
// an `AlgoVariant` spec like `rltf[chunk=4,rule1=off]` (core/variant.hpp).
// `enumerate` expands declared axes into the cartesian grid of ParamSets,
// so ablation benches sweep any declared knob without bespoke loops over
// option fields.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <variant>
#include <vector>

namespace streamsched {

struct SchedulerOptions;

enum class ParamKind { kBool, kInt, kReal, kEnum };

/// Value of one bound parameter. The alternative index matches ParamKind.
using ParamValue = std::variant<bool, std::int64_t, double, std::string>;

/// Kind of a bound value (bool/int/real/enum by alternative).
[[nodiscard]] ParamKind param_kind(const ParamValue& value);

/// Strips surrounding spaces/tabs — the whitespace rule shared by the
/// param binding grammar and the variant spec grammar (core/variant.cpp).
[[nodiscard]] std::string trim_spec(const std::string& text);

/// Canonical text of a value: `on`/`off` for bools, shortest round-trip
/// decimal for ints/reals, the choice itself for enums.
[[nodiscard]] std::string param_value_text(const ParamValue& value);

/// Declaration of one tunable: what it is called, what values it admits,
/// and how a bound value lands in SchedulerOptions.
struct ParamDesc {
  using Setter = std::function<void(SchedulerOptions&, const ParamValue&)>;

  std::string name;  ///< grammar key, e.g. "chunk" (lowercase, stable)
  ParamKind kind = ParamKind::kBool;
  std::string doc;  ///< one-line description for `--algo=help`
  ParamValue def;   ///< default value (what the plain algorithm uses)
  std::int64_t int_min = 0, int_max = 0;  ///< kInt: inclusive range
  double real_min = 0.0, real_max = 0.0;  ///< kReal: range (see below)
  /// kReal: the upper bound is excluded — "[lo, hi)". Declares knobs whose
  /// limit value is not admissible (e.g. target reliability R < 1) so the
  /// grammar rejects it at bind time instead of failing at apply time.
  bool real_hi_exclusive = false;
  std::vector<std::string> choices;  ///< kEnum: admissible values
  Setter apply;  ///< writes the value into SchedulerOptions

  /// "bool", "int in [0, 4096]", "enum {a, b}" — for listings/diagnostics.
  [[nodiscard]] std::string signature() const;
};

/// Ordered set of parameter declarations. Built once per algorithm (see
/// the registry); the declaration order is the canonical print order of
/// every ParamSet validated against it.
class ParamSpace {
 public:
  ParamSpace& add_bool(std::string name, bool def, std::string doc, ParamDesc::Setter apply);
  ParamSpace& add_int(std::string name, std::int64_t def, std::int64_t min, std::int64_t max,
                      std::string doc, ParamDesc::Setter apply);
  /// `hi_exclusive` admits [min, max) instead of [min, max].
  ParamSpace& add_real(std::string name, double def, double min, double max, std::string doc,
                       ParamDesc::Setter apply, bool hi_exclusive = false);
  ParamSpace& add_enum(std::string name, std::string def, std::vector<std::string> choices,
                       std::string doc, ParamDesc::Setter apply);

  /// Appends every declaration of `other` (duplicate names throw) — how
  /// algorithm spaces pull in the shared base tunables.
  ParamSpace& include(const ParamSpace& other);

  [[nodiscard]] bool empty() const { return params_.empty(); }
  [[nodiscard]] std::size_t size() const { return params_.size(); }
  [[nodiscard]] const std::vector<ParamDesc>& params() const { return params_; }

  /// nullptr when no parameter with that name is declared.
  [[nodiscard]] const ParamDesc* find(const std::string& name) const noexcept;

  /// Throws std::invalid_argument naming the declared parameters when
  /// `name` is unknown (`context` prefixes the message, e.g. "rltf").
  [[nodiscard]] const ParamDesc& at(const std::string& name,
                                    const std::string& context = "") const;

  /// Declaration index of `name` (used for canonical ordering); throws
  /// like `at`.
  [[nodiscard]] std::size_t index_of(const std::string& name,
                                     const std::string& context = "") const;

  /// Parses and range-checks one textual value for the declared parameter.
  /// Bools accept on/off, true/false, yes/no, 1/0. Throws
  /// std::invalid_argument with the expected signature on mismatch.
  [[nodiscard]] ParamValue parse_value(const ParamDesc& desc, const std::string& text,
                                       const std::string& context = "") const;

  /// Kind- and range-checks an already-typed value (ints may be given for
  /// real parameters and are widened). Returns the normalized value.
  [[nodiscard]] ParamValue check_value(const ParamDesc& desc, ParamValue value,
                                       const std::string& context = "") const;

  /// Multi-line human-readable listing of every declared parameter,
  /// `indent`-prefixed — the per-algorithm block of `--algo=help`.
  [[nodiscard]] std::string describe(const std::string& indent) const;

 private:
  ParamSpace& add(ParamDesc desc);

  std::vector<ParamDesc> params_;
};

/// A set of validated (parameter, value) bindings. Binding requires the
/// space (validation + canonical ordering); the set itself stays
/// self-contained afterwards — it carries copies of the setters, so it can
/// outlive the space and `apply` needs no registry lookup.
class ParamSet {
 public:
  [[nodiscard]] bool empty() const { return bindings_.empty(); }
  [[nodiscard]] std::size_t size() const { return bindings_.size(); }

  /// Parses `text` for the declared parameter `name` and binds the value.
  /// Throws std::invalid_argument on unknown names, syntax errors,
  /// out-of-range values, and rebinding an already-bound parameter.
  void set(const ParamSpace& space, const std::string& name, const std::string& text,
           const std::string& context = "");

  /// Binds an already-typed value (kind- and range-checked); same errors.
  void set(const ParamSpace& space, const std::string& name, const ParamValue& value,
           const std::string& context = "");

  /// String literals parse as text (disambiguates from the ParamValue
  /// overload, whose bool alternative would otherwise capture char*).
  void set(const ParamSpace& space, const std::string& name, const char* text,
           const std::string& context = "") {
    set(space, name, std::string(text), context);
  }

  /// nullptr when `name` is not bound.
  [[nodiscard]] const ParamValue* find(const std::string& name) const noexcept;

  /// The bound parameter names in canonical (declaration) order.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Canonical text `name=value,name=value` in space declaration order;
  /// "" when empty. `ParamSet::parse(space, set.to_string())` round-trips.
  [[nodiscard]] std::string to_string() const;

  /// Applies every binding to `options` — the one validated step replacing
  /// scattered field pokes (values were checked at bind time).
  void apply(SchedulerOptions& options) const;

  /// Parses a comma-separated binding list, e.g. "chunk=4,rule1=off".
  [[nodiscard]] static ParamSet parse(const ParamSpace& space, const std::string& csv,
                                      const std::string& context = "");

  /// Equality on the bound (name, value) pairs.
  friend bool operator==(const ParamSet& a, const ParamSet& b);

 private:
  struct Binding {
    std::size_t index = 0;  ///< declaration index in the space
    std::string name;
    ParamValue value;
    ParamDesc::Setter apply;
  };

  std::vector<Binding> bindings_;  ///< sorted by declaration index
};

/// The tunables every replication-capable scheduler shares — typed
/// declarations of the SchedulerOptions fields `eps` (replication degree,
/// pins the count fault model), `R` (target schedule reliability of the
/// probabilistic fault model; 0 keeps the count model) and `repair` (the
/// fault-tolerance repair pass). Algorithm spaces extend this via
/// `ParamSpace::include` (see each core/<algo>.hpp).
[[nodiscard]] ParamSpace scheduler_base_params();

/// One enumeration axis: a declared parameter and the values to sweep.
struct ParamAxis {
  std::string name;
  std::vector<ParamValue> values;
};

/// Axis builders (values are validated later, in `enumerate`).
[[nodiscard]] ParamAxis bool_axis(std::string name);  ///< {on, off}
[[nodiscard]] ParamAxis int_axis(std::string name, std::vector<std::int64_t> values);
[[nodiscard]] ParamAxis real_axis(std::string name, std::vector<double> values);
[[nodiscard]] ParamAxis enum_axis(std::string name, std::vector<std::string> values);

/// Cartesian grid over the axes, validated against the space: one ParamSet
/// per combination, the last axis varying fastest. No axes yields the
/// single empty set (the algorithm's defaults). Throws
/// std::invalid_argument on unknown axis names, duplicate axes, empty
/// axes, and out-of-range values.
[[nodiscard]] std::vector<ParamSet> enumerate(const ParamSpace& space,
                                              const std::vector<ParamAxis>& axes,
                                              const std::string& context = "");

}  // namespace streamsched
