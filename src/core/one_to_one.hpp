// The one-to-one mapping procedure (paper Algorithm 4.2).
//
// While every predecessor of the current task still has replicas on
// *singleton* processors (processors hosting exactly one replica over all
// predecessors of the task), a fresh replica of the task can be wired to
// exactly one supplier replica per predecessor. Supplier lists are sorted
// by communication finish time towards the candidate processor, heads are
// consumed after each placement, and chosen processors are locked — which
// keeps replica chains processor-disjoint and the communication count near
// the e(ε+1) lower bound instead of (ε+1)²e.
#pragma once

#include <optional>
#include <vector>

#include "core/build_state.hpp"

namespace streamsched {

/// Per-task state of the one-to-one procedure: the remaining singleton
/// supplier replicas per predecessor (B(t_i) in the paper), θ and Z.
struct OneToOneContext {
  std::vector<std::vector<ReplicaRef>> remaining;
  std::uint32_t theta = 0;  ///< how many replicas can be mapped one-to-one
  std::uint32_t used = 0;   ///< Z: how many have been so far

  [[nodiscard]] bool available() const { return used < theta; }
};

/// Builds the context for `task`: identifies singleton processors over the
/// replicas of all predecessors and sets θ = min_i |B(t_i)| (θ = ε+1 for
/// entry tasks, where one-to-one degenerates to plain spread placement).
[[nodiscard]] OneToOneContext make_one_to_one_context(const BuildState& state, TaskId task);

struct OneToOneChoice {
  BuildState::Candidate candidate;
  /// Chosen head replica per predecessor (parallel to dag.predecessors).
  std::vector<ReplicaRef> heads;
};

/// Plans one one-to-one placement: for every unlocked feasible processor,
/// picks per predecessor the remaining replica with the earliest estimated
/// communication finish, and keeps the (processor, heads) pair with the
/// earliest task finish time. Returns nullopt when no processor satisfies
/// condition (1).
[[nodiscard]] std::optional<OneToOneChoice> plan_one_to_one(
    const BuildState& state, TaskId task, const OneToOneContext& context,
    const std::vector<bool>& locked);

/// Removes the used heads from the remaining lists and increments Z.
void consume_heads(OneToOneContext& context, const std::vector<ReplicaRef>& heads);

}  // namespace streamsched
