#include "core/fingerprint.hpp"

#include "core/variant.hpp"

namespace streamsched {

std::uint64_t dag_fingerprint(const Dag& dag) {
  Fnv64 h;
  h.u64(dag.num_tasks());
  for (TaskId t = 0; t < dag.num_tasks(); ++t) h.f64(dag.work(t));
  h.u64(dag.num_edges());
  for (EdgeId e = 0; e < dag.num_edges(); ++e) {
    const Dag::Edge& edge = dag.edge(e);
    h.u64(edge.src).u64(edge.dst).f64(edge.volume);
  }
  return h.value();
}

std::uint64_t platform_fingerprint(const Platform& platform) {
  Fnv64 h;
  const std::size_t m = platform.num_procs();
  h.u64(m);
  for (ProcId u = 0; u < m; ++u) h.f64(platform.speed(u));
  for (ProcId a = 0; a < m; ++a) {
    for (ProcId b = 0; b < m; ++b) h.f64(platform.unit_delay(a, b));
  }
  for (ProcId u = 0; u < m; ++u) h.f64(platform.failure_prob(u));
  return h.value();
}

std::uint64_t variant_fingerprint(const AlgoVariant& variant) {
  return Fnv64().str(variant.name()).value();
}

std::uint64_t fault_model_fingerprint(const FaultModel& model) {
  return Fnv64().str(model.to_string()).value();
}

}  // namespace streamsched
