#include "core/fingerprint.hpp"

#include "core/variant.hpp"
#include "schedule/schedule.hpp"

namespace streamsched {

std::uint64_t dag_fingerprint(const Dag& dag) {
  Fnv64 h;
  h.u64(dag.num_tasks());
  for (TaskId t = 0; t < dag.num_tasks(); ++t) h.f64(dag.work(t));
  h.u64(dag.num_edges());
  for (EdgeId e = 0; e < dag.num_edges(); ++e) {
    const Dag::Edge& edge = dag.edge(e);
    h.u64(edge.src).u64(edge.dst).f64(edge.volume);
  }
  return h.value();
}

std::uint64_t platform_fingerprint(const Platform& platform) {
  Fnv64 h;
  const std::size_t m = platform.num_procs();
  h.u64(m);
  for (ProcId u = 0; u < m; ++u) h.f64(platform.speed(u));
  for (ProcId a = 0; a < m; ++a) {
    for (ProcId b = 0; b < m; ++b) h.f64(platform.unit_delay(a, b));
  }
  for (ProcId u = 0; u < m; ++u) h.f64(platform.failure_prob(u));
  return h.value();
}

std::uint64_t variant_fingerprint(const AlgoVariant& variant) {
  return Fnv64().str(variant.name()).value();
}

std::uint64_t fault_model_fingerprint(const FaultModel& model) {
  return Fnv64().str(model.to_string()).value();
}

std::uint64_t schedule_fingerprint(const Schedule& schedule) {
  Fnv64 h;
  h.u64(schedule.eps()).f64(schedule.period());
  for (TaskId t = 0; t < schedule.dag().num_tasks(); ++t) {
    for (CopyId c = 0; c < schedule.copies(); ++c) {
      const ReplicaRef r{t, c};
      if (!schedule.is_placed(r)) {
        h.u64(0);
        continue;
      }
      const PlacedReplica& p = schedule.placed(r);
      h.u64(1).u64(p.proc).f64(p.start).f64(p.finish).u64(p.stage);
    }
  }
  h.u64(schedule.comms().size());
  for (const CommRecord& comm : schedule.comms()) {
    h.u64(comm.edge)
        .u64(comm.src.task)
        .u64(comm.src.copy)
        .u64(comm.dst.task)
        .u64(comm.dst.copy)
        .f64(comm.start)
        .f64(comm.finish)
        .u64(comm.repair ? 1 : 0);
  }
  return h.value();
}

}  // namespace streamsched
