// LTF — Latency, Throughput, Failures (paper Algorithm 4.1).
//
// Top-down iso-level list scheduling: repeatedly selects a chunk β of up to
// B ready tasks with the highest priorities tl + bl, then places replica
// levels N = 0..ε across the chunk (replica-major order, for load balance,
// as in Iso-Level CAFT [1]). Each replica is placed either by the
// one-to-one mapping procedure (while singleton supplier replicas remain)
// or by a fallback that picks the feasible processor with minimum finish
// time; fallback replicas receive from *all* replicas of each predecessor.
//
// Processor selection respects condition (1): the compute load and both
// port loads must stay within the period, and the processor must not be
// locked for the current task. When no unlocked processor qualifies, the
// lock constraint is relaxed (at the price of extra communications); when
// the throughput constraint itself cannot be met, LTF *fails* — which the
// paper observes on the Figure 2 example with m = 8.
#pragma once

#include "core/options.hpp"
#include "core/param_space.hpp"
#include "graph/dag.hpp"
#include "platform/platform.hpp"

namespace streamsched {

[[nodiscard]] ScheduleResult ltf_schedule(const Dag& dag, const Platform& platform,
                                          const SchedulerOptions& options);

/// LTF's declared tunables: `chunk` (iso-level chunk size B), `one_to_one`
/// (the one-to-one mapping procedure), plus the shared base parameters.
[[nodiscard]] ParamSpace ltf_param_space();

}  // namespace streamsched
