#include "core/ltf.hpp"

#include <algorithm>
#include <queue>

#include "core/build_state.hpp"
#include "core/one_to_one.hpp"
#include "graph/levels.hpp"
#include "schedule/metrics.hpp"
#include "util/assert.hpp"

namespace streamsched {

namespace {

// Ready list ordered by priority (descending), ties by task id (ascending)
// for determinism. H(α) pops the head.
struct ReadyEntry {
  double priority;
  TaskId task;

  bool operator<(const ReadyEntry& other) const {
    if (priority != other.priority) return priority < other.priority;
    return task > other.task;
  }
};
using ReadyList = std::priority_queue<ReadyEntry>;

// Minimum-finish-time placement over feasible processors; `allowed`
// filters candidate processors. Returns an invalid candidate if none fits.
BuildState::Candidate best_feasible(const BuildState& state, TaskId task,
                                    const std::vector<std::vector<ReplicaRef>>& suppliers,
                                    const std::vector<bool>& allowed) {
  BuildState::Candidate best;
  for (ProcId u = 0; u < state.num_procs(); ++u) {
    if (!allowed[u]) continue;
    if (state.hosts_copy_of(task, u)) continue;
    const BuildState::Candidate cand = state.evaluate(task, u, suppliers);
    if (!cand.valid) continue;
    if (!best.valid || cand.finish < best.finish) best = cand;
  }
  return best;
}

}  // namespace

ScheduleResult ltf_schedule(const Dag& dag, const Platform& platform,
                            const SchedulerOptions& raw_options) {
  SS_REQUIRE(dag.num_tasks() > 0, "cannot schedule an empty graph");
  const SchedulerOptions options = raw_options.resolved(platform, dag.num_tasks());
  SS_REQUIRE(options.eps < platform.num_procs(),
             "eps must be smaller than the processor count");

  const std::size_t m = platform.num_procs();
  const CopyId copies = options.eps + 1;
  const std::uint32_t chunk = options.chunk > 0 ? options.chunk : static_cast<std::uint32_t>(m);

  BuildState state(dag, platform, options.eps, options.period);

  const auto prio = priorities(dag, platform);
  std::vector<std::size_t> waiting(dag.num_tasks());
  ReadyList ready;
  for (TaskId t = 0; t < dag.num_tasks(); ++t) {
    waiting[t] = dag.in_degree(t);
    if (waiting[t] == 0) ready.push(ReadyEntry{prio[t], t});
  }

  std::size_t scheduled = 0;
  while (scheduled < dag.num_tasks()) {
    SS_CHECK(!ready.empty(), "ready list empty although tasks remain (cycle?)");

    // Select the chunk β of critical tasks.
    std::vector<TaskId> beta;
    while (beta.size() < chunk && !ready.empty()) {
      beta.push_back(ready.top().task);
      ready.pop();
    }

    std::vector<OneToOneContext> contexts(beta.size());
    std::vector<std::vector<bool>> locked(beta.size(), std::vector<bool>(m, false));
    for (std::size_t k = 0; k < beta.size(); ++k) {
      if (options.use_one_to_one) {
        contexts[k] = make_one_to_one_context(state, beta[k]);
      }  // else θ stays 0: every replica takes the fallback path
    }

    // Replica-major (iso-level) placement.
    for (CopyId n = 0; n < copies; ++n) {
      for (std::size_t k = 0; k < beta.size(); ++k) {
        const TaskId t = beta[k];
        bool placed = false;

        if (contexts[k].available()) {
          if (auto choice = plan_one_to_one(state, t, contexts[k], locked[k])) {
            state.commit(t, n, choice->candidate);
            locked[k][choice->candidate.proc] = true;
            for (ReplicaRef head : choice->heads) {
              locked[k][state.schedule().placed(head).proc] = true;
            }
            consume_heads(contexts[k], choice->heads);
            placed = true;
          } else {
            // No unlocked feasible processor for a one-to-one placement:
            // stop the procedure for this task (Z stays where it is).
            contexts[k].theta = contexts[k].used;
          }
        }

        if (!placed) {
          // Fallback: receive from all replicas of every predecessor.
          const auto preds = dag.predecessors(t);
          std::vector<std::vector<ReplicaRef>> suppliers(preds.size());
          for (std::size_t i = 0; i < preds.size(); ++i) {
            for (CopyId c = 0; c < copies; ++c) suppliers[i].push_back({preds[i], c});
          }

          std::vector<bool> allowed(m);
          for (ProcId u = 0; u < m; ++u) allowed[u] = !locked[k][u];
          BuildState::Candidate best = best_feasible(state, t, suppliers, allowed);
          if (!best.valid) {
            // Relax the lock constraint ("use other processors"), never the
            // throughput constraint.
            std::fill(allowed.begin(), allowed.end(), true);
            best = best_feasible(state, t, suppliers, allowed);
          }
          if (!best.valid) {
            return ScheduleResult::failure(
                "LTF: no processor can host task '" + dag.name(t) + "' replica " +
                std::to_string(n) + " within period " + std::to_string(options.period));
          }
          state.commit(t, n, best);
          locked[k][best.proc] = true;
        }
      }
    }

    // Chunk done: release successors.
    for (TaskId t : beta) {
      ++scheduled;
      for (EdgeId e : dag.out_edges(t)) {
        const TaskId s = dag.edge(e).dst;
        if (--waiting[s] == 0) ready.push(ReadyEntry{prio[s], s});
      }
    }
  }

  Schedule schedule = std::move(state).take();
  recompute_stages(schedule);

  ScheduleResult result;
  if (options.repair) {
    result.repair = repair_for_model(schedule, options.model());
  }
  result.schedule.emplace(std::move(schedule));
  return result;
}

ParamSpace ltf_param_space() {
  ParamSpace space;
  space.add_int("chunk", 0, 0, 4096,
                "iso-level chunk size B of the critical-task selection; 0 = number of "
                "processors m",
                [](SchedulerOptions& options, const ParamValue& value) {
                  options.chunk = static_cast<std::uint32_t>(std::get<std::int64_t>(value));
                });
  space.add_bool("one_to_one", true,
                 "one-to-one mapping procedure; off = every replica receives from all "
                 "predecessor replicas (the (eps+1)^2 communication regime)",
                 [](SchedulerOptions& options, const ParamValue& value) {
                   options.use_one_to_one = std::get<bool>(value);
                 });
  space.include(scheduler_base_params());
  return space;
}

}  // namespace streamsched
