#include "core/stage_pack.hpp"

#include <algorithm>
#include <numeric>

#include "core/build_state.hpp"
#include "graph/levels.hpp"
#include "schedule/metrics.hpp"
#include "util/assert.hpp"

namespace streamsched {

namespace {

// Assignment of one task: which packing stage and which bin inside it.
struct Slot {
  std::uint32_t stage = 0;
  std::uint32_t bin = 0;
  bool assigned = false;
};

}  // namespace

ScheduleResult stage_pack_schedule(const Dag& dag, const Platform& platform,
                                   const SchedulerOptions& raw_options) {
  SS_REQUIRE(dag.num_tasks() > 0, "cannot schedule an empty graph");
  const SchedulerOptions options = raw_options.resolved(platform, dag.num_tasks());
  SS_REQUIRE(options.eps < platform.num_procs(),
             "eps must be smaller than the processor count");

  const CopyId copies = options.eps + 1;
  const std::size_t m = platform.num_procs();
  SS_REQUIRE(m >= copies, "lane replication needs at least eps+1 processors");

  // Disjoint lanes: lane g owns processors {g, g + copies, g + 2*copies, ...}.
  std::vector<std::vector<ProcId>> lanes(copies);
  for (ProcId u = 0; u < m; ++u) lanes[u % copies].push_back(u);
  std::size_t bins = lanes[0].size();
  for (const auto& lane : lanes) bins = std::min(bins, lane.size());

  BuildState state(dag, platform, options.eps, options.period);

  // Deterministic topological traversal (Kahn order, smallest id first).
  const std::vector<TaskId> order = dag.topological_order();

  std::vector<Slot> slots(dag.num_tasks());
  std::uint32_t current_stage = 0;

  // Tries to place every copy of `t` into `bin` of the current stage;
  // commits on success.
  auto try_bin = [&](TaskId t, std::uint32_t bin) -> bool {
    const auto preds = dag.predecessors(t);
    std::vector<BuildState::Candidate> cands(copies);
    for (CopyId g = 0; g < copies; ++g) {
      const ProcId u = lanes[g][bin];
      std::vector<std::vector<ReplicaRef>> suppliers(preds.size());
      for (std::size_t i = 0; i < preds.size(); ++i) suppliers[i] = {{preds[i], g}};
      const BuildState::Candidate cand = state.evaluate(t, u, suppliers);
      if (!cand.valid) return false;
      cands[g] = cand;
    }
    for (CopyId g = 0; g < copies; ++g) state.commit(t, g, cands[g]);
    slots[t] = Slot{current_stage, bin, true};
    return true;
  };

  for (TaskId t : order) {
    const auto preds = dag.predecessors(t);

    for (int attempt = 0; attempt < 2; ++attempt) {
      // Bins that host a predecessor assigned to the *current* stage: a
      // same-stage dependence must stay on one processor chain.
      std::vector<std::uint32_t> forced;
      bool has_current_stage_pred = false;
      for (TaskId p : preds) {
        SS_CHECK(slots[p].assigned, "predecessor not packed yet");
        if (slots[p].stage == current_stage) {
          has_current_stage_pred = true;
          forced.push_back(slots[p].bin);
        }
      }

      bool placed = false;
      if (has_current_stage_pred) {
        std::sort(forced.begin(), forced.end());
        forced.erase(std::unique(forced.begin(), forced.end()), forced.end());
        for (std::uint32_t bin : forced) {
          if (try_bin(t, bin)) {
            placed = true;
            break;
          }
        }
      } else {
        // First fit by current lane-0 load (lightest bin first).
        std::vector<std::uint32_t> bin_order(bins);
        std::iota(bin_order.begin(), bin_order.end(), 0u);
        std::stable_sort(bin_order.begin(), bin_order.end(),
                         [&](std::uint32_t a, std::uint32_t b) {
                           return state.schedule().sigma(lanes[0][a]) <
                                  state.schedule().sigma(lanes[0][b]);
                         });
        for (std::uint32_t bin : bin_order) {
          if (try_bin(t, bin)) {
            placed = true;
            break;
          }
        }
      }

      if (placed) break;
      if (attempt == 1) {
        return ScheduleResult::failure("stage-pack: task '" + dag.name(t) +
                                       "' does not fit within period " +
                                       std::to_string(options.period));
      }
      ++current_stage;  // close the stage and retry once
    }
  }

  Schedule schedule = std::move(state).take();
  recompute_stages(schedule);

  ScheduleResult result;
  if (options.repair) {
    result.repair = repair_for_model(schedule, options.model());
  }
  result.schedule.emplace(std::move(schedule));
  return result;
}

ParamSpace stage_pack_param_space() { return scheduler_base_params(); }

}  // namespace streamsched
