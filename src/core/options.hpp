// Scheduler configuration and result types shared by every algorithm in
// core/ (LTF, R-LTF, HEFT, stage packing).
//
// Every tunable field below is *declared* in the owning algorithms'
// parameter spaces (core/param_space.hpp, built in each core/<algo>.cpp):
// experiment code should bind values through a validated `ParamSet` /
// `AlgoVariant` (core/variant.hpp) rather than poking fields, so ranges
// are checked and series labels derive from the bound values. Direct field
// access remains for programmatic callers that construct options whole.
#pragma once

#include <limits>
#include <optional>
#include <string>

#include "schedule/fault_model.hpp"
#include "schedule/fault_tolerance.hpp"
#include "schedule/schedule.hpp"

namespace streamsched {

struct SchedulerOptions {
  /// ε: number of processor failures to tolerate (ε + 1 replicas per task).
  /// Convenience form of the scalar fault model; ignored when `fault_model`
  /// is set (the model then derives the replication degree).
  CopyId eps = 0;

  /// Fault model governing replication degree, repair target and crash
  /// sampling. Unset means the paper's scalar model, CountModel(eps).
  std::optional<FaultModel> fault_model;

  /// Δ = 1/T: desired iteration period. Infinity disables the throughput
  /// constraint.
  double period = std::numeric_limits<double>::infinity();

  /// Chunk size B of the iso-level selection (paper: B = m). 0 means "use
  /// the number of processors".
  std::uint32_t chunk = 0;

  /// Enable the one-to-one mapping procedure (LTF) / chained supplier
  /// selection (R-LTF). Disabling forces every replica to receive from all
  /// predecessor replicas — the (ε+1)² communication regime. Ablation knob.
  bool use_one_to_one = true;

  /// Run the fault-tolerance repair pass on the finished schedule so the
  /// ε-failure guarantee provably holds (see schedule/fault_tolerance.hpp).
  bool repair = false;

  /// R-LTF only: enable Rule 1 (stage-preserving merges). Ablation knob.
  bool use_rule1 = true;

  /// The effective fault model: `fault_model` when set, CountModel(eps)
  /// otherwise.
  [[nodiscard]] FaultModel model() const {
    return fault_model ? *fault_model : FaultModel::count(eps);
  }

  /// Copy of these options with `eps` resolved from the fault model for a
  /// concrete instance. Every scheduler entry point calls this once and
  /// works off the resolved ε; for count models (and unset `fault_model`)
  /// the options come back unchanged.
  [[nodiscard]] SchedulerOptions resolved(const Platform& platform,
                                          std::size_t num_tasks) const {
    SchedulerOptions out = *this;
    out.eps = model().derive_eps(platform, num_tasks);
    return out;
  }
};

/// Outcome of a scheduling attempt. LTF legitimately fails when the
/// throughput constraint cannot be met (paper §4.1) — that is a result,
/// not an exception.
struct ScheduleResult {
  std::optional<Schedule> schedule;
  std::string error;
  RepairStats repair;

  [[nodiscard]] bool ok() const { return schedule.has_value(); }

  static ScheduleResult failure(std::string why) {
    ScheduleResult r;
    r.error = std::move(why);
    return r;
  }
};

}  // namespace streamsched
