// Scheduler configuration and result types shared by every algorithm in
// core/ (LTF, R-LTF, HEFT, stage packing).
#pragma once

#include <limits>
#include <optional>
#include <string>

#include "schedule/fault_tolerance.hpp"
#include "schedule/schedule.hpp"

namespace streamsched {

struct SchedulerOptions {
  /// ε: number of processor failures to tolerate (ε + 1 replicas per task).
  CopyId eps = 0;

  /// Δ = 1/T: desired iteration period. Infinity disables the throughput
  /// constraint.
  double period = std::numeric_limits<double>::infinity();

  /// Chunk size B of the iso-level selection (paper: B = m). 0 means "use
  /// the number of processors".
  std::uint32_t chunk = 0;

  /// Enable the one-to-one mapping procedure (LTF) / chained supplier
  /// selection (R-LTF). Disabling forces every replica to receive from all
  /// predecessor replicas — the (ε+1)² communication regime. Ablation knob.
  bool use_one_to_one = true;

  /// Run the fault-tolerance repair pass on the finished schedule so the
  /// ε-failure guarantee provably holds (see schedule/fault_tolerance.hpp).
  bool repair = false;

  /// R-LTF only: enable Rule 1 (stage-preserving merges). Ablation knob.
  bool use_rule1 = true;
};

/// Outcome of a scheduling attempt. LTF legitimately fails when the
/// throughput constraint cannot be met (paper §4.1) — that is a result,
/// not an exception.
struct ScheduleResult {
  std::optional<Schedule> schedule;
  std::string error;
  RepairStats repair;

  [[nodiscard]] bool ok() const { return schedule.has_value(); }

  static ScheduleResult failure(std::string why) {
    ScheduleResult r;
    r.error = std::move(why);
    return r;
  }
};

}  // namespace streamsched
