#include "core/rltf.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "core/build_state.hpp"
#include "graph/levels.hpp"
#include "schedule/metrics.hpp"
#include "schedule/mirror.hpp"
#include "util/assert.hpp"

namespace streamsched {

namespace {

struct ReadyEntry {
  double priority;
  TaskId task;

  bool operator<(const ReadyEntry& other) const {
    if (priority != other.priority) return priority < other.priority;
    return task > other.task;
  }
};

// Per-task coverage bookkeeping: uncovered[i][c] is true while copy c of
// the i-th (reversed-graph) predecessor — an original successor — has not
// yet been wired to any replica of the current task.
struct Coverage {
  std::vector<std::vector<bool>> uncovered;

  [[nodiscard]] std::vector<CopyId> uncovered_copies(std::size_t pred_index) const {
    std::vector<CopyId> out;
    for (CopyId c = 0; c < uncovered[pred_index].size(); ++c) {
      if (uncovered[pred_index][c]) out.push_back(c);
    }
    return out;
  }
};

class RltfPass {
 public:
  RltfPass(const Dag& rdag, const Platform& platform, const SchedulerOptions& options)
      : rdag_(rdag),
        options_(options),
        copies_(options.eps + 1),
        m_(platform.num_procs()),
        state_(rdag, platform, options.eps, options.period) {}

  /// Runs the reverse pass; returns an error message on failure, empty on
  /// success (schedule available via take()).
  std::string run() {
    const auto prio = priorities(rdag_, state_.platform());
    std::vector<std::size_t> waiting(rdag_.num_tasks());
    std::priority_queue<ReadyEntry> ready;
    for (TaskId t = 0; t < rdag_.num_tasks(); ++t) {
      waiting[t] = rdag_.in_degree(t);
      if (waiting[t] == 0) ready.push(ReadyEntry{prio[t], t});
    }
    const std::uint32_t chunk =
        options_.chunk > 0 ? options_.chunk : static_cast<std::uint32_t>(m_);

    std::size_t scheduled = 0;
    while (scheduled < rdag_.num_tasks()) {
      SS_CHECK(!ready.empty(), "ready list empty although tasks remain");
      std::vector<TaskId> beta;
      while (beta.size() < chunk && !ready.empty()) {
        beta.push_back(ready.top().task);
        ready.pop();
      }

      std::vector<Coverage> coverage(beta.size());
      std::vector<std::vector<bool>> locked(beta.size(), std::vector<bool>(m_, false));
      for (std::size_t k = 0; k < beta.size(); ++k) {
        coverage[k].uncovered.assign(rdag_.in_degree(beta[k]),
                                     std::vector<bool>(copies_, true));
      }

      for (CopyId n = 0; n < copies_; ++n) {
        for (std::size_t k = 0; k < beta.size(); ++k) {
          const std::string err = place_copy(beta[k], n, coverage[k], locked[k]);
          if (!err.empty()) return err;
        }
      }

      for (TaskId t : beta) {
        ++scheduled;
        for (EdgeId e : rdag_.out_edges(t)) {
          const TaskId s = rdag_.edge(e).dst;
          if (--waiting[s] == 0) ready.push(ReadyEntry{prio[s], s});
        }
      }
    }
    return {};
  }

  [[nodiscard]] Schedule take() && { return std::move(state_).take(); }

 private:
  // Supplier selection for one replica of `task` targeting processor u.
  // Chained (Rule-2 style) selection: one supplier per predecessor,
  // uncovered copies first; the last replica picks up all still-uncovered
  // copies so every successor replica ends with a supplier. `stage_aware`
  // minimizes the stage contribution first (used for Rule-1 attempts).
  std::vector<std::vector<ReplicaRef>> choose_suppliers(TaskId task, ProcId u, bool last,
                                                        const Coverage& coverage,
                                                        bool stage_aware) const {
    const auto preds = rdag_.predecessors(task);
    std::vector<std::vector<ReplicaRef>> suppliers(preds.size());
    for (std::size_t i = 0; i < preds.size(); ++i) {
      if (!options_.use_one_to_one) {
        for (CopyId c = 0; c < copies_; ++c) suppliers[i].push_back({preds[i], c});
        continue;
      }
      const auto uncovered = coverage.uncovered_copies(i);
      if (last && !uncovered.empty()) {
        for (CopyId c : uncovered) suppliers[i].push_back({preds[i], c});
        continue;
      }
      // Candidate pool: uncovered copies if any remain, otherwise all.
      std::vector<CopyId> pool = uncovered;
      if (pool.empty()) {
        for (CopyId c = 0; c < copies_; ++c) pool.push_back(c);
      }
      const EdgeId edge = rdag_.find_edge(preds[i], task);
      ReplicaRef best{preds[i], pool.front()};
      double best_arrival = state_.arrival_estimate(best, edge, u);
      std::uint32_t best_contrib = contribution(best, u);
      for (CopyId c : pool) {
        const ReplicaRef cand{preds[i], c};
        const double arrival = state_.arrival_estimate(cand, edge, u);
        const std::uint32_t contrib = contribution(cand, u);
        bool better;
        if (stage_aware) {
          better = contrib < best_contrib ||
                   (contrib == best_contrib && arrival < best_arrival) ||
                   (contrib == best_contrib && arrival == best_arrival && cand < best);
        } else {
          better = arrival < best_arrival || (arrival == best_arrival && cand < best);
        }
        if (better) {
          best = cand;
          best_arrival = arrival;
          best_contrib = contrib;
        }
      }
      suppliers[i] = {best};
    }
    return suppliers;
  }

  // Stage contribution of wiring supplier `src` from processor u's view.
  [[nodiscard]] std::uint32_t contribution(ReplicaRef src, ProcId u) const {
    const PlacedReplica& p = state_.schedule().placed(src);
    return p.stage + (p.proc == u ? 0u : 1u);
  }

  // Max stage over the chosen suppliers — Rule 1 accepts a candidate only
  // when its stage does not exceed this.
  [[nodiscard]] std::uint32_t supplier_stage_max(
      const std::vector<std::vector<ReplicaRef>>& suppliers) const {
    std::uint32_t best = 1;
    for (const auto& group : suppliers) {
      for (ReplicaRef src : group) {
        best = std::max(best, state_.schedule().placed(src).stage);
      }
    }
    return best;
  }

  void commit_copy(TaskId task, CopyId n, const BuildState::Candidate& cand,
                   Coverage& coverage, std::vector<bool>& locked) {
    state_.commit(task, n, cand);
    locked[cand.proc] = true;
    // Map supplier tasks back to predecessor slots for coverage updates,
    // and lock supplier processors (one-to-one locking discipline).
    const auto preds = rdag_.predecessors(task);
    for (const BuildState::SupplierUse& use : cand.suppliers) {
      locked[state_.schedule().placed(use.src).proc] = true;
      for (std::size_t i = 0; i < preds.size(); ++i) {
        if (preds[i] == use.src.task) {
          coverage.uncovered[i][use.src.copy] = false;
          break;
        }
      }
    }
  }

  std::string place_copy(TaskId task, CopyId n, Coverage& coverage,
                         std::vector<bool>& locked) {
    const bool last = (n + 1 == copies_);
    const auto preds = rdag_.predecessors(task);

    // ---- Rule 1: stage-preserving merge --------------------------------
    if (options_.use_rule1 && !preds.empty()) {
      std::vector<bool> tried(m_, false);
      BuildState::Candidate best;
      for (std::size_t i = 0; i < preds.size(); ++i) {
        std::vector<CopyId> pool = coverage.uncovered_copies(i);
        if (pool.empty()) {
          for (CopyId c = 0; c < copies_; ++c) pool.push_back(c);
        }
        for (CopyId c : pool) {
          const ProcId u = state_.schedule().placed(ReplicaRef{preds[i], c}).proc;
          if (tried[u] || locked[u] || state_.hosts_copy_of(task, u)) continue;
          tried[u] = true;
          const auto suppliers = choose_suppliers(task, u, last, coverage, true);
          const BuildState::Candidate cand = state_.evaluate(task, u, suppliers);
          if (!cand.valid) continue;
          if (cand.stage > supplier_stage_max(suppliers)) continue;  // stage grew
          if (!best.valid || cand.finish < best.finish) best = cand;
        }
      }
      if (best.valid) {
        commit_copy(task, n, best, coverage, locked);
        return {};
      }
    }

    // ---- Rule 2 / general spread placement ------------------------------
    for (const bool respect_locks : {true, false}) {
      BuildState::Candidate best;
      for (ProcId u = 0; u < m_; ++u) {
        if (respect_locks && locked[u]) continue;
        if (state_.hosts_copy_of(task, u)) continue;
        const auto suppliers = choose_suppliers(task, u, last, coverage, false);
        const BuildState::Candidate cand = state_.evaluate(task, u, suppliers);
        if (!cand.valid) continue;
        if (!best.valid || cand.finish < best.finish) best = cand;
      }
      if (best.valid) {
        commit_copy(task, n, best, coverage, locked);
        return {};
      }
    }
    return "R-LTF: no processor can host task '" + rdag_.name(task) + "' replica " +
           std::to_string(n) + " within period " + std::to_string(options_.period);
  }

  const Dag& rdag_;
  const SchedulerOptions& options_;
  CopyId copies_;
  std::size_t m_;
  BuildState state_;
};

}  // namespace

ScheduleResult rltf_schedule(const Dag& dag, const Platform& platform,
                             const SchedulerOptions& raw_options) {
  SS_REQUIRE(dag.num_tasks() > 0, "cannot schedule an empty graph");
  const SchedulerOptions options = raw_options.resolved(platform, dag.num_tasks());
  SS_REQUIRE(options.eps < platform.num_procs(),
             "eps must be smaller than the processor count");

  const Dag rdag = dag.reversed();
  RltfPass pass(rdag, platform, options);
  const std::string err = pass.run();
  if (!err.empty()) return ScheduleResult::failure(err);

  Schedule reversed = std::move(pass).take();
  Schedule schedule = mirror_schedule(reversed, dag);

  ScheduleResult result;
  if (options.repair) {
    result.repair = repair_for_model(schedule, options.model());
  }
  result.schedule.emplace(std::move(schedule));
  return result;
}

ScheduleResult fault_free_schedule(const Dag& dag, const Platform& platform, double period) {
  SchedulerOptions options;
  options.eps = 0;
  options.period = period;
  return rltf_schedule(dag, platform, options);
}

ParamSpace rltf_param_space() {
  ParamSpace space;
  space.add_int("chunk", 0, 0, 4096,
                "iso-level chunk size B of the bottom-up selection; 0 = number of "
                "processors m",
                [](SchedulerOptions& options, const ParamValue& value) {
                  options.chunk = static_cast<std::uint32_t>(std::get<std::int64_t>(value));
                });
  space.add_bool("one_to_one", true,
                 "chained one-to-one supplier selection (Rule 2); off = all-to-all "
                 "replication wiring",
                 [](SchedulerOptions& options, const ParamValue& value) {
                   options.use_one_to_one = std::get<bool>(value);
                 });
  space.add_bool("rule1", true,
                 "Rule 1: stage-preserving merges onto the processors of stage-critical "
                 "successors",
                 [](SchedulerOptions& options, const ParamValue& value) {
                   options.use_rule1 = std::get<bool>(value);
                 });
  space.include(scheduler_base_params());
  return space;
}

}  // namespace streamsched
