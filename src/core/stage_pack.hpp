// Lane-replicated stage-packing baseline.
//
// A simple representative of the stage-partitioning heuristics the paper
// surveys (Hary/Ozguner [4], TDA [11], and the top-down partitioners of
// [5, 8]): a topological traversal packs tasks into consecutive pipeline
// stages, opening a new stage whenever the current one cannot take the
// task without either exceeding the period or splitting a dependence
// across processors within the stage.
//
// Reliability is handled by *lane replication*: the processors are split
// into ε+1 disjoint lanes and copy g of every task runs in lane g, fed
// only by lane-g copies of its predecessors. Lanes never mix, so any ε
// failures kill at most ε lanes and one complete lane always survives —
// the schedule is ε-fault-tolerant by construction, with exactly e·(ε+1)
// edge communications, at the price of using only 1/(ε+1) of the platform
// per lane. This is the natural "naive but provably safe" counterpoint to
// the one-to-one scheme.
#pragma once

#include "core/options.hpp"
#include "core/param_space.hpp"
#include "graph/dag.hpp"
#include "platform/platform.hpp"

namespace streamsched {

[[nodiscard]] ScheduleResult stage_pack_schedule(const Dag& dag, const Platform& platform,
                                                 const SchedulerOptions& options);

/// StagePack's declared tunables: the shared base parameters only (lane
/// replication is fixed by construction).
[[nodiscard]] ParamSpace stage_pack_param_space();

}  // namespace streamsched
