// R-LTF — Reverse LTF (paper §4.2).
//
// Bottom-up topological traversal from the sink nodes, implemented as a
// forward pass over the reversed DAG followed by schedule mirroring
// (schedule/mirror.hpp). Placement of each replica is guided by, in order:
//
//   Rule 1  The replica's pipeline stage (max over the successor replicas
//           it feeds) must not increase: try the processors of the
//           stage-critical successor replicas first and accept a placement
//           only if the resulting stage equals the unavoidable floor.
//
//   Rule 2  Communications induced by replication are kept minimal: each
//           replica feeds exactly one replica of each successor (chained,
//           uncovered-first supplier selection — the generalization of the
//           paper's one-to-one spread, which it reduces to under the
//           paper's Rule-2 condition |Γ+(t)| = 1 with out-degree-1
//           siblings). The last replica of a task additionally picks up
//           every not-yet-covered successor replica so that no successor
//           replica is left without a supplier.
//
// Processor selection still enforces condition (1); like LTF, R-LTF fails
// when the throughput constraint cannot be met.
#pragma once

#include "core/options.hpp"
#include "core/param_space.hpp"
#include "graph/dag.hpp"
#include "platform/platform.hpp"

namespace streamsched {

[[nodiscard]] ScheduleResult rltf_schedule(const Dag& dag, const Platform& platform,
                                           const SchedulerOptions& options);

/// R-LTF's declared tunables: `chunk`, `one_to_one` (chained supplier
/// selection), `rule1` (stage-preserving merges), plus the shared base
/// parameters.
[[nodiscard]] ParamSpace rltf_param_space();

/// The paper's fault-free reference schedule: R-LTF without replication
/// (ε = 0), assuming a completely safe system. The overhead metric of §5
/// compares every algorithm's latency against this schedule's.
[[nodiscard]] ScheduleResult fault_free_schedule(const Dag& dag, const Platform& platform,
                                                 double period);

}  // namespace streamsched
