#include "core/build_state.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace streamsched {

BuildState::BuildState(const Dag& dag, const Platform& platform, CopyId eps, double period)
    : dag_(&dag),
      platform_(&platform),
      schedule_(dag, platform, eps, period),
      proc_free_(platform.num_procs(), 0.0),
      send_free_(platform.num_procs(), 0.0),
      recv_free_(platform.num_procs(), 0.0) {}

double BuildState::arrival_estimate(ReplicaRef src, EdgeId edge, ProcId dst) const {
  const PlacedReplica& p = schedule_.placed(src);
  return p.finish + platform_->comm_time(dag_->edge(edge).volume, p.proc, dst);
}

BuildState::Candidate BuildState::evaluate(
    TaskId task, ProcId u, const std::vector<std::vector<ReplicaRef>>& suppliers) const {
  const auto preds = dag_->predecessors(task);
  SS_REQUIRE(suppliers.size() == preds.size(),
             "need one supplier set per predecessor, in predecessor order");

  Candidate cand;
  cand.proc = u;

  const double period = schedule_.period();
  const double exec = platform_->exec_time(dag_->work(task), u);

  // Compute-load part of condition (1).
  bool loads_ok = schedule_.sigma(u) + exec <= period;

  // Plan every supplier communication under greedy FCFS port reservation,
  // using scratch copies of the cursors (commit re-runs this plan).
  struct Planned {
    std::size_t pred_index;
    SupplierUse use;
    std::uint32_t src_stage;
  };
  std::vector<Planned> planned;
  double recv_cursor = recv_free_[u];
  std::vector<double> send_cursor = send_free_;  // m is small; copying is fine
  double added_cin = 0.0;
  std::vector<double> added_cout(platform_->num_procs(), 0.0);

  // Reserve ports in increasing source-finish order (FCFS by data-ready
  // time), deterministic tie-break by replica identity.
  std::vector<std::pair<std::size_t, ReplicaRef>> order;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    SS_REQUIRE(!suppliers[i].empty(), "empty supplier set for a predecessor");
    for (ReplicaRef src : suppliers[i]) {
      SS_REQUIRE(src.task == preds[i], "supplier does not belong to the right predecessor");
      order.emplace_back(i, src);
    }
  }
  std::sort(order.begin(), order.end(),
            [&](const auto& a, const auto& b) {
              const double fa = schedule_.placed(a.second).finish;
              const double fb = schedule_.placed(b.second).finish;
              if (fa != fb) return fa < fb;
              return a.second < b.second;
            });

  for (const auto& [pred_index, src] : order) {
    const PlacedReplica& sp = schedule_.placed(src);
    Planned item;
    item.pred_index = pred_index;
    item.use.src = src;
    item.use.edge = dag_->find_edge(preds[pred_index], task);
    item.src_stage = sp.stage;
    if (sp.proc == u) {
      item.use.remote = false;
      item.use.comm_start = sp.finish;
      item.use.arrival = sp.finish;
    } else {
      const double duration =
          platform_->comm_time(dag_->edge(item.use.edge).volume, sp.proc, u);
      const double start = std::max({sp.finish, send_cursor[sp.proc], recv_cursor});
      item.use.remote = true;
      item.use.comm_start = start;
      item.use.arrival = start + duration;
      send_cursor[sp.proc] = item.use.arrival;
      recv_cursor = item.use.arrival;
      added_cin += duration;
      added_cout[sp.proc] += duration;
    }
    planned.push_back(item);
  }

  // Port-load parts of condition (1).
  if (schedule_.cin(u) + added_cin > period) loads_ok = false;
  for (ProcId h = 0; h < platform_->num_procs(); ++h) {
    if (added_cout[h] > 0.0 && schedule_.cout(h) + added_cout[h] > period) loads_ok = false;
  }

  // Readiness: earliest arrival per predecessor (ANY-of), latest over
  // predecessors overall.
  double ready = 0.0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    double earliest = std::numeric_limits<double>::infinity();
    for (const Planned& item : planned) {
      if (item.pred_index == i) earliest = std::min(earliest, item.use.arrival);
    }
    ready = std::max(ready, earliest);
  }

  cand.start = std::max(ready, proc_free_[u]);
  cand.finish = cand.start + exec;

  // Paper stage rule: max over communicating suppliers of stage + η.
  cand.stage = 1;
  for (const Planned& item : planned) {
    cand.stage = std::max(cand.stage, item.src_stage + (item.use.remote ? 1u : 0u));
  }

  cand.suppliers.reserve(planned.size());
  for (const Planned& item : planned) cand.suppliers.push_back(item.use);
  cand.valid = loads_ok;
  return cand;
}

void BuildState::commit(TaskId task, CopyId copy, const Candidate& candidate) {
  SS_REQUIRE(candidate.proc != kInvalidProc, "cannot commit an empty candidate");
  const ProcId u = candidate.proc;
  schedule_.place(ReplicaRef{task, copy}, u, candidate.start, candidate.finish,
                  candidate.stage);
  proc_free_[u] = std::max(proc_free_[u], candidate.finish);
  for (const SupplierUse& use : candidate.suppliers) {
    CommRecord comm;
    comm.edge = use.edge;
    comm.src = use.src;
    comm.dst = ReplicaRef{task, copy};
    comm.start = use.comm_start;
    comm.finish = use.arrival;
    schedule_.add_comm(comm);
    if (use.remote) {
      const ProcId from = schedule_.placed(use.src).proc;
      send_free_[from] = std::max(send_free_[from], use.arrival);
      recv_free_[u] = std::max(recv_free_[u], use.arrival);
    }
  }
}

bool BuildState::hosts_copy_of(TaskId task, ProcId u) const {
  for (CopyId c = 0; c < schedule_.copies(); ++c) {
    const ReplicaRef r{task, c};
    if (schedule_.is_placed(r) && schedule_.placed(r).proc == u) return true;
  }
  return false;
}

}  // namespace streamsched
