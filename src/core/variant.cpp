#include "core/variant.hpp"

#include <iostream>
#include <stdexcept>
#include <utility>

#include "util/cli.hpp"

namespace streamsched {

AlgoVariant::AlgoVariant(const Scheduler& algo, ParamSet params) : algo_(&algo) {
  // Rebind every (name, value) through this algorithm's space: names must
  // be declared here and the setters/canonical ordering always come from
  // the owning space, even when `params` was built against a different
  // space whose names happen to coincide.
  for (const std::string& name : params.names()) {
    params_.set(algo.space, name, *params.find(name), algo.name);
  }
}

AlgoVariant::AlgoVariant(const std::string& spec) : AlgoVariant(parse(spec)) {}

AlgoVariant::AlgoVariant(const char* spec) : AlgoVariant(parse(std::string(spec))) {}

AlgoVariant AlgoVariant::parse(const std::string& spec) {
  const std::string text = trim_spec(spec);
  const std::size_t bracket = text.find('[');
  std::string name = trim_spec(text.substr(0, bracket));
  if (name.empty()) {
    throw std::invalid_argument("empty algorithm name in variant spec '" + spec + "'");
  }
  std::string bindings;
  if (bracket != std::string::npos) {
    if (text.back() != ']' || text.size() < bracket + 2) {
      throw std::invalid_argument("variant spec '" + spec +
                                  "' is missing the closing ']' (grammar: name[k=v,...])");
    }
    bindings = text.substr(bracket + 1, text.size() - bracket - 2);
  }
  const Scheduler& algo = find_scheduler(name);
  ParamSet params = ParamSet::parse(algo.space, bindings, name);
  // Checked on the parsed set, not the raw text, so "rltf[,]" and
  // "rltf[ ]" are rejected like "rltf[]" instead of silently degrading to
  // the plain algorithm.
  if (bracket != std::string::npos && params.empty()) {
    throw std::invalid_argument("empty parameter list in variant spec '" + spec +
                                "' (drop the brackets for the plain algorithm)");
  }
  return AlgoVariant(algo, std::move(params));
}

const Scheduler& AlgoVariant::algo() const {
  if (algo_ == nullptr) throw std::logic_error("empty AlgoVariant has no algorithm");
  return *algo_;
}

std::string AlgoVariant::name() const {
  const std::string bound = params_.to_string();
  return bound.empty() ? algo().name : algo().name + "[" + bound + "]";
}

std::string AlgoVariant::label() const {
  const std::string bound = params_.to_string();
  return bound.empty() ? algo().label : algo().label + "[" + bound + "]";
}

SchedulerOptions AlgoVariant::adjusted(SchedulerOptions options) const {
  options = algo().adjusted(std::move(options));
  params_.apply(options);
  return options;
}

ScheduleResult AlgoVariant::schedule(const Dag& dag, const Platform& platform,
                                     const SchedulerOptions& options) const {
  return algo().fn(dag, platform, adjusted(options));
}

std::vector<std::string> split_variant_specs(const std::string& csv) {
  std::vector<std::string> specs;
  std::string current;
  int depth = 0;
  for (char ch : csv) {
    if (ch == '[') ++depth;
    if (ch == ']') {
      --depth;
      if (depth < 0) {
        throw std::invalid_argument("unbalanced ']' in algorithm list '" + csv + "'");
      }
    }
    if (ch == ',' && depth == 0) {
      if (const std::string spec = trim_spec(current); !spec.empty()) specs.push_back(spec);
      current.clear();
      continue;
    }
    current += ch;
  }
  if (depth != 0) {
    throw std::invalid_argument("unbalanced '[' in algorithm list '" + csv + "'");
  }
  if (const std::string spec = trim_spec(current); !spec.empty()) specs.push_back(spec);
  return specs;
}

std::vector<AlgoVariant> parse_variants(const std::vector<std::string>& specs) {
  std::vector<AlgoVariant> variants;
  for (const std::string& spec : specs) {
    if (spec == "all") {
      for (const Scheduler& entry : SchedulerRegistry::instance().all()) {
        variants.emplace_back(entry);
      }
      continue;
    }
    variants.push_back(AlgoVariant::parse(spec));
  }
  return variants;
}

std::vector<AlgoVariant> parse_variants(const std::string& csv) {
  return parse_variants(split_variant_specs(csv));
}

AlgoSelection schedulers_from_cli(Cli& cli, const std::string& fallback_csv) {
  const std::string csv = cli.get_string("algo", fallback_csv, "STREAMSCHED_ALGO");
  const std::vector<std::string> specs = split_variant_specs(csv);
  if (specs.empty()) {
    throw std::invalid_argument("--algo selected no algorithms; try --algo=help");
  }
  AlgoSelection selection;
  for (const std::string& spec : specs) {
    if (spec == "help") {
      std::cout << registry_listing();
      selection.help = true;
      return selection;
    }
  }
  selection.variants = parse_variants(specs);
  return selection;
}

}  // namespace streamsched
