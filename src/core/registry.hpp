// Scheduler registry: the pluggable algorithm abstraction.
//
// Every scheduling algorithm in core/ is described by a `Scheduler` entry
// (registry name, display label, scheduling function, optional default
// option tweaks, and a declared `ParamSpace` of its tunables) and
// registered in a process-global registry. The experiment pipeline
// (exp/sweep, exp/figures), the bench drivers and the examples look
// algorithms up by name, so adding a scheduler to the registry makes it
// immediately available to every sweep, figure and `--algo=<name>` flag
// without touching those layers. Parameterized selections — "this
// algorithm with these bound tunables" — are `AlgoVariant`s
// (core/variant.hpp).
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "core/options.hpp"
#include "core/param_space.hpp"
#include "graph/dag.hpp"
#include "platform/platform.hpp"

namespace streamsched {

/// Any scheduler with the common signature (ltf_schedule, rltf_schedule,
/// heft_schedule, stage_pack_schedule, and adapters around them).
using SchedulerFn =
    std::function<ScheduleResult(const Dag&, const Platform&, const SchedulerOptions&)>;

/// Per-algorithm adjustment applied to the caller's options before the
/// scheduling function runs (e.g. the fault-free reference forces ε = 0).
using SchedulerTweak = std::function<void(SchedulerOptions&)>;

/// Descriptor of one registered scheduling algorithm.
struct Scheduler {
  std::string name;     ///< registry key, e.g. "rltf" (lowercase, stable)
  std::string label;    ///< display label for tables/figures, e.g. "R-LTF"
  std::string summary;  ///< one-line description for `--algo=help`
  SchedulerFn fn;
  SchedulerTweak tweak;  ///< may be empty (no adjustments)
  /// Declared tunables of this algorithm (name, kind, default, range,
  /// doc). Empty for algorithms without knobs (the fault-free reference).
  /// Variant specs (`rltf[chunk=4]`), ablation enumeration and the
  /// `--algo=help` listing all validate against this space.
  ParamSpace space;

  /// The caller's options with this algorithm's default tweaks applied.
  [[nodiscard]] SchedulerOptions adjusted(SchedulerOptions options) const {
    if (tweak) tweak(options);
    return options;
  }

  /// Runs the algorithm with the tweaked options.
  [[nodiscard]] ScheduleResult schedule(const Dag& dag, const Platform& platform,
                                        const SchedulerOptions& options) const {
    return fn(dag, platform, adjusted(options));
  }
};

/// Process-global name -> Scheduler map. The five built-in algorithms
/// (fault_free, ltf, rltf, heft, stage_pack) are registered on first use;
/// extensions call `add` from their own translation units.
class SchedulerRegistry {
 public:
  [[nodiscard]] static SchedulerRegistry& instance();

  /// Registers an algorithm. Throws std::invalid_argument on an empty name,
  /// a missing function, or a duplicate name.
  void add(Scheduler scheduler);

  /// nullptr when `name` is unknown.
  [[nodiscard]] const Scheduler* find(const std::string& name) const noexcept;

  /// Throws std::invalid_argument naming the known algorithms when `name`
  /// is unknown.
  [[nodiscard]] const Scheduler& at(const std::string& name) const;

  /// Registered names in registration order (built-ins first).
  [[nodiscard]] std::vector<std::string> names() const;

  [[nodiscard]] const std::deque<Scheduler>& all() const { return entries_; }

 private:
  SchedulerRegistry();  // registers the built-in algorithms

  // Deque: later add() calls must not invalidate the Scheduler pointers
  // and references handed out by find/at/all.
  std::deque<Scheduler> entries_;
};

/// Convenience lookups on the global registry.
[[nodiscard]] const Scheduler& find_scheduler(const std::string& name);
[[nodiscard]] const Scheduler* try_find_scheduler(const std::string& name);

/// Resolves a list of registry names, throwing on the first unknown one.
[[nodiscard]] std::vector<const Scheduler*> resolve_schedulers(
    const std::vector<std::string>& names);

/// Human-readable listing of every registered algorithm and its declared
/// parameter space (for --algo=help).
[[nodiscard]] std::string registry_listing();

}  // namespace streamsched
