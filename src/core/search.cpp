#include "core/search.hpp"

#include <algorithm>
#include <cmath>

#include "schedule/metrics.hpp"
#include "util/assert.hpp"

namespace streamsched {

double period_lower_bound(const Dag& dag, const Platform& platform, CopyId eps) {
  double per_task = 0.0;
  for (TaskId t = 0; t < dag.num_tasks(); ++t) {
    per_task = std::max(per_task, dag.work(t) / platform.max_speed());
  }
  double total_speed = 0.0;
  for (ProcId u = 0; u < platform.num_procs(); ++u) total_speed += platform.speed(u);
  const double load = (eps + 1.0) * dag.total_work() / total_speed;
  return std::max(per_task, load);
}

double period_lower_bound(const Dag& dag, const Platform& platform,
                          const SchedulerOptions& options) {
  return period_lower_bound(dag, platform,
                            options.model().derive_eps(platform, dag.num_tasks()));
}

MinPeriodResult find_min_period(const Dag& dag, const Platform& platform,
                                const SchedulerOptions& base, const SchedulerFn& scheduler,
                                double rel_tol) {
  SS_REQUIRE(rel_tol > 0.0, "tolerance must be positive");
  MinPeriodResult result;

  const double lb = std::max(period_lower_bound(dag, platform, base), 1e-12);

  auto attempt = [&](double period) -> std::optional<Schedule> {
    SchedulerOptions options = base;
    options.period = period;
    ++result.evaluations;
    ScheduleResult r = scheduler(dag, platform, options);
    if (!r.ok()) return std::nullopt;
    return std::move(*r.schedule);
  };

  // Exponential search for a feasible upper bound, keeping the greatest
  // known-infeasible period as the bracket floor so the binary search never
  // re-evaluates a period already proven infeasible (the bracket starts at
  // the analytic lower bound, below which nothing is ever attempted).
  double lo = lb;
  double hi = lb;
  std::optional<Schedule> hi_schedule;
  for (int i = 0; i < 64; ++i) {
    hi_schedule = attempt(hi);
    if (hi_schedule) break;
    lo = hi;
    hi *= 2.0;
  }
  if (!hi_schedule) return result;  // nothing feasible within 2^64 * lb

  while (hi - lo > rel_tol * hi) {
    const double mid = 0.5 * (lo + hi);
    if (auto s = attempt(mid)) {
      hi = mid;
      hi_schedule = std::move(s);
    } else {
      lo = mid;
    }
  }

  result.found = true;
  result.period = hi;
  result.schedule = std::move(hi_schedule);
  return result;
}

MinPeriodResult find_min_period(const Dag& dag, const Platform& platform,
                                const FaultModel& model, const SchedulerOptions& base,
                                const SchedulerFn& scheduler, double rel_tol) {
  SchedulerOptions options = base;
  options.fault_model = model;
  return find_min_period(dag, platform, options, scheduler, rel_tol);
}

MaxFailuresResult find_max_failures(const Dag& dag, const Platform& platform, double period,
                                    double latency_cap, const SchedulerOptions& base,
                                    const SchedulerFn& scheduler) {
  MaxFailuresResult result;
  for (CopyId eps = 0; eps < platform.num_procs(); ++eps) {
    SchedulerOptions options = base;
    options.fault_model.reset();  // the scan owns the replication degree
    options.eps = eps;
    options.period = period;
    ScheduleResult r = scheduler(dag, platform, options);
    if (!r.ok()) break;
    if (latency_upper_bound(*r.schedule) > latency_cap) break;
    result.found = true;
    result.eps = eps;
    result.schedule = std::move(r.schedule);
  }
  return result;
}

MaxReliabilityResult find_max_reliability(const Dag& dag, const Platform& platform,
                                          double period, double latency_cap,
                                          const SchedulerOptions& base,
                                          const SchedulerFn& scheduler,
                                          const ReliabilityOptions& reliability_options) {
  MaxReliabilityResult result;
  for (CopyId eps = 0; eps < platform.num_procs(); ++eps) {
    SchedulerOptions options = base;
    options.fault_model.reset();  // scan explicit replication degrees
    options.eps = eps;
    options.period = period;
    options.repair = true;
    ScheduleResult r = scheduler(dag, platform, options);
    if (!r.ok()) break;  // feasibility is monotone in eps
    // Latency is not: repair channels can inflate one degree's bound while
    // the next fits, so a cap violation skips the degree instead of ending
    // the scan.
    if (latency_upper_bound(*r.schedule) > latency_cap) continue;
    const ReliabilityEstimate est = schedule_reliability(*r.schedule, reliability_options);
    if (!result.found || est.reliability > result.reliability) {
      result.found = true;
      result.eps = eps;
      result.reliability = est.reliability;
      result.schedule = std::move(r.schedule);
    }
  }
  return result;
}

}  // namespace streamsched
