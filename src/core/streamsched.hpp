// Umbrella header: the full public API of streamsched.
//
// Typical use:
//
//   #include "core/streamsched.hpp"
//   using namespace streamsched;
//
//   Dag dag = make_paper_figure2();
//   Platform platform = make_homogeneous(8, /*unit_delay=*/1.0);
//   SchedulerOptions options;
//   options.eps = 1;          // tolerate one processor failure
//   options.period = 22.0;    // desired throughput 1/22
//
//   // Any algorithm variant by spec: registry name + bound tunables from
//   // the algorithm's declared parameter space (AlgoVariant::parse round-
//   // trips the grammar; see --algo=help for each algorithm's space).
//   AlgoVariant variant = AlgoVariant::parse("rltf[chunk=4,rule1=off]");
//   ScheduleResult r = variant.schedule(dag, platform, options);
//   if (r.ok()) {
//     std::cout << variant.label() << " stages: " << num_stages(*r.schedule)
//               << " latency bound: " << latency_upper_bound(*r.schedule) << '\n';
//     SimResult sim = simulate(*r.schedule);
//     std::cout << "measured latency: " << sim.max_latency << '\n';
//   }
//
//   // Ablations enumerate declared knobs generically — no hand-written
//   // loops over option fields:
//   const Scheduler& rltf = find_scheduler("rltf");
//   for (const ParamSet& params : enumerate(rltf.space, {bool_axis("rule1")})) {
//     ScheduleResult a = AlgoVariant(rltf, params).schedule(dag, platform, options);
//   }
#pragma once

#include "core/build_state.hpp"   // IWYU pragma: export
#include "core/heft.hpp"          // IWYU pragma: export
#include "core/ltf.hpp"           // IWYU pragma: export
#include "core/one_to_one.hpp"    // IWYU pragma: export
#include "core/options.hpp"       // IWYU pragma: export
#include "core/param_space.hpp"   // IWYU pragma: export
#include "core/registry.hpp"      // IWYU pragma: export
#include "core/rltf.hpp"          // IWYU pragma: export
#include "core/search.hpp"        // IWYU pragma: export
#include "core/stage_pack.hpp"    // IWYU pragma: export
#include "core/variant.hpp"       // IWYU pragma: export
#include "exp/figures.hpp"        // IWYU pragma: export
#include "exp/sweep.hpp"          // IWYU pragma: export
#include "exp/workload.hpp"       // IWYU pragma: export
#include "graph/analysis.hpp"     // IWYU pragma: export
#include "graph/dag.hpp"          // IWYU pragma: export
#include "graph/dot.hpp"          // IWYU pragma: export
#include "graph/generators.hpp"   // IWYU pragma: export
#include "graph/granularity.hpp"  // IWYU pragma: export
#include "graph/levels.hpp"       // IWYU pragma: export
#include "graph/width.hpp"        // IWYU pragma: export
#include "platform/generators.hpp"  // IWYU pragma: export
#include "platform/platform.hpp"    // IWYU pragma: export
#include "schedule/fault_model.hpp"      // IWYU pragma: export
#include "schedule/fault_tolerance.hpp"  // IWYU pragma: export
#include "schedule/metrics.hpp"          // IWYU pragma: export
#include "schedule/mirror.hpp"           // IWYU pragma: export
#include "schedule/printer.hpp"          // IWYU pragma: export
#include "schedule/schedule.hpp"         // IWYU pragma: export
#include "schedule/validate.hpp"         // IWYU pragma: export
#include "sim/engine.hpp"                // IWYU pragma: export
#include "sim/trace.hpp"                 // IWYU pragma: export
#include "util/rng.hpp"                  // IWYU pragma: export
#include "util/stats.hpp"                // IWYU pragma: export
#include "util/table.hpp"                // IWYU pragma: export
