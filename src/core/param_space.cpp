#include "core/param_space.hpp"

#include <algorithm>
#include <charconv>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/options.hpp"

namespace streamsched {

namespace {

std::string kind_name(ParamKind kind) {
  switch (kind) {
    case ParamKind::kBool:
      return "bool";
    case ParamKind::kInt:
      return "int";
    case ParamKind::kReal:
      return "real";
    case ParamKind::kEnum:
      return "enum";
  }
  return "?";
}

std::string with_context(const std::string& context, const std::string& message) {
  return context.empty() ? message : context + ": " + message;
}

[[noreturn]] void fail(const std::string& context, const std::string& message) {
  throw std::invalid_argument(with_context(context, message));
}

std::string number_text(double value) {
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  return ec == std::errc() ? std::string(buf, end) : std::to_string(value);
}

}  // namespace

ParamKind param_kind(const ParamValue& value) {
  return static_cast<ParamKind>(value.index());
}

std::string trim_spec(const std::string& text) {
  const auto first = text.find_first_not_of(" \t");
  if (first == std::string::npos) return "";
  const auto last = text.find_last_not_of(" \t");
  return text.substr(first, last - first + 1);
}

std::string param_value_text(const ParamValue& value) {
  switch (param_kind(value)) {
    case ParamKind::kBool:
      return std::get<bool>(value) ? "on" : "off";
    case ParamKind::kInt:
      return std::to_string(std::get<std::int64_t>(value));
    case ParamKind::kReal:
      return number_text(std::get<double>(value));
    case ParamKind::kEnum:
      return std::get<std::string>(value);
  }
  return "?";
}

std::string ParamDesc::signature() const {
  std::ostringstream os;
  os << kind_name(kind);
  if (kind == ParamKind::kInt) {
    os << " in [" << int_min << ", " << int_max << "]";
  } else if (kind == ParamKind::kReal) {
    os << " in [" << number_text(real_min) << ", " << number_text(real_max)
       << (real_hi_exclusive ? ")" : "]");
  } else if (kind == ParamKind::kEnum) {
    os << " {";
    for (std::size_t i = 0; i < choices.size(); ++i) os << (i ? ", " : "") << choices[i];
    os << "}";
  }
  return os.str();
}

ParamSpace& ParamSpace::add(ParamDesc desc) {
  if (desc.name.empty()) throw std::invalid_argument("parameter declaration needs a name");
  if (!desc.apply) {
    throw std::invalid_argument("parameter '" + desc.name + "' has no setter");
  }
  if (find(desc.name) != nullptr) {
    throw std::invalid_argument("parameter '" + desc.name + "' is already declared");
  }
  params_.push_back(std::move(desc));
  return *this;
}

ParamSpace& ParamSpace::add_bool(std::string name, bool def, std::string doc,
                                 ParamDesc::Setter apply) {
  ParamDesc desc;
  desc.name = std::move(name);
  desc.kind = ParamKind::kBool;
  desc.doc = std::move(doc);
  desc.def = def;
  desc.apply = std::move(apply);
  return add(std::move(desc));
}

ParamSpace& ParamSpace::add_int(std::string name, std::int64_t def, std::int64_t min,
                                std::int64_t max, std::string doc, ParamDesc::Setter apply) {
  ParamDesc desc;
  desc.name = std::move(name);
  desc.kind = ParamKind::kInt;
  desc.doc = std::move(doc);
  desc.def = def;
  desc.int_min = min;
  desc.int_max = max;
  desc.apply = std::move(apply);
  return add(std::move(desc));
}

ParamSpace& ParamSpace::add_real(std::string name, double def, double min, double max,
                                 std::string doc, ParamDesc::Setter apply,
                                 bool hi_exclusive) {
  ParamDesc desc;
  desc.name = std::move(name);
  desc.kind = ParamKind::kReal;
  desc.doc = std::move(doc);
  desc.def = def;
  desc.real_min = min;
  desc.real_max = max;
  desc.real_hi_exclusive = hi_exclusive;
  desc.apply = std::move(apply);
  return add(std::move(desc));
}

ParamSpace& ParamSpace::add_enum(std::string name, std::string def,
                                 std::vector<std::string> choices, std::string doc,
                                 ParamDesc::Setter apply) {
  if (choices.empty()) {
    throw std::invalid_argument("enum parameter '" + name + "' needs choices");
  }
  ParamDesc desc;
  desc.name = std::move(name);
  desc.kind = ParamKind::kEnum;
  desc.doc = std::move(doc);
  desc.def = std::move(def);
  desc.choices = std::move(choices);
  desc.apply = std::move(apply);
  if (std::find(desc.choices.begin(), desc.choices.end(), std::get<std::string>(desc.def)) ==
      desc.choices.end()) {
    throw std::invalid_argument("enum parameter '" + desc.name +
                                "' default is not one of its choices");
  }
  return add(std::move(desc));
}

ParamSpace& ParamSpace::include(const ParamSpace& other) {
  for (const ParamDesc& desc : other.params_) add(desc);
  return *this;
}

const ParamDesc* ParamSpace::find(const std::string& name) const noexcept {
  for (const ParamDesc& desc : params_) {
    if (desc.name == name) return &desc;
  }
  return nullptr;
}

const ParamDesc& ParamSpace::at(const std::string& name, const std::string& context) const {
  if (const ParamDesc* desc = find(name)) return *desc;
  std::ostringstream os;
  os << "unknown parameter '" << name << "'";
  if (params_.empty()) {
    os << " (no parameters declared)";
  } else {
    os << "; declared:";
    for (const ParamDesc& desc : params_) os << ' ' << desc.name;
  }
  fail(context, os.str());
}

std::size_t ParamSpace::index_of(const std::string& name, const std::string& context) const {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (params_[i].name == name) return i;
  }
  (void)at(name, context);  // throws with the declared-parameter listing
  return 0;                 // unreachable
}

ParamValue ParamSpace::parse_value(const ParamDesc& desc, const std::string& text,
                                   const std::string& context) const {
  const auto bad = [&](const std::string& why) -> ParamValue {
    fail(context, "parameter '" + desc.name + "': expected " + desc.signature() + ", got '" +
                      text + "'" + (why.empty() ? "" : " (" + why + ")"));
  };
  switch (desc.kind) {
    case ParamKind::kBool: {
      if (text == "on" || text == "true" || text == "yes" || text == "1") return true;
      if (text == "off" || text == "false" || text == "no" || text == "0") return false;
      return bad("");
    }
    case ParamKind::kInt: {
      std::int64_t value = 0;
      const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
      if (ec != std::errc() || ptr != text.data() + text.size()) return bad("");
      return check_value(desc, value, context);
    }
    case ParamKind::kReal: {
      double value = 0.0;
      const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
      if (ec != std::errc() || ptr != text.data() + text.size()) return bad("");
      return check_value(desc, value, context);
    }
    case ParamKind::kEnum: {
      if (std::find(desc.choices.begin(), desc.choices.end(), text) == desc.choices.end()) {
        return bad("");
      }
      return text;
    }
  }
  return bad("unhandled kind");
}

ParamValue ParamSpace::check_value(const ParamDesc& desc, ParamValue value,
                                   const std::string& context) const {
  // Ints widen to reals so int_axis/typed literals work for real params.
  if (desc.kind == ParamKind::kReal && param_kind(value) == ParamKind::kInt) {
    value = static_cast<double>(std::get<std::int64_t>(value));
  }
  if (param_kind(value) != desc.kind) {
    fail(context, "parameter '" + desc.name + "': expected " + desc.signature() + ", got a " +
                      kind_name(param_kind(value)) + " value '" + param_value_text(value) +
                      "'");
  }
  const auto out_of_range = [&] {
    fail(context, "parameter '" + desc.name + "': value " + param_value_text(value) +
                      " is outside " + desc.signature());
  };
  if (desc.kind == ParamKind::kInt) {
    const std::int64_t v = std::get<std::int64_t>(value);
    if (v < desc.int_min || v > desc.int_max) out_of_range();
  } else if (desc.kind == ParamKind::kReal) {
    const double v = std::get<double>(value);
    const bool below_hi = desc.real_hi_exclusive ? v < desc.real_max : v <= desc.real_max;
    if (!(v >= desc.real_min && below_hi)) out_of_range();
  } else if (desc.kind == ParamKind::kEnum) {
    const std::string& v = std::get<std::string>(value);
    if (std::find(desc.choices.begin(), desc.choices.end(), v) == desc.choices.end()) {
      out_of_range();
    }
  }
  return value;
}

std::string ParamSpace::describe(const std::string& indent) const {
  std::ostringstream os;
  for (const ParamDesc& desc : params_) {
    os << indent << desc.name << ": " << desc.signature() << ", default "
       << param_value_text(desc.def);
    if (!desc.doc.empty()) os << " — " << desc.doc;
    os << '\n';
  }
  return os.str();
}

void ParamSet::set(const ParamSpace& space, const std::string& name, const std::string& text,
                   const std::string& context) {
  const ParamDesc& desc = space.at(name, context);
  set(space, name, space.parse_value(desc, text, context), context);
}

void ParamSet::set(const ParamSpace& space, const std::string& name, const ParamValue& value,
                   const std::string& context) {
  const ParamDesc& desc = space.at(name, context);
  if (find(name) != nullptr) {
    fail(context, "parameter '" + name + "' is bound twice");
  }
  Binding binding;
  binding.index = space.index_of(name, context);
  binding.name = name;
  binding.value = space.check_value(desc, value, context);
  binding.apply = desc.apply;
  // Insert keeping declaration order — the canonical print order.
  const auto pos = std::find_if(bindings_.begin(), bindings_.end(),
                                [&](const Binding& b) { return b.index > binding.index; });
  bindings_.insert(pos, std::move(binding));
}

std::vector<std::string> ParamSet::names() const {
  std::vector<std::string> out;
  out.reserve(bindings_.size());
  for (const Binding& binding : bindings_) out.push_back(binding.name);
  return out;
}

const ParamValue* ParamSet::find(const std::string& name) const noexcept {
  for (const Binding& binding : bindings_) {
    if (binding.name == name) return &binding.value;
  }
  return nullptr;
}

std::string ParamSet::to_string() const {
  std::string out;
  for (const Binding& binding : bindings_) {
    if (!out.empty()) out += ',';
    out += binding.name + "=" + param_value_text(binding.value);
  }
  return out;
}

void ParamSet::apply(SchedulerOptions& options) const {
  for (const Binding& binding : bindings_) binding.apply(options, binding.value);
}

ParamSet ParamSet::parse(const ParamSpace& space, const std::string& csv,
                         const std::string& context) {
  ParamSet set;
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t end = csv.find(',', start);
    if (end == std::string::npos) end = csv.size();
    const std::string item = trim_spec(csv.substr(start, end - start));
    start = end + 1;
    if (item.empty()) {
      if (start > csv.size()) break;  // trailing empty after last comma
      continue;
    }
    const std::size_t eq = item.find('=');
    // Key and value are trimmed too, so "chunk = 4" binds like "chunk=4".
    const std::string key = eq == std::string::npos ? "" : trim_spec(item.substr(0, eq));
    if (key.empty()) {
      fail(context, "bad parameter binding '" + item + "' (expected name=value)");
    }
    set.set(space, key, trim_spec(item.substr(eq + 1)), context);
  }
  return set;
}

bool operator==(const ParamSet& a, const ParamSet& b) {
  if (a.bindings_.size() != b.bindings_.size()) return false;
  for (std::size_t i = 0; i < a.bindings_.size(); ++i) {
    if (a.bindings_[i].name != b.bindings_[i].name ||
        a.bindings_[i].value != b.bindings_[i].value) {
      return false;
    }
  }
  return true;
}

ParamSpace scheduler_base_params() {
  ParamSpace space;
  space.add_int("eps", 0, 0, 63,
                "replication degree: survive any eps processor failures (pins the count "
                "fault model)",
                [](SchedulerOptions& options, const ParamValue& value) {
                  options.eps = static_cast<CopyId>(std::get<std::int64_t>(value));
                  options.fault_model.reset();
                });
  space.add_real(
      "R", 0.0, 0.0, 1.0,
      "target schedule reliability of the probabilistic fault model; 0 keeps the "
      "count model",
      [](SchedulerOptions& options, const ParamValue& value) {
        const double target = std::get<double>(value);
        if (target > 0.0) {
          options.fault_model = FaultModel::probabilistic(target);
        } else {
          options.fault_model.reset();
        }
      },
      /*hi_exclusive=*/true);  // R = 1 is not a FaultModel; reject at bind time
  space.add_bool("repair", false,
                 "run the fault-tolerance repair pass so the model's guarantee provably "
                 "holds",
                 [](SchedulerOptions& options, const ParamValue& value) {
                   options.repair = std::get<bool>(value);
                 });
  return space;
}

ParamAxis bool_axis(std::string name) {
  return {std::move(name), {ParamValue(true), ParamValue(false)}};
}

ParamAxis int_axis(std::string name, std::vector<std::int64_t> values) {
  ParamAxis axis{std::move(name), {}};
  axis.values.reserve(values.size());
  for (std::int64_t v : values) axis.values.emplace_back(v);
  return axis;
}

ParamAxis real_axis(std::string name, std::vector<double> values) {
  ParamAxis axis{std::move(name), {}};
  axis.values.reserve(values.size());
  for (double v : values) axis.values.emplace_back(v);
  return axis;
}

ParamAxis enum_axis(std::string name, std::vector<std::string> values) {
  ParamAxis axis{std::move(name), {}};
  axis.values.reserve(values.size());
  for (std::string& v : values) axis.values.emplace_back(std::move(v));
  return axis;
}

std::vector<ParamSet> enumerate(const ParamSpace& space, const std::vector<ParamAxis>& axes,
                                const std::string& context) {
  for (std::size_t i = 0; i < axes.size(); ++i) {
    (void)space.at(axes[i].name, context);  // unknown names fail up front
    if (axes[i].values.empty()) {
      fail(context, "enumeration axis '" + axes[i].name + "' has no values");
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (axes[j].name == axes[i].name) {
        fail(context, "duplicate enumeration axis '" + axes[i].name + "'");
      }
    }
  }
  std::vector<ParamSet> grid{ParamSet{}};
  for (const ParamAxis& axis : axes) {
    std::vector<ParamSet> next;
    next.reserve(grid.size() * axis.values.size());
    for (const ParamSet& base : grid) {
      for (const ParamValue& value : axis.values) {
        ParamSet combo = base;
        combo.set(space, axis.name, value, context);
        next.push_back(std::move(combo));
      }
    }
    grid = std::move(next);
  }
  return grid;
}

}  // namespace streamsched
