// Stable 64-bit fingerprints of the placement daemon's cache-key
// ingredients (service/schedule_cache.hpp): DAG structure, platform, the
// algorithm variant and the fault model.
//
// Fingerprints are pure functions of the *semantic* content consumed by
// the schedulers — task works, edge endpoints and volumes, processor
// speeds/delays/failure probabilities, the variant's canonical spec, the
// model's canonical spec — never of addresses, insertion containers or
// names (task names are labels; no scheduler reads them). Two requests
// whose DAGs would schedule identically therefore hash identically across
// processes and runs, which is what makes a persisted or distributed
// schedule cache keyable at all.
//
// Doubles are hashed by bit pattern (deterministic; note -0.0 != +0.0, a
// distinction no generator in this repository produces). The hash is
// FNV-1a over the flattened byte stream — fast, stable, and collision
// behavior good enough for cache keys that are additionally compared for
// full equality by the cache's hash map.
#pragma once

#include <bit>
#include <cstdint>
#include <string>

#include "graph/dag.hpp"
#include "platform/platform.hpp"
#include "schedule/fault_model.hpp"

namespace streamsched {

class AlgoVariant;

/// Streaming FNV-1a hasher over primitive fields.
class Fnv64 {
 public:
  Fnv64& u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<unsigned char>(v >> (8 * i)));
    return *this;
  }
  Fnv64& f64(double v) { return u64(std::bit_cast<std::uint64_t>(v)); }
  Fnv64& str(const std::string& s) {
    for (char ch : s) byte(static_cast<unsigned char>(ch));
    return u64(s.size());  // length-delimit so "ab","c" != "a","bc"
  }

  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  void byte(unsigned char b) {
    h_ ^= b;
    h_ *= 1099511628211ULL;
  }
  std::uint64_t h_ = 1469598103934665603ULL;
};

/// Structure + weights: task count and works, edge (src, dst, volume)
/// triples in edge-id order. Task names are excluded (no scheduler reads
/// them), so relabeled copies of the same graph share a fingerprint.
[[nodiscard]] std::uint64_t dag_fingerprint(const Dag& dag);

/// Speeds, the unit-delay matrix and per-processor failure probabilities.
[[nodiscard]] std::uint64_t platform_fingerprint(const Platform& platform);

/// Hash of the variant's canonical spec (`rltf[chunk=4]`); the spec
/// round-trips, so equal fingerprints mean the same algorithm with the
/// same bound parameters.
[[nodiscard]] std::uint64_t variant_fingerprint(const AlgoVariant& variant);

/// Hash of the model's canonical spec (`count:eps=2` / `prob:R=0.999`).
[[nodiscard]] std::uint64_t fault_model_fingerprint(const FaultModel& model);

class Schedule;

/// Content hash of a placement: ε, period, every placed replica's
/// (proc, start, finish, stage) and every comm record in insertion order.
/// Two schedules with identical placements and comms — e.g. one served
/// cold and its warm-start twin restored from a cache snapshot — hash
/// identically; this is the `fp=` field of wire responses, so clients can
/// assert bit-identical serving across daemon restarts.
[[nodiscard]] std::uint64_t schedule_fingerprint(const Schedule& schedule);

}  // namespace streamsched
