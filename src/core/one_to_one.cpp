#include "core/one_to_one.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace streamsched {

OneToOneContext make_one_to_one_context(const BuildState& state, TaskId task) {
  const Dag& dag = state.dag();
  const Schedule& schedule = state.schedule();
  const auto preds = dag.predecessors(task);

  OneToOneContext ctx;
  if (preds.empty()) {
    // Entry task: no communications to pair up; every replica can be
    // "one-to-one" placed (distinct processors enforced via locking).
    ctx.theta = schedule.copies();
    return ctx;
  }

  // Count predecessor replicas per processor to find singletons.
  std::vector<std::uint32_t> replicas_on_proc(state.num_procs(), 0);
  for (TaskId pred : preds) {
    for (CopyId c = 0; c < schedule.copies(); ++c) {
      const ReplicaRef r{pred, c};
      SS_CHECK(schedule.is_placed(r), "predecessor replica not placed yet");
      ++replicas_on_proc[schedule.placed(r).proc];
    }
  }

  ctx.remaining.resize(preds.size());
  std::uint32_t theta = std::numeric_limits<std::uint32_t>::max();
  for (std::size_t i = 0; i < preds.size(); ++i) {
    for (CopyId c = 0; c < schedule.copies(); ++c) {
      const ReplicaRef r{preds[i], c};
      if (replicas_on_proc[schedule.placed(r).proc] == 1) {
        ctx.remaining[i].push_back(r);
      }
    }
    theta = std::min(theta, static_cast<std::uint32_t>(ctx.remaining[i].size()));
  }
  ctx.theta = theta;
  return ctx;
}

std::optional<OneToOneChoice> plan_one_to_one(const BuildState& state, TaskId task,
                                              const OneToOneContext& context,
                                              const std::vector<bool>& locked) {
  const Dag& dag = state.dag();
  const auto preds = dag.predecessors(task);

  std::optional<OneToOneChoice> best;
  for (ProcId u = 0; u < state.num_procs(); ++u) {
    if (locked[u]) continue;
    if (state.hosts_copy_of(task, u)) continue;

    // Head per predecessor: the remaining replica whose data can reach u
    // the earliest (paper: sort B(t_i) by communication finish times).
    std::vector<std::vector<ReplicaRef>> suppliers(preds.size());
    std::vector<ReplicaRef> heads(preds.size());
    bool feasible = true;
    for (std::size_t i = 0; i < preds.size(); ++i) {
      if (context.remaining[i].empty()) {
        feasible = false;
        break;
      }
      const EdgeId edge = dag.find_edge(preds[i], task);
      ReplicaRef head = context.remaining[i].front();
      double best_arrival = state.arrival_estimate(head, edge, u);
      for (ReplicaRef cand : context.remaining[i]) {
        const double arrival = state.arrival_estimate(cand, edge, u);
        if (arrival < best_arrival || (arrival == best_arrival && cand < head)) {
          best_arrival = arrival;
          head = cand;
        }
      }
      heads[i] = head;
      suppliers[i] = {head};
    }
    if (!feasible) break;

    const BuildState::Candidate cand = state.evaluate(task, u, suppliers);
    if (!cand.valid) continue;
    if (!best || cand.finish < best->candidate.finish) {
      best = OneToOneChoice{cand, heads};
    }
  }
  return best;
}

void consume_heads(OneToOneContext& context, const std::vector<ReplicaRef>& heads) {
  SS_REQUIRE(heads.size() == context.remaining.size(),
             "need exactly one head per predecessor");
  for (std::size_t i = 0; i < heads.size(); ++i) {
    auto& list = context.remaining[i];
    const auto it = std::find(list.begin(), list.end(), heads[i]);
    SS_CHECK(it != list.end(), "head is not in the remaining list");
    list.erase(it);
  }
  ++context.used;
}

}  // namespace streamsched
