// Heterogeneous target platform (paper §2).
//
// m processors with speeds s_u, fully interconnected by bidirectional
// links; the link between P_a and P_b has a unit delay (inverse bandwidth)
// so transferring `volume` units costs volume * unit_delay(a, b).
// Intra-processor communication is free. The one-port constraint itself is
// enforced by schedulers / the simulator, not by this class.
//
// Each processor additionally carries an independent failure probability
// p_u in [0, 1) — zero by default, so the paper's count-ε model is
// unaffected. Probabilistic fault models (schedule/fault_model.hpp) read
// these to derive replication degrees, schedule reliabilities and crash
// samples.
#pragma once

#include <string>
#include <vector>

#include "util/matrix.hpp"
#include "util/types.hpp"

namespace streamsched {

class Platform {
 public:
  Platform() = default;

  /// Platform with the given speeds and one shared unit delay on all links.
  Platform(std::vector<double> speeds, double unit_delay);

  /// Fully specified: speeds plus a symmetric unit-delay matrix (diagonal
  /// entries are forced to zero).
  Platform(std::vector<double> speeds, Matrix<double> unit_delays);

  /// Homogeneous helper: m processors of the given speed, one unit delay.
  [[nodiscard]] static Platform uniform(std::size_t m, double speed, double unit_delay);

  [[nodiscard]] std::size_t num_procs() const { return speeds_.size(); }

  [[nodiscard]] double speed(ProcId u) const;
  [[nodiscard]] double unit_delay(ProcId a, ProcId b) const;
  void set_unit_delay(ProcId a, ProcId b, double delay);

  /// Time to execute `work` units on processor u.
  [[nodiscard]] double exec_time(double work, ProcId u) const;

  /// Time to transfer `volume` units from a to b (0 when a == b).
  [[nodiscard]] double comm_time(double volume, ProcId a, ProcId b) const;

  [[nodiscard]] double min_speed() const;
  [[nodiscard]] double max_speed() const;
  [[nodiscard]] double mean_speed() const;
  /// Mean of 1/s_u; average_exec_time(work) = work * mean_inverse_speed().
  [[nodiscard]] double mean_inverse_speed() const;

  /// Extrema / mean over off-diagonal link delays. Zero for m < 2.
  [[nodiscard]] double max_unit_delay() const;
  [[nodiscard]] double min_unit_delay() const;
  [[nodiscard]] double mean_unit_delay() const;

  /// Independent failure probability of processor u (0 by default).
  [[nodiscard]] double failure_prob(ProcId u) const;
  /// Sets one failure probability; must lie in [0, 1).
  void set_failure_prob(ProcId u, double p);
  /// Sets all failure probabilities at once (one entry per processor).
  void set_failure_probs(std::vector<double> probs);
  [[nodiscard]] const std::vector<double>& failure_probs() const { return fail_probs_; }
  [[nodiscard]] double max_failure_prob() const;
  /// True when any processor has a non-zero failure probability.
  [[nodiscard]] bool has_failure_probs() const;

 private:
  void check_proc(ProcId u) const;

  std::vector<double> speeds_;
  Matrix<double> delays_;
  std::vector<double> fail_probs_;
};

}  // namespace streamsched
