#include "platform/generators.hpp"

#include "util/assert.hpp"

namespace streamsched {

Platform make_homogeneous(std::size_t m, double unit_delay) {
  return Platform::uniform(m, 1.0, unit_delay);
}

Platform make_comm_heterogeneous(Rng& rng, std::size_t m, double delay_lo, double delay_hi) {
  return make_heterogeneous(rng, m, 1.0, 1.0, delay_lo, delay_hi);
}

Platform make_heterogeneous(Rng& rng, std::size_t m, double speed_lo, double speed_hi,
                            double delay_lo, double delay_hi) {
  SS_REQUIRE(m >= 1, "need at least one processor");
  SS_REQUIRE(speed_lo > 0.0 && speed_lo <= speed_hi, "invalid speed range");
  SS_REQUIRE(delay_lo >= 0.0 && delay_lo <= delay_hi, "invalid delay range");
  std::vector<double> speeds(m);
  for (auto& s : speeds) s = (speed_lo == speed_hi) ? speed_lo : rng.uniform(speed_lo, speed_hi);
  Matrix<double> delays(m, m, 0.0);
  for (std::size_t a = 0; a < m; ++a) {
    for (std::size_t b = a + 1; b < m; ++b) {
      const double d = (delay_lo == delay_hi) ? delay_lo : rng.uniform(delay_lo, delay_hi);
      delays(a, b) = d;
      delays(b, a) = d;
    }
  }
  return Platform(std::move(speeds), std::move(delays));
}

Platform make_paper_figure1_platform() {
  return Platform({1.5, 1.0, 1.5, 1.0}, 1.0);
}

}  // namespace streamsched
