#include "platform/generators.hpp"

#include "util/assert.hpp"

namespace streamsched {

Platform make_homogeneous(std::size_t m, double unit_delay) {
  return Platform::uniform(m, 1.0, unit_delay);
}

Platform make_comm_heterogeneous(Rng& rng, std::size_t m, double delay_lo, double delay_hi) {
  return make_heterogeneous(rng, m, 1.0, 1.0, delay_lo, delay_hi);
}

Platform make_heterogeneous(Rng& rng, std::size_t m, double speed_lo, double speed_hi,
                            double delay_lo, double delay_hi) {
  SS_REQUIRE(m >= 1, "need at least one processor");
  SS_REQUIRE(speed_lo > 0.0 && speed_lo <= speed_hi, "invalid speed range");
  SS_REQUIRE(delay_lo >= 0.0 && delay_lo <= delay_hi, "invalid delay range");
  std::vector<double> speeds(m);
  for (auto& s : speeds) s = (speed_lo == speed_hi) ? speed_lo : rng.uniform(speed_lo, speed_hi);
  Matrix<double> delays(m, m, 0.0);
  for (std::size_t a = 0; a < m; ++a) {
    for (std::size_t b = a + 1; b < m; ++b) {
      const double d = (delay_lo == delay_hi) ? delay_lo : rng.uniform(delay_lo, delay_hi);
      delays(a, b) = d;
      delays(b, a) = d;
    }
  }
  return Platform(std::move(speeds), std::move(delays));
}

Platform make_paper_figure1_platform() {
  return Platform({1.5, 1.0, 1.5, 1.0}, 1.0);
}

Platform make_reliability_heterogeneous(Rng& rng, std::size_t m, double p_lo, double p_hi,
                                        double delay_lo, double delay_hi) {
  SS_REQUIRE(p_lo >= 0.0 && p_lo <= p_hi && p_hi < 1.0, "invalid failure probability range");
  Platform platform = make_comm_heterogeneous(rng, m, delay_lo, delay_hi);
  std::vector<double> probs(m);
  for (auto& p : probs) p = (p_lo == p_hi) ? p_lo : rng.uniform(p_lo, p_hi);
  platform.set_failure_probs(std::move(probs));
  return platform;
}

Platform make_edge_core(std::size_t core, std::size_t edge, double p_core, double p_edge,
                        double core_delay, double edge_delay) {
  const std::size_t m = core + edge;
  SS_REQUIRE(m >= 1, "need at least one processor");
  SS_REQUIRE(p_core >= 0.0 && p_core < 1.0 && p_edge >= 0.0 && p_edge < 1.0,
             "failure probabilities must lie in [0, 1)");
  SS_REQUIRE(core_delay >= 0.0 && edge_delay >= 0.0, "unit delays must be non-negative");
  Matrix<double> delays(m, m, 0.0);
  for (std::size_t a = 0; a < m; ++a) {
    for (std::size_t b = a + 1; b < m; ++b) {
      const double d = (a < core && b < core) ? core_delay : edge_delay;
      delays(a, b) = d;
      delays(b, a) = d;
    }
  }
  Platform platform(std::vector<double>(m, 1.0), std::move(delays));
  std::vector<double> probs(m, p_edge);
  for (std::size_t u = 0; u < core; ++u) probs[u] = p_core;
  platform.set_failure_probs(std::move(probs));
  return platform;
}

}  // namespace streamsched
