// Platform generators: homogeneous clusters, the paper's
// communication-heterogeneous setup (speeds 1, unit delays U[0.5, 1]),
// fully heterogeneous platforms, and the 4-processor platform of the
// paper's Figure 1 example.
#pragma once

#include "platform/platform.hpp"
#include "util/rng.hpp"

namespace streamsched {

/// m identical processors (speed 1) with one shared unit delay.
[[nodiscard]] Platform make_homogeneous(std::size_t m, double unit_delay = 1.0);

/// Paper §5 experimental platform: m processors of speed 1; per-link unit
/// delays drawn uniformly from [delay_lo, delay_hi] (default [0.5, 1]).
[[nodiscard]] Platform make_comm_heterogeneous(Rng& rng, std::size_t m, double delay_lo = 0.5,
                                               double delay_hi = 1.0);

/// Fully heterogeneous: speeds U[speed_lo, speed_hi], unit delays
/// U[delay_lo, delay_hi].
[[nodiscard]] Platform make_heterogeneous(Rng& rng, std::size_t m, double speed_lo,
                                          double speed_hi, double delay_lo, double delay_hi);

/// Paper Figure 1 platform: 4 processors with speeds {1.5, 1, 1.5, 1} and
/// unit bandwidth on every link (unit delay 1).
[[nodiscard]] Platform make_paper_figure1_platform();

}  // namespace streamsched
