// Platform generators: homogeneous clusters, the paper's
// communication-heterogeneous setup (speeds 1, unit delays U[0.5, 1]),
// fully heterogeneous platforms, and the 4-processor platform of the
// paper's Figure 1 example.
#pragma once

#include "platform/platform.hpp"
#include "util/rng.hpp"

namespace streamsched {

/// m identical processors (speed 1) with one shared unit delay.
[[nodiscard]] Platform make_homogeneous(std::size_t m, double unit_delay = 1.0);

/// Paper §5 experimental platform: m processors of speed 1; per-link unit
/// delays drawn uniformly from [delay_lo, delay_hi] (default [0.5, 1]).
[[nodiscard]] Platform make_comm_heterogeneous(Rng& rng, std::size_t m, double delay_lo = 0.5,
                                               double delay_hi = 1.0);

/// Fully heterogeneous: speeds U[speed_lo, speed_hi], unit delays
/// U[delay_lo, delay_hi].
[[nodiscard]] Platform make_heterogeneous(Rng& rng, std::size_t m, double speed_lo,
                                          double speed_hi, double delay_lo, double delay_hi);

/// Paper Figure 1 platform: 4 processors with speeds {1.5, 1, 1.5, 1} and
/// unit bandwidth on every link (unit delay 1).
[[nodiscard]] Platform make_paper_figure1_platform();

/// Heterogeneous-reliability platform: the §5 comm-heterogeneous setup
/// (speeds 1, unit delays U[delay_lo, delay_hi]) whose processors
/// additionally carry independent failure probabilities U[p_lo, p_hi] —
/// the experiment platform of the probabilistic fault model.
[[nodiscard]] Platform make_reliability_heterogeneous(Rng& rng, std::size_t m, double p_lo,
                                                      double p_hi, double delay_lo = 0.5,
                                                      double delay_hi = 1.0);

/// Reliable-core / unreliable-edge cluster: `core` processors with failure
/// probability p_core and unit delay core_delay among themselves, `edge`
/// processors with failure probability p_edge; every link touching an edge
/// processor has unit delay edge_delay. Speeds are 1. Models a sturdy
/// datacenter core fed by flaky edge nodes.
[[nodiscard]] Platform make_edge_core(std::size_t core, std::size_t edge, double p_core,
                                      double p_edge, double core_delay = 0.5,
                                      double edge_delay = 1.0);

}  // namespace streamsched
