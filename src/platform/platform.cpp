#include "platform/platform.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace streamsched {

namespace {
void validate_speeds(const std::vector<double>& speeds) {
  SS_REQUIRE(!speeds.empty(), "platform needs at least one processor");
  for (double s : speeds) SS_REQUIRE(s > 0.0, "processor speed must be positive");
}
}  // namespace

Platform::Platform(std::vector<double> speeds, double unit_delay)
    : speeds_(std::move(speeds)),
      delays_(speeds_.size(), speeds_.size(), unit_delay),
      fail_probs_(speeds_.size(), 0.0) {
  validate_speeds(speeds_);
  SS_REQUIRE(unit_delay >= 0.0, "unit delay must be non-negative");
  for (std::size_t u = 0; u < speeds_.size(); ++u) delays_(u, u) = 0.0;
}

Platform::Platform(std::vector<double> speeds, Matrix<double> unit_delays)
    : speeds_(std::move(speeds)),
      delays_(std::move(unit_delays)),
      fail_probs_(speeds_.size(), 0.0) {
  validate_speeds(speeds_);
  SS_REQUIRE(delays_.rows() == speeds_.size() && delays_.cols() == speeds_.size(),
             "unit delay matrix shape must be m x m");
  for (std::size_t a = 0; a < speeds_.size(); ++a) {
    delays_(a, a) = 0.0;
    for (std::size_t b = a + 1; b < speeds_.size(); ++b) {
      SS_REQUIRE(delays_(a, b) >= 0.0, "unit delay must be non-negative");
      SS_REQUIRE(delays_(a, b) == delays_(b, a), "unit delay matrix must be symmetric");
    }
  }
}

Platform Platform::uniform(std::size_t m, double speed, double unit_delay) {
  return Platform(std::vector<double>(m, speed), unit_delay);
}

void Platform::check_proc(ProcId u) const {
  SS_REQUIRE(u < speeds_.size(), "processor id out of range");
}

double Platform::speed(ProcId u) const {
  check_proc(u);
  return speeds_[u];
}

double Platform::unit_delay(ProcId a, ProcId b) const {
  check_proc(a);
  check_proc(b);
  return delays_(a, b);
}

void Platform::set_unit_delay(ProcId a, ProcId b, double delay) {
  check_proc(a);
  check_proc(b);
  SS_REQUIRE(a != b, "cannot set the delay of a processor to itself");
  SS_REQUIRE(delay >= 0.0, "unit delay must be non-negative");
  delays_(a, b) = delay;
  delays_(b, a) = delay;
}

double Platform::exec_time(double work, ProcId u) const {
  check_proc(u);
  return work / speeds_[u];
}

double Platform::comm_time(double volume, ProcId a, ProcId b) const {
  check_proc(a);
  check_proc(b);
  if (a == b) return 0.0;
  return volume * delays_(a, b);
}

double Platform::min_speed() const { return *std::min_element(speeds_.begin(), speeds_.end()); }

double Platform::max_speed() const { return *std::max_element(speeds_.begin(), speeds_.end()); }

double Platform::mean_speed() const {
  double sum = 0.0;
  for (double s : speeds_) sum += s;
  return sum / static_cast<double>(speeds_.size());
}

double Platform::mean_inverse_speed() const {
  double sum = 0.0;
  for (double s : speeds_) sum += 1.0 / s;
  return sum / static_cast<double>(speeds_.size());
}

double Platform::max_unit_delay() const {
  double best = 0.0;
  for (std::size_t a = 0; a < speeds_.size(); ++a)
    for (std::size_t b = 0; b < speeds_.size(); ++b)
      if (a != b) best = std::max(best, delays_(a, b));
  return best;
}

double Platform::min_unit_delay() const {
  if (speeds_.size() < 2) return 0.0;
  double best = delays_(0, 1);
  for (std::size_t a = 0; a < speeds_.size(); ++a)
    for (std::size_t b = 0; b < speeds_.size(); ++b)
      if (a != b) best = std::min(best, delays_(a, b));
  return best;
}

namespace {
void validate_failure_prob(double p) {
  SS_REQUIRE(p >= 0.0 && p < 1.0, "failure probability must lie in [0, 1)");
}
}  // namespace

double Platform::failure_prob(ProcId u) const {
  check_proc(u);
  return fail_probs_[u];
}

void Platform::set_failure_prob(ProcId u, double p) {
  check_proc(u);
  validate_failure_prob(p);
  fail_probs_[u] = p;
}

void Platform::set_failure_probs(std::vector<double> probs) {
  SS_REQUIRE(probs.size() == speeds_.size(),
             "failure probabilities must have one entry per processor");
  for (double p : probs) validate_failure_prob(p);
  fail_probs_ = std::move(probs);
}

double Platform::max_failure_prob() const {
  if (fail_probs_.empty()) return 0.0;
  return *std::max_element(fail_probs_.begin(), fail_probs_.end());
}

bool Platform::has_failure_probs() const {
  return std::any_of(fail_probs_.begin(), fail_probs_.end(), [](double p) { return p > 0.0; });
}

double Platform::mean_unit_delay() const {
  if (speeds_.size() < 2) return 0.0;
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t a = 0; a < speeds_.size(); ++a)
    for (std::size_t b = 0; b < speeds_.size(); ++b)
      if (a != b) {
        sum += delays_(a, b);
        ++count;
      }
  return sum / static_cast<double>(count);
}

}  // namespace streamsched
