#include "schedule/validate.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "schedule/metrics.hpp"

namespace streamsched {

std::size_t ValidationReport::count(ViolationCode code) const {
  std::size_t n = 0;
  for (const auto& violation : violations) {
    if (violation.code == code) ++n;
  }
  return n;
}

namespace {
const char* code_name(ViolationCode code) {
  switch (code) {
    case ViolationCode::kUnplacedReplica: return "unplaced-replica";
    case ViolationCode::kDuplicateProcessor: return "duplicate-processor";
    case ViolationCode::kComputeOverload: return "compute-overload";
    case ViolationCode::kInputPortOverload: return "input-port-overload";
    case ViolationCode::kOutputPortOverload: return "output-port-overload";
    case ViolationCode::kMissingSupplier: return "missing-supplier";
    case ViolationCode::kStageInconsistent: return "stage-inconsistent";
    case ViolationCode::kBadExecDuration: return "bad-exec-duration";
    case ViolationCode::kBadCommDuration: return "bad-comm-duration";
    case ViolationCode::kCommBeforeData: return "comm-before-data";
    case ViolationCode::kExecBeforeInput: return "exec-before-input";
    case ViolationCode::kComputeOverlap: return "compute-overlap";
    case ViolationCode::kSendPortOverlap: return "send-port-overlap";
    case ViolationCode::kRecvPortOverlap: return "recv-port-overlap";
  }
  return "?";
}
}  // namespace

std::string ValidationReport::summary(std::size_t max_items) const {
  if (ok()) return "valid";
  std::ostringstream os;
  os << violations.size() << " violation(s):";
  for (std::size_t i = 0; i < violations.size() && i < max_items; ++i) {
    os << "\n  [" << code_name(violations[i].code) << "] " << violations[i].detail;
  }
  if (violations.size() > max_items) {
    os << "\n  ... and " << (violations.size() - max_items) << " more";
  }
  return os.str();
}

namespace {

class Validator {
 public:
  Validator(const Schedule& s, const ValidateOptions& opt) : s_(s), opt_(opt) {}

  ValidationReport run() {
    check_placement();
    if (all_placed_) {
      check_loads();
      check_suppliers();
      check_stages();
      if (opt_.check_timing) check_timing();
    }
    return std::move(report_);
  }

 private:
  void add(ViolationCode code, std::string detail) {
    report_.violations.push_back(Violation{code, std::move(detail)});
  }

  [[nodiscard]] std::string rname(ReplicaRef r) const {
    return s_.dag().name(r.task) + "#" + std::to_string(r.copy);
  }

  void check_placement() {
    const Dag& dag = s_.dag();
    for (TaskId t = 0; t < dag.num_tasks(); ++t) {
      std::vector<ProcId> procs;
      for (CopyId c = 0; c < s_.copies(); ++c) {
        const ReplicaRef r{t, c};
        if (!s_.is_placed(r)) {
          add(ViolationCode::kUnplacedReplica, rname(r) + " is not placed");
          all_placed_ = false;
          continue;
        }
        procs.push_back(s_.placed(r).proc);
      }
      std::sort(procs.begin(), procs.end());
      if (std::adjacent_find(procs.begin(), procs.end()) != procs.end()) {
        add(ViolationCode::kDuplicateProcessor,
            "task " + dag.name(t) + " has two replicas on one processor");
      }
    }
  }

  void check_loads() {
    const double period = s_.period();
    if (!std::isfinite(period)) return;
    const double limit = period * (1.0 + opt_.tolerance);
    // Port budgets are checked against the algorithm's own channels;
    // repair backups are allowed to exceed them (schedule/fault_tolerance
    // documents and reports this via RepairStats::period_exceeded).
    const std::size_t m = s_.platform().num_procs();
    std::vector<double> cin(m, 0.0), cout(m, 0.0);
    for (const CommRecord& comm : s_.comms()) {
      if (comm.repair) continue;
      const ProcId from = s_.placed(comm.src).proc;
      const ProcId to = s_.placed(comm.dst).proc;
      if (from == to) continue;
      const double duration = s_.platform().comm_time(s_.dag().edge(comm.edge).volume,
                                                      from, to);
      cout[from] += duration;
      cin[to] += duration;
    }
    for (ProcId u = 0; u < m; ++u) {
      if (s_.sigma(u) > limit) {
        add(ViolationCode::kComputeOverload,
            "P" + std::to_string(u) + ": sigma=" + std::to_string(s_.sigma(u)) +
                " > period=" + std::to_string(period));
      }
      if (cin[u] > limit) {
        add(ViolationCode::kInputPortOverload,
            "P" + std::to_string(u) + ": cin=" + std::to_string(cin[u]) +
                " > period=" + std::to_string(period));
      }
      if (cout[u] > limit) {
        add(ViolationCode::kOutputPortOverload,
            "P" + std::to_string(u) + ": cout=" + std::to_string(cout[u]) +
                " > period=" + std::to_string(period));
      }
    }
  }

  void check_suppliers() {
    const Dag& dag = s_.dag();
    for (TaskId t = 0; t < dag.num_tasks(); ++t) {
      for (CopyId c = 0; c < s_.copies(); ++c) {
        const ReplicaRef r{t, c};
        for (TaskId pred : dag.predecessors(t)) {
          if (s_.suppliers(r, pred).empty()) {
            add(ViolationCode::kMissingSupplier,
                rname(r) + " has no supplier for predecessor " + dag.name(pred));
          }
        }
      }
    }
  }

  void check_stages() {
    const auto derived = stages_from_structure(s_);
    for (TaskId t = 0; t < s_.dag().num_tasks(); ++t) {
      for (CopyId c = 0; c < s_.copies(); ++c) {
        const ReplicaRef r{t, c};
        if (s_.placed(r).stage != derived[t][c]) {
          add(ViolationCode::kStageInconsistent,
              rname(r) + ": stored stage " + std::to_string(s_.placed(r).stage) +
                  " != derived " + std::to_string(derived[t][c]));
        }
      }
    }
  }

  // Interval bookkeeping for overlap checks.
  struct Interval {
    double start;
    double finish;
    std::string what;
  };

  void check_overlaps(std::vector<Interval>& intervals, ViolationCode code) {
    std::sort(intervals.begin(), intervals.end(),
              [](const Interval& a, const Interval& b) { return a.start < b.start; });
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      if (intervals[i].start < intervals[i - 1].finish - tol_abs()) {
        add(code, intervals[i - 1].what + " overlaps " + intervals[i].what);
      }
    }
  }

  [[nodiscard]] double tol_abs() const {
    // Scale the relative tolerance by the schedule horizon.
    return opt_.tolerance * std::max(1.0, s_.makespan());
  }

  void check_timing() {
    const Dag& dag = s_.dag();
    const Platform& pf = s_.platform();
    std::vector<std::vector<Interval>> compute(pf.num_procs());
    std::vector<std::vector<Interval>> sends(pf.num_procs());
    std::vector<std::vector<Interval>> recvs(pf.num_procs());

    for (TaskId t = 0; t < dag.num_tasks(); ++t) {
      for (CopyId c = 0; c < s_.copies(); ++c) {
        const ReplicaRef r{t, c};
        const PlacedReplica& p = s_.placed(r);
        const double expected = pf.exec_time(dag.work(t), p.proc);
        if (std::abs((p.finish - p.start) - expected) > tol_abs()) {
          add(ViolationCode::kBadExecDuration,
              rname(r) + ": duration " + std::to_string(p.finish - p.start) +
                  " != work/speed " + std::to_string(expected));
        }
        compute[p.proc].push_back({p.start, p.finish, rname(r)});
      }
    }

    for (const CommRecord& comm : s_.comms()) {
      if (comm.repair) continue;  // repair comms carry no meaningful timeline
      const PlacedReplica& src = s_.placed(comm.src);
      const PlacedReplica& dst = s_.placed(comm.dst);
      const std::string what = rname(comm.src) + "->" + rname(comm.dst);
      const double expected = pf.comm_time(dag.edge(comm.edge).volume, src.proc, dst.proc);
      if (std::abs((comm.finish - comm.start) - expected) > tol_abs()) {
        add(ViolationCode::kBadCommDuration,
            what + ": duration " + std::to_string(comm.finish - comm.start) + " != " +
                std::to_string(expected));
      }
      if (comm.start < src.finish - tol_abs()) {
        add(ViolationCode::kCommBeforeData,
            what + " starts before the source replica finishes");
      }
      if (src.proc != dst.proc) {
        sends[src.proc].push_back({comm.start, comm.finish, what});
        recvs[dst.proc].push_back({comm.start, comm.finish, what});
      }
    }

    // A replica may not start before, for every predecessor, at least one
    // supplier's data has arrived (repair channels excluded).
    for (TaskId t = 0; t < dag.num_tasks(); ++t) {
      for (CopyId c = 0; c < s_.copies(); ++c) {
        const ReplicaRef r{t, c};
        const PlacedReplica& p = s_.placed(r);
        std::vector<double> earliest(dag.num_tasks(), -1.0);
        for (std::uint32_t idx : s_.in_comms(r)) {
          const CommRecord& comm = s_.comms()[idx];
          if (comm.repair) continue;
          const double arrival = comm.finish;
          double& slot = earliest[comm.src.task];
          slot = (slot < 0.0) ? arrival : std::min(slot, arrival);
        }
        for (TaskId pred : dag.predecessors(t)) {
          if (earliest[pred] < 0.0) continue;  // only repair suppliers: skip
          if (p.start < earliest[pred] - tol_abs()) {
            add(ViolationCode::kExecBeforeInput,
                rname(r) + " starts before data from " + dag.name(pred) + " arrives");
          }
        }
      }
    }

    for (ProcId u = 0; u < pf.num_procs(); ++u) {
      check_overlaps(compute[u], ViolationCode::kComputeOverlap);
      check_overlaps(sends[u], ViolationCode::kSendPortOverlap);
      check_overlaps(recvs[u], ViolationCode::kRecvPortOverlap);
    }
  }

  const Schedule& s_;
  const ValidateOptions& opt_;
  ValidationReport report_;
  bool all_placed_ = true;
};

}  // namespace

ValidationReport validate_schedule(const Schedule& schedule, const ValidateOptions& options) {
  Validator validator(schedule, options);
  return validator.run();
}

}  // namespace streamsched
