// Schedule performance metrics (paper §4).
//
// Pipeline stages record processor changes along dependence paths: entry
// replicas are in stage 1 and a replica's stage is max over its suppliers
// of (supplier stage + η), η = 0 when colocated and 1 otherwise. With S
// stages and period Δ, the pipelined latency bound is L = (2S − 1)·Δ:
// in steady state each of the S compute phases and S − 1 inter-stage
// transfer phases occupies one period.
#pragma once

#include <cstdint>
#include <vector>

#include "schedule/schedule.hpp"

namespace streamsched {

/// Minimal stage labeling derived from the recorded communications,
/// indexed like [task][copy]. Unplaced replicas get stage 0.
[[nodiscard]] std::vector<std::vector<std::uint32_t>> stages_from_structure(
    const Schedule& schedule);

/// Overwrites every placed replica's stage with the minimal derived
/// labeling; returns the resulting stage count S.
std::uint32_t recompute_stages(Schedule& schedule);

/// S: maximum stored stage over placed replicas (0 for an empty schedule).
[[nodiscard]] std::uint32_t num_stages(const Schedule& schedule);

/// L = (2S − 1) · Δ. Infinite when the period is infinite; 0 when empty.
[[nodiscard]] double latency_upper_bound(const Schedule& schedule);

/// max_u ∆_u where ∆_u = max(Σ_u, C^I_u, C^O_u).
[[nodiscard]] double max_cycle_time(const Schedule& schedule);

/// 1 / max_cycle_time (the throughput the mapping can sustain).
[[nodiscard]] double throughput_bound(const Schedule& schedule);

/// Communications crossing processors (cost > 0 channels).
[[nodiscard]] std::size_t num_remote_comms(const Schedule& schedule);

/// All recorded supply channels, including colocated ones.
[[nodiscard]] std::size_t num_total_comms(const Schedule& schedule);

/// Communications added by the fault-tolerance repair pass.
[[nodiscard]] std::size_t num_repair_comms(const Schedule& schedule);

/// Fraction of the period processor u spends computing (T · Σ_u).
[[nodiscard]] double proc_utilization(const Schedule& schedule, ProcId u);

/// Number of distinct processors actually used by the mapping.
[[nodiscard]] std::size_t num_procs_used(const Schedule& schedule);

}  // namespace streamsched
