// Replicated pipelined schedule (the output of every scheduler in core/).
//
// A schedule maps each task's ε+1 replicas onto processors and records the
// replicated communications: one CommRecord per (supplier replica ->
// consumer replica) pair of a DAG edge, including zero-cost colocated
// transfers. Input semantics are ANY-of per predecessor task: a replica can
// execute once, for every predecessor, the data of at least one of its
// recorded suppliers is available (active replication makes all copies of
// a task equivalent).
//
// The stored start/finish times are the construction timeline of the
// greedy schedulers; reported performance comes from the stage-count bound
// (metrics.hpp) and the discrete-event simulator (sim/), never from these
// timestamps.
#pragma once

#include <span>
#include <vector>

#include "graph/dag.hpp"
#include "platform/platform.hpp"
#include "util/types.hpp"

namespace streamsched {

/// Placement of one replica.
struct PlacedReplica {
  ProcId proc = kInvalidProc;
  double start = 0.0;
  double finish = 0.0;
  /// Pipeline stage (1-based). See metrics.hpp for the stage semantics.
  std::uint32_t stage = 1;
};

/// One replicated communication along a DAG edge.
struct CommRecord {
  EdgeId edge = kInvalidEdge;
  ReplicaRef src;  ///< replica of dag.edge(edge).src
  ReplicaRef dst;  ///< replica of dag.edge(edge).dst
  double start = 0.0;   ///< builder timeline (0-duration when colocated)
  double finish = 0.0;
  bool repair = false;  ///< added by the fault-tolerance repair pass
};

class Schedule {
 public:
  /// eps = ε (number of tolerated failures); every task gets ε+1 replicas.
  /// period = Δ (use std::numeric_limits<double>::infinity() when the
  /// throughput constraint is absent).
  Schedule(const Dag& dag, const Platform& platform, CopyId eps, double period);

  [[nodiscard]] const Dag& dag() const { return *dag_; }
  [[nodiscard]] const Platform& platform() const { return *platform_; }
  [[nodiscard]] CopyId eps() const { return eps_; }
  /// Number of replicas per task (ε + 1).
  [[nodiscard]] CopyId copies() const { return eps_ + 1; }
  [[nodiscard]] double period() const { return period_; }

  [[nodiscard]] bool is_placed(ReplicaRef r) const;
  [[nodiscard]] const PlacedReplica& placed(ReplicaRef r) const;

  /// Places replica r; each (task, copy) may be placed exactly once.
  void place(ReplicaRef r, ProcId proc, double start, double finish, std::uint32_t stage);

  void set_stage(ReplicaRef r, std::uint32_t stage);

  /// Appends a communication record and indexes it; returns its index.
  /// Both endpoints must already be placed.
  std::uint32_t add_comm(const CommRecord& comm);

  [[nodiscard]] const std::vector<CommRecord>& comms() const { return comms_; }
  [[nodiscard]] std::span<const std::uint32_t> in_comms(ReplicaRef r) const;
  [[nodiscard]] std::span<const std::uint32_t> out_comms(ReplicaRef r) const;

  /// Replicas of `pred` recorded as suppliers of r (pred must be an
  /// immediate predecessor task of r.task).
  [[nodiscard]] std::vector<ReplicaRef> suppliers(ReplicaRef r, TaskId pred) const;

  /// True when r already records a supply comm from `src`.
  [[nodiscard]] bool has_supplier(ReplicaRef r, ReplicaRef src) const;

  /// Per-processor loads per data item: compute load Σ_u, input port load
  /// C^I_u and output port load C^O_u (remote communications only).
  [[nodiscard]] double sigma(ProcId u) const;
  [[nodiscard]] double cin(ProcId u) const;
  [[nodiscard]] double cout(ProcId u) const;

  /// All replicas currently placed on processor u.
  [[nodiscard]] std::vector<ReplicaRef> replicas_on(ProcId u) const;

  /// Latest finish time over all placed replicas (builder timeline).
  [[nodiscard]] double makespan() const;

  [[nodiscard]] std::size_t num_placed() const { return num_placed_; }
  /// True when every replica of every task is placed.
  [[nodiscard]] bool complete() const;

 private:
  void check_replica(ReplicaRef r) const;

  const Dag* dag_;
  const Platform* platform_;
  CopyId eps_;
  double period_;
  std::size_t num_placed_ = 0;

  std::vector<std::vector<PlacedReplica>> placed_;       // [task][copy]
  std::vector<std::vector<bool>> placed_flag_;           // [task][copy]
  std::vector<CommRecord> comms_;
  std::vector<std::vector<std::vector<std::uint32_t>>> in_;   // [task][copy]
  std::vector<std::vector<std::vector<std::uint32_t>>> out_;  // [task][copy]
  std::vector<double> sigma_, cin_, cout_;
};

}  // namespace streamsched
