#include "schedule/printer.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "schedule/metrics.hpp"

namespace streamsched {

namespace {
std::string replica_name(const Schedule& s, ReplicaRef r) {
  return s.dag().name(r.task) + "#" + std::to_string(r.copy);
}
}  // namespace

std::string format_mapping(const Schedule& schedule) {
  const Dag& dag = schedule.dag();
  std::ostringstream os;
  const std::uint32_t stages = num_stages(schedule);
  for (std::uint32_t stage = 1; stage <= stages; ++stage) {
    os << "stage " << stage << ':';
    for (TaskId t = 0; t < dag.num_tasks(); ++t) {
      for (CopyId c = 0; c < schedule.copies(); ++c) {
        const ReplicaRef r{t, c};
        if (!schedule.is_placed(r) || schedule.placed(r).stage != stage) continue;
        os << ' ' << replica_name(schedule, r) << "@P" << schedule.placed(r).proc;
      }
    }
    os << '\n';
  }
  return os.str();
}

std::string format_processor_timeline(const Schedule& schedule) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2);
  for (ProcId u = 0; u < schedule.platform().num_procs(); ++u) {
    auto replicas = schedule.replicas_on(u);
    if (replicas.empty()) continue;
    std::sort(replicas.begin(), replicas.end(), [&](ReplicaRef a, ReplicaRef b) {
      return schedule.placed(a).start < schedule.placed(b).start;
    });
    os << 'P' << u << " (sigma=" << schedule.sigma(u) << ", cin=" << schedule.cin(u)
       << ", cout=" << schedule.cout(u) << ")\n";
    for (ReplicaRef r : replicas) {
      const PlacedReplica& p = schedule.placed(r);
      os << "  [" << std::setw(8) << p.start << ", " << std::setw(8) << p.finish << ") "
         << replica_name(schedule, r) << " (stage " << p.stage << ")\n";
    }
  }
  return os.str();
}

std::string to_dot_schedule(const Schedule& schedule, const std::string& graph_name) {
  const Dag& dag = schedule.dag();
  std::ostringstream os;
  os << "digraph " << graph_name << " {\n  rankdir=TB;\n  node [shape=box];\n";
  for (TaskId t = 0; t < dag.num_tasks(); ++t) {
    for (CopyId c = 0; c < schedule.copies(); ++c) {
      const ReplicaRef r{t, c};
      if (!schedule.is_placed(r)) continue;
      const PlacedReplica& p = schedule.placed(r);
      os << "  r" << t << '_' << c << " [label=\"" << replica_name(schedule, r) << "\\nP"
         << p.proc << " s" << p.stage << "\"];\n";
    }
  }
  for (const CommRecord& comm : schedule.comms()) {
    os << "  r" << comm.src.task << '_' << comm.src.copy << " -> r" << comm.dst.task << '_'
       << comm.dst.copy;
    if (comm.repair) os << " [style=dashed]";
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

std::string summarize(const Schedule& schedule) {
  std::ostringstream os;
  os << "stages=" << num_stages(schedule) << " latency_bound=" << latency_upper_bound(schedule)
     << " comms=" << num_total_comms(schedule) << " (remote " << num_remote_comms(schedule)
     << ", repair " << num_repair_comms(schedule) << ") procs=" << num_procs_used(schedule)
     << " period=" << schedule.period();
  return os.str();
}

}  // namespace streamsched
