// Fault-tolerance analysis of replicated schedules.
//
// The paper's reliability requirement (§2): valid results must be produced
// even if any ε processors fail (fail-silent / fail-stop). A replica is
// *computable* under a failure set F when its processor is alive and, for
// every predecessor task, at least one of its recorded suppliers is
// computable. The schedule is valid under F when every task retains at
// least one computable replica (equivalently: every exit task does — the
// conditions coincide because a computable exit recursively certifies one
// computable replica per ancestor).
//
// Computability is monotone in F, so checking all failure sets of size
// exactly ε covers all smaller sets.
//
// The LTF/R-LTF heuristics keep replica chains processor-disjoint *most*
// of the time via the one-to-one mapping, but (unlike the paper's claim)
// this is not guaranteed for arbitrary DAGs. `repair_fault_tolerance`
// enforces the paper's stated guarantee by adding supply channels until
// every failure set is survivable; experiments run with repair enabled and
// report how much repair was needed.
#pragma once

#include <cstdint>
#include <vector>

#include "schedule/fault_model.hpp"
#include "schedule/schedule.hpp"
#include "util/rng.hpp"

namespace streamsched {

class SurvivalOracle;  // schedule/survival.hpp
class ProcSet;

/// Computability of every replica under the given failure set
/// (failed[u] == true means processor u is down), indexed [task][copy].
[[nodiscard]] std::vector<std::vector<bool>> computable_replicas(
    const Schedule& schedule, const std::vector<bool>& failed);

/// True when every task keeps at least one computable replica under F.
[[nodiscard]] bool survives_failures(const Schedule& schedule,
                                     const std::vector<bool>& failed);

struct FtCheckResult {
  bool valid = true;
  /// A failure set that kills the schedule (empty when valid).
  std::vector<ProcId> counterexample;
  std::uint64_t sets_checked = 0;
};

/// Exhaustively enumerates all C(m, eps) failure sets of size
/// `max_failures` (feasible for experiment sizes: C(20,3) = 1140).
[[nodiscard]] FtCheckResult check_fault_tolerance(const Schedule& schedule,
                                                  std::uint32_t max_failures);

/// Monte-Carlo variant for large platforms: samples `samples` failure sets.
[[nodiscard]] FtCheckResult check_fault_tolerance_sampled(const Schedule& schedule,
                                                          std::uint32_t max_failures,
                                                          std::uint64_t samples, Rng& rng);

struct RepairStats {
  bool success = false;
  std::uint32_t added_comms = 0;
  std::uint32_t rounds = 0;
  /// True when an added channel pushed some port load beyond the period
  /// (recorded, not fatal: reliability takes precedence, as in the paper).
  bool period_exceeded = false;
  /// Probabilistic repair (repair_for_model) only: the final schedule
  /// reliability estimate, so callers need not recompute it. −1 for the
  /// count-model repair, whose guarantee is the exhaustive ε-failure
  /// check.
  double reliability = -1.0;
};

/// Adds supply channels (CommRecord::repair = true) until the schedule
/// survives every failure set of size `max_failures`. Requires
/// max_failures <= eps. Repair channels are excluded from stage derivation
/// (they are backup paths used only under failures), so the latency bound
/// still describes the algorithm's own structure; the simulator does pay
/// their port cost, keeping measured latencies honest.
RepairStats repair_fault_tolerance(Schedule& schedule, std::uint32_t max_failures);

/// Warm-oracle variant: `oracle` must be compiled from `schedule` (it is
/// patched in place as channels are wired, staying current afterwards).
/// Resident services keep one oracle per cached schedule, so repair after
/// a live failure event never recompiles the placement.
RepairStats repair_fault_tolerance(Schedule& schedule, SurvivalOracle& oracle,
                                   std::uint32_t max_failures);

/// Adds supply channels until the schedule survives the ONE concrete
/// failure set `failed` (the placement daemon's event-repair primitive:
/// live processors just died, make every cached consumer of the cluster
/// survive exactly that state). `oracle` must be compiled from `schedule`
/// and is patched in place. `success` is false when the set is beyond
/// repair (e.g. every replica of some task sits on failed processors);
/// `rounds` counts the repair steps taken (0 when the schedule already
/// survives).
RepairStats repair_for_failure_set(Schedule& schedule, SurvivalOracle& oracle,
                                   const ProcSet& failed);

// ---------------------------------------------------------------------------
// Probabilistic reliability (heterogeneous per-processor failure model).
// The platform's failure probabilities p_u define independent fail-silent
// events; the schedule reliability is the probability that every task keeps
// a computable replica.

/// Which survival kernel drives the estimator. kBatch (the default)
/// resolves failure sets 64 at a time through the bit-sliced
/// `SurvivalOracle::survives_batch` pass; kOracle evaluates them one at a
/// time on the same compiled oracle; kLegacy re-walks the comm records per
/// set via `survives_failures`. All three are boolean-identical (pinned by
/// the parity suite), so exact-mode reliabilities are bit-identical and
/// Monte-Carlo estimates identical at a fixed seed; kOracle and kLegacy
/// exist as the measured baselines for bench_survival_kernel and the
/// parity tests. The oracle's replica masks are multi-word, so no entry
/// point requires a legacy fallback for schedules with more than 64
/// replicas per task anymore.
enum class SurvivalKernel { kBatch, kOracle, kLegacy };

struct ReliabilityOptions {
  /// Probability mass of unenumerated failure sets at which the exact
  /// enumeration truncates. Truncated mass counts as failure, so the exact
  /// estimate is a certified lower bound.
  double tail_tolerance = 1e-10;
  /// Enumeration budget (failure sets); beyond it the estimator switches
  /// to importance-sampled Monte Carlo.
  std::uint64_t max_sets = 1u << 18;
  /// Monte-Carlo sample count (only used above the enumeration budget).
  std::uint64_t mc_samples = 20000;
  /// Per-processor proposal floor for the importance sampler: failures are
  /// drawn with q_u = max(p_u, mc_proposal_floor) and reweighted, so rare
  /// failure events are actually observed.
  double mc_proposal_floor = 0.2;
  std::uint64_t seed = 0x5eedULL;
  SurvivalKernel kernel = SurvivalKernel::kBatch;
  /// Worker threads for the Monte-Carlo survival evaluation (1 = inline,
  /// 0 = hardware concurrency). The estimate is the same for every value:
  /// all failure sets are pre-drawn from `seed`'s single sequential stream
  /// (bit-identical to the legacy sampler), only the survival checks fan
  /// out, and the reduction runs in sample order.
  std::size_t mc_threads = 1;
  /// Worker threads for the EXACT enumeration (1 = inline, 0 = hardware
  /// concurrency; kBatch/kOracle only — kLegacy stays serial). The
  /// enumeration is partitioned into contiguous lexicographic ranges whose
  /// survival checks fan out; the weighted reduction then walks the sets
  /// in enumeration order, so the reliability is bit-identical for every
  /// thread count and to the serial kernel.
  std::size_t exact_threads = 1;
};

struct ReliabilityEstimate {
  /// P(every task keeps a computable replica). Exact mode: a lower bound
  /// within tail_tolerance; Monte-Carlo mode: an unbiased estimate.
  double reliability = 0.0;
  bool exact = true;
  std::uint64_t sets_checked = 0;
  /// Truncation point of the exact enumeration: failure sets of size
  /// <= k_max were (or would be) enumerated. Informational in MC mode.
  std::size_t k_max = 0;
  /// Most probable schedule-killing failure set observed (empty if none).
  std::vector<ProcId> worst_failure;
  double worst_failure_prob = 0.0;
};

/// Estimates the schedule reliability under the platform's failure
/// probabilities: exact (truncated) enumeration of failure sets in order
/// of size while the enumeration budget lasts, importance-sampled
/// Monte Carlo above it.
[[nodiscard]] ReliabilityEstimate schedule_reliability(const Schedule& schedule,
                                                       const ReliabilityOptions& options = {});

/// Adds supply channels until the schedule reliability reaches
/// `target_reliability` (or no repairable killing set remains — e.g. when
/// every replica of a task sits on the failed processors, no channel can
/// help). `achieved` (optional) receives the final estimate.
RepairStats repair_to_reliability(Schedule& schedule, double target_reliability,
                                  const ReliabilityOptions& options = {},
                                  ReliabilityEstimate* achieved = nullptr);

/// Warm-oracle variant (see repair_fault_tolerance above): `oracle` must
/// be compiled from `schedule` and is patched in place as repair wires
/// channels.
RepairStats repair_to_reliability(Schedule& schedule, SurvivalOracle& oracle,
                                  double target_reliability,
                                  const ReliabilityOptions& options = {},
                                  ReliabilityEstimate* achieved = nullptr);

/// Model dispatch used by the schedulers' repair pass: count models run
/// the exhaustive ε-failure repair, probabilistic models repair until the
/// target reliability is met.
RepairStats repair_for_model(Schedule& schedule, const FaultModel& model);

/// Warm-oracle model dispatch.
RepairStats repair_for_model(Schedule& schedule, SurvivalOracle& oracle,
                             const FaultModel& model);

}  // namespace streamsched
