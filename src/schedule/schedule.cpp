#include "schedule/schedule.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace streamsched {

Schedule::Schedule(const Dag& dag, const Platform& platform, CopyId eps, double period)
    : dag_(&dag), platform_(&platform), eps_(eps), period_(period) {
  SS_REQUIRE(period > 0.0, "period must be positive (or infinity)");
  SS_REQUIRE(eps < platform.num_procs(),
             "cannot tolerate eps failures with <= eps processors");
  const std::size_t v = dag.num_tasks();
  placed_.assign(v, std::vector<PlacedReplica>(copies()));
  placed_flag_.assign(v, std::vector<bool>(copies(), false));
  in_.assign(v, std::vector<std::vector<std::uint32_t>>(copies()));
  out_.assign(v, std::vector<std::vector<std::uint32_t>>(copies()));
  sigma_.assign(platform.num_procs(), 0.0);
  cin_.assign(platform.num_procs(), 0.0);
  cout_.assign(platform.num_procs(), 0.0);
}

void Schedule::check_replica(ReplicaRef r) const {
  SS_REQUIRE(r.task < dag_->num_tasks(), "replica task id out of range");
  SS_REQUIRE(r.copy < copies(), "replica copy index out of range");
}

bool Schedule::is_placed(ReplicaRef r) const {
  check_replica(r);
  return placed_flag_[r.task][r.copy];
}

const PlacedReplica& Schedule::placed(ReplicaRef r) const {
  SS_REQUIRE(is_placed(r), "replica not placed");
  return placed_[r.task][r.copy];
}

void Schedule::place(ReplicaRef r, ProcId proc, double start, double finish,
                     std::uint32_t stage) {
  check_replica(r);
  SS_REQUIRE(!placed_flag_[r.task][r.copy], "replica already placed");
  SS_REQUIRE(proc < platform_->num_procs(), "processor id out of range");
  SS_REQUIRE(finish >= start, "finish before start");
  SS_REQUIRE(stage >= 1, "stages are 1-based");
  placed_[r.task][r.copy] = PlacedReplica{proc, start, finish, stage};
  placed_flag_[r.task][r.copy] = true;
  ++num_placed_;
  sigma_[proc] += platform_->exec_time(dag_->work(r.task), proc);
}

void Schedule::set_stage(ReplicaRef r, std::uint32_t stage) {
  SS_REQUIRE(is_placed(r), "replica not placed");
  SS_REQUIRE(stage >= 1, "stages are 1-based");
  placed_[r.task][r.copy].stage = stage;
}

std::uint32_t Schedule::add_comm(const CommRecord& comm) {
  SS_REQUIRE(comm.edge < dag_->num_edges(), "comm edge id out of range");
  const auto& edge = dag_->edge(comm.edge);
  SS_REQUIRE(comm.src.task == edge.src && comm.dst.task == edge.dst,
             "comm endpoints do not match its edge");
  SS_REQUIRE(is_placed(comm.src) && is_placed(comm.dst), "comm endpoints must be placed");
  SS_REQUIRE(!has_supplier(comm.dst, comm.src), "duplicate supply comm");
  const auto idx = static_cast<std::uint32_t>(comms_.size());
  comms_.push_back(comm);
  out_[comm.src.task][comm.src.copy].push_back(idx);
  in_[comm.dst.task][comm.dst.copy].push_back(idx);
  const ProcId from = placed_[comm.src.task][comm.src.copy].proc;
  const ProcId to = placed_[comm.dst.task][comm.dst.copy].proc;
  if (from != to) {
    const double duration = platform_->comm_time(edge.volume, from, to);
    cout_[from] += duration;
    cin_[to] += duration;
  }
  return idx;
}

std::span<const std::uint32_t> Schedule::in_comms(ReplicaRef r) const {
  check_replica(r);
  return in_[r.task][r.copy];
}

std::span<const std::uint32_t> Schedule::out_comms(ReplicaRef r) const {
  check_replica(r);
  return out_[r.task][r.copy];
}

std::vector<ReplicaRef> Schedule::suppliers(ReplicaRef r, TaskId pred) const {
  check_replica(r);
  std::vector<ReplicaRef> result;
  for (std::uint32_t idx : in_[r.task][r.copy]) {
    if (comms_[idx].src.task == pred) result.push_back(comms_[idx].src);
  }
  return result;
}

bool Schedule::has_supplier(ReplicaRef r, ReplicaRef src) const {
  check_replica(r);
  for (std::uint32_t idx : in_[r.task][r.copy]) {
    if (comms_[idx].src == src) return true;
  }
  return false;
}

double Schedule::sigma(ProcId u) const {
  SS_REQUIRE(u < platform_->num_procs(), "processor id out of range");
  return sigma_[u];
}

double Schedule::cin(ProcId u) const {
  SS_REQUIRE(u < platform_->num_procs(), "processor id out of range");
  return cin_[u];
}

double Schedule::cout(ProcId u) const {
  SS_REQUIRE(u < platform_->num_procs(), "processor id out of range");
  return cout_[u];
}

std::vector<ReplicaRef> Schedule::replicas_on(ProcId u) const {
  SS_REQUIRE(u < platform_->num_procs(), "processor id out of range");
  std::vector<ReplicaRef> result;
  for (TaskId t = 0; t < dag_->num_tasks(); ++t) {
    for (CopyId c = 0; c < copies(); ++c) {
      if (placed_flag_[t][c] && placed_[t][c].proc == u) result.push_back({t, c});
    }
  }
  return result;
}

double Schedule::makespan() const {
  double best = 0.0;
  for (TaskId t = 0; t < dag_->num_tasks(); ++t) {
    for (CopyId c = 0; c < copies(); ++c) {
      if (placed_flag_[t][c]) best = std::max(best, placed_[t][c].finish);
    }
  }
  return best;
}

bool Schedule::complete() const {
  return num_placed_ == dag_->num_tasks() * copies();
}

}  // namespace streamsched
