// First-class fault models (reliability constraint abstraction).
//
// The paper's reliability constraint is a single scalar ε: valid results
// must be produced even if *any* ε processors fail. `CountModel` keeps
// exactly those semantics. `ProbabilisticModel` generalizes to the regime
// of production clusters and related streaming-over-unreliable-links work:
// every processor u fails independently with probability p_u (stored on
// the Platform) and the schedule must deliver results with probability at
// least R (the target schedule reliability).
//
// A FaultModel is a small value type so it can travel inside
// SchedulerOptions and SweepConfig by value. It answers three questions
// every layer asks:
//   - how many replicas per task do the schedulers need (`derive_eps`),
//   - which crash sets should simulations draw (`sample_failures`),
//   - how should the finished schedule be checked/repaired (dispatched by
//     `repair_for_model` in fault_tolerance.hpp).
//
// CLI syntax (benches, parsed by `parse`): `count:eps=2` or `count:2`;
// `prob:R=0.999` or `prob:0.999`.
#pragma once

#include <string>
#include <vector>

#include "platform/platform.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace streamsched {

enum class FaultModelKind { kCount, kProbabilistic };

class FaultModel {
 public:
  /// Default: the paper's scalar model with ε = 0 (no replication).
  FaultModel() = default;

  /// The paper's "survive any ε processor failures".
  [[nodiscard]] static FaultModel count(CopyId eps);

  /// Independent per-processor failures (probabilities live on the
  /// Platform); the schedule must survive with probability at least
  /// `target_reliability` in (0, 1).
  [[nodiscard]] static FaultModel probabilistic(double target_reliability);

  [[nodiscard]] FaultModelKind kind() const { return kind_; }
  [[nodiscard]] bool is_count() const { return kind_ == FaultModelKind::kCount; }
  [[nodiscard]] bool is_probabilistic() const {
    return kind_ == FaultModelKind::kProbabilistic;
  }

  /// Count models only: the tolerated failure count ε.
  [[nodiscard]] CopyId eps() const;

  /// Probabilistic models only: the target schedule reliability R.
  [[nodiscard]] double target_reliability() const;

  /// Replication degree ε the schedulers must build for on this platform.
  /// Count: ε itself. Probabilistic: the smallest ε such that even if a
  /// task's ε+1 replicas land on the ε+1 most failure-prone processors,
  /// the per-task failure probability stays within the union-bounded
  /// budget (1−R)/num_tasks; capped at m−1 (best effort — verify with
  /// schedule_reliability()).
  [[nodiscard]] CopyId derive_eps(const Platform& platform, std::size_t num_tasks) const;

  /// Draws one fail-silent crash set for a simulation trial. Count models
  /// draw a uniform `count_crashes`-subset of the processors (the paper's
  /// "with c crashes" series); probabilistic models flip one Bernoulli
  /// coin per processor with its platform failure probability.
  [[nodiscard]] std::vector<ProcId> sample_failures(const Platform& platform,
                                                    std::uint32_t count_crashes,
                                                    Rng& rng) const;

  /// Canonical spec string: "count:eps=2" / "prob:R=0.999".
  [[nodiscard]] std::string to_string() const;

  /// Parses a spec string (see file header). Throws std::invalid_argument
  /// on anything unrecognized.
  [[nodiscard]] static FaultModel parse(const std::string& spec);

  friend bool operator==(const FaultModel&, const FaultModel&) = default;

 private:
  FaultModelKind kind_ = FaultModelKind::kCount;
  CopyId eps_ = 0;
  double target_ = 0.0;
};

class Cli;

/// Registers and reads a `--fault-model=<spec>[,<spec>...]` flag (env
/// STREAMSCHED_FAULT_MODEL). An empty fallback with no flag given returns
/// an empty vector — callers then keep their scalar-ε default.
[[nodiscard]] std::vector<FaultModel> fault_models_from_cli(Cli& cli,
                                                            const std::string& fallback_csv);

}  // namespace streamsched
