// First-class fault models (reliability constraint abstraction).
//
// The paper's reliability constraint is a single scalar ε: valid results
// must be produced even if *any* ε processors fail. `CountModel` keeps
// exactly those semantics. `ProbabilisticModel` generalizes to the regime
// of production clusters and related streaming-over-unreliable-links work:
// every processor u fails independently with probability p_u (stored on
// the Platform) and the schedule must deliver results with probability at
// least R (the target schedule reliability).
//
// A FaultModel is a small value type so it can travel inside
// SchedulerOptions and SweepConfig by value. It answers three questions
// every layer asks:
//   - how many replicas per task do the schedulers need (`derive_eps`),
//   - which crash sets should simulations draw (`sample_failures`),
//   - how should the finished schedule be checked/repaired (dispatched by
//     `repair_for_model` in fault_tolerance.hpp).
//
// `ChurnModel` (kind kChurn) layers a *time-varying rate schedule* and
// first-class recovery on top of the probabilistic model: the platform's
// per-processor failure probabilities are the baseline, a square-wave
// multiplier (`rate_multiplier`) alternates calm and storm half-periods of
// `churn_period` epochs, and failed processors come back with per-step
// probability `churn_recover`. Everywhere a target reliability R is asked
// for, a churn model answers like a probabilistic one (same derive_eps,
// same repair target) — the churn parameters only matter to consumers that
// evaluate rates *at a step* (`failure_prob_at`), chiefly the deterministic
// churn-trace generator in service/churn.hpp that replays failure/recovery
// event sequences from a seed.
//
// CLI syntax (benches, parsed by `parse`): `count:eps=2` or `count:2`;
// `prob:R=0.999` or `prob:0.999`;
// `churn:R=0.99,amp=4,period=16,recover=0.5` (R required, the rest
// defaulted).
#pragma once

#include <string>
#include <vector>

#include "platform/platform.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace streamsched {

enum class FaultModelKind { kCount, kProbabilistic, kChurn };

class FaultModel {
 public:
  /// Default: the paper's scalar model with ε = 0 (no replication).
  FaultModel() = default;

  /// The paper's "survive any ε processor failures".
  [[nodiscard]] static FaultModel count(CopyId eps);

  /// Independent per-processor failures (probabilities live on the
  /// Platform); the schedule must survive with probability at least
  /// `target_reliability` in (0, 1).
  [[nodiscard]] static FaultModel probabilistic(double target_reliability);

  /// Time-varying churn: probabilistic target R plus a square-wave rate
  /// schedule (calm half-period at the platform's baseline rates, storm
  /// half-period at `amplitude` times them, cycle length `period` epochs)
  /// and per-step recovery probability `recover` for failed processors.
  [[nodiscard]] static FaultModel churn(double target_reliability, double amplitude,
                                        std::uint32_t period, double recover);

  [[nodiscard]] FaultModelKind kind() const { return kind_; }
  [[nodiscard]] bool is_count() const { return kind_ == FaultModelKind::kCount; }
  /// True for every model that targets a reliability R instead of a fixed
  /// failure count — probabilistic AND churn. Churn models deliberately
  /// take every probabilistic dispatch path (derive_eps, reliability
  /// repair, sweep decoration); only step-indexed consumers distinguish
  /// them via is_churn().
  [[nodiscard]] bool is_probabilistic() const { return kind_ != FaultModelKind::kCount; }
  [[nodiscard]] bool is_churn() const { return kind_ == FaultModelKind::kChurn; }

  /// Count models only: the tolerated failure count ε.
  [[nodiscard]] CopyId eps() const;

  /// Probabilistic/churn models only: the target schedule reliability R.
  [[nodiscard]] double target_reliability() const;

  /// Churn models only: the storm-half rate multiplier (>= 1).
  [[nodiscard]] double churn_amplitude() const;
  /// Churn models only: the rate-schedule cycle length in epochs (>= 2).
  [[nodiscard]] std::uint32_t churn_period() const;
  /// Churn models only: per-step recovery probability of a failed
  /// processor, in (0, 1].
  [[nodiscard]] double churn_recover() const;

  /// Churn models only: the rate multiplier in effect at `step` — 1 in the
  /// calm first half of each cycle, `churn_amplitude()` in the storm half.
  /// Pure integer arithmetic, so traces replay identically cross-machine.
  [[nodiscard]] double rate_multiplier(std::uint64_t step) const;

  /// Churn models only: processor u's failure probability at `step` — the
  /// platform baseline scaled by rate_multiplier(step), clamped to 0.95 so
  /// a large amplitude never makes failure certain.
  [[nodiscard]] double failure_prob_at(const Platform& platform, ProcId u,
                                       std::uint64_t step) const;

  /// Replication degree ε the schedulers must build for on this platform.
  /// Count: ε itself. Probabilistic: the smallest ε such that even if a
  /// task's ε+1 replicas land on the ε+1 most failure-prone processors,
  /// the per-task failure probability stays within the union-bounded
  /// budget (1−R)/num_tasks; capped at m−1 (best effort — verify with
  /// schedule_reliability()).
  [[nodiscard]] CopyId derive_eps(const Platform& platform, std::size_t num_tasks) const;

  /// Draws one fail-silent crash set for a simulation trial. Count models
  /// draw a uniform `count_crashes`-subset of the processors (the paper's
  /// "with c crashes" series); probabilistic models flip one Bernoulli
  /// coin per processor with its platform failure probability.
  [[nodiscard]] std::vector<ProcId> sample_failures(const Platform& platform,
                                                    std::uint32_t count_crashes,
                                                    Rng& rng) const;

  /// Canonical spec string: "count:eps=2" / "prob:R=0.999".
  [[nodiscard]] std::string to_string() const;

  /// Parses a spec string (see file header). Throws std::invalid_argument
  /// on anything unrecognized.
  [[nodiscard]] static FaultModel parse(const std::string& spec);

  friend bool operator==(const FaultModel&, const FaultModel&) = default;

 private:
  FaultModelKind kind_ = FaultModelKind::kCount;
  CopyId eps_ = 0;
  double target_ = 0.0;
  // Churn-only parameters; the non-churn defaults keep operator== exact.
  double amp_ = 1.0;
  std::uint32_t period_steps_ = 0;
  double recover_ = 0.0;
};

class Cli;

/// Registers and reads a `--fault-model=<spec>[,<spec>...]` flag (env
/// STREAMSCHED_FAULT_MODEL). An empty fallback with no flag given returns
/// an empty vector — callers then keep their scalar-ε default.
[[nodiscard]] std::vector<FaultModel> fault_models_from_cli(Cli& cli,
                                                            const std::string& fallback_csv);

}  // namespace streamsched
