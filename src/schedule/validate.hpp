// Structural and load validation of replicated schedules.
//
// Used throughout the test suite and by the experiment harness as a
// guardrail: every schedule a scheduler returns must pass the structural
// checks; builder-produced schedules additionally pass the timing checks
// (repair communications have no meaningful timeline and are exempt).
#pragma once

#include <string>
#include <vector>

#include "schedule/schedule.hpp"

namespace streamsched {

enum class ViolationCode {
  kUnplacedReplica,
  kDuplicateProcessor,    // two replicas of one task on the same processor
  kComputeOverload,       // Σ_u > Δ
  kInputPortOverload,     // C^I_u > Δ
  kOutputPortOverload,    // C^O_u > Δ
  kMissingSupplier,       // a replica has no supplier for some predecessor
  kStageInconsistent,     // stored stage != minimal derived stage
  kBadExecDuration,       // finish - start != work / speed
  kBadCommDuration,       // comm duration != volume * unit delay
  kCommBeforeData,        // comm starts before its source replica finishes
  kExecBeforeInput,       // replica starts before every pred has a supplier arrival
  kComputeOverlap,        // two executions overlap on one processor
  kSendPortOverlap,       // one-port violation on a send port
  kRecvPortOverlap,       // one-port violation on a receive port
};

struct Violation {
  ViolationCode code;
  std::string detail;
};

struct ValidationReport {
  std::vector<Violation> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  [[nodiscard]] std::size_t count(ViolationCode code) const;
  [[nodiscard]] std::string summary(std::size_t max_items = 10) const;
};

struct ValidateOptions {
  /// Check the recorded timeline (exec/comm durations, precedence, one-port
  /// non-overlap). Disable for mirrored or repaired schedules where only
  /// structure matters.
  bool check_timing = true;
  /// Relative tolerance for floating point comparisons.
  double tolerance = 1e-9;
};

/// Runs all checks and returns every violation found.
[[nodiscard]] ValidationReport validate_schedule(const Schedule& schedule,
                                                 const ValidateOptions& options = {});

}  // namespace streamsched
