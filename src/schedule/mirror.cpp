#include "schedule/mirror.hpp"

#include "schedule/metrics.hpp"
#include "util/assert.hpp"

namespace streamsched {

Schedule mirror_schedule(const Schedule& reversed, const Dag& original) {
  const Dag& rdag = reversed.dag();
  SS_REQUIRE(rdag.num_tasks() == original.num_tasks() &&
                 rdag.num_edges() == original.num_edges(),
             "reversed schedule does not match the original graph");
  SS_REQUIRE(reversed.complete(), "can only mirror a complete schedule");
  // Spot-check the edge correspondence (edge e of the reversal is edge e of
  // the original with swapped endpoints).
  for (EdgeId e = 0; e < original.num_edges(); ++e) {
    SS_CHECK(original.edge(e).src == rdag.edge(e).dst &&
                 original.edge(e).dst == rdag.edge(e).src,
             "edge ids are not mirror-consistent");
  }

  const double horizon = reversed.makespan();
  Schedule out(original, reversed.platform(), reversed.eps(), reversed.period());

  for (TaskId t = 0; t < original.num_tasks(); ++t) {
    for (CopyId c = 0; c < reversed.copies(); ++c) {
      const ReplicaRef r{t, c};
      const PlacedReplica& p = reversed.placed(r);
      out.place(r, p.proc, horizon - p.finish, horizon - p.start, /*stage=*/1);
    }
  }
  for (const CommRecord& comm : reversed.comms()) {
    CommRecord flipped;
    flipped.edge = comm.edge;
    flipped.src = comm.dst;
    flipped.dst = comm.src;
    flipped.start = horizon - comm.finish;
    flipped.finish = horizon - comm.start;
    flipped.repair = comm.repair;
    out.add_comm(flipped);
  }
  recompute_stages(out);
  return out;
}

}  // namespace streamsched
