#include "schedule/survival.hpp"

namespace streamsched {

SurvivalOracle::SurvivalOracle(const Schedule& schedule)
    : num_procs_(schedule.platform().num_procs()),
      num_tasks_(schedule.dag().num_tasks()),
      copies_(schedule.copies()) {
  SS_REQUIRE(copies_ <= 64, "survival oracle supports at most 64 replicas per task");
  const Dag& dag = schedule.dag();
  topo_ = dag.topological_order();

  placed_mask_.assign(num_tasks_, 0);
  proc_.assign(num_tasks_ * copies_, kInvalidProc);
  pred_offset_.assign(num_tasks_ + 1, 0);
  for (TaskId t = 0; t < num_tasks_; ++t) {
    pred_offset_[t + 1] =
        pred_offset_[t] + static_cast<std::uint32_t>(dag.predecessors(t).size());
  }
  pred_task_.resize(pred_offset_[num_tasks_]);
  for (TaskId t = 0; t < num_tasks_; ++t) {
    const auto preds = dag.predecessors(t);
    for (std::size_t j = 0; j < preds.size(); ++j) pred_task_[pred_offset_[t] + j] = preds[j];
  }
  sup_mask_.assign(pred_task_.size() * copies_, 0);

  for (TaskId t = 0; t < num_tasks_; ++t) {
    for (CopyId c = 0; c < copies_; ++c) {
      const ReplicaRef r{t, c};
      if (!schedule.is_placed(r)) continue;
      placed_mask_[t] |= 1ULL << c;
      proc_[t * copies_ + c] = schedule.placed(r).proc;
    }
  }
  for (const CommRecord& comm : schedule.comms()) add_comm(comm);
}

void SurvivalOracle::add_comm(const CommRecord& comm) {
  const TaskId t = comm.dst.task;
  for (std::uint32_t j = pred_offset_[t]; j < pred_offset_[t + 1]; ++j) {
    if (pred_task_[j] == comm.src.task) {
      sup_mask_[static_cast<std::size_t>(j) * copies_ + comm.dst.copy] |= 1ULL << comm.src.copy;
      return;
    }
  }
  SS_CHECK(false, "comm source is not a predecessor of its destination");
}

template <bool kEarlyExit>
bool SurvivalOracle::propagate(const std::uint64_t* failed_words, std::uint64_t* alive) const {
  for (const TaskId t : topo_) {
    std::uint64_t a = placed_mask_[t];
    const ProcId* procs = proc_.data() + static_cast<std::size_t>(t) * copies_;
    for (std::uint64_t bits = a; bits != 0; bits &= bits - 1) {
      const int c = std::countr_zero(bits);
      const ProcId u = procs[c];
      if ((failed_words[u >> 6] >> (u & 63)) & 1) a &= ~(1ULL << c);
    }
    for (std::uint32_t j = pred_offset_[t]; a != 0 && j < pred_offset_[t + 1]; ++j) {
      const std::uint64_t pred_alive = alive[pred_task_[j]];
      const std::uint64_t* sup = sup_mask_.data() + static_cast<std::size_t>(j) * copies_;
      for (std::uint64_t bits = a; bits != 0; bits &= bits - 1) {
        const int c = std::countr_zero(bits);
        if ((pred_alive & sup[c]) == 0) a &= ~(1ULL << c);
      }
    }
    if constexpr (kEarlyExit) {
      if (a == 0) return false;
    }
    alive[t] = a;  // dead tasks store 0; downstream masks then clear themselves
  }
  return true;
}

bool SurvivalOracle::survives_words(const std::uint64_t* failed_words,
                                    std::vector<std::uint64_t>& scratch) const {
  scratch.resize(num_tasks_);
  return propagate<true>(failed_words, scratch.data());
}

void SurvivalOracle::computable(const ProcSet& failed, std::vector<std::uint64_t>& alive) const {
  SS_REQUIRE(failed.size() == num_procs_, "failure set size != processor count");
  alive.resize(num_tasks_);
  propagate<false>(failed.words(), alive.data());
}

}  // namespace streamsched
