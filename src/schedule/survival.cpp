#include "schedule/survival.hpp"

#include <algorithm>

namespace streamsched {

SurvivalOracle::SurvivalOracle(const Schedule& schedule)
    : num_procs_(schedule.platform().num_procs()),
      num_tasks_(schedule.dag().num_tasks()),
      copies_(schedule.copies()),
      mask_words_((static_cast<std::size_t>(schedule.copies()) + 63) / 64) {
  const Dag& dag = schedule.dag();
  topo_ = dag.topological_order();

  placed_mask_.assign(num_tasks_ * mask_words_, 0);
  proc_.assign(num_tasks_ * copies_, kInvalidProc);
  pred_offset_.assign(num_tasks_ + 1, 0);
  for (TaskId t = 0; t < num_tasks_; ++t) {
    pred_offset_[t + 1] =
        pred_offset_[t] + static_cast<std::uint32_t>(dag.predecessors(t).size());
  }
  pred_task_.resize(pred_offset_[num_tasks_]);
  for (TaskId t = 0; t < num_tasks_; ++t) {
    const auto preds = dag.predecessors(t);
    for (std::size_t j = 0; j < preds.size(); ++j) pred_task_[pred_offset_[t] + j] = preds[j];
  }
  sup_mask_.assign(pred_task_.size() * copies_ * mask_words_, 0);

  for (TaskId t = 0; t < num_tasks_; ++t) {
    for (CopyId c = 0; c < copies_; ++c) {
      const ReplicaRef r{t, c};
      if (!schedule.is_placed(r)) continue;
      placed_mask_[t * mask_words_ + (c >> 6)] |= 1ULL << (c & 63);
      proc_[t * copies_ + c] = schedule.placed(r).proc;
    }
  }
  for (const CommRecord& comm : schedule.comms()) add_comm(comm);
}

void SurvivalOracle::add_comm(const CommRecord& comm) {
  const TaskId t = comm.dst.task;
  for (std::uint32_t j = pred_offset_[t]; j < pred_offset_[t + 1]; ++j) {
    if (pred_task_[j] == comm.src.task) {
      sup_mask_[(static_cast<std::size_t>(j) * copies_ + comm.dst.copy) * mask_words_ +
                (comm.src.copy >> 6)] |= 1ULL << (comm.src.copy & 63);
      return;
    }
  }
  SS_CHECK(false, "comm source is not a predecessor of its destination");
}

template <bool kEarlyExit>
bool SurvivalOracle::propagate(const std::uint64_t* failed_words, std::uint64_t* alive) const {
  for (const TaskId t : topo_) {
    std::uint64_t a = placed_mask_[t];
    const ProcId* procs = proc_.data() + static_cast<std::size_t>(t) * copies_;
    for (std::uint64_t bits = a; bits != 0; bits &= bits - 1) {
      const int c = std::countr_zero(bits);
      const ProcId u = procs[c];
      if ((failed_words[u >> 6] >> (u & 63)) & 1) a &= ~(1ULL << c);
    }
    for (std::uint32_t j = pred_offset_[t]; a != 0 && j < pred_offset_[t + 1]; ++j) {
      const std::uint64_t pred_alive = alive[pred_task_[j]];
      const std::uint64_t* sup = sup_mask_.data() + static_cast<std::size_t>(j) * copies_;
      for (std::uint64_t bits = a; bits != 0; bits &= bits - 1) {
        const int c = std::countr_zero(bits);
        if ((pred_alive & sup[c]) == 0) a &= ~(1ULL << c);
      }
    }
    if constexpr (kEarlyExit) {
      if (a == 0) return false;
    }
    alive[t] = a;  // dead tasks store 0; downstream masks then clear themselves
  }
  return true;
}

template <bool kEarlyExit>
bool SurvivalOracle::propagate_wide(const std::uint64_t* failed_words,
                                    std::uint64_t* alive) const {
  const std::size_t W = mask_words_;
  for (const TaskId t : topo_) {
    std::uint64_t* a = alive + static_cast<std::size_t>(t) * W;
    const std::uint64_t* placed = placed_mask_.data() + static_cast<std::size_t>(t) * W;
    const ProcId* procs = proc_.data() + static_cast<std::size_t>(t) * copies_;
    std::uint64_t any = 0;
    for (std::size_t w = 0; w < W; ++w) {
      std::uint64_t aw = placed[w];
      for (std::uint64_t bits = aw; bits != 0; bits &= bits - 1) {
        const int b = std::countr_zero(bits);
        const ProcId u = procs[w * 64 + static_cast<std::size_t>(b)];
        if ((failed_words[u >> 6] >> (u & 63)) & 1) aw &= ~(1ULL << b);
      }
      a[w] = aw;
      any |= aw;
    }
    for (std::uint32_t j = pred_offset_[t]; any != 0 && j < pred_offset_[t + 1]; ++j) {
      const std::uint64_t* pred_alive = alive + static_cast<std::size_t>(pred_task_[j]) * W;
      any = 0;
      for (std::size_t w = 0; w < W; ++w) {
        for (std::uint64_t bits = a[w]; bits != 0; bits &= bits - 1) {
          const int b = std::countr_zero(bits);
          const std::size_t c = w * 64 + static_cast<std::size_t>(b);
          const std::uint64_t* sup =
              sup_mask_.data() + (static_cast<std::size_t>(j) * copies_ + c) * W;
          bool fed = false;
          for (std::size_t sw = 0; sw < W && !fed; ++sw) fed = (pred_alive[sw] & sup[sw]) != 0;
          if (!fed) a[w] &= ~(1ULL << b);
        }
        any |= a[w];
      }
    }
    if constexpr (kEarlyExit) {
      if (any == 0) return false;
    }
  }
  return true;
}

bool SurvivalOracle::survives_words(const std::uint64_t* failed_words,
                                    std::vector<std::uint64_t>& scratch) const {
  scratch.resize(num_tasks_ * mask_words_);
  if (mask_words_ == 1) return propagate<true>(failed_words, scratch.data());
  return propagate_wide<true>(failed_words, scratch.data());
}

namespace {

// In-place 64x64 bit-matrix transpose (recursive block swap, LSB-first
// columns): afterwards word u bit L equals the old word L bit u. At block
// size j, the HIGH j bits of the low rows swap with the LOW j bits of the
// high rows — the off-diagonal blocks under a bit-0-is-column-0 layout.
void transpose64(std::uint64_t* a) {
  std::uint64_t mask = 0x00000000FFFFFFFFULL;
  for (std::size_t j = 32; j != 0; j >>= 1, mask ^= mask << j) {
    for (std::size_t k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = ((a[k] >> j) ^ a[k + j]) & mask;
      a[k] ^= t << j;
      a[k + j] ^= t;
    }
  }
}

}  // namespace

std::uint64_t SurvivalOracle::survives_batch(const std::uint64_t* set_words, std::size_t count,
                                             BatchScratch& scratch) const {
  SS_REQUIRE(count >= 1 && count <= 64, "batch holds 1..64 failure sets");
  const std::size_t proc_words = (num_procs_ + 63) / 64;

  // Transpose the failure-set rows into per-processor lane words: bit L of
  // proc_lanes[u] says processor u is down in set L. Single-word platforms
  // (m <= 64) use the dense 64x64 transpose: lane L's row lands in word L,
  // and after the transpose word u IS processor u's lane word (rows only
  // carry bits below num_procs, so the extra words stay zero).
  if (proc_words == 1) {
    scratch.proc_lanes.resize(64);
    std::uint64_t* lanes = scratch.proc_lanes.data();
    std::copy(set_words, set_words + count, lanes);
    std::fill(lanes + count, lanes + 64, 0);
    transpose64(lanes);
  } else {
    scratch.proc_lanes.assign(num_procs_, 0);
    for (std::size_t lane = 0; lane < count; ++lane) {
      const std::uint64_t* row = set_words + lane * proc_words;
      const std::uint64_t bit = 1ULL << lane;
      for (std::size_t w = 0; w < proc_words; ++w) {
        for (std::uint64_t bits = row[w]; bits != 0; bits &= bits - 1) {
          scratch.proc_lanes[w * 64 + static_cast<std::size_t>(std::countr_zero(bits))] |= bit;
        }
      }
    }
  }

  // One topological pass over all lanes at once. `alive[t*copies + c]` bit
  // L says replica (t, c) is computable in set L: start with the lanes
  // where the replica's processor is up, then intersect per predecessor
  // with the union of its suppliers' lane words. `live` accumulates the
  // lanes in which every task so far kept a computable replica; a lane
  // that dies stays dead (the same monotone fixpoint as the per-set pass,
  // evaluated 64 sets at a time).
  scratch.alive_lanes.resize(num_tasks_ * copies_);
  std::uint64_t* alive = scratch.alive_lanes.data();
  std::uint64_t live = batch_lane_mask(count);
  const std::uint64_t* lanes = scratch.proc_lanes.data();
  if (mask_words_ == 1) {
    // Narrow fast path (copies <= 64): placed and supplier masks are one
    // word, so every per-word inner loop collapses.
    for (const TaskId t : topo_) {
      std::uint64_t task_alive = 0;
      const ProcId* procs = proc_.data() + static_cast<std::size_t>(t) * copies_;
      std::uint64_t* row = alive + static_cast<std::size_t>(t) * copies_;
      std::fill(row, row + copies_, 0);
      const std::uint32_t j0 = pred_offset_[t];
      const std::uint32_t j1 = pred_offset_[t + 1];
      for (std::uint64_t bits = placed_mask_[t]; bits != 0; bits &= bits - 1) {
        const auto c = static_cast<std::size_t>(std::countr_zero(bits));
        std::uint64_t a = ~lanes[procs[c]] & live;
        for (std::uint32_t j = j0; a != 0 && j < j1; ++j) {
          const std::uint64_t* pred_lanes =
              alive + static_cast<std::size_t>(pred_task_[j]) * copies_;
          std::uint64_t fed = 0;
          for (std::uint64_t sbits = sup_mask_[static_cast<std::size_t>(j) * copies_ + c];
               sbits != 0 && (a & ~fed) != 0; sbits &= sbits - 1) {
            fed |= pred_lanes[static_cast<std::size_t>(std::countr_zero(sbits))];
          }
          a &= fed;
        }
        row[c] = a;
        task_alive |= a;
      }
      live &= task_alive;
      if (live == 0) return 0;
    }
    return live;
  }
  for (const TaskId t : topo_) {
    std::uint64_t task_alive = 0;
    const ProcId* procs = proc_.data() + static_cast<std::size_t>(t) * copies_;
    const std::uint64_t* placed = placed_mask_.data() + static_cast<std::size_t>(t) * mask_words_;
    std::uint64_t* row = alive + static_cast<std::size_t>(t) * copies_;
    // Unplaced copies are never computable; zero their (possibly stale)
    // lane words before any successor ORs them in.
    std::fill(row, row + copies_, 0);
    for (std::size_t w = 0; w < mask_words_; ++w) {
      for (std::uint64_t bits = placed[w]; bits != 0; bits &= bits - 1) {
        const std::size_t c = w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
        std::uint64_t a = ~scratch.proc_lanes[procs[c]] & live;
        for (std::uint32_t j = pred_offset_[t]; a != 0 && j < pred_offset_[t + 1]; ++j) {
          const std::uint64_t* pred_lanes =
              alive + static_cast<std::size_t>(pred_task_[j]) * copies_;
          const std::uint64_t* sup =
              sup_mask_.data() + (static_cast<std::size_t>(j) * copies_ + c) * mask_words_;
          std::uint64_t fed = 0;
          for (std::size_t sw = 0; sw < mask_words_ && (a & ~fed) != 0; ++sw) {
            for (std::uint64_t sbits = sup[sw]; sbits != 0 && (a & ~fed) != 0;
                 sbits &= sbits - 1) {
              fed |= pred_lanes[sw * 64 + static_cast<std::size_t>(std::countr_zero(sbits))];
            }
          }
          a &= fed;
        }
        alive[static_cast<std::size_t>(t) * copies_ + c] = a;
        task_alive |= a;
      }
    }
    live &= task_alive;
    if (live == 0) return 0;
  }
  return live;
}

void SurvivalOracle::computable(const ProcSet& failed, std::vector<std::uint64_t>& alive) const {
  SS_REQUIRE(failed.size() == num_procs_, "failure set size != processor count");
  alive.resize(num_tasks_ * mask_words_);
  if (mask_words_ == 1) {
    propagate<false>(failed.words(), alive.data());
  } else {
    propagate_wide<false>(failed.words(), alive.data());
  }
}

CopyId achieved_tolerance(const SurvivalOracle& oracle, const ProcSet& failed, CopyId want,
                          BatchScratch& scratch) {
  const std::size_t m = oracle.num_procs();
  SS_REQUIRE(failed.size() == m, "failure set size != processor count");
  std::vector<ProcId> alive;
  alive.reserve(m);
  for (ProcId u = 0; u < m; ++u) {
    if (!failed.test(u)) alive.push_back(u);
  }
  if (alive.size() == m) return want;  // nothing failed: the built-for guarantee stands

  const std::size_t num_words = failed.num_words();
  std::vector<std::uint64_t> rows(64 * num_words);
  std::vector<std::uint64_t> set_scratch;
  // k = 0: does the schedule survive the live failures at all?
  if (!oracle.survives_words(failed.words(), set_scratch)) return 0;

  const CopyId cap =
      std::min<CopyId>(want, static_cast<CopyId>(alive.empty() ? 0 : alive.size() - 1));
  for (CopyId k = 1; k <= cap; ++k) {
    // Enumerate every size-k subset of the alive processors, packed into
    // 64-row batches of (failed ∪ G) word rows.
    std::vector<std::size_t> idx(k);
    for (CopyId i = 0; i < k; ++i) idx[i] = i;
    std::size_t batched = 0;
    const auto flush = [&]() -> bool {
      if (batched == 0) return true;
      const std::uint64_t mask = oracle.survives_batch(rows.data(), batched, scratch);
      const bool all = mask == batch_lane_mask(batched);
      batched = 0;
      return all;
    };
    bool all_survive = true;
    for (;;) {
      std::uint64_t* row = rows.data() + batched * num_words;
      std::copy(failed.words(), failed.words() + num_words, row);
      for (std::size_t i : idx) {
        const auto u = static_cast<std::size_t>(alive[i]);
        row[u >> 6] |= 1ULL << (u & 63);
      }
      if (++batched == 64 && !flush()) {
        all_survive = false;
        break;
      }
      // Next combination (lexicographic over alive indices).
      std::int64_t i = static_cast<std::int64_t>(k) - 1;
      while (i >= 0 &&
             idx[static_cast<std::size_t>(i)] == alive.size() - k + static_cast<std::size_t>(i)) {
        --i;
      }
      if (i < 0) break;
      ++idx[static_cast<std::size_t>(i)];
      for (auto j = static_cast<std::size_t>(i) + 1; j < static_cast<std::size_t>(k); ++j) {
        idx[j] = idx[j - 1] + 1;
      }
    }
    if (all_survive) all_survive = flush();
    if (!all_survive) return k - 1;
  }
  return cap;
}

}  // namespace streamsched
