#include "schedule/fault_tolerance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace streamsched {

std::vector<std::vector<bool>> computable_replicas(const Schedule& schedule,
                                                   const std::vector<bool>& failed) {
  const Dag& dag = schedule.dag();
  SS_REQUIRE(failed.size() == schedule.platform().num_procs(),
             "failure vector must have one entry per processor");
  std::vector<std::vector<bool>> computable(
      dag.num_tasks(), std::vector<bool>(schedule.copies(), false));
  for (TaskId t : dag.topological_order()) {
    const auto preds = dag.predecessors(t);
    for (CopyId c = 0; c < schedule.copies(); ++c) {
      const ReplicaRef r{t, c};
      if (!schedule.is_placed(r)) continue;
      if (failed[schedule.placed(r).proc]) continue;
      bool ok = true;
      for (TaskId pred : preds) {
        bool fed = false;
        for (std::uint32_t idx : schedule.in_comms(r)) {
          const CommRecord& comm = schedule.comms()[idx];
          if (comm.src.task != pred) continue;
          if (computable[pred][comm.src.copy]) {
            fed = true;
            break;
          }
        }
        if (!fed) {
          ok = false;
          break;
        }
      }
      computable[t][c] = ok;
    }
  }
  return computable;
}

bool survives_failures(const Schedule& schedule, const std::vector<bool>& failed) {
  const auto computable = computable_replicas(schedule, failed);
  for (TaskId t = 0; t < schedule.dag().num_tasks(); ++t) {
    if (std::none_of(computable[t].begin(), computable[t].end(), [](bool b) { return b; })) {
      return false;
    }
  }
  return true;
}

namespace {

// Calls visit(failed) for every subset of {0..m-1} of size k; stops early
// when visit returns false. Returns the number of subsets visited.
template <typename Visit>
std::uint64_t for_each_failure_set(std::size_t m, std::uint32_t k, Visit&& visit) {
  std::vector<ProcId> subset(k);
  std::vector<bool> failed(m, false);
  std::uint64_t visited = 0;
  if (k == 0) {
    ++visited;
    visit(failed, std::vector<ProcId>{});
    return visited;
  }
  // Iterative combination enumeration in lexicographic order.
  for (std::uint32_t i = 0; i < k; ++i) subset[i] = i;
  for (;;) {
    std::fill(failed.begin(), failed.end(), false);
    for (ProcId p : subset) failed[p] = true;
    ++visited;
    if (!visit(failed, subset)) return visited;
    // Advance to the next combination.
    std::int64_t i = static_cast<std::int64_t>(k) - 1;
    while (i >= 0 && subset[static_cast<std::size_t>(i)] ==
                         static_cast<ProcId>(m - k + static_cast<std::size_t>(i))) {
      --i;
    }
    if (i < 0) return visited;
    ++subset[static_cast<std::size_t>(i)];
    for (auto j = static_cast<std::size_t>(i) + 1; j < k; ++j) {
      subset[j] = subset[j - 1] + 1;
    }
  }
}

}  // namespace

FtCheckResult check_fault_tolerance(const Schedule& schedule, std::uint32_t max_failures) {
  const std::size_t m = schedule.platform().num_procs();
  SS_REQUIRE(max_failures < m, "cannot fail all processors");
  FtCheckResult result;
  result.sets_checked = for_each_failure_set(
      m, max_failures, [&](const std::vector<bool>& failed, const std::vector<ProcId>& set) {
        if (!survives_failures(schedule, failed)) {
          result.valid = false;
          result.counterexample = set;
          return false;
        }
        return true;
      });
  return result;
}

FtCheckResult check_fault_tolerance_sampled(const Schedule& schedule,
                                            std::uint32_t max_failures, std::uint64_t samples,
                                            Rng& rng) {
  const std::size_t m = schedule.platform().num_procs();
  SS_REQUIRE(max_failures < m, "cannot fail all processors");
  FtCheckResult result;
  std::vector<bool> failed(m, false);
  for (std::uint64_t i = 0; i < samples; ++i) {
    const auto set = rng.sample_without_replacement(static_cast<std::uint32_t>(m), max_failures);
    std::fill(failed.begin(), failed.end(), false);
    for (auto p : set) failed[p] = true;
    ++result.sets_checked;
    if (!survives_failures(schedule, failed)) {
      result.valid = false;
      result.counterexample.assign(set.begin(), set.end());
      return result;
    }
  }
  return result;
}

namespace {

// Picks the cheapest computable supplier replica of `pred` to feed `r`:
// colocated first, then minimal added port load.
ReplicaRef pick_repair_supplier(const Schedule& schedule, ReplicaRef r, TaskId pred,
                                const std::vector<std::vector<bool>>& computable) {
  const ProcId here = schedule.placed(r).proc;
  ReplicaRef best{kInvalidTask, 0};
  double best_cost = std::numeric_limits<double>::infinity();
  for (CopyId c = 0; c < schedule.copies(); ++c) {
    const ReplicaRef cand{pred, c};
    if (!computable[pred][c]) continue;
    if (schedule.has_supplier(r, cand)) continue;  // already wired, didn't help
    const ProcId from = schedule.placed(cand).proc;
    double cost;
    if (from == here) {
      cost = 0.0;
    } else {
      // Prefer suppliers whose ports are least loaded after the addition.
      const EdgeId e = schedule.dag().find_edge(pred, r.task);
      const double dur = schedule.platform().comm_time(schedule.dag().edge(e).volume, from, here);
      cost = dur + std::max(schedule.cout(from), schedule.cin(here));
    }
    if (cost < best_cost) {
      best_cost = cost;
      best = cand;
    }
  }
  return best;
}

// Wires supply channels fixing the topologically first task that has no
// computable replica under `failed` (one task per call, mirroring the
// original repair rounds: fixing it may fix everything downstream).
// Returns false when the set is beyond repair — no alive replica of the
// dead task, or a starving predecessor with no computable replica to wire.
bool repair_step(Schedule& schedule, const std::vector<bool>& failed, RepairStats& stats) {
  const Dag& dag = schedule.dag();
  const auto computable = computable_replicas(schedule, failed);

  for (TaskId t : dag.topological_order()) {
    const bool dead =
        std::none_of(computable[t].begin(), computable[t].end(), [](bool b) { return b; });
    if (!dead) continue;

    // Choose the alive replica with the fewest starving predecessors.
    ReplicaRef target{kInvalidTask, 0};
    std::size_t best_missing = std::numeric_limits<std::size_t>::max();
    for (CopyId c = 0; c < schedule.copies(); ++c) {
      const ReplicaRef r{t, c};
      if (failed[schedule.placed(r).proc]) continue;
      std::size_t missing = 0;
      for (TaskId pred : dag.predecessors(t)) {
        bool fed = false;
        for (ReplicaRef sup : schedule.suppliers(r, pred)) {
          if (computable[pred][sup.copy]) {
            fed = true;
            break;
          }
        }
        if (!fed) ++missing;
      }
      if (missing < best_missing) {
        best_missing = missing;
        target = r;
      }
    }
    if (target.task == kInvalidTask) return false;

    for (TaskId pred : dag.predecessors(t)) {
      bool fed = false;
      for (ReplicaRef sup : schedule.suppliers(target, pred)) {
        if (computable[pred][sup.copy]) {
          fed = true;
          break;
        }
      }
      if (fed) continue;
      const ReplicaRef sup = pick_repair_supplier(schedule, target, pred, computable);
      if (sup.task == kInvalidTask) return false;
      const EdgeId e = dag.find_edge(pred, t);
      CommRecord comm;
      comm.edge = e;
      comm.src = sup;
      comm.dst = target;
      comm.start = comm.finish = schedule.placed(sup).finish;
      comm.repair = true;
      schedule.add_comm(comm);
      ++stats.added_comms;
    }
    return true;
  }
  return true;  // nothing dead: the schedule already survives this set
}

// Channel-capacity bound on repair iterations: each productive step adds at
// least one of the at most (eps+1)^2 * e distinct channels.
std::uint32_t max_repair_rounds(const Schedule& schedule) {
  return static_cast<std::uint32_t>(schedule.copies() * schedule.copies() *
                                        schedule.dag().num_edges() +
                                    16);
}

void record_period_excess(const Schedule& schedule, RepairStats& stats) {
  if (!stats.success || !std::isfinite(schedule.period())) return;
  for (ProcId u = 0; u < schedule.platform().num_procs(); ++u) {
    if (schedule.cin(u) > schedule.period() || schedule.cout(u) > schedule.period()) {
      stats.period_exceeded = true;
      break;
    }
  }
}

}  // namespace

RepairStats repair_fault_tolerance(Schedule& schedule, std::uint32_t max_failures) {
  SS_REQUIRE(max_failures <= schedule.eps(),
             "cannot repair for more failures than the replication degree");
  RepairStats stats;
  const std::uint32_t max_rounds = max_repair_rounds(schedule);

  for (stats.rounds = 0; stats.rounds < max_rounds; ++stats.rounds) {
    const FtCheckResult check = check_fault_tolerance(schedule, max_failures);
    if (check.valid) {
      stats.success = true;
      break;
    }
    std::vector<bool> failed(schedule.platform().num_procs(), false);
    for (ProcId p : check.counterexample) failed[p] = true;
    const bool repaired = repair_step(schedule, failed, stats);
    SS_CHECK(repaired,
             "failure set of size <= eps is beyond repair although replicas sit on "
             "distinct processors");
  }

  record_period_excess(schedule, stats);
  return stats;
}

// ---------------------------------------------------------------------------
// Probabilistic reliability.

namespace {

// A failure set observed to kill the schedule, with its exact probability.
struct KillingSet {
  std::vector<ProcId> procs;
  double prob = 0.0;
};

constexpr std::size_t kMaxKillingSets = 64;

// Distribution of the number of failed processors (Poisson binomial),
// dist[j] = P(exactly j failures). O(m^2), exact.
std::vector<double> failure_count_distribution(const std::vector<double>& p) {
  std::vector<double> dist(p.size() + 1, 0.0);
  dist[0] = 1.0;
  for (std::size_t u = 0; u < p.size(); ++u) {
    for (std::size_t j = u + 1; j > 0; --j) {
      dist[j] = dist[j] * (1.0 - p[u]) + dist[j - 1] * p[u];
    }
    dist[0] *= 1.0 - p[u];
  }
  return dist;
}

double binomial_count(std::size_t m, std::size_t k) {
  double c = 1.0;
  for (std::size_t i = 0; i < k; ++i) {
    c *= static_cast<double>(m - i) / static_cast<double>(i + 1);
  }
  return c;
}

void record_killing_set(std::vector<KillingSet>* kills, ReliabilityEstimate& est,
                        const std::vector<ProcId>& set, double prob) {
  if (prob > est.worst_failure_prob) {
    est.worst_failure_prob = prob;
    est.worst_failure = set;
  }
  if (kills == nullptr || kills->size() >= kMaxKillingSets) return;
  for (const KillingSet& k : *kills) {
    if (k.procs == set) return;
  }
  kills->push_back(KillingSet{set, prob});
}

ReliabilityEstimate estimate_reliability(const Schedule& schedule,
                                         const ReliabilityOptions& options,
                                         std::vector<KillingSet>* kills) {
  const std::size_t m = schedule.platform().num_procs();
  std::vector<double> p(m);
  for (ProcId u = 0; u < m; ++u) p[u] = schedule.platform().failure_prob(u);

  ReliabilityEstimate est;

  // Per-set probability = base * prod_{u in F} odds_u with
  // base = prod (1-p_u) and odds_u = p_u / (1-p_u); p_u < 1 by Platform.
  double base = 1.0;
  std::vector<double> odds(m);
  for (std::size_t u = 0; u < m; ++u) {
    base *= 1.0 - p[u];
    odds[u] = p[u] / (1.0 - p[u]);
  }

  // Truncation point: the smallest failure-set size whose Poisson-binomial
  // tail mass is within tolerance; the tail counts as failure.
  const std::vector<double> dist = failure_count_distribution(p);
  std::size_t k_max = m;
  double cumulative = 0.0;
  for (std::size_t k = 0; k <= m; ++k) {
    cumulative += dist[k];
    if (1.0 - cumulative <= options.tail_tolerance) {
      k_max = k;
      break;
    }
  }

  double total_sets = 0.0;
  for (std::size_t k = 0; k <= k_max; ++k) total_sets += binomial_count(m, k);

  if (total_sets <= static_cast<double>(options.max_sets)) {
    // Exact truncated enumeration, sizes ascending (mass mostly up front).
    double reliable_mass = 0.0;
    for (std::size_t k = 0; k <= k_max; ++k) {
      est.sets_checked += for_each_failure_set(
          m, static_cast<std::uint32_t>(k),
          [&](const std::vector<bool>& failed, const std::vector<ProcId>& set) {
            double w = base;
            for (ProcId u : set) w *= odds[u];
            if (w <= 0.0) return true;  // contains a never-failing processor
            if (survives_failures(schedule, failed)) {
              reliable_mass += w;
            } else {
              record_killing_set(kills, est, set, w);
            }
            return true;
          });
    }
    est.reliability = reliable_mass;
    est.exact = true;
    return est;
  }

  // Importance-sampled Monte Carlo: propose failures with inflated
  // probabilities q_u so killing sets are actually drawn, reweight by the
  // true/proposal likelihood ratio. Unbiased for the failure mass.
  Rng rng(options.seed);
  std::vector<double> q(m);
  for (std::size_t u = 0; u < m; ++u) {
    q[u] = p[u] == 0.0 ? 0.0 : std::max(p[u], options.mc_proposal_floor);
  }
  std::vector<bool> failed(m, false);
  std::vector<ProcId> set;
  double failure_mass = 0.0;
  for (std::uint64_t i = 0; i < options.mc_samples; ++i) {
    set.clear();
    double weight = 1.0;
    for (std::size_t u = 0; u < m; ++u) {
      failed[u] = rng.bernoulli(q[u]);
      if (failed[u]) {
        weight *= p[u] / q[u];
        set.push_back(static_cast<ProcId>(u));
      } else {
        weight *= (1.0 - p[u]) / (1.0 - q[u]);
      }
    }
    ++est.sets_checked;
    if (!survives_failures(schedule, failed)) {
      failure_mass += weight;
      double prob = base;
      for (ProcId u : set) prob *= odds[u];
      record_killing_set(kills, est, set, prob);
    }
  }
  est.reliability =
      std::clamp(1.0 - failure_mass / static_cast<double>(options.mc_samples), 0.0, 1.0);
  est.exact = false;
  return est;
}

}  // namespace

ReliabilityEstimate schedule_reliability(const Schedule& schedule,
                                         const ReliabilityOptions& options) {
  return estimate_reliability(schedule, options, nullptr);
}

RepairStats repair_to_reliability(Schedule& schedule, double target_reliability,
                                  const ReliabilityOptions& options,
                                  ReliabilityEstimate* achieved) {
  SS_REQUIRE(target_reliability > 0.0 && target_reliability < 1.0,
             "target reliability must lie in (0, 1)");
  RepairStats stats;
  const std::uint32_t max_rounds = max_repair_rounds(schedule);
  const std::size_t m = schedule.platform().num_procs();
  ReliabilityEstimate est;
  bool est_current = false;

  // Every estimate draws a fresh Monte-Carlo stream: re-sampling the same
  // sets after wiring exactly those sets would overfit the estimate to the
  // sample and declare success optimistically. (Exact mode ignores the
  // seed.)
  std::uint64_t estimates = 0;
  const auto fresh_options = [&options, &estimates]() {
    ReliabilityOptions o = options;
    o.seed = options.seed + 0x9e3779b97f4a7c15ULL * ++estimates;
    return o;
  };

  for (stats.rounds = 0; stats.rounds < max_rounds; ++stats.rounds) {
    std::vector<KillingSet> kills;
    est = estimate_reliability(schedule, fresh_options(), &kills);
    est_current = true;
    if (est.reliability >= target_reliability) {
      stats.success = true;
      break;
    }
    const std::uint32_t before = stats.added_comms;
    for (const KillingSet& kill : kills) {
      std::vector<bool> failed(m, false);
      for (ProcId u : kill.procs) failed[u] = true;
      // Wire until this set survives or turns out to be beyond repair
      // (e.g. every replica of some task sits on the failed processors).
      for (std::uint32_t guard = 0; guard < max_rounds; ++guard) {
        if (survives_failures(schedule, failed)) break;
        if (!repair_step(schedule, failed, stats)) break;
        est_current = false;
      }
    }
    if (stats.added_comms == before) break;  // nothing repairable remains
  }

  record_period_excess(schedule, stats);
  if (achieved != nullptr) {
    *achieved = est_current ? est : estimate_reliability(schedule, fresh_options(), nullptr);
  }
  return stats;
}

RepairStats repair_for_model(Schedule& schedule, const FaultModel& model) {
  if (model.is_count()) {
    return repair_fault_tolerance(schedule, model.eps());
  }
  ReliabilityEstimate achieved;
  RepairStats stats = repair_to_reliability(schedule, model.target_reliability(), {}, &achieved);
  stats.reliability = achieved.reliability;
  return stats;
}

}  // namespace streamsched
