#include "schedule/fault_tolerance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace streamsched {

std::vector<std::vector<bool>> computable_replicas(const Schedule& schedule,
                                                   const std::vector<bool>& failed) {
  const Dag& dag = schedule.dag();
  SS_REQUIRE(failed.size() == schedule.platform().num_procs(),
             "failure vector must have one entry per processor");
  std::vector<std::vector<bool>> computable(
      dag.num_tasks(), std::vector<bool>(schedule.copies(), false));
  for (TaskId t : dag.topological_order()) {
    const auto preds = dag.predecessors(t);
    for (CopyId c = 0; c < schedule.copies(); ++c) {
      const ReplicaRef r{t, c};
      if (!schedule.is_placed(r)) continue;
      if (failed[schedule.placed(r).proc]) continue;
      bool ok = true;
      for (TaskId pred : preds) {
        bool fed = false;
        for (std::uint32_t idx : schedule.in_comms(r)) {
          const CommRecord& comm = schedule.comms()[idx];
          if (comm.src.task != pred) continue;
          if (computable[pred][comm.src.copy]) {
            fed = true;
            break;
          }
        }
        if (!fed) {
          ok = false;
          break;
        }
      }
      computable[t][c] = ok;
    }
  }
  return computable;
}

bool survives_failures(const Schedule& schedule, const std::vector<bool>& failed) {
  const auto computable = computable_replicas(schedule, failed);
  for (TaskId t = 0; t < schedule.dag().num_tasks(); ++t) {
    if (std::none_of(computable[t].begin(), computable[t].end(), [](bool b) { return b; })) {
      return false;
    }
  }
  return true;
}

namespace {

// Calls visit(failed) for every subset of {0..m-1} of size k; stops early
// when visit returns false. Returns the number of subsets visited.
template <typename Visit>
std::uint64_t for_each_failure_set(std::size_t m, std::uint32_t k, Visit&& visit) {
  std::vector<ProcId> subset(k);
  std::vector<bool> failed(m, false);
  std::uint64_t visited = 0;
  if (k == 0) {
    ++visited;
    visit(failed, std::vector<ProcId>{});
    return visited;
  }
  // Iterative combination enumeration in lexicographic order.
  for (std::uint32_t i = 0; i < k; ++i) subset[i] = i;
  for (;;) {
    std::fill(failed.begin(), failed.end(), false);
    for (ProcId p : subset) failed[p] = true;
    ++visited;
    if (!visit(failed, subset)) return visited;
    // Advance to the next combination.
    std::int64_t i = static_cast<std::int64_t>(k) - 1;
    while (i >= 0 && subset[static_cast<std::size_t>(i)] ==
                         static_cast<ProcId>(m - k + static_cast<std::size_t>(i))) {
      --i;
    }
    if (i < 0) return visited;
    ++subset[static_cast<std::size_t>(i)];
    for (auto j = static_cast<std::size_t>(i) + 1; j < k; ++j) {
      subset[j] = subset[j - 1] + 1;
    }
  }
}

}  // namespace

FtCheckResult check_fault_tolerance(const Schedule& schedule, std::uint32_t max_failures) {
  const std::size_t m = schedule.platform().num_procs();
  SS_REQUIRE(max_failures < m, "cannot fail all processors");
  FtCheckResult result;
  result.sets_checked = for_each_failure_set(
      m, max_failures, [&](const std::vector<bool>& failed, const std::vector<ProcId>& set) {
        if (!survives_failures(schedule, failed)) {
          result.valid = false;
          result.counterexample = set;
          return false;
        }
        return true;
      });
  return result;
}

FtCheckResult check_fault_tolerance_sampled(const Schedule& schedule,
                                            std::uint32_t max_failures, std::uint64_t samples,
                                            Rng& rng) {
  const std::size_t m = schedule.platform().num_procs();
  SS_REQUIRE(max_failures < m, "cannot fail all processors");
  FtCheckResult result;
  std::vector<bool> failed(m, false);
  for (std::uint64_t i = 0; i < samples; ++i) {
    const auto set = rng.sample_without_replacement(static_cast<std::uint32_t>(m), max_failures);
    std::fill(failed.begin(), failed.end(), false);
    for (auto p : set) failed[p] = true;
    ++result.sets_checked;
    if (!survives_failures(schedule, failed)) {
      result.valid = false;
      result.counterexample.assign(set.begin(), set.end());
      return result;
    }
  }
  return result;
}

namespace {

// Picks the cheapest computable supplier replica of `pred` to feed `r`:
// colocated first, then minimal added port load.
ReplicaRef pick_repair_supplier(const Schedule& schedule, ReplicaRef r, TaskId pred,
                                const std::vector<std::vector<bool>>& computable) {
  const ProcId here = schedule.placed(r).proc;
  ReplicaRef best{kInvalidTask, 0};
  double best_cost = std::numeric_limits<double>::infinity();
  for (CopyId c = 0; c < schedule.copies(); ++c) {
    const ReplicaRef cand{pred, c};
    if (!computable[pred][c]) continue;
    if (schedule.has_supplier(r, cand)) continue;  // already wired, didn't help
    const ProcId from = schedule.placed(cand).proc;
    double cost;
    if (from == here) {
      cost = 0.0;
    } else {
      // Prefer suppliers whose ports are least loaded after the addition.
      const EdgeId e = schedule.dag().find_edge(pred, r.task);
      const double dur = schedule.platform().comm_time(schedule.dag().edge(e).volume, from, here);
      cost = dur + std::max(schedule.cout(from), schedule.cin(here));
    }
    if (cost < best_cost) {
      best_cost = cost;
      best = cand;
    }
  }
  return best;
}

}  // namespace

RepairStats repair_fault_tolerance(Schedule& schedule, std::uint32_t max_failures) {
  SS_REQUIRE(max_failures <= schedule.eps(),
             "cannot repair for more failures than the replication degree");
  RepairStats stats;
  const Dag& dag = schedule.dag();
  // Each round adds at least one channel and there are at most
  // (eps+1)^2 * e distinct channels, so termination is guaranteed.
  const std::uint32_t max_rounds =
      static_cast<std::uint32_t>(schedule.copies() * schedule.copies() * dag.num_edges() + 16);

  for (stats.rounds = 0; stats.rounds < max_rounds; ++stats.rounds) {
    const FtCheckResult check = check_fault_tolerance(schedule, max_failures);
    if (check.valid) {
      stats.success = true;
      break;
    }
    std::vector<bool> failed(schedule.platform().num_procs(), false);
    for (ProcId p : check.counterexample) failed[p] = true;
    const auto computable = computable_replicas(schedule, failed);

    // Find the topologically first task with no computable replica; fix one
    // of its replicas on an alive processor by wiring computable suppliers.
    for (TaskId t : dag.topological_order()) {
      const bool dead =
          std::none_of(computable[t].begin(), computable[t].end(), [](bool b) { return b; });
      if (!dead) continue;

      // Choose the alive replica with the fewest starving predecessors.
      ReplicaRef target{kInvalidTask, 0};
      std::size_t best_missing = std::numeric_limits<std::size_t>::max();
      for (CopyId c = 0; c < schedule.copies(); ++c) {
        const ReplicaRef r{t, c};
        if (failed[schedule.placed(r).proc]) continue;
        std::size_t missing = 0;
        for (TaskId pred : dag.predecessors(t)) {
          bool fed = false;
          for (ReplicaRef sup : schedule.suppliers(r, pred)) {
            if (computable[pred][sup.copy]) {
              fed = true;
              break;
            }
          }
          if (!fed) ++missing;
        }
        if (missing < best_missing) {
          best_missing = missing;
          target = r;
        }
      }
      SS_CHECK(target.task != kInvalidTask,
               "no alive replica although |F| <= eps and replicas sit on distinct processors");

      for (TaskId pred : dag.predecessors(t)) {
        bool fed = false;
        for (ReplicaRef sup : schedule.suppliers(target, pred)) {
          if (computable[pred][sup.copy]) {
            fed = true;
            break;
          }
        }
        if (fed) continue;
        const ReplicaRef sup = pick_repair_supplier(schedule, target, pred, computable);
        SS_CHECK(sup.task != kInvalidTask, "predecessor has no computable replica to wire");
        const EdgeId e = dag.find_edge(pred, t);
        CommRecord comm;
        comm.edge = e;
        comm.src = sup;
        comm.dst = target;
        comm.start = comm.finish = schedule.placed(sup).finish;
        comm.repair = true;
        schedule.add_comm(comm);
        ++stats.added_comms;
      }
      break;  // re-check from scratch: fixing t may fix everything downstream
    }
  }

  if (stats.success && std::isfinite(schedule.period())) {
    for (ProcId u = 0; u < schedule.platform().num_procs(); ++u) {
      if (schedule.cin(u) > schedule.period() || schedule.cout(u) > schedule.period()) {
        stats.period_exceeded = true;
        break;
      }
    }
  }
  return stats;
}

}  // namespace streamsched
