#include "schedule/fault_tolerance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <thread>
#include <utility>

#include "schedule/survival.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace streamsched {

std::vector<std::vector<bool>> computable_replicas(const Schedule& schedule,
                                                   const std::vector<bool>& failed) {
  const Dag& dag = schedule.dag();
  SS_REQUIRE(failed.size() == schedule.platform().num_procs(),
             "failure vector must have one entry per processor");
  std::vector<std::vector<bool>> computable(
      dag.num_tasks(), std::vector<bool>(schedule.copies(), false));
  for (TaskId t : dag.topological_order()) {
    const auto preds = dag.predecessors(t);
    for (CopyId c = 0; c < schedule.copies(); ++c) {
      const ReplicaRef r{t, c};
      if (!schedule.is_placed(r)) continue;
      if (failed[schedule.placed(r).proc]) continue;
      bool ok = true;
      for (TaskId pred : preds) {
        bool fed = false;
        for (std::uint32_t idx : schedule.in_comms(r)) {
          const CommRecord& comm = schedule.comms()[idx];
          if (comm.src.task != pred) continue;
          if (computable[pred][comm.src.copy]) {
            fed = true;
            break;
          }
        }
        if (!fed) {
          ok = false;
          break;
        }
      }
      computable[t][c] = ok;
    }
  }
  return computable;
}

bool survives_failures(const Schedule& schedule, const std::vector<bool>& failed) {
  const auto computable = computable_replicas(schedule, failed);
  for (TaskId t = 0; t < schedule.dag().num_tasks(); ++t) {
    if (std::none_of(computable[t].begin(), computable[t].end(), [](bool b) { return b; })) {
      return false;
    }
  }
  return true;
}

namespace {

// Legacy enumerator kept verbatim for the kLegacy estimator path (the
// baseline bench_survival_kernel measures against): calls visit(failed)
// for every subset of {0..m-1} of size k, refilling `failed` O(m) per
// combination; stops early when visit returns false. The oracle path uses
// the incremental ProcSet enumerator in schedule/survival.hpp instead.
template <typename Visit>
std::uint64_t for_each_failure_set_legacy(std::size_t m, std::uint32_t k, Visit&& visit) {
  std::vector<ProcId> subset(k);
  std::vector<bool> failed(m, false);
  std::uint64_t visited = 0;
  if (k == 0) {
    ++visited;
    visit(failed, std::vector<ProcId>{});
    return visited;
  }
  // Iterative combination enumeration in lexicographic order.
  for (std::uint32_t i = 0; i < k; ++i) subset[i] = i;
  for (;;) {
    std::fill(failed.begin(), failed.end(), false);
    for (ProcId p : subset) failed[p] = true;
    ++visited;
    if (!visit(failed, subset)) return visited;
    // Advance to the next combination.
    std::int64_t i = static_cast<std::int64_t>(k) - 1;
    while (i >= 0 && subset[static_cast<std::size_t>(i)] ==
                         static_cast<ProcId>(m - k + static_cast<std::size_t>(i))) {
      --i;
    }
    if (i < 0) return visited;
    ++subset[static_cast<std::size_t>(i)];
    for (auto j = static_cast<std::size_t>(i) + 1; j < k; ++j) {
      subset[j] = subset[j - 1] + 1;
    }
  }
}

// Advances a size-k lexicographic combination over {0..m-1} in place;
// false once the last combination has been consumed.
bool next_combination(std::vector<ProcId>& subset, std::size_t m) {
  const std::size_t k = subset.size();
  std::int64_t i = static_cast<std::int64_t>(k) - 1;
  while (i >= 0 && subset[static_cast<std::size_t>(i)] ==
                       static_cast<ProcId>(m - k + static_cast<std::size_t>(i))) {
    --i;
  }
  if (i < 0) return false;
  ++subset[static_cast<std::size_t>(i)];
  for (auto j = static_cast<std::size_t>(i) + 1; j < k; ++j) subset[j] = subset[j - 1] + 1;
  return true;
}

// Exhaustive size-k check state that persists ACROSS repair rounds. Repair
// only ever adds supply channels and survival is monotone in the channel
// set, so every combination verified surviving stays surviving: instead of
// re-enumerating the full C(m, k) space per round (the `check_with_oracle`
// re-enumeration that dominated repair at m >= 32), the next round resumes
// at the previous counterexample and re-walks only the unverified tail.
struct ResumableCheck {
  ResumableCheck(std::size_t num_procs, std::uint32_t max_failures)
      : m(num_procs), subset(max_failures) {
    SS_REQUIRE(max_failures < m, "cannot fail all processors");
    for (std::uint32_t i = 0; i < max_failures; ++i) subset[i] = i;
  }

  std::size_t m;
  bool exhausted = false;
  std::vector<ProcId> subset;           // next combination to verify
  std::vector<std::uint64_t> rows;      // reusable 64-row block buffer
  BatchScratch scratch;
};

// Verifies the remaining combinations in blocks of 64 through the
// bit-sliced kernel. The enumeration stays lexicographic, so the reported
// counterexample is exactly the set the per-set walk would find;
// `sets_checked` counts the sets enumerated this call up to and including
// the counterexample, matching the per-set walk on a fresh state. On a
// kill the state re-positions AT the counterexample: after repair the next
// call re-verifies it first.
FtCheckResult check_with_oracle(SurvivalOracle& oracle, ResumableCheck& state) {
  const std::size_t m = state.m;
  const std::size_t words = (m + 63) / 64;
  FtCheckResult result;
  while (!state.exhausted) {
    state.rows.assign(64 * words, 0);
    std::size_t lanes = 0;
    while (lanes < 64 && !state.exhausted) {
      std::uint64_t* row = state.rows.data() + lanes * words;
      for (ProcId p : state.subset) row[p >> 6] |= 1ULL << (p & 63);
      ++lanes;
      if (!next_combination(state.subset, m)) state.exhausted = true;
    }
    const std::uint64_t survived = oracle.survives_batch(state.rows.data(), lanes, state.scratch);
    const std::uint64_t killed = ~survived & batch_lane_mask(lanes);
    if (killed != 0) {
      const auto lane = static_cast<std::size_t>(std::countr_zero(killed));
      result.valid = false;
      const std::uint64_t* row = state.rows.data() + lane * words;
      for (std::size_t u = 0; u < m; ++u) {
        if ((row[u >> 6] >> (u & 63)) & 1) result.counterexample.push_back(static_cast<ProcId>(u));
      }
      result.sets_checked += lane + 1;
      state.subset = result.counterexample;
      state.exhausted = false;
      return result;
    }
    result.sets_checked += lanes;
  }
  return result;
}

}  // namespace

FtCheckResult check_fault_tolerance(const Schedule& schedule, std::uint32_t max_failures) {
  SurvivalOracle oracle(schedule);
  ResumableCheck state(schedule.platform().num_procs(), max_failures);
  return check_with_oracle(oracle, state);
}

FtCheckResult check_fault_tolerance_sampled(const Schedule& schedule,
                                            std::uint32_t max_failures, std::uint64_t samples,
                                            Rng& rng) {
  const std::size_t m = schedule.platform().num_procs();
  SS_REQUIRE(max_failures < m, "cannot fail all processors");
  FtCheckResult result;
  SurvivalOracle oracle(schedule);
  ProcSet failed(m);
  for (std::uint64_t i = 0; i < samples; ++i) {
    const auto set = rng.sample_without_replacement(static_cast<std::uint32_t>(m), max_failures);
    failed.assign(set);
    ++result.sets_checked;
    if (!oracle.survives(failed)) {
      result.valid = false;
      result.counterexample.assign(set.begin(), set.end());
      return result;
    }
  }
  return result;
}

namespace {

// Picks the cheapest computable supplier replica of `pred` to feed `r`:
// colocated first, then minimal added port load. `alive` holds the
// oracle's computability masks under the current failure set (rows of
// `mask_words` words, one per task).
ReplicaRef pick_repair_supplier(const Schedule& schedule, ReplicaRef r, TaskId pred,
                                const std::vector<std::uint64_t>& alive,
                                std::size_t mask_words) {
  const ProcId here = schedule.placed(r).proc;
  const std::uint64_t* pred_alive = alive.data() + pred * mask_words;
  ReplicaRef best{kInvalidTask, 0};
  double best_cost = std::numeric_limits<double>::infinity();
  for (CopyId c = 0; c < schedule.copies(); ++c) {
    const ReplicaRef cand{pred, c};
    if (!replica_mask_test(pred_alive, c)) continue;
    if (schedule.has_supplier(r, cand)) continue;  // already wired, didn't help
    const ProcId from = schedule.placed(cand).proc;
    double cost;
    if (from == here) {
      cost = 0.0;
    } else {
      // Prefer suppliers whose ports are least loaded after the addition.
      const EdgeId e = schedule.dag().find_edge(pred, r.task);
      const double dur = schedule.platform().comm_time(schedule.dag().edge(e).volume, from, here);
      cost = dur + std::max(schedule.cout(from), schedule.cin(here));
    }
    if (cost < best_cost) {
      best_cost = cost;
      best = cand;
    }
  }
  return best;
}

// Wires supply channels fixing the topologically first task that has no
// computable replica under `failed` (one task per call, mirroring the
// original repair rounds: fixing it may fix everything downstream).
// `alive` is the oracle's computability under `failed` (stale after this
// call: the caller patches the oracle with the comms added here and
// recomputes). Returns false when the set is beyond repair — no alive
// replica of the dead task, or a starving predecessor with no computable
// replica to wire.
bool repair_step(Schedule& schedule, const ProcSet& failed,
                 const std::vector<std::uint64_t>& alive, std::size_t mask_words,
                 RepairStats& stats) {
  const Dag& dag = schedule.dag();

  for (TaskId t : dag.topological_order()) {
    const std::uint64_t* task_alive = alive.data() + t * mask_words;
    bool dead = true;
    for (std::size_t w = 0; w < mask_words && dead; ++w) dead = task_alive[w] == 0;
    if (!dead) continue;  // some replica is computable

    // Choose the alive replica with the fewest starving predecessors.
    ReplicaRef target{kInvalidTask, 0};
    std::size_t best_missing = std::numeric_limits<std::size_t>::max();
    for (CopyId c = 0; c < schedule.copies(); ++c) {
      const ReplicaRef r{t, c};
      if (failed.test(schedule.placed(r).proc)) continue;
      std::size_t missing = 0;
      for (TaskId pred : dag.predecessors(t)) {
        bool fed = false;
        for (ReplicaRef sup : schedule.suppliers(r, pred)) {
          if (replica_mask_test(alive.data() + pred * mask_words, sup.copy)) {
            fed = true;
            break;
          }
        }
        if (!fed) ++missing;
      }
      if (missing < best_missing) {
        best_missing = missing;
        target = r;
      }
    }
    if (target.task == kInvalidTask) return false;

    for (TaskId pred : dag.predecessors(t)) {
      bool fed = false;
      for (ReplicaRef sup : schedule.suppliers(target, pred)) {
        if (replica_mask_test(alive.data() + pred * mask_words, sup.copy)) {
          fed = true;
          break;
        }
      }
      if (fed) continue;
      const ReplicaRef sup = pick_repair_supplier(schedule, target, pred, alive, mask_words);
      if (sup.task == kInvalidTask) return false;
      const EdgeId e = dag.find_edge(pred, t);
      CommRecord comm;
      comm.edge = e;
      comm.src = sup;
      comm.dst = target;
      comm.start = comm.finish = schedule.placed(sup).finish;
      comm.repair = true;
      schedule.add_comm(comm);
      ++stats.added_comms;
    }
    return true;
  }
  return true;  // nothing dead: the schedule already survives this set
}

// Runs one repair step under `failed` and patches `oracle` with the added
// supply channels, so the oracle stays current without a recompile.
bool repair_step_patched(Schedule& schedule, SurvivalOracle& oracle, const ProcSet& failed,
                         std::vector<std::uint64_t>& alive, RepairStats& stats) {
  oracle.computable(failed, alive);
  std::size_t wired = schedule.comms().size();
  const bool repaired = repair_step(schedule, failed, alive, oracle.mask_words(), stats);
  for (; wired < schedule.comms().size(); ++wired) {
    oracle.add_comm(schedule.comms()[wired]);
  }
  return repaired;
}

// Channel-capacity bound on repair iterations: each productive step adds at
// least one of the at most (eps+1)^2 * e distinct channels.
std::uint32_t max_repair_rounds(const Schedule& schedule) {
  return static_cast<std::uint32_t>(schedule.copies() * schedule.copies() *
                                        schedule.dag().num_edges() +
                                    16);
}

void record_period_excess(const Schedule& schedule, RepairStats& stats) {
  if (!stats.success || !std::isfinite(schedule.period())) return;
  for (ProcId u = 0; u < schedule.platform().num_procs(); ++u) {
    if (schedule.cin(u) > schedule.period() || schedule.cout(u) > schedule.period()) {
      stats.period_exceeded = true;
      break;
    }
  }
}

}  // namespace

RepairStats repair_fault_tolerance(Schedule& schedule, std::uint32_t max_failures) {
  SurvivalOracle oracle(schedule);
  return repair_fault_tolerance(schedule, oracle, max_failures);
}

RepairStats repair_fault_tolerance(Schedule& schedule, SurvivalOracle& oracle,
                                   std::uint32_t max_failures) {
  SS_REQUIRE(max_failures <= schedule.eps(),
             "cannot repair for more failures than the replication degree");
  SS_REQUIRE(oracle.num_tasks() == schedule.dag().num_tasks() &&
                 oracle.num_procs() == schedule.platform().num_procs(),
             "oracle was not compiled from this schedule");
  RepairStats stats;
  const std::uint32_t max_rounds = max_repair_rounds(schedule);

  // The check state persists across rounds: repair only adds channels, so
  // the combinations verified surviving in earlier rounds never need
  // re-checking — each round resumes at the last counterexample.
  ResumableCheck state(schedule.platform().num_procs(), max_failures);
  ProcSet failed(schedule.platform().num_procs());
  std::vector<std::uint64_t> alive;
  for (stats.rounds = 0; stats.rounds < max_rounds; ++stats.rounds) {
    const FtCheckResult check = check_with_oracle(oracle, state);
    if (check.valid) {
      stats.success = true;
      break;
    }
    failed.assign(check.counterexample);
    const bool repaired = repair_step_patched(schedule, oracle, failed, alive, stats);
    SS_CHECK(repaired,
             "failure set of size <= eps is beyond repair although replicas sit on "
             "distinct processors");
  }

  record_period_excess(schedule, stats);
  return stats;
}

RepairStats repair_for_failure_set(Schedule& schedule, SurvivalOracle& oracle,
                                   const ProcSet& failed) {
  SS_REQUIRE(oracle.num_tasks() == schedule.dag().num_tasks() &&
                 oracle.num_procs() == schedule.platform().num_procs(),
             "oracle was not compiled from this schedule");
  SS_REQUIRE(failed.size() == schedule.platform().num_procs(),
             "failure set size != processor count");
  RepairStats stats;
  const std::uint32_t max_rounds = max_repair_rounds(schedule);
  std::vector<std::uint64_t> alive;
  for (stats.rounds = 0; stats.rounds < max_rounds; ++stats.rounds) {
    if (oracle.survives(failed)) {
      stats.success = true;
      break;
    }
    if (!repair_step_patched(schedule, oracle, failed, alive, stats)) break;  // beyond repair
  }
  record_period_excess(schedule, stats);
  return stats;
}

// ---------------------------------------------------------------------------
// Probabilistic reliability.

namespace {

// A failure set observed to kill the schedule, with its exact probability.
struct KillingSet {
  std::vector<ProcId> procs;
  double prob = 0.0;
};

constexpr std::size_t kMaxKillingSets = 64;

// Distribution of the number of failed processors (Poisson binomial),
// dist[j] = P(exactly j failures). O(m^2), exact.
std::vector<double> failure_count_distribution(const std::vector<double>& p) {
  std::vector<double> dist(p.size() + 1, 0.0);
  dist[0] = 1.0;
  for (std::size_t u = 0; u < p.size(); ++u) {
    for (std::size_t j = u + 1; j > 0; --j) {
      dist[j] = dist[j] * (1.0 - p[u]) + dist[j - 1] * p[u];
    }
    dist[0] *= 1.0 - p[u];
  }
  return dist;
}

double binomial_count(std::size_t m, std::size_t k) {
  double c = 1.0;
  for (std::size_t i = 0; i < k; ++i) {
    c *= static_cast<double>(m - i) / static_cast<double>(i + 1);
  }
  return c;
}

void record_killing_set(std::vector<KillingSet>* kills, ReliabilityEstimate& est,
                        const std::vector<ProcId>& set, double prob) {
  if (prob > est.worst_failure_prob) {
    est.worst_failure_prob = prob;
    est.worst_failure = set;
  }
  if (kills == nullptr || kills->size() >= kMaxKillingSets) return;
  for (const KillingSet& k : *kills) {
    if (k.procs == set) return;
  }
  kills->push_back(KillingSet{set, prob});
}

// Per-processor failure weights shared by both kernels: base = prod (1-p_u)
// and odds_u = p_u / (1-p_u), so a set's probability is base * prod odds.
// Also the exact-enumeration truncation point k_max (smallest size whose
// Poisson-binomial tail mass is within tolerance) and the resulting
// enumeration size. Identical arithmetic for both kernels keeps the
// exact-mode sums bit-identical.
struct FailureWeights {
  std::vector<double> p;
  std::vector<double> odds;
  double base = 1.0;
  std::size_t k_max = 0;
  double total_sets = 0.0;
};

FailureWeights failure_weights(const Schedule& schedule, const ReliabilityOptions& options) {
  const std::size_t m = schedule.platform().num_procs();
  FailureWeights fw;
  fw.p.resize(m);
  for (ProcId u = 0; u < m; ++u) fw.p[u] = schedule.platform().failure_prob(u);

  fw.odds.resize(m);
  for (std::size_t u = 0; u < m; ++u) {
    fw.base *= 1.0 - fw.p[u];
    fw.odds[u] = fw.p[u] / (1.0 - fw.p[u]);  // p_u < 1 by Platform
  }

  const std::vector<double> dist = failure_count_distribution(fw.p);
  fw.k_max = m;
  double cumulative = 0.0;
  for (std::size_t k = 0; k <= m; ++k) {
    cumulative += dist[k];
    if (1.0 - cumulative <= options.tail_tolerance) {
      fw.k_max = k;
      break;
    }
  }
  for (std::size_t k = 0; k <= fw.k_max; ++k) fw.total_sets += binomial_count(m, k);
  return fw;
}

// The pre-oracle estimator, kept verbatim as the measured baseline
// (options.kernel == kLegacy): per-set vector<bool> + survives_failures.
ReliabilityEstimate estimate_reliability_legacy(const Schedule& schedule,
                                                const ReliabilityOptions& options,
                                                std::vector<KillingSet>* kills) {
  const std::size_t m = schedule.platform().num_procs();
  const FailureWeights fw = failure_weights(schedule, options);
  ReliabilityEstimate est;
  est.k_max = fw.k_max;

  if (fw.total_sets <= static_cast<double>(options.max_sets)) {
    // Exact truncated enumeration, sizes ascending (mass mostly up front).
    double reliable_mass = 0.0;
    for (std::size_t k = 0; k <= fw.k_max; ++k) {
      est.sets_checked += for_each_failure_set_legacy(
          m, static_cast<std::uint32_t>(k),
          [&](const std::vector<bool>& failed, const std::vector<ProcId>& set) {
            double w = fw.base;
            for (ProcId u : set) w *= fw.odds[u];
            if (w <= 0.0) return true;  // contains a never-failing processor
            if (survives_failures(schedule, failed)) {
              reliable_mass += w;
            } else {
              record_killing_set(kills, est, set, w);
            }
            return true;
          });
    }
    est.reliability = reliable_mass;
    est.exact = true;
    return est;
  }

  // Importance-sampled Monte Carlo: propose failures with inflated
  // probabilities q_u so killing sets are actually drawn, reweight by the
  // true/proposal likelihood ratio. Unbiased for the failure mass.
  Rng rng(options.seed);
  std::vector<double> q(m);
  for (std::size_t u = 0; u < m; ++u) {
    q[u] = fw.p[u] == 0.0 ? 0.0 : std::max(fw.p[u], options.mc_proposal_floor);
  }
  std::vector<bool> failed(m, false);
  std::vector<ProcId> set;
  double failure_mass = 0.0;
  for (std::uint64_t i = 0; i < options.mc_samples; ++i) {
    set.clear();
    double weight = 1.0;
    for (std::size_t u = 0; u < m; ++u) {
      failed[u] = rng.bernoulli(q[u]);
      if (failed[u]) {
        weight *= fw.p[u] / q[u];
        set.push_back(static_cast<ProcId>(u));
      } else {
        weight *= (1.0 - fw.p[u]) / (1.0 - q[u]);
      }
    }
    ++est.sets_checked;
    if (!survives_failures(schedule, failed)) {
      failure_mass += weight;
      double prob = fw.base;
      for (ProcId u : set) prob *= fw.odds[u];
      record_killing_set(kills, est, set, prob);
    }
  }
  est.reliability =
      std::clamp(1.0 - failure_mass / static_cast<double>(options.mc_samples), 0.0, 1.0);
  est.exact = false;
  return est;
}

// Resolves the worker count conventions shared by the fan-outs below
// (0 = hardware concurrency, never less than one).
std::size_t resolve_workers(std::size_t requested) {
  return requested == 0 ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
                        : requested;
}

// Per-set fan-out of pure survival checks over a flat array of failure-set
// word rows (the kOracle baseline): workers take 1024-row chunks in a
// strided static partition, each with ONE reusable scratch buffer for its
// whole share (not one per chunk), results as bytes so workers never share
// a word. The partition never influences anything observable — results
// land in fixed slots.
void parallel_survival_check(const SurvivalOracle& oracle, const std::uint64_t* set_words,
                             std::size_t n, std::size_t words, std::size_t workers,
                             std::vector<unsigned char>& killed) {
  killed.assign(n, 0);
  constexpr std::size_t kChunk = 1024;
  const std::size_t n_chunks = (n + kChunk - 1) / kChunk;
  const std::size_t use = std::min(resolve_workers(workers), std::max<std::size_t>(1, n_chunks));
  parallel_for_indices(use, use, [&](std::size_t worker) {
    std::vector<std::uint64_t> scratch;  // per-worker, reused across chunks
    for (std::size_t chunk = worker; chunk < n_chunks; chunk += use) {
      const std::size_t end = std::min(n, (chunk + 1) * kChunk);
      for (std::size_t i = chunk * kChunk; i < end; ++i) {
        killed[i] = oracle.survives_words(set_words + i * words, scratch) ? 0 : 1;
      }
    }
  });
}

// Bit-sliced fan-out (the kBatch path): blocks of 64 rows feed one
// `survives_batch` pass each; workers take blocks in a strided static
// partition with one reusable BatchScratch per worker. Lane booleans equal
// the per-set kernel's, and the bytes land in row order, so every
// downstream reduction is bit-identical to the per-set path.
void batch_survival_check(const SurvivalOracle& oracle, const std::uint64_t* set_words,
                          std::size_t n, std::size_t words, std::size_t workers,
                          std::vector<unsigned char>& killed) {
  killed.assign(n, 0);
  if (n == 0) return;
  constexpr std::size_t kBlock = 64;
  const std::size_t n_blocks = (n + kBlock - 1) / kBlock;
  const std::size_t use = std::min(resolve_workers(workers), n_blocks);
  parallel_for_indices(use, use, [&](std::size_t worker) {
    BatchScratch scratch;  // per-worker, reused across blocks
    for (std::size_t block = worker; block < n_blocks; block += use) {
      const std::size_t begin = block * kBlock;
      const std::size_t count = std::min(kBlock, n - begin);
      const std::uint64_t survived =
          oracle.survives_batch(set_words + begin * words, count, scratch);
      for (std::size_t lane = 0; lane < count; ++lane) {
        killed[begin + lane] = ((survived >> lane) & 1) != 0 ? 0 : 1;
      }
    }
  });
}

// The truncated exact enumeration, materialized: every positive-weight
// failure set of size <= k_max as bitset word rows in enumeration order,
// with its probability weight (ascending-id multiply order, as the serial
// kernels). Zero-weight sets (a never-failing processor) contribute
// nothing and are skipped before the survival check by every kernel; they
// still count in `enumerated`. Memory: one word-row per set, bounded by
// options.max_sets.
struct ExactSets {
  std::size_t m = 0;
  std::size_t words = 0;
  std::uint64_t enumerated = 0;      // sets visited, including zero-weight ones
  std::vector<std::uint64_t> rows;   // [i * words ..): ProcSet word layout
  std::vector<double> weight;        // parallel to rows
  [[nodiscard]] std::size_t size() const { return weight.size(); }
};

ExactSets materialize_exact_sets(const FailureWeights& fw, std::size_t m) {
  ExactSets sets;
  sets.m = m;
  sets.words = (m + 63) / 64;
  const auto expected = static_cast<std::size_t>(fw.total_sets);
  sets.rows.reserve(expected * sets.words);
  sets.weight.reserve(expected);
  ProcSet failed(m);
  // Weights via prefix products over the combination: prefix[i] is
  // base * odds[set[0]] * ... * odds[set[i-1]], rebuilt only from the
  // first changed position — the SAME left-to-right multiply chain as the
  // serial kernels' per-set loop, so every weight is bit-identical.
  std::vector<double> prefix;
  for (std::size_t k = 0; k <= fw.k_max; ++k) {
    prefix.assign(k + 1, 0.0);
    prefix[0] = fw.base;
    sets.enumerated += for_each_failure_set(
        m, static_cast<std::uint32_t>(k), failed,
        [&](const ProcSet& f, const std::vector<ProcId>& set, std::size_t changed) {
          for (std::size_t i = changed; i < set.size(); ++i) {
            prefix[i + 1] = prefix[i] * fw.odds[set[i]];
          }
          const double w = prefix[set.size()];
          if (w > 0.0) {
            if (sets.words == 1) {
              sets.rows.push_back(f.words()[0]);
            } else {
              sets.rows.insert(sets.rows.end(), f.words(), f.words() + sets.words);
            }
            sets.weight.push_back(w);
          }
          return true;
        });
  }
  return sets;
}

// Ordered reduction over materialized rows: mass summed in enumeration
// order — the serial kernels' arithmetic — and killing sets recorded in
// enumeration order. Only killed rows decode their processor set.
void reduce_exact_sets(const ExactSets& sets, const std::vector<unsigned char>& killed,
                       ReliabilityEstimate& est, std::vector<KillingSet>* kills) {
  double reliable_mass = 0.0;
  std::vector<ProcId> set;
  for (std::size_t i = 0; i < sets.size(); ++i) {
    if (killed[i] == 0) {
      reliable_mass += sets.weight[i];
      continue;
    }
    // Decode the processor ids only when the record can observe them:
    // without a kills list, record_killing_set reads the set solely when
    // this row improves the worst-failure tracking — the same strict
    // `prob > worst` predicate, evaluated in the same row order.
    if (kills == nullptr && sets.weight[i] <= est.worst_failure_prob) continue;
    const std::uint64_t* row = sets.rows.data() + i * sets.words;
    set.clear();
    for (std::size_t u = 0; u < sets.m; ++u) {
      if ((row[u >> 6] >> (u & 63)) & 1) set.push_back(static_cast<ProcId>(u));
    }
    record_killing_set(kills, est, set, sets.weight[i]);
  }
  est.sets_checked = sets.enumerated;
  est.reliability = reliable_mass;
  est.exact = true;
}

// Oracle-kernel estimator (kBatch and kOracle). Exact mode reuses the
// legacy enumeration order and summation order, swapping only the survival
// check — the reliability is bit-identical whether the checks run one set
// at a time (kOracle), 64 per bit-sliced pass (kBatch), serial or fanned
// out over exact_threads. Monte-Carlo mode pre-draws every sample from the
// options.seed stream exactly as the legacy sampler does (same draws, same
// weights), evaluates survival over the stored bitsets — per set or per
// 64-set block, over mc_threads workers when requested — and reduces in
// sample order, so the estimate is identical to the legacy kernel's for
// every kernel and thread count.
ReliabilityEstimate estimate_reliability_oracle(const Schedule& schedule,
                                                const SurvivalOracle& oracle,
                                                const ReliabilityOptions& options,
                                                std::vector<KillingSet>* kills) {
  const std::size_t m = schedule.platform().num_procs();
  const FailureWeights fw = failure_weights(schedule, options);
  ReliabilityEstimate est;
  est.k_max = fw.k_max;
  std::vector<std::uint64_t> scratch;

  if (fw.total_sets <= static_cast<double>(options.max_sets)) {
    const std::size_t exact_workers = resolve_workers(options.exact_threads);
    if (options.kernel == SurvivalKernel::kBatch) {
      // Bit-sliced path: materialize the enumeration, resolve 64 sets per
      // pass (fanned out above the thread floor; the floor depends only on
      // the enumeration size, so results never depend on exact_threads),
      // reduce in enumeration order.
      const ExactSets sets = materialize_exact_sets(fw, m);
      std::vector<unsigned char> killed;
      batch_survival_check(oracle, sets.rows.data(), sets.size(), sets.words,
                           sets.size() >= 4096 ? exact_workers : 1, killed);
      reduce_exact_sets(sets, killed, est, kills);
      return est;
    }
    // Per-set oracle path (the measured baseline for the batch kernel).
    // Size floor: materialization + fan-out only pay off on enumerations
    // of at least a few chunks. The floor depends only on the enumeration
    // size — never on the thread count — so results stay bit-identical
    // for every exact_threads value either way.
    if (exact_workers > 1 && fw.total_sets >= 4096.0) {
      const ExactSets sets = materialize_exact_sets(fw, m);
      std::vector<unsigned char> killed;
      parallel_survival_check(oracle, sets.rows.data(), sets.size(), sets.words, exact_workers,
                              killed);
      reduce_exact_sets(sets, killed, est, kills);
      return est;
    }
    double reliable_mass = 0.0;
    ProcSet failed(m);
    for (std::size_t k = 0; k <= fw.k_max; ++k) {
      est.sets_checked += for_each_failure_set(
          m, static_cast<std::uint32_t>(k), failed,
          [&](const ProcSet& f, const std::vector<ProcId>& set) {
            double w = fw.base;
            for (ProcId u : set) w *= fw.odds[u];
            if (w <= 0.0) return true;  // contains a never-failing processor
            if (oracle.survives(f, scratch)) {
              reliable_mass += w;
            } else {
              record_killing_set(kills, est, set, w);
            }
            return true;
          });
    }
    est.reliability = reliable_mass;
    est.exact = true;
    return est;
  }

  // Monte Carlo. Generation pass: one sequential stream, bit-identical
  // draws and weight products to the legacy sampler.
  Rng rng(options.seed);
  std::vector<double> q(m);
  for (std::size_t u = 0; u < m; ++u) {
    q[u] = fw.p[u] == 0.0 ? 0.0 : std::max(fw.p[u], options.mc_proposal_floor);
  }
  const std::size_t words = (m + 63) / 64;
  const std::size_t n = options.mc_samples;
  std::vector<std::uint64_t> sample_words(n * words, 0);
  std::vector<double> sample_weight(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t* w = sample_words.data() + i * words;
    double weight = 1.0;
    for (std::size_t u = 0; u < m; ++u) {
      if (rng.bernoulli(q[u])) {
        w[u >> 6] |= 1ULL << (u & 63);
        weight *= fw.p[u] / q[u];
      } else {
        weight *= (1.0 - fw.p[u]) / (1.0 - q[u]);
      }
    }
    sample_weight[i] = weight;
  }

  // Evaluation pass: the only stochastic-free, embarrassingly parallel
  // part (shared with the exact fan-outs). kBatch resolves the samples 64
  // per bit-sliced pass; kOracle one at a time. Either way the booleans
  // land in sample order, so the reduction below is kernel-independent.
  std::vector<unsigned char> killed;
  if (options.kernel == SurvivalKernel::kBatch) {
    batch_survival_check(oracle, sample_words.data(), n, words, options.mc_threads, killed);
  } else if (options.mc_threads == 1) {
    killed.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      killed[i] = oracle.survives_words(sample_words.data() + i * words, scratch) ? 0 : 1;
    }
  } else {
    parallel_survival_check(oracle, sample_words.data(), n, words, options.mc_threads,
                            killed);
  }

  // Reduction in sample order: same summation order and killing-set
  // recording order as the sequential legacy loop.
  double failure_mass = 0.0;
  std::vector<ProcId> set;
  for (std::size_t i = 0; i < n; ++i) {
    ++est.sets_checked;
    if (killed[i] == 0) continue;
    failure_mass += sample_weight[i];
    set.clear();
    const std::uint64_t* w = sample_words.data() + i * words;
    for (std::size_t u = 0; u < m; ++u) {
      if ((w[u >> 6] >> (u & 63)) & 1) set.push_back(static_cast<ProcId>(u));
    }
    double prob = fw.base;
    for (ProcId u : set) prob *= fw.odds[u];
    record_killing_set(kills, est, set, prob);
  }
  est.reliability =
      std::clamp(1.0 - failure_mass / static_cast<double>(options.mc_samples), 0.0, 1.0);
  est.exact = false;
  return est;
}

// Kernel dispatch; `oracle` may be null (compiled on demand). The oracle's
// replica masks are multi-word, so kLegacy is chosen only when asked for —
// never forced by the replication degree.
ReliabilityEstimate estimate_reliability(const Schedule& schedule, const SurvivalOracle* oracle,
                                         const ReliabilityOptions& options,
                                         std::vector<KillingSet>* kills) {
  if (options.kernel == SurvivalKernel::kLegacy) {
    return estimate_reliability_legacy(schedule, options, kills);
  }
  if (oracle != nullptr) return estimate_reliability_oracle(schedule, *oracle, options, kills);
  const SurvivalOracle local(schedule);
  return estimate_reliability_oracle(schedule, local, options, kills);
}

}  // namespace

ReliabilityEstimate schedule_reliability(const Schedule& schedule,
                                         const ReliabilityOptions& options) {
  return estimate_reliability(schedule, nullptr, options, nullptr);
}

RepairStats repair_to_reliability(Schedule& schedule, double target_reliability,
                                  const ReliabilityOptions& options,
                                  ReliabilityEstimate* achieved) {
  SurvivalOracle oracle(schedule);
  return repair_to_reliability(schedule, oracle, target_reliability, options, achieved);
}

RepairStats repair_to_reliability(Schedule& schedule, SurvivalOracle& oracle,
                                  double target_reliability,
                                  const ReliabilityOptions& options,
                                  ReliabilityEstimate* achieved) {
  SS_REQUIRE(target_reliability > 0.0 && target_reliability < 1.0,
             "target reliability must lie in (0, 1)");
  SS_REQUIRE(oracle.num_tasks() == schedule.dag().num_tasks() &&
                 oracle.num_procs() == schedule.platform().num_procs(),
             "oracle was not compiled from this schedule");
  RepairStats stats;
  const std::uint32_t max_rounds = max_repair_rounds(schedule);
  const std::size_t m = schedule.platform().num_procs();
  ReliabilityEstimate est;
  bool est_current = false;

  // Every estimate draws a fresh Monte-Carlo stream: re-sampling the same
  // sets after wiring exactly those sets would overfit the estimate to the
  // sample and declare success optimistically. (Exact mode ignores the
  // seed.)
  std::uint64_t estimates = 0;
  const auto fresh_options = [&options, &estimates]() {
    ReliabilityOptions o = options;
    o.seed = options.seed + 0x9e3779b97f4a7c15ULL * ++estimates;
    return o;
  };

  // The repair loop's survival checks always run on the oracle (patched as
  // channels are wired); only the estimates dispatch on options.kernel.
  // The failure set and computability buffers are hoisted and reused
  // across every killing set and round.
  ProcSet failed(m);
  std::vector<std::uint64_t> alive;

  // Incremental killing-set verification (kBatch exact mode). Repair only
  // ADDS supply channels, and survival is monotone in the channel set, so
  // a set verified surviving stays surviving forever — across rounds the
  // cached enumeration only needs its still-killed rows re-verified. And a
  // killed set F can only flip if some channel wired since its last
  // verification is usable under F, which requires BOTH endpoint
  // processors alive under F; rows where every patch has an endpoint in F
  // are provably still killed and skip the check entirely. The reduction
  // re-walks the cached rows in enumeration order every round, so the
  // estimate (reliability, sets_checked, killing sets, worst failure) is
  // bit-identical to a from-scratch re-enumeration.
  const FailureWeights fw = failure_weights(schedule, options);
  const bool incremental = options.kernel == SurvivalKernel::kBatch &&
                           fw.total_sets <= static_cast<double>(options.max_sets);
  ExactSets cache;
  std::vector<unsigned char> killed;
  std::vector<std::pair<ProcId, ProcId>> patched;  // channel endpoints wired since last verify
  std::vector<std::size_t> recheck;
  std::vector<std::uint64_t> recheck_rows;
  std::vector<unsigned char> recheck_killed;

  for (stats.rounds = 0; stats.rounds < max_rounds; ++stats.rounds) {
    std::vector<KillingSet> kills;
    if (incremental) {
      if (stats.rounds == 0) {
        cache = materialize_exact_sets(fw, m);
        batch_survival_check(oracle, cache.rows.data(), cache.size(), cache.words,
                             cache.size() >= 4096 ? options.exact_threads : 1, killed);
      } else if (!patched.empty()) {
        recheck.clear();
        for (std::size_t i = 0; i < cache.size(); ++i) {
          if (killed[i] == 0) continue;
          const std::uint64_t* row = cache.rows.data() + i * cache.words;
          for (const auto& [src, dst] : patched) {
            if (((row[src >> 6] >> (src & 63)) & 1) == 0 &&
                ((row[dst >> 6] >> (dst & 63)) & 1) == 0) {
              recheck.push_back(i);
              break;
            }
          }
        }
        if (!recheck.empty()) {
          recheck_rows.resize(recheck.size() * cache.words);
          for (std::size_t j = 0; j < recheck.size(); ++j) {
            const std::uint64_t* row = cache.rows.data() + recheck[j] * cache.words;
            std::copy(row, row + cache.words, recheck_rows.data() + j * cache.words);
          }
          batch_survival_check(oracle, recheck_rows.data(), recheck.size(), cache.words,
                               recheck.size() >= 4096 ? options.exact_threads : 1,
                               recheck_killed);
          for (std::size_t j = 0; j < recheck.size(); ++j) {
            killed[recheck[j]] = recheck_killed[j];
          }
        }
      }
      patched.clear();
      est = ReliabilityEstimate{};
      est.k_max = fw.k_max;
      reduce_exact_sets(cache, killed, est, &kills);
    } else {
      est = estimate_reliability(schedule, &oracle, fresh_options(), &kills);
    }
    est_current = true;
    if (est.reliability >= target_reliability) {
      stats.success = true;
      break;
    }
    const std::uint32_t before = stats.added_comms;
    for (const KillingSet& kill : kills) {
      failed.assign(kill.procs);
      // Wire until this set survives or turns out to be beyond repair
      // (e.g. every replica of some task sits on the failed processors).
      for (std::uint32_t guard = 0; guard < max_rounds; ++guard) {
        if (oracle.survives(failed)) break;
        const std::size_t comms_before = schedule.comms().size();
        if (!repair_step_patched(schedule, oracle, failed, alive, stats)) break;
        if (incremental) {
          for (std::size_t ci = comms_before; ci < schedule.comms().size(); ++ci) {
            const CommRecord& comm = schedule.comms()[ci];
            patched.emplace_back(schedule.placed(comm.src).proc, schedule.placed(comm.dst).proc);
          }
        }
        est_current = false;
      }
    }
    if (stats.added_comms == before) break;  // nothing repairable remains
  }

  record_period_excess(schedule, stats);
  if (achieved != nullptr) {
    *achieved = est_current ? est
                            : estimate_reliability(schedule, &oracle, fresh_options(), nullptr);
  }
  return stats;
}

RepairStats repair_for_model(Schedule& schedule, const FaultModel& model) {
  SurvivalOracle oracle(schedule);
  return repair_for_model(schedule, oracle, model);
}

RepairStats repair_for_model(Schedule& schedule, SurvivalOracle& oracle,
                             const FaultModel& model) {
  if (model.is_count()) {
    return repair_fault_tolerance(schedule, oracle, model.eps());
  }
  ReliabilityEstimate achieved;
  RepairStats stats =
      repair_to_reliability(schedule, oracle, model.target_reliability(), {}, &achieved);
  stats.reliability = achieved.reliability;
  return stats;
}

}  // namespace streamsched
