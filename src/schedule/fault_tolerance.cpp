#include "schedule/fault_tolerance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <thread>

#include "schedule/survival.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace streamsched {

std::vector<std::vector<bool>> computable_replicas(const Schedule& schedule,
                                                   const std::vector<bool>& failed) {
  const Dag& dag = schedule.dag();
  SS_REQUIRE(failed.size() == schedule.platform().num_procs(),
             "failure vector must have one entry per processor");
  std::vector<std::vector<bool>> computable(
      dag.num_tasks(), std::vector<bool>(schedule.copies(), false));
  for (TaskId t : dag.topological_order()) {
    const auto preds = dag.predecessors(t);
    for (CopyId c = 0; c < schedule.copies(); ++c) {
      const ReplicaRef r{t, c};
      if (!schedule.is_placed(r)) continue;
      if (failed[schedule.placed(r).proc]) continue;
      bool ok = true;
      for (TaskId pred : preds) {
        bool fed = false;
        for (std::uint32_t idx : schedule.in_comms(r)) {
          const CommRecord& comm = schedule.comms()[idx];
          if (comm.src.task != pred) continue;
          if (computable[pred][comm.src.copy]) {
            fed = true;
            break;
          }
        }
        if (!fed) {
          ok = false;
          break;
        }
      }
      computable[t][c] = ok;
    }
  }
  return computable;
}

bool survives_failures(const Schedule& schedule, const std::vector<bool>& failed) {
  const auto computable = computable_replicas(schedule, failed);
  for (TaskId t = 0; t < schedule.dag().num_tasks(); ++t) {
    if (std::none_of(computable[t].begin(), computable[t].end(), [](bool b) { return b; })) {
      return false;
    }
  }
  return true;
}

namespace {

// Legacy enumerator kept verbatim for the kLegacy estimator path (the
// baseline bench_survival_kernel measures against): calls visit(failed)
// for every subset of {0..m-1} of size k, refilling `failed` O(m) per
// combination; stops early when visit returns false. The oracle path uses
// the incremental ProcSet enumerator in schedule/survival.hpp instead.
template <typename Visit>
std::uint64_t for_each_failure_set_legacy(std::size_t m, std::uint32_t k, Visit&& visit) {
  std::vector<ProcId> subset(k);
  std::vector<bool> failed(m, false);
  std::uint64_t visited = 0;
  if (k == 0) {
    ++visited;
    visit(failed, std::vector<ProcId>{});
    return visited;
  }
  // Iterative combination enumeration in lexicographic order.
  for (std::uint32_t i = 0; i < k; ++i) subset[i] = i;
  for (;;) {
    std::fill(failed.begin(), failed.end(), false);
    for (ProcId p : subset) failed[p] = true;
    ++visited;
    if (!visit(failed, subset)) return visited;
    // Advance to the next combination.
    std::int64_t i = static_cast<std::int64_t>(k) - 1;
    while (i >= 0 && subset[static_cast<std::size_t>(i)] ==
                         static_cast<ProcId>(m - k + static_cast<std::size_t>(i))) {
      --i;
    }
    if (i < 0) return visited;
    ++subset[static_cast<std::size_t>(i)];
    for (auto j = static_cast<std::size_t>(i) + 1; j < k; ++j) {
      subset[j] = subset[j - 1] + 1;
    }
  }
}

// Exhaustive size-`max_failures` check against an already-compiled oracle;
// `failed` is the caller's reusable ProcSet. The repair loop calls this
// every round, patching the oracle between rounds instead of recompiling.
FtCheckResult check_with_oracle(SurvivalOracle& oracle, ProcSet& failed,
                                std::uint32_t max_failures) {
  const std::size_t m = oracle.num_procs();
  SS_REQUIRE(max_failures < m, "cannot fail all processors");
  FtCheckResult result;
  result.sets_checked = for_each_failure_set(
      m, max_failures, failed, [&](const ProcSet& f, const std::vector<ProcId>& set) {
        if (!oracle.survives(f)) {
          result.valid = false;
          result.counterexample = set;
          return false;
        }
        return true;
      });
  return result;
}

}  // namespace

FtCheckResult check_fault_tolerance(const Schedule& schedule, std::uint32_t max_failures) {
  const std::size_t m = schedule.platform().num_procs();
  if (schedule.copies() > 64) {
    // Beyond the oracle's mask width: the legacy kernel handles arbitrary
    // replication degrees.
    SS_REQUIRE(max_failures < m, "cannot fail all processors");
    FtCheckResult result;
    result.sets_checked = for_each_failure_set_legacy(
        m, max_failures,
        [&](const std::vector<bool>& failed, const std::vector<ProcId>& set) {
          if (!survives_failures(schedule, failed)) {
            result.valid = false;
            result.counterexample = set;
            return false;
          }
          return true;
        });
    return result;
  }
  SurvivalOracle oracle(schedule);
  ProcSet failed(m);
  return check_with_oracle(oracle, failed, max_failures);
}

FtCheckResult check_fault_tolerance_sampled(const Schedule& schedule,
                                            std::uint32_t max_failures, std::uint64_t samples,
                                            Rng& rng) {
  const std::size_t m = schedule.platform().num_procs();
  SS_REQUIRE(max_failures < m, "cannot fail all processors");
  FtCheckResult result;
  if (schedule.copies() > 64) {
    std::vector<bool> failed(m, false);
    for (std::uint64_t i = 0; i < samples; ++i) {
      const auto set =
          rng.sample_without_replacement(static_cast<std::uint32_t>(m), max_failures);
      std::fill(failed.begin(), failed.end(), false);
      for (auto p : set) failed[p] = true;
      ++result.sets_checked;
      if (!survives_failures(schedule, failed)) {
        result.valid = false;
        result.counterexample.assign(set.begin(), set.end());
        return result;
      }
    }
    return result;
  }
  SurvivalOracle oracle(schedule);
  ProcSet failed(m);
  for (std::uint64_t i = 0; i < samples; ++i) {
    const auto set = rng.sample_without_replacement(static_cast<std::uint32_t>(m), max_failures);
    failed.assign(set);
    ++result.sets_checked;
    if (!oracle.survives(failed)) {
      result.valid = false;
      result.counterexample.assign(set.begin(), set.end());
      return result;
    }
  }
  return result;
}

namespace {

// Picks the cheapest computable supplier replica of `pred` to feed `r`:
// colocated first, then minimal added port load. `alive` holds the
// oracle's computability masks under the current failure set.
ReplicaRef pick_repair_supplier(const Schedule& schedule, ReplicaRef r, TaskId pred,
                                const std::vector<std::uint64_t>& alive) {
  const ProcId here = schedule.placed(r).proc;
  ReplicaRef best{kInvalidTask, 0};
  double best_cost = std::numeric_limits<double>::infinity();
  for (CopyId c = 0; c < schedule.copies(); ++c) {
    const ReplicaRef cand{pred, c};
    if (((alive[pred] >> c) & 1) == 0) continue;
    if (schedule.has_supplier(r, cand)) continue;  // already wired, didn't help
    const ProcId from = schedule.placed(cand).proc;
    double cost;
    if (from == here) {
      cost = 0.0;
    } else {
      // Prefer suppliers whose ports are least loaded after the addition.
      const EdgeId e = schedule.dag().find_edge(pred, r.task);
      const double dur = schedule.platform().comm_time(schedule.dag().edge(e).volume, from, here);
      cost = dur + std::max(schedule.cout(from), schedule.cin(here));
    }
    if (cost < best_cost) {
      best_cost = cost;
      best = cand;
    }
  }
  return best;
}

// Wires supply channels fixing the topologically first task that has no
// computable replica under `failed` (one task per call, mirroring the
// original repair rounds: fixing it may fix everything downstream).
// `alive` is the oracle's computability under `failed` (stale after this
// call: the caller patches the oracle with the comms added here and
// recomputes). Returns false when the set is beyond repair — no alive
// replica of the dead task, or a starving predecessor with no computable
// replica to wire.
bool repair_step(Schedule& schedule, const ProcSet& failed,
                 const std::vector<std::uint64_t>& alive, RepairStats& stats) {
  const Dag& dag = schedule.dag();

  for (TaskId t : dag.topological_order()) {
    if (alive[t] != 0) continue;  // some replica is computable

    // Choose the alive replica with the fewest starving predecessors.
    ReplicaRef target{kInvalidTask, 0};
    std::size_t best_missing = std::numeric_limits<std::size_t>::max();
    for (CopyId c = 0; c < schedule.copies(); ++c) {
      const ReplicaRef r{t, c};
      if (failed.test(schedule.placed(r).proc)) continue;
      std::size_t missing = 0;
      for (TaskId pred : dag.predecessors(t)) {
        bool fed = false;
        for (ReplicaRef sup : schedule.suppliers(r, pred)) {
          if ((alive[pred] >> sup.copy) & 1) {
            fed = true;
            break;
          }
        }
        if (!fed) ++missing;
      }
      if (missing < best_missing) {
        best_missing = missing;
        target = r;
      }
    }
    if (target.task == kInvalidTask) return false;

    for (TaskId pred : dag.predecessors(t)) {
      bool fed = false;
      for (ReplicaRef sup : schedule.suppliers(target, pred)) {
        if ((alive[pred] >> sup.copy) & 1) {
          fed = true;
          break;
        }
      }
      if (fed) continue;
      const ReplicaRef sup = pick_repair_supplier(schedule, target, pred, alive);
      if (sup.task == kInvalidTask) return false;
      const EdgeId e = dag.find_edge(pred, t);
      CommRecord comm;
      comm.edge = e;
      comm.src = sup;
      comm.dst = target;
      comm.start = comm.finish = schedule.placed(sup).finish;
      comm.repair = true;
      schedule.add_comm(comm);
      ++stats.added_comms;
    }
    return true;
  }
  return true;  // nothing dead: the schedule already survives this set
}

// Runs one repair step under `failed` and patches `oracle` with the added
// supply channels, so the oracle stays current without a recompile.
bool repair_step_patched(Schedule& schedule, SurvivalOracle& oracle, const ProcSet& failed,
                         std::vector<std::uint64_t>& alive, RepairStats& stats) {
  oracle.computable(failed, alive);
  std::size_t wired = schedule.comms().size();
  const bool repaired = repair_step(schedule, failed, alive, stats);
  for (; wired < schedule.comms().size(); ++wired) {
    oracle.add_comm(schedule.comms()[wired]);
  }
  return repaired;
}

// Legacy repair step on the vector<vector<bool>> computability matrix —
// the fallback for replication degrees beyond the oracle's 64-copy mask
// width. Logic mirrors repair_step / pick_repair_supplier above.
ReplicaRef pick_repair_supplier_legacy(const Schedule& schedule, ReplicaRef r, TaskId pred,
                                       const std::vector<std::vector<bool>>& computable) {
  const ProcId here = schedule.placed(r).proc;
  ReplicaRef best{kInvalidTask, 0};
  double best_cost = std::numeric_limits<double>::infinity();
  for (CopyId c = 0; c < schedule.copies(); ++c) {
    const ReplicaRef cand{pred, c};
    if (!computable[pred][c]) continue;
    if (schedule.has_supplier(r, cand)) continue;
    const ProcId from = schedule.placed(cand).proc;
    double cost;
    if (from == here) {
      cost = 0.0;
    } else {
      const EdgeId e = schedule.dag().find_edge(pred, r.task);
      const double dur = schedule.platform().comm_time(schedule.dag().edge(e).volume, from, here);
      cost = dur + std::max(schedule.cout(from), schedule.cin(here));
    }
    if (cost < best_cost) {
      best_cost = cost;
      best = cand;
    }
  }
  return best;
}

bool repair_step_legacy(Schedule& schedule, const std::vector<bool>& failed,
                        RepairStats& stats) {
  const Dag& dag = schedule.dag();
  const auto computable = computable_replicas(schedule, failed);

  for (TaskId t : dag.topological_order()) {
    const bool dead =
        std::none_of(computable[t].begin(), computable[t].end(), [](bool b) { return b; });
    if (!dead) continue;

    ReplicaRef target{kInvalidTask, 0};
    std::size_t best_missing = std::numeric_limits<std::size_t>::max();
    for (CopyId c = 0; c < schedule.copies(); ++c) {
      const ReplicaRef r{t, c};
      if (failed[schedule.placed(r).proc]) continue;
      std::size_t missing = 0;
      for (TaskId pred : dag.predecessors(t)) {
        bool fed = false;
        for (ReplicaRef sup : schedule.suppliers(r, pred)) {
          if (computable[pred][sup.copy]) {
            fed = true;
            break;
          }
        }
        if (!fed) ++missing;
      }
      if (missing < best_missing) {
        best_missing = missing;
        target = r;
      }
    }
    if (target.task == kInvalidTask) return false;

    for (TaskId pred : dag.predecessors(t)) {
      bool fed = false;
      for (ReplicaRef sup : schedule.suppliers(target, pred)) {
        if (computable[pred][sup.copy]) {
          fed = true;
          break;
        }
      }
      if (fed) continue;
      const ReplicaRef sup = pick_repair_supplier_legacy(schedule, target, pred, computable);
      if (sup.task == kInvalidTask) return false;
      const EdgeId e = dag.find_edge(pred, t);
      CommRecord comm;
      comm.edge = e;
      comm.src = sup;
      comm.dst = target;
      comm.start = comm.finish = schedule.placed(sup).finish;
      comm.repair = true;
      schedule.add_comm(comm);
      ++stats.added_comms;
    }
    return true;
  }
  return true;  // nothing dead: the schedule already survives this set
}

// Channel-capacity bound on repair iterations: each productive step adds at
// least one of the at most (eps+1)^2 * e distinct channels.
std::uint32_t max_repair_rounds(const Schedule& schedule) {
  return static_cast<std::uint32_t>(schedule.copies() * schedule.copies() *
                                        schedule.dag().num_edges() +
                                    16);
}

void record_period_excess(const Schedule& schedule, RepairStats& stats) {
  if (!stats.success || !std::isfinite(schedule.period())) return;
  for (ProcId u = 0; u < schedule.platform().num_procs(); ++u) {
    if (schedule.cin(u) > schedule.period() || schedule.cout(u) > schedule.period()) {
      stats.period_exceeded = true;
      break;
    }
  }
}

}  // namespace

RepairStats repair_fault_tolerance(Schedule& schedule, std::uint32_t max_failures) {
  SS_REQUIRE(max_failures <= schedule.eps(),
             "cannot repair for more failures than the replication degree");
  RepairStats stats;
  const std::uint32_t max_rounds = max_repair_rounds(schedule);

  if (schedule.copies() > 64) {
    // Legacy fallback beyond the oracle's mask width.
    std::vector<bool> failed(schedule.platform().num_procs(), false);
    for (stats.rounds = 0; stats.rounds < max_rounds; ++stats.rounds) {
      const FtCheckResult check = check_fault_tolerance(schedule, max_failures);
      if (check.valid) {
        stats.success = true;
        break;
      }
      std::fill(failed.begin(), failed.end(), false);
      for (ProcId p : check.counterexample) failed[p] = true;
      const bool repaired = repair_step_legacy(schedule, failed, stats);
      SS_CHECK(repaired,
               "failure set of size <= eps is beyond repair although replicas sit on "
               "distinct processors");
    }
    record_period_excess(schedule, stats);
    return stats;
  }

  SurvivalOracle oracle(schedule);
  ProcSet failed(schedule.platform().num_procs());
  std::vector<std::uint64_t> alive;
  for (stats.rounds = 0; stats.rounds < max_rounds; ++stats.rounds) {
    const FtCheckResult check = check_with_oracle(oracle, failed, max_failures);
    if (check.valid) {
      stats.success = true;
      break;
    }
    failed.assign(check.counterexample);
    const bool repaired = repair_step_patched(schedule, oracle, failed, alive, stats);
    SS_CHECK(repaired,
             "failure set of size <= eps is beyond repair although replicas sit on "
             "distinct processors");
  }

  record_period_excess(schedule, stats);
  return stats;
}

// ---------------------------------------------------------------------------
// Probabilistic reliability.

namespace {

// A failure set observed to kill the schedule, with its exact probability.
struct KillingSet {
  std::vector<ProcId> procs;
  double prob = 0.0;
};

constexpr std::size_t kMaxKillingSets = 64;

// Distribution of the number of failed processors (Poisson binomial),
// dist[j] = P(exactly j failures). O(m^2), exact.
std::vector<double> failure_count_distribution(const std::vector<double>& p) {
  std::vector<double> dist(p.size() + 1, 0.0);
  dist[0] = 1.0;
  for (std::size_t u = 0; u < p.size(); ++u) {
    for (std::size_t j = u + 1; j > 0; --j) {
      dist[j] = dist[j] * (1.0 - p[u]) + dist[j - 1] * p[u];
    }
    dist[0] *= 1.0 - p[u];
  }
  return dist;
}

double binomial_count(std::size_t m, std::size_t k) {
  double c = 1.0;
  for (std::size_t i = 0; i < k; ++i) {
    c *= static_cast<double>(m - i) / static_cast<double>(i + 1);
  }
  return c;
}

void record_killing_set(std::vector<KillingSet>* kills, ReliabilityEstimate& est,
                        const std::vector<ProcId>& set, double prob) {
  if (prob > est.worst_failure_prob) {
    est.worst_failure_prob = prob;
    est.worst_failure = set;
  }
  if (kills == nullptr || kills->size() >= kMaxKillingSets) return;
  for (const KillingSet& k : *kills) {
    if (k.procs == set) return;
  }
  kills->push_back(KillingSet{set, prob});
}

// Per-processor failure weights shared by both kernels: base = prod (1-p_u)
// and odds_u = p_u / (1-p_u), so a set's probability is base * prod odds.
// Also the exact-enumeration truncation point k_max (smallest size whose
// Poisson-binomial tail mass is within tolerance) and the resulting
// enumeration size. Identical arithmetic for both kernels keeps the
// exact-mode sums bit-identical.
struct FailureWeights {
  std::vector<double> p;
  std::vector<double> odds;
  double base = 1.0;
  std::size_t k_max = 0;
  double total_sets = 0.0;
};

FailureWeights failure_weights(const Schedule& schedule, const ReliabilityOptions& options) {
  const std::size_t m = schedule.platform().num_procs();
  FailureWeights fw;
  fw.p.resize(m);
  for (ProcId u = 0; u < m; ++u) fw.p[u] = schedule.platform().failure_prob(u);

  fw.odds.resize(m);
  for (std::size_t u = 0; u < m; ++u) {
    fw.base *= 1.0 - fw.p[u];
    fw.odds[u] = fw.p[u] / (1.0 - fw.p[u]);  // p_u < 1 by Platform
  }

  const std::vector<double> dist = failure_count_distribution(fw.p);
  fw.k_max = m;
  double cumulative = 0.0;
  for (std::size_t k = 0; k <= m; ++k) {
    cumulative += dist[k];
    if (1.0 - cumulative <= options.tail_tolerance) {
      fw.k_max = k;
      break;
    }
  }
  for (std::size_t k = 0; k <= fw.k_max; ++k) fw.total_sets += binomial_count(m, k);
  return fw;
}

// The pre-oracle estimator, kept verbatim as the measured baseline
// (options.kernel == kLegacy): per-set vector<bool> + survives_failures.
ReliabilityEstimate estimate_reliability_legacy(const Schedule& schedule,
                                                const ReliabilityOptions& options,
                                                std::vector<KillingSet>* kills) {
  const std::size_t m = schedule.platform().num_procs();
  const FailureWeights fw = failure_weights(schedule, options);
  ReliabilityEstimate est;
  est.k_max = fw.k_max;

  if (fw.total_sets <= static_cast<double>(options.max_sets)) {
    // Exact truncated enumeration, sizes ascending (mass mostly up front).
    double reliable_mass = 0.0;
    for (std::size_t k = 0; k <= fw.k_max; ++k) {
      est.sets_checked += for_each_failure_set_legacy(
          m, static_cast<std::uint32_t>(k),
          [&](const std::vector<bool>& failed, const std::vector<ProcId>& set) {
            double w = fw.base;
            for (ProcId u : set) w *= fw.odds[u];
            if (w <= 0.0) return true;  // contains a never-failing processor
            if (survives_failures(schedule, failed)) {
              reliable_mass += w;
            } else {
              record_killing_set(kills, est, set, w);
            }
            return true;
          });
    }
    est.reliability = reliable_mass;
    est.exact = true;
    return est;
  }

  // Importance-sampled Monte Carlo: propose failures with inflated
  // probabilities q_u so killing sets are actually drawn, reweight by the
  // true/proposal likelihood ratio. Unbiased for the failure mass.
  Rng rng(options.seed);
  std::vector<double> q(m);
  for (std::size_t u = 0; u < m; ++u) {
    q[u] = fw.p[u] == 0.0 ? 0.0 : std::max(fw.p[u], options.mc_proposal_floor);
  }
  std::vector<bool> failed(m, false);
  std::vector<ProcId> set;
  double failure_mass = 0.0;
  for (std::uint64_t i = 0; i < options.mc_samples; ++i) {
    set.clear();
    double weight = 1.0;
    for (std::size_t u = 0; u < m; ++u) {
      failed[u] = rng.bernoulli(q[u]);
      if (failed[u]) {
        weight *= fw.p[u] / q[u];
        set.push_back(static_cast<ProcId>(u));
      } else {
        weight *= (1.0 - fw.p[u]) / (1.0 - q[u]);
      }
    }
    ++est.sets_checked;
    if (!survives_failures(schedule, failed)) {
      failure_mass += weight;
      double prob = fw.base;
      for (ProcId u : set) prob *= fw.odds[u];
      record_killing_set(kills, est, set, prob);
    }
  }
  est.reliability =
      std::clamp(1.0 - failure_mass / static_cast<double>(options.mc_samples), 0.0, 1.0);
  est.exact = false;
  return est;
}

// Shared fan-out of pure survival checks over a flat array of failure-set
// word rows: fixed 1024-row chunks (independent of the worker count, so
// the work partition never influences anything observable), one scratch
// buffer per task, results as bytes so workers never share a word.
void parallel_survival_check(const SurvivalOracle& oracle, const std::uint64_t* set_words,
                             std::size_t n, std::size_t words, std::size_t workers,
                             std::vector<unsigned char>& killed) {
  killed.assign(n, 0);
  constexpr std::size_t kChunk = 1024;
  const std::size_t n_chunks = (n + kChunk - 1) / kChunk;
  parallel_for_indices(n_chunks, workers, [&](std::size_t chunk) {
    std::vector<std::uint64_t> local_scratch;
    const std::size_t end = std::min(n, (chunk + 1) * kChunk);
    for (std::size_t i = chunk * kChunk; i < end; ++i) {
      killed[i] = oracle.survives_words(set_words + i * words, local_scratch) ? 0 : 1;
    }
  });
}

// Parallel exact enumeration: materializes every failure set of the
// truncated enumeration as bitset words (in enumeration order), fans the
// survival checks out over `workers` in fixed contiguous chunks, then
// reduces the weighted mass in enumeration order. Because the weights and
// the summation order are exactly the serial kernel's (only the survival
// booleans are computed out of order — and they are pure), the returned
// reliability is bit-identical for every worker count and to the serial
// path. Memory: one word-row per set, bounded by options.max_sets.
void exact_reliability_parallel(const SurvivalOracle& oracle, const FailureWeights& fw,
                                std::size_t m, std::size_t workers,
                                ReliabilityEstimate& est, std::vector<KillingSet>* kills) {
  const std::size_t words = (m + 63) / 64;
  std::vector<std::uint64_t> set_words;
  std::vector<double> set_weight;  // parallel to the stored rows
  ProcSet failed(m);
  for (std::size_t k = 0; k <= fw.k_max; ++k) {
    est.sets_checked += for_each_failure_set(
        m, static_cast<std::uint32_t>(k), failed,
        [&](const ProcSet& f, const std::vector<ProcId>& set) {
          // Zero-weight sets (a never-failing processor) contribute
          // nothing and are skipped before the survival check by the
          // serial kernel too; they still count as enumerated above. The
          // weight (ascending-id multiply order, as serial) is stored so
          // the reduction need not re-decode and re-multiply every row.
          double w = fw.base;
          for (ProcId u : set) w *= fw.odds[u];
          if (w > 0.0) {
            set_words.insert(set_words.end(), f.words(), f.words() + words);
            set_weight.push_back(w);
          }
          return true;
        });
  }
  const std::size_t n = set_weight.size();

  std::vector<unsigned char> killed;
  parallel_survival_check(oracle, set_words.data(), n, words, workers, killed);

  // Ordered reduction: mass summed in enumeration order — the serial
  // kernel's arithmetic. Only killed rows decode their processor set.
  double reliable_mass = 0.0;
  std::vector<ProcId> set;
  for (std::size_t i = 0; i < n; ++i) {
    if (killed[i] == 0) {
      reliable_mass += set_weight[i];
      continue;
    }
    const std::uint64_t* w_row = set_words.data() + i * words;
    set.clear();
    for (std::size_t u = 0; u < m; ++u) {
      if ((w_row[u >> 6] >> (u & 63)) & 1) set.push_back(static_cast<ProcId>(u));
    }
    record_killing_set(kills, est, set, set_weight[i]);
  }
  est.reliability = reliable_mass;
  est.exact = true;
}

// Oracle-kernel estimator. Exact mode reuses the legacy enumeration order
// and summation order, swapping only the survival check — the reliability
// is bit-identical (and, above one exact_thread, fans the survival checks
// out without touching the arithmetic). Monte-Carlo mode pre-draws every
// sample from the options.seed stream exactly as the legacy sampler does
// (same draws, same weights), evaluates survival over the stored bitsets —
// fanned out over mc_threads workers when requested — and reduces in
// sample order, so the estimate is identical to the legacy kernel's for
// every thread count.
ReliabilityEstimate estimate_reliability_oracle(const Schedule& schedule,
                                                const SurvivalOracle& oracle,
                                                const ReliabilityOptions& options,
                                                std::vector<KillingSet>* kills) {
  const std::size_t m = schedule.platform().num_procs();
  const FailureWeights fw = failure_weights(schedule, options);
  ReliabilityEstimate est;
  est.k_max = fw.k_max;
  std::vector<std::uint64_t> scratch;

  if (fw.total_sets <= static_cast<double>(options.max_sets)) {
    const std::size_t exact_workers =
        options.exact_threads == 0
            ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
            : options.exact_threads;
    // Size floor: materialization + fan-out only pay off on enumerations
    // of at least a few chunks. The floor depends only on the enumeration
    // size — never on the thread count — so results stay bit-identical
    // for every exact_threads value either way.
    if (exact_workers > 1 && fw.total_sets >= 4096.0) {
      exact_reliability_parallel(oracle, fw, m, exact_workers, est, kills);
      return est;
    }
    double reliable_mass = 0.0;
    ProcSet failed(m);
    for (std::size_t k = 0; k <= fw.k_max; ++k) {
      est.sets_checked += for_each_failure_set(
          m, static_cast<std::uint32_t>(k), failed,
          [&](const ProcSet& f, const std::vector<ProcId>& set) {
            double w = fw.base;
            for (ProcId u : set) w *= fw.odds[u];
            if (w <= 0.0) return true;  // contains a never-failing processor
            if (oracle.survives(f, scratch)) {
              reliable_mass += w;
            } else {
              record_killing_set(kills, est, set, w);
            }
            return true;
          });
    }
    est.reliability = reliable_mass;
    est.exact = true;
    return est;
  }

  // Monte Carlo. Generation pass: one sequential stream, bit-identical
  // draws and weight products to the legacy sampler.
  Rng rng(options.seed);
  std::vector<double> q(m);
  for (std::size_t u = 0; u < m; ++u) {
    q[u] = fw.p[u] == 0.0 ? 0.0 : std::max(fw.p[u], options.mc_proposal_floor);
  }
  const std::size_t words = (m + 63) / 64;
  const std::size_t n = options.mc_samples;
  std::vector<std::uint64_t> sample_words(n * words, 0);
  std::vector<double> sample_weight(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t* w = sample_words.data() + i * words;
    double weight = 1.0;
    for (std::size_t u = 0; u < m; ++u) {
      if (rng.bernoulli(q[u])) {
        w[u >> 6] |= 1ULL << (u & 63);
        weight *= fw.p[u] / q[u];
      } else {
        weight *= (1.0 - fw.p[u]) / (1.0 - q[u]);
      }
    }
    sample_weight[i] = weight;
  }

  // Evaluation pass: the only stochastic-free, embarrassingly parallel
  // part (parallel_survival_check, shared with the exact fan-out).
  std::vector<unsigned char> killed;
  if (options.mc_threads == 1) {
    killed.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      killed[i] = oracle.survives_words(sample_words.data() + i * words, scratch) ? 0 : 1;
    }
  } else {
    parallel_survival_check(oracle, sample_words.data(), n, words, options.mc_threads,
                            killed);
  }

  // Reduction in sample order: same summation order and killing-set
  // recording order as the sequential legacy loop.
  double failure_mass = 0.0;
  std::vector<ProcId> set;
  for (std::size_t i = 0; i < n; ++i) {
    ++est.sets_checked;
    if (killed[i] == 0) continue;
    failure_mass += sample_weight[i];
    set.clear();
    const std::uint64_t* w = sample_words.data() + i * words;
    for (std::size_t u = 0; u < m; ++u) {
      if ((w[u >> 6] >> (u & 63)) & 1) set.push_back(static_cast<ProcId>(u));
    }
    double prob = fw.base;
    for (ProcId u : set) prob *= fw.odds[u];
    record_killing_set(kills, est, set, prob);
  }
  est.reliability =
      std::clamp(1.0 - failure_mass / static_cast<double>(options.mc_samples), 0.0, 1.0);
  est.exact = false;
  return est;
}

// Kernel dispatch; `oracle` may be null (compiled on demand for kOracle).
// Replication degrees beyond the oracle's 64-copy mask width always fall
// back to the legacy kernel.
ReliabilityEstimate estimate_reliability(const Schedule& schedule, const SurvivalOracle* oracle,
                                         const ReliabilityOptions& options,
                                         std::vector<KillingSet>* kills) {
  if (options.kernel == SurvivalKernel::kLegacy || schedule.copies() > 64) {
    return estimate_reliability_legacy(schedule, options, kills);
  }
  if (oracle != nullptr) return estimate_reliability_oracle(schedule, *oracle, options, kills);
  const SurvivalOracle local(schedule);
  return estimate_reliability_oracle(schedule, local, options, kills);
}

}  // namespace

ReliabilityEstimate schedule_reliability(const Schedule& schedule,
                                         const ReliabilityOptions& options) {
  return estimate_reliability(schedule, nullptr, options, nullptr);
}

RepairStats repair_to_reliability(Schedule& schedule, double target_reliability,
                                  const ReliabilityOptions& options,
                                  ReliabilityEstimate* achieved) {
  SS_REQUIRE(target_reliability > 0.0 && target_reliability < 1.0,
             "target reliability must lie in (0, 1)");
  RepairStats stats;
  const std::uint32_t max_rounds = max_repair_rounds(schedule);
  const std::size_t m = schedule.platform().num_procs();
  ReliabilityEstimate est;
  bool est_current = false;

  // Every estimate draws a fresh Monte-Carlo stream: re-sampling the same
  // sets after wiring exactly those sets would overfit the estimate to the
  // sample and declare success optimistically. (Exact mode ignores the
  // seed.)
  std::uint64_t estimates = 0;
  const auto fresh_options = [&options, &estimates]() {
    ReliabilityOptions o = options;
    o.seed = options.seed + 0x9e3779b97f4a7c15ULL * ++estimates;
    return o;
  };

  if (schedule.copies() > 64) {
    // Legacy fallback beyond the oracle's mask width (the estimator
    // dispatch falls back likewise). The failure buffer stays hoisted.
    std::vector<bool> failed(m, false);
    for (stats.rounds = 0; stats.rounds < max_rounds; ++stats.rounds) {
      std::vector<KillingSet> kills;
      est = estimate_reliability(schedule, nullptr, fresh_options(), &kills);
      est_current = true;
      if (est.reliability >= target_reliability) {
        stats.success = true;
        break;
      }
      const std::uint32_t before = stats.added_comms;
      for (const KillingSet& kill : kills) {
        std::fill(failed.begin(), failed.end(), false);
        for (ProcId u : kill.procs) failed[u] = true;
        for (std::uint32_t guard = 0; guard < max_rounds; ++guard) {
          if (survives_failures(schedule, failed)) break;
          if (!repair_step_legacy(schedule, failed, stats)) break;
          est_current = false;
        }
      }
      if (stats.added_comms == before) break;  // nothing repairable remains
    }
    record_period_excess(schedule, stats);
    if (achieved != nullptr) {
      *achieved =
          est_current ? est : estimate_reliability(schedule, nullptr, fresh_options(), nullptr);
    }
    return stats;
  }

  // The repair loop's survival checks always run on the oracle (patched as
  // channels are wired); only the estimates dispatch on options.kernel.
  // The failure set and computability buffers are hoisted and reused
  // across every killing set and round.
  SurvivalOracle oracle(schedule);
  ProcSet failed(m);
  std::vector<std::uint64_t> alive;

  for (stats.rounds = 0; stats.rounds < max_rounds; ++stats.rounds) {
    std::vector<KillingSet> kills;
    est = estimate_reliability(schedule, &oracle, fresh_options(), &kills);
    est_current = true;
    if (est.reliability >= target_reliability) {
      stats.success = true;
      break;
    }
    const std::uint32_t before = stats.added_comms;
    for (const KillingSet& kill : kills) {
      failed.assign(kill.procs);
      // Wire until this set survives or turns out to be beyond repair
      // (e.g. every replica of some task sits on the failed processors).
      for (std::uint32_t guard = 0; guard < max_rounds; ++guard) {
        if (oracle.survives(failed)) break;
        if (!repair_step_patched(schedule, oracle, failed, alive, stats)) break;
        est_current = false;
      }
    }
    if (stats.added_comms == before) break;  // nothing repairable remains
  }

  record_period_excess(schedule, stats);
  if (achieved != nullptr) {
    *achieved = est_current ? est
                            : estimate_reliability(schedule, &oracle, fresh_options(), nullptr);
  }
  return stats;
}

RepairStats repair_for_model(Schedule& schedule, const FaultModel& model) {
  if (model.is_count()) {
    return repair_fault_tolerance(schedule, model.eps());
  }
  ReliabilityEstimate achieved;
  RepairStats stats = repair_to_reliability(schedule, model.target_reliability(), {}, &achieved);
  stats.reliability = achieved.reliability;
  return stats;
}

}  // namespace streamsched
