// Compiled survival kernel for fault-tolerance analysis.
//
// `schedule_reliability()` and the repair passes evaluate the same question
// — "does the schedule survive failure set F?" — for up to 2^18 enumerated
// sets plus tens of thousands of Monte-Carlo samples per call. The legacy
// kernel (`survives_failures` in fault_tolerance.hpp) re-allocates a
// vector<vector<bool>> computability matrix and re-walks every CommRecord
// per set. `SurvivalOracle` compiles the schedule ONCE into flat arrays —
// per-replica processor ids, per-task placed-replica masks, and
// per-(replica, predecessor) supplier-copy masks, each ceil(copies/64)
// words wide so arbitrary replication degrees compile — after which one
// failure set costs a single allocation-free topological pass over
// bitmasks: alive[t] starts as the placed copies on alive processors and
// each predecessor slot clears the copies whose supplier mask misses
// alive[pred].
//
// The workload rarely asks about ONE failure set: exact enumeration walks
// up to 2^18 related sets, the Monte-Carlo estimator tens of thousands of
// samples, the sweep precheck one set per crash trial. `survives_batch`
// transposes the kernel into bit-sliced form — up to 64 failure sets per
// call, one machine word per (replica, lane) — and resolves all of them in
// a single topological pass: per replica, the lanes where its processor is
// alive, intersected per predecessor with the OR of its suppliers' lane
// words (the supplier-copy masks broadcast across lanes). Each lane's
// boolean equals the per-set oracle's (both are the same monotone
// fixpoint), so batch consumers keep bit-identical reductions.
//
// The oracle is a pure function of the schedule's placements and comms; it
// must be re-created (or patched via `add_comm`) when the repair pass adds
// supply channels. Its booleans are identical to the legacy kernel's —
// pinned by the randomized parity suite in tests/test_survival.cpp — which
// is what lets the exact reliability estimator keep bit-identical sums
// while only swapping the survival check.
//
// `ProcSet` is the reusable dynamic bitset of failed processors shared by
// the enumerator, the Monte-Carlo sampler, the fault-tolerance checkers
// and the repair loops; `for_each_failure_set` enumerates fixed-size
// failure sets in lexicographic order, toggling only the combination
// suffix that changes between consecutive sets instead of refilling the
// whole set O(m) per combination.
#pragma once

#include <bit>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "schedule/schedule.hpp"
#include "util/assert.hpp"

namespace streamsched {

/// Dynamic bitset over processor ids (the failure set of one survival
/// query). Word granularity so the oracle can test membership branch-free.
class ProcSet {
 public:
  ProcSet() = default;
  explicit ProcSet(std::size_t num_procs) { resize(num_procs); }

  /// Resizes to `num_procs` bits, all clear.
  void resize(std::size_t num_procs) {
    size_ = num_procs;
    words_.assign((num_procs + 63) / 64, 0);
  }

  [[nodiscard]] std::size_t size() const { return size_; }

  void clear() { std::fill(words_.begin(), words_.end(), 0); }

  void set(std::size_t i) { words_[i >> 6] |= 1ULL << (i & 63); }
  void reset(std::size_t i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }
  [[nodiscard]] bool test(std::size_t i) const {
    return ((words_[i >> 6] >> (i & 63)) & 1) != 0;
  }

  [[nodiscard]] std::size_t count() const {
    std::size_t n = 0;
    for (std::uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
    return n;
  }

  /// Clears, then sets every id in `procs` (a list of processor ids, NOT
  /// a per-processor boolean mask — a vector<bool> here would silently set
  /// bits 0/1 only, hence the assert).
  template <typename Container>
  void assign(const Container& procs) {
    static_assert(!std::is_same_v<typename Container::value_type, bool>,
                  "ProcSet::assign takes processor ids, not a boolean mask");
    clear();
    for (auto p : procs) set(static_cast<std::size_t>(p));
  }

  [[nodiscard]] const std::uint64_t* words() const { return words_.data(); }
  [[nodiscard]] std::size_t num_words() const { return words_.size(); }

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Reusable buffers for `SurvivalOracle::survives_batch`: the transposed
/// per-processor failure lanes and the per-replica alive-lane words. One
/// per worker; resized on first use, then reused allocation-free.
struct BatchScratch {
  std::vector<std::uint64_t> proc_lanes;   // [proc]: bit L = proc failed in set L
  std::vector<std::uint64_t> alive_lanes;  // [task*copies + c]: bit L = computable in set L
};

/// Lane mask selecting the first `count` of up to 64 batch lanes.
[[nodiscard]] constexpr std::uint64_t batch_lane_mask(std::size_t count) {
  return count >= 64 ? ~0ULL : (1ULL << count) - 1;
}

/// Tests replica bit `c` of one row in a multi-word replica mask array
/// (row layout: ceil(copies/64) words, as produced by
/// `SurvivalOracle::computable`).
[[nodiscard]] inline bool replica_mask_test(const std::uint64_t* row, CopyId c) {
  return ((row[c >> 6] >> (c & 63)) & 1) != 0;
}

/// A schedule compiled for fast survival queries. Immutable flat arrays +
/// a scratch buffer; `survives(failed)` is allocation-free. Thread-safe
/// when every thread brings its own scratch (the const overloads).
class SurvivalOracle {
 public:
  explicit SurvivalOracle(const Schedule& schedule);

  [[nodiscard]] std::size_t num_procs() const { return num_procs_; }
  [[nodiscard]] std::size_t num_tasks() const { return num_tasks_; }
  [[nodiscard]] CopyId copies() const { return copies_; }
  /// Words per replica-mask row: ceil(copies/64). Rows of the
  /// `computable` output (and the internal placed/supplier masks) are this
  /// wide, so replication degrees beyond 64 compile instead of falling
  /// back to the legacy kernel.
  [[nodiscard]] std::size_t mask_words() const { return mask_words_; }

  /// Incorporates a supply comm added after compilation (the repair pass
  /// patches the oracle instead of recompiling per added channel).
  void add_comm(const CommRecord& comm);

  /// True when every task keeps at least one computable replica under
  /// `failed`. Uses the member scratch buffer (not thread-safe).
  [[nodiscard]] bool survives(const ProcSet& failed) {
    SS_REQUIRE(failed.size() == num_procs_, "failure set size != processor count");
    return survives_words(failed.words(), scratch_);
  }

  /// Thread-safe variant: the caller owns the scratch buffer (resized on
  /// first use, then reused allocation-free).
  [[nodiscard]] bool survives(const ProcSet& failed, std::vector<std::uint64_t>& scratch) const {
    SS_REQUIRE(failed.size() == num_procs_, "failure set size != processor count");
    return survives_words(failed.words(), scratch);
  }

  /// Raw-word variant for batch evaluators that store many failure sets in
  /// one flat array; `failed_words` must hold ceil(num_procs/64) words.
  [[nodiscard]] bool survives_words(const std::uint64_t* failed_words,
                                    std::vector<std::uint64_t>& scratch) const;

  /// Bit-sliced batch query: resolves `count` (1..64) failure sets in ONE
  /// topological pass. `set_words` holds `count` consecutive rows of
  /// ceil(num_procs/64) words each (the ProcSet word layout). Returns a
  /// word whose bit L (L < count) is set iff set L survives; lanes beyond
  /// `count` are zero. Each lane's boolean is identical to
  /// `survives_words` on that row — batch consumers that reduce in row
  /// order therefore stay bit-identical to the per-set kernel.
  [[nodiscard]] std::uint64_t survives_batch(const std::uint64_t* set_words, std::size_t count,
                                             BatchScratch& scratch) const;

  /// Full computability masks under `failed`: row t (mask_words() words at
  /// alive[t * mask_words()]) has bit c set iff replica (t, c) is
  /// computable — the bitmask equivalent of the legacy
  /// `computable_replicas`. No early exit (dead tasks store 0).
  void computable(const ProcSet& failed, std::vector<std::uint64_t>& alive) const;

 private:
  /// Shared alive-mask propagation over the topological order for the
  /// single-word (copies <= 64) layout; returns false (only when
  /// kEarlyExit) as soon as a task has no computable replica, otherwise
  /// stores every task's mask (0 for dead tasks).
  template <bool kEarlyExit>
  bool propagate(const std::uint64_t* failed_words, std::uint64_t* alive) const;

  /// Multi-word generalization for copies > 64 (row stride mask_words_).
  template <bool kEarlyExit>
  bool propagate_wide(const std::uint64_t* failed_words, std::uint64_t* alive) const;

  std::size_t num_procs_ = 0;
  std::size_t num_tasks_ = 0;
  CopyId copies_ = 0;
  std::size_t mask_words_ = 1;            // ceil(copies/64): replica-mask row width
  std::vector<TaskId> topo_;              // task evaluation order
  std::vector<std::uint64_t> placed_mask_;  // [task * mask_words + w]: bit c = placed
  std::vector<ProcId> proc_;              // [task * copies + c]
  std::vector<std::uint32_t> pred_offset_;  // [task] -> range in pred_task_
  std::vector<TaskId> pred_task_;         // flattened predecessor lists
  std::vector<std::uint64_t> sup_mask_;   // [(pred slot * copies + c) * mask_words + w]:
                                          // bits of pred copies supplying (task, c)
  std::vector<std::uint64_t> scratch_;    // alive masks for the member-scratch path
};

/// Best achievable residual tolerance of a schedule that is already coping
/// with live failure set `failed`: the largest k <= `want` such that the
/// schedule survives `failed` ∪ G for EVERY size-k subset G of the
/// still-alive processors. Enumerated through `survives_batch` (64
/// candidate sets per topological pass) with early exit on the first
/// non-surviving batch. By failure-monotonicity this also certifies
/// count-model tolerance k on the full platform (any k-subset containing a
/// dead processor is dominated by a checked set), which is what lets
/// snapshot verification re-check degraded claims with the plain
/// `check_fault_tolerance(schedule, k)`. Returns `want` when `failed` is
/// empty and 0 when the schedule does not even survive `failed` itself —
/// callers distinguish "alive but fragile" from "dead" with a prior
/// `survives(failed)` check.
[[nodiscard]] CopyId achieved_tolerance(const SurvivalOracle& oracle, const ProcSet& failed,
                                        CopyId want, BatchScratch& scratch);

/// Calls visit(failed, subset) — or visit(failed, subset, changed), where
/// `changed` is the first subset position that differs from the previous
/// combination (0 on the first) so visitors can maintain prefix state
/// incrementally — for every size-k subset of {0..m-1} in lexicographic
/// order (identical to the legacy enumeration); stops early when visit
/// returns false. Returns the number of subsets visited. `failed` must be
/// sized to m; it is maintained incrementally — advancing to the next
/// combination toggles only the suffix of positions that changed — and is
/// left cleared when the enumeration runs to completion.
template <typename Visit>
std::uint64_t for_each_failure_set(std::size_t m, std::uint32_t k, ProcSet& failed,
                                   Visit&& visit) {
  SS_REQUIRE(failed.size() == m, "failure set size != processor count");
  SS_REQUIRE(k <= m, "cannot fail more processors than exist");
  failed.clear();
  std::vector<ProcId> subset(k);
  const auto call = [&visit](const ProcSet& f, const std::vector<ProcId>& s,
                             std::size_t changed) -> bool {
    if constexpr (std::is_invocable_v<Visit&, const ProcSet&, const std::vector<ProcId>&,
                                      std::size_t>) {
      return visit(f, s, changed);
    } else {
      return visit(f, s);
    }
  };
  std::uint64_t visited = 0;
  if (k == 0) {
    ++visited;
    call(static_cast<const ProcSet&>(failed), subset, 0);
    return visited;
  }
  for (std::uint32_t i = 0; i < k; ++i) {
    subset[i] = i;
    failed.set(i);
  }
  std::size_t changed = 0;
  for (;;) {
    ++visited;
    if (!call(static_cast<const ProcSet&>(failed), subset, changed)) return visited;
    // Rightmost position that can still advance.
    std::int64_t i = static_cast<std::int64_t>(k) - 1;
    while (i >= 0 && subset[static_cast<std::size_t>(i)] ==
                         static_cast<ProcId>(m - k + static_cast<std::size_t>(i))) {
      --i;
    }
    if (i < 0) {
      for (ProcId p : subset) failed.reset(p);
      return visited;
    }
    // Toggle only the changing suffix [i, k).
    changed = static_cast<std::size_t>(i);
    for (auto j = static_cast<std::size_t>(i); j < k; ++j) failed.reset(subset[j]);
    ++subset[static_cast<std::size_t>(i)];
    for (auto j = static_cast<std::size_t>(i) + 1; j < k; ++j) {
      subset[j] = subset[j - 1] + 1;
    }
    for (auto j = static_cast<std::size_t>(i); j < k; ++j) failed.set(subset[j]);
  }
}

}  // namespace streamsched
