#include "schedule/fault_model.hpp"

#include <algorithm>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/assert.hpp"
#include "util/cli.hpp"

namespace streamsched {

FaultModel FaultModel::count(CopyId eps) {
  FaultModel model;
  model.kind_ = FaultModelKind::kCount;
  model.eps_ = eps;
  return model;
}

FaultModel FaultModel::probabilistic(double target_reliability) {
  SS_REQUIRE(target_reliability > 0.0 && target_reliability < 1.0,
             "target reliability must lie in (0, 1)");
  FaultModel model;
  model.kind_ = FaultModelKind::kProbabilistic;
  model.target_ = target_reliability;
  return model;
}

FaultModel FaultModel::churn(double target_reliability, double amplitude,
                             std::uint32_t period, double recover) {
  SS_REQUIRE(target_reliability > 0.0 && target_reliability < 1.0,
             "target reliability must lie in (0, 1)");
  SS_REQUIRE(amplitude >= 1.0, "churn amplitude must be >= 1");
  SS_REQUIRE(period >= 2, "churn period must span at least 2 epochs");
  SS_REQUIRE(recover > 0.0 && recover <= 1.0, "churn recover must lie in (0, 1]");
  FaultModel model;
  model.kind_ = FaultModelKind::kChurn;
  model.target_ = target_reliability;
  model.amp_ = amplitude;
  model.period_steps_ = period;
  model.recover_ = recover;
  return model;
}

CopyId FaultModel::eps() const {
  SS_REQUIRE(is_count(), "eps() is only defined for count fault models");
  return eps_;
}

double FaultModel::target_reliability() const {
  SS_REQUIRE(is_probabilistic(),
             "target_reliability() is only defined for probabilistic fault models");
  return target_;
}

double FaultModel::churn_amplitude() const {
  SS_REQUIRE(is_churn(), "churn_amplitude() is only defined for churn fault models");
  return amp_;
}

std::uint32_t FaultModel::churn_period() const {
  SS_REQUIRE(is_churn(), "churn_period() is only defined for churn fault models");
  return period_steps_;
}

double FaultModel::churn_recover() const {
  SS_REQUIRE(is_churn(), "churn_recover() is only defined for churn fault models");
  return recover_;
}

double FaultModel::rate_multiplier(std::uint64_t step) const {
  SS_REQUIRE(is_churn(), "rate_multiplier() is only defined for churn fault models");
  return (step % period_steps_) < period_steps_ / 2 ? 1.0 : amp_;
}

double FaultModel::failure_prob_at(const Platform& platform, ProcId u,
                                   std::uint64_t step) const {
  return std::min(0.95, platform.failure_prob(u) * rate_multiplier(step));
}

CopyId FaultModel::derive_eps(const Platform& platform, std::size_t num_tasks) const {
  if (is_count()) return eps_;
  const std::size_t m = platform.num_procs();
  // Worst-case placement bound: a task dies only when all of its replicas'
  // processors fail, so with replicas on the ε+1 most failure-prone
  // processors the per-task failure probability is the product of the ε+1
  // largest p_u. Union bound over tasks gives the per-task budget.
  const double budget =
      (1.0 - target_) / static_cast<double>(std::max<std::size_t>(num_tasks, 1));
  std::vector<double> probs(m);
  for (ProcId u = 0; u < m; ++u) probs[u] = platform.failure_prob(u);
  std::sort(probs.begin(), probs.end(), std::greater<>());
  double product = 1.0;
  for (std::size_t i = 0; i < m; ++i) {
    product *= probs[i];
    if (product <= budget) return static_cast<CopyId>(i);
  }
  return static_cast<CopyId>(m - 1);  // best effort: full replication
}

std::vector<ProcId> FaultModel::sample_failures(const Platform& platform,
                                                std::uint32_t count_crashes, Rng& rng) const {
  const std::size_t m = platform.num_procs();
  if (is_count()) {
    SS_REQUIRE(count_crashes <= m, "cannot crash more processors than exist");
    const auto set = rng.sample_without_replacement(static_cast<std::uint32_t>(m), count_crashes);
    return {set.begin(), set.end()};
  }
  std::vector<ProcId> failed;
  for (ProcId u = 0; u < m; ++u) {
    if (rng.bernoulli(platform.failure_prob(u))) failed.push_back(u);
  }
  return failed;
}

namespace {

// Shortest decimal form that parses back to exactly `r`: "0.999" stays
// "0.999", while R = 0.9999999 keeps all its digits instead of collapsing
// to "1" (which would break the parse round-trip and merge the series
// keys of distinct targets).
std::string shortest_round_trip(double r) {
  for (int precision = 6; precision <= 17; ++precision) {
    std::ostringstream os;
    os << std::setprecision(precision) << r;
    if (std::stod(os.str()) == r) return os.str();
  }
  std::ostringstream os;
  os << std::setprecision(17) << r;
  return os.str();
}

}  // namespace

std::string FaultModel::to_string() const {
  std::ostringstream os;
  if (is_count()) {
    os << "count:eps=" << eps_;
  } else if (is_churn()) {
    // Always emit every parameter so distinct churn shapes never share a
    // canonical spec (the spec feeds cache-key fingerprints).
    os << "churn:R=" << shortest_round_trip(target_) << ",amp=" << shortest_round_trip(amp_)
       << ",period=" << period_steps_ << ",recover=" << shortest_round_trip(recover_);
  } else {
    os << "prob:R=" << shortest_round_trip(target_);
  }
  return os.str();
}

namespace {

[[noreturn]] void bad_spec(const std::string& spec) {
  throw std::invalid_argument("bad fault-model spec '" + spec +
                              "'; expected count:eps=<n>, prob:R=<r>, or "
                              "churn:R=<r>[,amp=<a>][,period=<n>][,recover=<r>]");
}

// "eps=2" with key "eps" -> "2"; a bare "2" passes through; any other key
// (e.g. "R=2" on a count model) is an error.
std::string expect_value(const std::string& spec, const std::string& part,
                         const std::string& key) {
  const auto eq = part.find('=');
  if (eq == std::string::npos) return part;
  if (part.substr(0, eq) != key) bad_spec(spec);
  return part.substr(eq + 1);
}

}  // namespace

FaultModel FaultModel::parse(const std::string& spec) {
  const auto colon = spec.find(':');
  if (colon == std::string::npos || colon + 1 >= spec.size()) bad_spec(spec);
  const std::string head = spec.substr(0, colon);
  const std::string rest = spec.substr(colon + 1);
  std::size_t consumed = 0;
  try {
    if (head == "count") {
      const std::string value = expect_value(spec, rest, "eps");
      const unsigned long long eps = std::stoull(value, &consumed);
      if (consumed != value.size() || value.front() == '-' ||
          eps > std::numeric_limits<CopyId>::max()) {
        bad_spec(spec);
      }
      return FaultModel::count(static_cast<CopyId>(eps));
    }
    if (head == "prob" || head == "probabilistic") {
      const std::string value = expect_value(spec, rest, "R");
      const double target = std::stod(value, &consumed);
      if (consumed != value.size()) bad_spec(spec);
      return FaultModel::probabilistic(target);
    }
    if (head == "churn") {
      // Comma-separated key=value list; R is mandatory, the shape
      // parameters default to a mild storm (amp=4, period=16, recover=0.5).
      bool have_target = false;
      double target = 0.0;
      double amp = 4.0;
      unsigned long long period = 16;
      double recover = 0.5;
      std::size_t pos = 0;
      while (pos <= rest.size()) {
        const auto comma = rest.find(',', pos);
        const std::string part =
            rest.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
        const auto eq = part.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 >= part.size()) bad_spec(spec);
        const std::string key = part.substr(0, eq);
        const std::string value = part.substr(eq + 1);
        if (key == "R") {
          target = std::stod(value, &consumed);
          have_target = true;
        } else if (key == "amp") {
          amp = std::stod(value, &consumed);
        } else if (key == "period") {
          period = std::stoull(value, &consumed);
          if (value.front() == '-' || period > std::numeric_limits<std::uint32_t>::max()) {
            bad_spec(spec);
          }
        } else if (key == "recover") {
          recover = std::stod(value, &consumed);
        } else {
          bad_spec(spec);
        }
        if (consumed != value.size()) bad_spec(spec);
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
      if (!have_target) bad_spec(spec);
      return FaultModel::churn(target, amp, static_cast<std::uint32_t>(period), recover);
    }
  } catch (const std::invalid_argument&) {
    bad_spec(spec);
  } catch (const std::out_of_range&) {
    bad_spec(spec);
  }
  bad_spec(spec);
}

std::vector<FaultModel> fault_models_from_cli(Cli& cli, const std::string& fallback_csv) {
  const std::vector<std::string> specs =
      cli.get_list("fault-model", fallback_csv, "STREAMSCHED_FAULT_MODEL");
  std::vector<FaultModel> models;
  models.reserve(specs.size());
  for (const std::string& spec : specs) models.push_back(FaultModel::parse(spec));
  return models;
}

}  // namespace streamsched
