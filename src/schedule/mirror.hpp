// Conversion of a schedule built on the *reversed* DAG back into a
// schedule of the original DAG.
//
// R-LTF (paper §4.2) performs a bottom-up topological traversal; we
// implement it as a forward pass over dag.reversed() and mirror the result:
// replica placements keep their processors, the timeline is reflected
// (t -> makespan - t), every communication flips direction (edge ids are
// shared between a DAG and its reversal by construction), and pipeline
// stages are recomputed with the forward minimal rule — the reversed
// labeling is a valid stage decomposition, so the recomputed count can
// only match or improve it.
#pragma once

#include "schedule/schedule.hpp"

namespace streamsched {

/// `reversed` must be a complete schedule over `original.reversed()`.
/// Returns the equivalent schedule over `original`.
[[nodiscard]] Schedule mirror_schedule(const Schedule& reversed, const Dag& original);

}  // namespace streamsched
