#include "schedule/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "util/assert.hpp"

namespace streamsched {

std::vector<std::vector<std::uint32_t>> stages_from_structure(const Schedule& schedule) {
  const Dag& dag = schedule.dag();
  std::vector<std::vector<std::uint32_t>> stage(
      dag.num_tasks(), std::vector<std::uint32_t>(schedule.copies(), 0));
  for (TaskId t : dag.topological_order()) {
    for (CopyId c = 0; c < schedule.copies(); ++c) {
      const ReplicaRef r{t, c};
      if (!schedule.is_placed(r)) continue;
      std::uint32_t s = 1;
      const ProcId here = schedule.placed(r).proc;
      for (std::uint32_t idx : schedule.in_comms(r)) {
        const CommRecord& comm = schedule.comms()[idx];
        // Repair channels are failure-case backups, not part of the
        // steady-state data path; they do not define stages.
        if (comm.repair) continue;
        const std::uint32_t sup_stage = stage[comm.src.task][comm.src.copy];
        SS_CHECK(sup_stage >= 1, "supplier replica has no stage (not topologically placed?)");
        const std::uint32_t eta = (schedule.placed(comm.src).proc == here) ? 0 : 1;
        s = std::max(s, sup_stage + eta);
      }
      stage[t][c] = s;
    }
  }
  return stage;
}

std::uint32_t recompute_stages(Schedule& schedule) {
  const auto derived = stages_from_structure(schedule);
  std::uint32_t max_stage = 0;
  for (TaskId t = 0; t < schedule.dag().num_tasks(); ++t) {
    for (CopyId c = 0; c < schedule.copies(); ++c) {
      const ReplicaRef r{t, c};
      if (!schedule.is_placed(r)) continue;
      schedule.set_stage(r, derived[t][c]);
      max_stage = std::max(max_stage, derived[t][c]);
    }
  }
  return max_stage;
}

std::uint32_t num_stages(const Schedule& schedule) {
  std::uint32_t max_stage = 0;
  for (TaskId t = 0; t < schedule.dag().num_tasks(); ++t) {
    for (CopyId c = 0; c < schedule.copies(); ++c) {
      const ReplicaRef r{t, c};
      if (schedule.is_placed(r)) max_stage = std::max(max_stage, schedule.placed(r).stage);
    }
  }
  return max_stage;
}

double latency_upper_bound(const Schedule& schedule) {
  const std::uint32_t s = num_stages(schedule);
  if (s == 0) return 0.0;
  return (2.0 * s - 1.0) * schedule.period();
}

double max_cycle_time(const Schedule& schedule) {
  double worst = 0.0;
  for (ProcId u = 0; u < schedule.platform().num_procs(); ++u) {
    worst = std::max({worst, schedule.sigma(u), schedule.cin(u), schedule.cout(u)});
  }
  return worst;
}

double throughput_bound(const Schedule& schedule) {
  const double cycle = max_cycle_time(schedule);
  if (cycle <= 0.0) return std::numeric_limits<double>::infinity();
  return 1.0 / cycle;
}

std::size_t num_remote_comms(const Schedule& schedule) {
  std::size_t count = 0;
  for (const CommRecord& comm : schedule.comms()) {
    if (schedule.placed(comm.src).proc != schedule.placed(comm.dst).proc) ++count;
  }
  return count;
}

std::size_t num_total_comms(const Schedule& schedule) { return schedule.comms().size(); }

std::size_t num_repair_comms(const Schedule& schedule) {
  std::size_t count = 0;
  for (const CommRecord& comm : schedule.comms()) {
    if (comm.repair) ++count;
  }
  return count;
}

double proc_utilization(const Schedule& schedule, ProcId u) {
  const double period = schedule.period();
  if (!std::isfinite(period) || period <= 0.0) return 0.0;
  return schedule.sigma(u) / period;
}

std::size_t num_procs_used(const Schedule& schedule) {
  std::set<ProcId> used;
  for (TaskId t = 0; t < schedule.dag().num_tasks(); ++t) {
    for (CopyId c = 0; c < schedule.copies(); ++c) {
      const ReplicaRef r{t, c};
      if (schedule.is_placed(r)) used.insert(schedule.placed(r).proc);
    }
  }
  return used.size();
}

}  // namespace streamsched
