// Human-readable renderings of schedules: stage-structured mapping
// listings, per-processor timelines and a DOT export of the mapped graph
// (replicas clustered by processor). Used by the examples and handy when
// debugging scheduler changes.
#pragma once

#include <string>

#include "schedule/schedule.hpp"

namespace streamsched {

/// One line per pipeline stage listing "task#copy@Pn" placements.
[[nodiscard]] std::string format_mapping(const Schedule& schedule);

/// Per-processor view: compute load, port loads, hosted replicas with the
/// builder timeline.
[[nodiscard]] std::string format_processor_timeline(const Schedule& schedule);

/// DOT digraph of the replicated schedule: one node per replica labelled
/// task#copy / Pproc / stage, solid edges for primary supply channels and
/// dashed edges for repair backups.
[[nodiscard]] std::string to_dot_schedule(const Schedule& schedule,
                                          const std::string& graph_name = "schedule");

/// Compact one-line summary: stages, latency bound, comms, processors.
[[nodiscard]] std::string summarize(const Schedule& schedule);

}  // namespace streamsched
