// Shard plumbing for distributed sweeps (`--shard i/N`).
//
// A sharded bench run measures only the instances whose flat grid index is
// ≡ i (mod N) and serializes its raw InstanceRecords — not aggregates — to
// a records CSV. `merge_sweep_records` glues the N shard files back into
// one complete record set, which `aggregate_sweep_records` then reduces in
// grid order. Because every shard derives the full per-instance seed table
// and doubles round-trip the CSV exactly (max_digits10 = 17 significant
// digits), the merged aggregation is byte-identical to the unsharded run's
// output (pinned by tests/test_shard.cpp).
//
// File format (one file per shard):
//   #streamsched-sweep-records v1
//   #shard <i>/<N>
//   #seed <master seed>
//   #crashes <c>
//   #graphs_per_point <g>
//   #granularities <g1> <g2> ...
//   #series <name>\t<label>\t<name>\t<label>...     (tab-separated: names
//                                                    and labels may contain
//                                                    commas)
//   <record rows: index,usable,granularity,period,ff_period,ff_sim0, then
//    per series scheduled,ub,sim0,simc,stages,comms,repair_added,starved,
//    period_factor,reliability>
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "exp/sweep.hpp"

namespace streamsched {

/// Parses "i/N" (0 <= i < N, N >= 1). Throws std::invalid_argument on
/// anything else, naming the offending spec.
[[nodiscard]] ShardSpec parse_shard(const std::string& spec);

/// Canonical spec string "i/N".
[[nodiscard]] std::string shard_to_string(const ShardSpec& shard);

/// Serializes the measured records of one (possibly sharded) sweep.
void write_sweep_records(std::ostream& out, const SweepRecords& records);
void write_sweep_records_file(const std::string& path, const SweepRecords& records);

/// Parses a records file back. Throws std::invalid_argument on malformed
/// input (wrong magic, inconsistent column counts, out-of-range indices).
[[nodiscard]] SweepRecords read_sweep_records(std::istream& in);
[[nodiscard]] SweepRecords read_sweep_records_file(const std::string& path);

/// Merges shard record sets into one. Every part must agree on the header
/// (seed, crashes, grid, series) and declare the same shard count; each
/// grid index must be present in exactly one part (disjoint and complete —
/// partial merges throw, they could silently aggregate a subset). The
/// result is unsharded (shard 0/1).
[[nodiscard]] SweepRecords merge_sweep_records(std::vector<SweepRecords> parts);

}  // namespace streamsched
