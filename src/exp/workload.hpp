// Random experiment workloads (paper §5).
//
// The paper generates random graphs "consistent with the literature":
// v ~ U[50, 150] tasks, message volumes U[50, 150], link unit delays
// U[0.5, 1], m = 20 processors of speed 1, granularity swept from 0.2 to
// 2.0 by scaling task works, ε in {1, 3}.
//
// Period calibration (documented substitution, see DESIGN.md §3.5): the
// paper's absolute throughput 1/(10(ε+1)) is dimensionally inconsistent
// with its weight ranges, so each instance gets
//     Δ = κ · (ε+1) · max(W̄/m, μ · C̄/m)
// where W̄ is the total average work, C̄ the total average communication
// time, κ the headroom factor (default 2) and μ the communication share
// (default 0.5). Reported latencies are normalized to the paper's nominal
// period: L_norm = L · 10(ε+1)/Δ, which puts the stage bound
// (2S−1)·10(ε+1) exactly on the paper's y-axis scale.
#pragma once

#include "graph/dag.hpp"
#include "platform/platform.hpp"
#include "util/rng.hpp"

namespace streamsched {

struct WorkloadParams {
  std::size_t v_min = 50;
  std::size_t v_max = 150;
  double volume_lo = 50.0;
  double volume_hi = 150.0;
  double delay_lo = 0.5;
  double delay_hi = 1.0;
  std::size_t num_procs = 20;
  /// Layers of the layered generator as a fraction of v (0 => sqrt(v)).
  double layer_fraction = 0.15;
  double edge_prob = 0.25;
  /// Period calibration knobs. μ = 1 budgets the full communication load:
  /// at low granularity the port budget, not compute, is the binding
  /// resource, and smaller shares starve the schedulers.
  double headroom = 2.0;    // κ
  double comm_share = 1.0;  // μ
  /// Per-processor failure probabilities U[fail_prob_lo, fail_prob_hi] for
  /// probabilistic fault models. The default 0 leaves the platform fully
  /// reliable (and draws nothing from the generator stream, so count-ε
  /// workloads are bit-identical to the pre-fault-model ones).
  double fail_prob_lo = 0.0;
  double fail_prob_hi = 0.0;
};

struct Instance {
  Dag dag;
  Platform platform;
  double period = 0.0;       ///< calibrated Δ for the requested ε
  double granularity = 0.0;  ///< achieved g(G, P)
  std::size_t num_tasks = 0;
  std::size_t num_edges = 0;
};

/// Generates one experiment instance at the target granularity for the
/// given replication degree. Deterministic in (params, granularity, eps,
/// rng state).
[[nodiscard]] Instance make_instance(const WorkloadParams& params, double granularity,
                                     CopyId eps, Rng& rng);

/// The calibrated period for an existing workload (exposed for tests).
[[nodiscard]] double calibrate_period(const Dag& dag, const Platform& platform, CopyId eps,
                                      double headroom, double comm_share);

/// Normalization factor to the paper's reporting scale: 10(ε+1)/Δ.
[[nodiscard]] double normalization_factor(double period, CopyId eps);

}  // namespace streamsched
