#include "exp/shard.hpp"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

namespace streamsched {

namespace {

constexpr const char* kMagic = "#streamsched-sweep-records v1";

[[noreturn]] void bad(const std::string& what) {
  throw std::invalid_argument("sweep records: " + what);
}

// 17 significant digits: the shortest precision at which every double
// round-trips exactly, which is what makes shard-merge output
// byte-identical to the unsharded run.
std::string fmt(double v) {
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
  return os.str();
}

double parse_double(const std::string& s) {
  std::size_t pos = 0;
  const double v = std::stod(s, &pos);
  if (pos != s.size()) bad("malformed number '" + s + "'");
  return v;
}

std::uint64_t parse_u64(const std::string& s) {
  std::size_t pos = 0;
  const unsigned long long v = std::stoull(s, &pos);
  if (pos != s.size()) bad("malformed integer '" + s + "'");
  return v;
}

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> items;
  std::string item;
  std::istringstream is(line);
  while (std::getline(is, item, sep)) items.push_back(item);
  if (!line.empty() && line.back() == sep) items.emplace_back();
  return items;
}

/// The directive payload when `line` is "#<name> <payload>", else nullopt.
bool directive(const std::string& line, const std::string& name, std::string& payload) {
  const std::string prefix = "#" + name + " ";
  if (line.rfind(prefix, 0) != 0) return false;
  payload = line.substr(prefix.size());
  return true;
}

}  // namespace

ShardSpec parse_shard(const std::string& spec) {
  const auto slash = spec.find('/');
  try {
    if (slash == std::string::npos) throw std::invalid_argument("no '/'");
    ShardSpec shard;
    shard.index = static_cast<std::size_t>(parse_u64(spec.substr(0, slash)));
    shard.count = static_cast<std::size_t>(parse_u64(spec.substr(slash + 1)));
    if (shard.count < 1 || shard.index >= shard.count) throw std::invalid_argument("range");
    return shard;
  } catch (const std::exception&) {
    throw std::invalid_argument("invalid shard spec '" + spec +
                                "' (expected i/N with 0 <= i < N)");
  }
}

std::string shard_to_string(const ShardSpec& shard) {
  return std::to_string(shard.index) + "/" + std::to_string(shard.count);
}

void write_sweep_records(std::ostream& out, const SweepRecords& records) {
  out << kMagic << '\n';
  out << "#shard " << shard_to_string(records.shard) << '\n';
  out << "#seed " << records.seed << '\n';
  out << "#crashes " << records.crashes << '\n';
  out << "#graphs_per_point " << records.graphs_per_point << '\n';
  out << "#granularities";
  for (double g : records.granularities) out << ' ' << fmt(g);
  out << '\n';
  out << "#series";
  for (const auto& [name, label] : records.series) out << '\t' << name << '\t' << label;
  out << '\n';
  for (std::size_t i = 0; i < records.records.size(); ++i) {
    if (records.present[i] == 0) continue;
    const InstanceRecord& rec = records.records[i];
    out << i << ',' << (rec.usable ? 1 : 0) << ',' << fmt(rec.granularity) << ','
        << fmt(rec.period) << ',' << fmt(rec.ff_period) << ',' << fmt(rec.ff_sim0);
    for (const AlgoOutcome& o : rec.outcomes) {
      out << ',' << (o.scheduled ? 1 : 0) << ',' << fmt(o.ub) << ',' << fmt(o.sim0) << ','
          << fmt(o.simc) << ',' << o.stages << ',' << o.remote_comms << ',' << o.repair_added
          << ',' << (o.starved ? 1 : 0) << ',' << fmt(o.period_factor) << ','
          << fmt(o.reliability);
    }
    out << '\n';
  }
}

void write_sweep_records_file(const std::string& path, const SweepRecords& records) {
  std::ofstream out(path);
  if (!out) bad("cannot open '" + path + "' for writing");
  write_sweep_records(out, records);
  if (!out) bad("write to '" + path + "' failed");
}

SweepRecords read_sweep_records(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kMagic) bad("missing magic header");

  SweepRecords records;
  bool have_series = false;
  constexpr std::size_t kOutcomeFields = 10;

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::string payload;
    if (directive(line, "shard", payload)) {
      records.shard = parse_shard(payload);
      continue;
    }
    if (directive(line, "seed", payload)) {
      records.seed = parse_u64(payload);
      continue;
    }
    if (directive(line, "crashes", payload)) {
      records.crashes = static_cast<std::uint32_t>(parse_u64(payload));
      continue;
    }
    if (directive(line, "graphs_per_point", payload)) {
      records.graphs_per_point = static_cast<std::size_t>(parse_u64(payload));
      continue;
    }
    if (directive(line, "granularities", payload)) {
      for (const std::string& item : split(payload, ' ')) {
        if (!item.empty()) records.granularities.push_back(parse_double(item));
      }
      continue;
    }
    if (line.rfind("#series", 0) == 0) {
      const std::vector<std::string> items = split(line.substr(7), '\t');
      // Leading empty item from the tab right after "#series".
      for (std::size_t i = 1; i + 1 < items.size(); i += 2) {
        records.series.emplace_back(items[i], items[i + 1]);
      }
      have_series = true;
      continue;
    }
    if (line[0] == '#') bad("unknown directive: " + line);

    // Record row. The header must be complete by now.
    if (!have_series || records.graphs_per_point == 0 || records.granularities.empty()) {
      bad("record row before a complete header");
    }
    if (records.records.empty()) {
      const std::size_t total = records.granularities.size() * records.graphs_per_point;
      records.records.resize(total);
      records.present.assign(total, 0);
    }
    const std::vector<std::string> f = split(line, ',');
    if (f.size() != 6 + records.series.size() * kOutcomeFields) {
      bad("record row has " + std::to_string(f.size()) + " fields, expected " +
          std::to_string(6 + records.series.size() * kOutcomeFields));
    }
    const std::size_t index = static_cast<std::size_t>(parse_u64(f[0]));
    if (index >= records.records.size()) bad("record index out of range");
    if (records.present[index] != 0) bad("duplicate record index " + f[0]);
    records.present[index] = 1;
    InstanceRecord& rec = records.records[index];
    rec.usable = parse_u64(f[1]) != 0;
    rec.granularity = parse_double(f[2]);
    rec.period = parse_double(f[3]);
    rec.ff_period = parse_double(f[4]);
    rec.ff_sim0 = parse_double(f[5]);
    rec.outcomes.resize(records.series.size());
    rec.algos.clear();
    for (const auto& [name, label] : records.series) rec.algos.push_back(name);
    for (std::size_t a = 0; a < records.series.size(); ++a) {
      const std::size_t base = 6 + a * kOutcomeFields;
      AlgoOutcome& o = rec.outcomes[a];
      o.scheduled = parse_u64(f[base]) != 0;
      o.ub = parse_double(f[base + 1]);
      o.sim0 = parse_double(f[base + 2]);
      o.simc = parse_double(f[base + 3]);
      o.stages = static_cast<std::uint32_t>(parse_u64(f[base + 4]));
      o.remote_comms = static_cast<std::size_t>(parse_u64(f[base + 5]));
      o.repair_added = static_cast<std::uint32_t>(parse_u64(f[base + 6]));
      o.starved = parse_u64(f[base + 7]) != 0;
      o.period_factor = parse_double(f[base + 8]);
      o.reliability = parse_double(f[base + 9]);
    }
  }
  if (!have_series) bad("missing #series header");
  if (records.records.empty()) {
    const std::size_t total = records.granularities.size() * records.graphs_per_point;
    records.records.resize(total);
    records.present.assign(total, 0);
  }
  return records;
}

SweepRecords read_sweep_records_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) bad("cannot open '" + path + "'");
  return read_sweep_records(in);
}

SweepRecords merge_sweep_records(std::vector<SweepRecords> parts) {
  if (parts.empty()) bad("nothing to merge");
  SweepRecords merged = std::move(parts.front());
  const std::size_t declared = merged.shard.count;
  for (std::size_t p = 1; p < parts.size(); ++p) {
    SweepRecords& part = parts[p];
    if (part.seed != merged.seed) bad("seed mismatch between shards");
    if (part.crashes != merged.crashes) bad("crash-count mismatch between shards");
    if (part.graphs_per_point != merged.graphs_per_point) {
      bad("graphs_per_point mismatch between shards");
    }
    if (part.granularities != merged.granularities) {
      bad("granularity grid mismatch between shards");
    }
    if (part.series != merged.series) bad("series grid mismatch between shards");
    if (part.shard.count != declared) bad("shard count mismatch between shards");
    for (std::size_t i = 0; i < part.records.size(); ++i) {
      if (part.present[i] == 0) continue;
      if (merged.present[i] != 0) {
        bad("record " + std::to_string(i) + " present in more than one shard");
      }
      merged.present[i] = 1;
      merged.records[i] = std::move(part.records[i]);
    }
  }
  if (!merged.complete()) {
    std::size_t missing = 0;
    for (char pr : merged.present) missing += pr == 0 ? 1 : 0;
    bad(std::to_string(missing) + " records missing after merge (expected " +
        std::to_string(declared) + " shards, got " + std::to_string(parts.size()) + ")");
  }
  merged.shard = ShardSpec{};
  return merged;
}

}  // namespace streamsched
