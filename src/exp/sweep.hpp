// The paper's granularity sweep (§5): for each granularity point, generate
// random instances, schedule them with the fault-free reference, LTF and
// R-LTF, measure bound and simulated latencies (with and without crashes)
// and aggregate the series of Figures 3 and 4.
#pragma once

#include <cstdint>
#include <vector>

#include "exp/workload.hpp"

namespace streamsched {

struct SweepConfig {
  WorkloadParams workload;
  CopyId eps = 1;
  /// Number of crashed processors in the "with crash" series (c <= eps).
  std::uint32_t crashes = 1;
  std::size_t graphs_per_point = 60;
  /// Random failure sets sampled per instance for the crash series.
  std::size_t crash_trials = 5;
  double g_min = 0.2;
  double g_max = 2.0;
  double g_step = 0.2;
  std::uint64_t seed = 42;
  /// Worker threads for the sweep (0 = hardware concurrency, 1 = serial).
  std::size_t threads = 0;
  std::size_t sim_items = 40;
  std::size_t sim_warmup = 10;
};

/// Results for a single (algorithm, instance) pair. Latencies are
/// normalized to the paper's reporting scale (see workload.hpp).
struct AlgoOutcome {
  bool scheduled = false;
  double ub = 0.0;          ///< (2S−1)Δ, normalized
  double sim0 = 0.0;        ///< simulated latency, no crash, normalized
  double simc = 0.0;        ///< simulated latency, c crashes (mean), normalized
  std::uint32_t stages = 0;
  std::size_t remote_comms = 0;
  std::uint32_t repair_added = 0;
  bool starved = false;     ///< any crash trial starved (must not happen)
  /// Period inflation the algorithm needed over the instance period (1.0 =
  /// scheduled at the nominal Δ; LTF frequently needs more at low
  /// granularity — the analogue of "LTF needs two more processors" in the
  /// paper's worked example). Latencies stay normalized by the *actual*
  /// period, so the series remain on the paper's scale.
  double period_factor = 1.0;
};

struct InstanceRecord {
  bool usable = false;      ///< fault-free reference scheduled successfully
  double granularity = 0.0;
  double period = 0.0;      ///< nominal Δ for the requested ε
  double ff_period = 0.0;   ///< the fault-free reference's own ε=0 period
  double ff_sim0 = 0.0;     ///< fault-free latency, normalized
  AlgoOutcome ltf;
  AlgoOutcome rltf;
};

/// Aggregated series for one granularity point (means over the instances
/// where the respective algorithm succeeded).
struct PointStats {
  double granularity = 0.0;
  std::size_t instances = 0;

  double ff_sim0 = 0.0;

  double ltf_ub = 0.0, rltf_ub = 0.0;
  double ltf_sim0 = 0.0, rltf_sim0 = 0.0;
  double ltf_simc = 0.0, rltf_simc = 0.0;

  /// Fault-tolerance overhead in % versus the fault-free schedule.
  double ltf_overhead0 = 0.0, rltf_overhead0 = 0.0;
  double ltf_overheadc = 0.0, rltf_overheadc = 0.0;

  double ltf_stages = 0.0, rltf_stages = 0.0;
  double ltf_comms = 0.0, rltf_comms = 0.0;
  double ltf_repairs = 0.0, rltf_repairs = 0.0;
  double ltf_period_factor = 0.0, rltf_period_factor = 0.0;

  std::size_t ltf_failures = 0;
  std::size_t rltf_failures = 0;
  std::size_t starved = 0;
};

/// Runs a single instance (exposed for tests and ablation benches).
[[nodiscard]] InstanceRecord run_instance(const SweepConfig& config, double granularity,
                                          std::uint64_t instance_seed);

/// Runs the full sweep, parallelized over instances; deterministic in the
/// seed regardless of thread count.
[[nodiscard]] std::vector<PointStats> run_granularity_sweep(const SweepConfig& config);

}  // namespace streamsched
