// The paper's granularity sweep (§5), generic over the scheduler registry:
// for each granularity point, generate random instances, schedule them with
// the fault-free reference and every algorithm named in the config, measure
// bound and simulated latencies (with and without crashes) and aggregate
// one series per algorithm — the layout of Figures 3 and 4 with LTF/R-LTF,
// and of any future comparison with other registered schedulers.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/variant.hpp"
#include "exp/workload.hpp"

namespace streamsched {

/// Deterministic partition of a sweep's instances across N independent
/// processes (CLI `--shard i/N`): shard i runs exactly the instances whose
/// flat index ≡ i (mod N). Every shard derives the full per-instance seed
/// table from the master seed, so the records a shard produces are
/// bit-identical to the same records of the unsharded run — merging all
/// shards (exp/shard.hpp) then aggregates to byte-identical output.
struct ShardSpec {
  std::size_t index = 0;
  std::size_t count = 1;  ///< 1 = unsharded

  [[nodiscard]] bool active() const { return count > 1; }
  friend bool operator==(const ShardSpec&, const ShardSpec&) = default;
};

struct SweepConfig {
  WorkloadParams workload;
  /// Algorithm variants to sweep, in series order. Plain registry names
  /// keep working (`{"ltf", "rltf"}` — the implicit AlgoVariant spec
  /// conversion), and parameterized variants (`"rltf[chunk=4,rule1=off]"`)
  /// get their own distinctly-keyed series. Unknown algorithms/parameters
  /// throw at spec construction; two variants with the same derived series
  /// key are rejected by the sweep.
  std::vector<AlgoVariant> algos{"ltf", "rltf"};
  CopyId eps = 1;
  /// Fault models to sweep: the series are keyed (algorithm, model), one
  /// per combination. Empty means the scalar model CountModel(eps) with
  /// undecorated series names — the paper's pipeline, bit-identical to the
  /// pre-fault-model sweep. Probabilistic models need workload
  /// fail_prob_lo/hi > 0 to be meaningful.
  std::vector<FaultModel> fault_models;
  /// Number of crashed processors in the "with crash" series of *count*
  /// models (c <= eps); probabilistic models sample crash sets from the
  /// per-processor failure probabilities instead.
  std::uint32_t crashes = 1;
  std::size_t graphs_per_point = 60;
  /// Random failure sets sampled per instance for the crash series.
  std::size_t crash_trials = 5;
  double g_min = 0.2;
  double g_max = 2.0;
  double g_step = 0.2;
  std::uint64_t seed = 42;
  /// Worker threads for the sweep (0 = hardware concurrency, 1 = serial).
  std::size_t threads = 0;
  std::size_t sim_items = 40;
  std::size_t sim_warmup = 10;
  /// Which slice of the instance grid this process runs (see ShardSpec).
  ShardSpec shard;
};

/// Results for a single (algorithm, instance) pair. Latencies are
/// normalized to the paper's reporting scale (see workload.hpp).
struct AlgoOutcome {
  bool scheduled = false;
  double ub = 0.0;          ///< (2S−1)Δ, normalized
  double sim0 = 0.0;        ///< simulated latency, no crash, normalized
  /// Simulated latency with crashes (mean over surviving trials),
  /// normalized; −1 when every trial starved (probabilistic series only —
  /// the instance is then excluded from the crash aggregates).
  double simc = 0.0;
  std::uint32_t stages = 0;
  std::size_t remote_comms = 0;
  std::uint32_t repair_added = 0;
  bool starved = false;     ///< any crash trial starved (must not happen)
  /// Period inflation the algorithm needed over the instance period (1.0 =
  /// scheduled at the nominal Δ; LTF frequently needs more at low
  /// granularity — the analogue of "LTF needs two more processors" in the
  /// paper's worked example). Latencies stay normalized by the *actual*
  /// period, so the series remain on the paper's scale.
  double period_factor = 1.0;
  /// Estimated schedule reliability (probabilistic fault models only;
  /// −1 when the series runs a count model).
  double reliability = -1.0;

  /// Stored in `simc` when no crash trial survived (probabilistic series
  /// whose sampled sets all exceeded the repaired coverage). The stored
  /// value keeps the sentinel for CSV/golden-byte stability; consumers ask
  /// `has_crash_series()` instead of comparing against the magic number.
  static constexpr double kNoCrashData = -1.0;
  /// True when the crash-latency column holds a measured mean (at least
  /// one crash trial completed; the c = 0 path copies sim0).
  [[nodiscard]] bool has_crash_series() const { return simc >= 0.0; }
};

struct InstanceRecord {
  bool usable = false;      ///< fault-free reference scheduled successfully
  double granularity = 0.0;
  double period = 0.0;      ///< nominal Δ for the requested ε
  double ff_period = 0.0;   ///< the fault-free reference's own ε=0 period
  double ff_sim0 = 0.0;     ///< fault-free latency, normalized
  /// Series keys (variant names, or "<variant>@<model>" when fault models
  /// are configured), in config order; parallel to `outcomes`.
  std::vector<std::string> algos;
  std::vector<AlgoOutcome> outcomes;

  /// nullptr when the record holds no outcome for series key `name`.
  [[nodiscard]] const AlgoOutcome* outcome(const std::string& name) const;
};

/// Aggregated series for one (algorithm, fault model) pair at one
/// granularity point (means over the instances where the algorithm
/// succeeded).
struct AlgoSeries {
  std::string name;   ///< series key: variant name, or "<variant>@<model>"
  std::string label;  ///< display label (from the variant, plus the model)

  double ub = 0.0;
  double sim0 = 0.0;
  double simc = 0.0;

  /// Fault-tolerance overhead in % versus the fault-free schedule.
  double overhead0 = 0.0;
  double overheadc = 0.0;

  double stages = 0.0;
  double comms = 0.0;
  double repairs = 0.0;
  double period_factor = 0.0;
  /// Mean estimated schedule reliability (probabilistic series; 0 for
  /// count series, whose guarantee is the exhaustive ε-failure check).
  double reliability = 0.0;

  std::size_t failures = 0;  ///< instances the algorithm could not schedule
};

/// Aggregated results for one granularity point: the shared fault-free
/// baseline plus one series per configured algorithm.
struct PointStats {
  double granularity = 0.0;
  std::size_t instances = 0;
  double ff_sim0 = 0.0;
  std::size_t starved = 0;
  std::vector<AlgoSeries> series;  ///< config order

  /// nullptr when no series with that registry name exists.
  [[nodiscard]] const AlgoSeries* find(const std::string& name) const;
  /// Throws std::invalid_argument when no series with that name exists.
  [[nodiscard]] const AlgoSeries& at(const std::string& name) const;
};

/// FNV-1a tag of a series key, used to fork per-series RNG streams that
/// depend only on the (algorithm, fault model) identity — never on which
/// other series run or in what order. Shared with benches that follow the
/// same stream discipline.
[[nodiscard]] std::uint64_t series_stream_tag(const std::string& name);

/// Period escalation ladder shared by the sweep and the ablation benches:
/// the paper's LTF legitimately fails when the throughput constraint
/// cannot be met, so callers retry at inflated periods and report the
/// inflation factor (the analogue of "LTF needs two more processors").
[[nodiscard]] const std::vector<double>& period_escalation_ladder();

/// Runs `variant` at `period` times each ladder factor until it succeeds.
/// Returns the result and the successful factor (0.0 when every rung
/// failed; the result then holds the last failure).
[[nodiscard]] std::pair<ScheduleResult, double> schedule_with_period_escalation(
    const AlgoVariant& variant, const Dag& dag, const Platform& platform, double period,
    SchedulerOptions options);

/// Convenience overload escalating from inst.period.
[[nodiscard]] std::pair<ScheduleResult, double> schedule_with_period_escalation(
    const AlgoVariant& variant, const Instance& inst, SchedulerOptions options);

/// Plain-scheduler overloads (a registry entry is the no-parameter
/// variant of itself).
[[nodiscard]] std::pair<ScheduleResult, double> schedule_with_period_escalation(
    const Scheduler& scheduler, const Dag& dag, const Platform& platform, double period,
    SchedulerOptions options);
[[nodiscard]] std::pair<ScheduleResult, double> schedule_with_period_escalation(
    const Scheduler& scheduler, const Instance& inst, SchedulerOptions options);

/// True when any (variant, fault model) series of the config is measured
/// under a probabilistic model — including variants that override the
/// model by binding the base parameter `R`. Benches use this to default
/// the platform failure-probability range (a probabilistic series on a
/// never-failing platform is vacuous).
[[nodiscard]] bool sweep_has_probabilistic_series(const SweepConfig& config);

/// Runs a single instance (exposed for tests and ablation benches).
[[nodiscard]] InstanceRecord run_instance(const SweepConfig& config, double granularity,
                                          std::uint64_t instance_seed);

/// The sweep's raw measurement phase: every per-instance record of (the
/// configured shard of) the grid, plus the header needed to aggregate or
/// merge them without the originating config. Flat record index i maps to
/// granularity point i / graphs_per_point, repetition i % graphs_per_point.
struct SweepRecords {
  std::vector<double> granularities;  ///< point grid, in sweep order
  std::size_t graphs_per_point = 0;
  std::uint64_t seed = 0;
  std::uint32_t crashes = 0;
  ShardSpec shard;
  /// (series key, display label) in config order — what aggregation needs
  /// of the variant/model grid.
  std::vector<std::pair<std::string, std::string>> series;
  /// present[i] != 0 iff records[i] was measured (by this shard).
  std::vector<char> present;
  std::vector<InstanceRecord> records;  ///< full grid size; absent = default

  [[nodiscard]] std::size_t total() const { return records.size(); }
  [[nodiscard]] bool complete() const;
};

/// Measurement phase only: runs the instances owned by `config.shard`
/// (all of them when unsharded), parallelized; deterministic in the seed
/// regardless of thread count AND shard split — each record is
/// bit-identical to the unsharded run's. Validation as in
/// run_granularity_sweep.
[[nodiscard]] SweepRecords run_sweep_records(const SweepConfig& config);

/// Aggregation phase: per-point means over a COMPLETE record set (throws
/// on missing records — merge shards first, exp/shard.hpp). Iterates in
/// grid order, so aggregating merged shards is bit-identical to the
/// unsharded sweep.
[[nodiscard]] std::vector<PointStats> aggregate_sweep_records(const SweepRecords& records);

/// Runs the full sweep (measure + aggregate), parallelized over instances;
/// deterministic in the seed regardless of thread count. Throws
/// std::invalid_argument on an invalid granularity/crash/shard
/// configuration or duplicate series keys (unknown algorithms/parameters
/// already threw when the AlgoVariant specs were constructed). A sharded
/// config throws in the aggregation phase: partial sweeps cannot be
/// averaged.
[[nodiscard]] std::vector<PointStats> run_granularity_sweep(const SweepConfig& config);

}  // namespace streamsched
