#include "exp/figures.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace streamsched {

namespace {

// Every point of a sweep carries the same series set; the first point
// provides the column layout.
const std::vector<AlgoSeries>& layout(const std::vector<PointStats>& points) {
  SS_REQUIRE(!points.empty(), "figure assembly needs at least one sweep point");
  return points.front().series;
}

}  // namespace

Table figure_latency_bounds(const std::vector<PointStats>& points) {
  std::vector<std::string> headers{"granularity"};
  for (const AlgoSeries& s : layout(points)) {
    headers.push_back(s.label + " 0-crash");
    headers.push_back(s.label + " UpperBound");
  }
  Table t(std::move(headers));
  for (const PointStats& p : points) {
    std::vector<double> row{p.granularity};
    for (const AlgoSeries& s : p.series) {
      row.push_back(s.sim0);
      row.push_back(s.ub);
    }
    t.add_row(row);
  }
  return t;
}

Table figure_latency_crash(const std::vector<PointStats>& points, std::uint32_t crashes) {
  const std::string c = std::to_string(crashes);
  std::vector<std::string> headers{"granularity"};
  for (const AlgoSeries& s : layout(points)) {
    headers.push_back(s.label + " 0-crash");
    headers.push_back(s.label + " " + c + "-crash");
  }
  Table t(std::move(headers));
  for (const PointStats& p : points) {
    std::vector<double> row{p.granularity};
    for (const AlgoSeries& s : p.series) {
      row.push_back(s.sim0);
      row.push_back(s.simc);
    }
    t.add_row(row);
  }
  return t;
}

Table figure_overhead(const std::vector<PointStats>& points, std::uint32_t crashes) {
  const std::string c = std::to_string(crashes);
  std::vector<std::string> headers{"granularity"};
  for (const AlgoSeries& s : layout(points)) {
    headers.push_back(s.label + " 0-crash %");
    headers.push_back(s.label + " " + c + "-crash %");
  }
  Table t(std::move(headers));
  for (const PointStats& p : points) {
    std::vector<double> row{p.granularity};
    for (const AlgoSeries& s : p.series) {
      row.push_back(s.overhead0);
      row.push_back(s.overheadc);
    }
    t.add_row(row);
  }
  return t;
}

Table figure_diagnostics(const std::vector<PointStats>& points) {
  std::vector<std::string> headers{"granularity", "instances", "FF latency"};
  for (const AlgoSeries& s : layout(points)) {
    headers.push_back(s.label + " stages");
    headers.push_back(s.label + " comms");
    headers.push_back(s.label + " repairs");
    headers.push_back(s.label + " dT");
    headers.push_back(s.label + " fail");
  }
  headers.emplace_back("starved");
  Table t(std::move(headers));
  for (const PointStats& p : points) {
    std::vector<std::string> row{Table::fmt(p.granularity, 2), std::to_string(p.instances),
                                 Table::fmt(p.ff_sim0, 1)};
    for (const AlgoSeries& s : p.series) {
      row.push_back(Table::fmt(s.stages, 2));
      row.push_back(Table::fmt(s.comms, 1));
      row.push_back(Table::fmt(s.repairs, 2));
      row.push_back(Table::fmt(s.period_factor, 2));
      row.push_back(std::to_string(s.failures));
    }
    row.push_back(std::to_string(p.starved));
    t.add_row(std::move(row));
  }
  return t;
}

namespace {

// A series competes at a point only when it scheduled at least one
// instance there (an empty accumulator reports a 0 mean, which would win
// every contest spuriously).
bool competes(const AlgoSeries& s, double AlgoSeries::* metric) {
  return s.*metric > 0.0;
}

// Index of the series with the lowest `metric`, and the runner-up margin
// in % (0 when fewer than two series compete). Returns npos when nothing
// competes.
std::pair<std::size_t, double> point_winner(const PointStats& p,
                                            double AlgoSeries::* metric) {
  std::size_t best = std::string::npos;
  std::size_t second = std::string::npos;
  for (std::size_t i = 0; i < p.series.size(); ++i) {
    if (!competes(p.series[i], metric)) continue;
    if (best == std::string::npos || p.series[i].*metric < p.series[best].*metric) {
      second = best;
      best = i;
    } else if (second == std::string::npos ||
               p.series[i].*metric < p.series[second].*metric) {
      second = i;
    }
  }
  double margin = 0.0;
  if (best != std::string::npos && second != std::string::npos &&
      p.series[best].*metric > 0.0) {
    margin = 100.0 * (p.series[second].*metric - p.series[best].*metric) /
             p.series[best].*metric;
  }
  return {best, margin};
}

}  // namespace

Table figure_tournament(const std::vector<PointStats>& points) {
  (void)layout(points);  // asserts a non-empty, uniform series set
  Table t({"granularity", "winner 0-crash", "margin %", "winner c-crash", "margin %",
           "winner oh0 %"});
  for (const PointStats& p : points) {
    const auto [best0, margin0] = point_winner(p, &AlgoSeries::sim0);
    const auto [bestc, marginc] = point_winner(p, &AlgoSeries::simc);
    std::vector<std::string> row{Table::fmt(p.granularity, 2)};
    if (best0 == std::string::npos) {
      row.insert(row.end(), {"-", "-"});
    } else {
      row.insert(row.end(), {p.series[best0].label, Table::fmt(margin0, 1)});
    }
    if (bestc == std::string::npos) {
      row.insert(row.end(), {"-", "-", "-"});
    } else {
      row.insert(row.end(), {p.series[bestc].label, Table::fmt(marginc, 1),
                             Table::fmt(p.series[bestc].overhead0, 1)});
    }
    t.add_row(std::move(row));
  }
  return t;
}

Table tournament_matrix(const std::vector<PointStats>& points) {
  const std::vector<AlgoSeries>& series = layout(points);
  std::vector<std::string> headers{"wins on c-crash latency"};
  for (const AlgoSeries& s : series) headers.push_back("vs " + s.label);
  headers.emplace_back("vs FF");
  Table t(std::move(headers));
  for (std::size_t i = 0; i < series.size(); ++i) {
    std::vector<std::string> row{series[i].label};
    for (std::size_t j = 0; j < series.size(); ++j) {
      if (i == j) {
        row.emplace_back("-");
        continue;
      }
      std::size_t wins = 0;
      for (const PointStats& p : points) {
        const AlgoSeries& a = p.series[i];
        const AlgoSeries& b = p.series[j];
        if (competes(a, &AlgoSeries::simc) && competes(b, &AlgoSeries::simc) &&
            a.simc < b.simc) {
          ++wins;
        }
      }
      row.push_back(std::to_string(wins) + "/" + std::to_string(points.size()));
    }
    std::size_t ff_wins = 0;
    for (const PointStats& p : points) {
      const AlgoSeries& a = p.series[i];
      if (competes(a, &AlgoSeries::sim0) && p.ff_sim0 > 0.0 && a.overhead0 <= 0.0) {
        ++ff_wins;
      }
    }
    row.push_back(std::to_string(ff_wins) + "/" + std::to_string(points.size()));
    t.add_row(std::move(row));
  }
  return t;
}

std::vector<std::pair<std::string, Table>> per_series_tables(
    const std::vector<PointStats>& points) {
  std::vector<std::pair<std::string, Table>> tables;
  for (std::size_t a = 0; a < layout(points).size(); ++a) {
    Table t({"granularity", "ub", "sim0", "simc", "overhead0", "overheadc", "stages", "comms",
             "repairs", "period_factor", "reliability", "failures"});
    for (const PointStats& p : points) {
      const AlgoSeries& s = p.series[a];
      t.add_row({Table::fmt(p.granularity, 2), Table::fmt(s.ub, 4), Table::fmt(s.sim0, 4),
                 Table::fmt(s.simc, 4), Table::fmt(s.overhead0, 2), Table::fmt(s.overheadc, 2),
                 Table::fmt(s.stages, 2), Table::fmt(s.comms, 1), Table::fmt(s.repairs, 2),
                 Table::fmt(s.period_factor, 2), Table::fmt(s.reliability, 6),
                 std::to_string(s.failures)});
    }
    tables.emplace_back(layout(points)[a].name, std::move(t));
  }
  return tables;
}

namespace {

// Series names may hold '@', ':' or '=' (fault-model decorations); keep
// filenames portable.
std::string sanitize_filename(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    if (!safe) c = '_';
  }
  return out;
}

}  // namespace

std::vector<std::string> write_series_csvs(const std::vector<PointStats>& points,
                                           const std::string& prefix) {
  std::vector<std::string> paths;
  for (const auto& [name, table] : per_series_tables(points)) {
    std::string path = prefix + sanitize_filename(name) + ".csv";
    table.write_csv(path);
    paths.push_back(std::move(path));
  }
  return paths;
}

std::string render_figure(const std::vector<PointStats>& points, const std::string& title,
                          std::uint32_t crashes) {
  std::ostringstream os;
  os << "=== " << title << " ===\n\n";
  os << "(a) Normalized latency: bounds vs. simulated, no failures\n"
     << figure_latency_bounds(points).to_ascii() << '\n';
  os << "(b) Normalized latency with " << crashes << " crash(es)\n"
     << figure_latency_crash(points, crashes).to_ascii() << '\n';
  os << "(c) Fault-tolerance overhead (%) vs. fault-free schedule\n"
     << figure_overhead(points, crashes).to_ascii() << '\n';
  os << "(d) Diagnostics\n" << figure_diagnostics(points).to_ascii();
  if (layout(points).size() > 1) {
    os << "\n(e) Tournament: per-point winners and win/loss matrix\n"
       << figure_tournament(points).to_ascii() << '\n'
       << tournament_matrix(points).to_ascii();
  }
  return os.str();
}

}  // namespace streamsched
