#include "exp/figures.hpp"

#include <sstream>

namespace streamsched {

Table figure_latency_bounds(const std::vector<PointStats>& points) {
  Table t({"granularity", "R-LTF 0-crash", "R-LTF UpperBound", "LTF 0-crash",
           "LTF UpperBound"});
  for (const PointStats& p : points) {
    t.add_row({p.granularity, p.rltf_sim0, p.rltf_ub, p.ltf_sim0, p.ltf_ub});
  }
  return t;
}

Table figure_latency_crash(const std::vector<PointStats>& points, std::uint32_t crashes) {
  const std::string c = std::to_string(crashes);
  Table t({"granularity", "R-LTF 0-crash", "R-LTF " + c + "-crash", "LTF 0-crash",
           "LTF " + c + "-crash"});
  for (const PointStats& p : points) {
    t.add_row({p.granularity, p.rltf_sim0, p.rltf_simc, p.ltf_sim0, p.ltf_simc});
  }
  return t;
}

Table figure_overhead(const std::vector<PointStats>& points, std::uint32_t crashes) {
  const std::string c = std::to_string(crashes);
  Table t({"granularity", "R-LTF 0-crash %", "R-LTF " + c + "-crash %", "LTF 0-crash %",
           "LTF " + c + "-crash %"});
  for (const PointStats& p : points) {
    t.add_row({p.granularity, p.rltf_overhead0, p.rltf_overheadc, p.ltf_overhead0,
               p.ltf_overheadc});
  }
  return t;
}

Table figure_diagnostics(const std::vector<PointStats>& points) {
  Table t({"granularity", "instances", "FF latency", "R-LTF stages", "LTF stages",
           "R-LTF comms", "LTF comms", "R-LTF repairs", "LTF repairs", "R-LTF dT",
           "LTF dT", "R-LTF fail", "LTF fail", "starved"});
  for (const PointStats& p : points) {
    t.add_row({Table::fmt(p.granularity, 2), std::to_string(p.instances),
               Table::fmt(p.ff_sim0, 1), Table::fmt(p.rltf_stages, 2),
               Table::fmt(p.ltf_stages, 2), Table::fmt(p.rltf_comms, 1),
               Table::fmt(p.ltf_comms, 1), Table::fmt(p.rltf_repairs, 2),
               Table::fmt(p.ltf_repairs, 2), Table::fmt(p.rltf_period_factor, 2),
               Table::fmt(p.ltf_period_factor, 2), std::to_string(p.rltf_failures),
               std::to_string(p.ltf_failures), std::to_string(p.starved)});
  }
  return t;
}

std::string render_figure(const std::vector<PointStats>& points, const std::string& title,
                          std::uint32_t crashes) {
  std::ostringstream os;
  os << "=== " << title << " ===\n\n";
  os << "(a) Normalized latency: bounds vs. simulated, no failures\n"
     << figure_latency_bounds(points).to_ascii() << '\n';
  os << "(b) Normalized latency with " << crashes << " crash(es)\n"
     << figure_latency_crash(points, crashes).to_ascii() << '\n';
  os << "(c) Fault-tolerance overhead (%) vs. fault-free schedule\n"
     << figure_overhead(points, crashes).to_ascii() << '\n';
  os << "(d) Diagnostics\n" << figure_diagnostics(points).to_ascii();
  return os.str();
}

}  // namespace streamsched
