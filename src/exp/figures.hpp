// Assembly of the paper's figure panels from sweep results, in the exact
// series layout of Figures 3 and 4 (three panels: latency bounds, latency
// with crash, fault-tolerance overhead), plus a diagnostics table.
#pragma once

#include <string>
#include <vector>

#include "exp/sweep.hpp"
#include "util/table.hpp"

namespace streamsched {

/// Panel (a): granularity | R-LTF sim-0-crash | R-LTF upper bound |
/// LTF sim-0-crash | LTF upper bound.
[[nodiscard]] Table figure_latency_bounds(const std::vector<PointStats>& points);

/// Panel (b): granularity | R-LTF 0 crash | R-LTF c crash | LTF 0 crash |
/// LTF c crash.
[[nodiscard]] Table figure_latency_crash(const std::vector<PointStats>& points,
                                         std::uint32_t crashes);

/// Panel (c): overhead (%) versus the fault-free schedule, same series.
[[nodiscard]] Table figure_overhead(const std::vector<PointStats>& points,
                                    std::uint32_t crashes);

/// Extra diagnostics: stage counts, remote communications, repair volume,
/// scheduling failures, fault-free baseline.
[[nodiscard]] Table figure_diagnostics(const std::vector<PointStats>& points);

/// Renders all panels with captions, ready to print.
[[nodiscard]] std::string render_figure(const std::vector<PointStats>& points,
                                        const std::string& title, std::uint32_t crashes);

}  // namespace streamsched
