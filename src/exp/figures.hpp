// Assembly of the paper's figure panels from sweep results, generic over
// the algorithm series a sweep produced: the exact layout of Figures 3 and
// 4 (three panels: latency bounds, latency with crash, fault-tolerance
// overhead) with one column group per algorithm, plus a diagnostics table.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "exp/sweep.hpp"
#include "util/table.hpp"

namespace streamsched {

/// Panel (a): granularity | per algorithm: <label> 0-crash | <label>
/// UpperBound.
[[nodiscard]] Table figure_latency_bounds(const std::vector<PointStats>& points);

/// Panel (b): granularity | per algorithm: <label> 0-crash | <label>
/// c-crash.
[[nodiscard]] Table figure_latency_crash(const std::vector<PointStats>& points,
                                         std::uint32_t crashes);

/// Panel (c): overhead (%) versus the fault-free schedule, same series.
[[nodiscard]] Table figure_overhead(const std::vector<PointStats>& points,
                                    std::uint32_t crashes);

/// Extra diagnostics: per algorithm stage counts, remote communications,
/// repair volume, period inflation and scheduling failures, plus the
/// fault-free baseline.
[[nodiscard]] Table figure_diagnostics(const std::vector<PointStats>& points);

/// Tournament report: per granularity point, the winning series (lowest
/// mean simulated latency) without and with crashes, the winner's margin
/// over the runner-up (%), and the winner's overhead versus the fault-free
/// baseline. Series that scheduled no instance at a point are excluded
/// from that point's contest.
[[nodiscard]] Table figure_tournament(const std::vector<PointStats>& points);

/// Win/loss matrix over the whole sweep: cell (row, col) counts the
/// granularity points where the row series strictly beat the column series
/// on crash-sim latency. The trailing "vs FF" column counts the points
/// where the row series' no-crash latency stayed within the fault-free
/// baseline (overhead <= 0) — the ROADMAP's "wins versus the fault-free
/// baseline".
[[nodiscard]] Table tournament_matrix(const std::vector<PointStats>& points);

/// Renders all panels with captions, ready to print (the tournament
/// panels are appended when the sweep carries more than one series).
[[nodiscard]] std::string render_figure(const std::vector<PointStats>& points,
                                        const std::string& title, std::uint32_t crashes);

/// One full-detail table per series (column layout of `series_csv_header`:
/// granularity,ub,sim0,simc,overhead0,overheadc,stages,comms,repairs,
/// period_factor,reliability,failures) for external plotting, keyed by the
/// series name.
[[nodiscard]] std::vector<std::pair<std::string, Table>> per_series_tables(
    const std::vector<PointStats>& points);

/// Writes per_series_tables as CSV files named
/// `<prefix><sanitized series name>.csv` (characters unsafe in filenames
/// become '_'). Returns the paths written.
std::vector<std::string> write_series_csvs(const std::vector<PointStats>& points,
                                           const std::string& prefix);

}  // namespace streamsched
