#include "exp/sweep.hpp"

#include <algorithm>
#include <cmath>

#include "core/rltf.hpp"
#include "schedule/metrics.hpp"
#include "schedule/survival.hpp"
#include "sim/engine.hpp"
#include "sim/program.hpp"
#include "util/assert.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace streamsched {

namespace {

// One sweep series: an (algorithm variant, fault model) pair with its
// key/label. With no fault models configured the key degenerates to the
// variant name — and for unparameterized variants to the bare registry
// name, bit-identical to the pre-variant sweep.
struct SeriesSpec {
  AlgoVariant variant;
  /// The fault-model axis value — decorates the series key/label.
  FaultModel model;
  /// The model the series is actually measured under: `model` unless the
  /// variant binds the base params `eps`/`R`, which override it. Drives
  /// replication-degree derivation, period calibration, crash sampling and
  /// the reliability column, so a variant that overrides the model is
  /// measured consistently with what it schedules for.
  FaultModel effective;
  std::string name;
  std::string label;
};

std::vector<FaultModel> effective_models(const SweepConfig& config) {
  if (!config.fault_models.empty()) return config.fault_models;
  return {FaultModel::count(config.eps)};
}

// Resolves the (variant, model) series grid; series keys derive from the
// variants, so two variants of the same algorithm with different bound
// parameters get distinct series. Duplicate keys (the same variant twice,
// or two variants whose canonical specs coincide) throw — they would
// silently share crash streams and overwrite each other's columns.
std::vector<SeriesSpec> build_series(const SweepConfig& config) {
  const std::vector<FaultModel> models = effective_models(config);
  const bool decorate = models.size() > 1 || models.front().is_probabilistic();
  std::vector<SeriesSpec> series;
  series.reserve(config.algos.size() * models.size());
  for (const AlgoVariant& variant : config.algos) {
    for (const FaultModel& model : models) {
      SeriesSpec spec;
      spec.variant = variant;
      spec.model = model;
      // Probe what the variant's bound parameters leave of the series
      // model (eps resets it to a count model, R replaces it; unbound
      // variants keep the axis model — the bit-identical legacy path).
      SchedulerOptions probe;
      probe.eps = config.eps;
      probe.fault_model = model;
      variant.params().apply(probe);
      spec.effective = probe.model();
      spec.name = decorate ? variant.name() + "@" + model.to_string() : variant.name();
      spec.label = decorate ? variant.label() + " [" + model.to_string() + "]"
                            : variant.label();
      for (const SeriesSpec& existing : series) {
        if (existing.name == spec.name) {
          throw std::invalid_argument("duplicate sweep series '" + spec.name +
                                      "'; give variants distinct parameters");
        }
      }
      series.push_back(std::move(spec));
    }
  }
  return series;
}

// Measures one scheduled series on one instance. Latencies are normalized
// by the schedule's own period so every series sits on the paper's
// (2S-1)·10(ε+1) scale; `model_eps` is the model-derived replication
// degree the normalization refers to.
AlgoOutcome measure(const SweepConfig& config, const SeriesSpec& spec, CopyId model_eps,
                    ScheduleResult result, double period_factor, Rng& rng) {
  AlgoOutcome out;
  if (!result.ok()) return out;
  const Schedule& schedule = *result.schedule;
  const double norm = normalization_factor(schedule.period(), model_eps);
  out.scheduled = true;
  out.period_factor = period_factor;
  out.stages = num_stages(schedule);
  out.ub = latency_upper_bound(schedule) * norm;
  out.remote_comms = num_remote_comms(schedule);
  out.repair_added = result.repair.added_comms;

  // The schedule is compiled once (sim/program.hpp); the clean run and
  // every crash trial replay the compiled program — bit-identical to the
  // per-trial `simulate()` loop, minus the per-trial recompilation.
  SimOptions sim_options;
  sim_options.num_items = config.sim_items;
  sim_options.warmup_items = config.sim_warmup;
  const SimProgram program(schedule, sim_options);
  SimState sim_state;
  const SimResult sim0 = program.run(sim_options, sim_state);
  out.sim0 = sim0.mean_latency * norm;
  if (!sim0.complete) out.starved = true;

  // Crash trials are drawn from the series' effective fault model: uniform
  // c-subsets for count models (which skip the series entirely at c = 0),
  // Bernoulli per-processor crash sets for probabilistic ones. The oracle
  // is compiled once per schedule so trials whose sampled set kills the
  // schedule skip the event simulation (identical outcome: the trial
  // starves either way).
  if (config.crashes > 0 || spec.effective.is_probabilistic()) {
    const SurvivalOracle oracle(schedule);
    RunningStats crash_latency;
    for (const SimResult& simc :
         simulate_crash_trials(program, spec.effective, config.crashes, config.crash_trials,
                               rng, &oracle)) {
      if (!simc.complete) {
        out.starved = true;
        continue;
      }
      crash_latency.add(simc.mean_latency * norm);
    }
    // Count models never starve after repair, but a probabilistic series
    // can lose every trial (sampled sets may exceed the repaired
    // coverage); a spurious 0 would deflate the aggregated means, so the
    // sentinel excludes the instance from the crash series instead.
    out.simc =
        crash_latency.count() > 0 ? crash_latency.mean() : AlgoOutcome::kNoCrashData;
  } else {
    out.simc = out.sim0;
  }

  if (spec.effective.is_probabilistic()) {
    // The repair pass already estimated the final reliability with the
    // default budget; reuse it so the column never contradicts the
    // repair's verdict and the estimation cost is paid once.
    out.reliability = result.repair.reliability >= 0.0
                          ? result.repair.reliability
                          : schedule_reliability(schedule).reliability;
  }
  return out;
}

// Per-series accumulators behind one PointStats series.
struct SeriesAccum {
  RunningStats ub, sim0, simc, oh0, ohc, stages, comms, repairs, period_factor, reliability;
  std::size_t failures = 0;
};

}  // namespace

std::uint64_t series_stream_tag(const std::string& name) {
  std::uint64_t h = 1469598103934665603ULL;
  for (char ch : name) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ULL;
  }
  return h;
}

const AlgoOutcome* InstanceRecord::outcome(const std::string& name) const {
  for (std::size_t i = 0; i < algos.size() && i < outcomes.size(); ++i) {
    if (algos[i] == name) return &outcomes[i];
  }
  return nullptr;
}

const AlgoSeries* PointStats::find(const std::string& name) const {
  for (const AlgoSeries& s : series) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const AlgoSeries& PointStats::at(const std::string& name) const {
  if (const AlgoSeries* s = find(name)) return *s;
  throw std::invalid_argument("no sweep series for algorithm '" + name + "'");
}

const std::vector<double>& period_escalation_ladder() {
  static const std::vector<double> ladder{1.0, 1.3, 1.7, 2.2, 3.0};
  return ladder;
}

std::pair<ScheduleResult, double> schedule_with_period_escalation(
    const AlgoVariant& variant, const Dag& dag, const Platform& platform, double period,
    SchedulerOptions options) {
  ScheduleResult result;
  for (double factor : period_escalation_ladder()) {
    options.period = period * factor;
    result = variant.schedule(dag, platform, options);
    if (result.ok()) return {std::move(result), factor};
  }
  return {std::move(result), 0.0};
}

std::pair<ScheduleResult, double> schedule_with_period_escalation(
    const AlgoVariant& variant, const Instance& inst, SchedulerOptions options) {
  return schedule_with_period_escalation(variant, inst.dag, inst.platform, inst.period,
                                         std::move(options));
}

std::pair<ScheduleResult, double> schedule_with_period_escalation(
    const Scheduler& scheduler, const Dag& dag, const Platform& platform, double period,
    SchedulerOptions options) {
  return schedule_with_period_escalation(AlgoVariant(scheduler), dag, platform, period,
                                         std::move(options));
}

std::pair<ScheduleResult, double> schedule_with_period_escalation(
    const Scheduler& scheduler, const Instance& inst, SchedulerOptions options) {
  return schedule_with_period_escalation(AlgoVariant(scheduler), inst, std::move(options));
}

bool sweep_has_probabilistic_series(const SweepConfig& config) {
  for (const SeriesSpec& spec : build_series(config)) {
    if (spec.effective.is_probabilistic()) return true;
  }
  return false;
}

InstanceRecord run_instance(const SweepConfig& config, double granularity,
                            std::uint64_t instance_seed) {
  InstanceRecord record;
  record.granularity = granularity;
  const std::vector<SeriesSpec> series = build_series(config);
  record.algos.reserve(series.size());
  for (const SeriesSpec& spec : series) record.algos.push_back(spec.name);
  record.outcomes.resize(series.size());

  Rng rng(instance_seed);
  Rng workload_rng = rng.fork(1);
  // One crash stream per series, forked off a *fresh* engine with a
  // name-derived tag: fork() advances its parent, so deriving every stream
  // from the same parent would make the failure sets a series sees depend
  // on which other series run and in what order.
  std::vector<Rng> crash_rngs;
  crash_rngs.reserve(series.size());
  for (const SeriesSpec& spec : series) {
    crash_rngs.push_back(Rng(instance_seed).fork(series_stream_tag(spec.name)));
  }

  const Instance inst = make_instance(config.workload, granularity, config.eps, workload_rng);
  record.period = inst.period;

  // Fault-free reference: R-LTF with ε = 0 at its *own* ε = 0 period (the
  // paper's T = 1/(10(ε+1)) makes the safe system's period a factor ε+1
  // shorter), normalized on the ε = 0 scale.
  record.ff_period = calibrate_period(inst.dag, inst.platform, 0, config.workload.headroom,
                                      config.workload.comm_share);
  ScheduleResult ff = fault_free_schedule(inst.dag, inst.platform, record.ff_period);
  if (!ff.ok()) return record;  // unusable instance (should be rare)
  record.usable = true;
  SimOptions sim_options;
  sim_options.num_items = config.sim_items;
  sim_options.warmup_items = config.sim_warmup;
  sim_options.period = record.ff_period;
  record.ff_sim0 = simulate(*ff.schedule, sim_options).mean_latency *
                   normalization_factor(record.ff_period, 0);

  // Period calibration is memoized per distinct replication degree: several
  // series (e.g. probabilistic models deriving the same ε) would otherwise
  // redo the identical calibration sweep per series.
  std::vector<std::pair<CopyId, double>> period_cache;
  const auto calibrated_period = [&](CopyId model_eps) {
    for (const auto& [eps, period] : period_cache) {
      if (eps == model_eps) return period;
    }
    const double period = calibrate_period(inst.dag, inst.platform, model_eps,
                                           config.workload.headroom, config.workload.comm_share);
    period_cache.emplace_back(model_eps, period);
    return period;
  };

  for (std::size_t i = 0; i < series.size(); ++i) {
    const SeriesSpec& spec = series[i];
    const CopyId model_eps = spec.effective.derive_eps(inst.platform, inst.dag.num_tasks());
    // Each series is scheduled at the period its replication degree was
    // calibrated for; the shared config.eps calibration is reused verbatim
    // when the degrees coincide (the legacy path).
    const double period =
        model_eps == config.eps ? inst.period : calibrated_period(model_eps);
    SchedulerOptions options;
    options.eps = model_eps;
    options.fault_model = spec.effective;
    options.repair = true;  // enforce the fault model's guarantee
    auto [result, factor] = schedule_with_period_escalation(spec.variant, inst.dag,
                                                            inst.platform, period, options);
    record.outcomes[i] = measure(config, spec, model_eps, std::move(result), factor,
                                 crash_rngs[i]);
  }
  return record;
}

bool SweepRecords::complete() const {
  for (char p : present) {
    if (p == 0) return false;
  }
  return true;
}

SweepRecords run_sweep_records(const SweepConfig& config) {
  SS_REQUIRE(config.g_min > 0.0 && config.g_step > 0.0 && config.g_max >= config.g_min,
             "invalid granularity range");
  SS_REQUIRE(!config.algos.empty(), "sweep needs at least one algorithm");
  SS_REQUIRE(config.shard.count >= 1 && config.shard.index < config.shard.count,
             "shard index out of range");
  // Build the series grid up front so duplicate series keys fail before
  // any work is spent, and check the crash count against each series'
  // *effective* model (a variant may override the axis model via eps/R).
  const std::vector<SeriesSpec> series_specs = build_series(config);
  for (const SeriesSpec& spec : series_specs) {
    if (spec.effective.is_count()) {
      SS_REQUIRE(config.crashes <= spec.effective.eps(),
                 "cannot crash more processors than eps");
    }
  }

  SweepRecords out;
  for (double g = config.g_min; g <= config.g_max + 1e-9; g += config.g_step) {
    out.granularities.push_back(g);
  }
  out.graphs_per_point = config.graphs_per_point;
  out.seed = config.seed;
  out.crashes = config.crashes;
  out.shard = config.shard;
  out.series.reserve(series_specs.size());
  for (const SeriesSpec& spec : series_specs) out.series.emplace_back(spec.name, spec.label);

  const std::size_t total = out.granularities.size() * config.graphs_per_point;
  out.records.resize(total);
  out.present.assign(total, 0);

  // The full seed table is derived on every shard: record i's seed never
  // depends on the split, so each measured record is bit-identical to the
  // unsharded run's.
  Rng seeder(config.seed);
  std::vector<std::uint64_t> seeds(total);
  for (auto& s : seeds) s = seeder();

  std::vector<std::size_t> owned;
  owned.reserve(total / config.shard.count + 1);
  for (std::size_t i = 0; i < total; ++i) {
    if (i % config.shard.count == config.shard.index) {
      owned.push_back(i);
      out.present[i] = 1;
    }
  }

  parallel_for_indices(owned.size(), config.threads == 0 ? 0 : config.threads,
                       [&](std::size_t k) {
                         const std::size_t i = owned[k];
                         const std::size_t point = i / config.graphs_per_point;
                         out.records[i] =
                             run_instance(config, out.granularities[point], seeds[i]);
                       });
  return out;
}

std::vector<PointStats> aggregate_sweep_records(const SweepRecords& records) {
  SS_REQUIRE(records.complete(),
             "cannot aggregate a partial record set; merge all shards first");
  SS_REQUIRE(records.records.size() ==
                 records.granularities.size() * records.graphs_per_point,
             "record count does not match the granularity grid");

  std::vector<PointStats> stats(records.granularities.size());
  for (std::size_t point = 0; point < records.granularities.size(); ++point) {
    PointStats& ps = stats[point];
    ps.granularity = records.granularities[point];

    RunningStats ff;
    std::vector<SeriesAccum> accum(records.series.size());

    for (std::size_t j = 0; j < records.graphs_per_point; ++j) {
      const InstanceRecord& rec = records.records[point * records.graphs_per_point + j];
      if (!rec.usable) continue;
      ++ps.instances;
      ff.add(rec.ff_sim0);

      for (std::size_t a = 0; a < records.series.size(); ++a) {
        const AlgoOutcome& out = rec.outcomes[a];
        SeriesAccum& acc = accum[a];
        if (!out.scheduled) {
          ++acc.failures;
          continue;
        }
        acc.ub.add(out.ub);
        acc.sim0.add(out.sim0);
        if (out.has_crash_series()) acc.simc.add(out.simc);
        acc.stages.add(out.stages);
        acc.comms.add(static_cast<double>(out.remote_comms));
        acc.repairs.add(out.repair_added);
        acc.period_factor.add(out.period_factor);
        if (out.reliability >= 0.0) acc.reliability.add(out.reliability);
        if (rec.ff_sim0 > 0.0) {
          acc.oh0.add(100.0 * (out.sim0 - rec.ff_sim0) / rec.ff_sim0);
          if (out.has_crash_series()) acc.ohc.add(100.0 * (out.simc - rec.ff_sim0) / rec.ff_sim0);
        }
        if (out.starved) ++ps.starved;
      }
    }

    ps.ff_sim0 = ff.mean();
    ps.series.resize(records.series.size());
    for (std::size_t a = 0; a < records.series.size(); ++a) {
      AlgoSeries& s = ps.series[a];
      const SeriesAccum& acc = accum[a];
      s.name = records.series[a].first;
      s.label = records.series[a].second;
      s.ub = acc.ub.mean();
      s.sim0 = acc.sim0.mean();
      s.simc = acc.simc.mean();
      s.overhead0 = acc.oh0.mean();
      s.overheadc = acc.ohc.mean();
      s.stages = acc.stages.mean();
      s.comms = acc.comms.mean();
      s.repairs = acc.repairs.mean();
      s.period_factor = acc.period_factor.mean();
      s.reliability = acc.reliability.mean();
      s.failures = acc.failures;
    }
  }
  return stats;
}

std::vector<PointStats> run_granularity_sweep(const SweepConfig& config) {
  return aggregate_sweep_records(run_sweep_records(config));
}

}  // namespace streamsched
