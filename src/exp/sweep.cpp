#include "exp/sweep.hpp"

#include <algorithm>
#include <cmath>

#include "core/ltf.hpp"
#include "core/rltf.hpp"
#include "schedule/metrics.hpp"
#include "sim/engine.hpp"
#include "util/assert.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace streamsched {

namespace {

// Scheduling attempt with period escalation: the paper's LTF legitimately
// fails when the throughput constraint cannot be met; to keep the latency
// series populated we let an algorithm trade throughput for feasibility
// (the analogue of "LTF needs two more processors" in §4.3) and report the
// inflation factor alongside.
constexpr double kEscalation[] = {1.0, 1.3, 1.7, 2.2, 3.0};

template <typename Scheduler>
std::pair<ScheduleResult, double> schedule_escalating(Scheduler&& scheduler,
                                                      const Instance& inst,
                                                      SchedulerOptions options) {
  ScheduleResult result;
  for (double factor : kEscalation) {
    options.period = inst.period * factor;
    result = scheduler(inst.dag, inst.platform, options);
    if (result.ok()) return {std::move(result), factor};
  }
  return {std::move(result), 0.0};
}

// Measures one scheduled algorithm on one instance. Latencies are
// normalized by the schedule's own period so every series sits on the
// paper's (2S-1)·10(ε+1) scale.
AlgoOutcome measure(const SweepConfig& config, const Instance& inst, ScheduleResult result,
                    double period_factor, Rng& rng) {
  AlgoOutcome out;
  if (!result.ok()) return out;
  const Schedule& schedule = *result.schedule;
  const double norm = normalization_factor(schedule.period(), config.eps);
  out.scheduled = true;
  out.period_factor = period_factor;
  out.stages = num_stages(schedule);
  out.ub = latency_upper_bound(schedule) * norm;
  out.remote_comms = num_remote_comms(schedule);
  out.repair_added = result.repair.added_comms;

  SimOptions sim_options;
  sim_options.num_items = config.sim_items;
  sim_options.warmup_items = config.sim_warmup;
  const SimResult sim0 = simulate(schedule, sim_options);
  out.sim0 = sim0.mean_latency * norm;
  if (!sim0.complete) out.starved = true;

  if (config.crashes > 0) {
    RunningStats crash_latency;
    for (std::size_t trial = 0; trial < config.crash_trials; ++trial) {
      SimOptions crash_options = sim_options;
      const auto set = rng.sample_without_replacement(
          static_cast<std::uint32_t>(inst.platform.num_procs()), config.crashes);
      crash_options.failed.assign(set.begin(), set.end());
      const SimResult simc = simulate(schedule, crash_options);
      if (!simc.complete) {
        out.starved = true;
        continue;
      }
      crash_latency.add(simc.mean_latency * norm);
    }
    out.simc = crash_latency.mean();
  } else {
    out.simc = out.sim0;
  }
  return out;
}

}  // namespace

InstanceRecord run_instance(const SweepConfig& config, double granularity,
                            std::uint64_t instance_seed) {
  InstanceRecord record;
  record.granularity = granularity;

  Rng rng(instance_seed);
  Rng workload_rng = rng.fork(1);
  Rng crash_rng_ltf = rng.fork(2);
  Rng crash_rng_rltf = rng.fork(3);

  const Instance inst = make_instance(config.workload, granularity, config.eps, workload_rng);
  record.period = inst.period;

  // Fault-free reference: R-LTF with ε = 0 at its *own* ε = 0 period (the
  // paper's T = 1/(10(ε+1)) makes the safe system's period a factor ε+1
  // shorter), normalized on the ε = 0 scale.
  record.ff_period = calibrate_period(inst.dag, inst.platform, 0, config.workload.headroom,
                                      config.workload.comm_share);
  ScheduleResult ff = fault_free_schedule(inst.dag, inst.platform, record.ff_period);
  if (!ff.ok()) return record;  // unusable instance (should be rare)
  record.usable = true;
  SimOptions sim_options;
  sim_options.num_items = config.sim_items;
  sim_options.warmup_items = config.sim_warmup;
  sim_options.period = record.ff_period;
  record.ff_sim0 = simulate(*ff.schedule, sim_options).mean_latency *
                   normalization_factor(record.ff_period, 0);

  SchedulerOptions options;
  options.eps = config.eps;
  options.repair = true;  // enforce the paper's ε-failure guarantee

  auto [ltf_result, ltf_factor] =
      schedule_escalating([](const Dag& d, const Platform& p, const SchedulerOptions& o) {
        return ltf_schedule(d, p, o);
      }, inst, options);
  record.ltf = measure(config, inst, std::move(ltf_result), ltf_factor, crash_rng_ltf);
  auto [rltf_result, rltf_factor] =
      schedule_escalating([](const Dag& d, const Platform& p, const SchedulerOptions& o) {
        return rltf_schedule(d, p, o);
      }, inst, options);
  record.rltf = measure(config, inst, std::move(rltf_result), rltf_factor, crash_rng_rltf);
  return record;
}

std::vector<PointStats> run_granularity_sweep(const SweepConfig& config) {
  SS_REQUIRE(config.g_min > 0.0 && config.g_step > 0.0 && config.g_max >= config.g_min,
             "invalid granularity range");
  SS_REQUIRE(config.crashes <= config.eps, "cannot crash more processors than eps");

  std::vector<double> gs;
  for (double g = config.g_min; g <= config.g_max + 1e-9; g += config.g_step) gs.push_back(g);

  const std::size_t total = gs.size() * config.graphs_per_point;
  std::vector<InstanceRecord> records(total);

  Rng seeder(config.seed);
  std::vector<std::uint64_t> seeds(total);
  for (auto& s : seeds) s = seeder();

  parallel_for_indices(total, config.threads == 0 ? 0 : config.threads,
                       [&](std::size_t i) {
                         const std::size_t point = i / config.graphs_per_point;
                         records[i] = run_instance(config, gs[point], seeds[i]);
                       });

  std::vector<PointStats> stats(gs.size());
  for (std::size_t point = 0; point < gs.size(); ++point) {
    PointStats& ps = stats[point];
    ps.granularity = gs[point];

    RunningStats ff, ltf_ub, rltf_ub, ltf_sim0, rltf_sim0, ltf_simc, rltf_simc;
    RunningStats ltf_oh0, rltf_oh0, ltf_ohc, rltf_ohc;
    RunningStats ltf_stages, rltf_stages, ltf_comms, rltf_comms, ltf_rep, rltf_rep;
    RunningStats ltf_pf, rltf_pf;

    for (std::size_t j = 0; j < config.graphs_per_point; ++j) {
      const InstanceRecord& rec = records[point * config.graphs_per_point + j];
      if (!rec.usable) continue;
      ++ps.instances;
      ff.add(rec.ff_sim0);

      if (rec.ltf.scheduled) {
        ltf_ub.add(rec.ltf.ub);
        ltf_sim0.add(rec.ltf.sim0);
        ltf_simc.add(rec.ltf.simc);
        ltf_stages.add(rec.ltf.stages);
        ltf_comms.add(static_cast<double>(rec.ltf.remote_comms));
        ltf_rep.add(rec.ltf.repair_added);
        ltf_pf.add(rec.ltf.period_factor);
        if (rec.ff_sim0 > 0.0) {
          ltf_oh0.add(100.0 * (rec.ltf.sim0 - rec.ff_sim0) / rec.ff_sim0);
          ltf_ohc.add(100.0 * (rec.ltf.simc - rec.ff_sim0) / rec.ff_sim0);
        }
        if (rec.ltf.starved) ++ps.starved;
      } else {
        ++ps.ltf_failures;
      }

      if (rec.rltf.scheduled) {
        rltf_ub.add(rec.rltf.ub);
        rltf_sim0.add(rec.rltf.sim0);
        rltf_simc.add(rec.rltf.simc);
        rltf_stages.add(rec.rltf.stages);
        rltf_comms.add(static_cast<double>(rec.rltf.remote_comms));
        rltf_rep.add(rec.rltf.repair_added);
        rltf_pf.add(rec.rltf.period_factor);
        if (rec.ff_sim0 > 0.0) {
          rltf_oh0.add(100.0 * (rec.rltf.sim0 - rec.ff_sim0) / rec.ff_sim0);
          rltf_ohc.add(100.0 * (rec.rltf.simc - rec.ff_sim0) / rec.ff_sim0);
        }
        if (rec.rltf.starved) ++ps.starved;
      } else {
        ++ps.rltf_failures;
      }
    }

    ps.ff_sim0 = ff.mean();
    ps.ltf_ub = ltf_ub.mean();
    ps.rltf_ub = rltf_ub.mean();
    ps.ltf_sim0 = ltf_sim0.mean();
    ps.rltf_sim0 = rltf_sim0.mean();
    ps.ltf_simc = ltf_simc.mean();
    ps.rltf_simc = rltf_simc.mean();
    ps.ltf_overhead0 = ltf_oh0.mean();
    ps.rltf_overhead0 = rltf_oh0.mean();
    ps.ltf_overheadc = ltf_ohc.mean();
    ps.rltf_overheadc = rltf_ohc.mean();
    ps.ltf_stages = ltf_stages.mean();
    ps.rltf_stages = rltf_stages.mean();
    ps.ltf_comms = ltf_comms.mean();
    ps.rltf_comms = rltf_comms.mean();
    ps.ltf_repairs = ltf_rep.mean();
    ps.rltf_repairs = rltf_rep.mean();
    ps.ltf_period_factor = ltf_pf.mean();
    ps.rltf_period_factor = rltf_pf.mean();
  }
  return stats;
}

}  // namespace streamsched
