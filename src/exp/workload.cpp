#include "exp/workload.hpp"

#include <algorithm>
#include <cmath>

#include "graph/generators.hpp"
#include "graph/granularity.hpp"
#include "graph/levels.hpp"
#include "platform/generators.hpp"
#include "util/assert.hpp"

namespace streamsched {

double calibrate_period(const Dag& dag, const Platform& platform, CopyId eps,
                        double headroom, double comm_share) {
  const double m = static_cast<double>(platform.num_procs());
  double total_work_time = 0.0;
  for (TaskId t = 0; t < dag.num_tasks(); ++t) {
    total_work_time += dag.work(t) * platform.mean_inverse_speed();
  }
  const double total_comm_time = dag.total_volume() * platform.mean_unit_delay();
  const double compute_bound = total_work_time / m;
  const double comm_bound = comm_share * total_comm_time / m;
  double period = headroom * (eps + 1.0) * std::max(compute_bound, comm_bound);
  // Per-task feasibility floor: any single replica — including a fallback
  // replica receiving from all ε+1 copies of each predecessor and feeding
  // all ε+1 copies of each successor — must fit on an otherwise empty
  // processor (compute + receive-port + send-port budgets).
  const double copies = eps + 1.0;
  const double delay = platform.mean_unit_delay();
  for (TaskId t = 0; t < dag.num_tasks(); ++t) {
    double in_volume = 0.0, out_volume = 0.0;
    for (EdgeId e : dag.in_edges(t)) in_volume += dag.edge(e).volume;
    for (EdgeId e : dag.out_edges(t)) out_volume += dag.edge(e).volume;
    const double exec = dag.work(t) / platform.max_speed();
    const double floor = std::max({exec + copies * in_volume * delay,
                                   copies * out_volume * delay, exec});
    period = std::max(period, 1.05 * floor);
  }
  return period;
}

double normalization_factor(double period, CopyId eps) {
  SS_REQUIRE(period > 0.0, "period must be positive");
  return 10.0 * (eps + 1.0) / period;
}

Instance make_instance(const WorkloadParams& params, double granularity, CopyId eps,
                       Rng& rng) {
  SS_REQUIRE(params.v_min >= 2 && params.v_min <= params.v_max, "invalid task count range");

  const auto v = static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(params.v_min),
                      static_cast<std::int64_t>(params.v_max)));
  std::size_t layers = params.layer_fraction > 0.0
                           ? static_cast<std::size_t>(std::ceil(params.layer_fraction *
                                                                static_cast<double>(v)))
                           : static_cast<std::size_t>(std::ceil(std::sqrt(v)));
  layers = std::clamp<std::size_t>(layers, 2, v);

  WeightRanges ranges;
  ranges.work_lo = 50.0;  // rescaled below to match the target granularity
  ranges.work_hi = 150.0;
  ranges.volume_lo = params.volume_lo;
  ranges.volume_hi = params.volume_hi;

  SS_REQUIRE(params.fail_prob_lo >= 0.0 && params.fail_prob_lo <= params.fail_prob_hi &&
                 params.fail_prob_hi < 1.0,
             "invalid failure probability range");
  Instance inst{
      make_random_layered(rng, v, layers, params.edge_prob, ranges),
      make_comm_heterogeneous(rng, params.num_procs, params.delay_lo, params.delay_hi),
  };
  if (params.fail_prob_hi > 0.0) {
    std::vector<double> probs(params.num_procs);
    for (auto& p : probs) {
      p = (params.fail_prob_lo == params.fail_prob_hi)
              ? params.fail_prob_lo
              : rng.uniform(params.fail_prob_lo, params.fail_prob_hi);
    }
    inst.platform.set_failure_probs(std::move(probs));
  }
  scale_to_granularity(inst.dag, inst.platform, granularity);
  inst.granularity = streamsched::granularity(inst.dag, inst.platform);
  inst.period = calibrate_period(inst.dag, inst.platform, eps, params.headroom,
                                 params.comm_share);
  inst.num_tasks = inst.dag.num_tasks();
  inst.num_edges = inst.dag.num_edges();
  return inst;
}

}  // namespace streamsched
