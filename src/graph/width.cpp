#include "graph/width.hpp"

#include <algorithm>
#include <queue>

namespace streamsched {

Matrix<std::uint8_t> transitive_closure(const Dag& dag) {
  const std::size_t n = dag.num_tasks();
  Matrix<std::uint8_t> closure(n, n, 0);
  // Process in reverse topological order; closure(u) = union over direct
  // successors v of ({v} ∪ closure(v)).
  const auto order = dag.topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskId u = *it;
    for (EdgeId e : dag.out_edges(u)) {
      const TaskId v = dag.edge(e).dst;
      closure(u, v) = 1;
      for (std::size_t w = 0; w < n; ++w) {
        if (closure(v, w)) closure(u, w) = 1;
      }
    }
  }
  return closure;
}

namespace {

// Hopcroft–Karp maximum matching on the bipartite graph L = R = tasks with
// an edge (a, b) whenever b is reachable from a.
class HopcroftKarp {
 public:
  HopcroftKarp(const Matrix<std::uint8_t>& adj) : n_(adj.rows()), adj_(&adj) {
    match_l_.assign(n_, kNone);
    match_r_.assign(n_, kNone);
  }

  std::size_t solve() {
    std::size_t matching = 0;
    while (bfs()) {
      for (std::size_t a = 0; a < n_; ++a) {
        if (match_l_[a] == kNone && dfs(a)) ++matching;
      }
    }
    return matching;
  }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  static constexpr std::size_t kInf = static_cast<std::size_t>(-2);

  bool bfs() {
    std::queue<std::size_t> q;
    dist_.assign(n_, kInf);
    for (std::size_t a = 0; a < n_; ++a) {
      if (match_l_[a] == kNone) {
        dist_[a] = 0;
        q.push(a);
      }
    }
    bool found = false;
    while (!q.empty()) {
      const std::size_t a = q.front();
      q.pop();
      for (std::size_t b = 0; b < n_; ++b) {
        if (!(*adj_)(a, b)) continue;
        const std::size_t a2 = match_r_[b];
        if (a2 == kNone) {
          found = true;
        } else if (dist_[a2] == kInf) {
          dist_[a2] = dist_[a] + 1;
          q.push(a2);
        }
      }
    }
    return found;
  }

  bool dfs(std::size_t a) {
    for (std::size_t b = 0; b < n_; ++b) {
      if (!(*adj_)(a, b)) continue;
      const std::size_t a2 = match_r_[b];
      if (a2 == kNone || (dist_[a2] == dist_[a] + 1 && dfs(a2))) {
        match_l_[a] = b;
        match_r_[b] = a;
        return true;
      }
    }
    dist_[a] = kInf;
    return false;
  }

  std::size_t n_;
  const Matrix<std::uint8_t>* adj_;
  std::vector<std::size_t> match_l_, match_r_, dist_;
};

}  // namespace

std::size_t graph_width(const Dag& dag) {
  const std::size_t n = dag.num_tasks();
  if (n == 0) return 0;
  const auto closure = transitive_closure(dag);
  HopcroftKarp hk(closure);
  // Dilworth: minimum chain cover = n − max matching = maximum antichain.
  return n - hk.solve();
}

std::size_t longest_path_tasks(const Dag& dag) {
  if (dag.num_tasks() == 0) return 0;
  std::vector<std::size_t> depth(dag.num_tasks(), 1);
  for (TaskId t : dag.topological_order()) {
    for (EdgeId e : dag.in_edges(t)) {
      depth[t] = std::max(depth[t], depth[dag.edge(e).src] + 1);
    }
  }
  return *std::max_element(depth.begin(), depth.end());
}

}  // namespace streamsched
