#include "graph/dag.hpp"

#include <algorithm>
#include <queue>

#include "util/assert.hpp"

namespace streamsched {

void Dag::check_task(TaskId t) const {
  SS_REQUIRE(t < works_.size(), "task id out of range");
}

TaskId Dag::add_task(std::string name, double work) {
  SS_REQUIRE(work >= 0.0, "task work must be non-negative");
  const auto id = static_cast<TaskId>(works_.size());
  works_.push_back(work);
  names_.push_back(std::move(name));
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

TaskId Dag::add_task(double work) {
  return add_task("t" + std::to_string(works_.size()), work);
}

namespace {
// True when `to` is reachable from `from` (DFS over out-edges).
bool reachable(const Dag& g, TaskId from, TaskId to) {
  if (from == to) return true;
  std::vector<bool> seen(g.num_tasks(), false);
  std::vector<TaskId> stack{from};
  seen[from] = true;
  while (!stack.empty()) {
    const TaskId u = stack.back();
    stack.pop_back();
    for (EdgeId e : g.out_edges(u)) {
      const TaskId v = g.edge(e).dst;
      if (v == to) return true;
      if (!seen[v]) {
        seen[v] = true;
        stack.push_back(v);
      }
    }
  }
  return false;
}
}  // namespace

EdgeId Dag::add_edge(TaskId src, TaskId dst, double volume) {
  check_task(src);
  check_task(dst);
  SS_REQUIRE(src != dst, "self loops are not allowed");
  SS_REQUIRE(volume >= 0.0, "edge volume must be non-negative");
  SS_REQUIRE(!has_edge(src, dst), "duplicate edge");
  SS_REQUIRE(!reachable(*this, dst, src), "edge would create a cycle");
  const auto id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{src, dst, volume});
  out_[src].push_back(id);
  in_[dst].push_back(id);
  return id;
}

double Dag::work(TaskId t) const {
  check_task(t);
  return works_[t];
}

void Dag::set_work(TaskId t, double work) {
  check_task(t);
  SS_REQUIRE(work >= 0.0, "task work must be non-negative");
  works_[t] = work;
}

const std::string& Dag::name(TaskId t) const {
  check_task(t);
  return names_[t];
}

const Dag::Edge& Dag::edge(EdgeId e) const {
  SS_REQUIRE(e < edges_.size(), "edge id out of range");
  return edges_[e];
}

void Dag::set_volume(EdgeId e, double volume) {
  SS_REQUIRE(e < edges_.size(), "edge id out of range");
  SS_REQUIRE(volume >= 0.0, "edge volume must be non-negative");
  edges_[e].volume = volume;
}

std::span<const EdgeId> Dag::out_edges(TaskId t) const {
  check_task(t);
  return out_[t];
}

std::span<const EdgeId> Dag::in_edges(TaskId t) const {
  check_task(t);
  return in_[t];
}

std::vector<TaskId> Dag::successors(TaskId t) const {
  std::vector<TaskId> result;
  result.reserve(out_edges(t).size());
  for (EdgeId e : out_edges(t)) result.push_back(edges_[e].dst);
  return result;
}

std::vector<TaskId> Dag::predecessors(TaskId t) const {
  std::vector<TaskId> result;
  result.reserve(in_edges(t).size());
  for (EdgeId e : in_edges(t)) result.push_back(edges_[e].src);
  return result;
}

bool Dag::has_edge(TaskId src, TaskId dst) const {
  return find_edge(src, dst) != kInvalidEdge;
}

EdgeId Dag::find_edge(TaskId src, TaskId dst) const {
  check_task(src);
  check_task(dst);
  for (EdgeId e : out_[src]) {
    if (edges_[e].dst == dst) return e;
  }
  return kInvalidEdge;
}

std::vector<TaskId> Dag::entries() const {
  std::vector<TaskId> result;
  for (TaskId t = 0; t < num_tasks(); ++t) {
    if (in_[t].empty()) result.push_back(t);
  }
  return result;
}

std::vector<TaskId> Dag::exits() const {
  std::vector<TaskId> result;
  for (TaskId t = 0; t < num_tasks(); ++t) {
    if (out_[t].empty()) result.push_back(t);
  }
  return result;
}

std::vector<TaskId> Dag::topological_order() const {
  std::vector<std::size_t> in_count(num_tasks());
  for (TaskId t = 0; t < num_tasks(); ++t) in_count[t] = in_[t].size();
  // Min-heap on task id for a deterministic order.
  std::priority_queue<TaskId, std::vector<TaskId>, std::greater<>> ready;
  for (TaskId t = 0; t < num_tasks(); ++t) {
    if (in_count[t] == 0) ready.push(t);
  }
  std::vector<TaskId> order;
  order.reserve(num_tasks());
  while (!ready.empty()) {
    const TaskId u = ready.top();
    ready.pop();
    order.push_back(u);
    for (EdgeId e : out_[u]) {
      const TaskId v = edges_[e].dst;
      if (--in_count[v] == 0) ready.push(v);
    }
  }
  SS_CHECK(order.size() == num_tasks(), "graph contains a cycle");
  return order;
}

double Dag::total_work() const {
  double sum = 0.0;
  for (double w : works_) sum += w;
  return sum;
}

double Dag::total_volume() const {
  double sum = 0.0;
  for (const Edge& e : edges_) sum += e.volume;
  return sum;
}

Dag Dag::reversed() const {
  Dag rev;
  for (TaskId t = 0; t < num_tasks(); ++t) rev.add_task(names_[t], works_[t]);
  // Preserve edge ids: edge e of the reverse graph corresponds to edge e of
  // the original with endpoints swapped (schedule mirroring relies on this).
  for (const Edge& e : edges_) {
    rev.edges_.push_back(Edge{e.dst, e.src, e.volume});
    const auto id = static_cast<EdgeId>(rev.edges_.size() - 1);
    rev.out_[e.dst].push_back(id);
    rev.in_[e.src].push_back(id);
  }
  return rev;
}

}  // namespace streamsched
