#include "graph/dot.hpp"

#include <iomanip>
#include <sstream>

namespace streamsched {

std::string to_dot(const Dag& dag, const std::string& graph_name) {
  std::ostringstream os;
  os << "digraph " << graph_name << " {\n";
  os << "  rankdir=TB;\n";
  os << std::fixed << std::setprecision(1);
  for (TaskId t = 0; t < dag.num_tasks(); ++t) {
    os << "  n" << t << " [label=\"" << dag.name(t) << "\\nw=" << dag.work(t) << "\"];\n";
  }
  for (EdgeId e = 0; e < dag.num_edges(); ++e) {
    const auto& edge = dag.edge(e);
    os << "  n" << edge.src << " -> n" << edge.dst << " [label=\"" << edge.volume << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace streamsched
