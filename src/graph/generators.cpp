#include "graph/generators.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace streamsched {

namespace {
double draw_work(Rng& rng, const WeightRanges& r) { return rng.uniform(r.work_lo, r.work_hi); }
double draw_volume(Rng& rng, const WeightRanges& r) {
  return rng.uniform(r.volume_lo, r.volume_hi);
}
}  // namespace

Dag make_chain(std::size_t n, double work, double volume) {
  SS_REQUIRE(n >= 1, "chain needs at least one task");
  Dag d;
  for (std::size_t i = 0; i < n; ++i) d.add_task(work);
  for (std::size_t i = 0; i + 1 < n; ++i)
    d.add_edge(static_cast<TaskId>(i), static_cast<TaskId>(i + 1), volume);
  return d;
}

Dag make_fork_join(std::size_t branches, double work, double volume) {
  SS_REQUIRE(branches >= 1, "fork-join needs at least one branch");
  Dag d;
  const TaskId src = d.add_task("source", work);
  std::vector<TaskId> mid;
  mid.reserve(branches);
  for (std::size_t i = 0; i < branches; ++i) mid.push_back(d.add_task(work));
  const TaskId snk = d.add_task("sink", work);
  for (TaskId t : mid) {
    d.add_edge(src, t, volume);
    d.add_edge(t, snk, volume);
  }
  return d;
}

Dag make_diamond(double work, double volume) { return make_fork_join(2, work, volume); }

Dag make_out_tree(std::size_t depth, std::size_t arity, double work, double volume) {
  SS_REQUIRE(depth >= 1 && arity >= 1, "tree needs depth >= 1 and arity >= 1");
  Dag d;
  std::vector<TaskId> frontier{d.add_task("root", work)};
  for (std::size_t level = 1; level < depth; ++level) {
    std::vector<TaskId> next;
    for (TaskId parent : frontier) {
      for (std::size_t c = 0; c < arity; ++c) {
        const TaskId child = d.add_task(work);
        d.add_edge(parent, child, volume);
        next.push_back(child);
      }
    }
    frontier = std::move(next);
  }
  return d;
}

Dag make_in_tree(std::size_t depth, std::size_t arity, double work, double volume) {
  // Build the out-tree and reverse it; task ids change roles but the shape
  // is the mirror image, which is all callers rely on.
  return make_out_tree(depth, arity, work, volume).reversed();
}

Dag make_random_layered(Rng& rng, std::size_t num_tasks, std::size_t num_layers,
                        double edge_prob, const WeightRanges& ranges) {
  SS_REQUIRE(num_tasks >= num_layers, "need at least one task per layer");
  SS_REQUIRE(num_layers >= 1, "need at least one layer");
  Dag d;
  for (std::size_t i = 0; i < num_tasks; ++i) d.add_task(draw_work(rng, ranges));

  // Assign one task to each layer, then distribute the rest uniformly.
  std::vector<std::vector<TaskId>> layers(num_layers);
  std::vector<TaskId> ids(num_tasks);
  for (std::size_t i = 0; i < num_tasks; ++i) ids[i] = static_cast<TaskId>(i);
  rng.shuffle(ids);
  for (std::size_t l = 0; l < num_layers; ++l) layers[l].push_back(ids[l]);
  for (std::size_t i = num_layers; i < num_tasks; ++i) {
    const auto l = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(num_layers) - 1));
    layers[l].push_back(ids[i]);
  }

  for (std::size_t l = 0; l + 1 < num_layers; ++l) {
    for (TaskId a : layers[l]) {
      for (TaskId b : layers[l + 1]) {
        if (rng.bernoulli(edge_prob)) d.add_edge(a, b, draw_volume(rng, ranges));
      }
    }
    // Guarantee forward connectivity: every task in layer l feeds someone
    // and every task in layer l+1 is fed by someone.
    for (TaskId a : layers[l]) {
      if (d.out_degree(a) == 0) {
        d.add_edge(a, rng.pick(layers[l + 1]), draw_volume(rng, ranges));
      }
    }
    for (TaskId b : layers[l + 1]) {
      if (d.in_degree(b) == 0) {
        d.add_edge(rng.pick(layers[l]), b, draw_volume(rng, ranges));
      }
    }
  }
  return d;
}

Dag make_random_erdos(Rng& rng, std::size_t num_tasks, double edge_prob,
                      const WeightRanges& ranges) {
  SS_REQUIRE(num_tasks >= 1, "need at least one task");
  Dag d;
  for (std::size_t i = 0; i < num_tasks; ++i) d.add_task(draw_work(rng, ranges));
  std::vector<TaskId> order(num_tasks);
  for (std::size_t i = 0; i < num_tasks; ++i) order[i] = static_cast<TaskId>(i);
  rng.shuffle(order);
  for (std::size_t i = 0; i < num_tasks; ++i) {
    for (std::size_t j = i + 1; j < num_tasks; ++j) {
      if (rng.bernoulli(edge_prob)) d.add_edge(order[i], order[j], draw_volume(rng, ranges));
    }
  }
  return d;
}

namespace {

// Recursively emits a series-parallel block with ~budget tasks; returns its
// (source, sink) terminals.
std::pair<TaskId, TaskId> sp_block(Dag& d, Rng& rng, std::size_t budget,
                                   const WeightRanges& ranges) {
  if (budget <= 1) {
    const TaskId t = d.add_task(draw_work(rng, ranges));
    return {t, t};
  }
  if (budget == 2) {
    const TaskId a = d.add_task(draw_work(rng, ranges));
    const TaskId b = d.add_task(draw_work(rng, ranges));
    d.add_edge(a, b, draw_volume(rng, ranges));
    return {a, b};
  }
  if (rng.bernoulli(0.5)) {
    // Series composition.
    const auto k = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(budget) - 1));
    const auto [s1, t1] = sp_block(d, rng, k, ranges);
    const auto [s2, t2] = sp_block(d, rng, budget - k, ranges);
    d.add_edge(t1, s2, draw_volume(rng, ranges));
    return {s1, t2};
  }
  // Parallel composition between fresh terminals.
  const TaskId src = d.add_task(draw_work(rng, ranges));
  const TaskId snk = d.add_task(draw_work(rng, ranges));
  std::size_t inner = budget - 2;
  const auto max_branches = std::min<std::size_t>(3, std::max<std::size_t>(2, inner));
  const auto branches = static_cast<std::size_t>(
      rng.uniform_int(2, static_cast<std::int64_t>(max_branches)));
  for (std::size_t b = 0; b < branches; ++b) {
    const std::size_t share =
        (b + 1 == branches) ? std::max<std::size_t>(1, inner)
                            : std::max<std::size_t>(1, inner / (branches - b));
    inner -= std::min(inner, share);
    const auto [s, t] = sp_block(d, rng, share, ranges);
    d.add_edge(src, s, draw_volume(rng, ranges));
    d.add_edge(t, snk, draw_volume(rng, ranges));
  }
  return {src, snk};
}

}  // namespace

Dag make_random_series_parallel(Rng& rng, std::size_t approx_tasks,
                                const WeightRanges& ranges) {
  SS_REQUIRE(approx_tasks >= 1, "need at least one task");
  Dag d;
  sp_block(d, rng, approx_tasks, ranges);
  return d;
}

Dag make_wavefront(std::size_t rows, std::size_t cols, double work, double volume) {
  SS_REQUIRE(rows >= 1 && cols >= 1, "wavefront needs a non-empty grid");
  Dag d;
  std::vector<TaskId> ids(rows * cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      ids[i * cols + j] =
          d.add_task("c" + std::to_string(i) + "_" + std::to_string(j), work);
    }
  }
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      if (i + 1 < rows) d.add_edge(ids[i * cols + j], ids[(i + 1) * cols + j], volume);
      if (j + 1 < cols) d.add_edge(ids[i * cols + j], ids[i * cols + j + 1], volume);
    }
  }
  return d;
}

Dag make_butterfly(std::size_t log2_width, double work, double volume) {
  SS_REQUIRE(log2_width >= 1 && log2_width < 16, "butterfly width out of range");
  const std::size_t width = std::size_t{1} << log2_width;
  Dag d;
  std::vector<TaskId> prev(width), next(width);
  for (std::size_t k = 0; k < width; ++k) {
    prev[k] = d.add_task("b0_" + std::to_string(k), work);
  }
  for (std::size_t level = 0; level < log2_width; ++level) {
    for (std::size_t k = 0; k < width; ++k) {
      next[k] = d.add_task("b" + std::to_string(level + 1) + "_" + std::to_string(k), work);
    }
    const std::size_t stride = std::size_t{1} << level;
    for (std::size_t k = 0; k < width; ++k) {
      d.add_edge(prev[k], next[k], volume);
      d.add_edge(prev[k], next[k ^ stride], volume);
    }
    prev = next;
  }
  return d;
}

Dag make_paper_figure1() {
  Dag d;
  const TaskId t1 = d.add_task("t1", 15.0);
  const TaskId t2 = d.add_task("t2", 15.0);
  const TaskId t3 = d.add_task("t3", 15.0);
  const TaskId t4 = d.add_task("t4", 15.0);
  d.add_edge(t1, t2, 2.0);
  d.add_edge(t1, t3, 2.0);
  d.add_edge(t2, t4, 2.0);
  d.add_edge(t3, t4, 2.0);
  return d;
}

Dag make_paper_figure2() {
  Dag d;
  const TaskId t1 = d.add_task("t1", 15.0);
  const TaskId t2 = d.add_task("t2", 6.0);
  const TaskId t3 = d.add_task("t3", 20.0);
  const TaskId t4 = d.add_task("t4", 5.0);
  const TaskId t5 = d.add_task("t5", 5.0);
  const TaskId t6 = d.add_task("t6", 6.0);
  const TaskId t7 = d.add_task("t7", 15.0);
  d.add_edge(t1, t2, 2.0);
  d.add_edge(t1, t3, 2.0);
  d.add_edge(t1, t4, 2.0);
  d.add_edge(t1, t5, 2.0);
  d.add_edge(t2, t6, 2.0);
  d.add_edge(t4, t6, 2.0);
  d.add_edge(t5, t6, 2.0);
  d.add_edge(t3, t7, 2.0);
  d.add_edge(t6, t7, 2.0);
  return d;
}

}  // namespace streamsched
