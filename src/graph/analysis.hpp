// Structural graph analysis: two-terminal series-parallel recognition and
// summary statistics.
//
// The paper's §4.2 communication bound e(ε+1) is stated "for any
// series-parallel graph"; is_series_parallel lets tests and benches select
// exactly that class. Recognition uses the classic reduction algorithm:
// repeatedly merge parallel edges and contract series vertices (in-degree
// = out-degree = 1); a two-terminal SP graph reduces to a single edge.
#pragma once

#include <cstddef>

#include "graph/dag.hpp"

namespace streamsched {

/// True when the DAG has a single source s and single sink t and is
/// two-terminal series-parallel between them. Single-task graphs count as
/// trivially series-parallel.
[[nodiscard]] bool is_series_parallel(const Dag& dag);

/// Summary statistics of a task graph on its own (platform-independent).
struct GraphStats {
  std::size_t tasks = 0;
  std::size_t edges = 0;
  std::size_t entries = 0;
  std::size_t exits = 0;
  std::size_t width = 0;        ///< maximum antichain (Dilworth)
  std::size_t depth = 0;        ///< longest path, in tasks
  std::size_t max_in_degree = 0;
  std::size_t max_out_degree = 0;
  double density = 0.0;         ///< e / (v*(v-1)/2)
  double mean_work = 0.0;
  double mean_volume = 0.0;
  bool series_parallel = false;
};

[[nodiscard]] GraphStats analyze(const Dag& dag);

}  // namespace streamsched
