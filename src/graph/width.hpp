// Exact graph width ω: the maximum number of pairwise independent tasks
// (maximum antichain of the precedence order). The paper uses ω to bound
// the ready-list size; we also report it in experiment summaries.
//
// By Dilworth's theorem the maximum antichain size equals the minimum
// number of chains covering the DAG, computed as v − |maximum matching| in
// the bipartite "reachability split" graph over the transitive closure.
#pragma once

#include <cstddef>

#include "graph/dag.hpp"
#include "util/matrix.hpp"

namespace streamsched {

/// Boolean transitive closure: closure(a, b) != 0 iff b is reachable from
/// a via one or more edges (irreflexive). Stored as uint8_t because
/// std::vector<bool>'s proxy references do not satisfy Matrix<T>.
[[nodiscard]] Matrix<std::uint8_t> transitive_closure(const Dag& dag);

/// Exact width via Dilworth / Hopcroft–Karp. O(E' * sqrt(V)) on the
/// closure graph; fine for the paper's graph sizes (v <= a few hundred).
[[nodiscard]] std::size_t graph_width(const Dag& dag);

/// Number of "levels": length (in tasks) of the longest path. Useful as a
/// quick lower bound for the number of pipeline stages of spread mappings.
[[nodiscard]] std::size_t longest_path_tasks(const Dag& dag);

}  // namespace streamsched
