// Graphviz DOT export for task graphs (handy for debugging workloads and
// documenting examples).
#pragma once

#include <string>

#include "graph/dag.hpp"

namespace streamsched {

/// DOT digraph with task names, work and edge volumes as labels.
[[nodiscard]] std::string to_dot(const Dag& dag, const std::string& graph_name = "G");

}  // namespace streamsched
