// Task graph generators: deterministic structured families (chain,
// fork-join, diamond, trees, series-parallel) plus the random families used
// by the paper's evaluation (layered and Erdős–Rényi-style DAGs with
// uniformly drawn node/edge weights), and the two concrete graphs from the
// paper's Figures 1 and 2.
#pragma once

#include "graph/dag.hpp"
#include "util/rng.hpp"

namespace streamsched {

/// Uniform sampling ranges for task work and edge volume.
struct WeightRanges {
  double work_lo = 50.0;
  double work_hi = 150.0;
  double volume_lo = 50.0;
  double volume_hi = 150.0;
};

/// t0 -> t1 -> ... -> t(n-1); all works/volumes equal.
[[nodiscard]] Dag make_chain(std::size_t n, double work, double volume);

/// One source, `branches` parallel tasks, one sink.
[[nodiscard]] Dag make_fork_join(std::size_t branches, double work, double volume);

/// The classic 4-task diamond: t0 -> {t1, t2} -> t3.
[[nodiscard]] Dag make_diamond(double work, double volume);

/// Out-tree (root fans out) with the given depth (levels) and arity.
[[nodiscard]] Dag make_out_tree(std::size_t depth, std::size_t arity, double work,
                                double volume);

/// In-tree (leaves reduce to a root sink).
[[nodiscard]] Dag make_in_tree(std::size_t depth, std::size_t arity, double work,
                               double volume);

/// Random layered DAG: `num_tasks` tasks spread over `num_layers` layers;
/// each consecutive-layer pair (a, b) is connected with probability
/// `edge_prob`; every non-entry task is guaranteed at least one
/// predecessor and every non-exit task at least one successor.
[[nodiscard]] Dag make_random_layered(Rng& rng, std::size_t num_tasks, std::size_t num_layers,
                                      double edge_prob, const WeightRanges& ranges);

/// Random DAG on a random topological order: for i < j, edge with
/// probability `edge_prob`.
[[nodiscard]] Dag make_random_erdos(Rng& rng, std::size_t num_tasks, double edge_prob,
                                    const WeightRanges& ranges);

/// Random series-parallel graph with approximately `approx_tasks` tasks
/// (exact count depends on the recursive decomposition). Single source,
/// single sink.
[[nodiscard]] Dag make_random_series_parallel(Rng& rng, std::size_t approx_tasks,
                                              const WeightRanges& ranges);

/// 2D wavefront (Gauss-Seidel style sweep): rows x cols grid; cell (i, j)
/// depends on (i-1, j) and (i, j-1). Single entry (0,0), single exit.
[[nodiscard]] Dag make_wavefront(std::size_t rows, std::size_t cols, double work,
                                 double volume);

/// Butterfly/FFT exchange network: `stages` levels of 2^log2_width nodes;
/// node k of level l feeds nodes k and k XOR 2^l of level l+1.
[[nodiscard]] Dag make_butterfly(std::size_t log2_width, double work, double volume);

/// Paper Figure 1(a): 4-task diamond, all works 15, all volumes 2.
[[nodiscard]] Dag make_paper_figure1();

/// Paper Figure 2(a) / §4.3 worked example: 7 tasks.
/// t1 -> {t2, t3, t4, t5}; {t2, t4, t5} -> t6; {t3, t6} -> t7.
/// Works 15, 6, 20, 5, 5, 6, 15; all volumes 2. Task ti is TaskId i-1.
[[nodiscard]] Dag make_paper_figure2();

}  // namespace streamsched
