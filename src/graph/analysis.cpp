#include "graph/analysis.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "graph/width.hpp"

namespace streamsched {

bool is_series_parallel(const Dag& dag) {
  const std::size_t n = dag.num_tasks();
  if (n == 0) return false;
  if (n == 1) return dag.num_edges() == 0;
  const auto entries = dag.entries();
  const auto exits = dag.exits();
  if (entries.size() != 1 || exits.size() != 1) return false;
  const TaskId source = entries.front();
  const TaskId sink = exits.front();

  // Work on a multigraph copy (reductions can create parallel edges).
  std::vector<std::pair<TaskId, TaskId>> edges;
  edges.reserve(dag.num_edges());
  for (EdgeId e = 0; e < dag.num_edges(); ++e) {
    edges.emplace_back(dag.edge(e).src, dag.edge(e).dst);
  }

  bool changed = true;
  while (changed) {
    changed = false;

    // Parallel reduction: collapse duplicate (u, v) pairs.
    std::sort(edges.begin(), edges.end());
    const auto last = std::unique(edges.begin(), edges.end());
    if (last != edges.end()) {
      edges.erase(last, edges.end());
      changed = true;
    }

    // Series reduction: contract any internal vertex with exactly one
    // incoming and one outgoing edge.
    std::vector<std::size_t> in_count(n, 0), out_count(n, 0);
    for (const auto& [u, v] : edges) {
      ++out_count[u];
      ++in_count[v];
    }
    for (TaskId w = 0; w < n && !changed; ++w) {
      if (w == source || w == sink) continue;
      if (in_count[w] != 1 || out_count[w] != 1) continue;
      TaskId from = kInvalidTask, to = kInvalidTask;
      std::vector<std::pair<TaskId, TaskId>> rest;
      rest.reserve(edges.size() - 1);
      for (const auto& [u, v] : edges) {
        if (v == w) {
          from = u;
        } else if (u == w) {
          to = v;
        } else {
          rest.push_back({u, v});
        }
      }
      if (from == to) return false;  // would need a self loop: not SP
      rest.emplace_back(from, to);
      edges = std::move(rest);
      changed = true;
    }
  }
  return edges.size() == 1 && edges.front() == std::make_pair(source, sink);
}

GraphStats analyze(const Dag& dag) {
  GraphStats stats;
  stats.tasks = dag.num_tasks();
  stats.edges = dag.num_edges();
  stats.entries = dag.entries().size();
  stats.exits = dag.exits().size();
  if (stats.tasks == 0) return stats;
  stats.width = graph_width(dag);
  stats.depth = longest_path_tasks(dag);
  for (TaskId t = 0; t < dag.num_tasks(); ++t) {
    stats.max_in_degree = std::max(stats.max_in_degree, dag.in_degree(t));
    stats.max_out_degree = std::max(stats.max_out_degree, dag.out_degree(t));
  }
  const double pairs = static_cast<double>(stats.tasks) *
                       (static_cast<double>(stats.tasks) - 1.0) / 2.0;
  stats.density = pairs > 0 ? static_cast<double>(stats.edges) / pairs : 0.0;
  stats.mean_work = dag.total_work() / static_cast<double>(stats.tasks);
  stats.mean_volume =
      stats.edges > 0 ? dag.total_volume() / static_cast<double>(stats.edges) : 0.0;
  stats.series_parallel = is_series_parallel(dag);
  return stats;
}

}  // namespace streamsched
