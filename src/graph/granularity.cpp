#include "graph/granularity.hpp"

#include <limits>

#include "util/assert.hpp"

namespace streamsched {

double total_slowest_computation(const Dag& dag, const Platform& platform) {
  const double slowest = platform.min_speed();
  return dag.total_work() / slowest;
}

double total_slowest_communication(const Dag& dag, const Platform& platform) {
  return dag.total_volume() * platform.max_unit_delay();
}

double granularity(const Dag& dag, const Platform& platform) {
  const double comm = total_slowest_communication(dag, platform);
  if (comm <= 0.0) return std::numeric_limits<double>::infinity();
  return total_slowest_computation(dag, platform) / comm;
}

double scale_to_granularity(Dag& dag, const Platform& platform, double target) {
  SS_REQUIRE(target > 0.0, "target granularity must be positive");
  const double comm = total_slowest_communication(dag, platform);
  SS_REQUIRE(comm > 0.0, "graph has no communication; granularity undefined");
  const double comp = total_slowest_computation(dag, platform);
  SS_REQUIRE(comp > 0.0, "graph has no work; cannot scale");
  const double factor = target * comm / comp;
  for (TaskId t = 0; t < dag.num_tasks(); ++t) {
    dag.set_work(t, dag.work(t) * factor);
  }
  return factor;
}

}  // namespace streamsched
