// Weighted directed acyclic task graph.
//
// Tasks carry a `work` amount (execution requirement; the time on a
// processor of speed s is work/s) and edges carry a data `volume` (the
// transfer over a link with unit delay d costs volume*d). This is the
// application model of Benoit/Hakem/Robert 2009, §2.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace streamsched {

class Dag {
 public:
  struct Edge {
    TaskId src = kInvalidTask;
    TaskId dst = kInvalidTask;
    double volume = 0.0;
  };

  Dag() = default;

  /// Adds a task with the given execution requirement (work > 0 expected
  /// for schedulers; 0 is allowed for structural experiments).
  TaskId add_task(std::string name, double work);

  /// Adds a task with an auto-generated name "t<i>".
  TaskId add_task(double work);

  /// Adds a directed edge src -> dst. Rejects self loops, duplicate edges
  /// and edges that would create a cycle.
  EdgeId add_edge(TaskId src, TaskId dst, double volume);

  [[nodiscard]] std::size_t num_tasks() const { return works_.size(); }
  [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }

  [[nodiscard]] double work(TaskId t) const;
  void set_work(TaskId t, double work);
  [[nodiscard]] const std::string& name(TaskId t) const;

  [[nodiscard]] const Edge& edge(EdgeId e) const;
  void set_volume(EdgeId e, double volume);

  /// Edge ids leaving / entering a task.
  [[nodiscard]] std::span<const EdgeId> out_edges(TaskId t) const;
  [[nodiscard]] std::span<const EdgeId> in_edges(TaskId t) const;

  [[nodiscard]] std::size_t out_degree(TaskId t) const { return out_edges(t).size(); }
  [[nodiscard]] std::size_t in_degree(TaskId t) const { return in_edges(t).size(); }

  /// Immediate successors / predecessors (Γ+ / Γ−), in edge insertion order.
  [[nodiscard]] std::vector<TaskId> successors(TaskId t) const;
  [[nodiscard]] std::vector<TaskId> predecessors(TaskId t) const;

  [[nodiscard]] bool has_edge(TaskId src, TaskId dst) const;
  /// Edge id of src->dst, or kInvalidEdge.
  [[nodiscard]] EdgeId find_edge(TaskId src, TaskId dst) const;

  /// Tasks with no predecessors / successors, ascending id order.
  [[nodiscard]] std::vector<TaskId> entries() const;
  [[nodiscard]] std::vector<TaskId> exits() const;

  /// A topological order (Kahn; deterministic: smallest id first).
  [[nodiscard]] std::vector<TaskId> topological_order() const;

  [[nodiscard]] double total_work() const;
  [[nodiscard]] double total_volume() const;

  /// The graph with every edge reversed (same task ids, works, volumes).
  [[nodiscard]] Dag reversed() const;

 private:
  void check_task(TaskId t) const;

  std::vector<double> works_;
  std::vector<std::string> names_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
};

}  // namespace streamsched
