// Granularity g(G, P) — paper §2: the ratio of the sum of the slowest
// computation time of each task to the sum of the slowest communication
// time along each edge. Computation-heavy graphs have g > 1;
// communication-heavy graphs g < 1. The paper sweeps g from 0.2 to 2.0.
#pragma once

#include "graph/dag.hpp"
#include "platform/platform.hpp"

namespace streamsched {

/// Sum over tasks of work(t) / min_speed.
[[nodiscard]] double total_slowest_computation(const Dag& dag, const Platform& platform);

/// Sum over edges of volume(e) * max_unit_delay.
[[nodiscard]] double total_slowest_communication(const Dag& dag, const Platform& platform);

/// g(G, P). Requires at least one edge with positive volume (otherwise the
/// ratio is undefined and this returns +infinity).
[[nodiscard]] double granularity(const Dag& dag, const Platform& platform);

/// Scales every task's work by a common factor so g(G, P) == target.
/// Returns the factor applied. Requires target > 0 and a graph with
/// positive total work and positive total communication.
double scale_to_granularity(Dag& dag, const Platform& platform, double target);

}  // namespace streamsched
