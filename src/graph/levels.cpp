#include "graph/levels.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace streamsched {

std::vector<double> average_exec_times(const Dag& dag, const Platform& platform) {
  const double inv = platform.mean_inverse_speed();
  std::vector<double> avg(dag.num_tasks());
  for (TaskId t = 0; t < dag.num_tasks(); ++t) avg[t] = dag.work(t) * inv;
  return avg;
}

std::vector<double> average_comm_times(const Dag& dag, const Platform& platform) {
  const double delay = platform.mean_unit_delay();
  std::vector<double> avg(dag.num_edges());
  for (EdgeId e = 0; e < dag.num_edges(); ++e) avg[e] = dag.edge(e).volume * delay;
  return avg;
}

std::vector<double> top_levels(const Dag& dag, const Platform& platform) {
  const auto exec = average_exec_times(dag, platform);
  const auto comm = average_comm_times(dag, platform);
  std::vector<double> tl(dag.num_tasks(), 0.0);
  for (TaskId t : dag.topological_order()) {
    for (EdgeId e : dag.in_edges(t)) {
      const TaskId p = dag.edge(e).src;
      tl[t] = std::max(tl[t], tl[p] + exec[p] + comm[e]);
    }
  }
  return tl;
}

std::vector<double> bottom_levels(const Dag& dag, const Platform& platform) {
  const auto exec = average_exec_times(dag, platform);
  const auto comm = average_comm_times(dag, platform);
  std::vector<double> bl(dag.num_tasks(), 0.0);
  const auto order = dag.topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskId t = *it;
    bl[t] = exec[t];
    for (EdgeId e : dag.out_edges(t)) {
      const TaskId s = dag.edge(e).dst;
      bl[t] = std::max(bl[t], exec[t] + comm[e] + bl[s]);
    }
  }
  return bl;
}

std::vector<double> priorities(const Dag& dag, const Platform& platform) {
  const auto tl = top_levels(dag, platform);
  const auto bl = bottom_levels(dag, platform);
  std::vector<double> prio(dag.num_tasks());
  for (TaskId t = 0; t < dag.num_tasks(); ++t) prio[t] = tl[t] + bl[t];
  return prio;
}

double critical_path_length(const Dag& dag, const Platform& platform) {
  if (dag.num_tasks() == 0) return 0.0;
  const auto prio = priorities(dag, platform);
  return *std::max_element(prio.begin(), prio.end());
}

}  // namespace streamsched
