// Top level, bottom level and task priorities (paper §2).
//
// Path lengths are "the average sum of edge weights and node weights" [9]:
// on a heterogeneous platform a task's cost is averaged over processors and
// an edge's cost over distinct processor pairs. Priorities tl + bl drive
// the ready-list ordering in LTF / R-LTF.
#pragma once

#include <vector>

#include "graph/dag.hpp"
#include "platform/platform.hpp"

namespace streamsched {

/// Average execution time of each task over all processors.
[[nodiscard]] std::vector<double> average_exec_times(const Dag& dag, const Platform& platform);

/// Average communication time of each edge over distinct processor pairs.
[[nodiscard]] std::vector<double> average_comm_times(const Dag& dag, const Platform& platform);

/// tl(t): longest average path length from an entry node to t, excluding
/// E(t) itself. Entry nodes have tl = 0.
[[nodiscard]] std::vector<double> top_levels(const Dag& dag, const Platform& platform);

/// bl(t): longest average path length from t to an exit node, including
/// E(t). Exit nodes have bl = E(t).
[[nodiscard]] std::vector<double> bottom_levels(const Dag& dag, const Platform& platform);

/// Priority tl(t) + bl(t). Tasks on a critical path share the maximum value.
[[nodiscard]] std::vector<double> priorities(const Dag& dag, const Platform& platform);

/// Length of the critical path (max over tasks of tl + bl).
[[nodiscard]] double critical_path_length(const Dag& dag, const Platform& platform);

}  // namespace streamsched
