// Tests for the schedule validator: a valid hand-built schedule passes and
// every violation class is individually detected.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "helpers.hpp"
#include "platform/generators.hpp"
#include "schedule/metrics.hpp"
#include "schedule/validate.hpp"

namespace streamsched {
namespace {

using test::place_at;
using test::wire;

// A correct two-task, two-copy schedule used as the baseline.
struct ValidateFixture : ::testing::Test {
  Dag dag = make_chain(2, 4.0, 2.0);
  Platform platform = Platform::uniform(4, 1.0, 0.5);  // comm = 1.0

  Schedule valid_schedule() {
    Schedule s(dag, platform, 1, 100.0);
    place_at(s, {0, 0}, 0, 0.0);
    place_at(s, {0, 1}, 1, 0.0);
    // Chains: copy 0 on P0 -> P2, copy 1 on P1 -> P3, comm takes 1.
    s.place({1, 0}, 2, 5.0, 9.0, 2);
    s.place({1, 1}, 3, 5.0, 9.0, 2);
    wire(s, 0, 0, 1, 0);
    wire(s, 0, 1, 1, 1);
    return s;
  }
};

TEST_F(ValidateFixture, ValidSchedulePasses) {
  const Schedule s = valid_schedule();
  const auto report = validate_schedule(s);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.summary(), "valid");
}

TEST_F(ValidateFixture, DetectsUnplacedReplica) {
  Schedule s(dag, platform, 1, 100.0);
  place_at(s, {0, 0}, 0, 0.0);
  const auto report = validate_schedule(s);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.count(ViolationCode::kUnplacedReplica), 3u);
}

TEST_F(ValidateFixture, DetectsDuplicateProcessor) {
  Schedule s(dag, platform, 1, 100.0);
  place_at(s, {0, 0}, 0, 0.0);
  place_at(s, {0, 1}, 0, 4.0);  // same processor!
  s.place({1, 0}, 2, 5.0, 9.0, 2);
  s.place({1, 1}, 3, 5.0, 9.0, 2);
  wire(s, 0, 0, 1, 0);
  wire(s, 0, 1, 1, 1);
  const auto report = validate_schedule(s);
  EXPECT_GE(report.count(ViolationCode::kDuplicateProcessor), 1u);
}

TEST_F(ValidateFixture, DetectsComputeOverload) {
  Schedule s(dag, platform, 1, 3.0);  // period 3 < exec 4
  place_at(s, {0, 0}, 0, 0.0);
  place_at(s, {0, 1}, 1, 0.0);
  s.place({1, 0}, 2, 5.0, 9.0, 2);
  s.place({1, 1}, 3, 5.0, 9.0, 2);
  wire(s, 0, 0, 1, 0);
  wire(s, 0, 1, 1, 1);
  const auto report = validate_schedule(s);
  EXPECT_GE(report.count(ViolationCode::kComputeOverload), 4u);
}

TEST_F(ValidateFixture, DetectsPortOverload) {
  Schedule s(dag, platform, 1, 4.5);  // exec 4 fits; comm 1 > 0.5 slack? no:
  // ports: each proc sends/receives at most 1.0 <= 4.5. Build an overload
  // by adding cross comms: copy 0 also feeds copy 1's replica remotely.
  place_at(s, {0, 0}, 0, 0.0);
  place_at(s, {0, 1}, 1, 0.0);
  s.place({1, 0}, 2, 5.0, 9.0, 2);
  s.place({1, 1}, 3, 5.0, 9.0, 2);
  wire(s, 0, 0, 1, 0);
  wire(s, 0, 1, 1, 1);
  // Larger edge volume forces port loads over 4.5 on src 0 / dst 3.
  Dag big = make_chain(2, 4.0, 20.0);  // comm = 10
  Schedule s2(big, platform, 1, 4.5);
  place_at(s2, {0, 0}, 0, 0.0);
  place_at(s2, {0, 1}, 1, 0.0);
  s2.place({1, 0}, 2, 14.0, 18.0, 2);
  s2.place({1, 1}, 3, 14.0, 18.0, 2);
  wire(s2, 0, 0, 1, 0);
  wire(s2, 0, 1, 1, 1);
  const auto report = validate_schedule(s2);
  EXPECT_GE(report.count(ViolationCode::kOutputPortOverload), 2u);
  EXPECT_GE(report.count(ViolationCode::kInputPortOverload), 2u);
}

TEST_F(ValidateFixture, DetectsMissingSupplier) {
  Schedule s(dag, platform, 1, 100.0);
  place_at(s, {0, 0}, 0, 0.0);
  place_at(s, {0, 1}, 1, 0.0);
  s.place({1, 0}, 2, 5.0, 9.0, 2);
  s.place({1, 1}, 3, 5.0, 9.0, 2);
  wire(s, 0, 0, 1, 0);  // copy 1 of task 1 has no supplier
  const auto report = validate_schedule(s);
  EXPECT_EQ(report.count(ViolationCode::kMissingSupplier), 1u);
}

TEST_F(ValidateFixture, DetectsStageInconsistency) {
  Schedule s = valid_schedule();
  s.set_stage({1, 0}, 7);
  const auto report = validate_schedule(s);
  EXPECT_EQ(report.count(ViolationCode::kStageInconsistent), 1u);
}

TEST_F(ValidateFixture, DetectsBadExecDuration) {
  Schedule s(dag, platform, 1, 100.0);
  place_at(s, {0, 0}, 0, 0.0);
  place_at(s, {0, 1}, 1, 0.0);
  s.place({1, 0}, 2, 5.0, 6.0, 2);  // duration 1 != work 4
  s.place({1, 1}, 3, 5.0, 9.0, 2);
  wire(s, 0, 0, 1, 0);
  wire(s, 0, 1, 1, 1);
  const auto report = validate_schedule(s);
  EXPECT_EQ(report.count(ViolationCode::kBadExecDuration), 1u);
}

TEST_F(ValidateFixture, DetectsCommBeforeData) {
  Schedule s(dag, platform, 1, 100.0);
  place_at(s, {0, 0}, 0, 0.0);
  place_at(s, {0, 1}, 1, 0.0);
  s.place({1, 0}, 2, 5.0, 9.0, 2);
  s.place({1, 1}, 3, 5.0, 9.0, 2);
  CommRecord early;
  early.edge = dag.find_edge(0, 1);
  early.src = {0, 0};
  early.dst = {1, 0};
  early.start = 1.0;   // source finishes at 4
  early.finish = 2.5;  // duration 1.5 != volume * delay = 1.0
  s.add_comm(early);
  wire(s, 0, 1, 1, 1);
  const auto report = validate_schedule(s);
  EXPECT_EQ(report.count(ViolationCode::kCommBeforeData), 1u);
  EXPECT_EQ(report.count(ViolationCode::kBadCommDuration), 1u);
}

TEST_F(ValidateFixture, DetectsExecBeforeInput) {
  Schedule s(dag, platform, 1, 100.0);
  place_at(s, {0, 0}, 0, 0.0);
  place_at(s, {0, 1}, 1, 0.0);
  s.place({1, 0}, 2, 4.2, 8.2, 2);  // data arrives at 5.0
  s.place({1, 1}, 3, 5.0, 9.0, 2);
  wire(s, 0, 0, 1, 0);
  wire(s, 0, 1, 1, 1);
  const auto report = validate_schedule(s);
  EXPECT_EQ(report.count(ViolationCode::kExecBeforeInput), 1u);
}

TEST_F(ValidateFixture, DetectsComputeOverlap) {
  Dag two;
  two.add_task("a", 4.0);
  two.add_task("b", 4.0);
  const Platform p = Platform::uniform(2, 1.0, 0.5);
  Schedule s(two, p, 0, 100.0);
  place_at(s, {0, 0}, 0, 0.0);
  place_at(s, {1, 0}, 0, 2.0);  // overlaps [0,4)
  const auto report = validate_schedule(s);
  EXPECT_EQ(report.count(ViolationCode::kComputeOverlap), 1u);
}

TEST_F(ValidateFixture, DetectsPortOverlap) {
  // One source sends two remote comms at the same time: send-port overlap.
  Dag fork = make_fork_join(2, 4.0, 2.0);
  const Platform p = Platform::uniform(4, 1.0, 0.5);
  Schedule s(fork, p, 0, 100.0);
  place_at(s, {0, 0}, 0, 0.0);
  place_at(s, {1, 0}, 1, 5.0);
  place_at(s, {2, 0}, 2, 5.0);
  place_at(s, {3, 0}, 1, 11.0);
  wire(s, 0, 0, 1, 0);  // both start at 4.0 on P0's send port
  wire(s, 0, 0, 2, 0);
  wire(s, 1, 0, 3, 0);
  wire(s, 2, 0, 3, 0, /*start_offset=*/1.0);
  const auto report = validate_schedule(s);
  EXPECT_GE(report.count(ViolationCode::kSendPortOverlap), 1u);
}

TEST_F(ValidateFixture, TimingChecksCanBeDisabled) {
  Schedule s(dag, platform, 1, 100.0);
  place_at(s, {0, 0}, 0, 0.0);
  place_at(s, {0, 1}, 1, 0.0);
  s.place({1, 0}, 2, 1.0, 5.0, 2);  // starts before data arrival
  s.place({1, 1}, 3, 5.0, 9.0, 2);
  wire(s, 0, 0, 1, 0);
  wire(s, 0, 1, 1, 1);
  ValidateOptions opt;
  opt.check_timing = false;
  const auto structural = validate_schedule(s, opt);
  // Timing violations are not reported; structural checks still run.
  EXPECT_EQ(structural.count(ViolationCode::kExecBeforeInput), 0u);
  EXPECT_EQ(structural.count(ViolationCode::kCommBeforeData), 0u);
}

TEST_F(ValidateFixture, SummaryListsViolations) {
  Schedule s(dag, platform, 1, 100.0);
  place_at(s, {0, 0}, 0, 0.0);
  const auto report = validate_schedule(s);
  const std::string summary = report.summary(2);
  EXPECT_NE(summary.find("violation(s)"), std::string::npos);
  EXPECT_NE(summary.find("unplaced-replica"), std::string::npos);
  EXPECT_NE(summary.find("more"), std::string::npos);
}

}  // namespace
}  // namespace streamsched
