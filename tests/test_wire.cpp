// Wire-protocol suite (net/wire.hpp): exact double round trips, DagWire /
// ScheduleWire serialization that preserves fingerprints bit-identically,
// strict request parsing (unknown verbs/fields/values fail loudly), and
// response formatting/parsing including the tag echo on errors.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "core/fingerprint.hpp"
#include "core/rltf.hpp"
#include "graph/generators.hpp"
#include "net/wire.hpp"
#include "platform/generators.hpp"
#include "util/rng.hpp"

namespace streamsched::net {
namespace {

Dag layered_dag(std::uint64_t seed, std::size_t tasks = 16) {
  Rng rng(seed);
  return make_random_layered(rng, tasks, 4, 0.4, WeightRanges{});
}

// ----------------------------------------------------------------- doubles --

TEST(WireDouble, ExactRoundTripIncludingAwkwardValues) {
  for (double v : {1.0 / 3.0, 0.1, 1e-300, 1e300, -2.5, 0.0,
                   std::numeric_limits<double>::denorm_min(),
                   std::numeric_limits<double>::max(),
                   std::nextafter(1.0, 2.0)}) {
    const double back = parse_wire_double(wire_double(v));
    // Bit-for-bit, not merely approximately equal.
    EXPECT_EQ(std::memcmp(&back, &v, sizeof v), 0) << wire_double(v);
  }
}

TEST(WireDouble, StrictParseRejectsTrailingAndEmpty) {
  EXPECT_THROW((void)parse_wire_double(""), WireError);
  EXPECT_THROW((void)parse_wire_double("1.5x"), WireError);
  EXPECT_THROW((void)parse_wire_double("1.5 "), WireError);
}

TEST(WireCodeNames, RoundTripAndRejectUnknown) {
  for (WireCode code : {WireCode::kOk, WireCode::kBadRequest, WireCode::kBusy,
                        WireCode::kInfeasible, WireCode::kShuttingDown, WireCode::kInternal}) {
    EXPECT_EQ(parse_wire_code(wire_code_name(code)), code);
  }
  EXPECT_THROW((void)parse_wire_code("NOPE"), WireError);
}

// ----------------------------------------------------------------- DagWire --

TEST(DagWire, RoundTripPreservesFingerprintAndText) {
  const Dag dag = layered_dag(7);
  const std::string wire = format_dag_wire(dag);
  const Dag back = parse_dag_wire(wire);
  EXPECT_EQ(dag_fingerprint(back), dag_fingerprint(dag));
  // Re-serializing the parsed DAG reproduces the text byte for byte.
  EXPECT_EQ(format_dag_wire(back), wire);
  EXPECT_EQ(wire.find(' '), std::string::npos) << "DagWire must stay space-free";
}

TEST(DagWire, EdgelessSingleTask) {
  Dag one;
  one.add_task(2.5);
  const Dag back = parse_dag_wire(format_dag_wire(one));
  EXPECT_EQ(back.num_tasks(), 1u);
  EXPECT_EQ(back.num_edges(), 0u);
  EXPECT_EQ(back.work(0), 2.5);
}

TEST(DagWire, StrictRejects) {
  EXPECT_THROW((void)parse_dag_wire(""), WireError);
  EXPECT_THROW((void)parse_dag_wire("x2;w1,2;e"), WireError);       // bad section marker
  EXPECT_THROW((void)parse_dag_wire("n2;w1;e"), WireError);         // work count mismatch
  EXPECT_THROW((void)parse_dag_wire("n2;w1,2;e0-5:1"), WireError);  // endpoint out of range
  EXPECT_THROW((void)parse_dag_wire("n2;w1,2;e0:1"), WireError);    // malformed edge
  EXPECT_THROW((void)parse_dag_wire("n2;w1,oops;e"), WireError);    // malformed work
  EXPECT_THROW((void)parse_dag_wire("n2;w1,2"), WireError);         // missing edge section
}

// ------------------------------------------------------------ ScheduleWire --

TEST(ScheduleWire, BitIdenticalRoundTrip) {
  const Dag dag = layered_dag(9);
  Rng rng(5);
  const Platform platform = make_reliability_heterogeneous(rng, 8, 0.02, 0.08);
  SchedulerOptions options;
  options.eps = 1;
  options.period = std::numeric_limits<double>::infinity();
  const ScheduleResult result = rltf_schedule(dag, platform, options);
  ASSERT_TRUE(result.ok()) << result.error;
  const Schedule& original = *result.schedule;

  const std::string wire = format_schedule_wire(original);
  EXPECT_EQ(wire.find(' '), std::string::npos) << "ScheduleWire must stay space-free";
  const Schedule back = parse_schedule_wire(wire, dag, platform);
  // The replay is bit-identical: content fingerprint and re-serialized
  // text both match, which is what warm-start provenance relies on.
  EXPECT_EQ(schedule_fingerprint(back), schedule_fingerprint(original));
  EXPECT_EQ(format_schedule_wire(back), wire);
  EXPECT_EQ(back.eps(), original.eps());
  EXPECT_EQ(back.period(), original.period());
  EXPECT_EQ(back.comms().size(), original.comms().size());
}

TEST(ScheduleWire, StrictRejects) {
  Dag dag;
  dag.add_task(1.0);
  dag.add_task(2.0);
  dag.add_edge(0, 1, 1.0);
  Rng rng(5);
  const Platform platform = make_reliability_heterogeneous(rng, 4, 0.02, 0.08);

  EXPECT_THROW((void)parse_schedule_wire("", dag, platform), WireError);
  EXPECT_THROW((void)parse_schedule_wire("p1;r;c", dag, platform), WireError);
  // Replica out of range (proc 9 on a 4-proc platform).
  EXPECT_THROW((void)parse_schedule_wire("eps1;p1;r0:0:9:0:1:0;c", dag, platform), WireError);
  // Replica with too few fields.
  EXPECT_THROW((void)parse_schedule_wire("eps1;p1;r0:0:0;c", dag, platform), WireError);
  // Comm referencing an edge the DAG does not have.
  EXPECT_THROW(
      (void)parse_schedule_wire("eps1;p1;r;c7:0:0:1:0:0:1:0", dag, platform), WireError);
  // Repair flag must be 0/1.
  EXPECT_THROW(
      (void)parse_schedule_wire("eps1;p1;r;c0:0:0:1:0:0:1:2", dag, platform), WireError);
}

// ---------------------------------------------------------------- requests --

TEST(RequestWire, SubmitRoundTripThroughFormatAndParse) {
  SubmitFrame frame;
  frame.qos = QosClass::kBatch;
  frame.tag = "job-17";
  frame.variant_spec = "rltf";
  frame.model = FaultModel::count(2);
  frame.period = 12.5;
  frame.headroom = 3.0;
  frame.comm_share = 0.5;
  frame.dag = layered_dag(11);

  const Request request = parse_request(format_submit(frame));
  ASSERT_EQ(request.verb, Verb::kSubmit);
  const SubmitFrame& back = request.submit;
  EXPECT_EQ(back.qos, QosClass::kBatch);
  EXPECT_EQ(back.tag, "job-17");
  EXPECT_EQ(back.variant_spec, "rltf");
  EXPECT_EQ(back.model.to_string(), frame.model.to_string());
  EXPECT_EQ(back.period, 12.5);
  EXPECT_EQ(back.headroom, 3.0);
  EXPECT_EQ(back.comm_share, 0.5);
  EXPECT_EQ(dag_fingerprint(back.dag), dag_fingerprint(frame.dag));
}

TEST(RequestWire, SubmitDefaultsOmitOptionalFields) {
  SubmitFrame frame;
  frame.dag = layered_dag(3, 6);
  const std::string line = format_submit(frame);
  // Defaults are not serialized: the line carries qos/algo/model/dag only.
  EXPECT_EQ(line.find("period="), std::string::npos);
  EXPECT_EQ(line.find("headroom="), std::string::npos);
  EXPECT_EQ(line.find("tag="), std::string::npos);
  const Request request = parse_request(line);
  EXPECT_EQ(request.submit.headroom, SubmitFrame{}.headroom);
  EXPECT_EQ(request.submit.period, 0.0);
}

TEST(RequestWire, EventAndControlVerbs) {
  EventFrame event;
  event.failure = true;
  event.proc = 3;
  event.tag = "monitor";
  Request request = parse_request(format_event(event));
  ASSERT_EQ(request.verb, Verb::kEvent);
  EXPECT_TRUE(request.event.failure);
  EXPECT_EQ(request.event.proc, 3u);
  EXPECT_EQ(request.event.tag, "monitor");

  event.failure = false;
  request = parse_request(format_event(event));
  EXPECT_FALSE(request.event.failure);

  EXPECT_EQ(parse_request(format_stats()).verb, Verb::kStats);
  EXPECT_EQ(parse_request(format_shutdown()).verb, Verb::kShutdown);
}

TEST(RequestWire, StrictRejects) {
  const std::string dag = format_dag_wire(layered_dag(3, 4));
  EXPECT_THROW((void)parse_request(""), WireError);
  EXPECT_THROW((void)parse_request("FROB dag=" + dag), WireError);      // unknown verb
  EXPECT_THROW((void)parse_request("SUBMIT"), WireError);               // no dag
  EXPECT_THROW((void)parse_request("SUBMIT colour=red dag=" + dag), WireError);
  EXPECT_THROW((void)parse_request("SUBMIT qos=express dag=" + dag), WireError);
  EXPECT_THROW((void)parse_request("SUBMIT algo=unknown_algo dag=" + dag), WireError);
  EXPECT_THROW((void)parse_request("SUBMIT model=count:eps=x dag=" + dag), WireError);
  EXPECT_THROW((void)parse_request("EVENT proc=1"), WireError);         // kind missing
  EXPECT_THROW((void)parse_request("EVENT kind=explode proc=1"), WireError);
  EXPECT_THROW((void)parse_request("EVENT kind=fail proc=-1"), WireError);
  EXPECT_THROW((void)parse_request("STATS now"), WireError);            // takes no fields
  EXPECT_THROW((void)parse_request("SHUTDOWN please"), WireError);
}

// --------------------------------------------------------------- responses --

TEST(ResponseWire, OkBuilderRoundTrip) {
  const std::string line = OkBuilder()
                               .add("tag", "t1")
                               .add("src", "hit")
                               .add("period", 2.5)
                               .add("eps", std::uint64_t{2})
                               .str();
  const Response resp = parse_response(line);
  EXPECT_TRUE(resp.ok);
  EXPECT_EQ(resp.code, WireCode::kOk);
  EXPECT_EQ(resp.field("tag"), "t1");
  EXPECT_EQ(resp.field("src"), "hit");
  EXPECT_EQ(resp.field_double("period"), 2.5);
  EXPECT_EQ(resp.field_u64("eps"), 2u);
  EXPECT_FALSE(resp.has_field("rel"));
  EXPECT_EQ(resp.field("rel"), "");
  EXPECT_THROW((void)resp.field_double("rel"), WireError);
  EXPECT_THROW((void)resp.field_u64("src"), WireError);
}

TEST(ResponseWire, ErrorCarriesCodeTagAndSpacedMessage) {
  const std::string line =
      format_error(WireCode::kBusy, "batch lane full, retry later", "job-9");
  const Response resp = parse_response(line);
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.code, WireCode::kBusy);
  EXPECT_EQ(resp.field("tag"), "job-9");
  EXPECT_EQ(resp.message, "batch lane full, retry later");

  const Response untagged = parse_response(format_error(WireCode::kInternal, "boom"));
  EXPECT_EQ(untagged.code, WireCode::kInternal);
  EXPECT_FALSE(untagged.has_field("tag"));
  EXPECT_EQ(untagged.message, "boom");
}

TEST(ResponseWire, StrictRejects) {
  EXPECT_THROW((void)parse_response(""), WireError);
  EXPECT_THROW((void)parse_response("YES fine"), WireError);
  EXPECT_THROW((void)parse_response("ERR"), WireError);
  EXPECT_THROW((void)parse_response("ERR WHATEVER nope"), WireError);
}

TEST(RequestWire, HealthVerbRoundTrips) {
  EXPECT_EQ(format_health(), "HEALTH");
  const Request request = parse_request("HEALTH");
  EXPECT_EQ(request.verb, Verb::kHealth);
  // HEALTH takes no fields — strictness applies like everywhere else.
  EXPECT_THROW((void)parse_request("HEALTH verbose=1"), WireError);
}

TEST(ResponseWire, BusyErrorCarriesRetryHint) {
  const std::string line =
      format_error(WireCode::kBusy, "interactive lane is full", "job-3", 25);
  const Response resp = parse_response(line);
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.code, WireCode::kBusy);
  EXPECT_EQ(resp.field("tag"), "job-3");
  EXPECT_EQ(resp.field_u64("retry_ms"), 25u);
  EXPECT_EQ(resp.message, "interactive lane is full");

  // retry_ms=0 means "no hint" and the field is omitted entirely.
  const Response unhinted =
      parse_response(format_error(WireCode::kBusy, "shed", "job-4", 0));
  EXPECT_FALSE(unhinted.has_field("retry_ms"));

  // The hint parses without a tag too (tag is optional on every error).
  const Response untagged =
      parse_response(format_error(WireCode::kBusy, "shed", "", 40));
  EXPECT_FALSE(untagged.has_field("tag"));
  EXPECT_EQ(untagged.field_u64("retry_ms"), 40u);
}

}  // namespace
}  // namespace streamsched::net
