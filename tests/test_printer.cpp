// Tests for the schedule pretty-printer / DOT exporter.
#include <gtest/gtest.h>

#include "core/rltf.hpp"
#include "graph/generators.hpp"
#include "platform/generators.hpp"
#include "schedule/fault_tolerance.hpp"
#include "schedule/printer.hpp"

namespace streamsched {
namespace {

ScheduleResult example_schedule() {
  SchedulerOptions options;
  options.eps = 1;
  options.period = 22.0;
  static const Dag dag = make_paper_figure2();
  static const Platform platform = make_homogeneous(8, 1.0);
  return rltf_schedule(dag, platform, options);
}

TEST(Printer, MappingListsEveryReplicaOncePerStageLine) {
  const auto r = example_schedule();
  ASSERT_TRUE(r.ok());
  const std::string text = format_mapping(*r.schedule);
  EXPECT_NE(text.find("stage 1:"), std::string::npos);
  EXPECT_NE(text.find("stage 3:"), std::string::npos);
  // Each of the 14 replicas appears exactly once.
  std::size_t count = 0;
  for (std::size_t pos = text.find("@P"); pos != std::string::npos;
       pos = text.find("@P", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 14u);
}

TEST(Printer, TimelineShowsLoadsAndIntervals) {
  const auto r = example_schedule();
  ASSERT_TRUE(r.ok());
  const std::string text = format_processor_timeline(*r.schedule);
  EXPECT_NE(text.find("sigma="), std::string::npos);
  EXPECT_NE(text.find("cin="), std::string::npos);
  EXPECT_NE(text.find("t7#0"), std::string::npos);
  EXPECT_NE(text.find("(stage "), std::string::npos);
}

TEST(Printer, DotScheduleHasNodesAndChannelEdges) {
  const auto r = example_schedule();
  ASSERT_TRUE(r.ok());
  const std::string dot = to_dot_schedule(*r.schedule, "sched");
  EXPECT_NE(dot.find("digraph sched"), std::string::npos);
  EXPECT_NE(dot.find("r0_0"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  // No repair channels in this schedule unless repair ran.
  EXPECT_EQ(dot.find("style=dashed"), std::string::npos);
}

TEST(Printer, DotScheduleMarksRepairChannelsDashed) {
  SchedulerOptions options;
  options.eps = 1;
  options.period = 22.0;
  options.repair = true;
  const Dag dag = make_paper_figure2();
  const Platform platform = make_homogeneous(8, 1.0);
  const auto r = rltf_schedule(dag, platform, options);
  ASSERT_TRUE(r.ok());
  if (r.repair.added_comms > 0) {
    EXPECT_NE(to_dot_schedule(*r.schedule).find("style=dashed"), std::string::npos);
  }
}

TEST(Printer, SummaryMentionsKeyMetrics) {
  const auto r = example_schedule();
  ASSERT_TRUE(r.ok());
  const std::string s = summarize(*r.schedule);
  EXPECT_NE(s.find("stages=3"), std::string::npos);
  EXPECT_NE(s.find("latency_bound=110"), std::string::npos);
  EXPECT_NE(s.find("period=22"), std::string::npos);
}

}  // namespace
}  // namespace streamsched
