// Tests for the probabilistic reliability machinery: exact schedule
// reliability on hand-built schedules, Monte-Carlo agreement, reliability
// repair, model dispatch, and the end-to-end heterogeneous-reliability
// pipeline (schedule -> repair -> estimate -> sampled crash trials).
#include <gtest/gtest.h>

#include <limits>

#include "core/rltf.hpp"
#include "exp/workload.hpp"
#include "graph/generators.hpp"
#include "helpers.hpp"
#include "platform/generators.hpp"
#include "schedule/fault_model.hpp"
#include "schedule/fault_tolerance.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace streamsched {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Reliability, SingleTaskTwoReplicasExact) {
  Dag d;
  d.add_task("a", 1.0);
  Platform p = Platform::uniform(2, 1.0, 1.0);
  p.set_failure_prob(0, 0.1);
  p.set_failure_prob(1, 0.2);
  Schedule s(d, p, 1, kInf);
  test::place_at(s, {0, 0}, 0, 0.0);
  test::place_at(s, {0, 1}, 1, 0.0);
  const ReliabilityEstimate est = schedule_reliability(s);
  EXPECT_TRUE(est.exact);
  // The task dies only when both processors fail.
  EXPECT_NEAR(est.reliability, 1.0 - 0.1 * 0.2, 1e-12);
  ASSERT_EQ(est.worst_failure.size(), 2u);
}

TEST(Reliability, ChainSupplierWiringMatters) {
  Dag d;
  d.add_task("a", 1.0);
  d.add_task("b", 1.0);
  d.add_edge(0, 1, 1.0);
  Platform p = Platform::uniform(2, 1.0, 1.0);
  p.set_failure_prob(0, 0.1);
  p.set_failure_prob(1, 0.1);
  Schedule s(d, p, 1, kInf);
  test::place_at(s, {0, 0}, 0, 0.0);
  test::place_at(s, {0, 1}, 1, 0.0);
  test::place_at(s, {1, 0}, 0, 1.0);
  test::place_at(s, {1, 1}, 1, 1.0);
  // Both replicas of b receive only from a's copy on P0: the whole
  // schedule hinges on P0.
  test::wire(s, 0, 0, 1, 0);
  test::wire(s, 0, 0, 1, 1);
  const ReliabilityEstimate before = schedule_reliability(s);
  EXPECT_TRUE(before.exact);
  EXPECT_NEAR(before.reliability, 1.0 - 0.1, 1e-12);

  // Repairing to a target above 0.9 must wire a backup supply channel,
  // after which only the double failure kills the schedule.
  ReliabilityEstimate achieved;
  const RepairStats stats = repair_to_reliability(s, 0.98, {}, &achieved);
  EXPECT_TRUE(stats.success);
  EXPECT_GE(stats.added_comms, 1u);
  EXPECT_NEAR(achieved.reliability, 1.0 - 0.1 * 0.1, 1e-12);
  EXPECT_GE(achieved.reliability, 0.98);
}

TEST(Reliability, UnreachableTargetReportsFailureHonestly) {
  Dag d;
  d.add_task("a", 1.0);
  Platform p = Platform::uniform(1, 1.0, 1.0);
  p.set_failure_prob(0, 0.2);
  Schedule s(d, p, 0, kInf);
  test::place_at(s, {0, 0}, 0, 0.0);
  // A single unreplicated task on a failing processor caps reliability at
  // 0.8 and no supply channel can help.
  ReliabilityEstimate achieved;
  const RepairStats stats = repair_to_reliability(s, 0.95, {}, &achieved);
  EXPECT_FALSE(stats.success);
  EXPECT_EQ(stats.added_comms, 0u);
  EXPECT_NEAR(achieved.reliability, 0.8, 1e-12);
}

TEST(Reliability, MonteCarloAgreesWithExactEnumeration) {
  Rng rng(21);
  const Dag d = make_random_layered(rng, 16, 4, 0.4, WeightRanges{});
  const Platform p = make_reliability_heterogeneous(rng, 6, 0.05, 0.2);
  SchedulerOptions options;
  options.eps = 2;
  options.period = kInf;
  options.repair = true;
  const ScheduleResult r = rltf_schedule(d, p, options);
  ASSERT_TRUE(r.ok());

  const ReliabilityEstimate exact = schedule_reliability(*r.schedule);
  ASSERT_TRUE(exact.exact);

  ReliabilityOptions mc;
  mc.max_sets = 0;  // force the Monte-Carlo path
  mc.mc_samples = 40000;
  const ReliabilityEstimate sampled = schedule_reliability(*r.schedule, mc);
  EXPECT_FALSE(sampled.exact);
  EXPECT_NEAR(sampled.reliability, exact.reliability, 0.02);
}

TEST(Reliability, RepairForModelDispatch) {
  Rng rng(5);
  const Dag d = make_random_layered(rng, 12, 3, 0.4, WeightRanges{});
  Platform p = make_homogeneous(6);
  for (ProcId u = 0; u < 6; ++u) p.set_failure_prob(u, 0.05);

  SchedulerOptions options;
  options.eps = 1;
  options.period = kInf;
  const ScheduleResult r = rltf_schedule(d, p, options);
  ASSERT_TRUE(r.ok());

  // Count dispatch: the exhaustive eps-failure repair.
  Schedule count_copy = *r.schedule;
  const RepairStats count_stats = repair_for_model(count_copy, FaultModel::count(1));
  EXPECT_TRUE(count_stats.success);
  EXPECT_TRUE(check_fault_tolerance(count_copy, 1).valid);

  // Probabilistic dispatch: repair until the target reliability holds.
  Schedule prob_copy = *r.schedule;
  const RepairStats prob_stats = repair_for_model(prob_copy, FaultModel::probabilistic(0.99));
  EXPECT_TRUE(prob_stats.success);
  EXPECT_GE(schedule_reliability(prob_copy).reliability, 0.99);
}

// Acceptance: a heterogeneous-reliability instance scheduled under the
// probabilistic model meets the requested R after repair, and crash trials
// sampled from the model never starve the pipeline.
TEST(Reliability, EndToEndHeterogeneousInstance) {
  Rng rng(2026);
  const Platform platform = make_reliability_heterogeneous(rng, 12, 0.01, 0.1);
  const Dag dag = make_random_layered(rng, 30, 5, 0.3, WeightRanges{});

  const double target = 0.999;
  const FaultModel model = FaultModel::probabilistic(target);
  const CopyId eps = model.derive_eps(platform, dag.num_tasks());
  EXPECT_GE(eps, 1u);  // the failure probabilities force real replication

  SchedulerOptions options;
  options.fault_model = model;
  options.repair = true;
  ScheduleResult r;
  for (double headroom : {3.0, 5.0, 8.0, 12.0}) {
    options.period = calibrate_period(dag, platform, eps, headroom, 1.0);
    r = rltf_schedule(dag, platform, options);
    if (r.ok()) break;
  }
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.schedule->copies(), eps + 1);
  EXPECT_TRUE(r.repair.success);

  const ReliabilityEstimate est = schedule_reliability(*r.schedule);
  EXPECT_GE(est.reliability, target);

  Rng crash_rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    const SimResult sim = simulate_with_sampled_failures(*r.schedule, model, 0, crash_rng);
    EXPECT_TRUE(sim.complete) << "starved at trial " << trial;
    EXPECT_EQ(sim.starved_items, 0u);
  }
}

TEST(Reliability, EdgeCorePlatformShape) {
  const Platform p = make_edge_core(3, 2, 0.001, 0.2, 0.5, 1.5);
  ASSERT_EQ(p.num_procs(), 5u);
  EXPECT_DOUBLE_EQ(p.failure_prob(0), 0.001);
  EXPECT_DOUBLE_EQ(p.failure_prob(2), 0.001);
  EXPECT_DOUBLE_EQ(p.failure_prob(3), 0.2);
  EXPECT_DOUBLE_EQ(p.failure_prob(4), 0.2);
  EXPECT_DOUBLE_EQ(p.unit_delay(0, 1), 0.5);   // core-core
  EXPECT_DOUBLE_EQ(p.unit_delay(0, 3), 1.5);   // core-edge
  EXPECT_DOUBLE_EQ(p.unit_delay(3, 4), 1.5);   // edge-edge
  EXPECT_TRUE(p.has_failure_probs());
  EXPECT_DOUBLE_EQ(p.max_failure_prob(), 0.2);
}

}  // namespace
}  // namespace streamsched
