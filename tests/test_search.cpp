// Tests for the bicriteria search extensions: minimal feasible period and
// maximal supported failures.
#include <gtest/gtest.h>

#include "core/ltf.hpp"
#include "core/rltf.hpp"
#include "core/search.hpp"
#include "graph/generators.hpp"
#include "platform/generators.hpp"
#include "schedule/metrics.hpp"
#include "util/rng.hpp"

namespace streamsched {
namespace {

TEST(Search, PeriodLowerBoundComponents) {
  // Chain of works {10, 2}: per-task bound 10 / max-speed 2 = 5;
  // load bound (ε+1) * 12 / (2 + 1) = 8 for ε = 1.
  Dag d;
  d.add_task("a", 10.0);
  d.add_task("b", 2.0);
  d.add_edge(0, 1, 1.0);
  const Platform p({2.0, 1.0}, 0.5);
  EXPECT_DOUBLE_EQ(period_lower_bound(d, p, 0), 5.0);
  EXPECT_DOUBLE_EQ(period_lower_bound(d, p, 1), 8.0);
}

TEST(Search, MinPeriodOnIndependentTasks) {
  // 4 independent unit tasks on 2 processors: optimal period is 2.
  Dag d;
  for (int i = 0; i < 4; ++i) d.add_task(1.0);
  const Platform p = Platform::uniform(2, 1.0, 1.0);
  SchedulerOptions base;
  base.eps = 0;
  const auto result = find_min_period(d, p, base, ltf_schedule, 1e-4);
  ASSERT_TRUE(result.found);
  EXPECT_NEAR(result.period, 2.0, 2.0 * 1e-3);
  ASSERT_TRUE(result.schedule.has_value());
  EXPECT_LE(max_cycle_time(*result.schedule), result.period * (1 + 1e-6));
}

TEST(Search, MinPeriodTightensWithReplication) {
  Rng rng(3);
  const Dag d = make_random_layered(rng, 24, 4, 0.3, WeightRanges{});
  const Platform p = make_homogeneous(6);
  SchedulerOptions base;
  base.eps = 0;
  const auto p0 = find_min_period(d, p, base, rltf_schedule);
  base.eps = 1;
  const auto p1 = find_min_period(d, p, base, rltf_schedule);
  ASSERT_TRUE(p0.found && p1.found);
  // Twice the load cannot run faster than once the load.
  EXPECT_GE(p1.period, p0.period * (1.0 - 1e-6));
}

TEST(Search, MinPeriodIsFeasibilityFrontier) {
  Rng rng(5);
  const Dag d = make_random_layered(rng, 20, 4, 0.3, WeightRanges{});
  const Platform p = make_homogeneous(5);
  SchedulerOptions base;
  base.eps = 1;
  const auto result = find_min_period(d, p, base, ltf_schedule, 1e-3);
  ASSERT_TRUE(result.found);
  // Slightly below the frontier the scheduler must fail.
  SchedulerOptions probe = base;
  probe.period = result.period * 0.98;
  EXPECT_FALSE(ltf_schedule(d, p, probe).ok());
  probe.period = result.period * 1.02;
  EXPECT_TRUE(ltf_schedule(d, p, probe).ok());
}

TEST(Search, MaxFailuresGrowsWithPeriod) {
  Rng rng(7);
  const Dag d = make_random_layered(rng, 16, 4, 0.4, WeightRanges{});
  const Platform p = make_homogeneous(8);
  SchedulerOptions base;
  base.eps = 0;
  const auto frontier = find_min_period(d, p, base, rltf_schedule, 1e-2);
  ASSERT_TRUE(frontier.found);
  const double tight = frontier.period * 1.05;
  const double loose = frontier.period * 16.0;
  const auto inf = std::numeric_limits<double>::infinity();
  const auto a = find_max_failures(d, p, tight, inf, base, rltf_schedule);
  const auto b = find_max_failures(d, p, loose, inf, base, rltf_schedule);
  ASSERT_TRUE(a.found && b.found);
  EXPECT_LE(a.eps, b.eps);
  EXPECT_GE(b.eps, 1u);  // plenty of slack: at least duplication fits
}

TEST(Search, MaxFailuresRespectsLatencyCap) {
  Rng rng(9);
  const Dag d = make_random_layered(rng, 16, 4, 0.4, WeightRanges{});
  const Platform p = make_homogeneous(8);
  SchedulerOptions base;
  base.eps = 0;
  const auto frontier = find_min_period(d, p, base, rltf_schedule, 1e-2);
  ASSERT_TRUE(frontier.found);
  const double period = frontier.period * 8.0;
  const auto unlimited = find_max_failures(
      d, p, period, std::numeric_limits<double>::infinity(), base, rltf_schedule);
  ASSERT_TRUE(unlimited.found);
  // A one-period latency cap allows at most single-stage mappings.
  const auto capped = find_max_failures(d, p, period, period, base, rltf_schedule);
  if (capped.found) {
    EXPECT_LE(latency_upper_bound(*capped.schedule), period * (1 + 1e-9));
  }
  EXPECT_LE(capped.found ? capped.eps : 0, unlimited.eps);
}

TEST(Search, MinPeriodAtFullReplication) {
  // eps = m - 1: every task runs everywhere; the load bound scales by m.
  Rng rng(11);
  const Dag d = make_random_layered(rng, 10, 3, 0.4, WeightRanges{});
  const Platform p = make_homogeneous(4);
  SchedulerOptions base;
  base.eps = 3;  // m - 1
  base.repair = true;
  const auto result = find_min_period(d, p, base, rltf_schedule, 1e-2);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.schedule->copies(), 4u);
  EXPECT_GE(result.period, period_lower_bound(d, p, 3) * (1.0 - 1e-9));
  // Full replication on distinct processors survives any m - 1 failures.
  EXPECT_TRUE(check_fault_tolerance(*result.schedule, 3).valid);
}

TEST(Search, MinPeriodInfeasibleAtEveryPeriodCountsEvaluations) {
  // An instance no period can fix: the scheduler itself rejects every
  // attempt. The bracketed search must exhaust its doubling probe without
  // ever evaluating below the analytic lower bound.
  Dag d;
  d.add_task("a", 4.0);
  d.add_task("b", 4.0);
  d.add_edge(0, 1, 1.0);
  const Platform p = Platform::uniform(2, 1.0, 1.0);
  SchedulerOptions base;
  base.eps = 1;
  double min_attempted = std::numeric_limits<double>::infinity();
  const auto reject_all = [&](const Dag&, const Platform&, const SchedulerOptions& o) {
    min_attempted = std::min(min_attempted, o.period);
    return ScheduleResult::failure("rejected");
  };
  const auto result = find_min_period(d, p, base, reject_all);
  EXPECT_FALSE(result.found);
  EXPECT_EQ(result.evaluations, 64u);  // the exponential probe, nothing else
  EXPECT_GE(min_attempted, period_lower_bound(d, p, 1));
}

TEST(Search, MinPeriodNeverReevaluatesKnownInfeasiblePeriods) {
  // The binary-search floor follows the exponential probe: once a period
  // failed, no strictly smaller period is attempted afterwards.
  Rng rng(13);
  const Dag d = make_random_layered(rng, 20, 4, 0.3, WeightRanges{});
  const Platform p = make_homogeneous(5);
  SchedulerOptions base;
  base.eps = 1;
  double max_failed = 0.0;
  bool below_failed_after_failure = false;
  const auto spy = [&](const Dag& dag, const Platform& platform, const SchedulerOptions& o) {
    if (o.period < max_failed) below_failed_after_failure = true;
    ScheduleResult r = ltf_schedule(dag, platform, o);
    if (!r.ok()) max_failed = std::max(max_failed, o.period);
    return r;
  };
  const auto result = find_min_period(d, p, base, spy, 1e-3);
  ASSERT_TRUE(result.found);
  EXPECT_FALSE(below_failed_after_failure);
}

TEST(Search, MaxFailuresLatencyCapExcludesReplication) {
  // A latency cap tight enough to rule out every eps > 0 mapping still
  // reports the eps = 0 solution instead of "not found". In the all-to-all
  // supplier regime (use_one_to_one = false) any replicated consumer has a
  // remote supplier, so replication provably costs an extra stage over the
  // colocated eps = 0 chain.
  Dag d;
  d.add_task(1.0);
  d.add_task(1.0);
  d.add_edge(0, 1, 1.0);
  const Platform p = make_homogeneous(4, 1.0);
  SchedulerOptions base;
  base.use_one_to_one = false;
  const double period = 8.0;

  SchedulerOptions probe = base;
  probe.period = period;
  probe.eps = 0;
  const ScheduleResult solo = rltf_schedule(d, p, probe);
  ASSERT_TRUE(solo.ok());
  probe.eps = 1;
  const ScheduleResult duo = rltf_schedule(d, p, probe);
  ASSERT_TRUE(duo.ok());
  const double cap = latency_upper_bound(*solo.schedule);
  ASSERT_LT(cap, latency_upper_bound(*duo.schedule));

  const auto unlimited = find_max_failures(
      d, p, period, std::numeric_limits<double>::infinity(), base, rltf_schedule);
  ASSERT_TRUE(unlimited.found);
  ASSERT_GE(unlimited.eps, 1u);
  const auto capped = find_max_failures(d, p, period, cap, base, rltf_schedule);
  ASSERT_TRUE(capped.found);
  EXPECT_EQ(capped.eps, 0u);
  EXPECT_LE(latency_upper_bound(*capped.schedule), cap * (1 + 1e-9));
}

TEST(Search, CountModelParityOnFigure2) {
  // The FaultModel plumbing must not change the scalar pipeline: on the
  // paper's Figure 2 instance, scheduling through fault_model =
  // CountModel(1) is bit-identical to the legacy eps = 1 options.
  const Dag d = make_paper_figure2();
  const Platform p = make_homogeneous(8, 1.0);
  using ScheduleFn = ScheduleResult (*)(const Dag&, const Platform&, const SchedulerOptions&);
  for (ScheduleFn schedule_fn : {ScheduleFn{ltf_schedule}, ScheduleFn{rltf_schedule}}) {
    SchedulerOptions legacy;
    legacy.eps = 1;
    legacy.period = 40.0;
    legacy.repair = true;
    SchedulerOptions modeled = legacy;
    modeled.eps = 0;  // must be ignored: the model wins
    modeled.fault_model = FaultModel::count(1);
    const ScheduleResult a = schedule_fn(d, p, legacy);
    const ScheduleResult b = schedule_fn(d, p, modeled);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.schedule->copies(), b.schedule->copies());
    EXPECT_EQ(num_stages(*a.schedule), num_stages(*b.schedule));
    EXPECT_DOUBLE_EQ(latency_upper_bound(*a.schedule), latency_upper_bound(*b.schedule));
    ASSERT_EQ(a.schedule->comms().size(), b.schedule->comms().size());
    EXPECT_EQ(a.repair.added_comms, b.repair.added_comms);
    for (TaskId t = 0; t < d.num_tasks(); ++t) {
      for (CopyId c = 0; c < 2; ++c) {
        EXPECT_EQ(a.schedule->placed({t, c}).proc, b.schedule->placed({t, c}).proc);
        EXPECT_DOUBLE_EQ(a.schedule->placed({t, c}).start, b.schedule->placed({t, c}).start);
      }
    }
  }
}

TEST(Search, MinPeriodUnderProbabilisticModel) {
  Rng rng(17);
  const Platform p = make_reliability_heterogeneous(rng, 8, 0.02, 0.1);
  const Dag d = make_random_layered(rng, 16, 4, 0.3, WeightRanges{});
  const FaultModel model = FaultModel::probabilistic(0.99);
  const CopyId eps = model.derive_eps(p, d.num_tasks());
  ASSERT_GE(eps, 1u);
  SchedulerOptions base;
  base.repair = true;
  const auto result = find_min_period(d, p, model, base, rltf_schedule, 1e-2);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.schedule->copies(), eps + 1);
  // The bracket was seeded with the model-derived replication degree.
  EXPECT_GE(result.period, period_lower_bound(d, p, eps) * (1.0 - 1e-9));
}

TEST(Search, MaxFailuresOwnsTheReplicationDegree) {
  // A fault model left in `base` must not override the scan's eps: the
  // reported eps always matches the schedule's replication degree.
  Rng rng(29);
  const Platform p = make_reliability_heterogeneous(rng, 6, 0.02, 0.1);
  const Dag d = make_random_layered(rng, 10, 3, 0.4, WeightRanges{});
  SchedulerOptions base;
  base.fault_model = FaultModel::probabilistic(0.99);
  const auto result = find_max_failures(d, p, 1e6, std::numeric_limits<double>::infinity(),
                                        base, rltf_schedule);
  ASSERT_TRUE(result.found);
  EXPECT_GE(result.eps, 1u);
  EXPECT_EQ(result.schedule->copies(), result.eps + 1);
}

TEST(Search, FindMaxReliabilityPrefersMoreReplicas) {
  Rng rng(23);
  const Platform p = make_reliability_heterogeneous(rng, 6, 0.05, 0.15);
  const Dag d = make_random_layered(rng, 10, 3, 0.4, WeightRanges{});
  SchedulerOptions base;
  const double period = 1e6;  // plenty of slack: high eps feasible
  const auto best = find_max_reliability(d, p, period,
                                         std::numeric_limits<double>::infinity(), base,
                                         rltf_schedule);
  ASSERT_TRUE(best.found);
  EXPECT_GE(best.eps, 1u);
  ASSERT_TRUE(best.schedule.has_value());

  // An eps = 0 schedule on this platform is strictly less reliable.
  SchedulerOptions solo;
  solo.eps = 0;
  solo.period = period;
  const ScheduleResult r0 = rltf_schedule(d, p, solo);
  ASSERT_TRUE(r0.ok());
  EXPECT_GT(best.reliability, schedule_reliability(*r0.schedule).reliability);
}

TEST(Search, InfeasibleProblemReportsNotFound) {
  // A single task of work 10 on a speed-1 processor can never beat period
  // 10; searching with an upper bound exhausts and still finds 10 — but a
  // scheduler that always fails must report not-found.
  Dag d;
  d.add_task("a", 10.0);
  const Platform p = Platform::uniform(1, 1.0, 1.0);
  SchedulerOptions base;
  const auto always_fail = [](const Dag&, const Platform&, const SchedulerOptions&) {
    return ScheduleResult::failure("nope");
  };
  const auto result = find_min_period(d, p, base, always_fail);
  EXPECT_FALSE(result.found);
  EXPECT_FALSE(result.schedule.has_value());
  EXPECT_GT(result.evaluations, 10u);
}

}  // namespace
}  // namespace streamsched
