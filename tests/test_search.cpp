// Tests for the bicriteria search extensions: minimal feasible period and
// maximal supported failures.
#include <gtest/gtest.h>

#include "core/ltf.hpp"
#include "core/rltf.hpp"
#include "core/search.hpp"
#include "graph/generators.hpp"
#include "platform/generators.hpp"
#include "schedule/metrics.hpp"
#include "util/rng.hpp"

namespace streamsched {
namespace {

TEST(Search, PeriodLowerBoundComponents) {
  // Chain of works {10, 2}: per-task bound 10 / max-speed 2 = 5;
  // load bound (ε+1) * 12 / (2 + 1) = 8 for ε = 1.
  Dag d;
  d.add_task("a", 10.0);
  d.add_task("b", 2.0);
  d.add_edge(0, 1, 1.0);
  const Platform p({2.0, 1.0}, 0.5);
  EXPECT_DOUBLE_EQ(period_lower_bound(d, p, 0), 5.0);
  EXPECT_DOUBLE_EQ(period_lower_bound(d, p, 1), 8.0);
}

TEST(Search, MinPeriodOnIndependentTasks) {
  // 4 independent unit tasks on 2 processors: optimal period is 2.
  Dag d;
  for (int i = 0; i < 4; ++i) d.add_task(1.0);
  const Platform p = Platform::uniform(2, 1.0, 1.0);
  SchedulerOptions base;
  base.eps = 0;
  const auto result = find_min_period(d, p, base, ltf_schedule, 1e-4);
  ASSERT_TRUE(result.found);
  EXPECT_NEAR(result.period, 2.0, 2.0 * 1e-3);
  ASSERT_TRUE(result.schedule.has_value());
  EXPECT_LE(max_cycle_time(*result.schedule), result.period * (1 + 1e-6));
}

TEST(Search, MinPeriodTightensWithReplication) {
  Rng rng(3);
  const Dag d = make_random_layered(rng, 24, 4, 0.3, WeightRanges{});
  const Platform p = make_homogeneous(6);
  SchedulerOptions base;
  base.eps = 0;
  const auto p0 = find_min_period(d, p, base, rltf_schedule);
  base.eps = 1;
  const auto p1 = find_min_period(d, p, base, rltf_schedule);
  ASSERT_TRUE(p0.found && p1.found);
  // Twice the load cannot run faster than once the load.
  EXPECT_GE(p1.period, p0.period * (1.0 - 1e-6));
}

TEST(Search, MinPeriodIsFeasibilityFrontier) {
  Rng rng(5);
  const Dag d = make_random_layered(rng, 20, 4, 0.3, WeightRanges{});
  const Platform p = make_homogeneous(5);
  SchedulerOptions base;
  base.eps = 1;
  const auto result = find_min_period(d, p, base, ltf_schedule, 1e-3);
  ASSERT_TRUE(result.found);
  // Slightly below the frontier the scheduler must fail.
  SchedulerOptions probe = base;
  probe.period = result.period * 0.98;
  EXPECT_FALSE(ltf_schedule(d, p, probe).ok());
  probe.period = result.period * 1.02;
  EXPECT_TRUE(ltf_schedule(d, p, probe).ok());
}

TEST(Search, MaxFailuresGrowsWithPeriod) {
  Rng rng(7);
  const Dag d = make_random_layered(rng, 16, 4, 0.4, WeightRanges{});
  const Platform p = make_homogeneous(8);
  SchedulerOptions base;
  base.eps = 0;
  const auto frontier = find_min_period(d, p, base, rltf_schedule, 1e-2);
  ASSERT_TRUE(frontier.found);
  const double tight = frontier.period * 1.05;
  const double loose = frontier.period * 16.0;
  const auto inf = std::numeric_limits<double>::infinity();
  const auto a = find_max_failures(d, p, tight, inf, base, rltf_schedule);
  const auto b = find_max_failures(d, p, loose, inf, base, rltf_schedule);
  ASSERT_TRUE(a.found && b.found);
  EXPECT_LE(a.eps, b.eps);
  EXPECT_GE(b.eps, 1u);  // plenty of slack: at least duplication fits
}

TEST(Search, MaxFailuresRespectsLatencyCap) {
  Rng rng(9);
  const Dag d = make_random_layered(rng, 16, 4, 0.4, WeightRanges{});
  const Platform p = make_homogeneous(8);
  SchedulerOptions base;
  base.eps = 0;
  const auto frontier = find_min_period(d, p, base, rltf_schedule, 1e-2);
  ASSERT_TRUE(frontier.found);
  const double period = frontier.period * 8.0;
  const auto unlimited = find_max_failures(
      d, p, period, std::numeric_limits<double>::infinity(), base, rltf_schedule);
  ASSERT_TRUE(unlimited.found);
  // A one-period latency cap allows at most single-stage mappings.
  const auto capped = find_max_failures(d, p, period, period, base, rltf_schedule);
  if (capped.found) {
    EXPECT_LE(latency_upper_bound(*capped.schedule), period * (1 + 1e-9));
  }
  EXPECT_LE(capped.found ? capped.eps : 0, unlimited.eps);
}

TEST(Search, InfeasibleProblemReportsNotFound) {
  // A single task of work 10 on a speed-1 processor can never beat period
  // 10; searching with an upper bound exhausts and still finds 10 — but a
  // scheduler that always fails must report not-found.
  Dag d;
  d.add_task("a", 10.0);
  const Platform p = Platform::uniform(1, 1.0, 1.0);
  SchedulerOptions base;
  const auto always_fail = [](const Dag&, const Platform&, const SchedulerOptions&) {
    return ScheduleResult::failure("nope");
  };
  const auto result = find_min_period(d, p, base, always_fail);
  EXPECT_FALSE(result.found);
  EXPECT_FALSE(result.schedule.has_value());
  EXPECT_GT(result.evaluations, 10u);
}

}  // namespace
}  // namespace streamsched
