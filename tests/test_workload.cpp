// Tests for the experiment workload generator and period calibration.
#include <gtest/gtest.h>

#include "exp/workload.hpp"
#include "graph/granularity.hpp"
#include "util/rng.hpp"

namespace streamsched {
namespace {

TEST(Workload, InstanceMatchesPaperParameters) {
  WorkloadParams params;
  Rng rng(1);
  const Instance inst = make_instance(params, 1.0, 1, rng);
  EXPECT_GE(inst.num_tasks, 50u);
  EXPECT_LE(inst.num_tasks, 150u);
  EXPECT_EQ(inst.platform.num_procs(), 20u);
  EXPECT_NEAR(inst.granularity, 1.0, 1e-9);
  EXPECT_GT(inst.period, 0.0);
  for (ProcId a = 0; a < 20; ++a) {
    EXPECT_EQ(inst.platform.speed(a), 1.0);
    for (ProcId b = a + 1; b < 20; ++b) {
      EXPECT_GE(inst.platform.unit_delay(a, b), 0.5);
      EXPECT_LE(inst.platform.unit_delay(a, b), 1.0);
    }
  }
}

class GranularityTargetTest : public ::testing::TestWithParam<double> {};

TEST_P(GranularityTargetTest, AchievesTarget) {
  WorkloadParams params;
  Rng rng(static_cast<std::uint64_t>(GetParam() * 1000));
  const Instance inst = make_instance(params, GetParam(), 1, rng);
  EXPECT_NEAR(granularity(inst.dag, inst.platform), GetParam(), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(PaperSweep, GranularityTargetTest,
                         ::testing::Values(0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0));

TEST(Workload, PeriodScalesWithReplication) {
  WorkloadParams params;
  Rng a(7), b(7);
  const Instance i1 = make_instance(params, 1.0, 1, a);
  const Instance i3 = make_instance(params, 1.0, 3, b);
  // Same stream: identical graphs; period ∝ (ε+1).
  EXPECT_NEAR(i3.period / i1.period, 2.0, 1e-9);
}

TEST(Workload, PeriodCoversSingleTask) {
  WorkloadParams params;
  Rng rng(9);
  const Instance inst = make_instance(params, 2.0, 0, rng);
  double max_exec = 0.0;
  for (TaskId t = 0; t < inst.dag.num_tasks(); ++t) {
    max_exec = std::max(max_exec, inst.dag.work(t) / inst.platform.max_speed());
  }
  EXPECT_GE(inst.period, max_exec);
}

TEST(Workload, CommBoundKicksInAtLowGranularity) {
  // At g = 0.2 communication dominates; the calibrated period must exceed
  // the pure compute bound.
  WorkloadParams params;
  Rng rng(11);
  const Instance inst = make_instance(params, 0.2, 1, rng);
  const double compute_bound =
      2.0 * 2.0 * inst.dag.total_work() * inst.platform.mean_inverse_speed() /
      static_cast<double>(inst.platform.num_procs());
  EXPECT_GT(inst.period, compute_bound * (1.0 - 1e-9));
}

TEST(Workload, DeterministicInSeed) {
  WorkloadParams params;
  Rng a(21), b(21);
  const Instance x = make_instance(params, 0.8, 1, a);
  const Instance y = make_instance(params, 0.8, 1, b);
  EXPECT_EQ(x.num_tasks, y.num_tasks);
  EXPECT_EQ(x.num_edges, y.num_edges);
  EXPECT_DOUBLE_EQ(x.period, y.period);
}

TEST(Workload, NormalizationFactorMatchesPaperScale) {
  // By construction L_norm(UB) = (2S−1) · 10(ε+1).
  EXPECT_DOUBLE_EQ(normalization_factor(40.0, 1), 0.5);
  EXPECT_DOUBLE_EQ(normalization_factor(10.0, 0), 1.0);
  EXPECT_THROW((void)normalization_factor(0.0, 1), std::invalid_argument);
}

TEST(Workload, CalibrationFormula) {
  Dag d;
  d.add_task("a", 10.0);
  d.add_task("b", 10.0);
  d.add_edge(0, 1, 8.0);
  const Platform p = Platform::uniform(2, 1.0, 1.0);
  // W̄ = 20, C̄ = 8, m = 2: compute bound 10, comm bound 0.5*8/2 = 2.
  // κ = 2, ε = 0: Δ = 2 * 1 * 10 = 20.
  EXPECT_DOUBLE_EQ(calibrate_period(d, p, 0, 2.0, 0.5), 20.0);
  // ε = 1 doubles it.
  EXPECT_DOUBLE_EQ(calibrate_period(d, p, 1, 2.0, 0.5), 40.0);
}

}  // namespace
}  // namespace streamsched
