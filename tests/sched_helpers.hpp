// Shared scheduling helpers for tests: calibrated-period escalation.
//
// The schedulers may legitimately fail at a tight period (the paper's LTF
// does exactly that); properties about *valid* schedules therefore probe a
// ladder of headrooms and assert success at some rung.
#pragma once

#include <utility>
#include <vector>

#include "core/options.hpp"
#include "exp/workload.hpp"

namespace streamsched::test {

struct EscalationResult {
  ScheduleResult result;
  double period = 0.0;
  double headroom = 0.0;
};

inline const std::vector<double>& headroom_ladder() {
  static const std::vector<double> ladder{2.0, 3.0, 4.5, 7.0, 12.0};
  return ladder;
}

/// Runs `scheduler` at increasing headrooms until it succeeds.
template <typename SchedulerFn>
EscalationResult schedule_with_escalation(SchedulerFn&& scheduler, const Dag& dag,
                                          const Platform& platform, CopyId eps,
                                          bool repair = false) {
  EscalationResult out;
  for (double headroom : headroom_ladder()) {
    out.headroom = headroom;
    out.period = calibrate_period(dag, platform, eps, headroom, 1.0);
    SchedulerOptions options;
    options.eps = eps;
    options.period = out.period;
    options.repair = repair;
    out.result = scheduler(dag, platform, options);
    if (out.result.ok()) return out;
  }
  return out;
}

/// Escalates until *both* schedulers succeed at the same period (for
/// head-to-head comparisons). Returns the pair; either may still hold a
/// failure if even the top rung was infeasible.
template <typename FnA, typename FnB>
std::pair<EscalationResult, EscalationResult> schedule_pair_with_escalation(
    FnA&& a, FnB&& b, const Dag& dag, const Platform& platform, CopyId eps,
    bool repair = false) {
  std::pair<EscalationResult, EscalationResult> out;
  for (double headroom : headroom_ladder()) {
    const double period = calibrate_period(dag, platform, eps, headroom, 1.0);
    SchedulerOptions options;
    options.eps = eps;
    options.period = period;
    options.repair = repair;
    out.first = EscalationResult{a(dag, platform, options), period, headroom};
    out.second = EscalationResult{b(dag, platform, options), period, headroom};
    if (out.first.result.ok() && out.second.result.ok()) return out;
  }
  return out;
}

}  // namespace streamsched::test
