// Tests for the experiment sweep harness: small end-to-end runs, series
// sanity (R-LTF <= LTF on aggregate, bounds above simulations), threading
// determinism, algorithm-generic configuration, parity with the
// pre-refactor per-algorithm field semantics, and figure assembly.
#include <gtest/gtest.h>

#include "exp/figures.hpp"
#include "exp/sweep.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace streamsched {
namespace {

SweepConfig tiny_config() {
  SweepConfig config;
  config.workload.v_min = 30;
  config.workload.v_max = 50;
  config.eps = 1;
  config.crashes = 1;
  config.graphs_per_point = 4;
  config.crash_trials = 2;
  config.g_min = 0.5;
  config.g_max = 1.5;
  config.g_step = 0.5;
  config.seed = 7;
  config.threads = 2;
  config.sim_items = 20;
  config.sim_warmup = 5;
  return config;
}

TEST(Sweep, RunInstanceProducesConsistentRecord) {
  const SweepConfig config = tiny_config();
  const InstanceRecord rec = run_instance(config, 1.0, 12345);
  ASSERT_TRUE(rec.usable);
  EXPECT_GT(rec.period, 0.0);
  EXPECT_GT(rec.ff_sim0, 0.0);
  std::vector<std::string> expected_keys;
  for (const AlgoVariant& v : config.algos) expected_keys.push_back(v.name());
  ASSERT_EQ(rec.algos, expected_keys);
  ASSERT_EQ(rec.outcomes.size(), config.algos.size());
  const AlgoOutcome* ltf = rec.outcome("ltf");
  const AlgoOutcome* rltf = rec.outcome("rltf");
  ASSERT_NE(ltf, nullptr);
  ASSERT_NE(rltf, nullptr);
  EXPECT_EQ(rec.outcome("nope"), nullptr);
  ASSERT_TRUE(ltf->scheduled);
  ASSERT_TRUE(rltf->scheduled);
  // The simulated no-crash latency never exceeds the stage bound.
  EXPECT_LE(ltf->sim0, ltf->ub * (1.0 + 1e-9));
  EXPECT_LE(rltf->sim0, rltf->ub * (1.0 + 1e-9));
  // Repair enforces survival: no starvation in the crash trials.
  EXPECT_FALSE(ltf->starved);
  EXPECT_FALSE(rltf->starved);
  // Replication should not *substantially* beat the fault-free schedule.
  // (Both are heuristics; R-LTF with replicas occasionally finds a
  // slightly better stage structure than its ε = 0 run.)
  EXPECT_GE(ltf->sim0, rec.ff_sim0 * 0.75);
  EXPECT_GE(rltf->sim0, rec.ff_sim0 * 0.75);
}

TEST(Sweep, DeterministicAcrossThreadCounts) {
  SweepConfig serial = tiny_config();
  serial.threads = 1;
  SweepConfig parallel = tiny_config();
  parallel.threads = 4;
  const auto a = run_granularity_sweep(serial);
  const auto b = run_granularity_sweep(parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].at("rltf").sim0, b[i].at("rltf").sim0);
    EXPECT_DOUBLE_EQ(a[i].at("ltf").ub, b[i].at("ltf").ub);
    EXPECT_EQ(a[i].instances, b[i].instances);
  }
}

TEST(Sweep, SeriesShapesMatchThePaper) {
  const auto points = run_granularity_sweep(tiny_config());
  ASSERT_EQ(points.size(), 3u);
  double rltf_total = 0, ltf_total = 0;
  for (const auto& p : points) {
    EXPECT_GT(p.instances, 0u);
    const AlgoSeries& ltf = p.at("ltf");
    const AlgoSeries& rltf = p.at("rltf");
    EXPECT_EQ(ltf.label, "LTF");
    EXPECT_EQ(rltf.label, "R-LTF");
    // Bounds dominate simulated latencies (both normalized identically).
    EXPECT_LE(rltf.sim0, rltf.ub * (1.0 + 1e-9));
    EXPECT_LE(ltf.sim0, ltf.ub * (1.0 + 1e-9));
    // Overheads versus the fault-free schedule are essentially
    // non-negative (small negative means on a few instances the
    // replicated heuristic found a slightly better stage structure).
    EXPECT_GE(rltf.overhead0, -25.0);
    EXPECT_GE(ltf.overhead0, -25.0);
    EXPECT_EQ(p.starved, 0u);
    rltf_total += rltf.sim0;
    ltf_total += ltf.sim0;
  }
  // The paper's headline result on aggregate: R-LTF beats LTF.
  EXPECT_LE(rltf_total, ltf_total * 1.05);
}

// Pins the generic per-name series to the pre-refactor `ltf_*`/`rltf_*`
// field-pair semantics: recompute the old aggregation directly from the
// instance records (same seeding discipline as the sweep) and require the
// sweep's series to match bit for bit.
TEST(Sweep, GenericSeriesMatchFieldPairSemantics) {
  const SweepConfig config = tiny_config();
  ASSERT_EQ(config.algos, (std::vector<AlgoVariant>{"ltf", "rltf"}));
  const auto points = run_granularity_sweep(config);
  ASSERT_EQ(points.size(), 3u);

  const std::vector<double> gs{0.5, 1.0, 1.5};
  Rng seeder(config.seed);
  std::vector<std::uint64_t> seeds(gs.size() * config.graphs_per_point);
  for (auto& s : seeds) s = seeder();

  for (std::size_t point = 0; point < gs.size(); ++point) {
    RunningStats ff, ltf_ub, rltf_ub, ltf_sim0, rltf_sim0, ltf_oh0, rltf_oh0;
    std::size_t instances = 0, ltf_failures = 0, rltf_failures = 0;
    for (std::size_t j = 0; j < config.graphs_per_point; ++j) {
      const InstanceRecord rec =
          run_instance(config, gs[point], seeds[point * config.graphs_per_point + j]);
      if (!rec.usable) continue;
      ++instances;
      ff.add(rec.ff_sim0);
      const AlgoOutcome& ltf = *rec.outcome("ltf");
      const AlgoOutcome& rltf = *rec.outcome("rltf");
      if (ltf.scheduled) {
        ltf_ub.add(ltf.ub);
        ltf_sim0.add(ltf.sim0);
        if (rec.ff_sim0 > 0.0) ltf_oh0.add(100.0 * (ltf.sim0 - rec.ff_sim0) / rec.ff_sim0);
      } else {
        ++ltf_failures;
      }
      if (rltf.scheduled) {
        rltf_ub.add(rltf.ub);
        rltf_sim0.add(rltf.sim0);
        if (rec.ff_sim0 > 0.0) rltf_oh0.add(100.0 * (rltf.sim0 - rec.ff_sim0) / rec.ff_sim0);
      } else {
        ++rltf_failures;
      }
    }
    const PointStats& p = points[point];
    EXPECT_EQ(p.instances, instances);
    EXPECT_DOUBLE_EQ(p.ff_sim0, ff.mean());
    EXPECT_DOUBLE_EQ(p.at("ltf").ub, ltf_ub.mean());
    EXPECT_DOUBLE_EQ(p.at("rltf").ub, rltf_ub.mean());
    EXPECT_DOUBLE_EQ(p.at("ltf").sim0, ltf_sim0.mean());
    EXPECT_DOUBLE_EQ(p.at("rltf").sim0, rltf_sim0.mean());
    EXPECT_DOUBLE_EQ(p.at("ltf").overhead0, ltf_oh0.mean());
    EXPECT_DOUBLE_EQ(p.at("rltf").overhead0, rltf_oh0.mean());
    EXPECT_EQ(p.at("ltf").failures, ltf_failures);
    EXPECT_EQ(p.at("rltf").failures, rltf_failures);
  }
}

TEST(Sweep, ArbitraryAlgorithmListProducesPerAlgorithmSeries) {
  SweepConfig config = tiny_config();
  config.algos = {"rltf", "heft", "stage_pack"};
  config.g_min = 1.0;
  config.g_max = 1.0;
  const auto points = run_granularity_sweep(config);
  ASSERT_EQ(points.size(), 1u);
  ASSERT_EQ(points[0].series.size(), 3u);
  EXPECT_EQ(points[0].series[0].name, "rltf");
  EXPECT_EQ(points[0].series[1].name, "heft");
  EXPECT_EQ(points[0].series[2].name, "stage_pack");
  for (const AlgoSeries& s : points[0].series) {
    // Every algorithm either scheduled some instances or reported failures.
    EXPECT_TRUE(s.sim0 > 0.0 || s.failures > 0) << s.name;
  }
  EXPECT_EQ(points[0].find("ltf"), nullptr);
  EXPECT_THROW((void)points[0].at("ltf"), std::invalid_argument);
}

TEST(Sweep, AlgorithmOrderDoesNotChangeAnAlgorithmsSeries) {
  // Per-algorithm crash streams are keyed by algorithm *name*, and the
  // workload stream is independent of the algorithm list: every number in
  // a series — including the with-crash ones — must not depend on which
  // other algorithms ran or in what order.
  SweepConfig lone = tiny_config();
  lone.algos = {"rltf"};
  SweepConfig paired = tiny_config();
  paired.algos = {"ltf", "rltf"};
  const auto a = run_granularity_sweep(lone);
  const auto b = run_granularity_sweep(paired);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].at("rltf").sim0, b[i].at("rltf").sim0);
    EXPECT_DOUBLE_EQ(a[i].at("rltf").ub, b[i].at("rltf").ub);
    EXPECT_DOUBLE_EQ(a[i].at("rltf").simc, b[i].at("rltf").simc);
    EXPECT_DOUBLE_EQ(a[i].at("rltf").overheadc, b[i].at("rltf").overheadc);
  }
}

TEST(Sweep, FigureTablesHaveTheRightSeries) {
  const auto points = run_granularity_sweep(tiny_config());
  const Table bounds = figure_latency_bounds(points);
  EXPECT_EQ(bounds.num_rows(), points.size());
  EXPECT_EQ(bounds.num_cols(), 5u);
  const Table crash = figure_latency_crash(points, 1);
  EXPECT_EQ(crash.num_cols(), 5u);
  const Table overhead = figure_overhead(points, 1);
  EXPECT_EQ(overhead.num_cols(), 5u);
  const Table diag = figure_diagnostics(points);
  EXPECT_EQ(diag.num_rows(), points.size());
  const std::string rendered = render_figure(points, "Figure test", 1);
  EXPECT_NE(rendered.find("Figure test"), std::string::npos);
  EXPECT_NE(rendered.find("UpperBound"), std::string::npos);
  EXPECT_NE(rendered.find("overhead"), std::string::npos);
  EXPECT_NE(rendered.find("R-LTF"), std::string::npos);
}

TEST(Sweep, FigureColumnsScaleWithTheAlgorithmList) {
  SweepConfig config = tiny_config();
  config.algos = {"ltf", "rltf", "heft"};
  config.g_min = 1.0;
  config.g_max = 1.0;
  const auto points = run_granularity_sweep(config);
  EXPECT_EQ(figure_latency_bounds(points).num_cols(), 1u + 2u * 3u);
  EXPECT_EQ(figure_latency_crash(points, 1).num_cols(), 1u + 2u * 3u);
  EXPECT_EQ(figure_overhead(points, 1).num_cols(), 1u + 2u * 3u);
  EXPECT_EQ(figure_diagnostics(points).num_cols(), 3u + 5u * 3u + 1u);
}

// An explicit CountModel(eps) must reproduce the legacy scalar-ε sweep bit
// for bit: same series keys, same numbers, same crash streams.
TEST(Sweep, ExplicitCountModelMatchesLegacySweep) {
  const SweepConfig legacy = tiny_config();
  SweepConfig modeled = tiny_config();
  modeled.fault_models = {FaultModel::count(legacy.eps)};
  const auto a = run_granularity_sweep(legacy);
  const auto b = run_granularity_sweep(modeled);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].series.size(), b[i].series.size());
    EXPECT_EQ(a[i].instances, b[i].instances);
    EXPECT_DOUBLE_EQ(a[i].ff_sim0, b[i].ff_sim0);
    for (std::size_t s = 0; s < a[i].series.size(); ++s) {
      EXPECT_EQ(a[i].series[s].name, b[i].series[s].name);
      EXPECT_EQ(a[i].series[s].label, b[i].series[s].label);
      EXPECT_DOUBLE_EQ(a[i].series[s].ub, b[i].series[s].ub);
      EXPECT_DOUBLE_EQ(a[i].series[s].sim0, b[i].series[s].sim0);
      EXPECT_DOUBLE_EQ(a[i].series[s].simc, b[i].series[s].simc);
      EXPECT_DOUBLE_EQ(a[i].series[s].overheadc, b[i].series[s].overheadc);
      EXPECT_DOUBLE_EQ(a[i].series[s].repairs, b[i].series[s].repairs);
      EXPECT_EQ(a[i].series[s].failures, b[i].series[s].failures);
    }
  }
}

// A sweep over several fault models produces one series per (algo, model)
// pair with decorated keys, a reliability column for the probabilistic
// series, and crash trials drawn from the model (no starvation after
// repair).
TEST(Sweep, FaultModelAxisProducesDecoratedSeries) {
  SweepConfig config = tiny_config();
  config.algos = {"rltf"};
  config.fault_models = {FaultModel::count(1), FaultModel::probabilistic(0.99)};
  config.workload.fail_prob_lo = 0.01;
  config.workload.fail_prob_hi = 0.06;
  config.g_min = 1.0;
  config.g_max = 1.0;
  config.graphs_per_point = 3;
  const auto points = run_granularity_sweep(config);
  ASSERT_EQ(points.size(), 1u);
  ASSERT_EQ(points[0].series.size(), 2u);
  const AlgoSeries& count = points[0].at("rltf@count:eps=1");
  const AlgoSeries& prob = points[0].at("rltf@prob:R=0.99");
  EXPECT_EQ(count.label, "R-LTF [count:eps=1]");
  EXPECT_EQ(prob.label, "R-LTF [prob:R=0.99]");
  EXPECT_GT(count.sim0, 0.0);
  EXPECT_GT(prob.sim0, 0.0);
  EXPECT_GT(prob.simc, 0.0);
  // Repair drives every scheduled instance to the target reliability.
  EXPECT_GE(prob.reliability, 0.99);
  EXPECT_DOUBLE_EQ(count.reliability, 0.0);  // count series carry no estimate
  EXPECT_EQ(points[0].starved, 0u);
  // The figure layer scales with the decorated series list.
  EXPECT_EQ(figure_latency_bounds(points).num_cols(), 1u + 2u * 2u);
  const auto tables = per_series_tables(points);
  ASSERT_EQ(tables.size(), 2u);
  EXPECT_EQ(tables[0].first, "rltf@count:eps=1");
  EXPECT_EQ(tables[1].first, "rltf@prob:R=0.99");
  EXPECT_EQ(tables[0].second.num_cols(), 12u);
}

TEST(Sweep, RejectsBadConfig) {
  SweepConfig config = tiny_config();
  config.crashes = 3;  // > eps
  EXPECT_THROW((void)run_granularity_sweep(config), std::invalid_argument);
  SweepConfig config2 = tiny_config();
  config2.g_step = 0.0;
  EXPECT_THROW((void)run_granularity_sweep(config2), std::invalid_argument);
  SweepConfig config3 = tiny_config();
  config3.algos = {};
  EXPECT_THROW((void)run_granularity_sweep(config3), std::invalid_argument);
  // Unknown algorithms and unknown/out-of-range parameters now fail at
  // variant-spec construction — before any sweep work is spent.
  SweepConfig config4 = tiny_config();
  EXPECT_THROW((config4.algos = {"ltf", "no_such_algorithm"}), std::invalid_argument);
  EXPECT_THROW((config4.algos = {"rltf[bogus=1]"}), std::invalid_argument);
  // Two variants with the same derived series key would silently share
  // crash streams — the sweep rejects them.
  SweepConfig config5 = tiny_config();
  config5.algos = {"rltf", "rltf"};
  EXPECT_THROW((void)run_granularity_sweep(config5), std::invalid_argument);
  SweepConfig config6 = tiny_config();
  config6.algos = {AlgoVariant("rltf[chunk=4]"), AlgoVariant("rltf[chunk=4]")};
  EXPECT_THROW((void)run_granularity_sweep(config6), std::invalid_argument);
}

// The tentpole acceptance: variants of the same algorithm with different
// bound parameters sweep as distinctly-keyed, distinctly-labeled series —
// and the plain series stays bit-identical to a sweep without the extra
// variant (series streams are keyed by variant name).
TEST(Sweep, ParameterizedVariantsGetTheirOwnSeries) {
  SweepConfig config = tiny_config();
  config.algos = {"rltf", "rltf[chunk=1,rule1=off]"};
  config.g_min = 1.0;
  config.g_max = 1.0;
  const auto points = run_granularity_sweep(config);
  ASSERT_EQ(points.size(), 1u);
  ASSERT_EQ(points[0].series.size(), 2u);
  const AlgoSeries& plain = points[0].at("rltf");
  const AlgoSeries& ablated = points[0].at("rltf[chunk=1,rule1=off]");
  EXPECT_EQ(plain.label, "R-LTF");
  EXPECT_EQ(ablated.label, "R-LTF[chunk=1,rule1=off]");
  EXPECT_TRUE(ablated.sim0 > 0.0 || ablated.failures > 0);

  SweepConfig lone = tiny_config();
  lone.algos = {"rltf"};
  lone.g_min = 1.0;
  lone.g_max = 1.0;
  const auto alone = run_granularity_sweep(lone);
  EXPECT_DOUBLE_EQ(points[0].at("rltf").sim0, alone[0].at("rltf").sim0);
  EXPECT_DOUBLE_EQ(points[0].at("rltf").simc, alone[0].at("rltf").simc);
  EXPECT_DOUBLE_EQ(points[0].at("rltf").ub, alone[0].at("rltf").ub);

  // The figure layer derives its columns from the variant labels.
  const Table bounds = figure_latency_bounds(points);
  EXPECT_EQ(bounds.num_cols(), 5u);
  const std::string rendered = render_figure(points, "variants", 1);
  EXPECT_NE(rendered.find("R-LTF[chunk=1,rule1=off]"), std::string::npos);
}

// A variant binding the base params eps/R overrides the series' fault
// model, and the sweep measures it consistently: the replication degree,
// period calibration and crash sampling all follow the effective model.
TEST(Sweep, VariantBoundEpsOverridesTheSeriesModelConsistently) {
  SweepConfig config = tiny_config();
  config.algos = {"rltf", "rltf[eps=2,repair=on]"};
  config.g_min = 1.0;
  config.g_max = 1.0;
  const auto points = run_granularity_sweep(config);
  ASSERT_EQ(points.size(), 1u);
  const AlgoSeries& plain = points[0].at("rltf");
  const AlgoSeries& boosted = points[0].at("rltf[eps=2,repair=on]");
  EXPECT_GT(boosted.sim0, 0.0);
  // eps=2 builds three replicas per task: strictly more supply channels
  // than the eps=1 series on aggregate, and no starvation (the schedule
  // tolerates the single sampled crash by a margin).
  EXPECT_GT(boosted.comms, plain.comms);
  EXPECT_EQ(points[0].starved, 0u);

  // A variant that drops the replication below the crash count is
  // rejected up front — the guard checks the *effective* model.
  SweepConfig bad = tiny_config();
  bad.algos = {"rltf[eps=0]"};
  EXPECT_THROW((void)run_granularity_sweep(bad), std::invalid_argument);
}

// The tournament emitters (ROADMAP "win/loss matrices"): per-point winners
// and the pairwise win/loss matrix, sized by the series list.
TEST(Sweep, TournamentEmittersReportWinners) {
  const auto points = run_granularity_sweep(tiny_config());
  const Table tournament = figure_tournament(points);
  EXPECT_EQ(tournament.num_rows(), points.size());
  EXPECT_EQ(tournament.num_cols(), 6u);
  const Table matrix = tournament_matrix(points);
  EXPECT_EQ(matrix.num_rows(), 2u);        // ltf, rltf
  EXPECT_EQ(matrix.num_cols(), 1u + 2u + 1u);  // label, 2 opponents, vs FF
  const std::string rendered = render_figure(points, "tourney", 1);
  EXPECT_NE(rendered.find("Tournament"), std::string::npos);
  EXPECT_NE(rendered.find("winner"), std::string::npos);
}

}  // namespace
}  // namespace streamsched
