// Tests for the experiment sweep harness: small end-to-end runs, series
// sanity (R-LTF <= LTF on aggregate, bounds above simulations), threading
// determinism and figure assembly.
#include <gtest/gtest.h>

#include "exp/figures.hpp"
#include "exp/sweep.hpp"

namespace streamsched {
namespace {

SweepConfig tiny_config() {
  SweepConfig config;
  config.workload.v_min = 30;
  config.workload.v_max = 50;
  config.eps = 1;
  config.crashes = 1;
  config.graphs_per_point = 4;
  config.crash_trials = 2;
  config.g_min = 0.5;
  config.g_max = 1.5;
  config.g_step = 0.5;
  config.seed = 7;
  config.threads = 2;
  config.sim_items = 20;
  config.sim_warmup = 5;
  return config;
}

TEST(Sweep, RunInstanceProducesConsistentRecord) {
  const SweepConfig config = tiny_config();
  const InstanceRecord rec = run_instance(config, 1.0, 12345);
  ASSERT_TRUE(rec.usable);
  EXPECT_GT(rec.period, 0.0);
  EXPECT_GT(rec.ff_sim0, 0.0);
  ASSERT_TRUE(rec.ltf.scheduled);
  ASSERT_TRUE(rec.rltf.scheduled);
  // The simulated no-crash latency never exceeds the stage bound.
  EXPECT_LE(rec.ltf.sim0, rec.ltf.ub * (1.0 + 1e-9));
  EXPECT_LE(rec.rltf.sim0, rec.rltf.ub * (1.0 + 1e-9));
  // Repair enforces survival: no starvation in the crash trials.
  EXPECT_FALSE(rec.ltf.starved);
  EXPECT_FALSE(rec.rltf.starved);
  // Replication should not *substantially* beat the fault-free schedule.
  // (Both are heuristics; R-LTF with replicas occasionally finds a
  // slightly better stage structure than its ε = 0 run.)
  EXPECT_GE(rec.ltf.sim0, rec.ff_sim0 * 0.75);
  EXPECT_GE(rec.rltf.sim0, rec.ff_sim0 * 0.75);
}

TEST(Sweep, DeterministicAcrossThreadCounts) {
  SweepConfig serial = tiny_config();
  serial.threads = 1;
  SweepConfig parallel = tiny_config();
  parallel.threads = 4;
  const auto a = run_granularity_sweep(serial);
  const auto b = run_granularity_sweep(parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].rltf_sim0, b[i].rltf_sim0);
    EXPECT_DOUBLE_EQ(a[i].ltf_ub, b[i].ltf_ub);
    EXPECT_EQ(a[i].instances, b[i].instances);
  }
}

TEST(Sweep, SeriesShapesMatchThePaper) {
  const auto points = run_granularity_sweep(tiny_config());
  ASSERT_EQ(points.size(), 3u);
  double rltf_total = 0, ltf_total = 0;
  for (const auto& p : points) {
    EXPECT_GT(p.instances, 0u);
    // Bounds dominate simulated latencies (both normalized identically).
    EXPECT_LE(p.rltf_sim0, p.rltf_ub * (1.0 + 1e-9));
    EXPECT_LE(p.ltf_sim0, p.ltf_ub * (1.0 + 1e-9));
    // Overheads versus the fault-free schedule are essentially
    // non-negative (small negative means on a few instances the
    // replicated heuristic found a slightly better stage structure).
    EXPECT_GE(p.rltf_overhead0, -25.0);
    EXPECT_GE(p.ltf_overhead0, -25.0);
    EXPECT_EQ(p.starved, 0u);
    rltf_total += p.rltf_sim0;
    ltf_total += p.ltf_sim0;
  }
  // The paper's headline result on aggregate: R-LTF beats LTF.
  EXPECT_LE(rltf_total, ltf_total * 1.05);
}

TEST(Sweep, FigureTablesHaveTheRightSeries) {
  const auto points = run_granularity_sweep(tiny_config());
  const Table bounds = figure_latency_bounds(points);
  EXPECT_EQ(bounds.num_rows(), points.size());
  EXPECT_EQ(bounds.num_cols(), 5u);
  const Table crash = figure_latency_crash(points, 1);
  EXPECT_EQ(crash.num_cols(), 5u);
  const Table overhead = figure_overhead(points, 1);
  EXPECT_EQ(overhead.num_cols(), 5u);
  const Table diag = figure_diagnostics(points);
  EXPECT_EQ(diag.num_rows(), points.size());
  const std::string rendered = render_figure(points, "Figure test", 1);
  EXPECT_NE(rendered.find("Figure test"), std::string::npos);
  EXPECT_NE(rendered.find("UpperBound"), std::string::npos);
  EXPECT_NE(rendered.find("overhead"), std::string::npos);
}

TEST(Sweep, RejectsBadConfig) {
  SweepConfig config = tiny_config();
  config.crashes = 3;  // > eps
  EXPECT_THROW((void)run_granularity_sweep(config), std::invalid_argument);
  SweepConfig config2 = tiny_config();
  config2.g_step = 0.0;
  EXPECT_THROW((void)run_granularity_sweep(config2), std::invalid_argument);
}

}  // namespace
}  // namespace streamsched
