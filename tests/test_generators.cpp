// Tests for the task-graph generators: structural shape of the
// deterministic families and properties of the random families
// (parameterized across seeds).
#include <gtest/gtest.h>

#include "graph/dot.hpp"
#include "graph/generators.hpp"
#include "graph/width.hpp"
#include "util/rng.hpp"

namespace streamsched {
namespace {

TEST(Generators, ChainShape) {
  const Dag d = make_chain(5, 2.0, 3.0);
  EXPECT_EQ(d.num_tasks(), 5u);
  EXPECT_EQ(d.num_edges(), 4u);
  EXPECT_EQ(d.entries().size(), 1u);
  EXPECT_EQ(d.exits().size(), 1u);
  for (TaskId t = 0; t < 5; ++t) EXPECT_EQ(d.work(t), 2.0);
  for (EdgeId e = 0; e < 4; ++e) EXPECT_EQ(d.edge(e).volume, 3.0);
}

TEST(Generators, ForkJoinShape) {
  const Dag d = make_fork_join(4, 1.0, 1.0);
  EXPECT_EQ(d.num_tasks(), 6u);
  EXPECT_EQ(d.num_edges(), 8u);
  EXPECT_EQ(d.entries().size(), 1u);
  EXPECT_EQ(d.exits().size(), 1u);
  EXPECT_EQ(graph_width(d), 4u);
}

TEST(Generators, OutTreeShape) {
  const Dag d = make_out_tree(3, 3, 1.0, 1.0);
  EXPECT_EQ(d.num_tasks(), 1u + 3u + 9u);
  EXPECT_EQ(d.num_edges(), 12u);
  EXPECT_EQ(d.entries().size(), 1u);
  EXPECT_EQ(d.exits().size(), 9u);
}

TEST(Generators, InTreeShape) {
  const Dag d = make_in_tree(3, 3, 1.0, 1.0);
  EXPECT_EQ(d.num_tasks(), 13u);
  EXPECT_EQ(d.entries().size(), 9u);
  EXPECT_EQ(d.exits().size(), 1u);
}

class RandomGeneratorTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomGeneratorTest, LayeredIsWellFormed) {
  Rng rng(GetParam());
  const WeightRanges ranges{50.0, 150.0, 50.0, 150.0};
  const Dag d = make_random_layered(rng, 80, 10, 0.2, ranges);
  EXPECT_EQ(d.num_tasks(), 80u);
  EXPECT_GE(d.num_edges(), 70u);  // connectivity guarantees near-spanning
  (void)d.topological_order();    // throws if cyclic
  for (TaskId t = 0; t < d.num_tasks(); ++t) {
    EXPECT_GE(d.work(t), 50.0);
    EXPECT_LE(d.work(t), 150.0);
  }
  for (EdgeId e = 0; e < d.num_edges(); ++e) {
    EXPECT_GE(d.edge(e).volume, 50.0);
    EXPECT_LE(d.edge(e).volume, 150.0);
  }
}

TEST_P(RandomGeneratorTest, LayeredHasNoIsolatedMiddleTasks) {
  Rng rng(GetParam());
  const Dag d = make_random_layered(rng, 60, 8, 0.1, WeightRanges{});
  // Every task is an entry or has a predecessor; every task is an exit or
  // has a successor (the generator's connectivity guarantee).
  std::size_t entries = 0, exits = 0;
  for (TaskId t = 0; t < d.num_tasks(); ++t) {
    if (d.in_degree(t) == 0) ++entries;
    if (d.out_degree(t) == 0) ++exits;
  }
  EXPECT_GT(entries, 0u);
  EXPECT_GT(exits, 0u);
  // All entries live in the first layer and exits in the last: with 8
  // layers of ~7-8 tasks, neither can cover most of the graph.
  EXPECT_LT(entries + exits, d.num_tasks());
}

TEST_P(RandomGeneratorTest, ErdosIsAcyclicAndDense) {
  Rng rng(GetParam());
  const Dag d = make_random_erdos(rng, 40, 0.2, WeightRanges{});
  EXPECT_EQ(d.num_tasks(), 40u);
  (void)d.topological_order();
  // Expected edges = p * n(n-1)/2 = 156; allow generous slack.
  EXPECT_GT(d.num_edges(), 80u);
  EXPECT_LT(d.num_edges(), 260u);
}

TEST_P(RandomGeneratorTest, SeriesParallelSingleSourceSink) {
  Rng rng(GetParam());
  const Dag d = make_random_series_parallel(rng, 40, WeightRanges{});
  EXPECT_GE(d.num_tasks(), 20u);
  (void)d.topological_order();
  EXPECT_EQ(d.entries().size(), 1u);
  EXPECT_EQ(d.exits().size(), 1u);
}

TEST_P(RandomGeneratorTest, GeneratorsAreDeterministicInSeed) {
  Rng a(GetParam()), b(GetParam());
  const Dag da = make_random_layered(a, 50, 7, 0.25, WeightRanges{});
  const Dag db = make_random_layered(b, 50, 7, 0.25, WeightRanges{});
  ASSERT_EQ(da.num_edges(), db.num_edges());
  for (EdgeId e = 0; e < da.num_edges(); ++e) {
    EXPECT_EQ(da.edge(e).src, db.edge(e).src);
    EXPECT_EQ(da.edge(e).dst, db.edge(e).dst);
    EXPECT_EQ(da.edge(e).volume, db.edge(e).volume);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGeneratorTest,
                         ::testing::Values(1u, 2u, 3u, 42u, 1234u, 99999u));

TEST(Generators, PaperFigure1Shape) {
  const Dag d = make_paper_figure1();
  EXPECT_EQ(d.num_tasks(), 4u);
  EXPECT_EQ(d.num_edges(), 4u);
  for (TaskId t = 0; t < 4; ++t) EXPECT_EQ(d.work(t), 15.0);
  for (EdgeId e = 0; e < 4; ++e) EXPECT_EQ(d.edge(e).volume, 2.0);
  EXPECT_TRUE(d.has_edge(0, 1));
  EXPECT_TRUE(d.has_edge(0, 2));
  EXPECT_TRUE(d.has_edge(1, 3));
  EXPECT_TRUE(d.has_edge(2, 3));
}

TEST(Generators, PaperFigure2Shape) {
  const Dag d = make_paper_figure2();
  EXPECT_EQ(d.num_tasks(), 7u);
  EXPECT_EQ(d.num_edges(), 9u);
  EXPECT_DOUBLE_EQ(d.total_work(), 72.0);
  EXPECT_EQ(d.entries(), (std::vector<TaskId>{0}));
  EXPECT_EQ(d.exits(), (std::vector<TaskId>{6}));
  // t6's predecessors are t2, t4, t5; t7's are t3, t6 (0-based ids).
  EXPECT_EQ(d.predecessors(5), (std::vector<TaskId>{1, 3, 4}));
  EXPECT_EQ(d.predecessors(6), (std::vector<TaskId>{2, 5}));
}

TEST(Generators, DotExportContainsNodesAndEdges) {
  const Dag d = make_paper_figure1();
  const std::string dot = to_dot(d, "fig1");
  EXPECT_NE(dot.find("digraph fig1"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("t1"), std::string::npos);
  EXPECT_NE(dot.find("w=15.0"), std::string::npos);
}

TEST(Generators, InvalidParametersRejected) {
  Rng rng(1);
  EXPECT_THROW((void)make_chain(0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)make_fork_join(0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)make_out_tree(0, 2, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)make_random_layered(rng, 3, 5, 0.5, WeightRanges{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace streamsched
