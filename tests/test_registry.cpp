// Tests for the scheduler registry: built-in registration, lookup by name,
// unknown-name errors, option tweaks, declared parameter spaces, CLI
// variant selection, and every registered algorithm producing a
// validate()-clean schedule on the paper's Figure 2 instance.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/registry.hpp"
#include "core/variant.hpp"
#include "graph/generators.hpp"
#include "platform/generators.hpp"
#include "schedule/metrics.hpp"
#include "schedule/validate.hpp"
#include "util/cli.hpp"

namespace streamsched {
namespace {

TEST(Registry, BuiltInsAreRegisteredInOrder) {
  const auto names = SchedulerRegistry::instance().names();
  ASSERT_GE(names.size(), 5u);
  const std::vector<std::string> builtins{"fault_free", "ltf", "rltf", "heft", "stage_pack"};
  for (std::size_t i = 0; i < builtins.size(); ++i) EXPECT_EQ(names[i], builtins[i]);
}

TEST(Registry, LookupByName) {
  const Scheduler& rltf = find_scheduler("rltf");
  EXPECT_EQ(rltf.name, "rltf");
  EXPECT_EQ(rltf.label, "R-LTF");
  EXPECT_TRUE(static_cast<bool>(rltf.fn));
  EXPECT_EQ(try_find_scheduler("ltf"), SchedulerRegistry::instance().find("ltf"));
  EXPECT_EQ(try_find_scheduler("no_such_algorithm"), nullptr);
}

TEST(Registry, UnknownNameThrowsListingKnownOnes) {
  try {
    (void)find_scheduler("bogus");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bogus"), std::string::npos);
    EXPECT_NE(what.find("rltf"), std::string::npos);
  }
}

TEST(Registry, RejectsBadRegistrations) {
  auto& registry = SchedulerRegistry::instance();
  const auto noop_fn = [](const Dag&, const Platform&, const SchedulerOptions&) {
    return ScheduleResult::failure("noop");
  };
  EXPECT_THROW(registry.add({"", "Empty", "", noop_fn, {}, {}}), std::invalid_argument);
  EXPECT_THROW(registry.add({"ltf", "Duplicate", "", noop_fn, {}, {}}),
               std::invalid_argument);
  EXPECT_THROW(registry.add({"fnless", "NoFn", "", {}, {}, {}}), std::invalid_argument);
}

TEST(Registry, ResolveSchedulersKeepsOrderAndThrowsOnUnknown) {
  const auto algos = resolve_schedulers({"rltf", "ltf"});
  ASSERT_EQ(algos.size(), 2u);
  EXPECT_EQ(algos[0]->name, "rltf");
  EXPECT_EQ(algos[1]->name, "ltf");
  EXPECT_THROW((void)resolve_schedulers({"ltf", "bogus"}), std::invalid_argument);
}

TEST(Registry, FaultFreeTweakForcesEpsZero) {
  const Scheduler& ff = find_scheduler("fault_free");
  SchedulerOptions options;
  options.eps = 3;
  options.repair = true;
  const SchedulerOptions adjusted = ff.adjusted(options);
  EXPECT_EQ(adjusted.eps, 0u);
  EXPECT_FALSE(adjusted.repair);

  const Dag dag = make_paper_figure2();
  const Platform platform = make_homogeneous(10, 1.0);
  options.period = 22.0;
  const ScheduleResult r = ff.schedule(dag, platform, options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.schedule->copies(), 1u);  // no replication despite eps = 3
}

TEST(Registry, ListingMentionsEveryAlgorithmAndItsParameterSpace) {
  const std::string listing = registry_listing();
  for (const std::string& name : SchedulerRegistry::instance().names()) {
    EXPECT_NE(listing.find(name), std::string::npos) << name;
  }
  // The declared spaces are part of the help listing.
  EXPECT_NE(listing.find("chunk"), std::string::npos);
  EXPECT_NE(listing.find("rule1"), std::string::npos);
  EXPECT_NE(listing.find("int in [0, 4096]"), std::string::npos);
}

TEST(Registry, BuiltInsDeclareTheirTunables) {
  const Scheduler& rltf = find_scheduler("rltf");
  ASSERT_NE(rltf.space.find("chunk"), nullptr);
  ASSERT_NE(rltf.space.find("one_to_one"), nullptr);
  ASSERT_NE(rltf.space.find("rule1"), nullptr);
  ASSERT_NE(rltf.space.find("eps"), nullptr);
  ASSERT_NE(rltf.space.find("R"), nullptr);
  ASSERT_NE(rltf.space.find("repair"), nullptr);
  EXPECT_EQ(rltf.space.find("bogus"), nullptr);

  const Scheduler& ltf = find_scheduler("ltf");
  EXPECT_NE(ltf.space.find("chunk"), nullptr);
  EXPECT_EQ(ltf.space.find("rule1"), nullptr);  // rule1 is R-LTF-only

  // Baselines expose only the shared base tunables; the fault-free
  // reference has no knobs at all.
  EXPECT_NE(find_scheduler("heft").space.find("eps"), nullptr);
  EXPECT_EQ(find_scheduler("heft").space.find("chunk"), nullptr);
  EXPECT_TRUE(find_scheduler("fault_free").space.empty());
}

// The acceptance bar of the refactor: every built-in scheduler produces a
// structurally valid schedule on the paper's worked example (Figure 2,
// m = 10 homogeneous processors, ε = 1), at its nominal period or a
// moderately relaxed one (the algorithms may legitimately fail at 20).
TEST(Registry, AllBuiltInsValidateCleanOnFigure2) {
  const Dag dag = make_paper_figure2();
  const Platform platform = make_homogeneous(10, 1.0);
  const std::vector<std::string> builtins{"fault_free", "ltf", "rltf", "heft", "stage_pack"};
  for (const std::string& name : builtins) {
    const Scheduler& algo = find_scheduler(name);
    SchedulerOptions options;
    options.eps = 1;
    ScheduleResult result;
    for (double period : {20.0, 22.0, 26.0, 32.0, 40.0, 60.0, 100.0}) {
      options.period = period;
      result = algo.schedule(dag, platform, options);
      if (result.ok()) break;
    }
    ASSERT_TRUE(result.ok()) << name << ": " << result.error;
    const auto report = validate_schedule(*result.schedule);
    EXPECT_TRUE(report.ok()) << name << ": " << report.summary();
    EXPECT_GE(num_stages(*result.schedule), 1u) << name;
  }
}

TEST(Registry, SchedulersFromCliSelectsAndHelps) {
  {
    const char* argv[] = {"prog", "--algo=ltf,rltf"};
    Cli cli(2, argv);
    const AlgoSelection selection = schedulers_from_cli(cli, "rltf");
    cli.finish();
    EXPECT_FALSE(selection.help_requested());
    ASSERT_EQ(selection.variants.size(), 2u);
    EXPECT_EQ(selection.variants[0].name(), "ltf");
    EXPECT_EQ(selection.variants[1].name(), "rltf");
  }
  {
    const char* argv[] = {"prog"};
    Cli cli(1, argv);
    const AlgoSelection selection = schedulers_from_cli(cli, "stage_pack");
    ASSERT_EQ(selection.variants.size(), 1u);
    EXPECT_EQ(selection.variants[0].name(), "stage_pack");
  }
  {
    // Variant specs carry bound parameters through --algo; commas inside
    // the brackets belong to the spec, not the list.
    const char* argv[] = {"prog", "--algo=rltf[chunk=4,rule1=off],ltf"};
    Cli cli(2, argv);
    const AlgoSelection selection = schedulers_from_cli(cli, "rltf");
    cli.finish();
    ASSERT_EQ(selection.variants.size(), 2u);
    EXPECT_EQ(selection.variants[0].name(), "rltf[chunk=4,rule1=off]");
    EXPECT_EQ(selection.variants[0].label(), "R-LTF[chunk=4,rule1=off]");
    EXPECT_EQ(selection.variants[1].name(), "ltf");
  }
  {
    // The explicit help-requested signal: no sentinel empty vector the
    // caller must "know" about.
    const char* argv[] = {"prog", "--algo=help"};
    Cli cli(2, argv);
    testing::internal::CaptureStdout();
    const AlgoSelection selection = schedulers_from_cli(cli, "rltf");
    const std::string out = testing::internal::GetCapturedStdout();
    EXPECT_TRUE(selection.help_requested());
    EXPECT_TRUE(selection.variants.empty());
    EXPECT_NE(out.find("registered schedulers"), std::string::npos);
    // The listing includes each algorithm's declared parameter space.
    EXPECT_NE(out.find("chunk"), std::string::npos);
    EXPECT_NE(out.find("rule1"), std::string::npos);
  }
  {
    const char* argv[] = {"prog", "--algo=all"};
    Cli cli(2, argv);
    const AlgoSelection selection = schedulers_from_cli(cli, "rltf");
    EXPECT_FALSE(selection.help_requested());
    EXPECT_EQ(selection.variants.size(), SchedulerRegistry::instance().all().size());
  }
  {
    const char* argv[] = {"prog", "--algo=bogus"};
    Cli cli(2, argv);
    EXPECT_THROW((void)schedulers_from_cli(cli, "rltf"), std::invalid_argument);
  }
  {
    const char* argv[] = {"prog", "--algo=rltf[chunk=4"};
    Cli cli(2, argv);
    EXPECT_THROW((void)schedulers_from_cli(cli, "rltf"), std::invalid_argument);
  }
}

}  // namespace
}  // namespace streamsched
