// Tests for the one-to-one mapping procedure: singleton detection, θ,
// head selection and consumption, locking interplay.
#include <gtest/gtest.h>

#include "core/build_state.hpp"
#include "core/one_to_one.hpp"
#include "graph/generators.hpp"
#include "platform/generators.hpp"

namespace streamsched {
namespace {

TEST(OneToOne, EntryTaskContext) {
  Dag d = make_chain(2, 1.0, 1.0);
  const Platform p = Platform::uniform(4, 1.0, 1.0);
  BuildState state(d, p, 1, 100.0);
  const auto ctx = make_one_to_one_context(state, 0);
  EXPECT_EQ(ctx.theta, 2u);  // ε + 1
  EXPECT_TRUE(ctx.remaining.empty());
  EXPECT_TRUE(ctx.available());
}

TEST(OneToOne, SingletonDetection) {
  Dag d = make_chain(2, 2.0, 2.0);
  const Platform p = Platform::uniform(4, 1.0, 0.5);
  BuildState state(d, p, 1, 100.0);
  state.commit(0, 0, state.evaluate(0, 0, {}));
  state.commit(0, 1, state.evaluate(0, 1, {}));
  const auto ctx = make_one_to_one_context(state, 1);
  EXPECT_EQ(ctx.theta, 2u);
  ASSERT_EQ(ctx.remaining.size(), 1u);
  EXPECT_EQ(ctx.remaining[0].size(), 2u);
}

TEST(OneToOne, ColocatedPredecessorsAreNotSingleton) {
  // Join with both predecessors' copy-0 on one processor: that processor
  // hosts two replicas over the predecessor set => not singleton.
  Dag d;
  d.add_task("a", 1.0);
  d.add_task("b", 1.0);
  d.add_task("join", 1.0);
  d.add_edge(0, 2, 1.0);
  d.add_edge(1, 2, 1.0);
  const Platform p = Platform::uniform(4, 1.0, 0.5);
  BuildState state(d, p, 1, 100.0);
  // a#0 and b#0 both on P0; a#1 on P1, b#1 on P2.
  auto c = state.evaluate(0, 0, {});
  state.commit(0, 0, c);
  state.commit(0, 1, state.evaluate(0, 1, {}));
  state.commit(1, 0, state.evaluate(1, 0, {}));
  state.commit(1, 1, state.evaluate(1, 2, {}));
  const auto ctx = make_one_to_one_context(state, 2);
  // Only the copies on P1 / P2 are singleton: one per predecessor.
  EXPECT_EQ(ctx.theta, 1u);
  EXPECT_EQ(ctx.remaining[0].size(), 1u);
  EXPECT_EQ(ctx.remaining[0][0], (ReplicaRef{0, 1}));
  EXPECT_EQ(ctx.remaining[1].size(), 1u);
  EXPECT_EQ(ctx.remaining[1][0], (ReplicaRef{1, 1}));
}

TEST(OneToOne, PlanPrefersEarliestFinish) {
  Dag d = make_chain(2, 2.0, 2.0);
  Platform p({1.0, 1.0, 2.0}, 0.5);  // P2 twice as fast
  BuildState state(d, p, 0, 100.0);
  state.commit(0, 0, state.evaluate(0, 0, {}));
  const auto ctx = make_one_to_one_context(state, 1);
  std::vector<bool> locked(3, false);
  const auto choice = plan_one_to_one(state, 1, ctx, locked);
  ASSERT_TRUE(choice.has_value());
  // Colocated on P0: start 2, exec 2 => 4. On P2: arrival 3, exec 1 => 4.
  // Tie broken by processor order: P0.
  EXPECT_EQ(choice->candidate.proc, 0u);
  EXPECT_DOUBLE_EQ(choice->candidate.finish, 4.0);
  ASSERT_EQ(choice->heads.size(), 1u);
  EXPECT_EQ(choice->heads[0], (ReplicaRef{0, 0}));
}

TEST(OneToOne, LockedProcessorsAreSkipped) {
  Dag d = make_chain(2, 2.0, 2.0);
  const Platform p = Platform::uniform(3, 1.0, 0.5);
  BuildState state(d, p, 0, 100.0);
  state.commit(0, 0, state.evaluate(0, 0, {}));
  const auto ctx = make_one_to_one_context(state, 1);
  std::vector<bool> locked(3, false);
  locked[0] = true;  // forbid colocation
  const auto choice = plan_one_to_one(state, 1, ctx, locked);
  ASSERT_TRUE(choice.has_value());
  EXPECT_NE(choice->candidate.proc, 0u);
  EXPECT_EQ(choice->candidate.stage, 2u);
}

TEST(OneToOne, ReturnsNulloptWhenNothingFeasible) {
  Dag d = make_chain(2, 10.0, 2.0);
  const Platform p = Platform::uniform(2, 1.0, 0.5);
  BuildState state(d, p, 0, 12.0);
  state.commit(0, 0, state.evaluate(0, 0, {}));
  const auto ctx = make_one_to_one_context(state, 1);
  std::vector<bool> locked(2, false);
  locked[1] = true;  // P0 would exceed the period (20 > 12), P1 locked
  const auto choice = plan_one_to_one(state, 1, ctx, locked);
  EXPECT_FALSE(choice.has_value());
}

TEST(OneToOne, ConsumeHeadsRemovesAndCounts) {
  Dag d = make_chain(2, 2.0, 2.0);
  const Platform p = Platform::uniform(4, 1.0, 0.5);
  BuildState state(d, p, 1, 100.0);
  state.commit(0, 0, state.evaluate(0, 0, {}));
  state.commit(0, 1, state.evaluate(0, 1, {}));
  auto ctx = make_one_to_one_context(state, 1);
  EXPECT_EQ(ctx.theta, 2u);
  consume_heads(ctx, {{0, 0}});
  EXPECT_EQ(ctx.used, 1u);
  ASSERT_EQ(ctx.remaining[0].size(), 1u);
  EXPECT_EQ(ctx.remaining[0][0], (ReplicaRef{0, 1}));
  EXPECT_TRUE(ctx.available());
  consume_heads(ctx, {{0, 1}});
  EXPECT_FALSE(ctx.available());
  EXPECT_THROW(consume_heads(ctx, {{0, 0}}), std::logic_error);  // already gone
}

TEST(OneToOne, HeadChoiceMinimizesArrival) {
  // Two copies of the predecessor finish at different times; the head for
  // a fresh processor must be the earlier one.
  Dag d = make_chain(2, 2.0, 2.0);
  Platform p({2.0, 0.5, 1.0, 1.0}, 0.5);
  BuildState state(d, p, 1, 100.0);
  state.commit(0, 0, state.evaluate(0, 0, {}));  // finish 1
  state.commit(0, 1, state.evaluate(0, 1, {}));  // finish 4
  const auto ctx = make_one_to_one_context(state, 1);
  std::vector<bool> locked(4, false);
  locked[0] = locked[1] = true;  // force a remote placement
  const auto choice = plan_one_to_one(state, 1, ctx, locked);
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(choice->heads[0], (ReplicaRef{0, 0}));
}

}  // namespace
}  // namespace streamsched
