// Service front-end suite: warm-start cache persistence (bit-identical
// round trip, loud rejection of corrupted / truncated / foreign-platform
// snapshots, per-entry drops for tampered claims and stale placements) and
// the wire server end to end over a unix-domain socket — cold admission,
// cache hits, failure events driving incremental repair, QoS shedding
// under a saturated batch lane while interactive admissions keep landing,
// drain-on-shutdown semantics, and a warm restart that serves every
// placement bit-identically without touching the cold path.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/fingerprint.hpp"
#include "graph/generators.hpp"
#include "net/client.hpp"
#include "net/wire.hpp"
#include "platform/generators.hpp"
#include "schedule/survival.hpp"
#include "service/daemon.hpp"
#include "service/persistence.hpp"
#include "service/server.hpp"
#include "util/rng.hpp"

namespace streamsched {
namespace {

Dag small_dag(std::uint64_t seed, std::size_t tasks = 14) {
  Rng rng(seed);
  return make_random_layered(rng, tasks, 4, 0.4, WeightRanges{});
}

Platform small_platform(std::uint64_t seed = 5, std::size_t m = 8) {
  Rng rng(seed);
  return make_reliability_heterogeneous(rng, m, 0.02, 0.08);
}

PlacementRequest request_for(std::uint64_t seed, const FaultModel& model) {
  PlacementRequest request;
  request.dag = small_dag(seed);
  request.variant = AlgoVariant("rltf");
  request.model = model;
  return request;
}

/// Tests may run concurrently (one ctest entry per TEST), so every socket
/// and snapshot file gets a per-process, per-test unique relative path.
std::string unique_path(const std::string& stem, const std::string& ext) {
  return stem + "_" + std::to_string(::getpid()) + ext;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// Removes the file in the destructor so failing tests don't leak state
/// into reruns.
struct FileGuard {
  std::string path;
  explicit FileGuard(std::string p) : path(std::move(p)) { std::remove(path.c_str()); }
  ~FileGuard() { std::remove(path.c_str()); }
};

// ------------------------------------------------------------- persistence --

TEST(CachePersistence, RoundTripIsBitIdentical) {
  const FileGuard snap(unique_path("snap_roundtrip", ".snapshot"));
  PlacementDaemon source(small_platform(), DaemonConfig{});
  std::vector<PlacementResponse> admitted;
  admitted.push_back(source.admit(request_for(101, FaultModel::count(1))));
  admitted.push_back(source.admit(request_for(102, FaultModel::count(2))));
  admitted.push_back(source.admit(request_for(103, FaultModel::parse("prob:R=0.9"))));
  for (const PlacementResponse& resp : admitted) ASSERT_TRUE(resp.ok) << resp.error;

  const SnapshotSaveStats saved = save_cache_snapshot(source, snap.path);
  EXPECT_EQ(saved.entries, 3u);
  EXPECT_GT(saved.bytes, 0u);

  PlacementDaemon restored(small_platform(), DaemonConfig{});
  const SnapshotLoadStats loaded = load_cache_snapshot(restored, snap.path);
  EXPECT_EQ(loaded.entries, 3u);
  EXPECT_EQ(loaded.restored, 3u);
  EXPECT_EQ(loaded.verify_failed, 0u);
  EXPECT_EQ(loaded.stale, 0u);
  EXPECT_EQ(restored.stats().restored, 3u);

  // Recency ordering survives: the restored cache walks LRU→MRU in the
  // same order, and every schedule re-serializes byte for byte.
  const auto before = source.snapshot_entries();
  const auto after = restored.snapshot_entries();
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(net::format_schedule_wire(after[i]->schedule),
              net::format_schedule_wire(before[i]->schedule));
    EXPECT_EQ(schedule_fingerprint(after[i]->schedule),
              schedule_fingerprint(before[i]->schedule));
    EXPECT_TRUE(after[i]->from_snapshot);
    EXPECT_EQ(after[i]->variant, before[i]->variant);
    EXPECT_EQ(after[i]->period_factor, before[i]->period_factor);
  }

  // Serving the original requests hits the restored entries — never the
  // cold path.
  const PlacementResponse hit = restored.admit(request_for(102, FaultModel::count(2)));
  ASSERT_TRUE(hit.ok) << hit.error;
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_TRUE(hit.placement->from_snapshot);
  EXPECT_EQ(restored.stats().cold_schedules, 0u);
}

TEST(CachePersistence, RejectsCorruptedTruncatedAndForeignSnapshots) {
  const FileGuard snap(unique_path("snap_reject", ".snapshot"));
  const FileGuard mangled(unique_path("snap_mangled", ".snapshot"));
  PlacementDaemon source(small_platform(), DaemonConfig{});
  ASSERT_TRUE(source.admit(request_for(111, FaultModel::count(1))).ok);
  (void)save_cache_snapshot(source, snap.path);
  const std::string original = read_file(snap.path);

  PlacementDaemon target(small_platform(), DaemonConfig{});

  // Missing file.
  EXPECT_THROW((void)load_cache_snapshot(target, unique_path("snap_missing", ".snapshot")),
               SnapshotError);

  // A single flipped byte fails the checksum.
  std::string corrupted = original;
  corrupted[corrupted.size() / 2] ^= 0x01;
  write_file(mangled.path, corrupted);
  EXPECT_THROW((void)load_cache_snapshot(target, mangled.path), SnapshotError);

  // Truncation (torn write) fails the checksum or the framing.
  write_file(mangled.path, original.substr(0, original.size() - 10));
  EXPECT_THROW((void)load_cache_snapshot(target, mangled.path), SnapshotError);

  // A wrong header is not a snapshot at all.
  write_file(mangled.path, "#some-other-format v9\n" + original);
  EXPECT_THROW((void)load_cache_snapshot(target, mangled.path), SnapshotError);

  // A snapshot taken against a different cluster must not seed the cache.
  PlacementDaemon other(small_platform(6), DaemonConfig{});
  EXPECT_THROW((void)load_cache_snapshot(other, snap.path), SnapshotError);

  // None of the rejections touched the cache.
  EXPECT_EQ(target.cache_size(), 0u);
  EXPECT_EQ(other.cache_size(), 0u);

  // The pristine file still loads after all that.
  EXPECT_EQ(load_cache_snapshot(target, snap.path).restored, 1u);
}

TEST(CachePersistence, TamperedReliabilityClaimDropsTheEntryOnly) {
  const FileGuard snap(unique_path("snap_tamper", ".snapshot"));
  PlacementDaemon source(small_platform(), DaemonConfig{});
  const PlacementResponse honest = source.admit(request_for(121, FaultModel::parse("prob:R=0.9")));
  ASSERT_TRUE(honest.ok) << honest.error;
  ASSERT_TRUE(source.admit(request_for(122, FaultModel::count(1))).ok);
  (void)save_cache_snapshot(source, snap.path);

  // Inflate the probabilistic entry's reliability claim past anything the
  // re-verification can reproduce, then re-seal the checksum — the framing
  // is valid, only the claim lies.
  std::string content = read_file(snap.path);
  const std::size_t rel_pos = content.find(" rel=0.9");
  ASSERT_NE(rel_pos, std::string::npos) << "expected a prob entry with rel<1 in the snapshot";
  const std::size_t value_end = content.find(' ', rel_pos + 1);
  ASSERT_NE(value_end, std::string::npos);
  content.replace(rel_pos, value_end - rel_pos, " rel=0.99999999999");
  const std::size_t checksum_pos = content.rfind("checksum ");
  ASSERT_NE(checksum_pos, std::string::npos);
  content.erase(checksum_pos);
  char sealed[32];
  std::snprintf(sealed, sizeof sealed, "checksum %016llx\n",
                static_cast<unsigned long long>(Fnv64().str(content).value()));
  write_file(snap.path, content + sealed);

  PlacementDaemon target(small_platform(), DaemonConfig{});
  const SnapshotLoadStats loaded = load_cache_snapshot(target, snap.path);
  EXPECT_EQ(loaded.entries, 2u);
  EXPECT_EQ(loaded.verify_failed, 1u);  // the liar is dropped...
  EXPECT_EQ(loaded.restored, 1u);       // ...the honest entry warm-starts
  EXPECT_EQ(target.cache_size(), 1u);
}

TEST(CachePersistence, EntriesKilledByTheLiveFailureSetAreStale) {
  const FileGuard snap(unique_path("snap_stale", ".snapshot"));
  PlacementDaemon source(small_platform(), DaemonConfig{});
  const PlacementResponse resp = source.admit(request_for(131, FaultModel::count(1)));
  ASSERT_TRUE(resp.ok) << resp.error;
  (void)save_cache_snapshot(source, snap.path);

  // Fail exactly the processors holding task 0's replicas: the snapshot
  // entry cannot survive the restored daemon's live failure set.
  EventBus bus;
  PlacementDaemon target(small_platform(), DaemonConfig{}, &bus);
  const Schedule& schedule = resp.placement->schedule;
  for (CopyId c = 0; c < schedule.copies(); ++c) {
    bus.publish(ClusterEvent{ClusterEvent::Kind::kFailure, schedule.placed(ReplicaRef{0, c}).proc});
  }

  const SnapshotLoadStats loaded = load_cache_snapshot(target, snap.path);
  EXPECT_EQ(loaded.entries, 1u);
  EXPECT_EQ(loaded.stale, 1u);
  EXPECT_EQ(loaded.restored, 0u);
  EXPECT_EQ(target.cache_size(), 0u);
}

TEST(CachePersistence, DegradedEntriesRoundTripWithoutLaundering) {
  const FileGuard snap(unique_path("snap_degraded", ".snapshot"));
  EventBus bus;
  DaemonConfig dcfg;
  dcfg.auto_reheal = false;
  PlacementDaemon source(small_platform(5, 5), dcfg, &bus);
  ASSERT_TRUE(source.admit(request_for(61, FaultModel::count(2))).ok);

  // Three failures on a five-processor cluster leave two survivors: an
  // ε = 2 guarantee needs three distinct processors, so the entry rides
  // the degradation ladder instead of being dropped.
  for (ProcId p : {0u, 1u, 2u}) {
    bus.publish(ClusterEvent{ClusterEvent::Kind::kFailure, p});
  }
  ASSERT_EQ(source.degraded_count(), 1u);
  PlacementRequest brownout = request_for(61, FaultModel::count(2));
  brownout.degraded_ok = true;
  const PlacementResponse served = source.admit(brownout);
  ASSERT_TRUE(served.ok) << served.error;
  ASSERT_TRUE(served.placement->degraded);
  const std::uint64_t fp = schedule_fingerprint(served.placement->schedule);
  (void)save_cache_snapshot(source, snap.path);

  // The restored daemon (healthy cluster, empty failure set) must keep the
  // deficit: same schedule bits, same eps_have < eps_want, still refusing
  // callers that do not opt in.
  PlacementDaemon target(small_platform(5, 5), dcfg);
  const SnapshotLoadStats loaded = load_cache_snapshot(target, snap.path);
  EXPECT_EQ(loaded.entries, 1u);
  EXPECT_EQ(loaded.restored, 1u);
  EXPECT_EQ(target.degraded_count(), 1u);

  const PlacementResponse refused = target.admit(request_for(61, FaultModel::count(2)));
  EXPECT_FALSE(refused.ok);
  EXPECT_TRUE(refused.degraded_refused);
  const PlacementResponse warm = target.admit(brownout);
  ASSERT_TRUE(warm.ok) << warm.error;
  ASSERT_TRUE(warm.placement->degraded);
  EXPECT_EQ(warm.placement->eps_have, served.placement->eps_have);
  EXPECT_EQ(warm.placement->eps_want, served.placement->eps_want);
  EXPECT_EQ(schedule_fingerprint(warm.placement->schedule), fp);
  EXPECT_EQ(net::format_schedule_wire(warm.placement->schedule),
            net::format_schedule_wire(served.placement->schedule));
}

TEST(CachePersistence, LaunderedDegradedFlagRejectsTheWholeSnapshot) {
  const FileGuard snap(unique_path("snap_launder", ".snapshot"));
  EventBus bus;
  DaemonConfig dcfg;
  dcfg.auto_reheal = false;
  PlacementDaemon source(small_platform(5, 5), dcfg, &bus);
  ASSERT_TRUE(source.admit(request_for(61, FaultModel::count(2))).ok);
  for (ProcId p : {0u, 1u, 2u}) {
    bus.publish(ClusterEvent{ClusterEvent::Kind::kFailure, p});
  }
  ASSERT_EQ(source.degraded_count(), 1u);
  (void)save_cache_snapshot(source, snap.path);

  // Clear the degraded flag while keeping eps_have < eps_want, then
  // re-seal the checksum. The flag now contradicts the deficit — that is
  // format skew or tampering, not bit rot, so the whole file must be
  // rejected rather than the entry quietly dropped (or worse, promoted).
  std::string content = read_file(snap.path);
  const std::size_t flag_pos = content.find(" degraded=1");
  ASSERT_NE(flag_pos, std::string::npos) << "expected a degraded entry in the snapshot";
  content.replace(flag_pos, std::string(" degraded=1").size(), " degraded=0");
  const std::size_t checksum_pos = content.rfind("checksum ");
  ASSERT_NE(checksum_pos, std::string::npos);
  content.erase(checksum_pos);
  char sealed[32];
  std::snprintf(sealed, sizeof sealed, "checksum %016llx\n",
                static_cast<unsigned long long>(Fnv64().str(content).value()));
  write_file(snap.path, content + sealed);

  PlacementDaemon target(small_platform(5, 5), dcfg);
  EXPECT_THROW((void)load_cache_snapshot(target, snap.path), SnapshotError);
  EXPECT_EQ(target.cache_size(), 0u);
}

TEST(CachePersistence, V1SnapshotsWithoutDeficitFieldsStillLoad) {
  const FileGuard snap(unique_path("snap_v1", ".snapshot"));
  PlacementDaemon source(small_platform(), DaemonConfig{});
  ASSERT_TRUE(source.admit(request_for(161, FaultModel::count(1))).ok);
  (void)save_cache_snapshot(source, snap.path);

  // Rewrite the v2 file as the v1 format it supersedes: old magic, no
  // degraded=/eps_have=/eps_want= entry fields, fresh checksum. Pre-ladder
  // snapshots carried no deficits, so the loader must default their
  // entries to the full guarantee.
  std::string content = read_file(snap.path);
  const std::size_t magic_pos = content.find("#streamsched-cache v2");
  ASSERT_EQ(magic_pos, 0u) << "snapshot header is not the v2 magic";
  content.replace(magic_pos, std::string("#streamsched-cache v2").size(),
                  "#streamsched-cache v1");
  const std::size_t deficit_pos = content.find(" degraded=");
  ASSERT_NE(deficit_pos, std::string::npos);
  const std::size_t line_end = content.find('\n', deficit_pos);
  ASSERT_NE(line_end, std::string::npos);
  content.erase(deficit_pos, line_end - deficit_pos);
  ASSERT_EQ(content.find(" eps_have="), std::string::npos);
  const std::size_t checksum_pos = content.rfind("checksum ");
  ASSERT_NE(checksum_pos, std::string::npos);
  content.erase(checksum_pos);
  char sealed[32];
  std::snprintf(sealed, sizeof sealed, "checksum %016llx\n",
                static_cast<unsigned long long>(Fnv64().str(content).value()));
  write_file(snap.path, content + sealed);

  PlacementDaemon target(small_platform(), DaemonConfig{});
  const SnapshotLoadStats loaded = load_cache_snapshot(target, snap.path);
  EXPECT_EQ(loaded.entries, 1u);
  EXPECT_EQ(loaded.restored, 1u);
  const auto entries = target.snapshot_entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_FALSE(entries[0]->degraded);
  EXPECT_EQ(entries[0]->eps_have, entries[0]->eps_want);
}

// ------------------------------------------------------------- wire server --

/// A running server on its own thread; the destructor drains and joins.
struct ServerHandle {
  net::Server server;
  std::thread thread;

  ServerHandle(Platform platform, net::ServerConfig config)
      : server(std::move(platform), std::move(config)),
        thread([this] { server.run(); }) {}

  ~ServerHandle() {
    if (thread.joinable()) {
      server.shutdown();
      thread.join();
    }
  }

  void join() { thread.join(); }
};

net::SubmitFrame frame_for(std::uint64_t seed, const std::string& tag,
                           net::QosClass qos = net::QosClass::kInteractive,
                           std::size_t tasks = 14) {
  net::SubmitFrame frame;
  frame.qos = qos;
  frame.tag = tag;
  frame.model = FaultModel::count(2);
  frame.dag = small_dag(seed, tasks);
  return frame;
}

TEST(WireServer, SubmitEventRepairAndDrainOverUnixSocket) {
  const FileGuard sock(unique_path("srv_e2e", ".sock"));
  net::ServerConfig config;
  config.unix_path = sock.path;
  ServerHandle handle(small_platform(), config);
  net::Client client = net::Client::connect_unix_path(sock.path);

  // Cold admissions: full provenance in the response.
  std::vector<std::string> fps;
  for (std::uint64_t seed : {201u, 202u, 203u}) {
    const net::Response resp = client.submit(frame_for(seed, "d" + std::to_string(seed)));
    ASSERT_TRUE(resp.ok) << resp.message;
    EXPECT_EQ(resp.field("tag"), "d" + std::to_string(seed));
    EXPECT_EQ(resp.field("src"), "cold");
    EXPECT_EQ(resp.field_u64("epoch"), 0u);
    EXPECT_EQ(resp.field("fp").size(), 16u);
    EXPECT_EQ(resp.field_u64("eps"), 2u);
    EXPECT_GE(resp.field_u64("stages"), 1u);
    EXPECT_GT(resp.field_double("period"), 0.0);
    EXPECT_GT(resp.field_double("latency"), 0.0);
    EXPECT_TRUE(resp.has_field("rel"));
    EXPECT_GT(resp.field_double("factor"), 0.0);
    fps.push_back(resp.field("fp"));
  }
  const net::Response hit = client.submit(frame_for(201, "again"));
  ASSERT_TRUE(hit.ok);
  EXPECT_EQ(hit.field("src"), "hit");
  EXPECT_EQ(hit.field("fp"), fps[0]);

  // Pick a two-processor failure set no cached placement can lose a task
  // to (ε = 2 places three replicas on distinct processors, so none can),
  // preferring a pair that actually breaks some placement's survival so
  // the incremental repair path runs.
  const std::size_t m = handle.server.daemon().platform().num_procs();
  const auto placements = handle.server.daemon().snapshot_entries();
  ProcId fa = 0;
  ProcId fb = 1;
  bool found_breaking = false;
  std::vector<std::uint64_t> scratch;
  for (ProcId a = 0; a < m && !found_breaking; ++a) {
    for (ProcId b = a + 1; b < m && !found_breaking; ++b) {
      ProcSet pair(m);
      pair.assign(std::vector<ProcId>{a, b});
      for (const auto& placement : placements) {
        if (!placement->oracle.survives(pair, scratch)) {
          fa = a;
          fb = b;
          found_breaking = true;
          break;
        }
      }
    }
  }

  // EVENT frames drive the daemon's repair walk synchronously; the
  // response reports the post-event epoch.
  net::EventFrame fail;
  fail.failure = true;
  fail.proc = fa;
  net::Response event_resp = client.event(fail);
  ASSERT_TRUE(event_resp.ok) << event_resp.message;
  EXPECT_EQ(event_resp.field("kind"), "fail");
  EXPECT_EQ(event_resp.field_u64("epoch"), 1u);
  fail.proc = fb;
  event_resp = client.event(fail);
  ASSERT_TRUE(event_resp.ok);
  EXPECT_EQ(event_resp.field_u64("epoch"), 2u);

  // Re-SUBMIT: every placement was repairable, so all three serve from the
  // (possibly repaired) cache — no cold reschedule.
  for (std::uint64_t seed : {201u, 202u, 203u}) {
    const net::Response resp = client.submit(frame_for(seed, "post"));
    ASSERT_TRUE(resp.ok) << resp.message;
    EXPECT_EQ(resp.field("src"), "hit");
    EXPECT_EQ(resp.field_u64("epoch"), 2u);
  }
  // Every repaired placement survives the live failure set on a freshly
  // compiled oracle (independent of the patched one the daemon serves).
  ProcSet failed(m);
  failed.assign(std::vector<ProcId>{fa, fb});
  for (const auto& placement : handle.server.daemon().snapshot_entries()) {
    SurvivalOracle fresh(placement->schedule);
    EXPECT_TRUE(fresh.survives(failed));
  }

  net::Response stats = client.stats();
  ASSERT_TRUE(stats.ok);
  EXPECT_EQ(stats.field_u64("failed"), 2u);
  EXPECT_EQ(stats.field_u64("cache_size"), 3u);
  EXPECT_EQ(stats.field_u64("repair_failures"), 0u);
  // The batch-kernel re-verification ran on every repair and never failed.
  EXPECT_EQ(stats.field_u64("verify_failures"), 0u);
  EXPECT_EQ(stats.field_u64("verifications"), stats.field_u64("event_repairs"));
  if (found_breaking) {
    EXPECT_GT(stats.field_u64("event_repairs"), 0u);
  }

  // Recovery rewinds the failure set; epoch keeps counting.
  net::EventFrame recover;
  recover.failure = false;
  for (ProcId p : {fb, fa}) {
    recover.proc = p;
    ASSERT_TRUE(client.event(recover).ok);
  }
  stats = client.stats();
  EXPECT_EQ(stats.field_u64("epoch"), 4u);
  EXPECT_EQ(stats.field_u64("failed"), 0u);

  // Malformed frames fail loudly without killing the connection.
  const net::Response bad = client.roundtrip("FROBNICATE now=please");
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.code, net::WireCode::kBadRequest);
  net::EventFrame out_of_range;
  out_of_range.proc = static_cast<ProcId>(m + 10);
  const net::Response bad_event = client.event(out_of_range);
  EXPECT_FALSE(bad_event.ok);
  EXPECT_EQ(bad_event.code, net::WireCode::kBadRequest);

  // SHUTDOWN pipelined with a SUBMIT: the shutdown acks, the late SUBMIT
  // is refused as SHUTTING_DOWN, and both responses flush before the
  // server exits its loop.
  client.send_line(net::format_shutdown() + "\n" + net::format_submit(frame_for(299, "late")));
  const net::Response ack = client.read_response();
  ASSERT_TRUE(ack.ok);
  EXPECT_EQ(ack.field("shutdown"), "draining");
  const net::Response late = client.read_response();
  EXPECT_FALSE(late.ok);
  EXPECT_EQ(late.code, net::WireCode::kShuttingDown);
  EXPECT_EQ(late.field("tag"), "late");
  handle.join();
}

TEST(WireServer, InfeasibleAndDegradedRefusalsAreDistinct) {
  const FileGuard sock(unique_path("srv_infeasible", ".sock"));
  net::ServerConfig config;
  config.unix_path = sock.path;
  config.daemon.auto_reheal = false;
  ServerHandle handle(small_platform(5, 4), config);
  net::Client client = net::Client::connect_unix_path(sock.path);

  // Truly unschedulable: an explicit period below any task's work fails
  // every rung of the escalation ladder — the admission answers
  // INFEASIBLE, there is nothing to degrade to.
  net::SubmitFrame impossible = frame_for(211, "doomed");
  impossible.model = FaultModel::count(1);
  impossible.period = 1e-6;
  const net::Response infeasible = client.submit(impossible);
  EXPECT_FALSE(infeasible.ok);
  EXPECT_EQ(infeasible.code, net::WireCode::kInfeasible);
  EXPECT_EQ(infeasible.field("tag"), "doomed");

  // One survivor on a 4-processor cluster: an ε = 1 placement (two
  // replicas on distinct processors) always has some task with both
  // replicas on failed processors — beyond repair. The degradation ladder
  // rebuilds on the lone survivor at ε = 0 instead of refusing outright:
  // DEGRADED without the opt-in, served with a truthful deficit with it.
  net::EventFrame fail;
  fail.failure = true;
  for (ProcId p : {0u, 1u, 2u}) {
    fail.proc = p;
    ASSERT_TRUE(client.event(fail).ok);
  }
  net::SubmitFrame frame = frame_for(211, "churned");
  frame.model = FaultModel::count(1);
  const net::Response refused = client.submit(frame);
  EXPECT_FALSE(refused.ok);
  EXPECT_EQ(refused.code, net::WireCode::kDegraded);
  EXPECT_EQ(refused.field("tag"), "churned");

  frame.tag = "brownout";
  frame.degraded_ok = true;
  const net::Response served = client.submit(frame);
  ASSERT_TRUE(served.ok) << served.message;
  EXPECT_EQ(served.field("src"), "degraded");
  EXPECT_EQ(served.field_u64("eps_have"), 0u);
  EXPECT_EQ(served.field_u64("eps_want"), 1u);
}

TEST(WireServer, SaturatedBatchLaneShedsWhileInteractiveLands) {
  const FileGuard sock(unique_path("srv_shed", ".sock"));
  net::ServerConfig config;
  config.unix_path = sock.path;
  auto& batch = config.lanes[static_cast<std::size_t>(net::QosClass::kBatch)];
  batch.workers = 1;
  batch.bound = 1;
  ServerHandle handle(small_platform(), config);

  // Three heavyweight batch SUBMITs in ONE write: the poll thread frames
  // all three from the same read, so the first fills the lane (bound 1)
  // microseconds before the second and third arrive — they must shed with
  // BUSY while the first is still scheduling cold.
  net::Client blocker = net::Client::connect_unix_path(sock.path);
  std::string burst = net::format_submit(frame_for(221, "b0", net::QosClass::kBatch, 40));
  burst += "\n" + net::format_submit(frame_for(222, "b1", net::QosClass::kBatch, 40));
  burst += "\n" + net::format_submit(frame_for(223, "b2", net::QosClass::kBatch, 40));
  blocker.send_line(burst);

  // Interactive rides its own lane: admitted and served while batch is
  // saturated.
  net::Client probe = net::Client::connect_unix_path(sock.path);
  const net::Response interactive = probe.submit(frame_for(231, "fg"));
  ASSERT_TRUE(interactive.ok) << interactive.message;
  EXPECT_EQ(interactive.field("src"), "cold");

  std::size_t ok_count = 0;
  std::size_t busy_count = 0;
  for (int i = 0; i < 3; ++i) {
    const net::Response resp = blocker.read_response();
    if (resp.ok) {
      ++ok_count;
      EXPECT_EQ(resp.field("tag"), "b0");  // the accepted head of the burst
    } else {
      ++busy_count;
      EXPECT_EQ(resp.code, net::WireCode::kBusy);
      EXPECT_TRUE(resp.field("tag") == "b1" || resp.field("tag") == "b2") << resp.field("tag");
    }
  }
  EXPECT_EQ(ok_count, 1u);
  EXPECT_EQ(busy_count, 2u);

  const net::Response stats = probe.stats();
  ASSERT_TRUE(stats.ok);
  EXPECT_EQ(stats.field_u64("batch_accepted"), 1u);
  EXPECT_EQ(stats.field_u64("batch_shed"), 2u);
  EXPECT_EQ(stats.field_u64("interactive_accepted"), 1u);
  EXPECT_EQ(stats.field_u64("interactive_shed"), 0u);
  EXPECT_EQ(handle.server.lane_stats(net::QosClass::kBatch).shed, 2u);
}

TEST(WireServer, WarmRestartServesBitIdenticalWithoutColdPath) {
  const FileGuard sock1(unique_path("srv_warm1", ".sock"));
  const FileGuard sock2(unique_path("srv_warm2", ".sock"));
  const FileGuard snap(unique_path("srv_warm", ".snapshot"));

  std::vector<std::string> fps;
  {
    net::ServerConfig config;
    config.unix_path = sock1.path;
    config.snapshot_path = snap.path;
    ServerHandle first(small_platform(), config);
    net::Client client = net::Client::connect_unix_path(sock1.path);
    for (std::uint64_t seed : {241u, 242u}) {
      const net::Response resp = client.submit(frame_for(seed, "warmup"));
      ASSERT_TRUE(resp.ok) << resp.message;
      fps.push_back(resp.field("fp"));
    }
    ASSERT_TRUE(client.shutdown().ok);
    first.join();  // run() saves the snapshot on the way out
  }

  net::ServerConfig config;
  config.unix_path = sock2.path;
  config.snapshot_path = snap.path;
  ServerHandle second(small_platform(), config);
  net::Client client = net::Client::connect_unix_path(sock2.path);
  for (std::size_t i = 0; i < 2; ++i) {
    const net::Response resp = client.submit(frame_for(241 + i, "restart"));
    ASSERT_TRUE(resp.ok) << resp.message;
    // Warm provenance and the exact fingerprint of the pre-restart serve.
    EXPECT_EQ(resp.field("src"), "warm");
    EXPECT_EQ(resp.field("fp"), fps[i]);
  }
  const net::Response stats = client.stats();
  ASSERT_TRUE(stats.ok);
  EXPECT_EQ(stats.field_u64("restored"), 2u);
  EXPECT_EQ(stats.field_u64("cold"), 0u);
  EXPECT_EQ(stats.field_u64("hits"), 2u);
}

TEST(WireServer, DegradedProvenanceBrownoutOptInAndWarmRestart) {
  const FileGuard sock1(unique_path("srv_deg1", ".sock"));
  const FileGuard sock2(unique_path("srv_deg2", ".sock"));
  const FileGuard snap(unique_path("srv_deg", ".snapshot"));

  std::string degraded_fp;
  std::uint64_t eps_have = 0;
  {
    net::ServerConfig config;
    config.unix_path = sock1.path;
    config.snapshot_path = snap.path;
    config.daemon.auto_reheal = false;  // deterministic: no background pass
    // Five processors: failing three leaves two alive, beyond an ε = 2
    // repair or rebuild — the entry must degrade, not drop.
    ServerHandle first(small_platform(5, 5), config);
    net::Client client = net::Client::connect_unix_path(sock1.path);
    const net::Response cold = client.submit(frame_for(61, "churny"));
    ASSERT_TRUE(cold.ok) << cold.message;
    EXPECT_EQ(cold.field("src"), "cold");

    net::EventFrame fail;
    fail.failure = true;
    for (ProcId p : {0u, 1u, 2u}) {
      fail.proc = p;
      ASSERT_TRUE(client.event(fail).ok);
    }

    // HEALTH advertises the brownout before any SUBMIT trips over it.
    const net::Response health = client.health();
    ASSERT_TRUE(health.ok);
    EXPECT_EQ(health.field_u64("failed"), 3u);
    EXPECT_EQ(health.field_u64("degraded"), 1u);

    // Default callers are refused with the dedicated code; opting in gets
    // the weaker contract served with truthful provenance.
    const net::Response refused = client.submit(frame_for(61, "strict"));
    EXPECT_FALSE(refused.ok);
    EXPECT_EQ(refused.code, net::WireCode::kDegraded);
    EXPECT_EQ(refused.field("tag"), "strict");

    net::SubmitFrame brownout = frame_for(61, "brownout");
    brownout.degraded_ok = true;
    const net::Response served = client.submit(brownout);
    ASSERT_TRUE(served.ok) << served.message;
    EXPECT_EQ(served.field("src"), "degraded");
    EXPECT_EQ(served.field_u64("degraded"), 1u);
    EXPECT_EQ(served.field_u64("eps_want"), 2u);
    eps_have = served.field_u64("eps_have");
    EXPECT_LT(eps_have, 2u);
    degraded_fp = served.field("fp");

    const net::Response stats = client.stats();
    ASSERT_TRUE(stats.ok);
    EXPECT_EQ(stats.field_u64("degraded"), 1u);
    EXPECT_GE(stats.field_u64("rebuilds"), 1u);

    ASSERT_TRUE(client.shutdown().ok);
    first.join();  // run() saves the snapshot on the way out
  }

  // Warm restart on a healthy cluster: the deficit must survive the
  // snapshot round trip bit-identically — same fingerprint, same
  // eps_have/eps_want, still refusing callers that do not opt in.
  net::ServerConfig config;
  config.unix_path = sock2.path;
  config.snapshot_path = snap.path;
  config.daemon.auto_reheal = false;
  ServerHandle second(small_platform(5, 5), config);
  net::Client client = net::Client::connect_unix_path(sock2.path);

  const net::Response still_refused = client.submit(frame_for(61, "strict2"));
  EXPECT_FALSE(still_refused.ok);
  EXPECT_EQ(still_refused.code, net::WireCode::kDegraded);

  net::SubmitFrame brownout = frame_for(61, "warm");
  brownout.degraded_ok = true;
  const net::Response warm = client.submit(brownout);
  ASSERT_TRUE(warm.ok) << warm.message;
  EXPECT_EQ(warm.field("src"), "degraded");
  EXPECT_EQ(warm.field("fp"), degraded_fp);
  EXPECT_EQ(warm.field_u64("eps_have"), eps_have);
  EXPECT_EQ(warm.field_u64("eps_want"), 2u);

  const net::Response health = client.health();
  ASSERT_TRUE(health.ok);
  EXPECT_EQ(health.field_u64("failed"), 0u);  // live failure set resets...
  EXPECT_EQ(health.field_u64("degraded"), 1u);  // ...the deficit does not
}

TEST(WireServer, RejectedSnapshotStartsColdInsteadOfDying) {
  const FileGuard snap(unique_path("srv_badsnap", ".snapshot"));
  write_file(snap.path, "this is not a cache snapshot\n");
  net::ServerConfig config;
  config.snapshot_path = snap.path;
  // No listener configured: construction alone exercises the load path.
  net::Server server(small_platform(), config);
  EXPECT_EQ(server.daemon().cache_size(), 0u);
}

}  // namespace
}  // namespace streamsched
