// Tests for the greedy BuildState machinery: candidate evaluation under
// the one-port model and condition (1), plus commit bookkeeping.
#include <gtest/gtest.h>

#include "core/build_state.hpp"
#include "graph/generators.hpp"
#include "platform/generators.hpp"
#include "schedule/validate.hpp"

namespace streamsched {
namespace {

TEST(BuildState, EntryTaskCandidate) {
  Dag d = make_chain(2, 4.0, 2.0);
  const Platform p({1.0, 2.0}, 0.5);
  BuildState state(d, p, 0, 100.0);
  const auto c0 = state.evaluate(0, 0, {});
  const auto c1 = state.evaluate(0, 1, {});
  EXPECT_TRUE(c0.valid);
  EXPECT_DOUBLE_EQ(c0.finish, 4.0);
  EXPECT_DOUBLE_EQ(c1.finish, 2.0);  // faster processor
  EXPECT_EQ(c0.stage, 1u);
  EXPECT_TRUE(c0.suppliers.empty());
}

TEST(BuildState, ConditionOneRejectsOverload) {
  Dag d = make_chain(2, 4.0, 2.0);
  const Platform p = Platform::uniform(2, 1.0, 0.5);
  BuildState state(d, p, 0, 7.0);
  const auto first = state.evaluate(0, 0, {});
  ASSERT_TRUE(first.valid);
  state.commit(0, 0, first);
  // Second task of work 4 on the same processor: 8 > 7 = period.
  const auto crowded = state.evaluate(1, 0, {{{0, 0}}});
  EXPECT_FALSE(crowded.valid);
  const auto other = state.evaluate(1, 1, {{{0, 0}}});
  EXPECT_TRUE(other.valid);
}

TEST(BuildState, RemoteSupplierTimingAndStage) {
  Dag d = make_chain(2, 4.0, 2.0);
  const Platform p = Platform::uniform(2, 1.0, 0.5);  // comm 1
  BuildState state(d, p, 0, 100.0);
  state.commit(0, 0, state.evaluate(0, 0, {}));
  const auto colocated = state.evaluate(1, 0, {{{0, 0}}});
  EXPECT_DOUBLE_EQ(colocated.start, 4.0);
  EXPECT_EQ(colocated.stage, 1u);
  const auto remote = state.evaluate(1, 1, {{{0, 0}}});
  EXPECT_DOUBLE_EQ(remote.start, 5.0);  // 4 + comm 1
  EXPECT_EQ(remote.stage, 2u);
  ASSERT_EQ(remote.suppliers.size(), 1u);
  EXPECT_TRUE(remote.suppliers[0].remote);
  EXPECT_DOUBLE_EQ(remote.suppliers[0].comm_start, 4.0);
  EXPECT_DOUBLE_EQ(remote.suppliers[0].arrival, 5.0);
}

TEST(BuildState, PortContentionSerializesEvaluations) {
  // Two suppliers on the same processor must serialize on its send port.
  Dag d;
  d.add_task("a", 2.0);
  d.add_task("b", 2.0);
  d.add_task("join", 1.0);
  d.add_edge(0, 2, 2.0);
  d.add_edge(1, 2, 2.0);
  const Platform p = Platform::uniform(2, 1.0, 0.5);  // comm 1
  BuildState state(d, p, 0, 100.0);
  state.commit(0, 0, state.evaluate(0, 0, {}));
  state.commit(1, 0, state.evaluate(1, 0, {}));  // same proc, [2,4]
  const auto cand = state.evaluate(2, 1, {{{0, 0}}, {{1, 0}}});
  // a done at 2: xfer [2,3]; b done at 4: xfer [4,5] (send port free then).
  EXPECT_DOUBLE_EQ(cand.start, 5.0);
  // Receiving port of P1 also serializes: both comms distinct in time.
  ASSERT_EQ(cand.suppliers.size(), 2u);
  EXPECT_LT(cand.suppliers[0].comm_start + 1.0, cand.suppliers[1].arrival + 1e-9);
}

TEST(BuildState, AnyOfReadyUsesEarliestSupplierPerPred) {
  Dag d = make_chain(2, 2.0, 2.0);
  const Platform p({2.0, 1.0, 1.0}, 0.5);  // comm 1
  BuildState state(d, p, 1, 100.0);
  state.commit(0, 0, state.evaluate(0, 0, {}));  // fast: [0,1]
  state.commit(0, 1, state.evaluate(0, 1, {}));  // slow: [0,2]
  const auto cand = state.evaluate(1, 2, {{{0, 0}, {0, 1}}});
  // Arrivals 2 (from fast) and 3 (from slow): ANY-of starts at 2.
  EXPECT_DOUBLE_EQ(cand.start, 2.0);
  EXPECT_EQ(cand.suppliers.size(), 2u);
}

TEST(BuildState, OutputPortBudgetChecked) {
  Dag d;
  d.add_task("src", 1.0);
  d.add_task("s1", 1.0);
  d.add_task("s2", 1.0);
  d.add_edge(0, 1, 10.0);
  d.add_edge(0, 2, 10.0);
  const Platform p = Platform::uniform(3, 1.0, 0.5);  // comm 5 per edge
  BuildState state(d, p, 0, 8.0);
  state.commit(0, 0, state.evaluate(0, 0, {}));
  state.commit(1, 0, state.evaluate(1, 1, {{{0, 0}}}));  // cout(P0) = 5
  // Another remote consumer would push cout(P0) to 10 > 8.
  const auto blocked = state.evaluate(2, 2, {{{0, 0}}});
  EXPECT_FALSE(blocked.valid);
  // Colocating with the source avoids the port entirely.
  const auto colocated = state.evaluate(2, 0, {{{0, 0}}});
  EXPECT_TRUE(colocated.valid);
}

TEST(BuildState, CommitRecordsCommsAndLoads) {
  Dag d = make_chain(2, 4.0, 2.0);
  const Platform p = Platform::uniform(2, 1.0, 0.5);
  BuildState state(d, p, 0, 100.0);
  state.commit(0, 0, state.evaluate(0, 0, {}));
  state.commit(1, 0, state.evaluate(1, 1, {{{0, 0}}}));
  const Schedule& s = state.schedule();
  EXPECT_DOUBLE_EQ(s.cout(0), 1.0);
  EXPECT_DOUBLE_EQ(s.cin(1), 1.0);
  ASSERT_EQ(s.comms().size(), 1u);
  const auto report = validate_schedule(s);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(BuildState, HostsCopyOf) {
  Dag d = make_chain(2, 1.0, 1.0);
  const Platform p = Platform::uniform(3, 1.0, 1.0);
  BuildState state(d, p, 1, 100.0);
  state.commit(0, 0, state.evaluate(0, 1, {}));
  EXPECT_TRUE(state.hosts_copy_of(0, 1));
  EXPECT_FALSE(state.hosts_copy_of(0, 0));
  EXPECT_FALSE(state.hosts_copy_of(1, 1));
}

TEST(BuildState, SupplierSetValidation) {
  Dag d = make_chain(2, 1.0, 1.0);
  const Platform p = Platform::uniform(2, 1.0, 1.0);
  BuildState state(d, p, 0, 100.0);
  state.commit(0, 0, state.evaluate(0, 0, {}));
  EXPECT_THROW((void)state.evaluate(1, 0, {}), std::invalid_argument);  // missing pred set
  EXPECT_THROW((void)state.evaluate(1, 0, {{}}), std::invalid_argument);  // empty set
}

TEST(BuildState, InfinitePeriodAcceptsEverything) {
  Dag d = make_chain(10, 100.0, 100.0);
  const Platform p = Platform::uniform(1, 1.0, 1.0);
  BuildState state(d, p, 0, std::numeric_limits<double>::infinity());
  for (TaskId t = 0; t < 10; ++t) {
    std::vector<std::vector<ReplicaRef>> sups;
    if (t > 0) sups.push_back({{static_cast<TaskId>(t - 1), 0}});
    const auto cand = state.evaluate(t, 0, sups);
    ASSERT_TRUE(cand.valid);
    state.commit(t, 0, cand);
  }
  EXPECT_TRUE(state.schedule().complete());
}

}  // namespace
}  // namespace streamsched
