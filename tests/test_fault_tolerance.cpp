// Tests for the fault-tolerance checker and repair pass: computability
// propagation, exhaustive failure-set enumeration, monotonicity and the
// repair guarantee.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "helpers.hpp"
#include "platform/generators.hpp"
#include "schedule/fault_tolerance.hpp"
#include "schedule/metrics.hpp"
#include "util/rng.hpp"

namespace streamsched {
namespace {

using test::place_at;
using test::wire;

// Chain a -> b with disjoint copy chains: copy 0 on {P0, P1}, copy 1 on
// {P2, P3}. Survives any single failure.
Schedule disjoint_chains(const Dag& dag, const Platform& platform) {
  Schedule s(dag, platform, 1, 1000.0);
  place_at(s, {0, 0}, 0, 0.0);
  place_at(s, {0, 1}, 2, 0.0);
  s.place({1, 0}, 1, 10.0, 14.0, 2);
  s.place({1, 1}, 3, 10.0, 14.0, 2);
  wire(s, 0, 0, 1, 0);
  wire(s, 0, 1, 1, 1);
  return s;
}

// Crossed chains: copy 0 of b is fed by copy 0 of a, but copy 1 of b is
// *also* fed by copy 0 of a — killing P0 starves both copies of b.
Schedule crossed_chains(const Dag& dag, const Platform& platform) {
  Schedule s(dag, platform, 1, 1000.0);
  place_at(s, {0, 0}, 0, 0.0);
  place_at(s, {0, 1}, 2, 0.0);
  s.place({1, 0}, 1, 10.0, 14.0, 2);
  s.place({1, 1}, 3, 10.0, 14.0, 2);
  wire(s, 0, 0, 1, 0);
  wire(s, 0, 0, 1, 1);
  return s;
}

struct FtFixture : ::testing::Test {
  Dag dag = make_chain(2, 4.0, 2.0);
  Platform platform = Platform::uniform(4, 1.0, 0.5);
};

TEST_F(FtFixture, AllAliveMeansAllComputable) {
  const Schedule s = disjoint_chains(dag, platform);
  const auto comp = computable_replicas(s, std::vector<bool>(4, false));
  for (TaskId t = 0; t < 2; ++t) {
    for (CopyId c = 0; c < 2; ++c) EXPECT_TRUE(comp[t][c]);
  }
}

TEST_F(FtFixture, DeadProcessorKillsItsReplica) {
  const Schedule s = disjoint_chains(dag, platform);
  std::vector<bool> failed(4, false);
  failed[0] = true;
  const auto comp = computable_replicas(s, failed);
  EXPECT_FALSE(comp[0][0]);  // on P0
  EXPECT_TRUE(comp[0][1]);
  EXPECT_FALSE(comp[1][0]);  // fed only by the dead copy
  EXPECT_TRUE(comp[1][1]);
  EXPECT_TRUE(survives_failures(s, failed));
}

TEST_F(FtFixture, ExhaustiveCheckPassesDisjointChains) {
  const Schedule s = disjoint_chains(dag, platform);
  const auto result = check_fault_tolerance(s, 1);
  EXPECT_TRUE(result.valid);
  EXPECT_EQ(result.sets_checked, 4u);  // C(4,1)
  EXPECT_TRUE(result.counterexample.empty());
}

TEST_F(FtFixture, ExhaustiveCheckFindsCrossedChainCounterexample) {
  const Schedule s = crossed_chains(dag, platform);
  const auto result = check_fault_tolerance(s, 1);
  EXPECT_FALSE(result.valid);
  ASSERT_EQ(result.counterexample.size(), 1u);
  EXPECT_EQ(result.counterexample[0], 0u);  // P0 kills everything
}

TEST_F(FtFixture, ZeroFailuresAlwaysValidOnCompleteSchedule) {
  const Schedule s = crossed_chains(dag, platform);
  const auto result = check_fault_tolerance(s, 0);
  EXPECT_TRUE(result.valid);
  EXPECT_EQ(result.sets_checked, 1u);
}

TEST_F(FtFixture, SampledCheckAgreesOnInvalidSchedule) {
  const Schedule s = crossed_chains(dag, platform);
  Rng rng(5);
  const auto result = check_fault_tolerance_sampled(s, 1, 64, rng);
  EXPECT_FALSE(result.valid);  // 64 samples over 4 sets will hit P0
}

TEST_F(FtFixture, RepairFixesCrossedChains) {
  Schedule s = crossed_chains(dag, platform);
  const RepairStats stats = repair_fault_tolerance(s, 1);
  EXPECT_TRUE(stats.success);
  EXPECT_GE(stats.added_comms, 1u);
  EXPECT_TRUE(check_fault_tolerance(s, 1).valid);
  EXPECT_EQ(num_repair_comms(s), stats.added_comms);
}

TEST_F(FtFixture, RepairIsNoopOnValidSchedule) {
  Schedule s = disjoint_chains(dag, platform);
  const RepairStats stats = repair_fault_tolerance(s, 1);
  EXPECT_TRUE(stats.success);
  EXPECT_EQ(stats.added_comms, 0u);
}

TEST_F(FtFixture, RepairRejectsTooManyFailures) {
  Schedule s = disjoint_chains(dag, platform);  // eps = 1
  EXPECT_THROW((void)repair_fault_tolerance(s, 2), std::invalid_argument);
}

TEST_F(FtFixture, MonotonicityCheckingMaxSizeCoversSmaller) {
  // If the schedule survives every 2-subset it survives every 1-subset.
  Dag d = make_chain(2, 4.0, 2.0);
  Platform p = Platform::uniform(6, 1.0, 0.5);
  Schedule s(d, p, 2, 1000.0);
  place_at(s, {0, 0}, 0, 0.0);
  place_at(s, {0, 1}, 1, 0.0);
  place_at(s, {0, 2}, 2, 0.0);
  s.place({1, 0}, 3, 10.0, 14.0, 2);
  s.place({1, 1}, 4, 10.0, 14.0, 2);
  s.place({1, 2}, 5, 10.0, 14.0, 2);
  wire(s, 0, 0, 1, 0);
  wire(s, 0, 1, 1, 1);
  wire(s, 0, 2, 1, 2);
  EXPECT_TRUE(check_fault_tolerance(s, 2).valid);
  EXPECT_TRUE(check_fault_tolerance(s, 1).valid);
  for (ProcId p1 = 0; p1 < 6; ++p1) {
    std::vector<bool> failed(6, false);
    failed[p1] = true;
    EXPECT_TRUE(survives_failures(s, failed));
  }
}

TEST_F(FtFixture, CheckerCountsAllSubsets) {
  const Schedule s = disjoint_chains(dag, platform);
  // eps = 1 but we can still *check* robustness against 3 failures; with
  // only two chains it must fail.
  const auto result = check_fault_tolerance(s, 2);
  EXPECT_FALSE(result.valid);
}

TEST(FaultToleranceRepair, HandlesDiamondJoin) {
  // Diamond with deliberately crossed supplier wiring at the join.
  Dag dag = make_paper_figure1();
  Platform platform = Platform::uniform(8, 1.0, 0.1);
  Schedule s(dag, platform, 1, 1000.0);
  place_at(s, {0, 0}, 0, 0.0);
  place_at(s, {0, 1}, 1, 0.0);
  place_at(s, {1, 0}, 2, 20.0);
  place_at(s, {1, 1}, 3, 20.0);
  place_at(s, {2, 0}, 4, 20.0);
  place_at(s, {2, 1}, 5, 20.0);
  s.place({3, 0}, 6, 40.0, 55.0, 3);
  s.place({3, 1}, 7, 40.0, 55.0, 3);
  wire(s, 0, 0, 1, 0);
  wire(s, 0, 1, 1, 1);
  wire(s, 0, 0, 2, 0);
  wire(s, 0, 1, 2, 1);
  // Join: copy 0 takes t2 chain 0 but t3 chain 1 (crossed!).
  wire(s, 1, 0, 3, 0);
  wire(s, 2, 1, 3, 0);
  wire(s, 1, 1, 3, 1);
  wire(s, 2, 0, 3, 1);
  // Killing P0 kills t2#0 and t3#0, starving join copy 0 AND join copy 1
  // (t2 chain 1 needs a#1 which is fine, but t3 chain 0 needs a#0): verify
  // and repair.
  const auto before = check_fault_tolerance(s, 1);
  EXPECT_FALSE(before.valid);
  const RepairStats stats = repair_fault_tolerance(s, 1);
  EXPECT_TRUE(stats.success);
  EXPECT_TRUE(check_fault_tolerance(s, 1).valid);
}

}  // namespace
}  // namespace streamsched
