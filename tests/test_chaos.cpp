// Chaos-tier tests: deterministic fault injection (util/fault_inject.hpp),
// hardened socket I/O under injected faults, torn-I/O framing, crash-safe
// snapshot generations, the resilient client's retry machinery, and the
// end-to-end chaos run — every admission eventually succeeds, no
// fingerprint is ever cold-scheduled twice, and the whole run replays
// bit-identically from its seed.
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/fingerprint.hpp"
#include "graph/generators.hpp"
#include "net/client.hpp"
#include "net/resilient_client.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "platform/generators.hpp"
#include "service/daemon.hpp"
#include "service/persistence.hpp"
#include "service/server.hpp"
#include "util/fault_inject.hpp"
#include "util/rng.hpp"

namespace streamsched {
namespace {

Dag small_dag(std::uint64_t seed, std::size_t tasks = 10) {
  Rng rng(seed);
  return make_random_layered(rng, tasks, 4, 0.4, WeightRanges{});
}

Platform small_platform(std::uint64_t seed = 5, std::size_t m = 8) {
  Rng rng(seed);
  return make_reliability_heterogeneous(rng, m, 0.02, 0.08);
}

std::string unique_path(const std::string& stem, const std::string& ext) {
  return stem + "_" + std::to_string(::getpid()) + ext;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  ASSERT_TRUE(out.good()) << path;
}

struct FileGuard {
  std::string path;
  explicit FileGuard(std::string p) : path(std::move(p)) { std::remove(path.c_str()); }
  ~FileGuard() { std::remove(path.c_str()); }
};

/// Removes every generation (and stale tmp) of a snapshot base path.
struct GenerationGuard {
  std::string base;
  explicit GenerationGuard(std::string b) : base(std::move(b)) { clean(); }
  ~GenerationGuard() { clean(); }
  void clean() const {
    std::remove(base.c_str());
    std::remove((base + ".tmp").c_str());
    for (std::uint64_t seq = 0; seq <= 16; ++seq) {
      std::remove((base + ".g" + std::to_string(seq)).c_str());
      std::remove((base + ".g" + std::to_string(seq) + ".tmp").c_str());
    }
  }
};

struct ServerHandle {
  net::Server server;
  std::thread thread;

  ServerHandle(Platform platform, net::ServerConfig config)
      : server(std::move(platform), std::move(config)),
        thread([this] { server.run(); }) {}

  ~ServerHandle() {
    if (thread.joinable()) {
      server.shutdown();
      thread.join();
    }
  }

  void join() { thread.join(); }
};

net::SubmitFrame frame_for(std::uint64_t seed, const std::string& tag,
                           std::size_t tasks = 10) {
  net::SubmitFrame frame;
  frame.qos = net::QosClass::kInteractive;
  frame.tag = tag;
  frame.model = FaultModel::count(2);
  frame.dag = small_dag(seed, tasks);
  return frame;
}

/// Blocking byte-at-a-time line read on a raw fd (no fault plan assumed).
bool read_line_raw(int fd, std::string& line) {
  line.clear();
  char ch = 0;
  for (;;) {
    const ssize_t n = ::recv(fd, &ch, 1, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    if (ch == '\n') return true;
    line += ch;
  }
}

// ------------------------------------------------------------ fault plans --

TEST(FaultInject, SpecParsesAndRoundTrips) {
  const FaultSpec spec =
      FaultSpec::parse("seed=42,short_io=0.25,eintr=0.2,reset=0.05,delay=0.1:300,refuse=0.01,max=64");
  EXPECT_EQ(spec.seed, 42u);
  EXPECT_DOUBLE_EQ(spec.short_io, 0.25);
  EXPECT_DOUBLE_EQ(spec.eintr, 0.2);
  EXPECT_DOUBLE_EQ(spec.reset, 0.05);
  EXPECT_DOUBLE_EQ(spec.delay, 0.1);
  EXPECT_EQ(spec.delay_us, 300u);
  EXPECT_DOUBLE_EQ(spec.refuse, 0.01);
  EXPECT_EQ(spec.max_faults, 64u);
  // to_string → parse is the identity.
  const FaultSpec again = FaultSpec::parse(spec.to_string());
  EXPECT_EQ(again.to_string(), spec.to_string());

  EXPECT_THROW((void)FaultSpec::parse("bogus=1"), std::invalid_argument);
  EXPECT_THROW((void)FaultSpec::parse("reset=1.5"), std::invalid_argument);
  EXPECT_THROW((void)FaultSpec::parse("seed="), std::invalid_argument);
}

TEST(FaultInject, DecisionStreamReplaysBitIdenticallyFromSeed) {
  const FaultSpec spec = FaultSpec::parse("seed=7,short_io=0.3,eintr=0.2,reset=0.1,delay=0.1:1");
  FaultPlan a(spec);
  FaultPlan b(spec);
  for (int i = 0; i < 500; ++i) {
    for (const FaultSite site :
         {FaultSite::kConnect, FaultSite::kRead, FaultSite::kWrite}) {
      const FaultAction fa = a.next(site);
      const FaultAction fb = b.next(site);
      EXPECT_EQ(static_cast<int>(fa.kind), static_cast<int>(fb.kind));
    }
  }
  EXPECT_GT(a.counters().injected(), 0u);
  EXPECT_EQ(a.counters().injected(), b.counters().injected());

  // A different seed produces a different stream (overwhelmingly likely
  // over 500 draws at these probabilities).
  FaultSpec other = spec;
  other.seed = 8;
  FaultPlan c(other);
  bool diverged = false;
  FaultPlan a2(spec);
  for (int i = 0; i < 500 && !diverged; ++i) {
    diverged = static_cast<int>(a2.next(FaultSite::kRead).kind) !=
               static_cast<int>(c.next(FaultSite::kRead).kind);
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultInject, MaxFaultsBudgetStopsInjectionWithoutPerturbingTheStream) {
  const FaultSpec unlimited = FaultSpec::parse("seed=3,reset=1");
  const FaultSpec budget1 = FaultSpec::parse("seed=3,reset=1,max=1");
  FaultPlan plan(budget1);
  EXPECT_EQ(static_cast<int>(plan.next(FaultSite::kRead).kind),
            static_cast<int>(FaultAction::Kind::kReset));
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(static_cast<int>(plan.next(FaultSite::kRead).kind),
              static_cast<int>(FaultAction::Kind::kNone));
  }
  EXPECT_EQ(plan.counters().resets, 1u);
  EXPECT_EQ(plan.counters().injected(), 1u);
  // The unlimited plan injects every time — same draws, different budget.
  FaultPlan all(unlimited);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(static_cast<int>(all.next(FaultSite::kRead).kind),
              static_cast<int>(FaultAction::Kind::kReset));
  }
}

TEST(FaultInject, NoPlanInstalledByDefault) { EXPECT_EQ(fault_plan(), nullptr); }

// -------------------------------------------------- hardened socket layer --

TEST(FaultInject, RecvAbsorbsInjectedEintrStorm) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  net::Fd a(sv[0]), b(sv[1]);
  ASSERT_EQ(::send(a.get(), "hello", 5, 0), 5);

  FaultPlan plan(FaultSpec::parse("seed=1,eintr=1"));  // every decision EINTR
  const ScopedFaultPlan scoped(plan);
  char buf[16];
  const ssize_t n = net::recv_some(b.get(), buf, sizeof buf);
  EXPECT_EQ(n, 5);  // bounded injected-EINTR loop, then the real read
  EXPECT_GT(plan.counters().eintrs, 0u);
}

TEST(FaultInject, SendAllDeliversEverythingUnderForcedShortWrites) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  net::Fd a(sv[0]), b(sv[1]);

  const std::string payload(64, 'x');
  FaultPlan plan(FaultSpec::parse("seed=2,short_io=1"));
  {
    const ScopedFaultPlan scoped(plan);
    net::send_all(a.get(), payload.data(), payload.size());
  }
  EXPECT_GE(plan.counters().short_ios, payload.size());  // every write clamped to 1 byte

  std::string got(64, '\0');
  std::size_t off = 0;
  while (off < got.size()) {
    const ssize_t n = ::recv(b.get(), got.data() + off, got.size() - off, 0);
    ASSERT_GT(n, 0);
    off += static_cast<std::size_t>(n);
  }
  EXPECT_EQ(got, payload);
}

TEST(FaultInject, InjectedResetSurfacesExactlyOnce) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  net::Fd a(sv[0]), b(sv[1]);
  ASSERT_EQ(::send(a.get(), "ok", 2, 0), 2);

  FaultPlan plan(FaultSpec::parse("seed=4,reset=1,max=1"));
  const ScopedFaultPlan scoped(plan);
  char buf[8];
  errno = 0;
  EXPECT_EQ(net::recv_some(b.get(), buf, sizeof buf), -1);
  EXPECT_EQ(errno, ECONNRESET);
  // Budget spent: the very next call reads clean.
  EXPECT_EQ(net::recv_some(b.get(), buf, sizeof buf), 2);
}

TEST(FaultInject, InjectedConnectRefusalThenCleanDial) {
  const FileGuard sock(unique_path("chaos_refuse", ".sock"));
  const net::Fd listener = net::listen_unix(sock.path);

  FaultPlan plan(FaultSpec::parse("seed=5,refuse=1,max=1"));
  const ScopedFaultPlan scoped(plan);
  try {
    (void)net::connect_unix(sock.path);
    FAIL() << "expected the injected refusal to throw";
  } catch (const std::system_error& e) {
    EXPECT_EQ(e.code().value(), ECONNREFUSED);
  }
  const net::Fd fd = net::connect_unix(sock.path);  // budget spent
  EXPECT_TRUE(fd.valid());
  EXPECT_EQ(plan.counters().refusals, 1u);
}

// ----------------------------------------------------------------- torn IO --

TEST(TornIo, ServerParsesFramesDribbledByteAtATime) {
  const FileGuard sock(unique_path("torn_dribble", ".sock"));
  net::ServerConfig config;
  config.unix_path = sock.path;
  ServerHandle handle(small_platform(), config);

  const net::Fd fd = net::connect_unix(sock.path);
  const std::string line = net::format_submit(frame_for(401, "drip")) + "\n";
  for (const char ch : line) ASSERT_EQ(::send(fd.get(), &ch, 1, 0), 1);
  std::string response;
  ASSERT_TRUE(read_line_raw(fd.get(), response));
  const net::Response resp = net::parse_response(response);
  ASSERT_TRUE(resp.ok) << resp.message;
  EXPECT_EQ(resp.field("tag"), "drip");
  EXPECT_EQ(resp.field("src"), "cold");
}

TEST(TornIo, ServerParsesFramesSplitAtEveryBoundary) {
  const FileGuard sock(unique_path("torn_split", ".sock"));
  net::ServerConfig config;
  config.unix_path = sock.path;
  ServerHandle handle(small_platform(), config);

  const net::Fd fd = net::connect_unix(sock.path);
  const std::string line = net::format_submit(frame_for(402, "split", 6)) + "\n";
  for (std::size_t cut = 1; cut < line.size(); ++cut) {
    ASSERT_EQ(::send(fd.get(), line.data(), cut, 0), static_cast<ssize_t>(cut));
    ASSERT_EQ(::send(fd.get(), line.data() + cut, line.size() - cut, 0),
              static_cast<ssize_t>(line.size() - cut));
    std::string response;
    ASSERT_TRUE(read_line_raw(fd.get(), response)) << "cut=" << cut;
    const net::Response resp = net::parse_response(response);
    ASSERT_TRUE(resp.ok) << "cut=" << cut << ": " << resp.message;
    // Same frame every time, so after the first cut it serves from cache
    // — identical fingerprint proves the torn framing never corrupted it.
    EXPECT_EQ(resp.field("src"), cut == 1 ? "cold" : "hit") << "cut=" << cut;
  }
}

TEST(TornIo, ClientReassemblesDribbledResponses) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  net::Client client = net::Client::adopt(net::Fd(sv[0]));
  net::Fd feeder(sv[1]);

  const std::string ok_line = "OK tag=z fp=00000000deadbeef\n";
  std::thread writer([&] {
    for (const char ch : ok_line) ::send(feeder.get(), &ch, 1, 0);
  });
  const net::Response resp = client.read_response();
  writer.join();
  ASSERT_TRUE(resp.ok);
  EXPECT_EQ(resp.field("tag"), "z");
  EXPECT_EQ(resp.field("fp"), "00000000deadbeef");

  // An ERR line with tag= and retry_ms= dribbles the same way.
  const std::string err_line = "ERR BUSY tag=z retry_ms=9 interactive lane is full\n";
  std::thread writer2([&] {
    for (const char ch : err_line) ::send(feeder.get(), &ch, 1, 0);
  });
  const net::Response err = client.read_response();
  writer2.join();
  EXPECT_FALSE(err.ok);
  EXPECT_EQ(err.code, net::WireCode::kBusy);
  EXPECT_EQ(err.field("tag"), "z");
  EXPECT_EQ(err.field_u64("retry_ms"), 9u);
  EXPECT_EQ(err.message, "interactive lane is full");
}

TEST(TornIo, SnapshotLoadRejectsEveryTruncationOffset) {
  const FileGuard snap(unique_path("torn_snap", ".snapshot"));
  PlacementDaemon source(small_platform(), DaemonConfig{});
  PlacementRequest request;
  request.dag = small_dag(403);
  request.variant = AlgoVariant("rltf");
  request.model = FaultModel::count(1);
  ASSERT_TRUE(source.admit(std::move(request)).ok);
  (void)save_cache_snapshot(source, snap.path);
  const std::string content = read_file(snap.path);
  ASSERT_GT(content.size(), 100u);

  PlacementDaemon target(small_platform(), DaemonConfig{});
  for (std::size_t cut = 0; cut < content.size(); ++cut) {
    EXPECT_THROW((void)load_cache_snapshot_text(target, content.substr(0, cut), "torn"),
                 SnapshotError)
        << "offset " << cut << " of " << content.size();
  }
  EXPECT_EQ(target.cache_size(), 0u);
  // The untruncated bytes load — the sweep rejected torn files, not the
  // format.
  EXPECT_EQ(load_cache_snapshot_text(target, content, "intact").restored, 1u);
}

// ------------------------------------------------------ snapshot generations --

TEST(SnapshotGenerations, RotatesAndPrunesOldestBeyondKeep) {
  const GenerationGuard base(unique_path("gen_rotate", ".snapshot"));
  PlacementDaemon daemon(small_platform(), DaemonConfig{});
  PlacementRequest request;
  request.dag = small_dag(404);
  request.variant = AlgoVariant("rltf");
  request.model = FaultModel::count(1);
  ASSERT_TRUE(daemon.admit(std::move(request)).ok);

  for (int i = 0; i < 6; ++i) (void)save_cache_generation(daemon, base.base, 3);
  const auto generations = list_snapshot_generations(base.base);
  ASSERT_EQ(generations.size(), 3u);
  EXPECT_EQ(generations[0].seq, 6u);  // newest first
  EXPECT_EQ(generations[1].seq, 5u);
  EXPECT_EQ(generations[2].seq, 4u);

  PlacementDaemon restored(small_platform(), DaemonConfig{});
  const GenerationLoadResult loaded = load_newest_cache_generation(restored, base.base);
  EXPECT_TRUE(loaded.loaded);
  EXPECT_EQ(loaded.path, base.base + ".g6");
  EXPECT_EQ(loaded.rejected, 0u);
  EXPECT_EQ(loaded.stats.restored, 1u);
}

TEST(SnapshotGenerations, LoadFallsBackPastCorruptAndTruncatedGenerations) {
  const GenerationGuard base(unique_path("gen_fallback", ".snapshot"));
  PlacementDaemon daemon(small_platform(), DaemonConfig{});
  PlacementRequest request;
  request.dag = small_dag(405);
  request.variant = AlgoVariant("rltf");
  request.model = FaultModel::count(1);
  ASSERT_TRUE(daemon.admit(std::move(request)).ok);
  const std::uint64_t fp =
      schedule_fingerprint(daemon.snapshot_entries().front()->schedule);

  (void)save_cache_generation(daemon, base.base, 8);  // g1: intact
  const std::string intact = read_file(base.base + ".g1");
  // g2: truncated mid-file (kill -9 after a non-atomic copy); g3: garbage.
  write_file(base.base + ".g2", intact.substr(0, intact.size() / 2));
  write_file(base.base + ".g3", "not a snapshot at all\n");
  // A stale .tmp from a crash mid-rename must be ignored entirely.
  write_file(base.base + ".g4.tmp", intact.substr(0, 10));

  PlacementDaemon restored(small_platform(), DaemonConfig{});
  const GenerationLoadResult loaded = load_newest_cache_generation(restored, base.base);
  ASSERT_TRUE(loaded.loaded);
  EXPECT_EQ(loaded.path, base.base + ".g1");
  EXPECT_EQ(loaded.rejected, 2u);
  ASSERT_EQ(restored.cache_size(), 1u);
  EXPECT_EQ(schedule_fingerprint(restored.snapshot_entries().front()->schedule), fp);
}

TEST(SnapshotGenerations, LegacyBareSnapshotFileStillLoads) {
  const GenerationGuard base(unique_path("gen_legacy", ".snapshot"));
  PlacementDaemon daemon(small_platform(), DaemonConfig{});
  PlacementRequest request;
  request.dag = small_dag(406);
  request.variant = AlgoVariant("rltf");
  request.model = FaultModel::count(1);
  ASSERT_TRUE(daemon.admit(std::move(request)).ok);
  (void)save_cache_snapshot(daemon, base.base);  // pre-rotation layout

  PlacementDaemon restored(small_platform(), DaemonConfig{});
  const GenerationLoadResult loaded = load_newest_cache_generation(restored, base.base);
  EXPECT_TRUE(loaded.loaded);
  EXPECT_EQ(loaded.path, base.base);
  EXPECT_EQ(loaded.stats.restored, 1u);
}

TEST(SnapshotGenerations, ServerKilledMidSnapshotRestartsWarmFromNewestIntactGeneration) {
  const FileGuard sock(unique_path("gen_kill", ".sock"));
  const GenerationGuard base(unique_path("gen_kill", ".snapshot"));
  net::ServerConfig config;
  config.unix_path = sock.path;
  config.snapshot_path = base.base;

  std::vector<std::string> fps;
  {
    ServerHandle handle(small_platform(), config);
    net::Client client = net::Client::connect_unix_path(sock.path);
    for (std::uint64_t seed : {421u, 422u, 423u}) {
      const net::Response resp = client.submit(frame_for(seed, "w"));
      ASSERT_TRUE(resp.ok) << resp.message;
      fps.push_back(resp.field("fp"));
    }
    (void)client.shutdown();
    handle.join();  // clean shutdown saves generation g1
  }
  const std::string intact = read_file(base.base + ".g1");

  // Simulate kill -9 mid-snapshot of the *next* generation: a torn g2
  // (prefix of a valid file) plus a stale tmp from an interrupted atomic
  // write. Restart must fall back to g1 and serve bit-identically.
  write_file(base.base + ".g2", intact.substr(0, intact.size() - intact.size() / 3));
  write_file(base.base + ".tmp", "interrupted");

  ServerHandle handle(small_platform(), config);
  net::Client client = net::Client::connect_unix_path(sock.path);
  for (std::size_t i = 0; i < 3; ++i) {
    const net::Response resp =
        client.submit(frame_for(421 + static_cast<std::uint64_t>(i), "r"));
    ASSERT_TRUE(resp.ok) << resp.message;
    EXPECT_EQ(resp.field("src"), "warm");
    EXPECT_EQ(resp.field("fp"), fps[i]);
  }
  const net::Response stats = client.stats();
  ASSERT_TRUE(stats.ok);
  EXPECT_EQ(stats.field_u64("cold"), 0u);  // warm start did all the work
  EXPECT_EQ(stats.field_u64("restored"), 3u);
}

TEST(SnapshotGenerations, PollLoopWritesPeriodicGenerations) {
  const FileGuard sock(unique_path("gen_periodic", ".sock"));
  const GenerationGuard base(unique_path("gen_periodic", ".snapshot"));
  net::ServerConfig config;
  config.unix_path = sock.path;
  config.snapshot_path = base.base;
  config.snapshot_interval_ms = 40;
  config.snapshot_keep = 2;

  ServerHandle handle(small_platform(), config);
  net::Client client = net::Client::connect_unix_path(sock.path);
  ASSERT_TRUE(client.submit(frame_for(431, "p")).ok);

  // The cache changed, so a generation must appear within a few intervals
  // — well before shutdown.
  bool seen = false;
  for (int i = 0; i < 100 && !seen; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    seen = !list_snapshot_generations(base.base).empty();
  }
  EXPECT_TRUE(seen) << "no periodic snapshot generation within 1s";
}

// --------------------------------------------------------- resilient client --

/// A scripted wire peer: serves exactly `script`, then exits. Each entry
/// consumes one request line; connections are reused until an entry (or
/// the client) closes one.
struct FakeServer {
  enum class Act { kOk, kBusy, kGarbage, kCloseNoReply, kHalfReply };

  std::string sock_path;
  std::vector<Act> script;
  std::uint64_t busy_hint = 7;
  net::Fd listener;
  std::thread thread;
  std::vector<std::string> requests;

  FakeServer(std::string path, std::vector<Act> acts)
      : sock_path(std::move(path)), script(std::move(acts)) {
    listener = net::listen_unix(sock_path);
    thread = std::thread([this] { run(); });
  }

  ~FakeServer() {
    if (thread.joinable()) thread.join();
    ::unlink(sock_path.c_str());
  }

  void run() {
    net::Fd conn;
    for (const Act act : script) {
      std::string line;
      for (;;) {
        if (!conn.valid()) {
          const int fd = ::accept(listener.get(), nullptr, nullptr);
          if (fd < 0) return;
          conn = net::Fd(fd);
        }
        if (read_line_raw(conn.get(), line)) break;
        conn.close();  // client discarded this connection; take the next
      }
      requests.push_back(line);
      switch (act) {
        case Act::kOk:
          send_str(conn, "OK ok=1\n");
          break;
        case Act::kBusy:
          send_str(conn, net::format_error(net::WireCode::kBusy, "scripted busy", "",
                                           busy_hint) +
                             "\n");
          break;
        case Act::kGarbage:
          send_str(conn, "BLURB nonsense\n");
          break;
        case Act::kCloseNoReply:
          conn.close();
          break;
        case Act::kHalfReply:
          send_str(conn, "OK par");  // torn mid-line, then gone
          conn.close();
          break;
      }
    }
  }

  static void send_str(net::Fd& fd, const std::string& text) {
    (void)::send(fd.get(), text.data(), text.size(), MSG_NOSIGNAL);
  }
};

net::RetryPolicy fast_policy() {
  net::RetryPolicy policy;
  policy.max_retries = 4;
  policy.deadline_ms = 5000;
  policy.backoff_base_ms = 1;
  policy.backoff_cap_ms = 20;
  policy.jitter_seed = 11;
  return policy;
}

TEST(ResilientClient, HonorsServerRetryHintOnBusyThenSucceeds) {
  using Act = FakeServer::Act;
  FakeServer fake(unique_path("rc_busy", ".sock"), {Act::kBusy, Act::kOk});
  net::ResilientClient client("unix:" + fake.sock_path, fast_policy());

  const net::Response resp = client.roundtrip(net::format_stats());
  ASSERT_TRUE(resp.ok);
  const net::ResilientStats& stats = client.resilient_stats();
  EXPECT_EQ(stats.attempts, 2u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.busy_backoffs, 1u);
  EXPECT_EQ(stats.hinted_backoffs, 1u);
  EXPECT_GE(stats.backoff_ms_total, fake.busy_hint);  // the hint was honored
  EXPECT_EQ(stats.reconnects, 0u);  // a BUSY connection stays pooled
}

TEST(ResilientClient, ReconnectsAfterEofMidResponse) {
  using Act = FakeServer::Act;
  FakeServer fake(unique_path("rc_eof", ".sock"), {Act::kHalfReply, Act::kOk});
  net::ResilientClient client("unix:" + fake.sock_path, fast_policy());

  const net::Response resp = client.roundtrip(net::format_stats());
  ASSERT_TRUE(resp.ok);
  EXPECT_EQ(client.resilient_stats().attempts, 2u);
  EXPECT_EQ(client.resilient_stats().reconnects, 1u);
  fake.thread.join();  // script fully consumed; safe to inspect the log
  EXPECT_EQ(fake.requests.size(), 2u);  // the re-send reached the server
}

TEST(ResilientClient, DiscardsConnectionAfterGarbageResponse) {
  using Act = FakeServer::Act;
  FakeServer fake(unique_path("rc_garbage", ".sock"), {Act::kGarbage, Act::kOk});
  net::ResilientClient client("unix:" + fake.sock_path, fast_policy());

  const net::Response resp = client.roundtrip(net::format_health());
  ASSERT_TRUE(resp.ok);
  EXPECT_EQ(client.resilient_stats().reconnects, 1u);
}

TEST(ResilientClient, ThrowsDeadlineExceededWhenBudgetRunsOut) {
  using Act = FakeServer::Act;
  FakeServer fake(unique_path("rc_deadline", ".sock"), {Act::kBusy});
  fake.busy_hint = 1000;  // the server parks us past the whole budget
  net::RetryPolicy policy = fast_policy();
  policy.deadline_ms = 80;
  policy.backoff_cap_ms = 2000;
  policy.max_retries = 100;
  net::ResilientClient client("unix:" + fake.sock_path, policy);

  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW((void)client.roundtrip(net::format_stats()), net::DeadlineExceeded);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // The backoff was clipped to the deadline, not slept in full.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 1000);
}

TEST(ResilientClient, ThrowsRetriesExhaustedAfterRepeatedDrops) {
  using Act = FakeServer::Act;
  FakeServer fake(unique_path("rc_exhaust", ".sock"),
                  {Act::kCloseNoReply, Act::kCloseNoReply, Act::kCloseNoReply});
  net::RetryPolicy policy = fast_policy();
  policy.max_retries = 2;
  policy.deadline_ms = 0;  // unbounded: the retry budget is the limit
  net::ResilientClient client("unix:" + fake.sock_path, policy);

  EXPECT_THROW((void)client.roundtrip(net::format_stats()), net::RetriesExhausted);
  EXPECT_EQ(client.resilient_stats().attempts, 3u);
  EXPECT_EQ(client.resilient_stats().reconnects, 3u);
}

TEST(ResilientClient, NonRetriableErrorsReturnImmediately) {
  const FileGuard sock(unique_path("rc_fatal", ".sock"));
  net::ServerConfig config;
  config.unix_path = sock.path;
  ServerHandle handle(small_platform(), config);
  net::ResilientClient client("unix:" + sock.path, fast_policy());

  const net::Response resp = client.roundtrip("SUBMIT qos=nonsense");
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.code, net::WireCode::kBadRequest);
  EXPECT_EQ(client.resilient_stats().attempts, 1u);  // never retried
}

TEST(ResilientClient, RetryAfterAmbiguousDropNeverDoubleAdmits) {
  const FileGuard sock(unique_path("rc_idem", ".sock"));
  net::ServerConfig config;
  config.unix_path = sock.path;
  ServerHandle handle(small_platform(), config);

  const std::string submit_line = net::format_submit(frame_for(501, "first"));
  {
    // The ambiguous drop: the request reaches the server, the connection
    // dies before any response. The frame is processed (EOF drains
    // buffered frames), the response is undeliverable.
    const net::Fd fd = net::connect_unix(sock.path);
    const std::string framed = submit_line + "\n";
    net::send_all(fd.get(), framed.data(), framed.size());
  }
  // Wait until the dropped request's admission actually completed.
  net::ResilientClient client("unix:" + sock.path, fast_policy());
  for (int i = 0; i < 500; ++i) {
    const net::Response stats = client.stats();
    ASSERT_TRUE(stats.ok);
    if (stats.field_u64("cold") >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // The client never saw a response, so it re-submits — and must get the
  // cached placement, not a second cold schedule.
  const net::Response retry = client.roundtrip(submit_line);
  ASSERT_TRUE(retry.ok) << retry.message;
  EXPECT_EQ(retry.field("src"), "hit");
  const net::Response stats = client.stats();
  ASSERT_TRUE(stats.ok);
  EXPECT_EQ(stats.field_u64("cold"), 1u);  // the fingerprint cold-scheduled once
}

TEST(ResilientClient, SurvivesInjectedResetAndResubmitsWithoutDoubleAdmission) {
  const FileGuard sock(unique_path("rc_reset", ".sock"));
  net::ServerConfig config;
  config.unix_path = sock.path;
  ServerHandle handle(small_platform(), config);

  // Exactly one injected reset, then a clean network: the first I/O the
  // client attempts fails, the resilient wrapper reconnects and re-sends.
  FaultPlan plan(FaultSpec::parse("seed=6,reset=1,max=1"));
  const ScopedFaultPlan scoped(plan);
  net::ResilientClient client("unix:" + sock.path, fast_policy());
  const net::Response resp = client.submit(frame_for(502, "reset"));
  ASSERT_TRUE(resp.ok) << resp.message;
  EXPECT_EQ(plan.counters().resets, 1u);
  EXPECT_EQ(client.resilient_stats().reconnects, 1u);

  const net::Response again = client.submit(frame_for(502, "again"));
  ASSERT_TRUE(again.ok);
  EXPECT_EQ(again.field("src"), "hit");
  const net::Response stats = client.stats();
  ASSERT_TRUE(stats.ok);
  EXPECT_EQ(stats.field_u64("cold"), 1u);
}

// ----------------------------------------------------- server robustness --

TEST(ServerRobustness, HealthVerbReportsLanesAndStatus) {
  const FileGuard sock(unique_path("srv_health", ".sock"));
  net::ServerConfig config;
  config.unix_path = sock.path;
  ServerHandle handle(small_platform(), config);
  net::Client client = net::Client::connect_unix_path(sock.path);

  const net::Response resp = client.health();
  ASSERT_TRUE(resp.ok) << resp.message;
  EXPECT_EQ(resp.field("status"), "serving");
  EXPECT_EQ(resp.field_u64("epoch"), 0u);
  EXPECT_EQ(resp.field_u64("cache_size"), 0u);
  EXPECT_EQ(resp.field_u64("interactive_inflight"), 0u);
  EXPECT_GE(resp.field_u64("interactive_bound"), 1u);
  EXPECT_EQ(resp.field_u64("batch_inflight"), 0u);
}

TEST(ServerRobustness, BusyShedCarriesRetryHintScaledByLaneDepth) {
  const FileGuard sock(unique_path("srv_hint", ".sock"));
  net::ServerConfig config;
  config.unix_path = sock.path;
  auto& interactive = config.lanes[static_cast<std::size_t>(net::QosClass::kInteractive)];
  interactive.workers = 1;
  interactive.bound = 1;
  config.busy_retry_hint_ms = 30;
  ServerHandle handle(small_platform(), config);
  net::Client client = net::Client::connect_unix_path(sock.path);

  // Two pipelined SUBMITs: the first (a 40-task cold schedule) fills the
  // lane (bound 1) for far longer than parsing the second takes, so the
  // second is deterministically shed.
  client.send_line(net::format_submit(frame_for(601, "one", 40)));
  client.send_line(net::format_submit(frame_for(602, "two")));
  net::Response first = client.read_response();
  net::Response second = client.read_response();
  // The BUSY response is written synchronously from the poll thread, so
  // it always arrives before the accepted admission's response.
  ASSERT_FALSE(first.ok);
  EXPECT_EQ(first.code, net::WireCode::kBusy);
  EXPECT_EQ(first.field("tag"), "two");
  EXPECT_GE(first.field_u64("retry_ms"), config.busy_retry_hint_ms);
  EXPECT_LE(first.field_u64("retry_ms"), 2000u);
  ASSERT_TRUE(second.ok) << second.message;
  EXPECT_EQ(second.field("tag"), "one");
}

TEST(ServerRobustness, OversizedRequestLineIsRejectedAndDisconnected) {
  const FileGuard sock(unique_path("srv_maxline", ".sock"));
  net::ServerConfig config;
  config.unix_path = sock.path;
  config.max_line_bytes = 64;
  ServerHandle handle(small_platform(), config);

  // An unterminated line past the bound: rejected without waiting for the
  // newline that may never come.
  const net::Fd fd = net::connect_unix(sock.path);
  const std::string flood(200, 'a');
  net::send_all(fd.get(), flood.data(), flood.size());
  std::string response;
  ASSERT_TRUE(read_line_raw(fd.get(), response));
  const net::Response resp = net::parse_response(response);
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.code, net::WireCode::kBadRequest);
  char ch;
  EXPECT_EQ(::recv(fd.get(), &ch, 1, 0), 0);  // then the server hangs up

  // A terminated-but-oversized line gets the same treatment.
  const net::Fd fd2 = net::connect_unix(sock.path);
  const std::string long_line = std::string(100, 'b') + "\n";
  net::send_all(fd2.get(), long_line.data(), long_line.size());
  ASSERT_TRUE(read_line_raw(fd2.get(), response));
  EXPECT_FALSE(net::parse_response(response).ok);
  EXPECT_EQ(::recv(fd2.get(), &ch, 1, 0), 0);

  // A well-behaved client on the same server still works.
  net::Client client = net::Client::connect_unix_path(sock.path);
  EXPECT_TRUE(client.stats().ok);
}

TEST(ServerRobustness, ReadDeadlineClosesConnectionsStalledMidFrame) {
  const FileGuard sock(unique_path("srv_deadline", ".sock"));
  net::ServerConfig config;
  config.unix_path = sock.path;
  config.read_deadline_ms = 60;
  ServerHandle handle(small_platform(), config);

  const net::Fd fd = net::connect_unix(sock.path);
  net::send_all(fd.get(), "STA", 3);  // a frame that never completes
  std::string response;
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(read_line_raw(fd.get(), response));
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  const net::Response resp = net::parse_response(response);
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.code, net::WireCode::kBadRequest);
  EXPECT_GE(waited, 50);  // the deadline, not an instant slam
  char ch;
  EXPECT_EQ(::recv(fd.get(), &ch, 1, 0), 0);

  // An *idle* connection (no partial frame) is never reaped.
  const net::Fd idle = net::connect_unix(sock.path);
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  const std::string stats_line = net::format_stats() + "\n";
  net::send_all(idle.get(), stats_line.data(), stats_line.size());
  ASSERT_TRUE(read_line_raw(idle.get(), response));
  EXPECT_TRUE(net::parse_response(response).ok);
}

// ------------------------------------------------------------- chaos e2e --

/// One full chaos run: K distinct workloads submitted through the
/// resilient client while the thread's fault plan tortures every socket
/// op. Returns a digest of the observable outcome.
std::string chaos_run(std::uint64_t seed, const std::string& sock_path) {
  net::ServerConfig config;
  config.unix_path = sock_path;
  ServerHandle handle(small_platform(), config);

  FaultPlan plan(FaultSpec::parse("seed=" + std::to_string(seed) +
                                  ",short_io=0.3,eintr=0.25,reset=0.06,delay=0.05:100,refuse=0.05"));
  const ScopedFaultPlan scoped(plan);
  net::RetryPolicy policy;
  policy.max_retries = 10;
  policy.deadline_ms = 60000;
  policy.backoff_base_ms = 1;
  policy.backoff_cap_ms = 20;
  policy.jitter_seed = seed;
  net::ResilientClient client("unix:" + sock_path, policy);

  constexpr std::uint64_t kWorkloads = 6;
  std::string digest;
  for (std::uint64_t i = 0; i < kWorkloads; ++i) {
    const net::Response resp =
        client.submit(frame_for(700 + i, "c" + std::to_string(i)));
    EXPECT_TRUE(resp.ok) << resp.message;  // 100% eventual admission success
    digest += "c" + std::to_string(i) + ":" + resp.field("fp") + ";";
  }
  // Resubmitting every workload hits the cache: no fingerprint is ever
  // cold-scheduled twice, no matter how many retries the chaos forced.
  for (std::uint64_t i = 0; i < kWorkloads; ++i) {
    const net::Response resp =
        client.submit(frame_for(700 + i, "r" + std::to_string(i)));
    EXPECT_TRUE(resp.ok) << resp.message;
    EXPECT_EQ(resp.field("src"), "hit");
  }
  const net::Response stats = client.stats();
  EXPECT_TRUE(stats.ok);
  EXPECT_EQ(stats.field_u64("cold"), kWorkloads);  // zero duplicate admissions
  digest += "cold=" + stats.field("cold");
  // The chaos was real: the plan injected faults the client had to absorb.
  EXPECT_GT(plan.counters().injected(), 0u);
  return digest;
}

TEST(Chaos, EndToEndRunIsDeterministicAcrossSeedsAndReplays) {
  for (const std::uint64_t seed : {7u, 11u, 13u}) {
    const FileGuard sock_a(
        unique_path("chaos_e2e_" + std::to_string(seed) + "a", ".sock"));
    const FileGuard sock_b(
        unique_path("chaos_e2e_" + std::to_string(seed) + "b", ".sock"));
    const std::string first = chaos_run(seed, sock_a.path);
    const std::string second = chaos_run(seed, sock_b.path);
    EXPECT_EQ(first, second) << "chaos outcome diverged at seed " << seed;
    EXPECT_NE(first.find("cold=6"), std::string::npos);
  }
}

}  // namespace
}  // namespace streamsched
