// Tests for the Schedule container: placement bookkeeping, communication
// indexing, supplier queries and load accounting.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "helpers.hpp"
#include "platform/generators.hpp"
#include "schedule/schedule.hpp"

namespace streamsched {
namespace {

using test::place_at;
using test::wire;

struct ScheduleFixture : ::testing::Test {
  Dag dag = make_chain(3, 4.0, 2.0);          // a -> b -> c, works 4, volumes 2
  Platform platform = Platform::uniform(3, 2.0, 0.5);  // speed 2, delay 0.5
};

TEST_F(ScheduleFixture, EmptyScheduleState) {
  Schedule s(dag, platform, 0, 10.0);
  EXPECT_EQ(s.eps(), 0u);
  EXPECT_EQ(s.copies(), 1u);
  EXPECT_EQ(s.period(), 10.0);
  EXPECT_EQ(s.num_placed(), 0u);
  EXPECT_FALSE(s.complete());
  EXPECT_FALSE(s.is_placed({0, 0}));
  EXPECT_EQ(s.makespan(), 0.0);
}

TEST_F(ScheduleFixture, PlacementUpdatesSigma) {
  Schedule s(dag, platform, 0, 100.0);
  place_at(s, {0, 0}, 1, 0.0);
  EXPECT_TRUE(s.is_placed({0, 0}));
  EXPECT_EQ(s.placed({0, 0}).proc, 1u);
  EXPECT_DOUBLE_EQ(s.placed({0, 0}).finish, 2.0);  // 4 work / speed 2
  EXPECT_DOUBLE_EQ(s.sigma(1), 2.0);
  EXPECT_DOUBLE_EQ(s.sigma(0), 0.0);
}

TEST_F(ScheduleFixture, DoublePlacementRejected) {
  Schedule s(dag, platform, 0, 100.0);
  place_at(s, {0, 0}, 0, 0.0);
  EXPECT_THROW(place_at(s, {0, 0}, 1, 0.0), std::invalid_argument);
}

TEST_F(ScheduleFixture, BadReplicaRejected) {
  Schedule s(dag, platform, 1, 100.0);
  EXPECT_THROW(place_at(s, {9, 0}, 0, 0.0), std::invalid_argument);
  EXPECT_THROW(place_at(s, {0, 2}, 0, 0.0), std::invalid_argument);  // copies = 2
  EXPECT_THROW((void)s.placed({0, 0}), std::invalid_argument);       // not placed
}

TEST_F(ScheduleFixture, CommsUpdatePortLoads) {
  Schedule s(dag, platform, 0, 100.0);
  place_at(s, {0, 0}, 0, 0.0);
  place_at(s, {1, 0}, 1, 3.0);
  place_at(s, {2, 0}, 1, 5.0);
  wire(s, 0, 0, 1, 0);  // remote: volume 2 * delay 0.5 = 1
  wire(s, 1, 0, 2, 0);  // colocated: free
  EXPECT_DOUBLE_EQ(s.cout(0), 1.0);
  EXPECT_DOUBLE_EQ(s.cin(1), 1.0);
  EXPECT_DOUBLE_EQ(s.cout(1), 0.0);
  EXPECT_DOUBLE_EQ(s.cin(0), 0.0);
}

TEST_F(ScheduleFixture, SupplierQueries) {
  Schedule s(dag, platform, 1, 100.0);
  place_at(s, {0, 0}, 0, 0.0);
  place_at(s, {0, 1}, 1, 0.0);
  place_at(s, {1, 0}, 2, 3.0);
  wire(s, 0, 0, 1, 0);
  wire(s, 0, 1, 1, 0);
  const auto sups = s.suppliers({1, 0}, 0);
  ASSERT_EQ(sups.size(), 2u);
  EXPECT_EQ(sups[0], (ReplicaRef{0, 0}));
  EXPECT_EQ(sups[1], (ReplicaRef{0, 1}));
  EXPECT_TRUE(s.has_supplier({1, 0}, {0, 1}));
  EXPECT_FALSE(s.has_supplier({1, 0}, {0, 0}) == false);  // sanity: present
}

TEST_F(ScheduleFixture, DuplicateCommRejected) {
  Schedule s(dag, platform, 0, 100.0);
  place_at(s, {0, 0}, 0, 0.0);
  place_at(s, {1, 0}, 1, 3.0);
  wire(s, 0, 0, 1, 0);
  EXPECT_THROW(wire(s, 0, 0, 1, 0), std::invalid_argument);
}

TEST_F(ScheduleFixture, CommEndpointValidation) {
  Schedule s(dag, platform, 0, 100.0);
  place_at(s, {0, 0}, 0, 0.0);
  place_at(s, {1, 0}, 1, 3.0);
  CommRecord bad;
  bad.edge = dag.find_edge(0, 1);
  bad.src = {1, 0};  // swapped endpoints
  bad.dst = {0, 0};
  EXPECT_THROW(s.add_comm(bad), std::invalid_argument);
}

TEST_F(ScheduleFixture, InOutCommIndexing) {
  Schedule s(dag, platform, 0, 100.0);
  place_at(s, {0, 0}, 0, 0.0);
  place_at(s, {1, 0}, 1, 3.0);
  place_at(s, {2, 0}, 2, 6.0);
  const auto c1 = wire(s, 0, 0, 1, 0);
  const auto c2 = wire(s, 1, 0, 2, 0);
  ASSERT_EQ(s.out_comms({0, 0}).size(), 1u);
  EXPECT_EQ(s.out_comms({0, 0})[0], c1);
  ASSERT_EQ(s.in_comms({1, 0}).size(), 1u);
  EXPECT_EQ(s.in_comms({1, 0})[0], c1);
  ASSERT_EQ(s.in_comms({2, 0}).size(), 1u);
  EXPECT_EQ(s.in_comms({2, 0})[0], c2);
}

TEST_F(ScheduleFixture, ReplicasOnProcessor) {
  Schedule s(dag, platform, 1, 100.0);
  place_at(s, {0, 0}, 0, 0.0);
  place_at(s, {0, 1}, 1, 0.0);
  place_at(s, {1, 0}, 0, 5.0);
  const auto on0 = s.replicas_on(0);
  ASSERT_EQ(on0.size(), 2u);
  EXPECT_EQ(on0[0], (ReplicaRef{0, 0}));
  EXPECT_EQ(on0[1], (ReplicaRef{1, 0}));
  EXPECT_TRUE(s.replicas_on(2).empty());
}

TEST_F(ScheduleFixture, CompleteAndMakespan) {
  Schedule s(dag, platform, 0, 100.0);
  place_at(s, {0, 0}, 0, 0.0);
  place_at(s, {1, 0}, 0, 2.0);
  EXPECT_FALSE(s.complete());
  place_at(s, {2, 0}, 0, 4.0);
  EXPECT_TRUE(s.complete());
  EXPECT_DOUBLE_EQ(s.makespan(), 6.0);
}

TEST_F(ScheduleFixture, RejectsTooManyEpsForPlatform) {
  EXPECT_THROW(Schedule(dag, platform, 3, 10.0), std::invalid_argument);  // m = 3
  EXPECT_THROW(Schedule(dag, platform, 0, 0.0), std::invalid_argument);   // bad period
}

}  // namespace
}  // namespace streamsched
