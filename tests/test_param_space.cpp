// Tests for typed parameter spaces and algorithm variants: declaration,
// round-trip parse/print of variant specs, unknown-key / out-of-range /
// syntax diagnostics, duplicate bindings, ParamSet::apply semantics, and
// generic enumeration of declared axes.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/options.hpp"
#include "core/param_space.hpp"
#include "core/registry.hpp"
#include "core/variant.hpp"

namespace streamsched {
namespace {

// A self-contained space exercising every kind.
ParamSpace demo_space() {
  ParamSpace space;
  space.add_bool("flag", true, "a bool knob",
                 [](SchedulerOptions& o, const ParamValue& v) {
                   o.use_rule1 = std::get<bool>(v);
                 });
  space.add_int("count", 2, 1, 8, "an int knob",
                [](SchedulerOptions& o, const ParamValue& v) {
                  o.chunk = static_cast<std::uint32_t>(std::get<std::int64_t>(v));
                });
  space.add_real("ratio", 0.5, 0.0, 1.0, "a real knob",
                 [](SchedulerOptions& o, const ParamValue& v) {
                   o.period = std::get<double>(v);
                 });
  space.add_enum("mode", "fast", {"fast", "safe"}, "an enum knob",
                 [](SchedulerOptions& o, const ParamValue& v) {
                   o.repair = std::get<std::string>(v) == "safe";
                 });
  return space;
}

TEST(ParamSpace, DeclaresAndDescribes) {
  const ParamSpace space = demo_space();
  EXPECT_EQ(space.size(), 4u);
  ASSERT_NE(space.find("count"), nullptr);
  EXPECT_EQ(space.find("count")->signature(), "int in [1, 8]");
  EXPECT_EQ(space.find("mode")->signature(), "enum {fast, safe}");
  EXPECT_EQ(space.find("flag")->signature(), "bool");
  const std::string listing = space.describe("  ");
  EXPECT_NE(listing.find("count: int in [1, 8], default 2 — an int knob"),
            std::string::npos);
  EXPECT_NE(listing.find("flag: bool, default on"), std::string::npos);
}

TEST(ParamSpace, RejectsBadDeclarations) {
  ParamSpace space = demo_space();
  const auto noop = [](SchedulerOptions&, const ParamValue&) {};
  EXPECT_THROW(space.add_bool("flag", true, "dup", noop), std::invalid_argument);
  EXPECT_THROW(space.add_bool("", true, "anon", noop), std::invalid_argument);
  EXPECT_THROW(space.add_enum("empty", "x", {}, "no choices", noop), std::invalid_argument);
  EXPECT_THROW(space.add_enum("bad_def", "x", {"a", "b"}, "", noop), std::invalid_argument);
}

TEST(ParamSet, BindsParsesAndRoundTrips) {
  const ParamSpace space = demo_space();
  ParamSet set = ParamSet::parse(space, "mode=safe,flag=off,count=4");
  EXPECT_EQ(set.size(), 3u);
  // Canonical print order is declaration order, independent of spec order.
  EXPECT_EQ(set.to_string(), "flag=off,count=4,mode=safe");
  const ParamSet reparsed = ParamSet::parse(space, set.to_string());
  EXPECT_EQ(reparsed, set);
  EXPECT_EQ(reparsed.to_string(), set.to_string());

  ParamSet reals;
  reals.set(space, "ratio", "0.125");
  EXPECT_EQ(reals.to_string(), "ratio=0.125");
  EXPECT_EQ(ParamSet::parse(space, reals.to_string()), reals);

  // Bool spellings all normalize to on/off.
  for (const std::string text : {"true", "yes", "1", "on"}) {
    ParamSet b;
    b.set(space, "flag", text);
    EXPECT_EQ(b.to_string(), "flag=on") << text;
  }
}

TEST(ParamSet, DiagnosesUnknownKeysAndBadValues) {
  const ParamSpace space = demo_space();
  try {
    (void)ParamSet::parse(space, "bogus=1", "demo");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("demo"), std::string::npos);
    EXPECT_NE(what.find("bogus"), std::string::npos);
    EXPECT_NE(what.find("count"), std::string::npos);  // lists the declared names
  }
  try {
    (void)ParamSet::parse(space, "count=99");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("[1, 8]"), std::string::npos);
  }
  EXPECT_THROW((void)ParamSet::parse(space, "count=abc"), std::invalid_argument);
  EXPECT_THROW((void)ParamSet::parse(space, "count"), std::invalid_argument);
  EXPECT_THROW((void)ParamSet::parse(space, "=4"), std::invalid_argument);
  EXPECT_THROW((void)ParamSet::parse(space, "mode=warp"), std::invalid_argument);
  EXPECT_THROW((void)ParamSet::parse(space, "ratio=1.5"), std::invalid_argument);
  EXPECT_THROW((void)ParamSet::parse(space, "flag=maybe"), std::invalid_argument);
  // Rebinding is an error, both textually and typed.
  EXPECT_THROW((void)ParamSet::parse(space, "count=1,count=2"), std::invalid_argument);
  ParamSet set;
  set.set(space, "count", ParamValue(std::int64_t{3}));
  EXPECT_THROW(set.set(space, "count", ParamValue(std::int64_t{4})), std::invalid_argument);
  // Typed values are kind-checked (ints widen to reals, nothing else).
  EXPECT_THROW(set.set(space, "flag", ParamValue(std::int64_t{1})), std::invalid_argument);
  ParamSet widened;
  widened.set(space, "ratio", ParamValue(std::int64_t{1}));
  EXPECT_EQ(widened.to_string(), "ratio=1");
}

TEST(ParamSet, AppliesBoundValuesInOneStep) {
  const ParamSpace space = demo_space();
  const ParamSet set = ParamSet::parse(space, "flag=off,count=4,mode=safe,ratio=0.25");
  SchedulerOptions options;
  options.use_rule1 = true;
  set.apply(options);
  EXPECT_FALSE(options.use_rule1);
  EXPECT_EQ(options.chunk, 4u);
  EXPECT_TRUE(options.repair);
  EXPECT_DOUBLE_EQ(options.period, 0.25);
  // Unbound parameters leave their fields untouched.
  SchedulerOptions defaults;
  ParamSet::parse(space, "count=8").apply(defaults);
  EXPECT_TRUE(defaults.use_rule1);
  EXPECT_FALSE(defaults.repair);
  EXPECT_EQ(defaults.chunk, 8u);
}

TEST(ParamSet, BaseParamsDriveTheFaultModel) {
  const ParamSpace base = scheduler_base_params();
  SchedulerOptions options;
  ParamSet::parse(base, "eps=2,repair=on").apply(options);
  EXPECT_EQ(options.eps, 2u);
  EXPECT_TRUE(options.repair);
  EXPECT_FALSE(options.fault_model.has_value());

  SchedulerOptions prob;
  ParamSet::parse(base, "R=0.999").apply(prob);
  ASSERT_TRUE(prob.fault_model.has_value());
  EXPECT_TRUE(prob.fault_model->is_probabilistic());
  EXPECT_DOUBLE_EQ(prob.fault_model->target_reliability(), 0.999);

  // R=0 keeps the count model; R=1 is not a valid FaultModel target and
  // the declared half-open range [0, 1) rejects it at *bind* time, before
  // any schedule run could trip over it.
  SchedulerOptions off;
  ParamSet::parse(base, "R=0").apply(off);
  EXPECT_FALSE(off.fault_model.has_value());
  EXPECT_EQ(base.find("R")->signature(), "real in [0, 1)");
  EXPECT_THROW((void)ParamSet::parse(base, "R=1"), std::invalid_argument);
  EXPECT_THROW((void)AlgoVariant::parse("rltf[R=1]"), std::invalid_argument);
}

TEST(AlgoVariant, ParsePrintRoundTrips) {
  const AlgoVariant plain = AlgoVariant::parse("rltf");
  EXPECT_EQ(plain.name(), "rltf");
  EXPECT_EQ(plain.label(), "R-LTF");
  EXPECT_TRUE(plain.params().empty());

  const AlgoVariant bound = AlgoVariant::parse("rltf[rule1=off,chunk=4]");
  EXPECT_EQ(bound.name(), "rltf[chunk=4,rule1=off]");  // canonical order
  EXPECT_EQ(bound.label(), "R-LTF[chunk=4,rule1=off]");
  EXPECT_EQ(AlgoVariant::parse(bound.name()), bound);
  EXPECT_EQ(AlgoVariant::parse(bound.name()).name(), bound.name());

  // Whitespace in specs is tolerated, including around '=' in bindings.
  EXPECT_EQ(AlgoVariant::parse(" ltf[ chunk=2 , one_to_one=off ] ").name(),
            "ltf[chunk=2,one_to_one=off]");
  EXPECT_EQ(AlgoVariant::parse("ltf[chunk = 2]").name(), "ltf[chunk=2]");

  // The implicit string conversion matches parse.
  const AlgoVariant implicit = std::string("heft[eps=2]");
  EXPECT_EQ(implicit.name(), "heft[eps=2]");
}

TEST(AlgoVariant, ParseDiagnostics) {
  EXPECT_THROW((void)AlgoVariant::parse("bogus"), std::invalid_argument);
  EXPECT_THROW((void)AlgoVariant::parse(""), std::invalid_argument);
  EXPECT_THROW((void)AlgoVariant::parse("rltf[chunk=4"), std::invalid_argument);
  EXPECT_THROW((void)AlgoVariant::parse("[chunk=4]"), std::invalid_argument);
  EXPECT_THROW((void)AlgoVariant::parse("rltf[]"), std::invalid_argument);
  EXPECT_THROW((void)AlgoVariant::parse("rltf[,]"), std::invalid_argument);
  EXPECT_THROW((void)AlgoVariant::parse("rltf[ ]"), std::invalid_argument);
  try {
    (void)AlgoVariant::parse("rltf[bogus=1]");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rltf"), std::string::npos);
    EXPECT_NE(what.find("bogus"), std::string::npos);
  }
  // rule1 is declared for rltf only; ltf rejects it.
  EXPECT_THROW((void)AlgoVariant::parse("ltf[rule1=off]"), std::invalid_argument);
  // The fault-free reference declares no parameters at all.
  EXPECT_THROW((void)AlgoVariant::parse("fault_free[eps=1]"), std::invalid_argument);
  EXPECT_THROW((void)AlgoVariant::parse("ltf[chunk=5000]"), std::invalid_argument);
  // A ParamSet built against another algorithm's space is rejected at
  // variant construction (its bindings would be silently ignored).
  const Scheduler& rltf = find_scheduler("rltf");
  ParamSet rltf_only;
  rltf_only.set(rltf.space, "rule1", "off");
  EXPECT_THROW((void)AlgoVariant(find_scheduler("heft"), rltf_only), std::invalid_argument);
  EXPECT_NO_THROW((void)AlgoVariant(rltf, rltf_only));
}

TEST(AlgoVariant, AdjustedAppliesTweaksThenParams) {
  SchedulerOptions options;
  options.eps = 3;
  options.period = 20.0;
  const AlgoVariant ablated = AlgoVariant::parse("rltf[rule1=off,chunk=4]");
  const SchedulerOptions adjusted = ablated.adjusted(options);
  EXPECT_FALSE(adjusted.use_rule1);
  EXPECT_EQ(adjusted.chunk, 4u);
  EXPECT_EQ(adjusted.eps, 3u);  // untouched: eps was not bound

  // Variant parameters win over the algorithm's default tweak.
  const AlgoVariant ff = AlgoVariant::parse("fault_free");
  EXPECT_EQ(ff.adjusted(options).eps, 0u);  // the tweak forces eps = 0
}

TEST(AlgoVariant, SplitsVariantListsOnTopLevelCommasOnly) {
  const auto specs = split_variant_specs("rltf[chunk=4,rule1=off], ltf ,heft[eps=2]");
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0], "rltf[chunk=4,rule1=off]");
  EXPECT_EQ(specs[1], "ltf");
  EXPECT_EQ(specs[2], "heft[eps=2]");
  EXPECT_TRUE(split_variant_specs("").empty());
  EXPECT_THROW((void)split_variant_specs("rltf[chunk=4"), std::invalid_argument);
  EXPECT_THROW((void)split_variant_specs("rltf]x["), std::invalid_argument);

  const auto variants = parse_variants("rltf[chunk=4],all");
  EXPECT_EQ(variants.size(), 1u + SchedulerRegistry::instance().all().size());
  EXPECT_EQ(variants[0].name(), "rltf[chunk=4]");
}

TEST(Enumerate, ExpandsDeclaredAxesIntoTheCartesianGrid) {
  const ParamSpace space = demo_space();
  const auto grid =
      enumerate(space, {bool_axis("flag"), enum_axis("mode", {"fast", "safe"})});
  ASSERT_EQ(grid.size(), 4u);
  // Last axis varies fastest; bool_axis enumerates {on, off}.
  EXPECT_EQ(grid[0].to_string(), "flag=on,mode=fast");
  EXPECT_EQ(grid[1].to_string(), "flag=on,mode=safe");
  EXPECT_EQ(grid[2].to_string(), "flag=off,mode=fast");
  EXPECT_EQ(grid[3].to_string(), "flag=off,mode=safe");

  // No axes: the single empty set (the algorithm's defaults).
  const auto trivial = enumerate(space, {});
  ASSERT_EQ(trivial.size(), 1u);
  EXPECT_TRUE(trivial[0].empty());

  // Values are validated against the declared ranges.
  EXPECT_THROW((void)enumerate(space, {int_axis("count", {1, 99})}), std::invalid_argument);
  EXPECT_THROW((void)enumerate(space, {int_axis("bogus", {1})}), std::invalid_argument);
  EXPECT_THROW((void)enumerate(space, {int_axis("count", {})}), std::invalid_argument);
  EXPECT_THROW((void)enumerate(space, {bool_axis("flag"), bool_axis("flag")}),
               std::invalid_argument);
}

TEST(Enumerate, DrivesRegistrySpacesIntoRunnableVariants) {
  const Scheduler& rltf = find_scheduler("rltf");
  const auto grid = enumerate(rltf.space, {bool_axis("rule1"), bool_axis("one_to_one")});
  ASSERT_EQ(grid.size(), 4u);
  std::vector<std::string> names;
  for (const ParamSet& params : grid) names.push_back(AlgoVariant(rltf, params).name());
  EXPECT_EQ(names[0], "rltf[one_to_one=on,rule1=on]");
  EXPECT_EQ(names[3], "rltf[one_to_one=off,rule1=off]");
  // All four names are distinct — fit to key sweep series.
  for (std::size_t i = 0; i < names.size(); ++i) {
    for (std::size_t j = i + 1; j < names.size(); ++j) EXPECT_NE(names[i], names[j]);
  }
}

}  // namespace
}  // namespace streamsched
